// Package-level benchmarks: one testing.B benchmark per evaluation
// figure of the paper plus the DESIGN.md ablations. Each iteration
// regenerates the figure's full table on the quick preset; run the
// ygm-bench command with -preset paper for the larger sweeps.
//
//	go test -bench=. -benchmem
package ygm_test

import (
	"testing"

	"ygm/internal/bench"
)

// quickBench shrinks the quick preset a little further so a single
// benchmark iteration stays well under a second.
func quickBench() bench.Preset {
	p := bench.Quick()
	p.WeakNodes = []int{1, 2, 4, 8}
	p.StrongNodes = []int{1, 2, 4, 8}
	p.GridNodes = []int{1, 4}
	return p
}

func runFigure(b *testing.B, id string) {
	b.Helper()
	exp, err := bench.Lookup(id)
	if err != nil {
		b.Fatal(err)
	}
	p := quickBench()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		table := exp.Run(p)
		if len(table.Rows) == 0 {
			b.Fatalf("%s produced no rows", id)
		}
	}
}

func BenchmarkFig5Bandwidth(b *testing.B)       { runFigure(b, "fig5") }
func BenchmarkFig6aDegreeWeak(b *testing.B)     { runFigure(b, "fig6a") }
func BenchmarkFig6bDegreeStrong(b *testing.B)   { runFigure(b, "fig6b") }
func BenchmarkFig7aCCWeak(b *testing.B)         { runFigure(b, "fig7a") }
func BenchmarkFig7bCCStrong(b *testing.B)       { runFigure(b, "fig7b") }
func BenchmarkFig8aSpMVRMATWeak(b *testing.B)   { runFigure(b, "fig8a") }
func BenchmarkFig8bDelegateGrowth(b *testing.B) { runFigure(b, "fig8b") }
func BenchmarkFig8cSpMVUniformWeak(b *testing.B) {
	runFigure(b, "fig8c")
}
func BenchmarkFig8dSpMVWebStrong(b *testing.B)    { runFigure(b, "fig8d") }
func BenchmarkAblationMailboxSize(b *testing.B)   { runFigure(b, "ablation-mailbox") }
func BenchmarkAblationExchangeStyle(b *testing.B) { runFigure(b, "ablation-exchange") }
func BenchmarkFig8xCrossover(b *testing.B)        { runFigure(b, "fig8x") }
func BenchmarkAblationStraggler(b *testing.B)     { runFigure(b, "ablation-straggler") }
func BenchmarkAblationZeroCopy(b *testing.B)      { runFigure(b, "ablation-zerocopy") }
func BenchmarkAblationBroadcast(b *testing.B)     { runFigure(b, "ablation-bcast") }
func BenchmarkTopologySummary(b *testing.B)       { runFigure(b, "topo") }
