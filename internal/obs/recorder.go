package obs

import (
	"fmt"
	"strings"
)

// Kind classifies one flight-recorder event.
type Kind uint8

const (
	// KSend is one transport packet leaving this rank.
	KSend Kind = iota
	// KRecv is one transport packet absorbed by this rank.
	KRecv
	// KJump marks an absorb whose arrival wait exceeded the trace
	// threshold — the rank fast-forwarded its clock to the packet.
	KJump
	// KSpanBegin / KSpanEnd bracket a named virtual-time span.
	KSpanBegin
	KSpanEnd
	// KMark is a labelled instant event (termination generation, flush
	// cause, watchdog poison).
	KMark
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KSend:
		return "send"
	case KRecv:
		return "recv"
	case KJump:
		return "jump"
	case KSpanBegin:
		return "span+"
	case KSpanEnd:
		return "span-"
	case KMark:
		return "mark"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Event is one flight-recorder entry. All fields are plain values, so
// recording is a fixed-size copy into the ring — no allocation, no
// retained references.
type Event struct {
	Kind Kind
	// T is the rank's virtual clock when the event was recorded.
	T float64
	// Peer is the other rank of a packet event, -1 when not applicable.
	Peer int32
	// Tag is the transport tag of a packet event, or an event-specific
	// small integer (e.g. the termination generation of a KMark).
	Tag uint64
	// Size is the payload size of a packet event.
	Size int64
	// Name labels spans and marks; empty for packet events.
	Name string
}

// String renders one event for dump output.
func (e Event) String() string {
	switch e.Kind {
	case KSend, KRecv, KJump:
		return fmt.Sprintf("%-5s t=%.6fs peer=%d tag=%#x size=%d", e.Kind, e.T, e.Peer, e.Tag, e.Size)
	case KSpanBegin, KSpanEnd:
		return fmt.Sprintf("%-5s t=%.6fs %s", e.Kind, e.T, e.Name)
	default:
		return fmt.Sprintf("%-5s t=%.6fs %s tag=%d", e.Kind, e.T, e.Name, e.Tag)
	}
}

// Recorder is a fixed-size ring buffer of the most recent events on one
// rank. It is written only by the owning rank's goroutine and read when
// that same goroutine unwinds (deadlock poison, panic), so it needs no
// locking; recording is two stores and a bump.
type Recorder struct {
	buf   []Event
	pos   int
	total uint64
}

// DefaultRecorderSize is the per-rank ring capacity when the Config
// does not choose one. Deadlock dumps promise at least the last 32
// events per rank; the default doubles that.
const DefaultRecorderSize = 64

// NewRecorder returns a recorder holding the last n events (n <= 0
// selects DefaultRecorderSize).
func NewRecorder(n int) *Recorder {
	if n <= 0 {
		n = DefaultRecorderSize
	}
	return &Recorder{buf: make([]Event, n)}
}

// Record appends one event, overwriting the oldest when full.
//
//ygm:hotpath
func (r *Recorder) Record(e Event) {
	r.buf[r.pos] = e
	r.pos++
	if r.pos == len(r.buf) {
		r.pos = 0
	}
	r.total++
}

// Total returns the number of events ever recorded (recorded minus
// retained is how many the ring has dropped).
func (r *Recorder) Total() uint64 { return r.total }

// Cap returns the ring capacity.
func (r *Recorder) Cap() int { return len(r.buf) }

// Snapshot copies the retained events, oldest first.
func (r *Recorder) Snapshot() []Event {
	n := int(r.total)
	if n > len(r.buf) {
		n = len(r.buf)
	}
	out := make([]Event, 0, n)
	start := r.pos - n
	if start < 0 {
		start += len(r.buf)
	}
	for i := 0; i < n; i++ {
		out = append(out, r.buf[(start+i)%len(r.buf)])
	}
	return out
}

// FormatEvents renders events one per line with the given indent — the
// shared formatter of DeadlockError and rank-panic dumps.
func FormatEvents(events []Event, indent string) string {
	var b strings.Builder
	for _, e := range events {
		b.WriteString(indent)
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return b.String()
}
