package obs

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"
)

// Counter is a monotonically increasing event count.
type Counter struct{ v uint64 }

// Inc adds one.
//
//ygm:hotpath
func (c *Counter) Inc() { c.v++ }

// Add adds n.
//
//ygm:hotpath
func (c *Counter) Add(n uint64) { c.v += n }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v }

// Gauge tracks an instantaneous level and its high-water mark.
type Gauge struct{ last, max float64 }

// Set records the current level, raising the high-water mark.
//
//ygm:hotpath
func (g *Gauge) Set(v float64) {
	g.last = v
	if v > g.max {
		g.max = v
	}
}

// Value returns the most recently set level.
func (g *Gauge) Value() float64 { return g.last }

// Max returns the high-water mark.
func (g *Gauge) Max() float64 { return g.max }

// HistBuckets is the number of power-of-two histogram buckets: bucket i
// counts observations v with bits.Len64(v) == i, i.e. bucket 0 holds
// zeros and bucket i holds [2^(i-1), 2^i). 32 buckets cover every
// payload size the transport can carry.
const HistBuckets = 32

// Histogram is a power-of-two-bucketed distribution of uint64
// observations (message sizes, depths). Observation is a bit-length
// computation and two increments — cheap enough for the send path.
type Histogram struct {
	counts [HistBuckets]uint64
	sum    uint64
	n      uint64
}

// Observe records one value.
//
//ygm:hotpath
func (h *Histogram) Observe(v uint64) {
	b := bits.Len64(v)
	if b >= HistBuckets {
		b = HistBuckets - 1
	}
	h.counts[b]++
	h.sum += v
	h.n++
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.n }

// Sum returns the total of all observations.
func (h *Histogram) Sum() uint64 { return h.sum }

// Mean returns the average observation, or 0 when empty.
func (h *Histogram) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.n)
}

// Registry is one rank's named-metric table. Metric lookups happen at
// construction time — layers hold the returned pointer and update it
// directly on the hot path, so steady-state updates never touch the
// name maps. A Registry is confined to its owning rank's goroutine.
type Registry struct {
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if c, ok := r.counters[name]; ok {
		return c
	}
	c := &Counter{}
	r.counters[name] = c
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if g, ok := r.gauges[name]; ok {
		return g
	}
	g := &Gauge{}
	r.gauges[name] = g
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	if h, ok := r.hists[name]; ok {
		return h
	}
	h := &Histogram{}
	r.hists[name] = h
	return h
}

// GaugeSnapshot is one gauge's frozen state.
type GaugeSnapshot struct {
	Last float64
	Max  float64
}

// HistSnapshot is one histogram's frozen state.
type HistSnapshot struct {
	Count   uint64
	Sum     uint64
	Buckets [HistBuckets]uint64
}

// Mean returns the average observation, or 0 when empty.
func (h HistSnapshot) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.Count)
}

// Snapshot is a point-in-time copy of a registry, safe to retain and
// merge after the owning rank has moved on. It can be taken mid-run
// from the owning goroutine.
type Snapshot struct {
	Counters map[string]uint64
	Gauges   map[string]GaugeSnapshot
	Hists    map[string]HistSnapshot
}

// Snapshot freezes the registry's current values.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters: make(map[string]uint64, len(r.counters)),
		Gauges:   make(map[string]GaugeSnapshot, len(r.gauges)),
		Hists:    make(map[string]HistSnapshot, len(r.hists)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.v
	}
	for name, g := range r.gauges {
		s.Gauges[name] = GaugeSnapshot{Last: g.last, Max: g.max}
	}
	for name, h := range r.hists {
		s.Hists[name] = HistSnapshot{Count: h.n, Sum: h.sum, Buckets: h.counts}
	}
	return s
}

// Counter returns the named counter's value, or 0 when absent.
func (s Snapshot) Counter(name string) uint64 { return s.Counters[name] }

// Merge combines s with other into a new Snapshot: counters and
// histograms add (counts, sums, buckets elementwise); gauges keep the
// largest high-water mark and its last value. Either side may be the
// zero Snapshot.
func (s Snapshot) Merge(other Snapshot) Snapshot {
	out := Snapshot{
		Counters: make(map[string]uint64, len(s.Counters)+len(other.Counters)),
		Gauges:   make(map[string]GaugeSnapshot, len(s.Gauges)+len(other.Gauges)),
		Hists:    make(map[string]HistSnapshot, len(s.Hists)+len(other.Hists)),
	}
	for name, v := range s.Counters {
		out.Counters[name] = v
	}
	for name, v := range other.Counters {
		out.Counters[name] += v
	}
	for name, g := range s.Gauges {
		out.Gauges[name] = g
	}
	for name, g := range other.Gauges {
		if have, ok := out.Gauges[name]; !ok || g.Max > have.Max {
			out.Gauges[name] = g
		}
	}
	for name, h := range s.Hists {
		out.Hists[name] = h
	}
	for name, h := range other.Hists {
		have := out.Hists[name]
		have.Count += h.Count
		have.Sum += h.Sum
		for i := range have.Buckets {
			have.Buckets[i] += h.Buckets[i]
		}
		out.Hists[name] = have
	}
	return out
}

// MergeSnapshots folds any number of snapshots into one.
func MergeSnapshots(snaps ...Snapshot) Snapshot {
	var out Snapshot
	for _, s := range snaps {
		out = out.Merge(s)
	}
	return out
}

// String renders the snapshot with one metric per line, sorted by name
// within each kind — the human-readable dump Report consumers print.
func (s Snapshot) String() string {
	var b strings.Builder
	for _, name := range sortedKeys(s.Counters) {
		fmt.Fprintf(&b, "counter %-32s %d\n", name, s.Counters[name])
	}
	for _, name := range sortedKeys(s.Gauges) {
		g := s.Gauges[name]
		fmt.Fprintf(&b, "gauge   %-32s last=%g max=%g\n", name, g.Last, g.Max)
	}
	for _, name := range sortedKeys(s.Hists) {
		h := s.Hists[name]
		fmt.Fprintf(&b, "hist    %-32s n=%d sum=%d mean=%.1f\n", name, h.Count, h.Sum, h.Mean())
	}
	return b.String()
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
