package obs

import (
	"fmt"
	"strings"
	"testing"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("sends")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("sends") != c {
		t.Fatal("Counter did not return the same instance on second lookup")
	}

	g := r.Gauge("depth")
	g.Set(3)
	g.Set(9)
	g.Set(2)
	if g.Value() != 2 || g.Max() != 9 {
		t.Fatalf("gauge last=%g max=%g, want last=2 max=9", g.Value(), g.Max())
	}
	if r.Gauge("depth") != g {
		t.Fatal("Gauge did not return the same instance on second lookup")
	}
}

func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	// Bucket i holds values with bits.Len64(v) == i: 0 → bucket 0,
	// 1 → bucket 1, [2,3] → bucket 2, [4,7] → bucket 3, ...
	h.Observe(0)
	h.Observe(1)
	h.Observe(2)
	h.Observe(3)
	h.Observe(7)
	h.Observe(1 << 20)
	if h.Count() != 6 {
		t.Fatalf("count = %d, want 6", h.Count())
	}
	wantSum := uint64(0 + 1 + 2 + 3 + 7 + 1<<20)
	if h.Sum() != wantSum {
		t.Fatalf("sum = %d, want %d", h.Sum(), wantSum)
	}
	wantCounts := map[int]uint64{0: 1, 1: 1, 2: 2, 3: 1, 21: 1}
	for i, c := range h.counts {
		if c != wantCounts[i] {
			t.Fatalf("bucket %d = %d, want %d", i, c, wantCounts[i])
		}
	}

	// Values beyond 2^31 still land in the top bucket rather than
	// indexing out of range.
	var top Histogram
	top.Observe(1<<63 + 5)
	if top.counts[HistBuckets-1] != 1 {
		t.Fatal("oversized observation did not clamp to the top bucket")
	}
}

func TestHistogramMean(t *testing.T) {
	var h Histogram
	if h.Mean() != 0 {
		t.Fatalf("empty mean = %g, want 0", h.Mean())
	}
	h.Observe(10)
	h.Observe(20)
	if h.Mean() != 15 {
		t.Fatalf("mean = %g, want 15", h.Mean())
	}
}

func TestSnapshotMerge(t *testing.T) {
	ra := NewRegistry()
	ra.Counter("msgs").Add(10)
	ra.Counter("only_a").Add(1)
	ra.Gauge("depth").Set(5)
	ra.Histogram("size").Observe(8)
	ra.Histogram("size").Observe(16)

	rb := NewRegistry()
	rb.Counter("msgs").Add(32)
	rb.Counter("only_b").Add(2)
	rb.Gauge("depth").Set(9)
	rb.Gauge("depth").Set(1) // last=1, max=9 — max wins the merge
	rb.Histogram("size").Observe(8)

	m := ra.Snapshot().Merge(rb.Snapshot())
	if got := m.Counter("msgs"); got != 42 {
		t.Fatalf("merged msgs = %d, want 42", got)
	}
	if m.Counter("only_a") != 1 || m.Counter("only_b") != 2 {
		t.Fatal("one-sided counters lost in merge")
	}
	if m.Counter("absent") != 0 {
		t.Fatal("absent counter should read 0")
	}
	g := m.Gauges["depth"]
	if g.Max != 9 || g.Last != 1 {
		t.Fatalf("merged gauge = %+v, want Max=9 (b's mark) with its Last=1", g)
	}
	h := m.Hists["size"]
	if h.Count != 3 || h.Sum != 32 {
		t.Fatalf("merged hist count=%d sum=%d, want 3/32", h.Count, h.Sum)
	}
	// 8 → bucket 4 (observed twice), 16 → bucket 5.
	if h.Buckets[4] != 2 || h.Buckets[5] != 1 {
		t.Fatalf("merged hist buckets[4]=%d buckets[5]=%d, want 2/1", h.Buckets[4], h.Buckets[5])
	}
	if h.Mean() != float64(32)/3 {
		t.Fatalf("merged mean = %g", h.Mean())
	}
}

func TestSnapshotMergeZero(t *testing.T) {
	r := NewRegistry()
	r.Counter("x").Inc()
	var zero Snapshot
	m := zero.Merge(r.Snapshot())
	if m.Counter("x") != 1 {
		t.Fatal("merge with zero snapshot lost data")
	}
	m2 := r.Snapshot().Merge(zero)
	if m2.Counter("x") != 1 {
		t.Fatal("merge of zero snapshot lost data")
	}
}

func TestMergeSnapshots(t *testing.T) {
	snaps := make([]Snapshot, 4)
	for i := range snaps {
		r := NewRegistry()
		r.Counter("n").Add(uint64(i + 1))
		snaps[i] = r.Snapshot()
	}
	m := MergeSnapshots(snaps...)
	if m.Counter("n") != 10 {
		t.Fatalf("MergeSnapshots n = %d, want 10", m.Counter("n"))
	}
}

func TestSnapshotString(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_count").Inc()
	r.Counter("a_count").Inc()
	r.Gauge("depth").Set(4)
	r.Histogram("size").Observe(100)
	out := r.Snapshot().String()
	ai := strings.Index(out, "a_count")
	bi := strings.Index(out, "b_count")
	if ai < 0 || bi < 0 || ai > bi {
		t.Fatalf("expected sorted counter names in output:\n%s", out)
	}
	for _, want := range []string{"counter", "gauge", "hist", "depth", "size"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestSnapshotIsFrozen(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("n")
	c.Add(3)
	s := r.Snapshot()
	c.Add(100)
	if s.Counter("n") != 3 {
		t.Fatalf("snapshot mutated after registry update: %d", s.Counter("n"))
	}
}

func TestRecorderBasic(t *testing.T) {
	rec := NewRecorder(4)
	if rec.Cap() != 4 {
		t.Fatalf("cap = %d, want 4", rec.Cap())
	}
	if got := rec.Snapshot(); len(got) != 0 {
		t.Fatalf("empty recorder snapshot has %d events", len(got))
	}
	rec.Record(Event{Kind: KSend, T: 1, Peer: 2})
	rec.Record(Event{Kind: KRecv, T: 2, Peer: 3})
	got := rec.Snapshot()
	if len(got) != 2 || got[0].Kind != KSend || got[1].Kind != KRecv {
		t.Fatalf("snapshot = %+v", got)
	}
	if rec.Total() != 2 {
		t.Fatalf("total = %d, want 2", rec.Total())
	}
}

func TestRecorderWraparound(t *testing.T) {
	rec := NewRecorder(4)
	for i := 0; i < 10; i++ {
		rec.Record(Event{Kind: KMark, T: float64(i), Tag: uint64(i)})
	}
	got := rec.Snapshot()
	if len(got) != 4 {
		t.Fatalf("retained %d events, want 4", len(got))
	}
	for i, e := range got {
		if want := uint64(6 + i); e.Tag != want {
			t.Fatalf("event %d has tag %d, want %d (oldest-first order)", i, e.Tag, want)
		}
	}
	if rec.Total() != 10 {
		t.Fatalf("total = %d, want 10", rec.Total())
	}
}

func TestRecorderDefaultSize(t *testing.T) {
	if rec := NewRecorder(0); rec.Cap() != DefaultRecorderSize {
		t.Fatalf("default cap = %d, want %d", rec.Cap(), DefaultRecorderSize)
	}
	if rec := NewRecorder(-5); rec.Cap() != DefaultRecorderSize {
		t.Fatal("negative size should select the default")
	}
}

func TestEventString(t *testing.T) {
	cases := []struct {
		e    Event
		want []string
	}{
		{Event{Kind: KSend, T: 0.001, Peer: 3, Tag: 0x10, Size: 64}, []string{"send", "peer=3", "tag=0x10", "size=64"}},
		{Event{Kind: KJump, T: 0.5, Peer: 1, Tag: 1, Size: 8}, []string{"jump", "peer=1"}},
		{Event{Kind: KSpanBegin, T: 2, Name: "drain"}, []string{"span+", "drain"}},
		{Event{Kind: KSpanEnd, T: 3, Name: "drain"}, []string{"span-", "drain"}},
		{Event{Kind: KMark, T: 4, Name: "term.gen", Tag: 7}, []string{"mark", "term.gen", "tag=7"}},
	}
	for _, tc := range cases {
		s := tc.e.String()
		for _, want := range tc.want {
			if !strings.Contains(s, want) {
				t.Fatalf("%q missing %q", s, want)
			}
		}
	}
	if got := Kind(200).String(); !strings.Contains(got, "200") {
		t.Fatalf("unknown kind string = %q", got)
	}
}

func TestFormatEvents(t *testing.T) {
	events := []Event{
		{Kind: KSend, T: 1, Peer: 1},
		{Kind: KMark, T: 2, Name: "m"},
	}
	out := FormatEvents(events, "    ")
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2:\n%s", len(lines), out)
	}
	for i, l := range lines {
		if !strings.HasPrefix(l, "    ") {
			t.Fatalf("line %d not indented: %q", i, l)
		}
	}
	if FormatEvents(nil, "  ") != "" {
		t.Fatal("nil events should format to empty string")
	}
}

func TestRecordDoesNotAllocate(t *testing.T) {
	rec := NewRecorder(32)
	e := Event{Kind: KSend, T: 1, Peer: 2, Tag: 3, Size: 4}
	allocs := testing.AllocsPerRun(100, func() {
		rec.Record(e)
	})
	if allocs != 0 {
		t.Fatalf("Record allocates %.1f per op, want 0", allocs)
	}
	r := NewRegistry()
	c := r.Counter("n")
	g := r.Gauge("g")
	h := r.Histogram("h")
	allocs = testing.AllocsPerRun(100, func() {
		c.Inc()
		g.Set(1)
		h.Observe(64)
	})
	if allocs != 0 {
		t.Fatalf("metric writes allocate %.1f per op, want 0", allocs)
	}
}

func ExampleSnapshot_String() {
	r := NewRegistry()
	r.Counter("ygm.sends").Add(2)
	fmt.Print(r.Snapshot().String())
	// Output: counter ygm.sends                        2
}
