// Package obs is the virtual-time observability substrate of the YGM
// reproduction: typed per-rank metrics (counters, gauges, histograms)
// with mid-run snapshots that merge across ranks, and a fixed-size
// flight recorder — a ring buffer of the most recent transport and
// mailbox events — that deadlock and panic reports dump so failures
// show what led to the hang, not just the final state.
//
// Everything in this package is confined to one rank's goroutine: a
// Registry or Recorder is owned by the rank that writes it, snapshots
// are taken on that goroutine, and cross-rank aggregation happens only
// after the run joins (see transport.Report). None of the write paths
// allocate once the registry has been populated, so the instrumentation
// can sit on the exchange hot path without breaking its zero-allocation
// contract.
package obs
