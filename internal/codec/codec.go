// Package codec is the serialization substrate YGM uses for
// variable-length messages — the role the cereal C++ library plays in the
// original implementation. It provides a compact, allocation-conscious
// binary encoding for the primitive types message payloads are built
// from (unsigned/signed varints, fixed-width integers, floats, byte
// strings) plus a Marshaler/Unmarshaler pair for user-defined records.
//
// The encoding is symmetric and self-delimiting per field, but carries no
// type tags: reader and writer must agree on the schema, exactly as with
// cereal archives.
package codec

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// ErrShortBuffer is returned when a Reader runs out of bytes mid-field.
var ErrShortBuffer = errors.New("codec: buffer too short")

// ErrOverflow is returned when a varint is longer than its type allows.
var ErrOverflow = errors.New("codec: varint overflows")

// Marshaler is implemented by records that can append their own encoding.
type Marshaler interface {
	MarshalYGM(w *Writer)
}

// Unmarshaler is implemented by records that can decode themselves.
type Unmarshaler interface {
	UnmarshalYGM(r *Reader) error
}

// Writer appends encoded fields to a byte buffer. The zero value is ready
// to use; Bytes returns the accumulated encoding.
type Writer struct {
	buf []byte
}

// NewWriter returns a Writer with the given initial capacity.
func NewWriter(capacity int) *Writer {
	return &Writer{buf: make([]byte, 0, capacity)}
}

// Bytes returns the encoded buffer. The slice aliases the Writer's
// internal storage; it is valid until the next append.
func (w *Writer) Bytes() []byte { return w.buf }

// Len returns the number of encoded bytes so far.
func (w *Writer) Len() int { return len(w.buf) }

// Reset truncates the writer for reuse, retaining capacity.
func (w *Writer) Reset() { w.buf = w.buf[:0] }

// Arm gives a writer that has no storage yet an initial capacity of n
// bytes. Callers that know their typical fill level (coalescing buffers
// fill to a flush threshold) use it to claim storage in one allocation
// instead of letting the first fill double its way up from empty. A
// writer that already owns storage — any capacity at all — is left
// alone, so re-armed buffers of other sizes keep circulating.
func (w *Writer) Arm(n int) {
	if cap(w.buf) == 0 && n > 0 {
		w.buf = make([]byte, 0, n)
	}
}

// Detach hands the encoded buffer to the caller and re-arms the Writer
// with replacement storage (which may be nil). The returned slice is
// exactly the accumulated encoding and no longer aliases the Writer;
// replacement's contents are discarded but its capacity is kept. This is
// the zero-copy handoff used by pooled coalescing buffers: the packed
// bytes ship as-is and a recycled buffer takes their place.
func (w *Writer) Detach(replacement []byte) []byte {
	b := w.buf
	w.buf = replacement[:0]
	return b
}

// Uvarint appends v in unsigned LEB128 form (1-10 bytes).
func (w *Writer) Uvarint(v uint64) {
	w.buf = binary.AppendUvarint(w.buf, v)
}

// Varint appends v in zig-zag signed varint form.
func (w *Writer) Varint(v int64) {
	w.buf = binary.AppendVarint(w.buf, v)
}

// Uint32 appends v as 4 little-endian bytes.
func (w *Writer) Uint32(v uint32) {
	w.buf = binary.LittleEndian.AppendUint32(w.buf, v)
}

// Uint64 appends v as 8 little-endian bytes.
func (w *Writer) Uint64(v uint64) {
	w.buf = binary.LittleEndian.AppendUint64(w.buf, v)
}

// Byte appends a single byte.
func (w *Writer) Byte(b byte) { w.buf = append(w.buf, b) }

// Float64 appends v as its IEEE-754 bits, little endian.
func (w *Writer) Float64(v float64) {
	w.Uint64(math.Float64bits(v))
}

// Bytes0 appends a length-prefixed byte string.
func (w *Writer) Bytes0(b []byte) {
	w.Uvarint(uint64(len(b)))
	w.buf = append(w.buf, b...)
}

// String appends a length-prefixed string.
func (w *Writer) String(s string) {
	w.Uvarint(uint64(len(s)))
	w.buf = append(w.buf, s...)
}

// Uvarints appends a length-prefixed slice of unsigned varints.
func (w *Writer) Uvarints(vs []uint64) {
	w.Uvarint(uint64(len(vs)))
	for _, v := range vs {
		w.Uvarint(v)
	}
}

// Float64s appends a length-prefixed slice of float64s.
func (w *Writer) Float64s(vs []float64) {
	w.Uvarint(uint64(len(vs)))
	for _, v := range vs {
		w.Float64(v)
	}
}

// Marshal appends a user record's encoding.
func (w *Writer) Marshal(m Marshaler) { m.MarshalYGM(w) }

// Reader consumes encoded fields from a byte buffer.
type Reader struct {
	buf []byte
	off int
}

// NewReader returns a Reader over buf. The Reader does not copy buf.
func NewReader(buf []byte) *Reader { return &Reader{buf: buf} }

// Reset repoints the Reader at buf and rewinds it, so decode-heavy hot
// paths (the container engine's per-message dispatch) can reuse one
// Reader value instead of allocating a fresh one per payload.
func (r *Reader) Reset(buf []byte) {
	r.buf = buf
	r.off = 0
}

// Remaining returns the number of unread bytes.
func (r *Reader) Remaining() int { return len(r.buf) - r.off }

// Offset returns the number of bytes consumed so far.
func (r *Reader) Offset() int { return r.off }

// Uvarint decodes an unsigned varint. Single-byte values — the bulk of
// record headers and small lengths — take the branch-free fast path.
func (r *Reader) Uvarint() (uint64, error) {
	if r.off < len(r.buf) {
		if b := r.buf[r.off]; b < 0x80 {
			r.off++
			return uint64(b), nil
		}
	}
	v, n := binary.Uvarint(r.buf[r.off:])
	if n > 0 {
		r.off += n
		return v, nil
	}
	if n == 0 {
		return 0, ErrShortBuffer
	}
	return 0, ErrOverflow
}

// Varint decodes a zig-zag signed varint.
func (r *Reader) Varint() (int64, error) {
	v, n := binary.Varint(r.buf[r.off:])
	if n > 0 {
		r.off += n
		return v, nil
	}
	if n == 0 {
		return 0, ErrShortBuffer
	}
	return 0, ErrOverflow
}

// Uint32 decodes 4 little-endian bytes.
func (r *Reader) Uint32() (uint32, error) {
	if r.Remaining() < 4 {
		return 0, ErrShortBuffer
	}
	v := binary.LittleEndian.Uint32(r.buf[r.off:])
	r.off += 4
	return v, nil
}

// Uint64 decodes 8 little-endian bytes.
func (r *Reader) Uint64() (uint64, error) {
	if r.Remaining() < 8 {
		return 0, ErrShortBuffer
	}
	v := binary.LittleEndian.Uint64(r.buf[r.off:])
	r.off += 8
	return v, nil
}

// Byte decodes a single byte.
func (r *Reader) Byte() (byte, error) {
	if r.Remaining() < 1 {
		return 0, ErrShortBuffer
	}
	b := r.buf[r.off]
	r.off++
	return b, nil
}

// Float64 decodes an IEEE-754 double.
func (r *Reader) Float64() (float64, error) {
	bits, err := r.Uint64()
	if err != nil {
		return 0, err
	}
	return math.Float64frombits(bits), nil
}

// Bytes0 decodes a length-prefixed byte string. The returned slice
// aliases the Reader's buffer.
func (r *Reader) Bytes0() ([]byte, error) {
	n, err := r.Uvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(r.Remaining()) {
		return nil, fmt.Errorf("codec: byte string of %d exceeds %d remaining: %w", n, r.Remaining(), ErrShortBuffer)
	}
	b := r.buf[r.off : r.off+int(n)]
	r.off += int(n)
	return b, nil
}

// String decodes a length-prefixed string, copying out of the buffer.
func (r *Reader) String() (string, error) {
	b, err := r.Bytes0()
	return string(b), err
}

// Uvarints decodes a length-prefixed slice of unsigned varints.
func (r *Reader) Uvarints() ([]uint64, error) {
	n, err := r.Uvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(r.Remaining()) { // each element is at least one byte
		return nil, fmt.Errorf("codec: %d varints exceed %d remaining bytes: %w", n, r.Remaining(), ErrShortBuffer)
	}
	out := make([]uint64, n)
	for i := range out {
		if out[i], err = r.Uvarint(); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Float64s decodes a length-prefixed slice of float64s.
func (r *Reader) Float64s() ([]float64, error) {
	n, err := r.Uvarint()
	if err != nil {
		return nil, err
	}
	// Divide rather than multiply: n*8 overflows uint64 for adversarial
	// counts and would slip past the bound straight into makeslice.
	if n > uint64(r.Remaining())/8 {
		return nil, fmt.Errorf("codec: %d floats exceed %d remaining bytes: %w", n, r.Remaining(), ErrShortBuffer)
	}
	out := make([]float64, n)
	for i := range out {
		if out[i], err = r.Float64(); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Unmarshal decodes a user record in place.
func (r *Reader) Unmarshal(m Unmarshaler) error { return m.UnmarshalYGM(r) }

// UvarintLen returns the encoded size of v as an unsigned varint without
// encoding it — useful for pre-sizing coalescing buffers.
func UvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}
