package codec

import (
	"bytes"
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestUvarintRoundTrip(t *testing.T) {
	w := NewWriter(16)
	vals := []uint64{0, 1, 127, 128, 1 << 20, math.MaxUint64}
	for _, v := range vals {
		w.Uvarint(v)
	}
	r := NewReader(w.Bytes())
	for _, want := range vals {
		got, err := r.Uvarint()
		if err != nil || got != want {
			t.Fatalf("Uvarint = %d, %v; want %d", got, err, want)
		}
	}
	if r.Remaining() != 0 {
		t.Fatalf("%d bytes left over", r.Remaining())
	}
}

func TestVarintRoundTrip(t *testing.T) {
	w := NewWriter(16)
	vals := []int64{0, -1, 1, math.MinInt64, math.MaxInt64, -12345}
	for _, v := range vals {
		w.Varint(v)
	}
	r := NewReader(w.Bytes())
	for _, want := range vals {
		got, err := r.Varint()
		if err != nil || got != want {
			t.Fatalf("Varint = %d, %v; want %d", got, err, want)
		}
	}
}

func TestFixedWidthRoundTrip(t *testing.T) {
	w := &Writer{}
	w.Uint32(0xdeadbeef)
	w.Uint64(0x0123456789abcdef)
	w.Byte(0x42)
	w.Float64(math.Pi)
	w.Float64(math.Inf(-1))
	r := NewReader(w.Bytes())
	if v, _ := r.Uint32(); v != 0xdeadbeef {
		t.Fatalf("Uint32 = %x", v)
	}
	if v, _ := r.Uint64(); v != 0x0123456789abcdef {
		t.Fatalf("Uint64 = %x", v)
	}
	if v, _ := r.Byte(); v != 0x42 {
		t.Fatalf("Byte = %x", v)
	}
	if v, _ := r.Float64(); v != math.Pi {
		t.Fatalf("Float64 = %v", v)
	}
	if v, _ := r.Float64(); !math.IsInf(v, -1) {
		t.Fatalf("Float64 = %v, want -Inf", v)
	}
}

func TestStringsAndBytes(t *testing.T) {
	w := &Writer{}
	w.String("hello, mailbox")
	w.Bytes0([]byte{1, 2, 3})
	w.String("")
	w.Bytes0(nil)
	r := NewReader(w.Bytes())
	if s, err := r.String(); err != nil || s != "hello, mailbox" {
		t.Fatalf("String = %q, %v", s, err)
	}
	if b, err := r.Bytes0(); err != nil || !bytes.Equal(b, []byte{1, 2, 3}) {
		t.Fatalf("Bytes0 = %v, %v", b, err)
	}
	if s, err := r.String(); err != nil || s != "" {
		t.Fatalf("empty String = %q, %v", s, err)
	}
	if b, err := r.Bytes0(); err != nil || len(b) != 0 {
		t.Fatalf("empty Bytes0 = %v, %v", b, err)
	}
}

func TestSlices(t *testing.T) {
	w := &Writer{}
	us := []uint64{9, 8, 7, 1 << 40}
	fs := []float64{1.5, -2.25, 0}
	w.Uvarints(us)
	w.Float64s(fs)
	r := NewReader(w.Bytes())
	gotU, err := r.Uvarints()
	if err != nil {
		t.Fatal(err)
	}
	for i := range us {
		if gotU[i] != us[i] {
			t.Fatalf("Uvarints = %v", gotU)
		}
	}
	gotF, err := r.Float64s()
	if err != nil {
		t.Fatal(err)
	}
	for i := range fs {
		if gotF[i] != fs[i] {
			t.Fatalf("Float64s = %v", gotF)
		}
	}
}

type record struct {
	ID    uint64
	Name  string
	Score float64
}

func (rec *record) MarshalYGM(w *Writer) {
	w.Uvarint(rec.ID)
	w.String(rec.Name)
	w.Float64(rec.Score)
}

func (rec *record) UnmarshalYGM(r *Reader) error {
	var err error
	if rec.ID, err = r.Uvarint(); err != nil {
		return err
	}
	if rec.Name, err = r.String(); err != nil {
		return err
	}
	rec.Score, err = r.Float64()
	return err
}

func TestMarshalerRoundTrip(t *testing.T) {
	w := &Writer{}
	in := record{ID: 77, Name: "delegate", Score: 0.57}
	w.Marshal(&in)
	var out record
	if err := NewReader(w.Bytes()).Unmarshal(&out); err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("round trip = %+v, want %+v", out, in)
	}
}

func TestShortBufferErrors(t *testing.T) {
	r := NewReader(nil)
	if _, err := r.Uvarint(); !errors.Is(err, ErrShortBuffer) {
		t.Errorf("Uvarint on empty = %v", err)
	}
	if _, err := r.Uint32(); !errors.Is(err, ErrShortBuffer) {
		t.Errorf("Uint32 on empty = %v", err)
	}
	if _, err := r.Uint64(); !errors.Is(err, ErrShortBuffer) {
		t.Errorf("Uint64 on empty = %v", err)
	}
	if _, err := r.Byte(); !errors.Is(err, ErrShortBuffer) {
		t.Errorf("Byte on empty = %v", err)
	}
	if _, err := r.Bytes0(); !errors.Is(err, ErrShortBuffer) {
		t.Errorf("Bytes0 on empty = %v", err)
	}
	// Length prefix claims more than available.
	w := &Writer{}
	w.Uvarint(100)
	r = NewReader(w.Bytes())
	if _, err := r.Bytes0(); !errors.Is(err, ErrShortBuffer) {
		t.Errorf("oversized Bytes0 = %v", err)
	}
	r = NewReader(w.Bytes())
	if _, err := r.Uvarints(); !errors.Is(err, ErrShortBuffer) {
		t.Errorf("oversized Uvarints = %v", err)
	}
	r = NewReader(w.Bytes())
	if _, err := r.Float64s(); !errors.Is(err, ErrShortBuffer) {
		t.Errorf("oversized Float64s = %v", err)
	}
}

func TestVarintOverflow(t *testing.T) {
	// 11 continuation bytes overflow a uint64 varint.
	buf := bytes.Repeat([]byte{0xff}, 11)
	if _, err := NewReader(buf).Uvarint(); !errors.Is(err, ErrOverflow) {
		t.Fatalf("got %v, want ErrOverflow", err)
	}
}

func TestWriterReset(t *testing.T) {
	w := NewWriter(8)
	w.Uvarint(5)
	if w.Len() == 0 {
		t.Fatal("writer should hold bytes")
	}
	w.Reset()
	if w.Len() != 0 {
		t.Fatal("reset writer should be empty")
	}
	w.Uvarint(6)
	if v, _ := NewReader(w.Bytes()).Uvarint(); v != 6 {
		t.Fatal("reset writer should encode fresh values")
	}
}

func TestUvarintLenMatchesEncoding(t *testing.T) {
	f := func(v uint64) bool {
		w := &Writer{}
		w.Uvarint(v)
		return UvarintLen(v) == w.Len()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestMixedRoundTripProperty fuzzes sequences of mixed-type fields and
// checks offset bookkeeping is consistent.
func TestMixedRoundTripProperty(t *testing.T) {
	f := func(u uint64, i int64, s string, fl float64, b []byte) bool {
		w := &Writer{}
		w.Uvarint(u)
		w.Varint(i)
		w.String(s)
		w.Float64(fl)
		w.Bytes0(b)
		r := NewReader(w.Bytes())
		gu, err1 := r.Uvarint()
		gi, err2 := r.Varint()
		gs, err3 := r.String()
		gf, err4 := r.Float64()
		gb, err5 := r.Bytes0()
		if err1 != nil || err2 != nil || err3 != nil || err4 != nil || err5 != nil {
			return false
		}
		if r.Offset() != w.Len() || r.Remaining() != 0 {
			return false
		}
		floatOK := gf == fl || (math.IsNaN(gf) && math.IsNaN(fl))
		return gu == u && gi == i && gs == s && floatOK && bytes.Equal(gb, b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
