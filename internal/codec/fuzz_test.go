package codec

import (
	"bytes"
	"math"
	"testing"
)

// FuzzCodecRoundTrip checks the two codec contracts the mailbox stack
// depends on: every value written by a Writer reads back identically in
// schema order, and a Reader over arbitrary (adversarial) bytes returns
// errors rather than panicking or over-reading.
func FuzzCodecRoundTrip(f *testing.F) {
	f.Add(uint64(0), int64(0), uint32(0), byte(0), float64(0), []byte(nil), "")
	f.Add(uint64(1), int64(-1), uint32(7), byte(0xff), 3.14, []byte{1, 2, 3}, "ygm")
	f.Add(uint64(math.MaxUint64), int64(math.MinInt64), uint32(math.MaxUint32),
		byte(0x80), math.Inf(-1), bytes.Repeat([]byte{0xaa}, 300), "payload\x00with\xffbytes")
	f.Add(uint64(1<<63), int64(1<<62), uint32(1<<31), byte(1), math.SmallestNonzeroFloat64,
		[]byte{0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 1}, "")
	f.Fuzz(func(t *testing.T, u uint64, i int64, u32 uint32, b byte, fl float64, bs []byte, s string) {
		w := NewWriter(0)
		w.Uvarint(u)
		w.Varint(i)
		w.Uint32(u32)
		w.Byte(b)
		w.Float64(fl)
		w.Bytes0(bs)
		w.String(s)
		w.Uvarints([]uint64{u, uint64(i), uint64(len(bs))})

		r := NewReader(w.Bytes())
		gotU, err := r.Uvarint()
		if err != nil || gotU != u {
			t.Fatalf("Uvarint: %d, %v (want %d)", gotU, err, u)
		}
		gotI, err := r.Varint()
		if err != nil || gotI != i {
			t.Fatalf("Varint: %d, %v (want %d)", gotI, err, i)
		}
		got32, err := r.Uint32()
		if err != nil || got32 != u32 {
			t.Fatalf("Uint32: %d, %v (want %d)", got32, err, u32)
		}
		gotB, err := r.Byte()
		if err != nil || gotB != b {
			t.Fatalf("Byte: %d, %v (want %d)", gotB, err, b)
		}
		gotF, err := r.Float64()
		if err != nil {
			t.Fatalf("Float64: %v", err)
		}
		if gotF != fl && !(math.IsNaN(gotF) && math.IsNaN(fl)) {
			t.Fatalf("Float64: %v (want %v)", gotF, fl)
		}
		gotBs, err := r.Bytes0()
		if err != nil || !bytes.Equal(gotBs, bs) {
			t.Fatalf("Bytes0: %q, %v (want %q)", gotBs, err, bs)
		}
		gotS, err := r.String()
		if err != nil || gotS != s {
			t.Fatalf("String: %q, %v (want %q)", gotS, err, s)
		}
		gotVs, err := r.Uvarints()
		if err != nil || len(gotVs) != 3 || gotVs[0] != u || gotVs[1] != uint64(i) || gotVs[2] != uint64(len(bs)) {
			t.Fatalf("Uvarints: %v, %v", gotVs, err)
		}
		if r.Remaining() != 0 {
			t.Fatalf("%d bytes left after full schema read", r.Remaining())
		}

		// Adversarial decode: arbitrary bytes through every decoder must
		// error cleanly, never panic, and never read past the buffer.
		ar := NewReader(bs)
		for _, step := range []func() error{
			func() error { _, err := ar.Uvarint(); return err },
			func() error { _, err := ar.Varint(); return err },
			func() error { _, err := ar.Bytes0(); return err },
			func() error { _, err := ar.Uvarints(); return err },
			func() error { _, err := ar.String(); return err },
			func() error { _, err := ar.Uint32(); return err },
			func() error { _, err := ar.Float64s(); return err },
			func() error { _, err := ar.Byte(); return err },
		} {
			_ = step() // errors expected; panics are the failure mode
			if ar.Offset() > len(bs) {
				t.Fatalf("reader offset %d past buffer %d", ar.Offset(), len(bs))
			}
		}
	})
}
