package synch

import (
	"strings"
	"testing"

	"ygm/internal/machine"
)

// logBuilder assembles hand-written event logs for checker tests.
type logBuilder struct {
	l *Log
}

func newLog(world int) *logBuilder {
	return &logBuilder{l: &Log{World: world, Events: make([][]Event, world)}}
}

func (b *logBuilder) send(rank int, key uint64, dst int) *logBuilder {
	b.l.Events[rank] = append(b.l.Events[rank], Event{Kind: KindSend, Key: key, Dst: int32(dst)})
	return b
}

func (b *logBuilder) spawn(rank int, key uint64, dst int, parent uint64) *logBuilder {
	b.l.Events[rank] = append(b.l.Events[rank],
		Event{Kind: KindSend, Key: key, Dst: int32(dst), Spawned: true, Parent: parent})
	return b
}

func (b *logBuilder) bcast(rank int, key uint64) *logBuilder {
	b.l.Events[rank] = append(b.l.Events[rank], Event{Kind: KindBcast, Key: key, Dst: -1})
	return b
}

func (b *logBuilder) recv(rank int, key uint64) *logBuilder {
	b.l.Events[rank] = append(b.l.Events[rank], Event{Kind: KindRecv, Key: key, Dst: -1})
	return b
}

func (b *logBuilder) barrier(rank int, id uint64) *logBuilder {
	b.l.Events[rank] = append(b.l.Events[rank], Event{Kind: KindBarrier, Key: id, Dst: -1})
	return b
}

// mustOK asserts a log checks out synchronizable and its certificate
// survives the independent validator.
func mustOK(t *testing.T, l *Log) *Certificate {
	t.Helper()
	v := Check(l)
	if !v.OK {
		t.Fatalf("expected synchronizable, got violation: %v", v.Violation)
	}
	if v.Cert == nil {
		t.Fatalf("OK verdict without certificate")
	}
	if err := ValidateCertificate(l, v.Cert); err != nil {
		t.Fatalf("checker certificate rejected by validator: %v", err)
	}
	return v.Cert
}

func TestCheckEmptyLog(t *testing.T) {
	cert := mustOK(t, newLog(4).l)
	if cert.Rounds != 0 {
		t.Fatalf("empty log wants 0 rounds, got %d", cert.Rounds)
	}
}

func TestCheckPingPong(t *testing.T) {
	// A sends k1 to B; B's handler responds with k2. The causal spawn
	// link forces the response one round after the request.
	b := newLog(2)
	b.send(0, 1, 1)
	b.recv(1, 1).spawn(1, 2, 0, 1)
	b.recv(0, 2)
	cert := mustOK(t, b.l)
	if cert.Rounds != 2 {
		t.Fatalf("ping-pong wants 2 rounds, got %d", cert.Rounds)
	}
	k1 := cert.Phase[MsgRef{Key: 1, Copy: -1}]
	k2 := cert.Phase[MsgRef{Key: 2, Copy: -1}]
	if !(k1 < k2) {
		t.Fatalf("response round %d not after request round %d", k2, k1)
	}
}

func TestCheckSelfSend(t *testing.T) {
	b := newLog(1)
	b.send(0, 1, 0).recv(0, 1)
	cert := mustOK(t, b.l)
	if cert.Rounds != 1 {
		t.Fatalf("self-send wants 1 round, got %d", cert.Rounds)
	}
}

func TestCheckBarrierSeparatesRounds(t *testing.T) {
	b := newLog(2)
	b.send(0, 1, 1).barrier(0, 7).send(0, 2, 1)
	b.recv(1, 1).barrier(1, 7).recv(1, 2)
	cert := mustOK(t, b.l)
	if cert.Rounds != 2 {
		t.Fatalf("barrier-split run wants 2 rounds, got %d", cert.Rounds)
	}
	if beta := cert.Barrier[7]; beta != cert.Phase[MsgRef{Key: 1, Copy: -1}] {
		t.Fatalf("barrier closes round %d, first message assigned %d",
			beta, cert.Phase[MsgRef{Key: 1, Copy: -1}])
	}
}

func TestCheckBroadcastCopies(t *testing.T) {
	b := newLog(3)
	b.bcast(0, 5)
	b.recv(1, 5)
	b.recv(2, 5)
	cert := mustOK(t, b.l)
	if _, ok := cert.Phase[MsgRef{Key: 5, Copy: 1}]; !ok {
		t.Fatalf("no round for broadcast copy at rank 1: %v", cert.Phase)
	}
	if _, ok := cert.Phase[MsgRef{Key: 5, Copy: 2}]; !ok {
		t.Fatalf("no round for broadcast copy at rank 2: %v", cert.Phase)
	}
}

func TestCheckCommutableReceives(t *testing.T) {
	// C receives from A and B in the opposite order of their (causally
	// unrelated) sends: fine, receives of a round are unordered.
	b := newLog(3)
	b.send(0, 1, 2)
	b.send(1, 2, 2)
	b.recv(2, 2).recv(2, 1)
	mustOK(t, b.l)
}

// TestCheckStragglerDelivery pins a legitimate lazy-mailbox shape: rank
// 1 is still inside its quiescence barrier when rank 0 — which passed
// first — already sends phase-1 traffic, so rank 1 delivers the
// next-phase straggler before recording its own barrier event. The
// bounded model must accept this (receives carry no edge into the
// rank's following barrier).
func TestCheckStragglerDelivery(t *testing.T) {
	b := newLog(2)
	b.send(0, 1, 1).barrier(0, 7).send(0, 2, 1)
	b.recv(1, 1).recv(1, 2).barrier(1, 7)
	cert := mustOK(t, b.l)
	if p1, p2 := cert.Phase[MsgRef{Key: 1, Copy: -1}], cert.Phase[MsgRef{Key: 2, Copy: -1}]; !(p1 < p2) {
		t.Fatalf("straggler round %d not after pre-barrier round %d", p2, p1)
	}
}

// TestCheckStragglerSpawn is the harder variant: the straggler's
// handler spawns a child, so a send event appears on rank 1 before rank
// 1's own barrier event even though the whole chain is rooted in the
// next phase. The phase window must follow the root application send
// (rank 0's post-barrier send has no following barrier, so the window
// is open), not the spawning rank's local barrier position.
func TestCheckStragglerSpawn(t *testing.T) {
	b := newLog(2)
	b.send(0, 1, 1).barrier(0, 7).send(0, 2, 1).recv(0, 3)
	b.recv(1, 1).recv(1, 2).spawn(1, 3, 0, 2).barrier(1, 7)
	cert := mustOK(t, b.l)
	bar := cert.Barrier[7]
	if p3 := cert.Phase[MsgRef{Key: 3, Copy: -1}]; p3 <= bar {
		t.Fatalf("next-phase spawn assigned round %d at or before barrier round %d", p3, bar)
	}
}

// TestCheckKnownFalseNegative pins the deliberate weakening documented
// in DESIGN.md §12: a cross-channel causal inversion with no send after
// the late receive is accepted, because receive→receive order carries
// no round information in the bounded model.
func TestCheckKnownFalseNegative(t *testing.T) {
	b := newLog(3)
	b.send(0, 1, 2).send(0, 2, 1)  // A: k1 -> C, k2 -> B
	b.recv(1, 2).spawn(1, 3, 2, 2) // B's handler reacts to k2 with k3 -> C
	b.recv(2, 3).recv(2, 1)        // C sees the reaction before k1
	mustOK(t, b.l)
}

func TestCheckFIFOViolation(t *testing.T) {
	b := newLog(2)
	b.send(0, 1, 1).send(0, 2, 1)
	b.recv(1, 2).recv(1, 1)
	v := Check(b.l)
	if v.OK {
		t.Fatalf("same-channel swap accepted")
	}
	if v.Violation.Kind != "fifo" {
		t.Fatalf("want fifo violation, got %v", v.Violation)
	}
	want := [2]MsgRef{{Key: 1, Copy: -1}, {Key: 2, Copy: -1}}
	if v.Violation.Pair != want {
		t.Fatalf("want pair %v, got %v", want, v.Violation.Pair)
	}
	if !strings.Contains(v.Violation.String(), "fifo") {
		t.Fatalf("violation string %q does not name the kind", v.Violation.String())
	}
}

func TestCheckMutualCycle(t *testing.T) {
	// Each rank's handler for the other's message spawns its own:
	// φ(k1) < φ(k2) and φ(k2) < φ(k1) — the minimal strict causal
	// cycle (the crossing pair of the synchronizability literature).
	b := newLog(2)
	b.recv(0, 2).spawn(0, 1, 1, 2)
	b.recv(1, 1).spawn(1, 2, 0, 1)
	v := Check(b.l)
	if v.OK {
		t.Fatalf("mutual recv-before-send accepted")
	}
	if v.Violation.Kind != "cycle" {
		t.Fatalf("want cycle violation, got %v", v.Violation)
	}
	if len(v.Violation.Cycle) != 2 {
		t.Fatalf("want the minimal 2-message cycle, got %v", v.Violation.Cycle)
	}
}

func TestCheckBarrierCrossing(t *testing.T) {
	// A message sent before a barrier but delivered after it on the
	// destination crosses the phase boundary.
	b := newLog(2)
	b.send(0, 1, 1).barrier(0, 3)
	b.barrier(1, 3).recv(1, 1)
	v := Check(b.l)
	if v.OK {
		t.Fatalf("barrier-crossing delivery accepted")
	}
	if v.Violation.Kind != "cycle" {
		t.Fatalf("want cycle violation, got %v", v.Violation)
	}
	if !strings.Contains(v.Violation.Detail, "barrier") {
		t.Fatalf("detail %q does not mention the barrier", v.Violation.Detail)
	}
}

func TestCheckOrphanAndUndelivered(t *testing.T) {
	b := newLog(2)
	b.send(0, 1, 1) // never delivered
	b.recv(1, 9)    // never sent
	v := Check(b.l)
	if !v.OK {
		t.Fatalf("orphans/undelivered must not fail synchronizability: %v", v.Violation)
	}
	if v.Undelivered != 1 || v.Orphans != 1 {
		t.Fatalf("want 1 undelivered / 1 orphan, got %d / %d", v.Undelivered, v.Orphans)
	}
}

func TestValidateRejectsCorruptCertificate(t *testing.T) {
	b := newLog(2)
	b.send(0, 1, 1)
	b.recv(1, 1).spawn(1, 2, 0, 1)
	b.recv(0, 2)
	cert := mustOK(t, b.l)

	flat := &Certificate{Rounds: cert.Rounds, Phase: map[MsgRef]int{}, Barrier: map[uint64]int{}}
	for k, p := range cert.Phase {
		flat.Phase[k] = p
	}
	// Collapse the response into the request's round: violates the
	// strict parent→spawn rule on rank 1.
	flat.Phase[MsgRef{Key: 2, Copy: -1}] = flat.Phase[MsgRef{Key: 1, Copy: -1}]
	if err := ValidateCertificate(b.l, flat); err == nil {
		t.Fatalf("validator accepted a same-round handler response")
	}

	missing := &Certificate{Rounds: cert.Rounds, Phase: map[MsgRef]int{}, Barrier: map[uint64]int{}}
	for k, p := range cert.Phase {
		missing.Phase[k] = p
	}
	delete(missing.Phase, MsgRef{Key: 2, Copy: -1})
	if err := ValidateCertificate(b.l, missing); err == nil {
		t.Fatalf("validator accepted a certificate missing a message")
	}

	if err := ValidateCertificate(b.l, nil); err == nil {
		t.Fatalf("validator accepted a nil certificate")
	}

	narrow := &Certificate{Rounds: 0, Phase: cert.Phase, Barrier: cert.Barrier}
	if err := ValidateCertificate(b.l, narrow); err == nil {
		t.Fatalf("validator accepted rounds outside the declared range")
	}
}

func TestRecorderRoundTrip(t *testing.T) {
	r := NewRecorder(2)
	r.Send(0, Key64(0, 0), 1)
	r.Recv(1, Key64(0, 0))
	r.Spawn(1, Key64(1, 5), 0, Key64(0, 0))
	r.Recv(0, Key64(1, 5))
	r.Barrier(0, 1)
	r.Barrier(1, 1)
	r.PacketSent(0, 1, 0, 64, 0, 1e-6)
	r.PacketReceived(0, 1, 0, 64, 1e-6)
	l := r.Log()
	if l.World != 2 || l.PktSent != 1 || l.PktRecv != 1 {
		t.Fatalf("log header mismatch: %+v", l)
	}
	cert := mustOK(t, l)
	if req, resp := cert.Phase[MsgRef{Key: Key64(0, 0), Copy: -1}], cert.Phase[MsgRef{Key: Key64(1, 5), Copy: -1}]; !(req < resp) {
		t.Fatalf("recorded spawn round %d not after its parent's round %d", resp, req)
	}
}

func TestKey64(t *testing.T) {
	k := Key64(machine.Rank(3), 41)
	if k>>32 != 3 || k&0xffffffff != 41 {
		t.Fatalf("Key64 packed %x", k)
	}
	ref := MsgRef{Key: k, Copy: -1}
	if ref.String() != "3#41" {
		t.Fatalf("MsgRef string %q", ref.String())
	}
	copyRef := MsgRef{Key: k, Copy: 7}
	if copyRef.String() != "3#41@7" {
		t.Fatalf("copy MsgRef string %q", copyRef.String())
	}
}
