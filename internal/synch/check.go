package synch

import "fmt"

// Certificate is a synchronous round schedule witnessing that a run is
// reorder-equivalent to round-based execution: every message is sent
// and received in its assigned round, rounds increase strictly along
// every causal (spawn) chain and across every barrier, rounds never
// decrease along application program order or along a FIFO channel, and
// every message's round falls inside its phase window — at or before
// the barrier closing the phase its root application send belongs to.
// ValidateCertificate re-checks all of that against the raw log by an
// independent rule walk.
type Certificate struct {
	// Rounds is the number of exchange phases (max assigned round + 1).
	Rounds int
	// Phase assigns each message instance its round.
	Phase map[MsgRef]int
	// Barrier assigns each global barrier id the round it closes: every
	// message whose phase window ends at this barrier has round <=
	// Barrier[id], and every event observed after the barrier returned
	// on a rank has round > Barrier[id].
	Barrier map[uint64]int
}

// Violation is the counterexample produced when a run is not
// synchronizable: either a same-channel FIFO inversion (Kind "fifo",
// the two swapped messages in Pair) or a minimal cycle of round
// constraints containing a strict edge (Kind "cycle", the messages in
// cycle order in Cycle).
type Violation struct {
	Kind   string
	Pair   [2]MsgRef
	Cycle  []MsgRef
	Detail string
}

func (v *Violation) String() string {
	if v == nil {
		return "<nil>"
	}
	switch v.Kind {
	case "fifo":
		return fmt.Sprintf("fifo violation: %v delivered before %v (%s)", v.Pair[0], v.Pair[1], v.Detail)
	default:
		return fmt.Sprintf("unsynchronizable cycle %v (%s)", v.Cycle, v.Detail)
	}
}

// Verdict is the checker's decision for one log.
type Verdict struct {
	OK        bool
	Cert      *Certificate
	Violation *Violation
	// Msgs counts resolved message instances (unicasts plus broadcast
	// copies); Undelivered counts unicast sends never matched by a
	// receive, and Orphans receives never matched by a send (or matched
	// twice). Orphans are excluded from the graph — the delivery oracle
	// owns that failure class — but reported so callers can cross-check.
	Msgs, Undelivered, Orphans int
}

// message is one resolved message instance: a node of the constraint
// graph. Broadcast copies are independent instances sharing the origin
// send position — a deliberate weakening (see DESIGN.md §12) that keeps
// multi-hop relay trees, whose copies genuinely land in different
// waves, out of the false-positive zone.
type message struct {
	ref     MsgRef
	origin  int32
	dst     int32 // receiving rank, -1 if undelivered
	unicast bool
	spawned bool
	parent  int // node of the spawning parent's delivered instance, -1
	chanSeq int // ordinal within the (origin,dst) unicast channel
	sendIdx int // index of the send event in origin's log
	rootBar int // dense index of the barrier closing the phase window, -1
}

// resolved is the shared message-resolution pass used by both Check and
// ValidateCertificate: it maps every event to a message-instance node
// without imposing any scheduling judgment.
type resolved struct {
	msgs []message
	// node[r][i] is the message node of rank r's i-th event, -1 for
	// barriers, broadcast sends, and unresolved events.
	node [][]int
	// barrier[r][i] is the dense barrier index of rank r's i-th event,
	// -1 otherwise.
	barrier [][]int
	// barrierIDs maps dense barrier index -> barrier id.
	barrierIDs []uint64
	// bcastCopies maps a broadcast send event position (rank, index) to
	// the copy nodes it fans out to.
	bcastCopies map[[2]int][]int
	undeliv     int
	orphans     int
}

// resolve builds message instances from a log. Unicast sends create one
// instance keyed by message key; broadcast sends create one instance
// per receiving rank (discovered from the recv events). Duplicate or
// orphan receives resolve to -1. After resolution it links every
// spawned instance to its parent instance and assigns each instance the
// barrier closing its phase window: the first barrier following its
// root ancestor's application-level send on that root's rank.
func resolve(l *Log) *resolved {
	r := &resolved{
		node:        make([][]int, l.World),
		barrier:     make([][]int, l.World),
		bcastCopies: make(map[[2]int][]int),
	}
	type sendPos struct {
		rank, idx int
		bcast     bool
		node      int // unicast node, -1 for bcast
	}
	sends := make(map[uint64]sendPos)
	barIdx := make(map[uint64]int)

	// Pass 1: sends and barriers.
	for rank, evs := range l.Events {
		r.node[rank] = make([]int, len(evs))
		r.barrier[rank] = make([]int, len(evs))
		for i, ev := range evs {
			r.node[rank][i] = -1
			r.barrier[rank][i] = -1
			switch ev.Kind {
			case KindSend:
				n := len(r.msgs)
				r.msgs = append(r.msgs, message{
					ref:     MsgRef{Key: ev.Key, Copy: -1},
					origin:  int32(rank),
					dst:     -1,
					unicast: true,
					spawned: ev.Spawned,
					parent:  -1,
					sendIdx: i,
					rootBar: -1,
				})
				sends[ev.Key] = sendPos{rank: rank, idx: i, node: n}
				r.node[rank][i] = n
			case KindBcast:
				sends[ev.Key] = sendPos{rank: rank, idx: i, bcast: true, node: -1}
			case KindBarrier:
				bi, ok := barIdx[ev.Key]
				if !ok {
					bi = len(r.barrierIDs)
					barIdx[ev.Key] = bi
					r.barrierIDs = append(r.barrierIDs, ev.Key)
				}
				r.barrier[rank][i] = bi
			}
		}
	}

	// Pass 2: receives.
	inst := make(map[MsgRef]int)
	for rank, evs := range l.Events {
		for i, ev := range evs {
			if ev.Kind != KindRecv {
				continue
			}
			sp, ok := sends[ev.Key]
			if !ok {
				r.orphans++
				continue
			}
			if sp.bcast {
				ref := MsgRef{Key: ev.Key, Copy: int32(rank)}
				if _, dup := inst[ref]; dup {
					r.orphans++
					continue
				}
				n := len(r.msgs)
				r.msgs = append(r.msgs, message{
					ref:     ref,
					origin:  int32(sp.rank),
					dst:     int32(rank),
					spawned: l.Events[sp.rank][sp.idx].Spawned,
					parent:  -1,
					sendIdx: sp.idx,
					rootBar: -1,
				})
				inst[ref] = n
				r.node[rank][i] = n
				k := [2]int{sp.rank, sp.idx}
				r.bcastCopies[k] = append(r.bcastCopies[k], n)
			} else {
				ref := MsgRef{Key: ev.Key, Copy: -1}
				if _, dup := inst[ref]; dup {
					r.orphans++
					continue
				}
				inst[ref] = sp.node
				r.msgs[sp.node].dst = int32(rank)
				r.node[rank][i] = sp.node
			}
		}
	}

	// Pass 3: spawn parents. A spawned send's parent instance is the
	// copy of the parent key delivered at the spawning rank (broadcast
	// parents) or the unicast instance itself. Unresolvable parents —
	// the parent was never delivered at that rank, which the delivery
	// oracle reports separately — leave the child causally unanchored.
	for n := range r.msgs {
		m := &r.msgs[n]
		if !m.spawned {
			continue
		}
		ev := l.Events[m.origin][m.sendIdx]
		pref := MsgRef{Key: ev.Parent, Copy: -1}
		if psp, ok := sends[ev.Parent]; ok && psp.bcast {
			pref.Copy = m.origin
		}
		if pn, ok := inst[pref]; ok && r.msgs[pn].dst == m.origin {
			m.parent = pn
		}
	}

	// Pass 4: phase windows. nextBar[rank][i] is the dense index of the
	// first barrier event at or after position i on rank, -1 when the
	// rank records no further barrier. Application-level instances take
	// their own send position's next barrier; spawned instances inherit
	// their root ancestor's (a synthetic parent cycle, impossible in a
	// truthful log, falls back to the instance's own position).
	nextBar := make([][]int, l.World)
	for rank, evs := range l.Events {
		nextBar[rank] = make([]int, len(evs))
		nb := -1
		for i := len(evs) - 1; i >= 0; i-- {
			if evs[i].Kind == KindBarrier {
				nb = r.barrier[rank][i]
			}
			nextBar[rank][i] = nb
		}
	}
	const (
		unresolved = 0
		resolving  = 1
		done       = 2
	)
	state := make([]uint8, len(r.msgs))
	var windowOf func(n int) int
	windowOf = func(n int) int {
		m := &r.msgs[n]
		if state[n] == done {
			return m.rootBar
		}
		own := nextBar[m.origin][m.sendIdx]
		if state[n] == resolving {
			return own // parent cycle: anchor at own position
		}
		state[n] = resolving
		if m.spawned && m.parent >= 0 {
			m.rootBar = windowOf(m.parent)
		} else {
			m.rootBar = own
		}
		state[n] = done
		return m.rootBar
	}
	for n := range r.msgs {
		windowOf(n)
	}

	// Channel ordinals for delivered and undelivered unicasts alike, in
	// per-origin program order (node creation order in pass 1 is exactly
	// per-rank send order). Undelivered sends keep dst -1 and land on a
	// channel of their own; they still occupy graph nodes so barrier
	// constraints from the sender side apply.
	chanSeq := make(map[[2]int32]int)
	for n := range r.msgs {
		m := &r.msgs[n]
		if !m.unicast {
			continue
		}
		if m.dst < 0 {
			r.undeliv++
		}
		k := [2]int32{m.origin, m.dst}
		m.chanSeq = chanSeq[k]
		chanSeq[k]++
	}
	return r
}

// edge is one round constraint: round(from) + w <= round(to), w in
// {0, 1}; barrier pseudo-nodes take indices >= len(msgs).
type edge struct {
	from, to int
	w        int8
}

// Check decides synchronizability of a recorded log and produces a
// certificate or a minimal counterexample. The decision procedure:
//
//  1. Same-channel FIFO: for every unicast channel (origin, dst), the
//     delivery order must equal the send order. The constraint graph
//     cannot see a same-round swap (equal assigned rounds), but such a
//     swap is always a real FIFO violation, so it is checked directly.
//  2. Constraint graph: one node per message instance plus one per
//     barrier, with exactly the orderings the mailbox contract
//     promises:
//     - application program order: consecutive application-level
//     (non-spawn) send events of one rank, weight 0;
//     - causality: a delivered message to each send its handler
//     issued, weight 1 (a handler reaction belongs to a strictly
//     later round), and consecutive spawns of the same handler
//     invocation, weight 0;
//     - channel FIFO: consecutive sends on one unicast channel,
//     weight 0 (synchronous delivery in FIFO order needs
//     non-decreasing rounds);
//     - phase windows: every instance to the barrier closing its
//     root's phase, weight 0 (quiescence: the whole spawn tree of a
//     phase settles before its barrier);
//     - barriers: the last barrier a rank returned from to every
//     subsequent send and receive on that rank and to the next
//     barrier, weight 1.
//     Receive order across channels contributes nothing (an exchange
//     round's receive set is unordered), and the raw interleaving of
//     deliveries with unrelated sends contributes nothing (lazy
//     mailboxes run handlers in the middle of the application's send
//     loop; see the package comment).
//  3. Tarjan SCC over the graph: a weight-1 edge inside a component is
//     an unsatisfiable strict cycle; the shortest such cycle is the
//     counterexample. Otherwise longest-path over the condensation in
//     topological order yields the round assignment.
func Check(l *Log) *Verdict {
	r := resolve(l)
	v := &Verdict{Msgs: len(r.msgs), Undelivered: r.undeliv, Orphans: r.orphans}

	if viol := checkFIFO(l, r); viol != nil {
		v.Violation = viol
		return v
	}

	nMsg := len(r.msgs)
	nBar := len(r.barrierIDs)
	n := nMsg + nBar
	var edges []edge

	var prevApp, nodes []int
	for rank, evs := range l.Events {
		prevApp = prevApp[:0]
		lastBar := -1
		lastSpawn := make(map[int]int) // parent node -> latest spawn node
		for i, ev := range evs {
			// One event maps to one node, except a broadcast send which
			// fans out to all its copy nodes at once.
			nodes = nodes[:0]
			switch ev.Kind {
			case KindSend, KindRecv:
				if nd := r.node[rank][i]; nd >= 0 {
					nodes = append(nodes, nd)
				}
			case KindBcast:
				nodes = append(nodes, r.bcastCopies[[2]int{rank, i}]...)
			case KindBarrier:
				bn := nMsg + r.barrier[rank][i]
				if lastBar >= 0 && lastBar != bn {
					edges = append(edges, edge{lastBar, bn, 1})
				}
				lastBar = bn
				continue
			}
			if len(nodes) == 0 {
				continue // orphan, duplicate, or undelivered broadcast
			}
			if lastBar >= 0 {
				// Anything observed after a barrier returned — the
				// application's next-phase sends, and deliveries (all
				// next-phase traffic, by quiescence) — is strictly later.
				for _, nd := range nodes {
					edges = append(edges, edge{lastBar, nd, 1})
				}
			}
			if ev.Kind == KindRecv {
				continue
			}
			// Send event: causal or program-order constraints, plus the
			// phase-window bound.
			spawned := ev.Spawned && r.msgs[nodes[0]].parent >= 0
			if spawned {
				pn := r.msgs[nodes[0]].parent
				for _, nd := range nodes {
					edges = append(edges, edge{pn, nd, 1})
					if ls, ok := lastSpawn[pn]; ok && ls != nd {
						edges = append(edges, edge{ls, nd, 0})
					}
				}
				lastSpawn[pn] = nodes[len(nodes)-1]
			} else {
				for _, p := range prevApp {
					for _, nd := range nodes {
						if p != nd {
							edges = append(edges, edge{p, nd, 0})
						}
					}
				}
				prevApp = append(prevApp[:0], nodes...)
			}
			for _, nd := range nodes {
				if rb := r.msgs[nd].rootBar; rb >= 0 {
					edges = append(edges, edge{nd, nMsg + rb, 0})
				}
			}
		}
	}

	// Channel FIFO edges: consecutive delivered unicasts per channel.
	chanLast := make(map[[2]int32]int)
	for nd := range r.msgs {
		m := &r.msgs[nd]
		if !m.unicast || m.dst < 0 {
			continue
		}
		ch := [2]int32{m.origin, m.dst}
		if p, ok := chanLast[ch]; ok {
			edges = append(edges, edge{p, nd, 0})
		}
		chanLast[ch] = nd
	}

	comp, nComp := tarjan(n, edges)

	// A strict edge inside one component closes an unsatisfiable cycle.
	for _, e := range edges {
		if e.w == 1 && comp[e.from] == comp[e.to] {
			v.Violation = minimalCycle(r, nMsg, edges, comp, e)
			return v
		}
	}

	// Longest path over the condensation. Tarjan numbers components in
	// reverse topological order (sinks first), so descending component
	// id is a topological order of the condensation.
	phi := make([]int, nComp)
	buckets := make([][]edge, nComp)
	for _, e := range edges {
		if comp[e.from] != comp[e.to] {
			buckets[comp[e.from]] = append(buckets[comp[e.from]], e)
		}
	}
	for c := nComp - 1; c >= 0; c-- {
		for _, e := range buckets[c] {
			if p := phi[c] + int(e.w); p > phi[comp[e.to]] {
				phi[comp[e.to]] = p
			}
		}
	}

	cert := &Certificate{
		Phase:   make(map[MsgRef]int, nMsg),
		Barrier: make(map[uint64]int, nBar),
	}
	for i := range r.msgs {
		p := phi[comp[i]]
		cert.Phase[r.msgs[i].ref] = p
		if p+1 > cert.Rounds {
			cert.Rounds = p + 1
		}
	}
	for b := 0; b < nBar; b++ {
		p := phi[comp[nMsg+b]]
		cert.Barrier[r.barrierIDs[b]] = p
		if p+1 > cert.Rounds {
			cert.Rounds = p + 1
		}
	}
	v.OK = true
	v.Cert = cert
	return v
}

// checkFIFO verifies that every unicast channel's delivery order equals
// its send order. Broadcast copies are excluded: a broadcast and a
// unicast to the same destination take different routes and carry no
// mutual ordering guarantee.
func checkFIFO(l *Log, r *resolved) *Violation {
	last := make(map[[2]int32]int) // channel -> 1 + chanSeq of last delivered
	for rank, evs := range l.Events {
		for i, ev := range evs {
			if ev.Kind != KindRecv {
				continue
			}
			nd := r.node[rank][i]
			if nd < 0 || !r.msgs[nd].unicast {
				continue
			}
			m := &r.msgs[nd]
			ch := [2]int32{m.origin, m.dst}
			if prev := last[ch] - 1; last[ch] > 0 && m.chanSeq <= prev {
				var overtaken MsgRef
				for j := range r.msgs {
					o := &r.msgs[j]
					if o.unicast && o.origin == m.origin && o.dst == m.dst && o.chanSeq == prev {
						overtaken = o.ref
						break
					}
				}
				return &Violation{
					Kind: "fifo",
					Pair: [2]MsgRef{m.ref, overtaken},
					Detail: fmt.Sprintf("channel %d->%d delivered seq %d after seq %d",
						m.origin, m.dst, m.chanSeq, prev),
				}
			}
			last[ch] = m.chanSeq + 1
		}
	}
	return nil
}

// tarjan computes strongly connected components iteratively (the logs
// can be long, so no recursion) and returns comp[node] plus the
// component count. Components are numbered in reverse topological
// order: every edge leaving a component points to a lower-numbered one.
func tarjan(n int, edges []edge) ([]int, int) {
	adj := make([][]int32, n)
	for _, e := range edges {
		adj[e.from] = append(adj[e.from], int32(e.to))
	}
	const unvisited = -1
	index := make([]int32, n)
	low := make([]int32, n)
	onStack := make([]bool, n)
	comp := make([]int, n)
	for i := range index {
		index[i] = unvisited
	}
	var stack []int32
	var next int32
	nComp := 0

	type frame struct {
		v  int32
		ei int
	}
	var frames []frame
	for root := 0; root < n; root++ {
		if index[root] != unvisited {
			continue
		}
		frames = append(frames[:0], frame{v: int32(root)})
		index[root] = next
		low[root] = next
		next++
		stack = append(stack, int32(root))
		onStack[root] = true
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			v := f.v
			if f.ei < len(adj[v]) {
				w := adj[v][f.ei]
				f.ei++
				if index[w] == unvisited {
					index[w] = next
					low[w] = next
					next++
					stack = append(stack, w)
					onStack[w] = true
					frames = append(frames, frame{v: w})
				} else if onStack[w] && index[w] < low[v] {
					low[v] = index[w]
				}
				continue
			}
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				p := frames[len(frames)-1].v
				if low[v] < low[p] {
					low[p] = low[v]
				}
			}
			if low[v] == index[v] {
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp[w] = nComp
					if w == v {
						break
					}
				}
				nComp++
			}
		}
	}
	return comp, nComp
}

// minimalCycle extracts the shortest constraint cycle through a strict
// edge inside one SCC: BFS from the strict edge's head back to its tail
// using only intra-component edges, then report the message nodes along
// the closed walk in cycle order.
func minimalCycle(r *resolved, nMsg int, edges []edge, comp []int, strict edge) *Violation {
	c := comp[strict.from]
	adj := make(map[int][]int)
	for _, e := range edges {
		if comp[e.from] == c && comp[e.to] == c {
			adj[e.from] = append(adj[e.from], e.to)
		}
	}
	parent := map[int]int{strict.to: -1}
	var path []int
	if strict.from == strict.to {
		path = []int{strict.to}
	} else {
		queue := []int{strict.to}
		found := false
		for len(queue) > 0 && !found {
			v := queue[0]
			queue = queue[1:]
			for _, w := range adj[v] {
				if _, ok := parent[w]; ok {
					continue
				}
				parent[w] = v
				if w == strict.from {
					found = true
					break
				}
				queue = append(queue, w)
			}
		}
		if found {
			for v := strict.from; v != -1; v = parent[v] {
				path = append(path, v)
			}
			// path is from..to; reverse into cycle order to..from, the
			// order the strict edge's round inequality is contradicted.
			for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
				path[i], path[j] = path[j], path[i]
			}
		} else {
			// SCC membership guarantees a path exists; defensive only.
			path = []int{strict.to, strict.from}
		}
	}
	viol := &Violation{Kind: "cycle"}
	barriers := 0
	for _, nd := range path {
		if nd < nMsg {
			viol.Cycle = append(viol.Cycle, r.msgs[nd].ref)
		} else {
			barriers++
		}
	}
	if len(viol.Cycle) >= 2 {
		viol.Pair = [2]MsgRef{viol.Cycle[0], viol.Cycle[len(viol.Cycle)-1]}
	} else if len(viol.Cycle) == 1 {
		viol.Pair = [2]MsgRef{viol.Cycle[0], viol.Cycle[0]}
	}
	viol.Detail = fmt.Sprintf("%d-node cycle with a strict (later-round) edge", len(path))
	if barriers > 0 {
		viol.Detail += fmt.Sprintf(", crossing %d barrier(s)", barriers)
	}
	return viol
}
