// Package synch decides whether an observed mailbox execution is
// reorder-equivalent to a round-based synchronous execution — the
// machine-checked form of the paper's informal "pseudo-asynchronous ≈
// async speed with sync semantics" claim.
//
// The model is the message sequence chart (MSC) of one run: every
// logical application message with its send event (on the origin rank)
// and receive event (the handler invocation on the destination rank),
// the causal spawn edges between a delivered message and the sends its
// handler issued, and the global quiescence barriers (WaitEmpty
// generations) that punctuate the run. Check decides whether that MSC
// admits a partition into exchange phases — rounds in which every rank
// first performs its sends and then its receives, with every message
// sent and received in the same round and all rounds separated by the
// observed barriers — following the automata-based synchronizability
// criteria of Delpy/Muscholl/Sutre 2024 and Di Giusto/Laversa/Peters
// 2024 (see PAPERS.md). On success it returns a certificate (the
// synchronous round schedule, checkable by the independent validator in
// validate.go); on failure, a minimal violating cycle naming the
// crossing messages (or the same-channel FIFO inversion).
//
// The checker is deliberately bounded (see DESIGN.md §12 for the
// soundness sketch and the known false negatives). The happens-before
// relation it builds contains only orderings the mailbox contract
// actually promises: per-rank program order among application-level
// sends, causal order from a delivery to the sends its handler issued,
// per-channel FIFO, and quiescence barriers. The raw per-rank
// interleaving of deliveries with unrelated sends is treated as
// commutable scheduler accident — a lazy mailbox legitimately runs
// handlers in the middle of the application's send loop (capacity
// flushes and opportunistic polls), and a rank still draining its
// barrier may legitimately deliver next-phase stragglers from peers
// that passed the barrier first.
package synch

import (
	"fmt"
	"sync/atomic"

	"ygm/internal/machine"
	"ygm/internal/transport"
)

// Kind classifies one recorded event.
type Kind uint8

const (
	// KindSend is a unicast application send; Key is the message key and
	// Dst the destination rank.
	KindSend Kind = iota
	// KindBcast is a broadcast send; Key is the message key shared by
	// every delivered copy.
	KindBcast
	// KindRecv is a handler invocation; Key is the delivered message's
	// key (broadcast copies are told apart by the receiving rank).
	KindRecv
	// KindBarrier is a quiescence-barrier return (WaitEmpty or a
	// TestEmpty that reported done); Key is the global barrier id.
	KindBarrier
)

// Event is one entry of a rank's totally-ordered event log.
type Event struct {
	Kind Kind
	// Key identifies the message (send/recv) or the barrier (barrier
	// events of all ranks with equal Key are the same global barrier).
	Key uint64
	// Dst is the unicast destination rank; -1 for broadcasts, receives,
	// and barriers.
	Dst int32
	// Spawned marks a send issued from inside a handler, causally
	// reacting to the delivery named by Parent. Application-level sends
	// leave it false.
	Spawned bool
	// Parent is the key of the message whose handler issued this send;
	// meaningful only when Spawned is true. The parent instance is the
	// copy delivered at the sending rank (for broadcast parents), so no
	// copy index needs recording.
	Parent uint64
}

// Recorder accumulates the per-rank event logs of one run. Each rank's
// events are appended from that rank's goroutine only (the same
// confinement discipline as the fuzz oracle's logs), so no locking is
// needed; Log must be called only after every rank goroutine has
// joined.
//
// Recorder also implements transport.Tracer so it can ride the tracer
// stack alongside the delivery oracle: the packet counters give the
// checker a cheap consistency cross-check (a run that lost packets has
// an untrustworthy event log).
type Recorder struct {
	logs    [][]Event
	pktSent atomic.Uint64
	pktRecv atomic.Uint64
}

// NewRecorder returns a Recorder for a world of the given size.
func NewRecorder(world int) *Recorder {
	return &Recorder{logs: make([][]Event, world)}
}

// Send records an application-level unicast send on rank at.
func (r *Recorder) Send(at machine.Rank, key uint64, dst machine.Rank) {
	r.logs[at] = append(r.logs[at], Event{Kind: KindSend, Key: key, Dst: int32(dst)})
}

// Broadcast records an application-level broadcast send on rank at.
func (r *Recorder) Broadcast(at machine.Rank, key uint64) {
	r.logs[at] = append(r.logs[at], Event{Kind: KindBcast, Key: key, Dst: -1})
}

// Spawn records a unicast send issued from inside the handler of the
// message with key parent, on rank at. The causal parent→child edge is
// the strict (later-round) constraint of the synchronous model.
func (r *Recorder) Spawn(at machine.Rank, key uint64, dst machine.Rank, parent uint64) {
	r.logs[at] = append(r.logs[at], Event{Kind: KindSend, Key: key, Dst: int32(dst), Spawned: true, Parent: parent})
}

// Recv records a handler invocation on rank at.
func (r *Recorder) Recv(at machine.Rank, key uint64) {
	r.logs[at] = append(r.logs[at], Event{Kind: KindRecv, Key: key, Dst: -1})
}

// Barrier records rank at returning from global quiescence barrier id.
func (r *Recorder) Barrier(at machine.Rank, id uint64) {
	r.logs[at] = append(r.logs[at], Event{Kind: KindBarrier, Key: id, Dst: -1})
}

// PacketSent implements transport.Tracer.
func (r *Recorder) PacketSent(src, dst machine.Rank, tag transport.Tag, size int, sent, arrive float64) {
	r.pktSent.Add(1)
}

// PacketReceived implements transport.Tracer.
func (r *Recorder) PacketReceived(src, dst machine.Rank, tag transport.Tag, size int, now float64) {
	r.pktRecv.Add(1)
}

// Log freezes the recorded run into a checkable Log. Call only after
// the run has fully joined.
func (r *Recorder) Log() *Log {
	return &Log{
		World:   len(r.logs),
		Events:  r.logs,
		PktSent: r.pktSent.Load(),
		PktRecv: r.pktRecv.Load(),
	}
}

// Log is one run's frozen event record, the checker's input.
type Log struct {
	World  int
	Events [][]Event
	// PktSent/PktRecv are the transport-level packet counters observed
	// while recording; an unbalanced pair means the log is partial.
	PktSent, PktRecv uint64
}

// MsgRef names one delivered (or undelivered) message instance in
// certificates and violations: the message key plus, for broadcast
// copies, the receiving rank (-1 for unicasts, whose key is unique).
type MsgRef struct {
	Key  uint64
	Copy int32
}

func (m MsgRef) String() string {
	if m.Copy >= 0 {
		return fmt.Sprintf("%d#%d@%d", m.Key>>32, m.Key&0xffffffff, m.Copy)
	}
	return fmt.Sprintf("%d#%d", m.Key>>32, m.Key&0xffffffff)
}

// Key64 packs an (origin, seq) message identity into the uint64 key
// space the recorder uses. Origins must fit in 32 bits and sequence
// numbers in 32 bits; the simulation harness stays far below both.
func Key64(origin machine.Rank, seq uint64) uint64 {
	return uint64(origin)<<32 | (seq & 0xffffffff)
}
