package synch

import (
	"math/rand"
	"testing"
)

// genMsg is one scheduled message of a generated round-structured MSC.
type genMsg struct {
	key         uint64
	origin, dst int
	round       int
	bcast       bool
	spawned     bool
	parent      uint64
}

// genRoundLog builds a log from an explicit synchronous round schedule:
// for each round every rank first appends its sends (in key order, so
// same-channel FIFO holds by construction), then its receives in a
// random cross-channel order with same-channel receives kept in send
// order. Some messages of round r+1 are spawned children of round-r
// deliveries (never across a barrier — quiescence settles every spawn
// tree inside its phase), recorded with the causal Spawned/Parent link.
// Barriers are inserted on every rank after each barrierEvery rounds.
// The result is synchronizable by construction with at most `rounds`
// rounds.
func genRoundLog(rng *rand.Rand, world, rounds, msgsPerRound, barrierEvery int) (*Log, []genMsg) {
	l := &Log{World: world, Events: make([][]Event, world)}
	var msgs []genMsg
	var prevDeliv []genMsg // previous round's deliveries, same phase window
	var key uint64
	barID := uint64(1)
	for round := 0; round < rounds; round++ {
		var thisRound []genMsg
		n := 1 + rng.Intn(msgsPerRound)
		for i := 0; i < n; i++ {
			key++
			m := genMsg{key: key, round: round}
			if len(prevDeliv) > 0 && rng.Intn(3) == 0 {
				// Handler reaction: spawned at the rank that delivered the
				// parent, strictly one round later.
				p := prevDeliv[rng.Intn(len(prevDeliv))]
				dr := p.dst
				if p.bcast {
					dr = rng.Intn(world - 1)
					if dr >= p.origin {
						dr++
					}
				}
				m.origin = dr
				m.dst = rng.Intn(world)
				m.spawned = true
				m.parent = p.key
			} else {
				m.origin = rng.Intn(world)
				if world > 1 && rng.Intn(8) == 0 {
					m.bcast = true
				} else {
					m.dst = rng.Intn(world)
				}
			}
			thisRound = append(thisRound, m)
			msgs = append(msgs, m)
		}
		// Sends, in per-rank key order.
		for _, m := range thisRound {
			if m.bcast {
				l.Events[m.origin] = append(l.Events[m.origin], Event{Kind: KindBcast, Key: m.key, Dst: -1})
			} else {
				l.Events[m.origin] = append(l.Events[m.origin],
					Event{Kind: KindSend, Key: m.key, Dst: int32(m.dst), Spawned: m.spawned, Parent: m.parent})
			}
		}
		// Receives: per destination, shuffle across channels but keep
		// each unicast channel's messages in send (key) order by
		// rewriting that channel's slots in place.
		for dst := 0; dst < world; dst++ {
			var inbound []genMsg
			for _, m := range thisRound {
				if m.bcast {
					if m.origin != dst {
						inbound = append(inbound, m)
					}
				} else if m.dst == dst {
					inbound = append(inbound, m)
				}
			}
			rng.Shuffle(len(inbound), func(i, j int) { inbound[i], inbound[j] = inbound[j], inbound[i] })
			perChan := map[int][]int{} // unicast origin -> slot indices
			for i, m := range inbound {
				if !m.bcast {
					perChan[m.origin] = append(perChan[m.origin], i)
				}
			}
			for origin, slots := range perChan {
				var ordered []genMsg
				for _, m := range thisRound {
					if !m.bcast && m.origin == origin && m.dst == dst {
						ordered = append(ordered, m)
					}
				}
				for i, slot := range slots {
					inbound[slot] = ordered[i]
				}
			}
			for _, m := range inbound {
				l.Events[dst] = append(l.Events[dst], Event{Kind: KindRecv, Key: m.key, Dst: -1})
			}
		}
		if barrierEvery > 0 && (round+1)%barrierEvery == 0 {
			for rank := 0; rank < world; rank++ {
				l.Events[rank] = append(l.Events[rank], Event{Kind: KindBarrier, Key: barID, Dst: -1})
			}
			barID++
			prevDeliv = nil // phase window closed; no spawning across it
		} else {
			prevDeliv = thisRound
		}
	}
	return l, msgs
}

// shuffleHB applies happens-before-respecting adjacent swaps: two
// adjacent receives of different channels commute, two adjacent
// same-round sends of different channels commute, and a receive
// commutes with an adjacent send unless the send is the receive's own
// handler reaction (the causal spawn pair) or the receive is the send's
// own self-delivery. All preserve synchronizability (and the original
// round schedule's validity) — the last family is exactly the lazy
// mailbox's freedom to run handlers in the middle of a send loop.
func shuffleHB(rng *rand.Rand, l *Log, msgs []genMsg, steps int) {
	byKey := map[uint64]genMsg{}
	for _, m := range msgs {
		byKey[m.key] = m
	}
	channel := func(e Event) (origin int, round int, bcast bool) {
		m := byKey[e.Key]
		return m.origin, m.round, m.bcast
	}
	isSend := func(e Event) bool { return e.Kind == KindSend || e.Kind == KindBcast }
	for s := 0; s < steps; s++ {
		rank := rng.Intn(l.World)
		evs := l.Events[rank]
		if len(evs) < 2 {
			continue
		}
		i := rng.Intn(len(evs) - 1)
		a, b := evs[i], evs[i+1]
		switch {
		case a.Kind == KindRecv && b.Kind == KindRecv:
			ao, _, ab := channel(a)
			bo, _, bb := channel(b)
			if ao != bo || ab != bb {
				evs[i], evs[i+1] = b, a
			}
		case a.Kind == KindSend && b.Kind == KindSend:
			_, ar, _ := channel(a)
			_, br, _ := channel(b)
			if ar == br && a.Dst != b.Dst {
				evs[i], evs[i+1] = b, a
			}
		case a.Kind == KindRecv && isSend(b):
			if a.Key != b.Key && !(b.Spawned && b.Parent == a.Key) {
				evs[i], evs[i+1] = b, a
			}
		case isSend(a) && b.Kind == KindRecv:
			if a.Key != b.Key && !(a.Spawned && a.Parent == b.Key) {
				evs[i], evs[i+1] = b, a
			}
		}
	}
}

func TestPropSynchronizableAccepted(t *testing.T) {
	rng := rand.New(rand.NewSource(0x59a7))
	for iter := 0; iter < 200; iter++ {
		world := 2 + rng.Intn(6)
		rounds := 1 + rng.Intn(6)
		l, msgs := genRoundLog(rng, world, rounds, 6, rng.Intn(3))
		shuffleHB(rng, l, msgs, 64)
		v := Check(l)
		if !v.OK {
			t.Fatalf("iter %d: round-structured log rejected: %v", iter, v.Violation)
		}
		if v.Cert.Rounds > rounds {
			t.Fatalf("iter %d: certificate uses %d rounds for a %d-round schedule",
				iter, v.Cert.Rounds, rounds)
		}
		if err := ValidateCertificate(l, v.Cert); err != nil {
			t.Fatalf("iter %d: certificate fails independent validation: %v", iter, err)
		}
	}
}

func TestPropInjectedFIFOSwapRejected(t *testing.T) {
	rng := rand.New(rand.NewSource(0x2f1f))
	rejected := 0
	for iter := 0; iter < 200; iter++ {
		world := 2 + rng.Intn(6)
		l, msgs := genRoundLog(rng, world, 1+rng.Intn(4), 6, 0)
		// Find a destination with two receives from the same unicast
		// channel and swap them.
		byKey := map[uint64]genMsg{}
		for _, m := range msgs {
			byKey[m.key] = m
		}
		swapped := false
	outer:
		for rank := 0; rank < world && !swapped; rank++ {
			evs := l.Events[rank]
			for i := 0; i < len(evs); i++ {
				if evs[i].Kind != KindRecv || byKey[evs[i].Key].bcast {
					continue
				}
				for j := i + 1; j < len(evs); j++ {
					if evs[j].Kind != KindRecv || byKey[evs[j].Key].bcast {
						continue
					}
					if byKey[evs[i].Key].origin == byKey[evs[j].Key].origin {
						evs[i], evs[j] = evs[j], evs[i]
						swapped = true
						continue outer
					}
				}
			}
		}
		if !swapped {
			continue // no same-channel pair this iteration
		}
		v := Check(l)
		if v.OK {
			t.Fatalf("iter %d: same-channel swap accepted", iter)
		}
		if v.Violation.Kind != "fifo" {
			t.Fatalf("iter %d: want fifo violation, got %v", iter, v.Violation)
		}
		rejected++
	}
	if rejected < 50 {
		t.Fatalf("generator produced only %d swappable logs; property undertested", rejected)
	}
}

func TestPropInjectedCycleRejected(t *testing.T) {
	rng := rand.New(rand.NewSource(0x77aa))
	for iter := 0; iter < 200; iter++ {
		world := 2 + rng.Intn(6)
		l, _ := genRoundLog(rng, world, 1+rng.Intn(4), 5, rng.Intn(2))
		// Inject a causal crossing pair between two ranks using fresh
		// keys — each rank's handler for the other's message spawns its
		// own: unsatisfiable no matter the surrounding schedule.
		ka, kb := uint64(1<<40), uint64(1<<40)+1
		a, b := rng.Intn(world), rng.Intn(world)
		for b == a {
			b = (b + 1) % world
		}
		l.Events[a] = append(l.Events[a], Event{Kind: KindRecv, Key: kb, Dst: -1},
			Event{Kind: KindSend, Key: ka, Dst: int32(b), Spawned: true, Parent: kb})
		l.Events[b] = append(l.Events[b], Event{Kind: KindRecv, Key: ka, Dst: -1},
			Event{Kind: KindSend, Key: kb, Dst: int32(a), Spawned: true, Parent: ka})
		v := Check(l)
		if v.OK {
			t.Fatalf("iter %d: injected crossing pair accepted", iter)
		}
		if v.Violation.Kind != "cycle" {
			t.Fatalf("iter %d: want cycle violation, got %v", iter, v.Violation)
		}
		refs := map[MsgRef]bool{}
		for _, m := range v.Violation.Cycle {
			refs[m] = true
		}
		if !refs[MsgRef{Key: ka, Copy: -1}] || !refs[MsgRef{Key: kb, Copy: -1}] {
			t.Fatalf("iter %d: cycle %v does not name the crossing pair", iter, v.Violation.Cycle)
		}
	}
}

func TestPropCertificateRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(0x1cde))
	for iter := 0; iter < 300; iter++ {
		world := 1 + rng.Intn(8)
		l, msgs := genRoundLog(rng, world, 1+rng.Intn(5), 5, rng.Intn(4))
		shuffleHB(rng, l, msgs, 32)
		v := Check(l)
		if !v.OK {
			t.Fatalf("iter %d: clean log rejected: %v", iter, v.Violation)
		}
		if err := ValidateCertificate(l, v.Cert); err != nil {
			t.Fatalf("iter %d: round-trip validation failed: %v", iter, err)
		}
		// A certificate with any message entry removed must be rejected.
		if len(v.Cert.Phase) > 0 {
			var victim MsgRef
			n := rng.Intn(len(v.Cert.Phase))
			for k := range v.Cert.Phase {
				if n == 0 {
					victim = k
					break
				}
				n--
			}
			corrupt := &Certificate{Rounds: v.Cert.Rounds, Phase: map[MsgRef]int{}, Barrier: v.Cert.Barrier}
			for k, p := range v.Cert.Phase {
				corrupt.Phase[k] = p
			}
			delete(corrupt.Phase, victim)
			if err := ValidateCertificate(l, corrupt); err == nil {
				t.Fatalf("iter %d: validator accepted certificate missing %v", iter, victim)
			}
		}
	}
}
