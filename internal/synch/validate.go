package synch

import "fmt"

// ValidateCertificate re-checks a certificate against the raw log by a
// greedy per-rank rule walk — a code path deliberately disjoint from
// the SCC/longest-path machinery in Check, so a checker bug cannot
// vouch for itself. The rules are the definition of the bounded
// synchronous model (see the package comment), applied literally:
//
//   - every message instance and every barrier has an assigned round in
//     [0, Rounds);
//   - application-level sends of one rank have non-decreasing rounds
//     (program order);
//   - a spawned send's round is strictly greater than its parent
//     delivery's round (a handler reaction belongs to a later round)
//     and non-decreasing across the sends of one handler invocation;
//   - every send and receive observed after a rank returned from a
//     barrier has a round strictly greater than that barrier's;
//   - a rank's barriers have strictly increasing rounds, equal across
//     ranks (the certificate stores one round per barrier id);
//   - every message's round is at most the round of the barrier closing
//     its phase window — the first barrier after its root ancestor's
//     application-level send (quiescence: a phase's whole spawn tree
//     settles before the phase's barrier);
//   - rounds are non-decreasing along each unicast channel's send
//     order, and per-channel delivery order equals send order (FIFO).
//
// Receive order is deliberately unconstrained relative to sends and to
// other receives: an exchange round's receive set is unordered, and a
// lazy mailbox interleaves deliveries with the application's send loop.
func ValidateCertificate(l *Log, cert *Certificate) error {
	if cert == nil {
		return fmt.Errorf("synch: nil certificate")
	}
	r := resolve(l)

	if viol := checkFIFO(l, r); viol != nil {
		return fmt.Errorf("synch: certificate cannot cover a fifo violation: %v", viol)
	}

	phase := func(nd int) (int, error) {
		ref := r.msgs[nd].ref
		p, ok := cert.Phase[ref]
		if !ok {
			return 0, fmt.Errorf("synch: certificate has no round for message %v", ref)
		}
		if p < 0 || p >= cert.Rounds {
			return 0, fmt.Errorf("synch: message %v assigned round %d outside [0,%d)", ref, p, cert.Rounds)
		}
		return p, nil
	}

	for rank, evs := range l.Events {
		maxApp, lastBar := -1, -1
		lastSpawn := make(map[int]int) // parent node -> latest spawn round
		for i, ev := range evs {
			switch ev.Kind {
			case KindSend, KindBcast:
				var nodes []int
				if ev.Kind == KindSend {
					if nd := r.node[rank][i]; nd >= 0 {
						nodes = []int{nd}
					}
				} else {
					nodes = r.bcastCopies[[2]int{rank, i}]
				}
				if len(nodes) == 0 {
					continue // broadcast nobody received
				}
				spawned := ev.Spawned && r.msgs[nodes[0]].parent >= 0
				// Copies of one broadcast share the send position and are
				// not mutually ordered: every copy is checked against the
				// bounds as they stood before the event, then the bounds
				// advance to the furthest copy.
				after := maxApp
				for _, nd := range nodes {
					p, err := phase(nd)
					if err != nil {
						return err
					}
					if p <= lastBar {
						return fmt.Errorf("synch: rank %d sends %v in round %d at or before barrier round %d",
							rank, r.msgs[nd].ref, p, lastBar)
					}
					if spawned {
						pn := r.msgs[nd].parent
						pp, err := phase(pn)
						if err != nil {
							return err
						}
						if p <= pp {
							return fmt.Errorf("synch: rank %d spawns %v in round %d not after its parent %v's round %d",
								rank, r.msgs[nd].ref, p, r.msgs[pn].ref, pp)
						}
						if ls, ok := lastSpawn[pn]; ok && p < ls {
							return fmt.Errorf("synch: rank %d spawns %v in round %d after a round-%d spawn of the same handler",
								rank, r.msgs[nd].ref, p, ls)
						}
						lastSpawn[pn] = p
					} else {
						if p < maxApp {
							return fmt.Errorf("synch: rank %d sends %v in round %d after a round-%d send",
								rank, r.msgs[nd].ref, p, maxApp)
						}
						if p > after {
							after = p
						}
					}
				}
				if !spawned {
					maxApp = after
				}
			case KindRecv:
				nd := r.node[rank][i]
				if nd < 0 {
					continue // orphan: the delivery oracle's failure class
				}
				p, err := phase(nd)
				if err != nil {
					return err
				}
				if p <= lastBar {
					return fmt.Errorf("synch: rank %d receives %v in round %d at or before barrier round %d",
						rank, r.msgs[nd].ref, p, lastBar)
				}
			case KindBarrier:
				b, ok := cert.Barrier[ev.Key]
				if !ok {
					return fmt.Errorf("synch: certificate has no round for barrier %d", ev.Key)
				}
				if b < 0 || b >= cert.Rounds {
					return fmt.Errorf("synch: barrier %d assigned round %d outside [0,%d)", ev.Key, b, cert.Rounds)
				}
				if b <= lastBar {
					return fmt.Errorf("synch: rank %d passes barrier %d (round %d) not after barrier round %d",
						rank, ev.Key, b, lastBar)
				}
				lastBar = b
			}
		}
	}

	// Phase windows: no message outlives the barrier that closes its
	// root's phase.
	for nd := range r.msgs {
		m := &r.msgs[nd]
		if m.rootBar < 0 {
			continue // no barrier follows the root send; window unbounded
		}
		p, err := phase(nd)
		if err != nil {
			return err
		}
		id := r.barrierIDs[m.rootBar]
		b, ok := cert.Barrier[id]
		if !ok {
			return fmt.Errorf("synch: certificate has no round for barrier %d", id)
		}
		if p > b {
			return fmt.Errorf("synch: message %v assigned round %d outside its phase window (barrier %d closes round %d)",
				m.ref, p, id, b)
		}
	}

	// Channel monotonicity: along each unicast channel's send order
	// (node creation order is per-rank program order), delivered
	// messages' rounds never decrease.
	chanLast := make(map[[2]int32]int)
	for nd := range r.msgs {
		m := &r.msgs[nd]
		if !m.unicast || m.dst < 0 {
			continue
		}
		p, err := phase(nd)
		if err != nil {
			return err
		}
		ch := [2]int32{m.origin, m.dst}
		if prev, ok := chanLast[ch]; ok && p < prev {
			return fmt.Errorf("synch: channel %d->%d rounds decrease: %v in round %d after round %d",
				m.origin, m.dst, m.ref, p, prev)
		}
		chanLast[ch] = p
	}
	return nil
}
