package combblas

import (
	"math"
	"sync"
	"testing"

	"ygm/internal/graph"
	"ygm/internal/machine"
	"ygm/internal/netsim"
	"ygm/internal/spmat"
	"ygm/internal/transport"
)

func oracle(cfg Config, world, lastIter int) []float64 {
	n := uint64(1) << uint(cfg.Scale)
	var trips []spmat.Triplet
	for r := 0; r < world; r++ {
		g := graph.NewRMAT(cfg.Params, cfg.Scale, cfg.Seed*104729+int64(r))
		for k := 0; k < cfg.EdgesPerRank; k++ {
			e := g.Next()
			trips = append(trips, spmat.Triplet{
				Row: e.V, Col: e.U,
				Val: 1 + float64((e.U*31+e.V*17)%100)/100,
			})
		}
	}
	x := make([]float64, n)
	for j := range x {
		x[j] = 1 + float64((uint64(j)*2654435761+uint64(lastIter)*97)%1000)/1000
	}
	return spmat.SpMVSeq(trips, x)
}

func run2D(t *testing.T, nodes, cores int, cfg Config) []*Result {
	t.Helper()
	world := nodes * cores
	results := make([]*Result, world)
	var mu sync.Mutex
	_, err := transport.Run(transport.Config{
		Topo:  machine.New(nodes, cores),
		Model: netsim.Quartz(),
		Seed:  1,
	}, func(p *transport.Proc) error {
		res, err := SpMV(p, cfg)
		if err != nil {
			return err
		}
		mu.Lock()
		results[p.Rank()] = res
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return results
}

func checkAgainstOracle(t *testing.T, cfg Config, world int, results []*Result) {
	t.Helper()
	want := oracle(cfg, world, cfg.Iterations-1)
	grid, err := spmat.NewGrid(world)
	if err != nil {
		t.Fatal(err)
	}
	n := uint64(1) << uint(cfg.Scale)
	covered := 0
	for b := 0; b < grid.R; b++ {
		res := results[grid.RankAt(b, b)]
		if res.Y == nil {
			t.Fatalf("diagonal rank (%d,%d) has no result block", b, b)
		}
		lo, hi := grid.BlockRange(b, n)
		if res.YLo != lo || uint64(len(res.Y)) != hi-lo {
			t.Fatalf("block %d range mismatch: lo %d len %d, want [%d,%d)", b, res.YLo, len(res.Y), lo, hi)
		}
		for k, v := range res.Y {
			i := lo + uint64(k)
			if math.Abs(v-want[i]) > 1e-9*(1+math.Abs(want[i])) {
				t.Fatalf("y[%d] = %g, want %g", i, v, want[i])
			}
			covered++
		}
	}
	if uint64(covered) != n {
		t.Fatalf("diagonal blocks cover %d of %d entries", covered, n)
	}
	// Off-diagonal ranks hold no result.
	for r, res := range results {
		if grid.RowOf(r) != grid.ColOf(r) && res.Y != nil {
			t.Fatalf("off-diagonal rank %d has a result block", r)
		}
	}
}

func TestSpMV2DMatchesOracle(t *testing.T) {
	cfg := Config{
		Scale:        7,
		EdgesPerRank: 200,
		Params:       graph.Graph500,
		Seed:         6,
		Iterations:   2,
	}
	results := run2D(t, 2, 2, cfg) // 4 ranks -> 2x2 grid
	checkAgainstOracle(t, cfg, 4, results)
}

func TestSpMV2DLargerGrid(t *testing.T) {
	cfg := Config{
		Scale:        8,
		EdgesPerRank: 100,
		Params:       graph.Uniform4,
		Seed:         2,
		Iterations:   1,
	}
	results := run2D(t, 8, 2, cfg) // 16 ranks -> 4x4 grid
	checkAgainstOracle(t, cfg, 16, results)
}

func TestSpMV2DRejectsNonSquare(t *testing.T) {
	_, err := transport.Run(transport.Config{
		Topo: machine.New(3, 1),
	}, func(p *transport.Proc) error {
		_, err := SpMV(p, Config{Scale: 4, EdgesPerRank: 1, Params: graph.Uniform4, Iterations: 1})
		if err == nil {
			return sentinelErr
		}
		return nil
	})
	if err != nil {
		t.Fatal("non-square world should be rejected cleanly")
	}
}

var sentinelErr = &nonSquareErr{}

type nonSquareErr struct{}

func (*nonSquareErr) Error() string { return "non-square world accepted" }

func TestSpMV2DRejectsBadConfig(t *testing.T) {
	_, err := transport.Run(transport.Config{Topo: machine.New(1, 1)}, func(p *transport.Proc) error {
		if _, err := SpMV(p, Config{}); err == nil {
			return sentinelErr
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestSpMV2DAgreesWithYGMOracle: the 2D baseline and the YGM SpMV consume
// identical seed formulas, so their oracles coincide — a cross-check that
// the two implementations multiply the same matrix.
func TestSpMV2DSingleRank(t *testing.T) {
	cfg := Config{
		Scale:        6,
		EdgesPerRank: 300,
		Params:       graph.Webgraph,
		Seed:         11,
		Iterations:   3,
	}
	results := run2D(t, 1, 1, cfg)
	checkAgainstOracle(t, cfg, 1, results)
}
