// Package combblas is the synchronous comparator of Fig. 8: a
// CombBLAS-style sparse matrix–dense vector product over a 2D
// block-partitioned matrix, built on bulk-synchronous collectives. The
// real CombBLAS (Buluç & Gilbert) is far richer; what the paper's
// comparison exercises — and what this package reproduces — is its
// communication structure: a square process grid, x broadcast down grid
// columns, local block multiply, and y reduced across grid rows, every
// phase coupling all participants to the slowest one.
package combblas

import (
	"fmt"
	"math"

	"ygm/internal/codec"
	"ygm/internal/collective"
	"ygm/internal/graph"
	"ygm/internal/machine"
	"ygm/internal/spmat"
	"ygm/internal/transport"
)

// Config parameterizes a 2D SpMV run. The world size must be a perfect
// square (CombBLAS's process-grid requirement; the benchmarks pick node
// counts that satisfy it).
type Config struct {
	// Scale: the matrix is 2^Scale x 2^Scale.
	Scale        int
	EdgesPerRank int
	Params       graph.RMATParams
	Seed         int64
	Iterations   int
	// XValue supplies x_j for iteration iter; defaults to apps.XValue's
	// formula if nil (duplicated here to avoid an import cycle).
	XValue func(j uint64, iter int) float64
	// MatrixValue supplies the nonzero value for generated edge (u,v).
	MatrixValue func(u, v uint64) float64
}

// Result is one rank's outcome.
type Result struct {
	// SetupEnd is this rank's virtual time when the 2D entry
	// distribution finished; the multiply iterations run after it.
	SetupEnd float64
	// Y holds this rank's block of the result when the rank is on the
	// grid diagonal (block r of y for diagonal rank (r,r)); nil
	// elsewhere.
	Y []float64
	// YLo is the global index of Y[0].
	YLo uint64
	// NNZ is the local block's stored nonzero count.
	NNZ int
}

// SpMV runs the 2D bulk-synchronous product on one rank.
//
// Matrix distribution: each rank generates its share of edges and routes
// entry (i,j) to BlockOwner(i,j) with a synchronous all-to-all. The
// input vector's block c lives on diagonal rank (c,c); each iteration it
// is broadcast down grid column c, blocks multiply locally, and partial
// y vectors are reduced across grid rows to the diagonal.
func SpMV(p *transport.Proc, cfg Config) (*Result, error) {
	if cfg.Scale < 1 || cfg.EdgesPerRank < 0 || cfg.Iterations < 1 {
		return nil, fmt.Errorf("combblas: invalid config %+v", cfg)
	}
	if err := cfg.Params.Validate(); err != nil {
		return nil, err
	}
	xValue := cfg.XValue
	if xValue == nil {
		xValue = func(j uint64, iter int) float64 {
			return 1 + float64((j*2654435761+uint64(iter)*97)%1000)/1000
		}
	}
	matValue := cfg.MatrixValue
	if matValue == nil {
		matValue = func(u, v uint64) float64 { return 1 + float64((u*31+v*17)%100)/100 }
	}

	world := p.WorldSize()
	grid, err := spmat.NewGrid(world)
	if err != nil {
		return nil, err
	}
	n := uint64(1) << uint(cfg.Scale)
	me := int(p.Rank())
	myRow, myCol := grid.RowOf(me), grid.ColOf(me)

	worldComm := collective.World(p)

	// Row and column communicators.
	rowRanks := make([]machine.Rank, grid.R)
	colRanks := make([]machine.Rank, grid.R)
	for k := 0; k < grid.R; k++ {
		rowRanks[k] = machine.Rank(grid.RankAt(myRow, k))
		colRanks[k] = machine.Rank(grid.RankAt(k, myCol))
	}
	rowComm, err := collective.New(p, rowRanks)
	if err != nil {
		return nil, err
	}
	colComm, err := collective.New(p, colRanks)
	if err != nil {
		return nil, err
	}

	// Distribute entries to block owners with a synchronous all-to-all.
	gen := graph.NewRMAT(cfg.Params, cfg.Scale, cfg.Seed*104729+int64(p.Rank()))
	outbound := make([]*codec.Writer, world)
	for k := range outbound {
		outbound[k] = &codec.Writer{}
	}
	for k := 0; k < cfg.EdgesPerRank; k++ {
		e := gen.Next()
		i, j := e.V, e.U // same orientation as the YGM SpMV
		w := outbound[grid.BlockOwner(i, j, n)]
		w.Uvarint(i)
		w.Uvarint(j)
		w.Uvarint(math.Float64bits(matValue(e.U, e.V)))
	}
	payloads := make([][]byte, world)
	for k, w := range outbound {
		payloads[k] = w.Bytes()
	}
	received := worldComm.Alltoallv(payloads)

	rowLo, rowHi := grid.BlockRange(myRow, n)
	colLo, colHi := grid.BlockRange(myCol, n)
	var triplets []spmat.Triplet
	for _, blob := range received {
		r := codec.NewReader(blob)
		for r.Remaining() > 0 {
			i, err1 := r.Uvarint()
			j, err2 := r.Uvarint()
			bits, err3 := r.Uvarint()
			if err1 != nil || err2 != nil || err3 != nil {
				return nil, fmt.Errorf("combblas: corrupt entry stream")
			}
			if i < rowLo || i >= rowHi || j < colLo || j >= colHi {
				return nil, fmt.Errorf("combblas: entry (%d,%d) outside block [%d,%d)x[%d,%d)",
					i, j, rowLo, rowHi, colLo, colHi)
			}
			triplets = append(triplets, spmat.Triplet{
				Row: i - rowLo,
				Col: j - colLo,
				Val: math.Float64frombits(bits),
			})
		}
	}
	block, err := spmat.NewCSC(int(colHi-colLo), triplets)
	if err != nil {
		return nil, err
	}

	cpm := p.Model().ComputePerMessage
	res := &Result{YLo: rowLo, NNZ: block.NNZ(), SetupEnd: p.Now()}
	for iter := 0; iter < cfg.Iterations; iter++ {
		// Step 1: the diagonal rank of this grid column materializes its
		// x block and broadcasts it down the column.
		var xSeg []float64
		if myRow == myCol {
			xSeg = make([]float64, colHi-colLo)
			for k := range xSeg {
				xSeg[k] = xValue(colLo+uint64(k), iter)
			}
		}
		var xBlob []byte
		if xSeg != nil {
			w := codec.NewWriter(8*len(xSeg) + 2)
			w.Float64s(xSeg)
			xBlob = w.Bytes()
		}
		xBlob = colComm.Bcast(myCol, xBlob) // diagonal (myCol,myCol) is index myCol in the column
		xSeg, err = codec.NewReader(xBlob).Float64s()
		if err != nil {
			return nil, fmt.Errorf("combblas: corrupt x broadcast: %v", err)
		}

		// Step 2: local block multiply.
		partial := make([]float64, rowHi-rowLo)
		for c := 0; c < block.NumCols(); c++ {
			xc := xSeg[c]
			block.ForEachInCol(c, func(row uint64, val float64) {
				partial[row] += val * xc
			})
			p.Compute(float64(block.ColNNZ(c)) * cpm)
		}

		// Step 3: reduce partials across the grid row to the diagonal.
		total := rowComm.ReduceF64(myRow, partial, collective.SumF64) // diagonal (myRow,myRow) is index myRow in the row
		if myRow == myCol {
			res.Y = total
		}
	}
	return res, nil
}
