package transport

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"

	"ygm/internal/machine"
)

// ChromeTracer is a Tracer + SpanObserver that accumulates a run's
// events as Chrome trace_event JSON: one "process" per rank, span
// begin/end slices from the observability layer, flow arrows for every
// packet from sender to receiver, and instant marks. The output loads
// directly in Perfetto (ui.perfetto.dev) or chrome://tracing.
//
// Virtual seconds map to trace microseconds. It buffers everything in
// memory, so it is a diagnostic tool for bounded runs, not a production
// sink; all methods lock, keeping it safe for concurrent rank use at
// the cost of serializing event emission.
type ChromeTracer struct {
	mu     sync.Mutex
	events []chromeEvent
	// flows matches PacketReceived calls back to the flow id their
	// PacketSent minted. A FIFO per (src, dst, tag) channel is exact
	// because the transport guarantees per-channel non-overtaking.
	flows  map[chromeFlowKey][]uint64
	nextID uint64
	ranks  map[machine.Rank]struct{}
}

type chromeFlowKey struct {
	src, dst machine.Rank
	tag      Tag
}

// chromeEvent is one trace_event entry. Field presence follows the
// trace-event format: every event carries ph/pid/tid/ts; duration
// events add dur, flow events add id, instants add s (scope).
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Cat  string         `json:"cat,omitempty"`
	Pid  int64          `json:"pid"`
	Tid  int64          `json:"tid"`
	Ts   float64        `json:"ts"`
	ID   uint64         `json:"id,omitempty"`
	S    string         `json:"s,omitempty"`
	BP   string         `json:"bp,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// NewChromeTracer returns an empty tracer, ready to pass as Config.Trace.
func NewChromeTracer() *ChromeTracer {
	return &ChromeTracer{
		flows: make(map[chromeFlowKey][]uint64),
		ranks: make(map[machine.Rank]struct{}),
	}
}

// PacketSent emits the flow-start arrow on the sender's process.
func (t *ChromeTracer) PacketSent(src, dst machine.Rank, tag Tag, size int, sent, arrive float64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.ranks[src] = struct{}{}
	t.ranks[dst] = struct{}{}
	t.nextID++
	id := t.nextID
	k := chromeFlowKey{src: src, dst: dst, tag: tag}
	t.flows[k] = append(t.flows[k], id)
	t.events = append(t.events, chromeEvent{
		Name: "pkt", Ph: "s", Cat: "pkt",
		Pid: int64(src), Ts: sent * 1e6, ID: id,
		Args: map[string]any{
			"dst":  int64(dst),
			"tag":  fmt.Sprintf("%#x", uint64(tag)),
			"size": size,
		},
	})
}

// PacketReceived emits the flow-finish arrow on the receiver's process,
// bound to the matching PacketSent via the per-channel FIFO.
func (t *ChromeTracer) PacketReceived(src, dst machine.Rank, tag Tag, size int, now float64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.ranks[dst] = struct{}{}
	k := chromeFlowKey{src: src, dst: dst, tag: tag}
	q := t.flows[k]
	if len(q) == 0 {
		// Receive with no recorded send (tracer attached mid-run);
		// drop the arrow rather than fabricate a flow id.
		return
	}
	id := q[0]
	t.flows[k] = q[1:]
	t.events = append(t.events, chromeEvent{
		Name: "pkt", Ph: "f", Cat: "pkt", BP: "e",
		Pid: int64(dst), Ts: now * 1e6, ID: id,
		Args: map[string]any{
			"src":  int64(src),
			"tag":  fmt.Sprintf("%#x", uint64(tag)),
			"size": size,
		},
	})
}

// SpanBegin emits a duration-begin event on the rank's process.
func (t *ChromeTracer) SpanBegin(rank machine.Rank, name string, at float64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.ranks[rank] = struct{}{}
	t.events = append(t.events, chromeEvent{
		Name: name, Ph: "B", Cat: "span", Pid: int64(rank), Ts: at * 1e6,
	})
}

// SpanEnd emits the matching duration-end event.
func (t *ChromeTracer) SpanEnd(rank machine.Rank, name string, at float64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.events = append(t.events, chromeEvent{
		Name: name, Ph: "E", Cat: "span", Pid: int64(rank), Ts: at * 1e6,
	})
}

// Mark emits a thread-scoped instant event carrying the mark's value.
func (t *ChromeTracer) Mark(rank machine.Rank, name string, value uint64, at float64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.ranks[rank] = struct{}{}
	t.events = append(t.events, chromeEvent{
		Name: name, Ph: "i", Cat: "mark", S: "t",
		Pid: int64(rank), Ts: at * 1e6,
		Args: map[string]any{"value": value},
	})
}

// WriteTo writes the accumulated trace as a JSON object with a
// traceEvents array, prefixed by process_name metadata naming each rank.
func (t *ChromeTracer) WriteTo(w io.Writer) (int64, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	all := make([]chromeEvent, 0, len(t.ranks)+len(t.events))
	for r := range t.ranks {
		all = append(all, chromeEvent{
			Name: "process_name", Ph: "M", Pid: int64(r),
			Args: map[string]any{"name": fmt.Sprintf("rank %d", r)},
		})
	}
	// Metadata order is map-random; sort for deterministic output.
	for i := 1; i < len(t.ranks); i++ {
		for j := i; j > 0 && all[j].Pid < all[j-1].Pid; j-- {
			all[j], all[j-1] = all[j-1], all[j]
		}
	}
	all = append(all, t.events...)
	doc := struct {
		TraceEvents     []chromeEvent `json:"traceEvents"`
		DisplayTimeUnit string        `json:"displayTimeUnit"`
	}{TraceEvents: all, DisplayTimeUnit: "ms"}
	data, err := json.Marshal(doc)
	if err != nil {
		return 0, err
	}
	n, err := w.Write(data)
	return int64(n), err
}

// ValidateChromeTrace checks that data is well-formed Chrome trace_event
// JSON as this package emits it: an object with a non-empty traceEvents
// array whose entries carry a known phase, numeric pid/ts, names on
// non-flow events, balanced B/E nesting per process, and flow finishes
// that bind to an earlier flow start. Tests and the CI trace smoke job
// share it.
func ValidateChromeTrace(data []byte) error {
	var doc struct {
		TraceEvents []struct {
			Name string   `json:"name"`
			Ph   string   `json:"ph"`
			Pid  *int64   `json:"pid"`
			Ts   *float64 `json:"ts"`
			ID   uint64   `json:"id"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return fmt.Errorf("trace: not valid JSON: %w", err)
	}
	if len(doc.TraceEvents) == 0 {
		return fmt.Errorf("trace: empty traceEvents array")
	}
	known := map[string]bool{"B": true, "E": true, "X": true, "i": true, "s": true, "f": true, "M": true, "C": true}
	depth := make(map[int64]int)
	openFlows := make(map[uint64]bool)
	for i, e := range doc.TraceEvents {
		if !known[e.Ph] {
			return fmt.Errorf("trace: event %d has unknown phase %q", i, e.Ph)
		}
		if e.Pid == nil {
			return fmt.Errorf("trace: event %d missing pid", i)
		}
		if e.Ph != "M" {
			if e.Ts == nil {
				return fmt.Errorf("trace: event %d missing ts", i)
			}
			if *e.Ts < 0 {
				return fmt.Errorf("trace: event %d has negative ts %g", i, *e.Ts)
			}
		}
		if e.Name == "" {
			return fmt.Errorf("trace: event %d missing name", i)
		}
		switch e.Ph {
		case "B":
			depth[*e.Pid]++
		case "E":
			depth[*e.Pid]--
			if depth[*e.Pid] < 0 {
				return fmt.Errorf("trace: event %d: span end with no open span on pid %d", i, *e.Pid)
			}
		case "s":
			if e.ID == 0 {
				return fmt.Errorf("trace: event %d: flow start missing id", i)
			}
			openFlows[e.ID] = true
		case "f":
			if !openFlows[e.ID] {
				return fmt.Errorf("trace: event %d: flow finish %d with no start", i, e.ID)
			}
		}
	}
	for pid, d := range depth {
		if d != 0 {
			return fmt.Errorf("trace: pid %d ends with %d unclosed span(s)", pid, d)
		}
	}
	return nil
}
