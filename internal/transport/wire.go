package transport

import (
	"time"

	"ygm/internal/machine"
)

// Wire is the pluggable bottom edge of the runtime: everything below the
// per-rank SPSC inbox rings — how a stamped packet physically travels
// from the sending rank to the destination inbox. The zero-alloc
// AcquireBuf/SendPooled/Recycle discipline, the per-channel rings, the
// per-tag arrival heaps, and the delivery semantics the oracles certify
// all sit *above* this seam and are shared by every backend.
//
// Contract:
//
//   - Inject is called on the sending rank's goroutine with a packet the
//     sender has fully stamped (Src, Tag, Arrive, Payload, pooled).
//     Ownership of the packet transfers to the wire. For a destination
//     hosted in this process the wire must Push the packet into
//     w.Inbox(dst) from exactly one goroutine per (dst, src) channel —
//     the single-producer rule the lock-free rings rely on. A wire that
//     serializes the packet onto an external transport must return it to
//     the world pool afterwards so the sender-side recycle balance holds.
//   - Progress lets a polled backend move bytes on the caller's
//     goroutine. The runtime calls it once before a real-time rank parks
//     in a blocking receive; push-based backends (all three in-tree wires,
//     which deliver from the sender's goroutine or from dedicated reader
//     goroutines) implement it as a no-op. See DESIGN.md §13 for why the
//     hook exists anyway: MPI Progress For All measures exactly the
//     failure mode — handler starvation under a progress-less backend —
//     that this call is the escape hatch for.
//   - Flush blocks until every frame this rank injected has been handed
//     to the underlying transport (the OS for TCP). The runtime calls it
//     as each rank's body returns; in-process wires are synchronous and
//     implement it as a no-op.
//   - RealTime distinguishes virtual-time wires (arrival stamps are
//     netsim model arithmetic, ranks carry a netsim.Clock) from
//     real-time wires (arrival stamps are host seconds since the world
//     epoch and every model charge is skipped — the costs are real
//     instructions and real wire latency). See Report.Wall.
//   - LocalRanks returns the ranks this process hosts; nil means all of
//     them. Run spawns one goroutine per local rank only. A distributed
//     wire (fewer local ranks than the world) must surface remote-peer
//     failure by calling w.WireFail, which poisons the local inboxes so
//     blocked ranks unwind through the same deadlockExit path the
//     watchdog uses.
//   - Start attaches the wire to one World before any rank runs (a
//     distributed wire performs its rendezvous/handshake here); Finish
//     tears it down after every local rank has returned and is where a
//     distributed wire drains peers' goodbyes.
//
// A Wire value is single-use: one Start/Finish cycle per Run.
type Wire interface {
	Name() string
	RealTime() bool
	LocalRanks(topo machine.Topology) []machine.Rank
	Start(w *World) error
	Inject(p *Proc, dst machine.Rank, pkt *Packet)
	Progress(p *Proc)
	Flush(p *Proc)
	Finish() error
}

// SimWire is the virtual-time simulator backend — the runtime's original
// bottom edge, extracted behind the Wire seam with zero behavior change.
// Every rank runs as a goroutine in this process, arrival stamps come
// from the netsim cost model, and Inject is a direct Push into the
// destination's inbox rings. A nil Config.Wire selects SimWire.
type SimWire struct{}

func (SimWire) Name() string       { return "sim" }
func (SimWire) RealTime() bool     { return false }
func (SimWire) Start(*World) error { return nil }

// LocalRanks: every rank lives in this process.
func (SimWire) LocalRanks(machine.Topology) []machine.Rank { return nil }

//ygm:hotpath
func (SimWire) Inject(p *Proc, dst machine.Rank, pkt *Packet) {
	p.world.inboxes[dst].Push(pkt)
}

func (SimWire) Progress(*Proc) {}
func (SimWire) Flush(*Proc)    {}
func (SimWire) Finish() error  { return nil }

// LocalWire is the in-process real-time backend: the same goroutine-per
// rank execution and direct inbox delivery as SimWire, but with no
// netsim clock — arrival stamps are host time, model charges are
// skipped, and the Report measures actual wall seconds on real
// hardware. It exists so the benches can measure the runtime itself
// (injection rate, handler dispatch, ring handoff) rather than the cost
// model, and as the single-process anchor of the backend-conformance
// suite.
type LocalWire struct{}

func (LocalWire) Name() string       { return "local" }
func (LocalWire) RealTime() bool     { return true }
func (LocalWire) Start(*World) error { return nil }

func (LocalWire) LocalRanks(machine.Topology) []machine.Rank { return nil }

func (LocalWire) Inject(p *Proc, dst machine.Rank, pkt *Packet) {
	p.world.inboxes[dst].Push(pkt)
}

func (LocalWire) Progress(*Proc) {}
func (LocalWire) Flush(*Proc)    {}
func (LocalWire) Finish() error  { return nil }

// hostNow reads the host clock for the real-time wires and the TCP
// handshake deadlines. Like the deadlock watchdog, real-time backends
// run on host time by design: the virtual-clock rule exists to keep
// *simulated* experiments independent of host scheduling, and a
// real-time wire's entire point is to measure that scheduling.
func hostNow() time.Time {
	return time.Now() //ygmvet:ignore wallclock — real-time wire backends measure host time by design
}

// WireFail records a wire-level fault (a peer connection reset, a failed
// remote write) and unwinds the local ranks: the world is marked failed
// — so AbortIfPeerFailed loops exit — and every local inbox is poisoned
// so blocked receivers return through the orderly deadlockExit path.
// Run reports the first recorded fault when no rank error explains the
// unwind. Safe to call from any wire goroutine, more than once.
func (w *World) WireFail(err error) {
	w.wireMu.Lock()
	if w.wireErr == nil {
		w.wireErr = err
	}
	w.wireMu.Unlock()
	w.failed.Store(true)
	for _, ib := range w.inboxes {
		ib.poison()
	}
}

// Inbox exposes rank r's inbox for wire implementations that deliver
// from their own reader goroutines (each must respect the one-producer
// per (dst, src) channel rule Push documents).
func (w *World) Inbox(r machine.Rank) *Inbox { return w.inboxes[r] }
