package transport

import (
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"ygm/internal/machine"
	"ygm/internal/netsim"
	"ygm/internal/obs"
)

// Config describes one SPMD run.
type Config struct {
	// Topo is the simulated cluster shape.
	Topo machine.Topology
	// Model is the network cost model; zero value defaults to
	// netsim.Quartz().
	Model netsim.Model
	// Seed feeds the deterministic per-rank random sources.
	Seed int64
	// TrackPartners enables per-destination send counters (costly on
	// large runs; used by routing-invariant tests).
	TrackPartners bool
	// ComputeScale, when non-nil, returns a multiplier applied to every
	// Compute call of the given rank. Values > 1 model stragglers — the
	// imbalance scenario the paper's asynchronous design targets.
	ComputeScale func(r machine.Rank) float64
	// WatchdogInterval is the host-time polling cadence of the deadlock
	// watchdog, which aborts a run with a per-rank state dump when every
	// active rank is blocked in a receive with no traffic in flight.
	// Zero selects the default (250ms); a negative value disables the
	// watchdog entirely.
	WatchdogInterval time.Duration
	// Trace, when non-nil, receives every packet send and receive event.
	// It must be safe for concurrent use; see Tracer. Nil disables
	// tracing at the cost of one branch per event.
	Trace Tracer
	// Delay, when non-nil, adds extra virtual flight time to each packet
	// (fault injection for schedule exploration); see DelayFn.
	Delay DelayFn
	// FlightRecorder sizes each rank's ring of recent events (sends,
	// receives, arrival jumps, spans, marks) that deadlock and panic
	// dumps include. Zero selects obs.DefaultRecorderSize; a negative
	// value disables the recorder entirely.
	FlightRecorder int
	// Workers selects the execution model. Zero (the default) is
	// automatic: worlds larger than schedAutoWorlds ranks on a simulated
	// wire run under the M:N rank scheduler with one worker token per
	// host core (GOMAXPROCS); smaller worlds and real-time wires keep
	// the direct goroutine-per-rank model. A positive value forces the
	// scheduler with that many worker tokens (any world size, any wire);
	// -1 forces the direct model. See DESIGN.md §15.
	Workers int
	// Wire selects the transport backend below the inbox rings: nil (the
	// default) is the virtual-time SimWire; LocalWire runs the same
	// in-process world in real time; TCPWire runs one rank per OS
	// process over localhost TCP. Real-time wires ignore Model, Delay,
	// and ComputeScale — their costs are real instructions and real wire
	// latency, not model charges. See the Wire interface and DESIGN.md
	// §13.
	Wire Wire
}

// World holds the shared state of a run: one inbox per rank plus the
// immutable configuration.
type World struct {
	topo          machine.Topology
	model         netsim.Model
	inboxes       []*Inbox
	trackPartners bool
	trace         Tracer
	// wire is the resolved transport backend (SimWire when Config.Wire
	// is nil); realtime caches wire.RealTime() and epoch anchors the
	// real-time rank clocks (host seconds since Start returned).
	wire     Wire
	realtime bool
	epoch    time.Time
	// wireMu guards wireErr, the first wire-level fault recorded by
	// WireFail (a peer connection reset, a failed remote write).
	wireMu  sync.Mutex
	wireErr error
	// spanObs is Config.Trace's SpanObserver side, type-asserted once at
	// Run so the per-span check is a nil compare, not an assertion.
	spanObs SpanObserver
	delay   DelayFn

	// pool recycles packet structs and pooled payload buffers; see
	// bufPool for the ownership protocol.
	pool bufPool

	// active counts ranks whose SPMD body is still running; the deadlock
	// watchdog compares it against the number of blocked receivers.
	active atomic.Int64
	// poisoned is set once the watchdog declares deadlock.
	poisoned atomic.Bool
	// failed is set when any rank's body panics or returns an error.
	// Nonblocking progress loops consult it (via Proc.AbortIfPeerFailed)
	// so one rank's failure cannot livelock peers that never enter a
	// blocking receive — the deadlock watchdog only sees blocked ranks.
	failed atomic.Bool
	// dead collects per-rank state dumps, self-reported by each rank as
	// it unwinds from a poisoned receive (index = rank, written by the
	// owning rank only, read after all goroutines join).
	dead []*RankDeadState

	// sched is the M:N rank scheduler, non-nil when Config.Workers
	// resolved to a worker pool; nil under the direct
	// goroutine-per-rank model.
	sched *scheduler
}

// RankReport is one rank's outcome. Time/Busy/Wait are virtual netsim
// seconds under a simulated wire and host seconds since the run epoch
// under a real-time wire (see Report.Wall).
type RankReport struct {
	Rank  machine.Rank
	Time  float64 // final clock: virtual seconds, or wall seconds when Report.Wall
	Busy  float64
	Wait  float64
	Stats Stats
	// MaxInboxDepth is the high-water mark of this rank's receive queue.
	MaxInboxDepth int
	// Metrics is the rank's named-metric snapshot, taken as the rank's
	// goroutine unwinds; Report.Metrics merges all ranks' snapshots.
	Metrics obs.Snapshot
}

// Report aggregates a run. Under a distributed wire (TCPWire) it covers
// only the ranks this process hosted; each process assembles its own
// report.
type Report struct {
	Topo  machine.Topology
	Ranks []RankReport
	// Wall reports the time base of every duration in this report: false
	// means simulated netsim seconds (SimWire), true means measured host
	// seconds since the run epoch (real-time wires — LocalWire, TCPWire).
	Wall bool
	// Sched is the M:N rank scheduler's own metric snapshot (worker
	// utilization, handoff/steal counts, ready-queue depth) when the run
	// used one; the zero Snapshot otherwise. Metrics() folds it in.
	Sched obs.Snapshot
}

// Makespan returns the run's elapsed time: the maximum final clock over
// the reported ranks. Simulated seconds under SimWire; measured wall
// seconds when Wall is set (the per-rank clocks share one epoch, so the
// maximum is the real end-to-end duration across this process's ranks).
func (r *Report) Makespan() float64 {
	max := 0.0
	for _, rr := range r.Ranks {
		if rr.Time > max {
			max = rr.Time
		}
	}
	return max
}

// Totals sums traffic counters over all ranks.
func (r *Report) Totals() Totals {
	var t Totals
	for _, rr := range r.Ranks {
		t.LocalMsgs += rr.Stats.LocalMsgs
		t.LocalBytes += rr.Stats.LocalBytes
		t.RemoteMsgs += rr.Stats.RemoteMsgs
		t.RemoteBytes += rr.Stats.RemoteBytes
		t.DataLocalMsgs += rr.Stats.DataLocalMsgs
		t.DataLocalBytes += rr.Stats.DataLocalBytes
		t.DataRemoteMsgs += rr.Stats.DataRemoteMsgs
		t.DataRemoteBytes += rr.Stats.DataRemoteBytes
	}
	return t
}

// Utilization returns aggregate core utilization: total busy time over
// reported-rank count times makespan. This is the "core utilization"
// quantity the paper's abstract claims the asynchronous collectives
// improve. The ratio is well-defined in both time bases: under a
// real-time wire Busy is measured wall time outside blocking receives,
// so the quotient is the fraction of host time the ranks spent off the
// park path rather than a netsim model quantity.
func (r *Report) Utilization() float64 {
	ms := r.Makespan()
	if ms == 0 {
		return 1
	}
	busy := 0.0
	for _, rr := range r.Ranks {
		busy += rr.Busy
	}
	return busy / (ms * float64(len(r.Ranks)))
}

// Metrics merges every rank's named-metric snapshot into one run-wide
// view: counters and histogram buckets add, gauges keep the largest
// high-water mark.
func (r *Report) Metrics() obs.Snapshot {
	snaps := make([]obs.Snapshot, 0, len(r.Ranks)+1)
	for i := range r.Ranks {
		snaps = append(snaps, r.Ranks[i].Metrics)
	}
	snaps = append(snaps, r.Sched)
	return obs.MergeSnapshots(snaps...)
}

// MaxInboxDepth returns the largest receive-queue depth any rank saw.
func (r *Report) MaxInboxDepth() int {
	max := 0
	for _, rr := range r.Ranks {
		if rr.MaxInboxDepth > max {
			max = rr.MaxInboxDepth
		}
	}
	return max
}

// Run executes body once per rank, each on its own goroutine, and blocks
// until every rank returns. Any error or panic from a rank aborts the
// report with a descriptive error (the remaining goroutines are still
// joined: SPMD bodies are expected to be deadlock-free on error paths
// only via their own collective discipline, so Run must only be handed
// bodies that return errors at globally consistent points).
func Run(cfg Config, body func(p *Proc) error) (*Report, error) {
	if cfg.Topo.WorldSize() == 0 {
		return nil, fmt.Errorf("transport: empty topology")
	}
	if cfg.Model == (netsim.Model{}) {
		cfg.Model = netsim.Quartz()
	}
	if err := cfg.Model.Validate(); err != nil {
		return nil, err
	}
	size := cfg.Topo.WorldSize()
	wire := cfg.Wire
	if wire == nil {
		wire = SimWire{}
	}
	w := &World{
		topo:          cfg.Topo,
		model:         cfg.Model,
		trackPartners: cfg.TrackPartners,
		trace:         cfg.Trace,
		delay:         cfg.Delay,
		wire:          wire,
		realtime:      wire.RealTime(),
	}
	if so, ok := cfg.Trace.(SpanObserver); ok {
		w.spanObs = so
	}
	w.pool.init()
	w.inboxes = buildInboxes(size)
	if n := resolveWorkers(cfg.Workers, size, w.realtime); n > 0 {
		w.sched = newScheduler(size, n)
	}
	for i, ib := range w.inboxes {
		ib.self = machine.Rank(i)
		ib.sched = w.sched
	}
	w.dead = make([]*RankDeadState, size)
	// local is the set of ranks this process hosts (nil from the wire
	// means all of them); distributed wires run one subset per process.
	local := wire.LocalRanks(cfg.Topo)
	if local == nil {
		local = make([]machine.Rank, size)
		for i := range local {
			local[i] = machine.Rank(i)
		}
	}
	for _, r := range local {
		if !cfg.Topo.Valid(r) {
			return nil, fmt.Errorf("transport: wire %s claims invalid local rank %d", wire.Name(), r)
		}
	}
	w.active.Store(int64(len(local)))
	// A distributed wire performs its rendezvous/handshake here, before
	// any rank runs; the epoch anchoring real-time rank clocks is taken
	// after it returns so every process starts its clocks post-handshake.
	if err := wire.Start(w); err != nil {
		return nil, fmt.Errorf("transport: wire %s: %w", wire.Name(), err)
	}
	// A wire that spawns stamping goroutines (TCP readers) sets the epoch
	// itself before they start; otherwise the clocks anchor here.
	if w.epoch.IsZero() {
		w.epoch = hostNow()
	}
	// The quiet-world deadlock heuristic is only sound when every rank is
	// visible to this process's watchdog: under a distributed wire a
	// locally-blocked rank may be waiting on a remote peer the watchdog
	// cannot observe, so detection is left to connection-fault surfacing
	// (WireFail) instead.
	if cfg.WatchdogInterval >= 0 && len(local) == size {
		interval := cfg.WatchdogInterval
		if interval == 0 {
			interval = defaultWatchdogInterval
		}
		stop := make(chan struct{})
		defer close(stop)
		go w.watchdog(interval, stop)
	}

	report := &Report{Topo: cfg.Topo, Ranks: make([]RankReport, size), Wall: w.realtime}
	errs := make([]error, size)
	var wg sync.WaitGroup
	wg.Add(len(local))
	for _, i := range local {
		go func(r machine.Rank) {
			defer wg.Done()
			defer w.active.Add(-1)
			p := &Proc{
				world:        w,
				rank:         r,
				rng:          rand.New(newRngSource(cfg.Seed*1000003 + int64(r))),
				computeScale: 1,
				metrics:      obs.NewRegistry(),
			}
			if w.realtime {
				p.rt = &rtClock{}
			}
			p.szLocal = p.metrics.Histogram("transport.msg_size.local")
			p.szRemote = p.metrics.Histogram("transport.msg_size.remote")
			if cfg.FlightRecorder >= 0 {
				p.rec = obs.NewRecorder(cfg.FlightRecorder)
			}
			if cfg.ComputeScale != nil {
				if s := cfg.ComputeScale(r); s > 0 {
					p.computeScale = s
				}
			}
			// Under the M:N scheduler the rank now waits for a worker
			// token (setup above ran unthrottled — it is pure
			// allocation). The deferred exit releases the token however
			// the body unwinds; it runs after the bookkeeping defer
			// below, so report assembly still holds the token.
			if w.sched != nil {
				w.sched.acquire(r)
				defer w.sched.exit(r)
			}
			defer func() {
				if rec := recover(); rec != nil {
					if _, ok := rec.(rankDeadlocked); ok {
						// Orderly unwind from a poisoned receive; the
						// aggregated DeadlockError is assembled after
						// all ranks join.
						errs[r] = errRankDeadlocked
					} else {
						errs[r] = fmt.Errorf("transport: rank %d panicked: %v\n%s", r, rec, debug.Stack())
						w.failed.Store(true)
						// A dead rank usually deadlocks its peers (they wait
						// on its messages); surface the cause immediately
						// rather than only after every goroutine unwinds.
						fmt.Fprintf(os.Stderr, "transport: rank %d died: %v\n", r, rec)
						if p.rec != nil {
							if evs := p.rec.Snapshot(); len(evs) > 0 {
								fmt.Fprintf(os.Stderr, "transport: rank %d recent events:\n%s",
									r, obs.FormatEvents(evs, "  "))
							}
						}
					}
				} else if errs[r] != nil {
					w.failed.Store(true)
				}
				pushes, wakeups, suppressed := w.inboxes[r].WakeStats()
				p.metrics.Counter("inbox.pushes").Add(pushes)
				p.metrics.Counter("inbox.wakeups").Add(wakeups)
				p.metrics.Counter("inbox.wakeups_suppressed").Add(suppressed)
				spinHits, parks := w.inboxes[r].SpinParkStats()
				p.metrics.Counter("inbox.spin_hits").Add(spinHits)
				p.metrics.Counter("inbox.parks").Add(parks)
				p.metrics.Gauge("inbox.max_depth").Set(float64(w.inboxes[r].MaxDepth()))
				now, busy, wait := p.clocks()
				report.Ranks[r] = RankReport{
					Rank:          r,
					Time:          now,
					Busy:          busy,
					Wait:          wait,
					Stats:         p.stats,
					MaxInboxDepth: w.inboxes[r].MaxDepth(),
					Metrics:       p.metrics.Snapshot(),
				}
			}()
			errs[r] = body(p)
			if errs[r] == nil {
				w.wire.Flush(p)
			}
		}(i)
	}
	wg.Wait()
	if w.sched != nil {
		report.Sched = w.sched.snapshot()
	}
	ferr := w.wire.Finish()
	if len(local) < size {
		// Distributed run: compact the report to the ranks this process
		// hosted so aggregate quantities (Utilization's rank count above
		// all) stay meaningful.
		ranks := make([]RankReport, 0, len(local))
		for _, r := range local {
			ranks = append(ranks, report.Ranks[r])
		}
		report.Ranks = ranks
	}
	// A rank that died from a real panic usually strands its peers in
	// blocking receives, which the watchdog then resolves by poisoning
	// them — so prefer reporting the root-cause panic over the derived
	// deadlock when both are present.
	for _, err := range errs {
		if err != nil && err != errRankDeadlocked {
			return report, err
		}
	}
	if w.poisoned.Load() {
		return report, w.deadlockError()
	}
	// A wire fault (recorded via WireFail) explains ranks that unwound
	// through the poisoned-receive path without a watchdog verdict.
	w.wireMu.Lock()
	werr := w.wireErr
	w.wireMu.Unlock()
	if werr != nil {
		return report, fmt.Errorf("transport: wire %s: %w", w.wire.Name(), werr)
	}
	if ferr != nil {
		return report, fmt.Errorf("transport: wire %s: finish: %w", w.wire.Name(), ferr)
	}
	return report, nil
}

// errRankDeadlocked marks a rank unwound by the deadlock watchdog; Run
// replaces it with the aggregated DeadlockError.
var errRankDeadlocked = fmt.Errorf("transport: rank unwound by deadlock watchdog")

// schedAutoWorlds is the world size above which Config.Workers == 0
// auto-selects the M:N rank scheduler on simulated wires. Below it the
// direct goroutine-per-rank model wins: the host scheduler handles a
// few hundred goroutines fine, and the token handoffs would be pure
// overhead on the micro-bench worlds.
const schedAutoWorlds = 1024

// resolveWorkers maps Config.Workers to a worker-token count: 0 means
// none (direct model). See Config.Workers for the policy.
func resolveWorkers(cfgWorkers, size int, realtime bool) int {
	switch {
	case cfgWorkers > 0:
		return cfgWorkers
	case cfgWorkers < 0:
		return 0
	case size > schedAutoWorlds && !realtime:
		return runtime.GOMAXPROCS(0)
	default:
		return 0
	}
}

// buildInboxes constructs the per-rank inboxes for a world of size
// ranks. Dense worlds (≤ denseWorlds) share two world-sized slabs — P²
// ring headers and, for slab-eligible sizes, P²·ringCap packet slots —
// so setup is a handful of allocations per world. Sparse worlds
// materialize (src→dst) channels on first push instead, keeping an
// idle world's footprint O(P) rather than O(P²).
func buildInboxes(size int) []*Inbox {
	inboxes := make([]*Inbox, size)
	if size > denseWorlds {
		for i := range inboxes {
			inboxes[i] = newSparseInbox()
		}
		return inboxes
	}
	ringSlab := make([]inboxRing, size*size)
	var slotSlab []*Packet
	if size <= ringSlabWorlds {
		slotSlab = make([]*Packet, size*size*ringCap)
	}
	for i := range inboxes {
		rings := ringSlab[i*size : (i+1)*size : (i+1)*size]
		var slots []*Packet
		if slotSlab != nil {
			slots = slotSlab[i*size*ringCap : (i+1)*size*ringCap]
		}
		inboxes[i] = newInboxFrom(rings, slots)
	}
	return inboxes
}
