package transport

import (
	"fmt"
	"strings"
	"testing"

	"ygm/internal/machine"
	"ygm/internal/obs"
)

// fabricateDeadStates builds n blocked-rank snapshots with
// deterministic depths and tags: rank r has inbox depth r%97 and is
// blocked on one of three tags. Every rank carries a one-event flight
// recorder so the dumpEventRanks gate is observable.
func fabricateDeadStates(n int) []RankDeadState {
	states := make([]RankDeadState, n)
	for r := 0; r < n; r++ {
		states[r] = RankDeadState{
			Rank:       machine.Rank(r),
			Clock:      float64(r) * 1e-6,
			InboxDepth: r % 97,
			BlockedTag: TagUser + Tag(r%3),
			Recent: []obs.Event{{
				Kind: obs.KMark, T: float64(r) * 1e-6, Peer: -1, Name: "probe",
			}},
		}
	}
	return states
}

// TestDeadlockDumpSummarized checks the large-world DeadlockError
// rendering: past dumpRankCap blocked ranks, the dump must show only
// the cap's worth of deepest-inbox ranks, aggregate the rest into a
// blocked-tag histogram, and report total queued traffic — without ever
// growing O(P) detail lines.
func TestDeadlockDumpSummarized(t *testing.T) {
	const world = 200
	err := &DeadlockError{
		Blocked:  fabricateDeadStates(world),
		Finished: []machine.Rank{},
	}
	msg := err.Error()

	if !strings.Contains(msg, fmt.Sprintf("deadlock detected: %d rank(s) blocked", world)) {
		t.Fatalf("missing blocked-count header:\n%s", msg)
	}
	wantHeader := fmt.Sprintf("showing the %d deepest-inbox ranks (%d more aggregated below):",
		dumpRankCap, world-dumpRankCap)
	if !strings.Contains(msg, wantHeader) {
		t.Fatalf("missing summary header %q:\n%s", wantHeader, msg)
	}
	if got := strings.Count(msg, "blocked on tag"); got != dumpRankCap {
		t.Fatalf("%d per-rank lines, want exactly %d", got, dumpRankCap)
	}
	// Depth 96 is the maximum of r%97 over 200 ranks; rank 96 hits it
	// first, so ties break to it and it must lead the listing.
	if !strings.Contains(msg, "rank 96: blocked on tag") {
		t.Fatalf("deepest-inbox rank 96 not shown:\n%s", msg)
	}
	lines := strings.Split(msg, "\n")
	firstRankLine := ""
	for _, l := range lines {
		if strings.Contains(l, "blocked on tag") {
			firstRankLine = strings.TrimSpace(l)
			break
		}
	}
	if !strings.HasPrefix(firstRankLine, "rank 96:") {
		t.Fatalf("listing must start with the deepest inbox (rank 96), got %q", firstRankLine)
	}
	// Flight-recorder tails appear for at most dumpEventRanks of the
	// shown ranks even though every fabricated state carries events.
	if got := strings.Count(msg, "last 1 events"); got != dumpEventRanks {
		t.Fatalf("%d flight-recorder tails, want %d", got, dumpEventRanks)
	}
	if !strings.Contains(msg, "blocked-tag histogram (3 distinct tag(s)):") {
		t.Fatalf("missing blocked-tag histogram:\n%s", msg)
	}
	// Histogram rows must cover every blocked rank, not just the shown
	// ones: 200 ranks over 3 tags → 67+67+66.
	for _, want := range []string{": 67 rank(s)", ": 66 rank(s)"} {
		if !strings.Contains(msg, want) {
			t.Fatalf("histogram row %q missing:\n%s", want, msg)
		}
	}
	totalDepth := 0
	for r := 0; r < world; r++ {
		totalDepth += r % 97
	}
	if !strings.Contains(msg, fmt.Sprintf("total queued packets across blocked ranks: %d", totalDepth)) {
		t.Fatalf("missing/incorrect total-queued line (want %d):\n%s", totalDepth, msg)
	}
}

// TestDeadlockDumpSmallWorldFull pins the small-world format: at or
// below dumpRankCap blocked ranks every rank gets its own detail line
// and no summary machinery appears.
func TestDeadlockDumpSmallWorldFull(t *testing.T) {
	err := &DeadlockError{
		Blocked: []RankDeadState{
			{Rank: 2, Clock: 0.25, InboxDepth: 3, BlockedTag: TagUser},
			{Rank: 5, Clock: 0.5, InboxDepth: 0, BlockedTag: TagData},
		},
		Finished: []machine.Rank{0, 1},
	}
	msg := err.Error()
	want := "transport: deadlock detected: 2 rank(s) blocked, 2 finished" +
		"\n  rank 2: blocked on tag 0x10, clock 0.250000s, inbox depth 3" +
		"\n  rank 5: blocked on tag 0x1, clock 0.500000s, inbox depth 0" +
		"\n  finished: rank(s) 0, 1"
	if msg != want {
		t.Fatalf("small-world dump drifted:\n got: %q\nwant: %q", msg, want)
	}
}

// TestDeadlockDumpManyFinished checks the finished-rank list also
// collapses to a count past dumpRankCap instead of listing 65k ranks.
func TestDeadlockDumpManyFinished(t *testing.T) {
	finished := make([]machine.Rank, dumpRankCap+1)
	for i := range finished {
		finished[i] = machine.Rank(i)
	}
	err := &DeadlockError{
		Blocked:  fabricateDeadStates(1)[:1],
		Finished: finished,
	}
	msg := err.Error()
	want := fmt.Sprintf("finished: %d rank(s)", dumpRankCap+1)
	if !strings.Contains(msg, want) {
		t.Fatalf("missing collapsed finished line %q:\n%s", want, msg)
	}
	if strings.Contains(msg, "finished: rank(s)") {
		t.Fatalf("finished ranks listed individually past cap:\n%s", msg)
	}
}
