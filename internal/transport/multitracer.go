package transport

import "ygm/internal/machine"

// NewMultiTracer composes any number of Tracers into one that fans
// every packet event out to all of them, in argument order. It replaces
// the ad-hoc per-call-site tee types that used to live in the harness.
//
// Nil entries are dropped. Zero live tracers compose to nil — callers
// hand the result straight to Config.Trace and keep the nil fast path —
// and a single live tracer is returned as itself, unwrapped, so its
// dynamic type (and any SpanObserver implementation) is preserved
// without an indirection layer.
//
// Span events follow the same one-time type-assertion contract as
// transport.Run: the composite implements SpanObserver only when at
// least one child does, so a stack of plain Tracers still lets Run take
// its no-span fast path. Children that do not implement SpanObserver
// simply never see span events.
func NewMultiTracer(tracers ...Tracer) Tracer {
	live := make([]Tracer, 0, len(tracers))
	spans := make([]SpanObserver, 0, len(tracers))
	for _, t := range tracers {
		if t == nil {
			continue
		}
		live = append(live, t)
		if so, ok := t.(SpanObserver); ok {
			spans = append(spans, so)
		}
	}
	switch {
	case len(live) == 0:
		return nil
	case len(live) == 1:
		return live[0]
	case len(spans) == 0:
		return multiTracer(live)
	default:
		return &multiTracerSpans{multiTracer: multiTracer(live), spans: spans}
	}
}

// multiTracer is the span-free composite: it deliberately does NOT
// implement SpanObserver, so Run's one-time type assertion fails and
// the per-span fast path stays nil when no child wants spans.
type multiTracer []Tracer

func (m multiTracer) PacketSent(src, dst machine.Rank, tag Tag, size int, sent, arrive float64) {
	for _, t := range m {
		t.PacketSent(src, dst, tag, size, sent, arrive)
	}
}

func (m multiTracer) PacketReceived(src, dst machine.Rank, tag Tag, size int, now float64) {
	for _, t := range m {
		t.PacketReceived(src, dst, tag, size, now)
	}
}

// multiTracerSpans adds span fan-out on top of the packet fan-out, for
// composites where at least one child implements SpanObserver.
type multiTracerSpans struct {
	multiTracer
	spans []SpanObserver
}

func (m *multiTracerSpans) SpanBegin(rank machine.Rank, name string, t float64) {
	for _, s := range m.spans {
		s.SpanBegin(rank, name, t)
	}
}

func (m *multiTracerSpans) SpanEnd(rank machine.Rank, name string, t float64) {
	for _, s := range m.spans {
		s.SpanEnd(rank, name, t)
	}
}

func (m *multiTracerSpans) Mark(rank machine.Rank, name string, value uint64, t float64) {
	for _, s := range m.spans {
		s.Mark(rank, name, value, t)
	}
}
