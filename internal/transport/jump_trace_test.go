package transport

import (
	"bytes"
	"io"
	"os"
	"strings"
	"testing"

	"ygm/internal/machine"
	"ygm/internal/netsim"
	"ygm/internal/obs"
)

// captureStdio swaps os.Stdout and os.Stderr for pipes, runs fn, and
// returns what was written to each. Test-only plumbing; not safe for
// parallel tests.
func captureStdio(t *testing.T, fn func()) (stdout, stderr string) {
	t.Helper()
	oldOut, oldErr := os.Stdout, os.Stderr
	outR, outW, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	errR, errW, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout, os.Stderr = outW, errW
	outCh := make(chan string, 1)
	errCh := make(chan string, 1)
	go func() { var b bytes.Buffer; io.Copy(&b, outR); outCh <- b.String() }()
	go func() { var b bytes.Buffer; io.Copy(&b, errR); errCh <- b.String() }()
	defer func() {
		os.Stdout, os.Stderr = oldOut, oldErr
	}()
	fn()
	outW.Close()
	errW.Close()
	return <-outCh, <-errCh
}

// TestTraceJumpsGoesToStderr is the regression test for the absorb
// tracing bug: the JUMP debug line used to go to stdout, which carries
// machine-read bench output. With traceJumps enabled and a >50us
// arrival wait, the line must appear on stderr and stdout must stay
// clean.
func TestTraceJumpsGoesToStderr(t *testing.T) {
	old := traceJumps
	traceJumps = true
	defer func() { traceJumps = old }()

	// 1 MiB across the wire: ~15us rendezvous + ~95us at 11 GB/s, far
	// past the 50us jump threshold for a receiver still at virtual zero.
	payload := make([]byte, 1<<20)
	stdout, stderr := captureStdio(t, func() {
		_, err := Run(Config{
			Topo:  machine.New(2, 1), // two nodes: the transfer is remote
			Model: netsim.Quartz(),
			Seed:  5,
		}, func(p *Proc) error {
			if p.Rank() == 0 {
				p.Send(1, TagUser, payload)
				return nil
			}
			pkt := p.Recv(TagUser)
			p.Recycle(pkt)
			return nil
		})
		if err != nil {
			t.Error(err)
		}
	})
	if !strings.Contains(stderr, "JUMP rank=1") {
		t.Fatalf("expected JUMP trace on stderr, got %q", stderr)
	}
	if strings.Contains(stdout, "JUMP") {
		t.Fatalf("JUMP trace leaked to stdout: %q", stdout)
	}
	if stdout != "" {
		t.Fatalf("stdout not clean under traceJumps: %q", stdout)
	}
}

// TestTraceJumpsRecordedInFlightRecorder checks the always-on half of
// the fix: even with traceJumps disabled (the default), a large arrival
// wait leaves a KJump event in the rank's flight recorder.
func TestTraceJumpsRecordedInFlightRecorder(t *testing.T) {
	payload := make([]byte, 1<<20)
	sawJump := false
	_, err := Run(Config{
		Topo:  machine.New(2, 1),
		Model: netsim.Quartz(),
		Seed:  5,
	}, func(p *Proc) error {
		if p.Rank() == 0 {
			p.Send(1, TagUser, payload)
			return nil
		}
		pkt := p.Recv(TagUser)
		p.Recycle(pkt)
		for _, ev := range p.FlightRecorder().Snapshot() {
			if ev.Kind == obs.KJump {
				sawJump = true
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !sawJump {
		t.Fatal("no jump event in flight recorder after a >50us arrival wait")
	}
}
