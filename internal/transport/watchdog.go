package transport

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"ygm/internal/machine"
	"ygm/internal/obs"
)

// defaultWatchdogInterval is the polling cadence of the deadlock
// watchdog. Detection needs two consecutive quiet observations, so the
// worst-case latency from deadlock to dump is about three intervals.
const defaultWatchdogInterval = 250 * time.Millisecond

// RankDeadState is one rank's snapshot at deadlock-detection time,
// self-reported by the rank as it unwinds from its poisoned receive.
type RankDeadState struct {
	Rank       machine.Rank
	Clock      float64 // virtual time at which the rank blocked
	InboxDepth int     // packets physically queued (other tags included)
	BlockedTag Tag     // the tag the rank was blocked receiving
	// Recent holds the rank's flight-recorder contents (oldest first) —
	// what the rank was doing before it blocked, not just its final
	// state. Empty when the recorder was disabled.
	Recent []obs.Event
}

// DeadlockError reports that the deadlock watchdog found every active
// rank blocked in a receive with no traffic in flight — the state a
// flush-before-drain violation or a mismatched collective produces. It
// carries the per-rank state dump the watchdog collected instead of
// letting the run hang.
type DeadlockError struct {
	// Blocked holds the state of every rank that was parked in a blocking
	// receive when the watchdog fired.
	Blocked []RankDeadState
	// Finished lists ranks whose SPMD body had already returned.
	Finished []machine.Rank
}

// dumpRankCap bounds the per-rank detail in a DeadlockError dump. A
// 65k-rank world dumping every rank is megabytes of noise; past the
// cap, Error shows the ranks with the deepest inboxes (the likely
// congestion points) and aggregates the rest into a blocked-tag
// histogram. The Blocked slice itself always carries every rank for
// programmatic consumers.
const dumpRankCap = 64

// dumpEventRanks bounds how many of the shown ranks include their
// flight-recorder tail in a summarized dump.
const dumpEventRanks = 4

// Error formats the per-rank state dump. Worlds of at most dumpRankCap
// blocked ranks keep the full dump; larger worlds are summarized.
func (e *DeadlockError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "transport: deadlock detected: %d rank(s) blocked, %d finished",
		len(e.Blocked), len(e.Finished))
	if len(e.Blocked) > dumpRankCap {
		e.formatSummary(&b)
	} else {
		for _, s := range e.Blocked {
			fmt.Fprintf(&b, "\n  rank %d: blocked on tag %#x, clock %.6fs, inbox depth %d",
				s.Rank, uint64(s.BlockedTag), s.Clock, s.InboxDepth)
			if len(s.Recent) > 0 {
				fmt.Fprintf(&b, "\n    last %d events:\n%s", len(s.Recent),
					strings.TrimRight(obs.FormatEvents(s.Recent, "      "), "\n"))
			}
		}
	}
	switch {
	case len(e.Finished) > dumpRankCap:
		fmt.Fprintf(&b, "\n  finished: %d rank(s)", len(e.Finished))
	case len(e.Finished) > 0:
		parts := make([]string, len(e.Finished))
		for i, r := range e.Finished {
			parts[i] = fmt.Sprintf("%d", r)
		}
		fmt.Fprintf(&b, "\n  finished: rank(s) %s", strings.Join(parts, ", "))
	}
	return b.String()
}

// formatSummary renders the large-world dump: the dumpRankCap
// deepest-inbox ranks (ties broken by rank), then an aggregate
// histogram of what the remaining ranks were blocked on.
func (e *DeadlockError) formatSummary(b *strings.Builder) {
	deepest := make([]RankDeadState, len(e.Blocked))
	copy(deepest, e.Blocked)
	sort.Slice(deepest, func(i, j int) bool {
		if deepest[i].InboxDepth != deepest[j].InboxDepth {
			return deepest[i].InboxDepth > deepest[j].InboxDepth
		}
		return deepest[i].Rank < deepest[j].Rank
	})
	fmt.Fprintf(b, "\n  showing the %d deepest-inbox ranks (%d more aggregated below):",
		dumpRankCap, len(e.Blocked)-dumpRankCap)
	for i, s := range deepest[:dumpRankCap] {
		fmt.Fprintf(b, "\n  rank %d: blocked on tag %#x, clock %.6fs, inbox depth %d",
			s.Rank, uint64(s.BlockedTag), s.Clock, s.InboxDepth)
		if i < dumpEventRanks && len(s.Recent) > 0 {
			fmt.Fprintf(b, "\n    last %d events:\n%s", len(s.Recent),
				strings.TrimRight(obs.FormatEvents(s.Recent, "      "), "\n"))
		}
	}
	// Aggregate over ALL blocked ranks: which tags the world is stuck
	// on, and how much traffic is queued behind the deadlock.
	tags := make(map[Tag]int)
	totalDepth := 0
	for _, s := range e.Blocked {
		tags[s.BlockedTag]++
		totalDepth += s.InboxDepth
	}
	type tagCount struct {
		tag Tag
		n   int
	}
	hist := make([]tagCount, 0, len(tags))
	for t, n := range tags {
		hist = append(hist, tagCount{t, n})
	}
	sort.Slice(hist, func(i, j int) bool {
		if hist[i].n != hist[j].n {
			return hist[i].n > hist[j].n
		}
		return hist[i].tag < hist[j].tag
	})
	fmt.Fprintf(b, "\n  blocked-tag histogram (%d distinct tag(s)):", len(hist))
	const tagCap = 16
	for i, tc := range hist {
		if i == tagCap {
			fmt.Fprintf(b, "\n    ... %d more tag(s)", len(hist)-tagCap)
			break
		}
		fmt.Fprintf(b, "\n    tag %#x: %d rank(s)", uint64(tc.tag), tc.n)
	}
	fmt.Fprintf(b, "\n  total queued packets across blocked ranks: %d", totalDepth)
}

// rankDeadlocked is the panic value a rank raises after recording its
// RankDeadState; Run's recover treats it as an orderly unwind.
type rankDeadlocked struct{}

// AbortIfPeerFailed unwinds the calling rank if another rank has already
// failed (panic or error return) or the run was poisoned. Nonblocking
// progress loops — which never park in a receive, so neither a peer's
// death nor the deadlock watchdog can interrupt them — must call this on
// their idle path or a failed run livelocks them forever. The unwind
// follows the orderly deadlock path, so Run reports the original failure
// rather than this secondary exit.
func (p *Proc) AbortIfPeerFailed() {
	if p.world.failed.Load() || p.world.poisoned.Load() {
		p.deadlockExit(0)
	}
}

// deadlockExit records this rank's state for the aggregated dump and
// unwinds the rank. Called from Recv when its inbox has been poisoned.
func (p *Proc) deadlockExit(tag Tag) {
	w := p.world
	var recent []obs.Event
	if p.rec != nil {
		recent = p.rec.Snapshot()
	}
	w.dead[p.rank] = &RankDeadState{
		Rank:       p.rank,
		Clock:      p.now(),
		InboxDepth: w.inboxes[p.rank].Len(),
		BlockedTag: tag,
		Recent:     recent,
	}
	panic(rankDeadlocked{})
}

// watchdog polls all inboxes until the run ends or a deadlock is found:
// every rank still running its body is parked in a blocking receive and
// no packet was pushed or popped between two consecutive observations.
// Under that condition no rank can ever wake another (wakeups require
// pushes, and every potential pusher is blocked), so the watchdog
// poisons the inboxes; each blocked rank then unwinds through
// deadlockExit and Run assembles the DeadlockError.
//
// The watchdog runs on host time by design — it supervises the
// simulation from outside, so the virtual-clock rule does not apply.
func (w *World) watchdog(interval time.Duration, stop <-chan struct{}) {
	ticker := time.NewTicker(interval) //ygmvet:ignore wallclock — host-time supervisor, not simulated-rank code
	defer ticker.Stop()
	var lastProgress uint64
	strikes := 0
	for {
		select {
		case <-stop:
			return
		case <-ticker.C:
		}
		active := w.active.Load()
		if active <= 0 {
			return
		}
		blocked := 0
		var progress uint64
		for _, ib := range w.inboxes {
			n, waiting, _ := ib.progress()
			progress += n
			if waiting {
				blocked++
			}
		}
		if int64(blocked) == active && progress == lastProgress {
			strikes++
		} else {
			strikes = 0
		}
		lastProgress = progress
		if strikes >= 2 {
			w.poisoned.Store(true)
			for _, ib := range w.inboxes {
				ib.poison()
			}
			return
		}
	}
}

// deadlockError assembles the aggregated dump after all rank goroutines
// have unwound from a poisoned run.
func (w *World) deadlockError() *DeadlockError {
	derr := &DeadlockError{}
	for i, ds := range w.dead {
		if ds != nil {
			derr.Blocked = append(derr.Blocked, *ds)
		} else {
			derr.Finished = append(derr.Finished, machine.Rank(i))
		}
	}
	sort.Slice(derr.Blocked, func(i, j int) bool { return derr.Blocked[i].Rank < derr.Blocked[j].Rank })
	return derr
}
