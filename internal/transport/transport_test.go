package transport

import (
	"fmt"
	"math"
	"sync"
	"testing"

	"ygm/internal/machine"
	"ygm/internal/netsim"
)

func testConfig(nodes, cores int) Config {
	return Config{Topo: machine.New(nodes, cores), Model: netsim.Quartz(), Seed: 42}
}

func TestRunEmptyBody(t *testing.T) {
	rep, err := Run(testConfig(2, 2), func(p *Proc) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Ranks) != 4 || rep.Makespan() != 0 {
		t.Fatalf("report = %+v", rep)
	}
	if rep.Utilization() != 1 {
		t.Fatalf("idle run utilization = %g", rep.Utilization())
	}
}

func TestRunRejectsEmptyTopology(t *testing.T) {
	if _, err := Run(Config{}, func(p *Proc) error { return nil }); err == nil {
		t.Fatal("want error for empty topology")
	}
}

func TestRunDefaultsModel(t *testing.T) {
	cfg := Config{Topo: machine.New(1, 2)}
	_, err := Run(cfg, func(p *Proc) error {
		if p.Model().WireBandwidth != netsim.Quartz().WireBandwidth {
			return fmt.Errorf("model not defaulted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsInvalidModel(t *testing.T) {
	cfg := testConfig(1, 1)
	cfg.Model.WireBandwidth = -1
	if _, err := Run(cfg, func(p *Proc) error { return nil }); err == nil {
		t.Fatal("want model validation error")
	}
}

func TestRunPropagatesErrors(t *testing.T) {
	wantErr := fmt.Errorf("rank failure")
	_, err := Run(testConfig(1, 2), func(p *Proc) error {
		if p.Rank() == 1 {
			return wantErr
		}
		return nil
	})
	if err == nil {
		t.Fatal("error should propagate")
	}
}

func TestRunRecoversPanics(t *testing.T) {
	_, err := Run(testConfig(1, 2), func(p *Proc) error {
		if p.Rank() == 0 {
			panic("boom")
		}
		return nil
	})
	if err == nil {
		t.Fatal("panic should surface as error")
	}
}

func TestPingPong(t *testing.T) {
	rep, err := Run(testConfig(2, 1), func(p *Proc) error {
		const payload = 1024
		if p.Rank() == 0 {
			p.Send(1, TagUser, make([]byte, payload))
			pkt := p.Recv(TagUser)
			if pkt.Src != 1 || pkt.Size() != payload {
				return fmt.Errorf("bad reply %v", pkt)
			}
		} else {
			pkt := p.Recv(TagUser)
			p.Send(pkt.Src, TagUser, make([]byte, payload))
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	tot := rep.Totals()
	if tot.RemoteMsgs != 2 || tot.LocalMsgs != 0 {
		t.Fatalf("totals = %+v", tot)
	}
	m := netsim.Quartz()
	// Round trip >= two transfers plus overheads.
	minTime := 2 * m.RemoteTransferTime(1024)
	if rep.Makespan() < minTime {
		t.Fatalf("makespan %g < theoretical floor %g", rep.Makespan(), minTime)
	}
}

// TestVirtualTimeCausality: a blocking receive never completes before the
// packet's virtual arrival, so receiver time >= sender send time +
// transfer.
func TestVirtualTimeCausality(t *testing.T) {
	var sendDone, recvTime float64
	_, err := Run(testConfig(2, 1), func(p *Proc) error {
		if p.Rank() == 0 {
			p.Compute(1e-3) // sender is busy first
			p.Send(1, TagUser, make([]byte, 100))
			sendDone = p.Now()
		} else {
			p.Recv(TagUser)
			recvTime = p.Now()
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if recvTime <= sendDone {
		t.Fatalf("receiver finished at %g before sender's %g plus transfer", recvTime, sendDone)
	}
}

// TestLocalVsRemoteAccounting: local sends are counted and costed as
// shared-memory transfers.
func TestLocalVsRemoteAccounting(t *testing.T) {
	rep, err := Run(testConfig(2, 2), func(p *Proc) error {
		topo := p.Topo()
		switch p.Rank() {
		case 0:
			p.Send(topo.RankOf(0, 1), TagUser, make([]byte, 64)) // local
			p.Send(topo.RankOf(1, 0), TagUser, make([]byte, 64)) // remote
		case 1, 2:
			p.Recv(TagUser)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	tot := rep.Totals()
	if tot.LocalMsgs != 1 || tot.RemoteMsgs != 1 {
		t.Fatalf("totals = %+v", tot)
	}
	if tot.LocalBytes != 64 || tot.RemoteBytes != 64 {
		t.Fatalf("totals = %+v", tot)
	}
	if tot.AvgRemoteMsgBytes() != 64 {
		t.Fatalf("avg remote = %g", tot.AvgRemoteMsgBytes())
	}
}

// TestPollRespectsVirtualArrival: a poll before the virtual arrival sees
// nothing; after advancing the clock past it, the packet appears.
func TestPollRespectsVirtualArrival(t *testing.T) {
	_, err := Run(testConfig(2, 1), func(p *Proc) error {
		if p.Rank() == 0 {
			p.Send(1, TagUser, make([]byte, 1<<20)) // ~0.1ms transfer
			p.Send(1, TagData, nil)                 // physical-arrival signal
			return nil
		}
		// Wait until the big packet is physically present.
		p.Recv(TagData)
		// Clock is near zero (data packet has tiny transfer); the 1 MiB
		// payload arrives later in virtual time.
		if pkt := p.Poll(TagUser); pkt != nil {
			return fmt.Errorf("poll returned a packet still in virtual flight (now=%g arrive=%g)", p.Now(), pkt.Arrive)
		}
		p.Compute(1) // fast-forward a full second
		if pkt := p.Poll(TagUser); pkt == nil {
			return fmt.Errorf("poll missed an arrived packet")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestDrainJumpsClock: Drain consumes in-flight packets, charging wait.
func TestDrainJumpsClock(t *testing.T) {
	_, err := Run(testConfig(2, 1), func(p *Proc) error {
		if p.Rank() == 0 {
			p.Send(1, TagUser, make([]byte, 1<<20))
			p.Send(1, TagData, nil)
			return nil
		}
		p.Recv(TagData)
		before := p.Now()
		pkt := p.Drain(TagUser)
		if pkt == nil {
			return fmt.Errorf("drain missed queued packet")
		}
		if p.Now() < pkt.Arrive || p.Now() <= before {
			return fmt.Errorf("drain did not wait to arrival: now=%g arrive=%g", p.Now(), pkt.Arrive)
		}
		if p.Drain(TagUser) != nil {
			return fmt.Errorf("drain of empty queue should be nil")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestArrivalOrdering: the receiver pops packets in virtual-arrival
// order even when pushed out of order.
func TestArrivalOrdering(t *testing.T) {
	_, err := Run(testConfig(2, 1), func(p *Proc) error {
		if p.Rank() == 0 {
			// Big then small: the small one overtakes in virtual time
			// because it is sent later but arrives earlier? No — same
			// sender, so arrivals are ordered. Instead: send a huge one
			// then advance and send a tiny one timed to arrive first is
			// impossible from one sender. Use payload sizes so arrival
			// gap is large and verify FIFO per sender.
			p.Send(1, TagUser, []byte{1})
			p.Send(1, TagUser, []byte{2})
			p.Send(1, TagUser, []byte{3})
			p.Send(1, TagData, nil)
			return nil
		}
		p.Recv(TagData)
		var got []byte
		for i := 0; i < 3; i++ {
			pkt := p.Drain(TagUser)
			if pkt == nil {
				return fmt.Errorf("missing packet %d", i)
			}
			got = append(got, pkt.Payload[0])
		}
		for i, b := range got {
			if int(b) != i+1 {
				return fmt.Errorf("out of order: %v", got)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestManyToOne: concurrent senders into one inbox are all delivered.
func TestManyToOne(t *testing.T) {
	const senders = 15
	rep, err := Run(testConfig(4, 4), func(p *Proc) error {
		if p.Rank() == 0 {
			for i := 0; i < senders; i++ {
				p.Recv(TagUser)
			}
			return nil
		}
		p.Send(0, TagUser, []byte{byte(p.Rank())})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.Ranks[0].Stats.RecvMsgs; got != senders {
		t.Fatalf("rank 0 received %d, want %d", got, senders)
	}
}

func TestStragglerComputeScale(t *testing.T) {
	cfg := testConfig(1, 2)
	cfg.ComputeScale = func(r machine.Rank) float64 {
		if r == 1 {
			return 10
		}
		return 1
	}
	rep, err := Run(cfg, func(p *Proc) error {
		p.Compute(1e-3)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if r0, r1 := rep.Ranks[0].Time, rep.Ranks[1].Time; math.Abs(r1-10*r0) > 1e-12 {
		t.Fatalf("straggler scaling: %g vs %g", r0, r1)
	}
}

func TestPartnerTracking(t *testing.T) {
	cfg := testConfig(2, 2)
	cfg.TrackPartners = true
	rep, err := Run(cfg, func(p *Proc) error {
		if p.Rank() == 0 {
			p.Send(1, TagUser, nil)
			p.Send(1, TagUser, nil)
			p.Send(3, TagUser, nil)
		}
		if p.Rank() == 1 {
			p.Recv(TagUser)
			p.Recv(TagUser)
		}
		if p.Rank() == 3 {
			p.Recv(TagUser)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	partners := rep.Ranks[0].Stats.Partners()
	if partners[1] != 2 || partners[3] != 1 || len(partners) != 2 {
		t.Fatalf("partners = %v", partners)
	}
}

func TestRngDeterminism(t *testing.T) {
	vals := make([]int64, 4)
	run := func() []int64 {
		out := make([]int64, 4)
		var mu sync.Mutex
		_, err := Run(testConfig(2, 2), func(p *Proc) error {
			v := p.Rng().Int63()
			mu.Lock()
			out[p.Rank()] = v
			mu.Unlock()
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	vals = run()
	again := run()
	for i := range vals {
		if vals[i] != again[i] {
			t.Fatalf("rank %d rng differs across runs", i)
		}
	}
	if vals[0] == vals[1] {
		t.Fatal("different ranks should have different streams")
	}
}

func TestSendToInvalidRankPanics(t *testing.T) {
	_, err := Run(testConfig(1, 1), func(p *Proc) error {
		p.Send(machine.Rank(99), TagUser, nil)
		return nil
	})
	if err == nil {
		t.Fatal("invalid destination should panic -> error")
	}
}

func TestNegativeComputePanics(t *testing.T) {
	_, err := Run(testConfig(1, 1), func(p *Proc) error {
		p.Compute(-1)
		return nil
	})
	if err == nil {
		t.Fatal("negative compute should panic -> error")
	}
}

func TestInboxDepthTracking(t *testing.T) {
	rep, err := Run(testConfig(1, 2), func(p *Proc) error {
		if p.Rank() == 0 {
			for i := 0; i < 10; i++ {
				p.Send(1, TagUser, nil)
			}
			p.Send(1, TagData, nil)
			return nil
		}
		p.Recv(TagData)
		if p.Pending(TagUser) != 10 {
			return fmt.Errorf("pending = %d", p.Pending(TagUser))
		}
		for i := 0; i < 10; i++ {
			p.Drain(TagUser)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.MaxInboxDepth() < 10 {
		t.Fatalf("max inbox depth = %d, want >= 10", rep.MaxInboxDepth())
	}
}

// TestReportUtilizationBounds: utilization is in (0, 1] and wait+busy
// accounts for each rank's elapsed time.
func TestReportUtilizationBounds(t *testing.T) {
	rep, err := Run(testConfig(2, 2), func(p *Proc) error {
		if p.Rank() == 0 {
			p.Compute(1e-3)
			for i := 1; i < p.WorldSize(); i++ {
				p.Send(machine.Rank(i), TagUser, make([]byte, 1024))
			}
			return nil
		}
		p.Recv(TagUser)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	u := rep.Utilization()
	if u <= 0 || u > 1 {
		t.Fatalf("utilization = %g", u)
	}
	for _, rr := range rep.Ranks {
		if math.Abs(rr.Busy+rr.Wait-rr.Time) > 1e-12 {
			t.Fatalf("rank %d: busy %g + wait %g != time %g", rr.Rank, rr.Busy, rr.Wait, rr.Time)
		}
	}
}
