// Regression coverage for Report's wall-clock time base (Report.Wall,
// Makespan, Utilization) on the real-time LocalWire backend.
package transport_test

import (
	"math"
	"testing"
	"time"

	"ygm/internal/machine"
	"ygm/internal/transport"
)

// TestLocalWireWallReport pins the satellite-6 contract: under a
// real-time wire the report advertises Wall, Makespan measures actual
// host seconds, per-rank Time decomposes into Busy + Wait, and
// Utilization stays a well-defined ratio in (0, 1].
func TestLocalWireWallReport(t *testing.T) {
	const spin = 20 * time.Millisecond
	rep, err := transport.Run(
		transport.NewConfig(machine.New(2, 2), transport.WithWire(transport.LocalWire{})),
		func(p *transport.Proc) error {
			// Real work (busy) on every rank, then a real blocking receive
			// (wait) on rank 0 so both components of the decomposition are
			// nonzero somewhere.
			deadline := time.Now().Add(spin)
			for time.Now().Before(deadline) {
			}
			if p.Rank() == 1 {
				buf := p.AcquireBuf(1)
				buf[0] = 42
				p.SendPooled(0, transport.TagUser, buf)
			}
			if p.Rank() == 0 {
				time.Sleep(5 * time.Millisecond) // let the sender win the race, so Recv parks
				pkt := p.Recv(transport.TagUser)
				p.Recycle(pkt)
			}
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Wall {
		t.Fatalf("LocalWire report must advertise Wall time base")
	}
	if ms := rep.Makespan(); ms < spin.Seconds() {
		t.Errorf("Makespan %.4fs is less than the %.0fms every rank provably spun", ms, float64(spin.Milliseconds()))
	}
	// Wall makespans are bounded only by host scheduling, but a run this
	// small finishing in over a minute means the time base is broken
	// (e.g. stamped against a zero epoch).
	if ms := rep.Makespan(); ms > 60 {
		t.Errorf("Makespan %.4fs is implausible for a 20ms workload; wrong epoch?", ms)
	}
	if u := rep.Utilization(); u <= 0 || u > 1 {
		t.Errorf("Utilization %.4f outside (0, 1]", u)
	}
	for _, rr := range rep.Ranks {
		if rr.Time < 0 || rr.Busy < 0 || rr.Wait < 0 {
			t.Errorf("rank %d: negative duration in %+v", rr.Rank, rr)
		}
		if math.Abs(rr.Time-(rr.Busy+rr.Wait)) > 1e-6 {
			t.Errorf("rank %d: Time %.6f != Busy %.6f + Wait %.6f", rr.Rank, rr.Time, rr.Busy, rr.Wait)
		}
	}
}

// TestSimWireReportNotWall pins the other side: the default simulated
// backend reports virtual seconds and says so.
func TestSimWireReportNotWall(t *testing.T) {
	rep, err := transport.Run(
		transport.NewConfig(machine.New(1, 2)),
		func(p *transport.Proc) error {
			p.Compute(0.5)
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Wall {
		t.Fatalf("SimWire report must not advertise Wall")
	}
	if ms := rep.Makespan(); ms < 0.5 {
		t.Errorf("Makespan %.4f virtual seconds, expected >= 0.5 (the charged compute)", ms)
	}
}
