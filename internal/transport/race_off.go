//go:build !race

package transport

// raceEnabled reports whether the race detector is compiled in; see
// race_on.go.
const raceEnabled = false
