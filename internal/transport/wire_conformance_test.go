// Backend-conformance suite: one table of semantic scenarios executed
// against every Wire backend. The properties under test are the wire
// contract the upper layers rely on — exactly-once delivery, per-channel
// FIFO, barrier soundness, peer-death unwinding, pooled-buffer recycle
// balance — plus the acceptance bar that one seeded command script (the
// simtest shape: seeded unicasts, broadcasts, TTL handler spawns,
// quiescence barriers) yields an identical delivery multiset on every
// backend, certified by an order-independent digest gathered to rank 0
// over the wire itself.
//
// sim and local cells run in-process. tcp cells re-exec this test binary
// as one OS process per rank (the TestMain hook below), rendezvous over
// loopback, and report rank 0's digest on stdout; they are skipped under
// -short and when loopback listening is unavailable.
package transport_test

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"math/rand"
	"net"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"testing"
	"time"

	"ygm/internal/collective"
	"ygm/internal/machine"
	"ygm/internal/transport"
	"ygm/internal/ygm"
)

// The conformance world: 2 nodes x 2 cores, so every scenario crosses
// both the "local" (same node) and "remote" paths of each backend.
const (
	confNodes = 2
	confCores = 2
	confWorld = confNodes * confCores
	confSeed  = 0x59474d
)

func TestMain(m *testing.M) {
	if os.Getenv("YGM_WIRE_CHILD_SCENARIO") != "" {
		os.Exit(wireChildMain())
	}
	os.Exit(m.Run())
}

// mix is splitmix64: the order-independent digests fold mixed values
// with +, so any permutation of the same delivery multiset agrees.
func mix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// wireScenario is one row of the conformance table. body runs as the
// SPMD rank body and returns this rank's digest component; the harness
// gathers components to rank 0 (over the wire under test) and compares
// the combined digest across backends.
type wireScenario struct {
	name      string
	expectErr bool
	body      func(p *transport.Proc, seed int64) (uint64, error)
}

var wireScenarios = []wireScenario{
	{name: "exactly-once-fifo", body: scenarioExactlyOnceFIFO},
	{name: "barrier-soundness", body: scenarioBarrier},
	{name: "mailbox-script-recycle", body: scenarioMailboxScript},
	{name: "peer-death", expectErr: true, body: scenarioPeerDeath},
}

func findScenario(name string) (wireScenario, bool) {
	for _, sc := range wireScenarios {
		if sc.name == name {
			return sc, true
		}
	}
	return wireScenario{}, false
}

const (
	tagConf   = transport.TagUser + 9
	tagDigest = transport.TagUser + 10
)

// gatherDigest folds every rank's digest component into one value at
// rank 0, using the wire under test for the gather itself.
func gatherDigest(p *transport.Proc, local uint64) (uint64, bool) {
	if p.Rank() != 0 {
		buf := p.AcquireBuf(8)
		binary.LittleEndian.PutUint64(buf, local)
		p.SendPooled(0, tagDigest, buf)
		return 0, false
	}
	sum := local
	for i := 1; i < p.WorldSize(); i++ {
		pkt := p.Recv(tagDigest)
		sum += binary.LittleEndian.Uint64(pkt.Payload)
		p.Recycle(pkt)
	}
	return sum, true
}

// scenarioExactlyOnceFIFO sends a counted, sequenced stream from every
// rank to every other rank over the pooled path and asserts each
// channel arrives gap-free, duplicate-free, and in order — then checks
// the pooled recycle balance.
func scenarioExactlyOnceFIFO(p *transport.Proc, seed int64) (uint64, error) {
	const perPeer = 64
	me, world := p.Rank(), p.WorldSize()
	for seq := 0; seq < perPeer; seq++ {
		for d := 0; d < world; d++ {
			dst := machine.Rank(d)
			if dst == me {
				continue
			}
			buf := p.AcquireBuf(16)
			binary.LittleEndian.PutUint32(buf[0:4], uint32(me))
			binary.LittleEndian.PutUint32(buf[4:8], uint32(seq))
			binary.LittleEndian.PutUint64(buf[8:16], mix(uint64(seed)^uint64(me)<<32^uint64(d)<<16^uint64(seq)))
			p.SendPooled(dst, tagConf, buf)
		}
	}
	nextSeq := make([]uint32, world)
	var digest uint64
	for n := 0; n < perPeer*(world-1); n++ {
		pkt := p.Recv(tagConf)
		src := binary.LittleEndian.Uint32(pkt.Payload[0:4])
		seq := binary.LittleEndian.Uint32(pkt.Payload[4:8])
		val := binary.LittleEndian.Uint64(pkt.Payload[8:16])
		if machine.Rank(src) != pkt.Src {
			return 0, fmt.Errorf("rank %d: packet claims src %d, wire says %d", me, src, pkt.Src)
		}
		if seq != nextSeq[src] {
			return 0, fmt.Errorf("rank %d: channel from %d delivered seq %d, expected %d (FIFO/exactly-once violation)",
				me, src, seq, nextSeq[src])
		}
		nextSeq[src]++
		digest += mix(val)
		p.Recycle(pkt)
	}
	if s := p.Stats(); s.Recycles != s.RecvMsgs {
		return 0, fmt.Errorf("rank %d: recycle balance: %d recycles for %d received packets", me, s.Recycles, s.RecvMsgs)
	}
	return digest, nil
}

// scenarioBarrier interleaves counted per-phase point-to-point traffic
// with collective barriers: within one phase's counted receive loop,
// every popped packet must belong to that phase. A rank racing through
// a broken barrier would leak a later phase's packet into an earlier
// counted batch.
func scenarioBarrier(p *transport.Proc, seed int64) (uint64, error) {
	const phases = 6
	me, world := p.Rank(), p.WorldSize()
	c := collective.World(p)
	var digest uint64
	for ph := 0; ph < phases; ph++ {
		for d := 0; d < world; d++ {
			dst := machine.Rank(d)
			if dst == me {
				continue
			}
			buf := p.AcquireBuf(8)
			binary.LittleEndian.PutUint32(buf[0:4], uint32(ph))
			binary.LittleEndian.PutUint32(buf[4:8], uint32(me))
			p.SendPooled(dst, tagConf, buf)
		}
		for n := 0; n < world-1; n++ {
			pkt := p.Recv(tagConf)
			gotPh := binary.LittleEndian.Uint32(pkt.Payload[0:4])
			src := binary.LittleEndian.Uint32(pkt.Payload[4:8])
			if int(gotPh) != ph {
				return 0, fmt.Errorf("rank %d: phase-%d receive loop popped a phase-%d packet from %d (barrier unsound)",
					me, ph, gotPh, src)
			}
			digest += mix(uint64(seed) ^ uint64(ph)<<32 ^ uint64(src)<<8 ^ uint64(me))
			p.Recycle(pkt)
		}
		c.Barrier()
	}
	return digest, nil
}

// scenarioMailboxScript is the simtest command-script shape on the real
// mailbox: seeded unicasts, a broadcast every 16th command, TTL handler
// spawns whose keys and destinations derive only from the parent key,
// and a WaitEmpty quiescence barrier per phase. Its delivery multiset —
// and therefore the gathered digest — must be identical on every
// backend. After quiescence the pooled recycle balance must hold
// exactly: every received packet was returned to the pool.
func scenarioMailboxScript(p *transport.Proc, seed int64) (uint64, error) {
	const (
		phases   = 3
		msgs     = 96
		ttl      = 2
		bcastNth = 16
	)
	me, world := p.Rank(), p.WorldSize()
	var digest uint64
	var mb ygm.Box
	handler := func(s ygm.Sender, payload []byte) {
		key := binary.LittleEndian.Uint64(payload[0:8])
		hops := payload[8]
		digest += mix(key)
		if hops == 0 {
			return
		}
		child := mix(key)
		dst := machine.Rank(child % uint64(world))
		out := make([]byte, 9)
		binary.LittleEndian.PutUint64(out[0:8], child)
		out[8] = hops - 1
		s.Send(dst, out)
	}
	mb = ygm.New(p, handler, ygm.WithExchange(ygm.LazyExchange), ygm.WithCapacity(256))
	rng := rand.New(rand.NewSource(seed*7907 + int64(me)*104729))
	for ph := 0; ph < phases; ph++ {
		for i := 0; i < msgs; i++ {
			key := mix(uint64(seed)<<32 ^ uint64(me)<<16 ^ uint64(ph)<<8 ^ uint64(i))
			buf := make([]byte, 9)
			binary.LittleEndian.PutUint64(buf[0:8], key)
			if i%bcastNth == bcastNth-1 {
				buf[8] = 0 // broadcasts do not respawn
				mb.Broadcast(buf)
				continue
			}
			buf[8] = ttl
			mb.Send(machine.Rank(rng.Intn(world)), buf)
		}
		mb.WaitEmpty()
	}
	if s := p.Stats(); s.Recycles != s.RecvMsgs {
		return 0, fmt.Errorf("rank %d: recycle balance after quiescence: %d recycles for %d received packets",
			me, s.Recycles, s.RecvMsgs)
	}
	return digest, nil
}

// scenarioPeerDeath kills rank 1 with an application error while every
// other rank is parked in a blocking receive that can never be
// satisfied. The conformance property is unwinding: on every backend
// the run must abort — not hang — via the failed/poisoned machinery
// (watchdog in-process, connection-fault surfacing over TCP).
func scenarioPeerDeath(p *transport.Proc, seed int64) (uint64, error) {
	if p.Rank() == 1 {
		return 0, fmt.Errorf("rank 1: injected failure")
	}
	pkt := p.Recv(tagConf) // no one ever sends this
	return 0, fmt.Errorf("rank %d: impossible receive returned src %d", p.Rank(), pkt.Src)
}

// runScenarioInProcess executes one scenario on an in-process wire and
// returns rank 0's combined digest.
func runScenarioInProcess(t *testing.T, sc wireScenario, wire transport.Wire) uint64 {
	t.Helper()
	var digest uint64
	cfg := transport.NewConfig(machine.New(confNodes, confCores),
		transport.WithSeed(confSeed),
		transport.WithWire(wire),
		transport.WithWatchdogInterval(50*time.Millisecond),
	)
	_, err := transport.Run(cfg, func(p *transport.Proc) error {
		d, err := sc.body(p, confSeed)
		if err != nil {
			return err
		}
		if sum, root := gatherDigest(p, d); root {
			digest = sum
		}
		return nil
	})
	if sc.expectErr {
		if err == nil {
			t.Fatalf("%s: expected the run to abort, got success", sc.name)
		}
		return 0
	}
	if err != nil {
		t.Fatalf("%s: %v", sc.name, err)
	}
	return digest
}

// TestWireConformance runs the scenario table on the in-process
// backends and asserts the digests agree between them.
func TestWireConformance(t *testing.T) {
	for _, sc := range wireScenarios {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			simDigest := runScenarioInProcess(t, sc, transport.SimWire{})
			localDigest := runScenarioInProcess(t, sc, transport.LocalWire{})
			if simDigest != localDigest {
				t.Fatalf("delivery multiset diverged: sim digest %#x, local digest %#x", simDigest, localDigest)
			}
		})
	}
}

// TestWireConformanceTCP runs the same table as real OS processes over
// loopback TCP and asserts the digests agree with the sim backend.
func TestWireConformanceTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process TCP cells skipped under -short")
	}
	if !loopbackAvailable() {
		t.Skip("loopback TCP listening unavailable in this environment")
	}
	for _, sc := range wireScenarios {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			digest, errs := runScenarioTCP(t, sc)
			if sc.expectErr {
				for r, err := range errs {
					if err == nil {
						t.Fatalf("rank %d process: expected the run to abort, got success", r)
					}
				}
				return
			}
			for r, err := range errs {
				if err != nil {
					t.Fatalf("rank %d process: %v", r, err)
				}
			}
			simDigest := runScenarioInProcess(t, sc, transport.SimWire{})
			if digest != simDigest {
				t.Fatalf("delivery multiset diverged: sim digest %#x, tcp digest %#x", simDigest, digest)
			}
		})
	}
}

func loopbackAvailable() bool {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return false
	}
	ln.Close()
	return true
}

// freeLoopbackAddr reserves an ephemeral port and releases it for the
// children's rendezvous. The tiny reuse race is tolerable in tests: the
// root retries binding and the clients retry dialing until the
// handshake deadline.
func freeLoopbackAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// runScenarioTCP re-execs this test binary as confWorld rank processes,
// waits for all of them (with a hang guard), and returns rank 0's
// digest plus each process's outcome.
func runScenarioTCP(t *testing.T, sc wireScenario) (uint64, []error) {
	t.Helper()
	addr := freeLoopbackAddr(t)
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	cmds := make([]*exec.Cmd, confWorld)
	outs := make([]*bytes.Buffer, confWorld)
	for r := 0; r < confWorld; r++ {
		cmd := exec.Command(exe, "-test.run=^$")
		cmd.Env = append(os.Environ(),
			"YGM_WIRE_CHILD_SCENARIO="+sc.name,
			"YGM_WIRE_CHILD_RANK="+strconv.Itoa(r),
			"YGM_WIRE_CHILD_RDV="+addr,
			"YGM_WIRE_CHILD_SEED="+strconv.Itoa(confSeed),
		)
		buf := &bytes.Buffer{}
		cmd.Stdout = buf
		cmd.Stderr = buf
		if err := cmd.Start(); err != nil {
			t.Fatalf("starting rank %d process: %v", r, err)
		}
		cmds[r] = cmd
		outs[r] = buf
	}
	guard := time.AfterFunc(90*time.Second, func() {
		for _, cmd := range cmds {
			if cmd.Process != nil {
				cmd.Process.Kill()
			}
		}
	})
	defer guard.Stop()
	errs := make([]error, confWorld)
	for r, cmd := range cmds {
		errs[r] = cmd.Wait()
		if errs[r] != nil && !sc.expectErr {
			t.Logf("rank %d process output:\n%s", r, outs[r].String())
		}
	}
	var digest uint64
	scan := bufio.NewScanner(outs[0])
	for scan.Scan() {
		if rest, ok := strings.CutPrefix(scan.Text(), "DIGEST "); ok {
			digest, err = strconv.ParseUint(rest, 10, 64)
			if err != nil {
				t.Fatalf("bad digest line from rank 0: %v", err)
			}
		}
	}
	return digest, errs
}

// wireChildMain is one rank process of a TCP conformance cell, entered
// through TestMain when the child environment is present.
func wireChildMain() int {
	name := os.Getenv("YGM_WIRE_CHILD_SCENARIO")
	sc, ok := findScenario(name)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown scenario %q\n", name)
		return 2
	}
	rank, err := strconv.Atoi(os.Getenv("YGM_WIRE_CHILD_RANK"))
	if err != nil {
		fmt.Fprintln(os.Stderr, "bad rank:", err)
		return 2
	}
	seed, err := strconv.ParseInt(os.Getenv("YGM_WIRE_CHILD_SEED"), 10, 64)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bad seed:", err)
		return 2
	}
	wire := transport.NewTCPWire(transport.TCPOptions{
		Rank:       rank,
		Rendezvous: os.Getenv("YGM_WIRE_CHILD_RDV"),
		Timeout:    20 * time.Second,
	})
	var digest uint64
	var isRoot bool
	cfg := transport.NewConfig(machine.New(confNodes, confCores),
		transport.WithSeed(seed),
		transport.WithWire(wire),
	)
	_, err = transport.Run(cfg, func(p *transport.Proc) error {
		d, err := sc.body(p, seed)
		if err != nil {
			return err
		}
		if sum, root := gatherDigest(p, d); root {
			digest = sum
			isRoot = true
		}
		return nil
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "rank %d: %v\n", rank, err)
		return 1
	}
	if isRoot {
		fmt.Printf("DIGEST %d\n", digest)
	}
	return 0
}
