//go:build ygmcheck

package transport

import "fmt"

// ygmcheckEnabled reports whether the runtime invariant layer is compiled
// in (`go test -tags ygmcheck ./...`). The no-op twin lives in
// check_noop.go.
const ygmcheckEnabled = true

// checkf panics with a descriptive ygmcheck message when cond is false.
func checkf(cond bool, format string, args ...any) {
	if !cond {
		panic("ygmcheck: " + fmt.Sprintf(format, args...))
	}
}

// verify asserts the inbox's structural invariants for one tag: the
// per-tag queue is a valid min-heap on (Arrive, seq) — so pops always
// yield the earliest virtual arrival among physically present packets —
// and the cached depth equals the sum of all queue lengths. Callers hold
// ib.mu.
func (ib *Inbox) verify(tag Tag) {
	if q, ok := ib.queues[tag]; ok {
		h := *q
		for i := 1; i < len(h); i++ {
			parent := (i - 1) / 2
			checkf(!h.Less(i, parent),
				"inbox heap order violated for tag %d: index %d (arrive %g) sorts before its parent (arrive %g)",
				tag, i, h[i].Arrive, h[parent].Arrive)
		}
	}
	total := 0
	for _, q := range ib.queues {
		total += q.Len()
	}
	checkf(total == ib.depth,
		"inbox depth accounting out of balance: cached %d, actual %d", ib.depth, total)
}

// checkClockMonotone asserts that the rank's virtual clock never ran
// backwards since the last observation.
func (p *Proc) checkClockMonotone() {
	now := p.clock.Now()
	checkf(now >= p.checkLastNow,
		"rank %d virtual clock ran backwards: %g after %g", p.rank, now, p.checkLastNow)
	p.checkLastNow = now
}
