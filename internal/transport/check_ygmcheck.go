//go:build ygmcheck

package transport

import (
	"fmt"
	"sort"

	"ygm/internal/machine"
)

// ygmcheckEnabled reports whether the runtime invariant layer is compiled
// in (`go test -tags ygmcheck ./...`). The no-op twin lives in
// check_noop.go.
const ygmcheckEnabled = true

// checkf panics with a descriptive ygmcheck message when cond is false.
func checkf(cond bool, format string, args ...any) {
	if !cond {
		panic("ygmcheck: " + fmt.Sprintf(format, args...))
	}
}

// verify asserts the inbox's consumer-side structural invariants for one
// tag: the per-tag heap is a valid min-heap on (Arrive, Src, seq) — so
// pops always yield the earliest virtual arrival among absorbed packets
// — and the cached depth equals the sum of all heap lengths. Only the
// owning rank calls it (the heaps are consumer-private).
func (ib *Inbox) verify(tag Tag) {
	if q, ok := ib.queues[tag]; ok {
		h := *q
		for i := 1; i < len(h); i++ {
			parent := (i - 1) / 2
			checkf(!h.less(i, parent),
				"inbox heap order violated for tag %d: index %d (arrive %g) sorts before its parent (arrive %g)",
				tag, i, h[i].Arrive, h[parent].Arrive)
		}
	}
	total := 0
	for _, q := range ib.queues {
		total += len(*q)
	}
	checkf(total == ib.depth,
		"inbox depth accounting out of balance: cached %d, actual %d", ib.depth, total)
}

// checkRingBounds asserts one channel's ring counter invariants with
// the head/tail values the caller just observed: the head never
// overtakes the tail and the occupancy never exceeds the capacity.
func (ib *Inbox) checkRingBounds(r *inboxRing, head, tail uint64) {
	checkf(head <= tail,
		"inbox ring head %d overtook tail %d", head, tail)
	checkf(tail-head <= ringCap,
		"inbox ring occupancy %d exceeds capacity %d (head %d, tail %d)",
		tail-head, ringCap, head, tail)
}

// ringCheckFor resolves (lazily creating) one channel's audit state.
// The side map keeps audit-only fields out of the hot ring structs that
// default builds zero world² times per run.
func (ib *Inbox) ringCheckFor(r *inboxRing) *ringCheck {
	if ib.checkRings == nil {
		ib.checkRings = make(map[*inboxRing]*ringCheck)
	}
	c, ok := ib.checkRings[r]
	if !ok {
		c = &ringCheck{}
		ib.checkRings[r] = c
	}
	return c
}

// checkAbsorbed records one packet drained from a channel (ring slot or
// overflow list) for the end-of-pass sequence audit.
func (ib *Inbox) checkAbsorbed(r *inboxRing, p *Packet) {
	c := ib.ringCheckFor(r)
	c.batch = append(c.batch, seqArrive{seq: p.seq, arrive: p.Arrive})
}

// checkRingFlush audits one drain pass of a channel: the absorbed
// sequence numbers must form a gap-free continuation of the channel
// sequence (no packet lost, duplicated, or absorbed ahead of an earlier
// one left behind — the prefix-closure drainChannel's ring/overflow
// re-read loop exists to guarantee). With Inbox.checkMonotone set it
// additionally asserts the channel's arrival clocks never decrease in
// sequence order; that extra property only holds for fixed-size traffic
// or under the non-overtaking clamp, so fixtures opt in.
func (ib *Inbox) checkRingFlush(r *inboxRing) {
	c, ok := ib.checkRings[r]
	if !ok || len(c.batch) == 0 {
		return
	}
	batch := c.batch
	sort.Slice(batch, func(i, j int) bool { return batch[i].seq < batch[j].seq })
	for i, sa := range batch {
		want := c.seq + uint64(i)
		checkf(sa.seq == want,
			"inbox channel sequence gap: absorbed seq %d where %d was expected (pass of %d packets from seq %d)",
			sa.seq, want, len(batch), c.seq)
		if ib.checkMonotone {
			checkf(sa.arrive >= c.arrive,
				"inbox channel arrival clock ran backwards: seq %d arrives at %g after %g",
				sa.seq, sa.arrive, c.arrive)
			c.arrive = sa.arrive
		}
	}
	c.seq += uint64(len(batch))
	c.batch = batch[:0]
}

// checkClockMonotone asserts that the rank's virtual clock never ran
// backwards since the last observation.
func (p *Proc) checkClockMonotone() {
	now := p.clock.Now()
	checkf(now >= p.checkLastNow,
		"rank %d virtual clock ran backwards: %g after %g", p.rank, now, p.checkLastNow)
	p.checkLastNow = now
}

// checkSchedEnqueue asserts a rank is never placed on a run queue it is
// already on (a double-enqueue would eventually double-grant its gate
// and deadlock the dispatcher). Called under the scheduler mutex.
func (s *scheduler) checkSchedEnqueue(r machine.Rank) {
	if s.inQueue == nil {
		s.inQueue = make([]bool, len(s.state))
	}
	checkf(!s.inQueue[r], "scheduler: rank %d enqueued while already queued", r)
	checkf(s.state[r] != rsExited, "scheduler: exited rank %d enqueued", r)
	s.inQueue[r] = true
}

// checkSchedDequeue asserts a dispatched rank actually had a queue
// entry and was in the queued state — the pop side of the
// double-enqueue audit.
func (s *scheduler) checkSchedDequeue(r machine.Rank) {
	checkf(s.inQueue != nil && s.inQueue[r],
		"scheduler: rank %d dispatched without a live queue entry", r)
	checkf(s.state[r] == rsQueued,
		"scheduler: dispatched rank %d in state %d, want queued", r, s.state[r])
	s.inQueue[r] = false
}

// checkSchedTokens asserts worker-token conservation after a scheduler
// transition: tokens are never minted or lost, and the queue length
// accounting matches its counter. Called under the scheduler mutex.
func (s *scheduler) checkSchedTokens() {
	checkf(s.avail >= 0 && s.busy >= 0,
		"scheduler: negative token count (avail %d, busy %d)", s.avail, s.busy)
	checkf(s.avail+s.busy == s.workers,
		"scheduler: token conservation violated: %d avail + %d busy != %d workers",
		s.avail, s.busy, s.workers)
	n := 0
	for i := range s.shards {
		n += len(s.shards[i].buf) - s.shards[i].head
	}
	checkf(n == s.queued,
		"scheduler: run-queue accounting out of balance: cached %d, actual %d", s.queued, n)
	checkf(!(s.queued > 0 && s.avail > 0),
		"scheduler: %d rank(s) stranded on the run queue with %d free worker token(s)",
		s.queued, s.avail)
}

// checkSchedDoubleReady flags a ready() for a rank that is already
// queued — two wakes for one park episode, which the pstate CAS
// protocol is supposed to make impossible.
func (s *scheduler) checkSchedDoubleReady(r machine.Rank) {
	checkf(false, "scheduler: double ready for queued rank %d", r)
}
