// Package transport is the point-to-point message substrate YGM runs on —
// the role MPI plays for the original C++ implementation. Each rank of the
// simulated cluster executes as a goroutine running the same SPMD body.
// Ranks exchange packets through per-rank inboxes and carry virtual clocks
// (see internal/netsim) so that experiments report simulated communication
// time for the modeled machine rather than wall time on the host.
//
// Packets carry a virtual arrival time computed from the netsim cost
// model. A receiver that polls sees only packets whose arrival time has
// passed its own clock; a receiver that blocks fast-forwards its clock to
// the packet's arrival, accumulating wait (idle) time. This is
// direct-execution simulation: cross-rank processing order is driven by
// virtual arrival among physically present packets, an approximation that
// preserves aggregate time and utilization shape.
package transport

import "ygm/internal/machine"

// Tag separates logical message streams sharing one inbox (mailbox data
// vs. collective rounds vs. termination detection).
type Tag uint64

const (
	// TagData is the stream used by YGM mailbox traffic.
	TagData Tag = 1
	// TagUser is the first tag value free for application use. Tags at
	// or above TagCollective are reserved for internal/collective.
	TagUser Tag = 16
	// TagCollective marks the start of the collective-operation tag
	// space; see internal/collective for how tags are derived.
	TagCollective Tag = 1 << 32
)

// Packet is one transport-level message. Payload ownership transfers to
// the receiver: senders must not retain or mutate it after Send.
type Packet struct {
	Src     machine.Rank
	Tag     Tag
	Arrive  float64 // virtual arrival time at the destination, seconds
	Payload []byte

	// seq is the packet's position in its src→dst channel's push order,
	// assigned by Inbox.Push. It breaks arrival-time ties (together with
	// Src) deterministically and lets the ygmcheck layer audit that ring
	// drains absorb every channel gap-free.
	seq uint64

	// pooled marks a payload obtained from Proc.AcquireBuf and sent via
	// Proc.SendPooled; Recycle returns such payloads to the world pool.
	pooled bool
}

// Size returns the payload size in bytes.
func (p *Packet) Size() int { return len(p.Payload) }
