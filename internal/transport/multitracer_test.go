package transport

import (
	"testing"

	"ygm/internal/machine"
)

// countTracer is a plain Tracer (no SpanObserver).
type countTracer struct {
	sent, recv int
}

func (c *countTracer) PacketSent(src, dst machine.Rank, tag Tag, size int, sent, arrive float64) {
	c.sent++
}

func (c *countTracer) PacketReceived(src, dst machine.Rank, tag Tag, size int, now float64) {
	c.recv++
}

// spanTracer additionally implements SpanObserver.
type spanTracer struct {
	countTracer
	begins, ends, marks int
}

func (s *spanTracer) SpanBegin(rank machine.Rank, name string, t float64) { s.begins++ }
func (s *spanTracer) SpanEnd(rank machine.Rank, name string, t float64)   { s.ends++ }
func (s *spanTracer) Mark(rank machine.Rank, name string, value uint64, t float64) {
	s.marks++
}

func TestMultiTracerNilFastPath(t *testing.T) {
	if got := NewMultiTracer(); got != nil {
		t.Fatalf("empty composition wants nil, got %T", got)
	}
	if got := NewMultiTracer(nil, nil); got != nil {
		t.Fatalf("all-nil composition wants nil, got %T", got)
	}
}

func TestMultiTracerSingleUnwrapped(t *testing.T) {
	c := &countTracer{}
	if got := NewMultiTracer(nil, c, nil); got != Tracer(c) {
		t.Fatalf("single live tracer wants identity, got %T", got)
	}
	s := &spanTracer{}
	got := NewMultiTracer(s)
	if got != Tracer(s) {
		t.Fatalf("single span tracer wants identity, got %T", got)
	}
	if _, ok := got.(SpanObserver); !ok {
		t.Fatalf("unwrapped span tracer lost its SpanObserver implementation")
	}
}

func TestMultiTracerFansOutPackets(t *testing.T) {
	a, b := &countTracer{}, &countTracer{}
	m := NewMultiTracer(a, nil, b)
	m.PacketSent(0, 1, 0, 64, 0, 1e-6)
	m.PacketSent(1, 0, 0, 64, 0, 1e-6)
	m.PacketReceived(0, 1, 0, 64, 1e-6)
	if a.sent != 2 || b.sent != 2 || a.recv != 1 || b.recv != 1 {
		t.Fatalf("fan-out miscounted: a=%+v b=%+v", a, b)
	}
}

// TestMultiTracerNoSpanChildren pins the fast-path contract with
// transport.Run: a composite of plain Tracers must NOT satisfy
// SpanObserver, so Run's one-time type assertion keeps span dispatch
// disabled.
func TestMultiTracerNoSpanChildren(t *testing.T) {
	m := NewMultiTracer(&countTracer{}, &countTracer{})
	if _, ok := m.(SpanObserver); ok {
		t.Fatalf("span-free composite %T must not implement SpanObserver", m)
	}
}

func TestMultiTracerForwardsSpans(t *testing.T) {
	plain := &countTracer{}
	s1, s2 := &spanTracer{}, &spanTracer{}
	m := NewMultiTracer(plain, s1, s2)
	so, ok := m.(SpanObserver)
	if !ok {
		t.Fatalf("composite with span children %T must implement SpanObserver", m)
	}
	so.SpanBegin(0, "drain", 1)
	so.SpanEnd(0, "drain", 2)
	so.Mark(1, "gen", 3, 2.5)
	so.Mark(1, "gen", 4, 2.5)
	for i, s := range []*spanTracer{s1, s2} {
		if s.begins != 1 || s.ends != 1 || s.marks != 2 {
			t.Fatalf("span child %d missed events: %+v", i, s)
		}
	}
	// Packet events still reach every child, span-capable or not.
	m.PacketSent(0, 1, 0, 8, 0, 1)
	if plain.sent != 1 || s1.sent != 1 || s2.sent != 1 {
		t.Fatalf("packet fan-out broken alongside spans: %d %d %d", plain.sent, s1.sent, s2.sent)
	}
}
