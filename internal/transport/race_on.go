//go:build race

package transport

// raceEnabled reports whether the race detector is compiled in.
// Large-world tests scale their rank counts down under it: the detector
// multiplies per-goroutine memory and slows synchronization by an order
// of magnitude, so a 16k-rank smoke that is cheap in a default build
// would dominate a -race run.
const raceEnabled = true
