package transport

import "ygm/internal/machine"

// Stats accumulates one rank's traffic counters. Only the owning rank
// mutates its Stats; aggregation happens after Run returns.
type Stats struct {
	// LocalMsgs / LocalBytes count packets whose endpoints share a node.
	LocalMsgs  uint64
	LocalBytes uint64
	// RemoteMsgs / RemoteBytes count packets that cross the wire.
	RemoteMsgs  uint64
	RemoteBytes uint64
	// Data* counters cover only TagData packets — the mailbox payload
	// traffic the paper's bandwidth analysis is about — excluding
	// collective and termination-detection control messages.
	DataLocalMsgs   uint64
	DataLocalBytes  uint64
	DataRemoteMsgs  uint64
	DataRemoteBytes uint64
	// RecvMsgs counts packets this rank received (any locality).
	RecvMsgs uint64
	// Recycles counts packets this rank returned to the world pool.
	// Under the pooled ownership protocol every received packet must be
	// recycled exactly once, so at the end of a well-behaved run
	// Recycles == RecvMsgs; a shortfall is a packet leak.
	Recycles uint64

	// partners, when enabled, counts packets sent per destination rank —
	// used to verify the channel constraints of each routing scheme.
	partners map[machine.Rank]uint64
}

// isDataTag reports whether a packet carries mailbox payload traffic:
// the lazy mailbox's TagData stream, or a non-empty round-matched
// exchange message (empty round messages are protocol control — the
// "empty buffers" of Section IV-B — and excluded from payload-traffic
// statistics, though their overheads still cost simulated time).
func isDataTag(tag Tag, bytes int) bool {
	return tag == TagData || (tag >= TagRound && bytes > 0)
}

// TagRound mirrors ygm's round-exchange tag base (declared here to keep
// the transport free of an upward dependency).
const TagRound Tag = 1 << 63

// recordSend updates counters for one outgoing packet.
func (s *Stats) recordSend(dst machine.Rank, tag Tag, bytes int, local bool, trackPartners bool) {
	if local {
		s.LocalMsgs++
		s.LocalBytes += uint64(bytes)
		if isDataTag(tag, bytes) {
			s.DataLocalMsgs++
			s.DataLocalBytes += uint64(bytes)
		}
	} else {
		s.RemoteMsgs++
		s.RemoteBytes += uint64(bytes)
		if isDataTag(tag, bytes) {
			s.DataRemoteMsgs++
			s.DataRemoteBytes += uint64(bytes)
		}
	}
	if trackPartners {
		if s.partners == nil {
			s.partners = make(map[machine.Rank]uint64)
		}
		s.partners[dst]++
	}
}

// Partners returns the per-destination packet counts, or nil when partner
// tracking was disabled in the Config.
func (s *Stats) Partners() map[machine.Rank]uint64 { return s.partners }

// Totals aggregates traffic counters across ranks.
type Totals struct {
	LocalMsgs       uint64
	LocalBytes      uint64
	RemoteMsgs      uint64
	RemoteBytes     uint64
	DataLocalMsgs   uint64
	DataLocalBytes  uint64
	DataRemoteMsgs  uint64
	DataRemoteBytes uint64
}

// AvgRemoteMsgBytes returns the mean remote packet size over all traffic.
func (t Totals) AvgRemoteMsgBytes() float64 {
	if t.RemoteMsgs == 0 {
		return 0
	}
	return float64(t.RemoteBytes) / float64(t.RemoteMsgs)
}

// AvgDataRemoteMsgBytes returns the mean remote mailbox-packet size, the
// quantity the bandwidth-maximization analysis of Section III-E reasons
// about.
func (t Totals) AvgDataRemoteMsgBytes() float64 {
	if t.DataRemoteMsgs == 0 {
		return 0
	}
	return float64(t.DataRemoteBytes) / float64(t.DataRemoteMsgs)
}
