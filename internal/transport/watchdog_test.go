package transport

import (
	"errors"
	"strings"
	"testing"
	"time"

	"ygm/internal/machine"
)

// guard runs f and fails the test if it has not returned within the
// deadline — a watchdog for the watchdog, so a detection bug yields a
// clean failure rather than a test-binary timeout.
func guard(t *testing.T, deadline time.Duration, f func() error) error {
	t.Helper()
	done := make(chan error, 1)
	go func() { done <- f() }()
	select {
	case err := <-done:
		return err
	case <-time.After(deadline):
		t.Fatal("deadlocked run was not aborted by the watchdog")
		return nil
	}
}

// TestWatchdogDetectsBlockedRecv deadlocks one rank on a receive nobody
// will ever satisfy and expects a DeadlockError with a per-rank dump
// instead of a hang.
func TestWatchdogDetectsBlockedRecv(t *testing.T) {
	cfg := Config{
		Topo:             machine.New(1, 2),
		WatchdogInterval: 10 * time.Millisecond,
	}
	err := guard(t, 30*time.Second, func() error {
		_, err := Run(cfg, func(p *Proc) error {
			if p.Rank() == 0 {
				p.Compute(1e-6)
				p.Recv(TagUser) // no rank ever sends TagUser
			}
			return nil
		})
		return err
	})
	var derr *DeadlockError
	if !errors.As(err, &derr) {
		t.Fatalf("want DeadlockError, got %v", err)
	}
	if len(derr.Blocked) != 1 || derr.Blocked[0].Rank != 0 {
		t.Fatalf("want rank 0 blocked, got %+v", derr.Blocked)
	}
	if derr.Blocked[0].BlockedTag != TagUser {
		t.Errorf("blocked tag = %#x, want TagUser", uint64(derr.Blocked[0].BlockedTag))
	}
	if derr.Blocked[0].Clock <= 0 {
		t.Errorf("blocked rank's virtual clock = %g, want > 0", derr.Blocked[0].Clock)
	}
	if len(derr.Finished) != 1 || derr.Finished[0] != 1 {
		t.Fatalf("want rank 1 finished, got %+v", derr.Finished)
	}
	for _, want := range []string{"deadlock detected", "rank 0", "blocked on tag", "clock", "inbox depth", "finished"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("dump missing %q:\n%s", want, err.Error())
		}
	}
}

// TestWatchdogDetectsMutualWait deadlocks all ranks on crossed receives
// (each waits for a message the other never sends).
func TestWatchdogDetectsMutualWait(t *testing.T) {
	cfg := Config{
		Topo:             machine.New(2, 2),
		WatchdogInterval: 10 * time.Millisecond,
	}
	err := guard(t, 30*time.Second, func() error {
		_, err := Run(cfg, func(p *Proc) error {
			p.Recv(TagUser + Tag(p.Rank()))
			return nil
		})
		return err
	})
	var derr *DeadlockError
	if !errors.As(err, &derr) {
		t.Fatalf("want DeadlockError, got %v", err)
	}
	if len(derr.Blocked) != 4 || len(derr.Finished) != 0 {
		t.Fatalf("want all 4 ranks blocked, got %d blocked / %d finished", len(derr.Blocked), len(derr.Finished))
	}
}

// TestWatchdogQuietOnHealthyRun checks that ordinary traffic, including
// blocking receives that are eventually satisfied, never trips the
// watchdog even at an aggressive polling interval.
func TestWatchdogQuietOnHealthyRun(t *testing.T) {
	cfg := Config{
		Topo:             machine.New(2, 2),
		WatchdogInterval: time.Millisecond,
	}
	_, err := Run(cfg, func(p *Proc) error {
		next := machine.Rank((int(p.Rank()) + 1) % p.WorldSize())
		for i := 0; i < 50; i++ {
			p.Send(next, TagUser, []byte{byte(i)})
			p.Recv(TagUser)
			// Stretch host time so watchdog ticks land mid-run.
			time.Sleep(time.Millisecond)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("healthy run aborted: %v", err)
	}
}

// TestWatchdogPrefersRootCausePanic: when one rank dies of a real panic
// and strands its peers, the watchdog unblocks the peers but Run must
// surface the original panic, not the derived deadlock.
func TestWatchdogPrefersRootCausePanic(t *testing.T) {
	cfg := Config{
		Topo:             machine.New(1, 2),
		WatchdogInterval: 10 * time.Millisecond,
	}
	err := guard(t, 30*time.Second, func() error {
		_, err := Run(cfg, func(p *Proc) error {
			if p.Rank() == 1 {
				panic("application bug")
			}
			p.Recv(TagUser) // stranded by rank 1's death
			return nil
		})
		return err
	})
	if err == nil || !strings.Contains(err.Error(), "application bug") {
		t.Fatalf("want root-cause panic surfaced, got %v", err)
	}
}
