package transport

import (
	"fmt"
	"math/rand"
	"os"
	"runtime"

	"ygm/internal/machine"
	"ygm/internal/netsim"
	"ygm/internal/obs"
)

// traceJumps enables stderr tracing of large arrival waits (debug).
var traceJumps = false

// Proc is the per-rank handle passed to the SPMD body. It bundles the
// rank's identity, virtual clock, inbox, traffic stats, and a
// deterministic per-rank random source. A Proc is confined to the
// goroutine running its rank; it must not be shared.
type Proc struct {
	world *World
	rank  machine.Rank
	clock netsim.Clock
	stats Stats
	rng   *rand.Rand

	// rt is non-nil when the run's wire is real-time (LocalWire,
	// TCPWire): the rank's clock is then host seconds since the world
	// epoch, every netsim model charge is skipped (the costs are real
	// instructions and real wire latency), and wait time is measured
	// around blocking receives. Nil on the simulated path, so the hot
	// paths pay one predictable nil check.
	rt *rtClock

	computeScale float64

	jumpD      float64
	jumpSrc    machine.Rank
	jumpTag    Tag
	jumpArrive float64

	// checkLastNow is the last virtual time observed by the ygmcheck
	// clock-monotonicity assertion; unused in default builds.
	checkLastNow float64

	// commNonce counts communicator constructions on this rank; see
	// CommNonce.
	commNonce uint64

	// lastArrive tracks, per (dst, tag) channel, the latest arrival time
	// this rank has assigned to a packet. Allocated only when a delay
	// injector is active: injected delays must not let a later send
	// overtake an earlier one on the same channel, or they would violate
	// the MPI non-overtaking guarantee the upper layers rely on.
	lastArrive map[chanKey]float64

	// metrics is this rank's named-metric registry; szLocal/szRemote are
	// its message-size histograms, resolved once at construction so the
	// send path never touches the name maps.
	metrics  *obs.Registry
	szLocal  *obs.Histogram
	szRemote *obs.Histogram

	// rec is this rank's flight recorder — a ring of recent events
	// dumped by deadlock and panic paths. Nil when disabled via
	// Config.FlightRecorder.
	rec *obs.Recorder
}

// chanKey identifies one ordered (destination, tag) channel.
type chanKey struct {
	dst machine.Rank
	tag Tag
}

// rtClock is a rank's real-time clock state: the world epoch lives on
// the World; wait accumulates measured host seconds spent parked in
// blocking receives, so Busy = Now - wait mirrors the netsim clock's
// busy/wait split in measured form.
type rtClock struct {
	wait float64
}

// now returns this rank's clock in seconds: virtual netsim time on the
// simulated path, host seconds since the world epoch in real time.
func (p *Proc) now() float64 {
	if p.rt != nil {
		return hostNow().Sub(p.world.epoch).Seconds()
	}
	return p.clock.Now()
}

// clocks returns a consistent (now, busy, wait) snapshot in the run's
// time base. Under a real-time wire all three derive from one host
// clock reading, so RankReport.Time == Busy + Wait holds exactly
// instead of drifting by the interval between two hostNow calls.
func (p *Proc) clocks() (now, busy, wait float64) {
	if p.rt != nil {
		now = hostNow().Sub(p.world.epoch).Seconds()
		return now, now - p.rt.wait, p.rt.wait
	}
	return p.clock.Now(), p.clock.Busy(), p.clock.Wait()
}

// Rank returns this rank's flat identifier.
func (p *Proc) Rank() machine.Rank { return p.rank }

// Node returns this rank's node offset.
func (p *Proc) Node() int { return p.world.topo.Node(p.rank) }

// Core returns this rank's core offset within its node.
func (p *Proc) Core() int { return p.world.topo.Core(p.rank) }

// Topo returns the cluster topology.
func (p *Proc) Topo() machine.Topology { return p.world.topo }

// WorldSize returns the total rank count.
func (p *Proc) WorldSize() int { return p.world.topo.WorldSize() }

// Model returns the network cost model in effect.
func (p *Proc) Model() *netsim.Model { return &p.world.model }

// Now returns this rank's clock in seconds: virtual netsim time under a
// simulated wire, host seconds since the run epoch under a real-time
// wire.
func (p *Proc) Now() float64 { return p.now() }

// Stats exposes this rank's traffic counters (read-only use expected).
func (p *Proc) Stats() *Stats { return &p.stats }

// Rng returns a deterministic per-rank random source seeded from the
// Config seed and the rank id.
func (p *Proc) Rng() *rand.Rand { return p.rng }

// CommNonce returns an incrementing per-rank counter. The collective
// layer folds it into each communicator's tag space so that distinct
// communicators with identical member lists (which hash alike) cannot
// cross-talk. Communicator construction is collective and happens in
// program order on every member, so all members of one communicator
// observe the same nonce.
func (p *Proc) CommNonce() uint64 {
	p.commNonce++
	return p.commNonce
}

// Compute advances the virtual clock by d seconds of application work,
// scaled by any straggler factor configured for this rank. Under a
// real-time wire this is a no-op (beyond argument validation): the work
// the charge models is real instructions there, and simulating extra
// load would double-count it.
func (p *Proc) Compute(d float64) {
	if d < 0 {
		panic("transport: negative compute time")
	}
	if p.rt != nil {
		return
	}
	p.clock.Advance(d * p.computeScale)
	p.checkClockMonotone()
}

// ChargeRecvOverhead advances the clock by the model's receive overhead;
// exposed for layers (like the mailbox) that account per-record costs.
// A no-op under real-time wires, like every model charge.
func (p *Proc) ChargeRecvOverhead() {
	if p.rt != nil {
		return
	}
	p.clock.Advance(p.world.model.RecvOverhead)
}

// Send transmits payload to dst under tag. The sender is charged the send
// overhead; the packet's virtual arrival is the sender's clock plus the
// local or remote transfer time from the cost model. Payload ownership
// transfers to the receiver.
func (p *Proc) Send(dst machine.Rank, tag Tag, payload []byte) {
	p.send(dst, tag, payload, false)
}

// SendPooled is Send for payloads obtained from AcquireBuf: the packet is
// marked so that the receiver's Recycle returns the payload buffer to the
// world pool once it has been fully consumed. The sender must not retain
// the payload; the receiver must not retain it past Recycle.
func (p *Proc) SendPooled(dst machine.Rank, tag Tag, payload []byte) {
	p.send(dst, tag, payload, true)
}

// AcquireBuf returns a length-n payload buffer from the world's recycle
// pool (allocating only when the pool is dry). Buffers acquired here are
// meant to be sent with SendPooled and returned by the receiver via
// Recycle — the cycle that keeps steady-state mailbox traffic
// allocation-free.
func (p *Proc) AcquireBuf(n int) []byte { return p.world.pool.getBuf(n) }

// Recycle returns a received packet — and, when it was sent with
// SendPooled, its payload buffer — to the world pool. The caller must not
// touch pkt or its payload afterwards.
func (p *Proc) Recycle(pkt *Packet) {
	p.stats.Recycles++
	p.world.pool.put(pkt)
}

//ygm:hotpath
func (p *Proc) send(dst machine.Rank, tag Tag, payload []byte, pooled bool) {
	w := p.world
	if !w.topo.Valid(dst) {
		panic(fmt.Sprintf("transport: send to invalid rank %d", dst))
	}
	local := w.topo.SameNode(p.rank, dst)
	var arrive float64
	if p.rt != nil {
		// Real-time wire: overheads and transfer times are real
		// instructions and real latency, not model charges. The arrival
		// stamp is the sender's host clock; a remote backend re-stamps on
		// the receiving host so clock skew can never place a packet in
		// the receiver's past.
		arrive = p.now()
	} else {
		p.clock.Advance(w.model.SendOverheadFor(local))
		var transfer float64
		if local {
			transfer = w.model.LocalTransferTime(len(payload))
		} else {
			transfer = w.model.RemoteTransferTime(len(payload))
		}
		if w.delay != nil {
			if extra := w.delay(p.rank, dst, tag, len(payload)); extra > 0 {
				transfer += extra
			}
		}
		arrive = p.clock.Now() + transfer
		if w.delay != nil {
			// Clamp so injected delay never reorders a channel.
			if p.lastArrive == nil {
				p.lastArrive = make(map[chanKey]float64) //ygmvet:ignore allocinloop -- fault-injection runs only; never on the steady-state path
			}
			key := chanKey{dst: dst, tag: tag}
			if last := p.lastArrive[key]; arrive < last {
				arrive = last
			}
			p.lastArrive[key] = arrive
		}
	}
	p.stats.recordSend(dst, tag, len(payload), local, w.trackPartners)
	if local {
		p.szLocal.Observe(uint64(len(payload)))
	} else {
		p.szRemote.Observe(uint64(len(payload)))
	}
	pkt := w.pool.getPkt()
	pkt.Src = p.rank
	pkt.Tag = tag
	pkt.Arrive = arrive
	pkt.Payload = payload
	pkt.pooled = pooled
	w.wire.Inject(p, dst, pkt)
	if p.rec != nil {
		p.rec.Record(obs.Event{Kind: obs.KSend, T: p.now(), Peer: int32(dst), Tag: uint64(tag), Size: int64(len(payload))})
	}
	if w.trace != nil {
		w.trace.PacketSent(p.rank, dst, tag, len(payload), p.now(), arrive)
	}
}

// Recv blocks until a packet with the given tag arrives, fast-forwards
// the clock to its virtual arrival (accruing wait time), charges the
// receive overhead, and returns it. If the run's deadlock watchdog
// determined that every active rank is blocked, Recv records this rank's
// state and unwinds the rank instead of hanging forever.
func (p *Proc) Recv(tag Tag) *Packet {
	var t0 float64
	if p.rt != nil {
		// Real-time wires account wait by measuring the blocking pop;
		// Progress lets a polled backend move bytes before the park.
		p.world.wire.Progress(p)
		t0 = p.now()
	}
	pkt := p.world.inboxes[p.rank].WaitPop(tag)
	if p.rt != nil {
		p.rt.wait += p.now() - t0
	}
	if pkt == nil {
		p.deadlockExit(tag)
	}
	p.absorb(pkt)
	return pkt
}

// Poll returns the earliest packet with the given tag whose arrival is
// at or before this rank's clock, or nil. Polling never advances the
// clock past the present (beyond the receive overhead). Under a
// real-time wire every physically queued packet has already arrived
// (stamps are taken before the push, on the receiving host's clock), so
// Poll degenerates to a nonblocking pop.
func (p *Proc) Poll(tag Tag) *Packet {
	pkt := p.world.inboxes[p.rank].TryPopArrived(tag, p.now())
	if pkt != nil {
		if p.rt == nil {
			p.clock.Advance(p.world.model.RecvOverheadFor(p.world.topo.SameNode(p.rank, pkt.Src)))
			p.checkClockMonotone()
		}
		p.stats.RecvMsgs++
		if p.world.trace != nil {
			p.world.trace.PacketReceived(pkt.Src, p.rank, pkt.Tag, len(pkt.Payload), p.now())
		}
	}
	return pkt
}

// Drain returns the earliest physically present packet with the given
// tag regardless of virtual arrival, waiting the clock forward to the
// arrival time, or nil if the inbox holds none. Used by ranks that have
// declared themselves idle (e.g. inside WaitEmpty).
func (p *Proc) Drain(tag Tag) *Packet {
	pkt := p.world.inboxes[p.rank].TryPop(tag)
	if pkt == nil {
		return nil
	}
	p.absorb(pkt)
	return pkt
}

// DrainBatch removes every physically present packet under tag in one
// inbox lock acquisition, appending them to scratch in virtual-arrival
// order, and returns the extended slice. Unlike Drain it does NOT absorb:
// the caller must Absorb each packet as it processes it, which preserves
// the per-packet clock accounting of a pop-at-a-time drain while
// eliminating the per-poll locking and interface traffic.
func (p *Proc) DrainBatch(tag Tag, scratch []*Packet) []*Packet {
	return p.world.inboxes[p.rank].DrainInto(tag, scratch)
}

// Absorb applies arrival-wait and receive-overhead accounting for a
// packet obtained from DrainBatch, exactly as Drain would have.
func (p *Proc) Absorb(pkt *Packet) { p.absorb(pkt) }

// Yield cedes the rank's execution slot to another runnable rank.
// Under the M:N scheduler it donates the calling rank's worker token to
// a queued rank (re-queueing the caller behind it) whenever one is
// waiting; otherwise — direct model, or nobody waiting — it yields the
// OS thread. Nonblocking progress loops (mailbox WaitEmpty idling,
// container TestEmpty polling) must call this instead of
// runtime.Gosched on their idle path: a token-holding spinner would
// otherwise starve the very ranks whose messages it polls for.
func (p *Proc) Yield() {
	if s := p.world.sched; s != nil && s.yield(p.rank) {
		return
	}
	runtime.Gosched()
}

// Pending reports how many packets are physically queued under tag,
// whether or not they have virtually arrived.
func (p *Proc) Pending(tag Tag) int {
	return p.world.inboxes[p.rank].LenTag(tag)
}

// PendingTags reports the total queued under all the given tags in a
// single inbox pass. Callers polling several streams in an idle loop
// (the round exchange's stage tags) should reuse one scratch slice.
func (p *Proc) PendingTags(tags []Tag) int {
	return p.world.inboxes[p.rank].LenTags(tags)
}

// absorb applies arrival wait and receive overhead accounting for pkt.
// Real-time wires skip the virtual accounting entirely: the stamp was
// taken at or before the push on this host's monotonic clock, so the
// packet has always "arrived", wait was measured around the blocking
// pop, and the receive overhead is real work.
func (p *Proc) absorb(pkt *Packet) {
	if p.rt != nil {
		p.stats.RecvMsgs++
		if p.rec != nil {
			p.rec.Record(obs.Event{Kind: obs.KRecv, T: p.now(), Peer: int32(pkt.Src), Tag: uint64(pkt.Tag), Size: int64(len(pkt.Payload))})
		}
		if p.world.trace != nil {
			p.world.trace.PacketReceived(pkt.Src, p.rank, pkt.Tag, len(pkt.Payload), p.now())
		}
		return
	}
	// One fused clock update covers the whole receive: fast-forward to
	// the arrival (wait time) plus the receive overhead (busy time).
	// The returned jump — the idle interval skipped, 0 for packets
	// already arrived — feeds the diagnostics that used to recompute it.
	before := p.clock.Now()
	jump := p.clock.AbsorbAt(pkt.Arrive, p.world.model.RecvOverheadFor(p.world.topo.SameNode(p.rank, pkt.Src)))
	if jump > 50e-6 {
		// Large arrival waits go to the flight recorder always and, when
		// traceJumps debugging is enabled, to stderr — never stdout,
		// which carries machine-read bench output.
		if p.rec != nil {
			p.rec.Record(obs.Event{Kind: obs.KJump, T: before, Peer: int32(pkt.Src), Tag: uint64(pkt.Tag), Size: int64(len(pkt.Payload))})
		}
		if traceJumps {
			fmt.Fprintf(os.Stderr, "JUMP rank=%d src=%d tag=%x now=%.3fms arrive=%.3fms size=%d\n",
				p.rank, pkt.Src, pkt.Tag, before*1e3, pkt.Arrive*1e3, len(pkt.Payload))
		}
	}
	if jump > p.jumpD {
		p.jumpD = jump
		p.jumpSrc = pkt.Src
		p.jumpTag = pkt.Tag
		p.jumpArrive = pkt.Arrive
	}
	p.stats.RecvMsgs++
	if p.rec != nil {
		p.rec.Record(obs.Event{Kind: obs.KRecv, T: p.clock.Now(), Peer: int32(pkt.Src), Tag: uint64(pkt.Tag), Size: int64(len(pkt.Payload))})
	}
	p.checkClockMonotone()
	if p.world.trace != nil {
		p.world.trace.PacketReceived(pkt.Src, p.rank, pkt.Tag, len(pkt.Payload), p.clock.Now())
	}
}

// BigJump reports the packet that caused this rank's largest arrival
// wait (diagnostic).
func (p *Proc) BigJump() (src machine.Rank, tag Tag, arrive, d float64) {
	return p.jumpSrc, p.jumpTag, p.jumpArrive, p.jumpD
}

// Clock exposes the rank's virtual netsim clock. Under a real-time wire
// the virtual clock never advances (the rank's time base is host time;
// see Now); callers that care about the time base should consult the
// Report's Wall field instead.
func (p *Proc) Clock() *netsim.Clock { return &p.clock }

// Metrics returns this rank's named-metric registry. Layers resolve
// their counters/gauges/histograms once at construction and update the
// returned pointers directly; the registry is confined to the rank's
// goroutine. Each rank's snapshot lands in RankReport.Metrics, and
// Report.Metrics merges them.
func (p *Proc) Metrics() *obs.Registry { return p.metrics }

// FlightRecorder returns this rank's event ring, or nil when disabled
// via Config.FlightRecorder. Upper layers may Record their own events;
// deadlock and panic dumps include the ring's recent contents.
func (p *Proc) FlightRecorder() *obs.Recorder { return p.rec }

// Span is an open virtual-time interval on one rank, returned by
// Proc.Span and closed by End. It is a small value type so that span
// bracketing on instrumented paths allocates nothing.
type Span struct {
	p    *Proc
	name string
}

// Span begins a named phase span at the rank's current virtual time,
// forwarded to the Config.Trace value when that implements SpanObserver.
// Without one it returns an inert Span whose End is a no-op: span
// bracketing sits on polling-hot paths (e.g. the lazy drain loop), so
// the untraced cost must be a single nil check. Spans deliberately do
// NOT enter the flight recorder — per-poll span brackets would evict
// the send/receive history that makes deadlock and panic dumps useful.
func (p *Proc) Span(name string) Span {
	so := p.world.spanObs
	if so == nil {
		return Span{}
	}
	so.SpanBegin(p.rank, name, p.now())
	return Span{p: p, name: name}
}

// End closes the span at the rank's current virtual time.
func (s Span) End() {
	if s.p == nil {
		return
	}
	s.p.world.spanObs.SpanEnd(s.p.rank, s.name, s.p.now())
}

// Mark records a labelled instant with an event-specific value (e.g. a
// termination generation number) in the flight recorder and, when the
// tracer observes spans, in the trace.
func (p *Proc) Mark(name string, value uint64) {
	if p.rec == nil && p.world.spanObs == nil {
		return
	}
	now := p.now()
	if p.rec != nil {
		p.rec.Record(obs.Event{Kind: obs.KMark, T: now, Peer: -1, Tag: value, Name: name})
	}
	if so := p.world.spanObs; so != nil {
		so.Mark(p.rank, name, value, now)
	}
}
