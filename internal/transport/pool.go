package transport

import "sync"

// bufPool recycles packet payload buffers and Packet structs across the
// ranks of one World. Coalescing buffers are acquired at the sender
// (AcquireBuf), travel inside a pooled packet, and return to the pool at
// the receiver (Recycle) once the mailbox has dispatched every record —
// the cross-rank flow that makes the steady-state exchange path
// allocation-free. Only payloads sent via SendPooled are recycled:
// plain Send makes no ownership claim beyond "receiver owns it", and
// collectives legitimately alias one payload across several receivers.
type bufPool struct {
	mu   sync.Mutex
	bufs [][]byte
	pkts []*Packet
}

// poolKeep bounds the retained entries per kind so a burst cannot pin
// memory forever; overflow simply falls back to the garbage collector.
const poolKeep = 1024

// poolSeed is the initial capacity of each free list. Both lists churn
// from the first exchange on, so growing them from nil costs a dozen
// reallocations per run; seeding skips those for the common population
// while staying far under poolKeep.
const poolSeed = 128

// init gives both free lists their initial capacity. Called once per
// World before any rank runs.
func (bp *bufPool) init() {
	bp.bufs = make([][]byte, 0, poolSeed)
	bp.pkts = make([]*Packet, 0, poolSeed)
}

// getBuf returns a length-n buffer, reusing pooled storage when a
// buffer with sufficient capacity is available.
func (bp *bufPool) getBuf(n int) []byte {
	bp.mu.Lock()
	if l := len(bp.bufs); l > 0 {
		b := bp.bufs[l-1]
		bp.bufs[l-1] = nil
		bp.bufs = bp.bufs[:l-1]
		bp.mu.Unlock()
		if cap(b) >= n {
			return b[:n]
		}
		// Too small: let it go and size up. The pool converges to the
		// largest buffers in circulation.
		return make([]byte, n)
	}
	bp.mu.Unlock()
	return make([]byte, n)
}

// getPkt returns a zeroed Packet, pooled when possible.
func (bp *bufPool) getPkt() *Packet {
	bp.mu.Lock()
	if l := len(bp.pkts); l > 0 {
		pkt := bp.pkts[l-1]
		bp.pkts[l-1] = nil
		bp.pkts = bp.pkts[:l-1]
		bp.mu.Unlock()
		return pkt
	}
	bp.mu.Unlock()
	return &Packet{}
}

// put returns pkt — and, when the sender marked it pooled, its payload —
// to the pool. pkt must not be touched by the caller afterwards.
func (bp *bufPool) put(pkt *Packet) {
	payload := pkt.Payload
	pooled := pkt.pooled
	*pkt = Packet{}
	bp.mu.Lock()
	if pooled && payload != nil && len(bp.bufs) < poolKeep {
		bp.bufs = append(bp.bufs, payload)
	}
	if len(bp.pkts) < poolKeep {
		bp.pkts = append(bp.pkts, pkt)
	}
	bp.mu.Unlock()
}
