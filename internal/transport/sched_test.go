package transport

import (
	"errors"
	"runtime"
	"testing"
	"time"

	"ygm/internal/machine"
)

// treeReduce gathers one message per rank up a binomial tree to rank 0:
// every non-root rank sends exactly one packet to its parent after
// collecting one from each of its subtree children, so every Recv has
// exactly one packet it can match.
func treeReduce(p *Proc, tag Tag) {
	n := p.WorldSize()
	r := int(p.Rank())
	top := 1
	for top < n {
		top <<= 1
	}
	for m := 1; m < top; m <<= 1 {
		if r&m != 0 {
			p.Send(machine.Rank(r-m), tag, []byte{byte(r)})
			return
		}
		if c := r | m; c < n {
			p.Recycle(p.Recv(tag))
		}
	}
}

// treeBcast broadcasts from rank 0 down the same binomial tree; every
// non-root rank receives exactly one packet under tag.
func treeBcast(p *Proc, tag Tag) {
	n := p.WorldSize()
	r := int(p.Rank())
	top := 1
	for top < n {
		top <<= 1
	}
	high := top
	if r != 0 {
		p.Recycle(p.Recv(tag))
		high = r & -r
	}
	for m := high >> 1; m >= 1; m >>= 1 {
		if c := r | m; c < n && c > r {
			p.Send(machine.Rank(c), tag, []byte{byte(r)})
		}
	}
}

// treeBarrier is a full synchronization: reduce to the root, then
// broadcast the release.
func treeBarrier(p *Proc, tag Tag) {
	treeReduce(p, tag)
	treeBcast(p, tag+1)
}

// runWithTimeout guards scheduler tests against livelock regressions:
// a wedged run fails the test with a descriptive message instead of
// tripping the package-level test timeout with no context.
func runWithTimeout(t *testing.T, d time.Duration, cfg Config, body func(p *Proc) error) *Report {
	t.Helper()
	type result struct {
		rep *Report
		err error
	}
	ch := make(chan result, 1)
	go func() {
		rep, err := Run(cfg, body)
		ch <- result{rep, err}
	}()
	select {
	case res := <-ch:
		if res.err != nil {
			t.Fatalf("run failed: %v", res.err)
		}
		return res.rep
	case <-time.After(d):
		t.Fatalf("run wedged: no completion within %v", d)
		return nil
	}
}

// TestSchedulerCompletesCollectives runs barrier and neighbor-exchange
// traffic over far fewer worker tokens than ranks and checks the
// scheduler actually carried the run (token grants flowed through the
// gates) and its accounting is self-consistent.
func TestSchedulerCompletesCollectives(t *testing.T) {
	const rounds = 3
	cfg := NewConfig(machine.New(4, 8), WithSeed(5), WithWorkers(2))
	rep := runWithTimeout(t, time.Minute, cfg, func(p *Proc) error {
		n := p.WorldSize()
		for k := 0; k < rounds; k++ {
			tag := TagUser + Tag(4*k)
			p.Send(machine.Rank((int(p.Rank())+1+k)%n), tag, []byte{byte(k)})
			p.Recycle(p.Recv(tag))
			treeBarrier(p, tag+1)
		}
		return nil
	})
	m := rep.Metrics()
	if got := m.Counter("sched.dispatches"); got == 0 {
		t.Fatalf("sched.dispatches = 0: scheduler never granted a token")
	}
	if got := m.Gauges["sched.workers"].Last; got != 2 {
		t.Fatalf("sched.workers gauge = %v, want 2", got)
	}
	if hwm := m.Gauges["sched.workers_busy_hwm"].Max; hwm > 2 {
		t.Fatalf("busy high-water mark %v exceeds the 2-token pool", hwm)
	}
}

// TestSchedulerMakespanMatchesDirect pins virtual-time equivalence: the
// M:N scheduler multiplexes host execution but must not perturb the
// simulation's outcome. The workload is built so every Recv has exactly
// one matching packet (unique tag per edge per round), which makes the
// simulated makespan a pure function of the message DAG — identical
// under any host interleaving, hence byte-identical between the
// scheduled and direct models.
func TestSchedulerMakespanMatchesDirect(t *testing.T) {
	body := func(p *Proc) error {
		n := p.WorldSize()
		for k := 0; k < 4; k++ {
			tag := TagUser + Tag(4*k)
			p.Send(machine.Rank((int(p.Rank())+1+k)%n), tag, []byte("payload"))
			p.Recycle(p.Recv(tag))
			treeBcast(p, tag+1)
		}
		return nil
	}
	topo := machine.New(8, 8)
	direct := runWithTimeout(t, time.Minute, NewConfig(topo, WithSeed(7), WithWorkers(-1)), body)
	sched := runWithTimeout(t, time.Minute, NewConfig(topo, WithSeed(7), WithWorkers(3)), body)
	if direct.Makespan() != sched.Makespan() {
		t.Fatalf("makespan diverged: direct %.12g, scheduled %.12g",
			direct.Makespan(), sched.Makespan())
	}
	if dt, st := direct.Totals(), sched.Totals(); dt != st {
		t.Fatalf("traffic totals diverged:\n  direct    %+v\n  scheduled %+v", dt, st)
	}
}

// TestYieldSingleWorkerNoLivelock is the regression test for
// token-holding spinners: with exactly one worker token, a rank polling
// in a nonblocking loop must donate its token via Proc.Yield or the
// senders it is polling for can never run. Repeated runs cover both
// orderings of which rank wins the token first.
func TestYieldSingleWorkerNoLivelock(t *testing.T) {
	for i := 0; i < 10; i++ {
		cfg := NewConfig(machine.New(1, 8), WithSeed(int64(i)), WithWorkers(1))
		rep := runWithTimeout(t, time.Minute, cfg, func(p *Proc) error {
			if p.Rank() != 0 {
				p.Send(0, TagUser, []byte{byte(p.Rank())})
				return nil
			}
			for got := 0; got < p.WorldSize()-1; {
				if pkt := p.Drain(TagUser); pkt != nil {
					got++
					p.Recycle(pkt)
					continue
				}
				p.Yield()
			}
			return nil
		})
		if rep.Totals().LocalMsgs == 0 {
			t.Fatalf("iteration %d: no traffic recorded", i)
		}
	}
}

// largeWorldRanks returns the large-world smoke size: 16k ranks in a
// default build, scaled down under the race detector (which multiplies
// per-goroutine cost by an order of magnitude) while staying above the
// scheduler's and the sparse inbox's auto-enable thresholds.
func largeWorldRanks() int {
	if raceEnabled {
		return 2048
	}
	return 16384
}

// TestLargeWorldSchedulerSmoke is the scaled-down CI version of the
// 65k experiment: a broadcast and a full barrier across a 16k-rank
// world, which only completes in reasonable memory because the sparse
// inboxes allocate O(active edges) rings and the M:N scheduler keeps
// only GOMAXPROCS rank goroutines runnable.
func TestLargeWorldSchedulerSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("large-world smoke skipped in -short mode")
	}
	n := largeWorldRanks()
	cfg := NewConfig(machine.New(n/32, 32), WithSeed(3))
	rep := runWithTimeout(t, 4*time.Minute, cfg, func(p *Proc) error {
		treeBcast(p, TagUser)
		treeBarrier(p, TagUser+1)
		return nil
	})
	if rep.Makespan() <= 0 {
		t.Fatalf("makespan %v, want > 0", rep.Makespan())
	}
	m := rep.Metrics()
	if m.Counter("sched.dispatches") == 0 {
		t.Fatalf("auto scheduler did not engage for a %d-rank world", n)
	}
	if w := m.Gauges["sched.workers"].Last; int(w) != runtime.GOMAXPROCS(0) {
		t.Fatalf("sched.workers = %v, want GOMAXPROCS = %d", w, runtime.GOMAXPROCS(0))
	}
}

// TestSparseInboxExactlyOnce pins delivery through the sparse
// (map-of-rings plus dirty-stack) inbox path: a world past denseWorlds
// fans all traffic into one rank, which must observe every packet
// exactly once with its source intact — under the scheduler, since
// large worlds run scheduled in production.
func TestSparseInboxExactlyOnce(t *testing.T) {
	const msgs = 4
	topo := machine.New(30, 10) // 300 ranks > denseWorlds
	counts := make([]int, topo.WorldSize())
	cfg := NewConfig(topo, WithSeed(9), WithWorkers(4))
	runWithTimeout(t, 2*time.Minute, cfg, func(p *Proc) error {
		if p.Rank() != 0 {
			for i := 0; i < msgs; i++ {
				p.Send(0, TagUser, []byte{byte(i)})
			}
			return nil
		}
		want := msgs * (p.WorldSize() - 1)
		for i := 0; i < want; i++ {
			pkt := p.Recv(TagUser)
			counts[pkt.Src]++ // rank 0 only: no sharing
			p.Recycle(pkt)
		}
		return nil
	})
	for r := 1; r < len(counts); r++ {
		if counts[r] != msgs {
			t.Fatalf("rank %d delivered %d packets to rank 0, want %d", r, counts[r], msgs)
		}
	}
}

// TestLostWakeupUnwindsNotHangs seeds the classic mailbox bug — a
// producer wins the park CAS but its wake never arrives — through the
// testLoseWakeup hook and requires the run to unwind into a
// DeadlockError via the watchdog's force-wake path rather than hang
// forever, under both execution models. The clean control arm proves
// the workload itself is sound.
func TestLostWakeupUnwindsNotHangs(t *testing.T) {
	const victim = machine.Rank(3)
	body := func(p *Proc) error {
		switch p.Rank() {
		case 0:
			// Wait (host time) for the victim to park so the Push is
			// guaranteed to win the pParked CAS — the only path where the
			// seeded wake drop can bite.
			for !p.world.inboxes[victim].waiting.Load() {
				runtime.Gosched()
			}
			p.Send(victim, TagUser, []byte("x"))
		case victim:
			if pkt := p.Recv(TagUser); pkt != nil {
				p.Recycle(pkt)
			}
		}
		return nil
	}
	for _, tc := range []struct {
		name    string
		workers int
	}{{"direct", -1}, {"scheduled", 2}} {
		t.Run(tc.name, func(t *testing.T) {
			cfg := NewConfig(machine.New(1, 4),
				WithSeed(1), WithWorkers(tc.workers), WithWatchdogInterval(20*time.Millisecond))

			testLoseWakeup = func(r machine.Rank) bool { return r == victim }
			done := make(chan error, 1)
			go func() {
				_, err := Run(cfg, body)
				done <- err
			}()
			var err error
			select {
			case err = <-done:
			case <-time.After(time.Minute):
				testLoseWakeup = nil
				t.Fatal("run hung: lost wakeup was not unwound by the watchdog")
			}
			testLoseWakeup = nil
			var dead *DeadlockError
			if !errors.As(err, &dead) {
				t.Fatalf("got %v, want a *DeadlockError from the poisoned run", err)
			}

			// Control: the identical workload without the seeded bug
			// completes cleanly.
			if _, err := Run(cfg, body); err != nil {
				t.Fatalf("clean control run failed: %v", err)
			}
		})
	}
}

// TestSchedulerWorkersResolution pins the auto-enable policy: small and
// real-time worlds stay on the direct model, large simulated worlds get
// GOMAXPROCS workers, and explicit settings win in both directions.
func TestSchedulerWorkersResolution(t *testing.T) {
	for _, tc := range []struct {
		cfg      int
		size     int
		realtime bool
		want     int
	}{
		{0, 64, false, 0},
		{0, schedAutoWorlds, false, 0},
		{0, schedAutoWorlds + 1, false, runtime.GOMAXPROCS(0)},
		{0, schedAutoWorlds + 1, true, 0},
		{3, 64, false, 3},
		{3, 64, true, 3},
		{-1, schedAutoWorlds + 1, false, 0},
	} {
		got := resolveWorkers(tc.cfg, tc.size, tc.realtime)
		if got != tc.want {
			t.Errorf("resolveWorkers(%d, %d, %v) = %d, want %d",
				tc.cfg, tc.size, tc.realtime, got, tc.want)
		}
	}
}

// TestSchedulerYieldFairness is the regression test for the run-queue
// starvation bug: many yielding pollers whose home shards collide must
// not be able to monopolize dispatch while ready ranks sit queued in
// other shards. Ranks 1 and 9 share home shard 1 (9 & 7 == 1) and
// ping-pong yields; the parked ranks they are polling for live in other
// shards and must still be granted.
func TestSchedulerYieldFairness(t *testing.T) {
	poller := func(p *Proc, tag Tag, want int) {
		for got := 0; got < want; {
			if pkt := p.Drain(tag); pkt != nil {
				got++
				p.Recycle(pkt)
				continue
			}
			p.Yield()
		}
	}
	for i := 0; i < 5; i++ {
		cfg := NewConfig(machine.New(1, 12), WithSeed(int64(i)), WithWorkers(1))
		runWithTimeout(t, time.Minute, cfg, func(p *Proc) error {
			n := p.WorldSize()
			switch r := int(p.Rank()); r {
			case 1:
				// Kick every worker rank (most are already parked in
				// their Recv, so these pushes ready them into their
				// scattered home shards), then poll for the replies.
				for d := 0; d < n; d++ {
					if d != 1 && d != 9 {
						p.Send(machine.Rank(d), TagUser, []byte{1})
					}
				}
				poller(p, TagUser+1, n-2)
			case 9:
				poller(p, TagUser+9, n-2)
			default:
				p.Recycle(p.Recv(TagUser))
				p.Send(1, TagUser+1, []byte{byte(r)})
				p.Send(9, TagUser+9, []byte{byte(r)})
			}
			return nil
		})
	}
}
