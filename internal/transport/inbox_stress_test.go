package transport

import (
	"encoding/binary"
	"fmt"
	"testing"

	"ygm/internal/machine"
)

// The stress tests below hammer the SPSC inbox rings through the full
// transport runtime (real rank goroutines, real park/wake traffic) and
// assert the delivery contract end to end: every packet sent is
// received exactly once, and each src→dst channel delivers in send
// order with non-decreasing virtual arrival clocks. Fixed-size payloads
// make per-channel arrival monotonicity an exact property (equal
// transfer cost + strictly increasing send clocks), so any violation is
// a real reordering or accounting bug, not model noise. They are meant
// to run under -race, where the ring publish/consume edges and the
// park/wake CAS protocol get the most scrutiny.

// stressPayload encodes (src, idx) so the receiver can audit
// exactly-once delivery without trusting any transport metadata beyond
// the payload bytes themselves.
func stressPayload(src machine.Rank, idx int) []byte {
	b := make([]byte, 8)
	binary.BigEndian.PutUint32(b[0:4], uint32(src))
	binary.BigEndian.PutUint32(b[4:8], uint32(idx))
	return b
}

func decodeStressPayload(p *Packet) (src machine.Rank, idx int, err error) {
	if len(p.Payload) != 8 {
		return 0, 0, fmt.Errorf("payload size %d, want 8", len(p.Payload))
	}
	src = machine.Rank(binary.BigEndian.Uint32(p.Payload[0:4]))
	if src != p.Src {
		return 0, 0, fmt.Errorf("payload claims src %d, packet header says %d", src, p.Src)
	}
	return src, int(binary.BigEndian.Uint32(p.Payload[4:8])), nil
}

// channelAudit tracks one receiver's view of every incoming channel:
// the next expected per-channel index and the last observed arrival
// clock. Per-channel FIFO plus fixed-size payloads means indices must
// arrive in exact sequence (a skip is a lost packet, a repeat is a
// duplicate) and arrivals must never decrease.
type channelAudit struct {
	nextIdx    []int
	lastArrive []float64
}

func newChannelAudit(world int) *channelAudit {
	a := &channelAudit{
		nextIdx:    make([]int, world),
		lastArrive: make([]float64, world),
	}
	for i := range a.lastArrive {
		a.lastArrive[i] = -1
	}
	return a
}

func (a *channelAudit) observe(p *Packet) error {
	src, idx, err := decodeStressPayload(p)
	if err != nil {
		return err
	}
	if want := a.nextIdx[src]; idx != want {
		return fmt.Errorf("channel %d: got idx %d, want %d (lost or duplicated packet)", src, idx, want)
	}
	a.nextIdx[src]++
	if p.Arrive < a.lastArrive[src] {
		return fmt.Errorf("channel %d: arrival clock ran backwards (%g after %g at idx %d)",
			src, p.Arrive, a.lastArrive[src], idx)
	}
	a.lastArrive[src] = p.Arrive
	return nil
}

// TestStressManyToOneBurst: every other rank bursts a fixed-size packet
// stream at rank 0, far past the per-channel ring capacity, while rank
// 0 blocks in Recv — the maximum-contention shape for the ring publish
// path, the overflow fallback, and the park/wake protocol. Rank 0 must
// observe every (src, idx) exactly once, in per-channel order, with
// monotone per-channel arrival clocks.
func TestStressManyToOneBurst(t *testing.T) {
	const (
		nodes, cores = 4, 4
		perSender    = 8 * ringCap // every channel overflows many times if the receiver lags
	)
	world := nodes * cores
	senders := world - 1
	var inbox0 *Inbox
	rep, err := Run(testConfig(nodes, cores), func(p *Proc) error {
		if p.Rank() != 0 {
			for i := 0; i < perSender; i++ {
				p.Send(0, TagUser, stressPayload(p.Rank(), i))
			}
			return nil
		}
		inbox0 = p.world.inboxes[0]
		audit := newChannelAudit(p.WorldSize())
		for n := 0; n < senders*perSender; n++ {
			pkt := p.Recv(TagUser)
			if pkt == nil {
				return fmt.Errorf("Recv returned nil after %d packets", n)
			}
			if err := audit.observe(pkt); err != nil {
				return err
			}
		}
		for src := 1; src < p.WorldSize(); src++ {
			if audit.nextIdx[src] != perSender {
				return fmt.Errorf("channel %d delivered %d packets, want %d", src, audit.nextIdx[src], perSender)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.Ranks[0].Stats.RecvMsgs; got != uint64(senders*perSender) {
		t.Fatalf("rank 0 stats count %d packets, want %d", got, senders*perSender)
	}
	// Post-run (producers quiescent) the inbox must be fully drained and
	// its counters balanced: everything pushed was absorbed and popped.
	if n := inbox0.Len(); n != 0 {
		t.Fatalf("rank 0 inbox still holds %d packets after the run", n)
	}
	var overflowed uint64
	for i := range inbox0.rings {
		r := &inbox0.rings[i]
		if r.tail.Load() != r.head.Load() {
			t.Fatalf("channel %d ring not drained: head %d tail %d", i, r.head.Load(), r.tail.Load())
		}
		if pushed, taken := r.ofPushed.Load(), r.ofTaken; pushed != taken {
			t.Fatalf("channel %d overflow not drained: pushed %d taken %d", i, pushed, taken)
		}
		overflowed += r.ofPushed.Load()
	}
	t.Logf("burst of %d packets: %d took the overflow fallback", senders*perSender, overflowed)
}

// TestStressBroadcastStorm: every rank broadcasts a fixed-size packet
// to every other rank for several rounds before receiving anything, so
// every inbox has world-1 producers pushing concurrently while its
// owner is still producing. Each rank audits its own inbound channels
// for exactly-once, in-order, monotone-arrival delivery.
func TestStressBroadcastStorm(t *testing.T) {
	const (
		nodes, cores = 4, 2
		rounds       = 3 * ringCap
	)
	world := nodes * cores
	rep, err := Run(testConfig(nodes, cores), func(p *Proc) error {
		me := p.Rank()
		for round := 0; round < rounds; round++ {
			for dst := 0; dst < p.WorldSize(); dst++ {
				if machine.Rank(dst) == me {
					continue
				}
				p.Send(machine.Rank(dst), TagUser, stressPayload(me, round))
			}
		}
		audit := newChannelAudit(p.WorldSize())
		expect := (p.WorldSize() - 1) * rounds
		for n := 0; n < expect; n++ {
			pkt := p.Recv(TagUser)
			if pkt == nil {
				return fmt.Errorf("rank %d: Recv returned nil after %d packets", me, n)
			}
			if err := audit.observe(pkt); err != nil {
				return fmt.Errorf("rank %d: %w", me, err)
			}
		}
		for src := 0; src < p.WorldSize(); src++ {
			if machine.Rank(src) == me {
				continue
			}
			if audit.nextIdx[src] != rounds {
				return fmt.Errorf("rank %d: channel %d delivered %d rounds, want %d", me, src, audit.nextIdx[src], rounds)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	tot := rep.Totals()
	want := uint64(world * (world - 1) * rounds)
	if got := tot.RemoteMsgs + tot.LocalMsgs; got != want {
		t.Fatalf("storm moved %d messages, want %d", got, want)
	}
}
