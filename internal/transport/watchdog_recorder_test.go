package transport

import (
	"errors"
	"strings"
	"testing"
	"time"

	"ygm/internal/machine"
	"ygm/internal/netsim"
	"ygm/internal/obs"
)

// TestDeadlockErrorCarriesFlightRecorder is the acceptance test for the
// flight recorder's reason to exist: when the watchdog aborts a run, the
// error must carry each blocked rank's recent event history — at least
// 32 events after real traffic — and render it in the dump, so a
// deadlock report shows what each rank was doing, not just where it
// stopped.
func TestDeadlockErrorCarriesFlightRecorder(t *testing.T) {
	const pingPongs = 20 // 20 sends + 20 receives per rank = 40 events, > 32
	cfg := Config{
		Topo:             machine.New(1, 2),
		Model:            netsim.Quartz(),
		WatchdogInterval: 10 * time.Millisecond,
	}
	err := guard(t, 30*time.Second, func() error {
		_, err := Run(cfg, func(p *Proc) error {
			peer := machine.Rank(1 - p.Rank())
			for i := 0; i < pingPongs; i++ {
				if p.Rank() == 0 {
					p.Send(peer, TagUser, []byte("ping"))
					p.Recycle(p.Recv(TagUser))
				} else {
					p.Recycle(p.Recv(TagUser))
					p.Send(peer, TagUser, []byte("pong"))
				}
			}
			p.Recv(TagUser + 100) // nobody sends this: both ranks block
			return nil
		})
		return err
	})
	var derr *DeadlockError
	if !errors.As(err, &derr) {
		t.Fatalf("want DeadlockError, got %v", err)
	}
	if len(derr.Blocked) != 2 {
		t.Fatalf("want both ranks blocked, got %+v", derr.Blocked)
	}
	for _, s := range derr.Blocked {
		if len(s.Recent) < 32 {
			t.Fatalf("rank %d carries %d recent events, want >= 32", s.Rank, len(s.Recent))
		}
		var sends, recvs int
		for _, ev := range s.Recent {
			switch ev.Kind {
			case obs.KSend:
				sends++
			case obs.KRecv:
				recvs++
			}
		}
		if sends == 0 || recvs == 0 {
			t.Fatalf("rank %d history lacks traffic: %d sends, %d recvs", s.Rank, sends, recvs)
		}
	}
	dump := err.Error()
	if !strings.Contains(dump, "last ") || !strings.Contains(dump, " events:") {
		t.Fatalf("dump does not render the event history:\n%s", dump)
	}
	// Every blocked rank's history must actually be printed.
	if got := strings.Count(dump, " events:"); got != len(derr.Blocked) {
		t.Fatalf("dump renders %d event histories for %d blocked ranks:\n%s", got, len(derr.Blocked), dump)
	}
}

// TestDeadlockErrorWithRecorderDisabled: a negative FlightRecorder size
// disables the recorder; the deadlock dump must still work, just without
// event histories.
func TestDeadlockErrorWithRecorderDisabled(t *testing.T) {
	cfg := Config{
		Topo:             machine.New(1, 2),
		Model:            netsim.Quartz(),
		WatchdogInterval: 10 * time.Millisecond,
		FlightRecorder:   -1,
	}
	err := guard(t, 30*time.Second, func() error {
		_, err := Run(cfg, func(p *Proc) error {
			if p.Rank() == 0 {
				p.Compute(1e-6)
				p.Recv(TagUser)
			}
			return nil
		})
		return err
	})
	var derr *DeadlockError
	if !errors.As(err, &derr) {
		t.Fatalf("want DeadlockError, got %v", err)
	}
	for _, s := range derr.Blocked {
		if len(s.Recent) != 0 {
			t.Fatalf("recorder disabled but rank %d carries %d events", s.Rank, len(s.Recent))
		}
	}
	if strings.Contains(err.Error(), " events:") {
		t.Fatalf("dump renders event history with recorder disabled:\n%s", err.Error())
	}
}
