package transport

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"ygm/internal/machine"
	"ygm/internal/netsim"
)

// TestChromeTracerRoundTrip runs a small world with the tracer attached,
// exercises packets, spans, and marks, and checks the emitted JSON both
// with the shared validator and structurally: per-rank process metadata,
// matched flow arrows, balanced spans, and the mark instant.
func TestChromeTracerRoundTrip(t *testing.T) {
	tr := NewChromeTracer()
	_, err := Run(Config{
		Topo:  machine.New(1, 2),
		Model: netsim.Quartz(),
		Seed:  9,
		Trace: tr,
	}, func(p *Proc) error {
		sp := p.Span("work")
		if p.Rank() == 0 {
			for i := 0; i < 3; i++ {
				p.Send(1, TagUser, []byte("hello"))
			}
			p.Mark("sent", 3)
		} else {
			for i := 0; i < 3; i++ {
				pkt := p.Recv(TagUser)
				p.Recycle(pkt)
			}
		}
		sp.End()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if err := ValidateChromeTrace(buf.Bytes()); err != nil {
		t.Fatalf("emitted trace fails validation: %v", err)
	}

	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Pid  int64   `json:"pid"`
			Ts   float64 `json:"ts"`
			ID   uint64  `json:"id"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q, want ms", doc.DisplayTimeUnit)
	}
	counts := map[string]int{}
	meta := map[int64]bool{}
	var sawMark bool
	for _, e := range doc.TraceEvents {
		counts[e.Ph]++
		if e.Ph == "M" {
			meta[e.Pid] = true
		}
		if e.Ph == "i" && e.Name == "sent" {
			sawMark = true
		}
	}
	if !meta[0] || !meta[1] {
		t.Fatalf("missing process_name metadata for a rank: %v", meta)
	}
	if counts["s"] != 3 || counts["f"] != 3 {
		t.Fatalf("flow arrows s=%d f=%d, want 3/3 for 3 packets", counts["s"], counts["f"])
	}
	if counts["B"] != counts["E"] || counts["B"] < 2 {
		t.Fatalf("span slices B=%d E=%d, want balanced with both ranks' work span", counts["B"], counts["E"])
	}
	if !sawMark {
		t.Fatal("Mark(\"sent\") did not produce an instant event")
	}
}

// TestChromeTracerFlowFIFO checks that multiple in-flight packets on one
// channel bind receives to sends in order: the transport's per-channel
// non-overtaking makes a FIFO exact, so ids on "f" events must appear in
// the order the "s" events minted them.
func TestChromeTracerFlowFIFO(t *testing.T) {
	tr := NewChromeTracer()
	tr.PacketSent(0, 1, TagUser, 8, 0.0, 1.0)
	tr.PacketSent(0, 1, TagUser, 8, 0.1, 1.1)
	tr.PacketSent(0, 1, TagUser, 8, 0.2, 1.2)
	tr.PacketReceived(0, 1, TagUser, 8, 1.0)
	tr.PacketReceived(0, 1, TagUser, 8, 1.1)
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Ph string `json:"ph"`
			ID uint64 `json:"id"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	var starts, finishes []uint64
	for _, e := range doc.TraceEvents {
		switch e.Ph {
		case "s":
			starts = append(starts, e.ID)
		case "f":
			finishes = append(finishes, e.ID)
		}
	}
	if len(starts) != 3 || len(finishes) != 2 {
		t.Fatalf("starts=%v finishes=%v, want 3 starts and 2 finishes", starts, finishes)
	}
	if finishes[0] != starts[0] || finishes[1] != starts[1] {
		t.Fatalf("flow finishes %v do not FIFO-match starts %v", finishes, starts)
	}
}

// TestChromeTracerUnmatchedReceiveDropped: a receive with no recorded
// send (tracer attached mid-run) must be dropped, not fabricated.
func TestChromeTracerUnmatchedReceiveDropped(t *testing.T) {
	tr := NewChromeTracer()
	tr.PacketReceived(0, 1, TagUser, 8, 1.0)
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(buf.Bytes(), []byte(`"ph":"f"`)) {
		t.Fatalf("unmatched receive emitted a flow finish: %s", buf.Bytes())
	}
}

// TestValidateChromeTraceNegative feeds the validator malformed traces
// and requires each to be rejected with a diagnostic mentioning the
// defect.
func TestValidateChromeTraceNegative(t *testing.T) {
	cases := []struct {
		name string
		data string
		want string
	}{
		{"not json", `{`, "not valid JSON"},
		{"empty events", `{"traceEvents":[]}`, "empty traceEvents"},
		{"unknown phase", `{"traceEvents":[{"name":"x","ph":"Z","pid":0,"ts":0}]}`, "unknown phase"},
		{"missing pid", `{"traceEvents":[{"name":"x","ph":"B","ts":0}]}`, "missing pid"},
		{"missing ts", `{"traceEvents":[{"name":"x","ph":"B","pid":0}]}`, "missing ts"},
		{"negative ts", `{"traceEvents":[{"name":"x","ph":"B","pid":0,"ts":-1}]}`, "negative ts"},
		{"missing name", `{"traceEvents":[{"name":"","ph":"B","pid":0,"ts":0}]}`, "missing name"},
		{"unbalanced end", `{"traceEvents":[{"name":"x","ph":"E","pid":0,"ts":0}]}`, "no open span"},
		{"unclosed span", `{"traceEvents":[{"name":"x","ph":"B","pid":0,"ts":0}]}`, "unclosed span"},
		{"flow start no id", `{"traceEvents":[{"name":"p","ph":"s","pid":0,"ts":0}]}`, "flow start missing id"},
		{"flow finish no start", `{"traceEvents":[{"name":"p","ph":"f","pid":0,"ts":0,"id":7}]}`, "no start"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := ValidateChromeTrace([]byte(tc.data))
			if err == nil {
				t.Fatalf("validator accepted malformed trace %q", tc.data)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}
