package transport

import (
	"math/bits"
	"runtime"
	"sync"
	"sync/atomic"

	"ygm/internal/machine"
)

// The inbox is organized as one single-producer/single-consumer ring per
// sending rank (the "channel" src→dst), merged on the consumer side into
// per-tag min-heaps ordered by virtual arrival. The split mirrors what
// lightweight communication runtimes do in hardware terms: producers
// append to their private ring with two atomic sequence counters and no
// lock, and the owning rank absorbs all non-empty rings before every
// pop. Single-producer is structural — a channel's producer is the
// sending rank's goroutine, and each rank runs on exactly one goroutine.
const (
	// ringCap is the per-channel ring capacity (power of two). A full
	// ring falls back to the mutex-guarded overflow list, so capacity
	// stays unbounded; 16 slots absorb the coalesced flush bursts the
	// mailbox emits between two consumer polls while keeping the
	// per-world slot memory (world² · ringCap pointers) small enough
	// that constructing many short-lived worlds stays cheap.
	ringCap  = 16
	ringMask = ringCap - 1

	// ringSlabWorlds bounds the world size for which every ring's slot
	// array is carved out of one shared slab at construction (world
	// memory P²·ringCap pointers). Larger worlds allocate each ring's
	// slots lazily on first push instead, trading a few allocations for
	// not committing O(P²) slots when most channels never carry traffic.
	ringSlabWorlds = 128

	// denseWorlds bounds the world size for which an inbox keeps the
	// dense layout: a P-wide ring-header array plus the active-channel
	// bitmap (covered by activeInline up to exactly this size). Larger
	// worlds switch to the sparse layout — channels materialize on first
	// push and readiness rides a dirty-ring stack — so an idle world
	// costs O(P) instead of O(P²) bytes. Worlds of at most
	// ringSlabWorlds ranks are untouched by the split: they keep the
	// slab-carved fast path bit for bit.
	denseWorlds = 256

	// parkSpins bounds the spin phase of a blocking receive: the
	// consumer re-absorbs and yields this many times before parking on
	// the wake channel. Spinning must yield — on GOMAXPROCS=1 a
	// non-yielding spin would stall the very producer it waits for —
	// and every yield walks the scheduler's run queue, so the spin
	// budget is kept small: enough to catch a producer that is about
	// to publish, cheap enough to lose to a park otherwise.
	parkSpins = 2
)

// parker states (Inbox.pstate).
const (
	pIdle int32 = iota
	pParked
)

// seqArrive is a (channel sequence, arrival clock) pair collected by the
// ygmcheck absorb assertions; unused in default builds.
type seqArrive struct {
	seq    uint64
	arrive float64
}

// ringCheck is one channel's ygmcheck audit state, kept out of inboxRing
// so default builds do not zero (and GC-scan) it world² times per run.
// Inbox.checkRings maps ring → state lazily, in ygmcheck builds only.
type ringCheck struct {
	seq    uint64
	arrive float64
	batch  []seqArrive
}

// inboxRing is one src→dst channel: a fixed-capacity SPSC ring plus an
// unbounded mutex-guarded overflow list. The producer owns tail, seq
// and ofPushed; the consumer owns head and ofTaken; buf slots are
// handed across on the tail release/acquire edge. The producer-owned
// counters get their own cache line; the rest is packed — inboxes are
// built per world, so every padding byte is zeroed world² times.
type inboxRing struct {
	// tail is the count of packets published to the ring; its Store is
	// the release edge that publishes the slot write. seq numbers every
	// packet on this channel (ring or overflow) in push order; it needs
	// no atomicity because the channel has exactly one producer.
	// ofPushed counts packets diverted to the overflow list.
	tail     atomic.Uint64
	ofPushed atomic.Uint64
	seq      uint64
	_        [40]byte

	// head is the count of packets drained from the ring; its Store is
	// the release edge that returns slots to the producer. ofTaken
	// counts overflow packets absorbed. Both consumer-owned.
	head    atomic.Uint64
	ofTaken uint64

	// buf holds the ring slots. With a construction slab it is fixed;
	// otherwise the producer allocates it on first push and publishes
	// it through the tail release/acquire edge. of is the overflow
	// list, appended under ofMu by the producer and swapped out whole
	// by the consumer (which rotates in the inbox-level scratch array
	// so steady overflow traffic reuses two backing arrays per ring).
	buf  []*Packet
	ofMu sync.Mutex
	of   []*Packet
}

// packetHeap orders packets by virtual arrival time, breaking ties with
// (source rank, per-channel sequence) so the merge order is fully
// deterministic — unlike a global push counter, the tie-break does not
// depend on host scheduling of concurrent senders.
type packetHeap []*Packet

func (h packetHeap) less(i, j int) bool {
	a, b := h[i], h[j]
	if a.Arrive != b.Arrive {
		return a.Arrive < b.Arrive
	}
	if a.Src != b.Src {
		return a.Src < b.Src
	}
	return a.seq < b.seq
}

func (h *packetHeap) push(p *Packet) {
	q := append(*h, p)
	*h = q
	i := len(q) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			break
		}
		q[i], q[parent] = q[parent], q[i]
		i = parent
	}
}

func (h *packetHeap) popMin() *Packet {
	q := *h
	p := q[0]
	n := len(q) - 1
	q[0] = q[n]
	q[n] = nil
	q = q[:n]
	*h = q
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		child := l
		if r := l + 1; r < n && q.less(r, l) {
			child = r
		}
		if !q.less(child, i) {
			break
		}
		q[i], q[child] = q[child], q[i]
		i = child
	}
	return p
}

// sparseRing is one lazily-materialized src→dst channel of a sparse
// inbox: the same SPSC ring, created by its producer on first push
// instead of being slab-carved at world construction. dirty/next link
// it into the inbox's Treiber stack of rings with unabsorbed packets —
// the sparse replacement for the dense active bitmap, O(dirty channels)
// to drain instead of O(P/64) words to scan.
type sparseRing struct {
	inboxRing
	src machine.Rank
	// dirty is true while the ring sits on (or is being pushed onto) the
	// inbox's dirty stack. The producer sets it after publishing a
	// packet; the CAS winner links the ring into the stack. The consumer
	// clears it before draining, so a packet published after the clear
	// re-queues the ring rather than being stranded.
	dirty atomic.Bool
	// next is the stack link, written only by the dirty-CAS winner
	// before the stack-head CAS publishes it.
	next *sparseRing
}

// Inbox is a rank's receive queue. Producers (one goroutine per sending
// rank) push lock-free into their channel's ring; the owning rank — the
// only consumer — absorbs all non-empty rings into consumer-private
// per-tag min-heaps on virtual arrival and pops from those. Blocking
// receives spin briefly (re-absorbing between yields) and then park on a
// one-token wake channel that producers post to only when they observe
// the parked state.
//
// Worlds larger than denseWorlds use the sparse layout instead of the
// dense P-wide ring array: srings maps source rank → lazily created
// ring, and dirtyHead stacks the rings with unabsorbed traffic.
type Inbox struct {
	rings []inboxRing

	// srMu guards srings, the sparse channel table (nil on the dense
	// path — srings non-nil is the layout discriminator). Producers take
	// the read lock per push and the write lock once per materialized
	// channel; the watchdog's progress scan reads under the read lock.
	srMu      sync.RWMutex
	srings    map[machine.Rank]*sparseRing
	dirtyHead atomic.Pointer[sparseRing]

	// sched/self route the park protocol to the world's M:N rank
	// scheduler when one is active: producers that win the unpark CAS
	// call sched.ready(self) instead of posting a channel token, and the
	// consumer parks by donating its worker token back to the scheduler.
	// sched is nil under the direct goroutine-per-rank model.
	sched *scheduler
	self  machine.Rank
	// active is a bitmap of channels with possibly-unabsorbed packets:
	// producers set their bit after every push, the consumer swaps
	// whole words to zero while absorbing. An all-zero bitmap makes the
	// empty-poll path a handful of loads. activeInline backs it without
	// a separate allocation for worlds of up to 256 ranks.
	active       []atomic.Uint64
	activeInline [4]atomic.Uint64

	// pstate/wake implement the park protocol. The consumer publishes
	// pParked, re-checks for data, then receives on wake; a producer
	// that CASes pParked→pIdle owns the transition and sends exactly
	// one token. wake is created by the consumer before its first park
	// and is published to producers by the pstate store.
	pstate atomic.Int32
	wake   chan struct{}

	// waiting/waitTag expose whether the owning rank is parked inside
	// WaitPop, and on which tag — the deadlock watchdog's blocked
	// signal. poisoned makes WaitPop return nil so blocked ranks can
	// unwind and report their state instead of hanging forever.
	waiting  atomic.Bool
	waitTag  atomic.Uint64
	poisoned atomic.Bool

	// pops counts heap pops; the watchdog reads it (together with the
	// per-ring push counters) as its progress signal. wakeups counts
	// pushes that won the unpark CAS; the remaining pushes found no
	// parked receiver and suppressed the signal.
	pops    atomic.Uint64
	wakeups atomic.Uint64

	// Consumer-private merge state: per-tag heaps keyed by tag, with
	// emptied heaps retired to freeHeaps for reuse (round-matched
	// exchanges mint a fresh tag every round). lastTag/lastQ memoize
	// the last heap touched so steady single-tag traffic skips the map.
	queues    map[Tag]*packetHeap
	freeHeaps []*packetHeap
	lastTag   Tag
	lastQ     *packetHeap
	depth     int
	// ofScratch is the rotation buffer for overflow grabs: drainChannel
	// hands it to the ring being drained and keeps that ring's old
	// backing array here for the next grab (any ring's — overflow is
	// rare enough that one rotation slot serves the whole inbox).
	ofScratch []*Packet
	// maxDepth tracks the high-water mark of merged packets, a proxy
	// for the receive-side memory pressure the mailbox capacity bounds.
	maxDepth int
	// spinHits counts blocking receives satisfied during the spin
	// phase; parks counts the times the consumer actually parked.
	spinHits uint64
	parks    uint64

	// checkMonotone additionally asserts (ygmcheck builds only) that
	// arrivals absorbed from one channel never decrease per tag. That
	// only holds when senders emit fixed-size packets or the
	// non-overtaking clamp is active, so it is opt-in for fixtures.
	// checkRings holds the per-channel audit state, populated lazily
	// and only in ygmcheck builds.
	checkMonotone bool
	checkRings    map[*inboxRing]*ringCheck
}

// NewInbox returns an empty inbox for a world of worldSize ranks. Dense
// worlds (≤ denseWorlds) give every sending rank its own SPSC ring up
// front; larger worlds use the sparse layout and materialize channels
// on first push. worldSize is also the only legal exclusive upper bound
// for Packet.Src values pushed here.
func NewInbox(worldSize int) *Inbox {
	if worldSize > denseWorlds {
		return newSparseInbox()
	}
	var slab []*Packet
	if worldSize <= ringSlabWorlds {
		slab = make([]*Packet, worldSize*ringCap)
	}
	return newInboxFrom(make([]inboxRing, worldSize), slab)
}

// newSparseInbox builds an inbox with the sparse channel layout: no
// per-source ring array, no active bitmap — O(1) memory until traffic
// materializes channels.
func newSparseInbox() *Inbox {
	return &Inbox{
		srings:    make(map[machine.Rank]*sparseRing, 8),
		queues:    make(map[Tag]*packetHeap),
		freeHeaps: make([]*packetHeap, 0, 8),
	}
}

// newInboxFrom builds an inbox over caller-provided ring headers and an
// optional slot slab (length len(rings)·ringCap when non-nil, each ring
// getting a fixed ringCap window). Run carves both out of world-sized
// slabs so a P-rank world pays O(1) allocations for its P inboxes.
func newInboxFrom(rings []inboxRing, slab []*Packet) *Inbox {
	ib := &Inbox{
		rings: rings,
		// Tag heaps churn (round exchanges mint a tag per round), so the
		// free list fills early; sizing it up front beats growing it.
		queues:    make(map[Tag]*packetHeap),
		freeHeaps: make([]*packetHeap, 0, 8),
	}
	words := (len(rings) + 63) / 64
	if words <= len(ib.activeInline) {
		ib.active = ib.activeInline[:words]
	} else {
		ib.active = make([]atomic.Uint64, words)
	}
	if slab != nil {
		for i := range rings {
			rings[i].buf = slab[i*ringCap : (i+1)*ringCap : (i+1)*ringCap]
		}
	}
	return ib
}

// Push enqueues p on the channel of its source rank. Steady state is
// lock-free and allocation-free: assign the channel sequence, write the
// slot, publish with a tail store, set the channel's active bit, and
// wake the receiver only if it is parked. A full ring diverts to the
// channel's overflow list under its mutex. Push must only be called by
// the goroutine running rank p.Src.
//
//ygm:hotpath
func (ib *Inbox) Push(p *Packet) {
	if ib.srings != nil {
		ib.pushSparse(p)
		return
	}
	// Everything needed after publication is read before it: the moment
	// the tail store (or the overflow unlock) makes p visible, the
	// consumer may absorb, deliver, and recycle it.
	src := uint64(p.Src)
	r := &ib.rings[src]
	p.seq = r.seq
	r.seq++
	t := r.tail.Load()
	h := r.head.Load()
	if t-h < ringCap {
		if r.buf == nil {
			// First push on a lazily-sized channel: the slot array is
			// published to the consumer by the tail store below.
			r.buf = make([]*Packet, ringCap) //ygmvet:ignore allocinloop -- once per channel, large-world lazy sizing
		}
		r.buf[t&ringMask] = p
		r.tail.Store(t + 1)
		ib.checkRingBounds(r, h, t+1)
	} else {
		r.ofMu.Lock()
		r.of = append(r.of, p)
		r.ofPushed.Add(1)
		r.ofMu.Unlock()
	}
	ib.markActive(src)
	ib.signal()
}

// pushSparse is Push for the sparse layout: resolve (or materialize)
// the source channel, publish into its ring, and flag it on the dirty
// stack instead of the bitmap.
//
//ygm:hotpath
func (ib *Inbox) pushSparse(p *Packet) {
	r := ib.sparseRingFor(p.Src)
	p.seq = r.seq
	r.seq++
	t := r.tail.Load()
	h := r.head.Load()
	if t-h < ringCap {
		r.buf[t&ringMask] = p
		r.tail.Store(t + 1)
		ib.checkRingBounds(&r.inboxRing, h, t+1)
	} else {
		r.ofMu.Lock()
		r.of = append(r.of, p)
		r.ofPushed.Add(1)
		r.ofMu.Unlock()
	}
	ib.markDirty(r)
	ib.signal()
}

// sparseRingFor resolves the channel for src, creating it on first use.
// The read-locked lookup is the steady state; creation takes the write
// lock once per (src→dst) edge that ever carries traffic.
//
//ygm:hotpath
func (ib *Inbox) sparseRingFor(src machine.Rank) *sparseRing {
	ib.srMu.RLock()
	r := ib.srings[src]
	ib.srMu.RUnlock()
	if r != nil {
		return r
	}
	ib.srMu.Lock()
	if r = ib.srings[src]; r == nil {
		r = &sparseRing{src: src}        //ygmvet:ignore allocinloop -- once per materialized channel
		r.buf = make([]*Packet, ringCap) //ygmvet:ignore allocinloop -- once per materialized channel
		ib.srings[src] = r
	}
	ib.srMu.Unlock()
	return r
}

// markDirty queues r on the dirty stack unless it is already queued.
// The pre-check keeps the steady state (ring already flagged from a
// previous un-absorbed push) to one load, mirroring markActive; the
// dirty CAS elects exactly one producer to link the ring in.
func (ib *Inbox) markDirty(r *sparseRing) {
	if r.dirty.Load() || !r.dirty.CompareAndSwap(false, true) {
		return
	}
	for {
		head := ib.dirtyHead.Load()
		r.next = head
		if ib.dirtyHead.CompareAndSwap(head, r) {
			return
		}
	}
}

// testLoseWakeup, when non-nil, makes signal drop the wake it owes the
// given rank — the seeded lost-wakeup mutation the watchdog smoke test
// must catch. Test hook; nil in production.
var testLoseWakeup func(machine.Rank) bool

// signal wakes the owning rank after a push if it is parked: the
// producer that wins the pParked→pIdle CAS owes exactly one wake — a
// channel token under the direct model, a scheduler ready() under the
// M:N model.
//
//ygm:hotpath
func (ib *Inbox) signal() {
	if ib.pstate.Load() == pParked && ib.pstate.CompareAndSwap(pParked, pIdle) {
		if testLoseWakeup != nil && testLoseWakeup(ib.self) {
			return
		}
		ib.wakeups.Add(1)
		if ib.sched != nil {
			ib.sched.ready(ib.self)
		} else {
			ib.wake <- struct{}{}
		}
	}
}

// markActive sets the channel's bit in the active bitmap. The pre-check
// keeps the steady state (bit already set from a previous un-absorbed
// push) to a single load; the CAS loop stands in for atomic Or, which
// the module's Go version floor predates.
func (ib *Inbox) markActive(src uint64) {
	w := &ib.active[src>>6]
	bit := uint64(1) << (src & 63)
	for {
		old := w.Load()
		if old&bit != 0 || w.CompareAndSwap(old, old|bit) {
			return
		}
	}
}

// absorb moves every pushed-but-unmerged packet from the rings into the
// consumer-private per-tag heaps. Only the owning rank may call it. An
// empty inbox costs one load per bitmap word (one word up to 64 ranks).
//
//ygm:hotpath
func (ib *Inbox) absorb() {
	if ib.srings != nil {
		ib.absorbSparse()
	} else {
		for w := range ib.active {
			if ib.active[w].Load() == 0 {
				continue
			}
			set := ib.active[w].Swap(0)
			base := w << 6
			for set != 0 {
				b := bits.TrailingZeros64(set)
				set &= set - 1
				ib.drainChannel(&ib.rings[base+b])
			}
		}
	}
	if ib.depth > ib.maxDepth {
		ib.maxDepth = ib.depth
	}
}

// absorbSparse drains every ring on the dirty stack — the sparse
// analogue of the bitmap word-swap. Each ring's dirty flag is cleared
// BEFORE its drain: a producer that publishes a packet after the clear
// re-wins the dirty CAS and re-queues the ring (the drain may or may
// not see that packet; either way it is never stranded). A packet
// published before the clear is seen by the drain, because the producer
// stores the slot before the dirty CAS and the consumer reads tail
// after the clear. An empty swap costs one load.
func (ib *Inbox) absorbSparse() {
	r := ib.dirtyHead.Swap(nil)
	for r != nil {
		next := r.next
		r.dirty.Store(false)
		ib.drainChannel(&r.inboxRing)
		r = next
	}
}

// drainChannel merges one channel's ring and overflow contents into the
// tag heaps. The loop re-reads the ring after every overflow grab: a
// packet observed in the overflow list was pushed after every
// lower-sequence ring packet, so re-draining the ring before returning
// guarantees each drain pass absorbs a prefix-closed (gap-free) range
// of the channel sequence — the per-channel FIFO the upper layers and
// the trace flow-arrow matcher rely on.
func (ib *Inbox) drainChannel(r *inboxRing) {
	for {
		h := r.head.Load()
		t := r.tail.Load()
		ib.checkRingBounds(r, h, t)
		if h != t {
			for ; h != t; h++ {
				slot := &r.buf[h&ringMask]
				p := *slot
				*slot = nil
				ib.checkAbsorbed(r, p)
				ib.enqueue(p)
			}
			r.head.Store(h)
		}
		if r.ofPushed.Load() == r.ofTaken {
			ib.checkRingFlush(r)
			return
		}
		r.ofMu.Lock()
		of := r.of
		r.of = ib.ofScratch[:0]
		r.ofMu.Unlock()
		for _, p := range of {
			ib.checkAbsorbed(r, p)
			ib.enqueue(p)
		}
		r.ofTaken += uint64(len(of))
		clear(of)
		ib.ofScratch = of[:0]
	}
}

// enqueue inserts one absorbed packet into its tag's heap.
func (ib *Inbox) enqueue(p *Packet) {
	q := ib.heapFor(p.Tag)
	if q == nil {
		if n := len(ib.freeHeaps); n > 0 {
			q = ib.freeHeaps[n-1]
			ib.freeHeaps[n-1] = nil
			ib.freeHeaps = ib.freeHeaps[:n-1]
		} else {
			// Mint with room for a typical burst up front: heaps are
			// recycled with their capacity, so growing one element at a
			// time from nil would cost several reallocations per fresh
			// tag before the free list warms up.
			h := make(packetHeap, 0, 64)
			q = &h
		}
		ib.queues[p.Tag] = q
		ib.lastTag = p.Tag
		ib.lastQ = q
	}
	q.push(p)
	ib.depth++
	ib.verify(p.Tag)
}

// heapFor resolves tag's heap, memoizing the last hit so single-tag
// streaks (mailbox data) skip the map lookup. Returns nil when the tag
// has no queued packets.
func (ib *Inbox) heapFor(tag Tag) *packetHeap {
	if tag == ib.lastTag && ib.lastQ != nil {
		return ib.lastQ
	}
	q, ok := ib.queues[tag]
	if !ok {
		return nil
	}
	ib.lastTag = tag
	ib.lastQ = q
	return q
}

// popTag removes the merge minimum under tag, or returns nil.
func (ib *Inbox) popTag(tag Tag) *Packet {
	q := ib.heapFor(tag)
	if q == nil || len(*q) == 0 {
		return nil
	}
	return ib.pop(tag, q)
}

// pop removes the heap minimum under tag, maintaining depth/pop
// accounting and retiring the queue to the free list when it empties.
// q is tag's non-empty heap.
func (ib *Inbox) pop(tag Tag, q *packetHeap) *Packet {
	ib.depth--
	ib.pops.Add(1)
	p := q.popMin()
	ib.verify(tag)
	if len(*q) == 0 {
		ib.releaseEmpty(tag, q)
	}
	return p
}

// releaseEmpty unmaps tag's emptied heap and keeps a few around for
// reuse.
func (ib *Inbox) releaseEmpty(tag Tag, q *packetHeap) {
	delete(ib.queues, tag)
	if ib.lastQ == q {
		ib.lastQ = nil
	}
	if len(ib.freeHeaps) < 8 {
		ib.freeHeaps = append(ib.freeHeaps, q)
	}
}

// WaitPop blocks until a packet with the given tag is present, then
// removes and returns the one with the earliest virtual arrival. The
// wait is adaptive: re-absorb and yield up to parkSpins times (cheap
// when the producer is about to publish), then publish the parked state
// and sleep on the wake channel until a producer posts its one token.
// It returns nil only after the inbox has been poisoned by the deadlock
// watchdog; Proc.Recv turns that into a per-rank state dump.
func (ib *Inbox) WaitPop(tag Tag) *Packet {
	ib.absorb()
	if p := ib.popTag(tag); p != nil {
		return p
	}
	if ib.poisoned.Load() {
		return nil
	}
	ib.waitTag.Store(uint64(tag))
	spins := 0
	for {
		ib.absorb()
		if p := ib.popTag(tag); p != nil {
			ib.spinHits++
			return p
		}
		if ib.poisoned.Load() {
			return nil
		}
		if spins < parkSpins {
			spins++
			runtime.Gosched()
			continue
		}
		if ib.sched == nil && ib.wake == nil {
			ib.wake = make(chan struct{}, 1)
		}
		ib.pstate.Store(pParked)
		ib.waiting.Store(true)
		// Re-check after publishing pParked: a producer that pushed
		// before observing the parked state is now visible here, and
		// one that pushes later will observe pParked and send the
		// token. Sequentially consistent atomics rule out the window
		// where both sides miss each other.
		ib.absorb()
		if p := ib.popTag(tag); p != nil {
			ib.unpark()
			ib.spinHits++
			return p
		}
		if ib.poisoned.Load() {
			ib.unpark()
			return nil
		}
		ib.parks++
		if ib.sched != nil {
			ib.sched.park(ib.self)
		} else {
			<-ib.wake
		}
		ib.waiting.Store(false)
		spins = 0
	}
}

// unpark retracts a published park after the pre-sleep recheck found
// data (or poison). If a producer already won the pParked→pIdle CAS it
// owes exactly one wake: consume the channel token (so a future park
// cannot wake spuriously), or cancel the in-flight scheduler ready.
func (ib *Inbox) unpark() {
	ib.waiting.Store(false)
	if !ib.pstate.CompareAndSwap(pParked, pIdle) {
		if ib.sched != nil {
			ib.sched.discard(ib.self)
		} else {
			<-ib.wake
		}
	}
}

// TryPop removes and returns the earliest-arrival packet with the given
// tag, or nil if none is physically present. It ignores virtual time:
// callers that are already waiting (mailbox drains) use it and then
// fast-forward their clock to the packet's arrival.
func (ib *Inbox) TryPop(tag Tag) *Packet {
	ib.absorb()
	return ib.popTag(tag)
}

// TryPopArrived removes and returns the earliest packet with the given
// tag whose virtual arrival is at or before now. It returns nil if the
// queue is empty or the earliest packet is still in virtual flight —
// polling never makes a rank wait.
//
//ygm:hotpath
func (ib *Inbox) TryPopArrived(tag Tag, now float64) *Packet {
	ib.absorb()
	q := ib.heapFor(tag)
	if q == nil || len(*q) == 0 || (*q)[0].Arrive > now {
		return nil
	}
	return ib.pop(tag, q)
}

// DrainInto removes every physically present packet under tag, appending
// them to dst in virtual-arrival order, after a single absorb pass. It
// ignores virtual time, like TryPop; callers absorb each packet's clock
// cost as they consume it.
func (ib *Inbox) DrainInto(tag Tag, dst []*Packet) []*Packet {
	ib.absorb()
	q := ib.heapFor(tag)
	if q == nil || len(*q) == 0 {
		return dst
	}
	n := len(*q)
	for i := 0; i < n; i++ {
		dst = append(dst, q.popMin())
	}
	ib.depth -= n
	ib.pops.Add(uint64(n))
	ib.verify(tag)
	ib.releaseEmpty(tag, q)
	return dst
}

// pushCount sums every channel's push counters (ring tails plus
// overflow). Safe from the watchdog goroutine: the sparse table is read
// under the read lock, the counters are atomic.
func (ib *Inbox) pushCount() uint64 {
	var pushes uint64
	if ib.srings != nil {
		ib.srMu.RLock()
		for _, r := range ib.srings {
			pushes += r.tail.Load() + r.ofPushed.Load()
		}
		ib.srMu.RUnlock()
		return pushes
	}
	for i := range ib.rings {
		r := &ib.rings[i]
		pushes += r.tail.Load() + r.ofPushed.Load()
	}
	return pushes
}

// progress returns a counter that increases with every push and pop —
// the watchdog's signal that the run is still moving. blocked reports
// whether the owning rank is parked in WaitPop, and on which tag.
// Safe to call from the watchdog goroutine.
func (ib *Inbox) progress() (count uint64, blocked bool, tag Tag) {
	return ib.pushCount() + ib.pops.Load(), ib.waiting.Load(), Tag(ib.waitTag.Load())
}

// poison makes all future WaitPop calls return nil and wakes the
// receiver if one is parked. Called by the deadlock watchdog only. The
// unpark CAS is the same protocol producers use, so poison and Push
// can never both owe a token for one park. If the CAS finds the parked
// state already claimed but the rank still reports itself waiting, the
// wake that claim owed was lost — the bug class the mutation smoke
// seeds — and poison forces a wake anyway, so a poisoned run always
// unwinds into a DeadlockError instead of hanging on a stranded park.
// A force into a healthy run is a spurious wake the re-check loop
// absorbs harmlessly.
func (ib *Inbox) poison() {
	ib.poisoned.Store(true)
	if ib.pstate.CompareAndSwap(pParked, pIdle) {
		if ib.sched != nil {
			ib.sched.ready(ib.self)
		} else {
			ib.wake <- struct{}{}
		}
		return
	}
	if ib.waiting.Load() {
		if ib.sched != nil {
			ib.sched.forceWake(ib.self)
		} else if w := ib.wake; w != nil {
			select {
			case w <- struct{}{}:
			default:
			}
		}
	}
}

// Len returns the number of packets currently queued across all tags,
// including pushed-but-unabsorbed ring and overflow occupancy. Exact
// only from the owning rank or when producers are quiescent (both true
// for its callers: deadlock dumps and post-run accounting).
func (ib *Inbox) Len() int {
	n := ib.depth
	if ib.srings != nil {
		ib.srMu.RLock()
		for _, r := range ib.srings {
			n += int(r.tail.Load()-r.head.Load()) + int(r.ofPushed.Load()-r.ofTaken)
		}
		ib.srMu.RUnlock()
		return n
	}
	for i := range ib.rings {
		r := &ib.rings[i]
		n += int(r.tail.Load()-r.head.Load()) + int(r.ofPushed.Load()-r.ofTaken)
	}
	return n
}

// LenTag returns the number of packets queued under one tag. Owning
// rank only (it absorbs).
func (ib *Inbox) LenTag(tag Tag) int {
	ib.absorb()
	if q := ib.heapFor(tag); q != nil {
		return len(*q)
	}
	return 0
}

// LenTags returns the total queued under several tags in one absorb
// pass — the round-exchange idle loop polls all stage streams at once.
// The slice parameter (not variadic) lets callers reuse a scratch
// buffer without a per-call allocation.
func (ib *Inbox) LenTags(tags []Tag) int {
	ib.absorb()
	n := 0
	for _, tag := range tags {
		if q := ib.heapFor(tag); q != nil {
			n += len(*q)
		}
	}
	return n
}

// MaxDepth returns the historical maximum of merged packets, measured
// after each absorb pass. Owning rank or post-run only.
func (ib *Inbox) MaxDepth() int { return ib.maxDepth }

// WakeStats returns push accounting: how many pushes the inbox has
// seen, how many signalled a parked receiver, and how many elided the
// signal because nobody was waiting. pushes == wakeups + suppressed.
// Exact when producers are quiescent (post-run accounting).
func (ib *Inbox) WakeStats() (pushes, wakeups, suppressed uint64) {
	pushes = ib.pushCount()
	wakeups = ib.wakeups.Load()
	return pushes, wakeups, pushes - wakeups
}

// SpinParkStats returns how many blocking receives were satisfied while
// spinning versus how many parked on the wake channel. Owning rank or
// post-run only.
func (ib *Inbox) SpinParkStats() (spinHits, parks uint64) {
	return ib.spinHits, ib.parks
}

// ringOccupancy reports one channel's unabsorbed ring and overflow
// counts; machine.Rank keys the channel by source. Test/debug helper.
func (ib *Inbox) ringOccupancy(src machine.Rank) (ring, overflow int) {
	if ib.srings != nil {
		ib.srMu.RLock()
		r := ib.srings[src]
		ib.srMu.RUnlock()
		if r == nil {
			return 0, 0
		}
		return int(r.tail.Load() - r.head.Load()), int(r.ofPushed.Load() - r.ofTaken)
	}
	r := &ib.rings[src]
	return int(r.tail.Load() - r.head.Load()), int(r.ofPushed.Load() - r.ofTaken)
}
