package transport

import (
	"container/heap"
	"sync"
)

// packetHeap orders packets by virtual arrival time, breaking ties with
// the global push sequence so ordering is stable.
type packetHeap []*Packet

func (h packetHeap) Len() int { return len(h) }
func (h packetHeap) Less(i, j int) bool {
	if h[i].Arrive != h[j].Arrive {
		return h[i].Arrive < h[j].Arrive
	}
	return h[i].seq < h[j].seq
}
func (h packetHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *packetHeap) Push(x interface{}) { *h = append(*h, x.(*Packet)) }
func (h *packetHeap) Pop() interface{} {
	old := *h
	n := len(old)
	p := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return p
}

// Inbox is a rank's receive queue: per-tag min-heaps on virtual arrival,
// guarded by one mutex, with a condition variable for blocking receives.
// Senders of any rank may push concurrently; only the owning rank pops.
type Inbox struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queues map[Tag]*packetHeap
	// freeHeaps retires emptied per-tag queues for reuse. Round-matched
	// exchanges mint a fresh tag every round; without recycling, queues
	// would grow the map and allocate a heap header per round forever.
	freeHeaps []*packetHeap
	seq       uint64
	pops      uint64
	depth     int
	// wakeups counts pushes that found the owning rank parked and
	// signalled it; suppressed counts pushes that skipped the signal
	// because nobody was waiting. Their sum is the push count.
	wakeups    uint64
	suppressed uint64
	// maxDepth tracks the high-water mark of queued packets, a proxy for
	// the receive-side memory pressure the mailbox capacity bounds.
	maxDepth int
	// waiting/waitTag expose whether the owning rank is parked inside
	// WaitPop, and on which tag — the deadlock watchdog's blocked signal.
	waiting bool
	waitTag Tag
	// poisoned is set by the deadlock watchdog once every active rank is
	// blocked; it makes WaitPop return nil so blocked ranks can unwind
	// and report their state instead of hanging forever.
	poisoned bool
}

// NewInbox returns an empty inbox.
func NewInbox() *Inbox {
	ib := &Inbox{queues: make(map[Tag]*packetHeap)}
	ib.cond = sync.NewCond(&ib.mu)
	return ib
}

// Push enqueues p and wakes the blocked receiver if one is parked. The
// waiting flag is only ever set under ib.mu by WaitPop (which re-checks
// the queue before parking), so observing it under the same lock here
// makes the signal-elision safe: a receiver either sees this packet on
// its pre-park check or has already published waiting=true. The owning
// rank is the only cond waiter in normal operation, so Signal suffices;
// poison keeps Broadcast for the shutdown path.
func (ib *Inbox) Push(p *Packet) {
	ib.mu.Lock()
	p.seq = ib.seq
	ib.seq++
	q, ok := ib.queues[p.Tag]
	if !ok {
		if n := len(ib.freeHeaps); n > 0 {
			q = ib.freeHeaps[n-1]
			ib.freeHeaps[n-1] = nil
			ib.freeHeaps = ib.freeHeaps[:n-1]
		} else {
			q = &packetHeap{}
		}
		ib.queues[p.Tag] = q
	}
	heap.Push(q, p)
	ib.depth++
	if ib.depth > ib.maxDepth {
		ib.maxDepth = ib.depth
	}
	wake := ib.waiting
	if wake {
		ib.wakeups++
	} else {
		ib.suppressed++
	}
	ib.verify(p.Tag)
	ib.mu.Unlock()
	if wake {
		ib.cond.Signal()
	}
}

// WaitPop blocks until a packet with the given tag is present, then
// removes and returns the one with the earliest virtual arrival. It
// returns nil only after the inbox has been poisoned by the deadlock
// watchdog; Proc.Recv turns that into a per-rank state dump.
func (ib *Inbox) WaitPop(tag Tag) *Packet {
	ib.mu.Lock()
	defer ib.mu.Unlock()
	for {
		if q, ok := ib.queues[tag]; ok && q.Len() > 0 {
			p := ib.popLocked(tag, q)
			return p
		}
		if ib.poisoned {
			return nil
		}
		ib.waiting = true
		ib.waitTag = tag
		ib.cond.Wait()
		ib.waiting = false
	}
}

// TryPop removes and returns the earliest-arrival packet with the given
// tag, or nil if none is physically present. It ignores virtual time:
// callers that are already waiting (mailbox drains) use it and then
// fast-forward their clock to the packet's arrival.
func (ib *Inbox) TryPop(tag Tag) *Packet {
	ib.mu.Lock()
	defer ib.mu.Unlock()
	if q, ok := ib.queues[tag]; ok && q.Len() > 0 {
		return ib.popLocked(tag, q)
	}
	return nil
}

// TryPopArrived removes and returns the earliest packet with the given
// tag whose virtual arrival is at or before now. It returns nil if the
// queue is empty or the earliest packet is still in virtual flight —
// polling never makes a rank wait.
func (ib *Inbox) TryPopArrived(tag Tag, now float64) *Packet {
	ib.mu.Lock()
	defer ib.mu.Unlock()
	q, ok := ib.queues[tag]
	if !ok || q.Len() == 0 || (*q)[0].Arrive > now {
		return nil
	}
	return ib.popLocked(tag, q)
}

// popLocked removes the heap minimum under tag, maintaining depth/pop
// accounting and retiring the queue to the free list when it empties.
// Caller holds ib.mu and guarantees q is tag's non-empty queue.
func (ib *Inbox) popLocked(tag Tag, q *packetHeap) *Packet {
	ib.depth--
	ib.pops++
	p := heap.Pop(q).(*Packet)
	ib.verify(tag)
	if q.Len() == 0 {
		ib.releaseEmpty(tag, q)
	}
	return p
}

// releaseEmpty unmaps tag's emptied queue and keeps a few around for
// reuse by Push. Caller holds ib.mu.
func (ib *Inbox) releaseEmpty(tag Tag, q *packetHeap) {
	delete(ib.queues, tag)
	if len(ib.freeHeaps) < 8 {
		ib.freeHeaps = append(ib.freeHeaps, q)
	}
}

// DrainInto removes every physically present packet under tag, appending
// them to dst in virtual-arrival order, under a single lock acquisition.
// It ignores virtual time, like TryPop; callers absorb each packet as
// they consume it.
func (ib *Inbox) DrainInto(tag Tag, dst []*Packet) []*Packet {
	ib.mu.Lock()
	defer ib.mu.Unlock()
	q, ok := ib.queues[tag]
	if !ok || q.Len() == 0 {
		return dst
	}
	for q.Len() > 0 {
		ib.depth--
		ib.pops++
		dst = append(dst, heap.Pop(q).(*Packet))
	}
	ib.verify(tag)
	ib.releaseEmpty(tag, q)
	return dst
}

// progress returns a counter that increases with every push and pop —
// the watchdog's signal that the run is still moving. blocked reports
// whether the owning rank is parked in WaitPop, and on which tag.
func (ib *Inbox) progress() (count uint64, blocked bool, tag Tag) {
	ib.mu.Lock()
	defer ib.mu.Unlock()
	return ib.seq + ib.pops, ib.waiting, ib.waitTag
}

// poison wakes a blocked receiver and makes all future WaitPop calls
// return nil. Called by the deadlock watchdog only.
func (ib *Inbox) poison() {
	ib.mu.Lock()
	ib.poisoned = true
	ib.mu.Unlock()
	ib.cond.Broadcast()
}

// Len returns the number of packets currently queued across all tags.
func (ib *Inbox) Len() int {
	ib.mu.Lock()
	defer ib.mu.Unlock()
	return ib.depth
}

// LenTag returns the number of packets queued under one tag.
func (ib *Inbox) LenTag(tag Tag) int {
	ib.mu.Lock()
	defer ib.mu.Unlock()
	if q, ok := ib.queues[tag]; ok {
		return q.Len()
	}
	return 0
}

// MaxDepth returns the historical maximum of queued packets.
func (ib *Inbox) MaxDepth() int {
	ib.mu.Lock()
	defer ib.mu.Unlock()
	return ib.maxDepth
}

// WakeStats returns push accounting: how many pushes the inbox has seen,
// how many signalled a parked receiver, and how many elided the signal
// because nobody was waiting. pushes == wakeups + suppressed.
func (ib *Inbox) WakeStats() (pushes, wakeups, suppressed uint64) {
	ib.mu.Lock()
	defer ib.mu.Unlock()
	return ib.wakeups + ib.suppressed, ib.wakeups, ib.suppressed
}
