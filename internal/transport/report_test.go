package transport

import (
	"math"
	"testing"

	"ygm/internal/machine"
	"ygm/internal/netsim"
	"ygm/internal/obs"
)

// TestReportUtilization checks the aggregate-utilization arithmetic on
// hand-built reports: busy time over world-size x makespan, with the
// zero-makespan edge defined as fully utilized.
func TestReportUtilization(t *testing.T) {
	r := &Report{Ranks: []RankReport{
		{Rank: 0, Time: 10, Busy: 10},
		{Rank: 1, Time: 8, Busy: 5},
	}}
	// makespan 10, total busy 15, 2 ranks: 15 / 20.
	if got, want := r.Utilization(), 0.75; math.Abs(got-want) > 1e-12 {
		t.Fatalf("Utilization() = %g, want %g", got, want)
	}

	empty := &Report{Ranks: []RankReport{{Rank: 0}}}
	if got := empty.Utilization(); got != 1 {
		t.Fatalf("zero-makespan Utilization() = %g, want 1", got)
	}
}

// TestReportUtilizationFromRun sanity-checks the same quantity on a real
// run: utilization must land in (0, 1] and ranks that compute equally
// should sit near full utilization.
func TestReportUtilizationFromRun(t *testing.T) {
	rep, err := Run(Config{
		Topo:  machine.New(1, 2),
		Model: netsim.Quartz(),
		Seed:  2,
	}, func(p *Proc) error {
		p.Compute(1e-3)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	u := rep.Utilization()
	if u <= 0 || u > 1 {
		t.Fatalf("Utilization() = %g, want in (0, 1]", u)
	}
	if u < 0.9 {
		t.Fatalf("equal-compute ranks utilize %g, want near 1", u)
	}
}

// TestReportMaxInboxDepth checks both the hand-built maximum and that a
// real burst run surfaces a sensible high-water mark.
func TestReportMaxInboxDepth(t *testing.T) {
	r := &Report{Ranks: []RankReport{
		{Rank: 0, MaxInboxDepth: 3},
		{Rank: 1, MaxInboxDepth: 17},
		{Rank: 2, MaxInboxDepth: 5},
	}}
	if got := r.MaxInboxDepth(); got != 17 {
		t.Fatalf("MaxInboxDepth() = %d, want 17", got)
	}
	if got := (&Report{}).MaxInboxDepth(); got != 0 {
		t.Fatalf("empty report MaxInboxDepth() = %d, want 0", got)
	}
}

func TestReportMaxInboxDepthFromRun(t *testing.T) {
	const msgs = 16
	rep, err := Run(Config{
		Topo:  machine.New(1, 2),
		Model: netsim.Quartz(),
		Seed:  2,
	}, func(p *Proc) error {
		if p.Rank() == 0 {
			for i := 0; i < msgs; i++ {
				p.Send(1, TagUser, []byte("m"))
			}
			return nil
		}
		for i := 0; i < msgs; i++ {
			p.Recycle(p.Recv(TagUser))
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	got := rep.MaxInboxDepth()
	if got < 1 || got > msgs {
		t.Fatalf("MaxInboxDepth() = %d, want in [1, %d]", got, msgs)
	}
	// The report's maximum must agree with the per-run inbox gauge.
	if g, ok := rep.Metrics().Gauges["inbox.max_depth"]; !ok || int(g.Max) != got {
		t.Fatalf("inbox.max_depth gauge %+v disagrees with MaxInboxDepth() = %d", g, got)
	}
}

// TestReportMetricsMergesRanks checks that Report.Metrics is a true
// merge: counters add across ranks, gauges keep the largest high-water
// mark, and histograms sum bucket-wise.
func TestReportMetricsMergesRanks(t *testing.T) {
	mk := func(c uint64, gmax float64, hv uint64) obs.Snapshot {
		reg := obs.NewRegistry()
		reg.Counter("c").Add(c)
		reg.Gauge("g").Set(gmax)
		reg.Histogram("h").Observe(hv)
		return reg.Snapshot()
	}
	r := &Report{Ranks: []RankReport{
		{Rank: 0, Metrics: mk(3, 10, 1)},
		{Rank: 1, Metrics: mk(4, 25, 1)},
		{Rank: 2, Metrics: mk(5, 7, 4)},
	}}
	m := r.Metrics()
	if got := m.Counter("c"); got != 12 {
		t.Fatalf("merged counter = %d, want 12", got)
	}
	if g := m.Gauges["g"]; g.Max != 25 {
		t.Fatalf("merged gauge max = %g, want 25", g.Max)
	}
	h := m.Hists["h"]
	if h.Count != 3 || h.Sum != 6 {
		t.Fatalf("merged hist count=%d sum=%d, want 3/6", h.Count, h.Sum)
	}
	// Two observations of 1 land in bucket 1, one of 4 in bucket 3.
	if h.Buckets[1] != 2 || h.Buckets[3] != 1 {
		t.Fatalf("merged hist buckets = %v", h.Buckets)
	}
}

// TestReportMetricsFromRunIncludeBuiltins verifies the built-in metric
// names the transport registers appear in a real run's merged snapshot
// and balance against the traffic the run generated.
func TestReportMetricsFromRunIncludeBuiltins(t *testing.T) {
	const msgs = 8
	rep, err := Run(Config{
		Topo:  machine.New(2, 1),
		Model: netsim.Quartz(),
		Seed:  2,
	}, func(p *Proc) error {
		if p.Rank() == 0 {
			for i := 0; i < msgs; i++ {
				p.Send(1, TagUser, []byte("0123456789abcdef"))
			}
			return nil
		}
		for i := 0; i < msgs; i++ {
			p.Recycle(p.Recv(TagUser))
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	m := rep.Metrics()
	h, ok := m.Hists["transport.msg_size.remote"]
	if !ok || h.Count != msgs {
		t.Fatalf("remote size histogram %+v, want %d observations", h, msgs)
	}
	if h.Sum != msgs*16 {
		t.Fatalf("remote size histogram sum = %d, want %d", h.Sum, msgs*16)
	}
	if m.Counter("inbox.pushes") != msgs {
		t.Fatalf("inbox.pushes = %d, want %d", m.Counter("inbox.pushes"), msgs)
	}
}
