package transport

import (
	"time"

	"ygm/internal/machine"
	"ygm/internal/netsim"
)

// ConfigOption adjusts one field of a Config under construction; see
// NewConfig.
type ConfigOption func(*Config)

// NewConfig assembles a run Config for topo from functional options —
// the front door used by the benches, the fuzz harness, the commands,
// and the examples. The Config struct's fields remain exported as the
// documented escape hatch (tests that poke many fields at once read
// better as literals), but new call sites should prefer this
// constructor: it keeps field spelling in one place and makes the
// common case (`NewConfig(topo, WithSeed(s))`) a one-liner.
func NewConfig(topo machine.Topology, opts ...ConfigOption) Config {
	cfg := Config{Topo: topo}
	for _, o := range opts {
		o(&cfg)
	}
	return cfg
}

// WithModel selects the netsim cost model (ignored by real-time wires;
// the zero value defaults to netsim.Quartz()).
func WithModel(m netsim.Model) ConfigOption {
	return func(c *Config) { c.Model = m }
}

// WithSeed seeds the deterministic per-rank random sources.
func WithSeed(seed int64) ConfigOption {
	return func(c *Config) { c.Seed = seed }
}

// WithTrace attaches a Tracer to every packet send and receive event.
func WithTrace(t Tracer) ConfigOption {
	return func(c *Config) { c.Trace = t }
}

// WithDelay installs a virtual flight-time injector (simulated wires
// only; see Config.Delay).
func WithDelay(d DelayFn) ConfigOption {
	return func(c *Config) { c.Delay = d }
}

// WithWire selects the transport backend; nil (the default) is the
// virtual-time SimWire. See the Wire interface and DESIGN.md §13.
func WithWire(w Wire) ConfigOption {
	return func(c *Config) { c.Wire = w }
}

// WithWatchdogInterval sets the deadlock watchdog's polling cadence
// (negative disables it; see Config.WatchdogInterval).
func WithWatchdogInterval(d time.Duration) ConfigOption {
	return func(c *Config) { c.WatchdogInterval = d }
}

// WithTrackPartners enables per-destination send counters.
func WithTrackPartners() ConfigOption {
	return func(c *Config) { c.TrackPartners = true }
}

// WithComputeScale installs a per-rank straggler multiplier (simulated
// wires only; see Config.ComputeScale).
func WithComputeScale(f func(machine.Rank) float64) ConfigOption {
	return func(c *Config) { c.ComputeScale = f }
}

// WithFlightRecorder sizes each rank's diagnostic event ring (negative
// disables it; see Config.FlightRecorder).
func WithFlightRecorder(n int) ConfigOption {
	return func(c *Config) { c.FlightRecorder = n }
}

// WithWorkers selects the execution model: a positive n forces the M:N
// rank scheduler with n worker tokens, -1 forces the direct
// goroutine-per-rank model, and 0 (the default) picks automatically by
// world size (see Config.Workers and DESIGN.md §15).
func WithWorkers(n int) ConfigOption {
	return func(c *Config) { c.Workers = n }
}
