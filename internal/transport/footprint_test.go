package transport

import (
	"runtime"
	"testing"

	"ygm/internal/machine"
)

// TestInboxLayoutThresholds pins which structural regime each world
// size lands in: the preallocated dense layout (with the world²
// single-slab optimization up to ringSlabWorlds) below denseWorlds, the
// lazy sparse layout above it. The small-world fast paths must stay
// exactly as they were before sparse inboxes existed.
func TestInboxLayoutThresholds(t *testing.T) {
	for _, tc := range []struct {
		size   int
		sparse bool
	}{
		{1, false},
		{ringSlabWorlds, false},
		{ringSlabWorlds + 1, false},
		{denseWorlds, false},
		{denseWorlds + 1, true},
		{512, true},
	} {
		ibs := buildInboxes(tc.size)
		if len(ibs) != tc.size {
			t.Fatalf("size %d: got %d inboxes", tc.size, len(ibs))
		}
		for i, ib := range ibs {
			gotSparse := ib.srings != nil
			if gotSparse != tc.sparse {
				t.Fatalf("size %d rank %d: sparse=%v, want %v", tc.size, i, gotSparse, tc.sparse)
			}
			if tc.sparse {
				if ib.rings != nil || ib.active != nil {
					t.Fatalf("size %d rank %d: sparse inbox still carries dense rings/bitmap", tc.size, i)
				}
			} else {
				if len(ib.rings) != tc.size {
					t.Fatalf("size %d rank %d: %d dense rings, want %d", tc.size, i, len(ib.rings), tc.size)
				}
				if wantWords := (tc.size + 63) / 64; len(ib.active) != wantWords {
					t.Fatalf("size %d rank %d: %d bitmap words, want %d", tc.size, i, len(ib.active), wantWords)
				}
			}
		}
	}
}

// idleWorldBudget is the memory ceiling for building every inbox of a
// 16k-rank world that has not exchanged a single message. The dense
// layout would need 16384² rings (≥ 14 GiB at 56 bytes each); the
// sparse layout must stay within a fixed few-megabyte budget because it
// allocates per-rank bookkeeping only — rings materialize per active
// src→dst edge on first use.
const idleWorldBudget = 32 << 20

// TestSparseWorldIdleFootprint measures the allocation cost of a 16k
// idle world and fails if it regresses past the fixed budget — the
// guard that keeps "create a huge world" O(P), not O(P²).
func TestSparseWorldIdleFootprint(t *testing.T) {
	const world = 16384
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	ibs := buildInboxes(world)
	runtime.ReadMemStats(&after)
	alloc := after.TotalAlloc - before.TotalAlloc
	runtime.KeepAlive(ibs)
	t.Logf("buildInboxes(%d) allocated %.2f MiB", world, float64(alloc)/(1<<20))
	if alloc > idleWorldBudget {
		t.Fatalf("idle %d-rank world allocated %d bytes, budget %d", world, alloc, idleWorldBudget)
	}
}

// TestSparseRingMaterialization checks rings appear only for edges that
// actually carried traffic, and that a materialized edge's overflow and
// reuse behave like the dense path's.
func TestSparseRingMaterialization(t *testing.T) {
	const world = denseWorlds + 1
	ibs := buildInboxes(world)
	ib := ibs[0]
	// Push well past ringCap from two sources; everything must drain
	// with only those two edges materialized.
	const perSrc = ringCap + 17
	for i := 0; i < perSrc; i++ {
		for _, src := range []machine.Rank{7, 200} {
			ib.Push(&Packet{Src: src, Tag: TagUser, Arrive: float64(i), Payload: []byte{byte(src)}})
		}
	}
	ib.srMu.RLock()
	live := len(ib.srings)
	ib.srMu.RUnlock()
	if live != 2 {
		t.Fatalf("%d rings materialized, want 2 (two srcs pushed)", live)
	}
	got := 0
	for ib.TryPop(TagUser) != nil {
		got++
	}
	if got != 2*perSrc {
		t.Fatalf("drained %d packets, want %d", got, 2*perSrc)
	}
}
