//go:build ygmcheck

package transport

import (
	"strings"
	"testing"
)

// Fixtures for the ygmcheck ring audit (`go test -tags ygmcheck`).
// Default-build tests prove packets come out correctly; these prove the
// assertion layer itself — that a legitimate overflow-heavy workload
// passes the per-channel sequence audit with the opt-in monotone-clock
// check armed, and that the audit actually fires on a seeded sequence
// gap and on a seeded clock regression. An assertion that cannot fail
// verifies nothing.

// mustCheckPanic runs fn and requires it to panic with a ygmcheck
// message containing substr.
func mustCheckPanic(t *testing.T, substr string, fn func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("expected ygmcheck panic containing %q, got none", substr)
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, substr) {
			t.Fatalf("panic %v does not contain %q", r, substr)
		}
	}()
	fn()
}

// TestCheckRingOverflowFixture drives one channel through repeated
// ring-overflow cycles with checkMonotone armed: every absorb pass runs
// the gap-free sequence audit plus the arrival-clock check, and the
// fixture's strictly increasing arrivals must satisfy both. Three
// bursts make the overflow scratch-array rotation turn over at least
// twice.
func TestCheckRingOverflowFixture(t *testing.T) {
	const burst = ringCap*2 + 3 // ring full + overflow engaged every burst
	ib := NewInbox(1)
	ib.checkMonotone = true
	arrive := 0.0
	for cycle := 0; cycle < 3; cycle++ {
		for i := 0; i < burst; i++ {
			arrive++
			ib.Push(&Packet{Tag: TagUser, Arrive: arrive})
		}
		ring, overflow := ib.ringOccupancy(0)
		if ring != ringCap || overflow != burst-ringCap {
			t.Fatalf("cycle %d: ring=%d overflow=%d, want %d/%d", cycle, ring, overflow, ringCap, burst-ringCap)
		}
		for i := 0; i < burst; i++ {
			if p := ib.TryPop(TagUser); p == nil {
				t.Fatalf("cycle %d: lost packet %d", cycle, i)
			}
		}
		if ib.TryPop(TagUser) != nil {
			t.Fatalf("cycle %d: duplicate packet", cycle)
		}
	}
	if c, ok := ib.checkRings[&ib.rings[0]]; !ok || c.seq != 3*burst {
		t.Fatalf("audit state did not track the channel sequence: %+v", c)
	}
}

// TestCheckDetectsSequenceGap seeds a lost packet by advancing the
// producer-side channel sequence without publishing a packet for it.
// The next absorb pass must fail the gap-free audit — the check that
// turns a silently dropped packet into a loud panic.
func TestCheckDetectsSequenceGap(t *testing.T) {
	ib := NewInbox(1)
	ib.Push(&Packet{Tag: TagUser, Arrive: 1})
	ib.rings[0].seq++ // the packet that should have carried seq 1 is never pushed
	ib.Push(&Packet{Tag: TagUser, Arrive: 2})
	mustCheckPanic(t, "sequence gap", func() { ib.TryPop(TagUser) })
}

// TestCheckDetectsArrivalRegression arms checkMonotone and feeds a
// channel an arrival clock that runs backwards across two absorb
// passes. The audit must reject it; without the opt-in flag the same
// traffic must pass (variable-size traffic may legitimately reorder
// arrivals, which is why the clock check is fixture-only).
func TestCheckDetectsArrivalRegression(t *testing.T) {
	ib := NewInbox(1)
	ib.checkMonotone = true
	ib.Push(&Packet{Tag: TagUser, Arrive: 5})
	if p := ib.TryPop(TagUser); p == nil || p.Arrive != 5 {
		t.Fatalf("first pop = %v", p)
	}
	ib.Push(&Packet{Tag: TagUser, Arrive: 1}) // later seq, earlier clock
	mustCheckPanic(t, "arrival clock ran backwards", func() { ib.TryPop(TagUser) })

	relaxed := NewInbox(1)
	relaxed.Push(&Packet{Tag: TagUser, Arrive: 5})
	if p := relaxed.TryPop(TagUser); p == nil {
		t.Fatal("lost packet")
	}
	relaxed.Push(&Packet{Tag: TagUser, Arrive: 1})
	if p := relaxed.TryPop(TagUser); p == nil || p.Arrive != 1 {
		t.Fatalf("relaxed inbox rejected legitimate out-of-clock traffic: %v", p)
	}
}
