//go:build ygmcheck

package transport

import (
	"testing"

	"ygm/internal/machine"
)

// Fixtures for the ygmcheck scheduler audits (`go test -tags
// ygmcheck`). The scheduler's correctness rests on three structural
// invariants — no rank queued twice, worker tokens conserved, no ready
// rank stranded while tokens sit free — and on the one-ready-per-park
// protocol. These fixtures seed a violation of each and require the
// audit layer to panic, proving the assertions can actually fire.

// TestCheckSchedCleanRunPasses drives a real scheduled world under the
// full audit layer: the positive control showing the invariants hold on
// legitimate traffic, so the negative fixtures below are measuring the
// checks and not workload noise.
func TestCheckSchedCleanRunPasses(t *testing.T) {
	cfg := NewConfig(machine.New(4, 2), WithWorkers(2))
	rep, err := Run(cfg, func(p *Proc) error {
		treeBarrier(p, TagUser)
		return nil
	})
	if err != nil {
		t.Fatalf("audited scheduled run failed: %v", err)
	}
	if rep.Metrics().Counter("sched.dispatches") == 0 {
		t.Fatal("scheduler never dispatched — audit exercised nothing")
	}
}

// TestCheckSchedDoubleEnqueuePanics seeds the bug the inQueue audit
// exists for: placing a rank on the run queue while it is already
// queued (which would eventually double-grant its gate).
func TestCheckSchedDoubleEnqueuePanics(t *testing.T) {
	s := newScheduler(8, 1)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.enqueueLocked(3)
	mustCheckPanic(t, "rank 3 enqueued while already queued", func() {
		s.enqueueLocked(3)
	})
}

// TestCheckSchedExitedEnqueuePanics: a rank whose body returned must
// never reappear on the run queue.
func TestCheckSchedExitedEnqueuePanics(t *testing.T) {
	s := newScheduler(8, 1)
	s.state[4] = rsExited
	s.mu.Lock()
	defer s.mu.Unlock()
	mustCheckPanic(t, "exited rank 4 enqueued", func() {
		s.enqueueLocked(4)
	})
}

// TestCheckSchedTokenConservationPanics corrupts the free-token count
// so avail+busy no longer equals the worker total — the state a
// double-release or minted grant would leave behind.
func TestCheckSchedTokenConservationPanics(t *testing.T) {
	s := newScheduler(8, 2)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.avail = 5
	mustCheckPanic(t, "token conservation violated", func() {
		s.checkSchedTokens()
	})
}

// TestCheckSchedNegativeTokenPanics: token counts must never go
// negative (an avail-- without the matching guard).
func TestCheckSchedNegativeTokenPanics(t *testing.T) {
	s := newScheduler(8, 2)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.avail = -1
	s.busy = 3
	mustCheckPanic(t, "negative token count", func() {
		s.checkSchedTokens()
	})
}

// TestCheckSchedStrandedRankPanics seeds the lost-dispatch state: a
// rank sitting on the run queue while worker tokens sit free. A correct
// scheduler never leaves this window observable (every enqueue path
// either consumed the last token or hands off), so the audit treats it
// as a hard failure rather than latency.
func TestCheckSchedStrandedRankPanics(t *testing.T) {
	s := newScheduler(8, 2) // both tokens free
	s.mu.Lock()
	defer s.mu.Unlock()
	s.enqueueLocked(3)
	mustCheckPanic(t, "stranded on the run queue", func() {
		s.checkSchedTokens()
	})
}

// TestCheckSchedQueueAccountingPanics desyncs the cached run-queue
// length from the shards' actual contents.
func TestCheckSchedQueueAccountingPanics(t *testing.T) {
	s := newScheduler(8, 1)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.avail = 0
	s.busy = 1
	s.enqueueLocked(3)
	s.queued++ // cached counter now claims an entry the shards don't hold
	mustCheckPanic(t, "run-queue accounting out of balance", func() {
		s.checkSchedTokens()
	})
}

// TestCheckSchedDoubleReadyPanics seeds two wakes for one park episode:
// ready() on a rank already in the queued state. The pstate CAS
// protocol makes this unreachable; the audit turns a protocol breach
// into a panic instead of a silently buffered extra wake.
func TestCheckSchedDoubleReadyPanics(t *testing.T) {
	s := newScheduler(8, 2)
	s.state[5] = rsQueued
	mustCheckPanic(t, "double ready for queued rank 5", func() {
		s.ready(5)
	})
}
