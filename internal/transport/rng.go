package transport

// rngSource is the per-rank deterministic random source: splitmix64,
// seeded in O(1). The stdlib's default source burns ~600 feedback-table
// iterations (and ~5KB) per seeding, which dominated world construction
// for short simulated runs — every rank of every Run seeds one source.
// splitmix64 passes BigCrush, is a single add + three xor-multiply
// rounds per draw, and keeps the determinism contract: equal seeds give
// equal streams.
type rngSource struct {
	state uint64
}

func newRngSource(seed int64) *rngSource {
	return &rngSource{state: uint64(seed)}
}

// Uint64 advances the splitmix64 stream (Steele, Lea & Flood's
// finalizer constants).
func (s *rngSource) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (s *rngSource) Int63() int64 {
	return int64(s.Uint64() >> 1)
}

func (s *rngSource) Seed(seed int64) {
	s.state = uint64(seed)
}
