//go:build !ygmcheck

package transport

// ygmcheckEnabled reports whether the runtime invariant layer is compiled
// in. This is the default build: all checks compile to no-ops.
const ygmcheckEnabled = false

func checkf(bool, string, ...any) {}

func (ib *Inbox) verify(Tag) {}

func (p *Proc) checkClockMonotone() {}
