//go:build !ygmcheck

package transport

import "ygm/internal/machine"

// ygmcheckEnabled reports whether the runtime invariant layer is compiled
// in. This is the default build: all checks compile to no-ops.
const ygmcheckEnabled = false

func checkf(bool, string, ...any) {}

func (ib *Inbox) verify(Tag) {}

func (ib *Inbox) checkRingBounds(*inboxRing, uint64, uint64) {}

func (ib *Inbox) checkAbsorbed(*inboxRing, *Packet) {}

func (ib *Inbox) checkRingFlush(*inboxRing) {}

func (p *Proc) checkClockMonotone() {}

func (s *scheduler) checkSchedEnqueue(machine.Rank) {}

func (s *scheduler) checkSchedDequeue(machine.Rank) {}

func (s *scheduler) checkSchedTokens() {}

func (s *scheduler) checkSchedDoubleReady(machine.Rank) {}
