//go:build !ygmcheck

package transport

// ygmcheckEnabled reports whether the runtime invariant layer is compiled
// in. This is the default build: all checks compile to no-ops.
const ygmcheckEnabled = false

func checkf(bool, string, ...any) {}

func (ib *Inbox) verify(Tag) {}

func (ib *Inbox) checkRingBounds(*inboxRing, uint64, uint64) {}

func (ib *Inbox) checkAbsorbed(*inboxRing, *Packet) {}

func (ib *Inbox) checkRingFlush(*inboxRing) {}

func (p *Proc) checkClockMonotone() {}
