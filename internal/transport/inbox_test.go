package transport

import (
	"math/rand"
	"sync"
	"testing"

	"ygm/internal/machine"
)

func TestInboxPushPopOrder(t *testing.T) {
	ib := NewInbox(1)
	// Push arrivals out of order; pops must come back sorted.
	for _, a := range []float64{5, 1, 3, 2, 4} {
		ib.Push(&Packet{Tag: TagUser, Arrive: a})
	}
	prev := 0.0
	for i := 0; i < 5; i++ {
		p := ib.TryPop(TagUser)
		if p == nil {
			t.Fatal("missing packet")
		}
		if p.Arrive < prev {
			t.Fatalf("out of order: %g after %g", p.Arrive, prev)
		}
		prev = p.Arrive
	}
	if ib.TryPop(TagUser) != nil {
		t.Fatal("empty inbox should pop nil")
	}
}

func TestInboxEqualArrivalIsFIFO(t *testing.T) {
	ib := NewInbox(1)
	for i := 0; i < 10; i++ {
		ib.Push(&Packet{Tag: TagUser, Arrive: 1.0, Payload: []byte{byte(i)}})
	}
	for i := 0; i < 10; i++ {
		p := ib.TryPop(TagUser)
		if int(p.Payload[0]) != i {
			t.Fatalf("tie-break not FIFO: got %d at position %d", p.Payload[0], i)
		}
	}
}

func TestInboxTagIsolation(t *testing.T) {
	ib := NewInbox(1)
	ib.Push(&Packet{Tag: TagUser, Arrive: 1})
	ib.Push(&Packet{Tag: TagData, Arrive: 2})
	if ib.LenTag(TagUser) != 1 || ib.LenTag(TagData) != 1 || ib.Len() != 2 {
		t.Fatal("tag bookkeeping wrong")
	}
	if p := ib.TryPop(TagData); p == nil || p.Arrive != 2 {
		t.Fatalf("TryPop(TagData) = %v", p)
	}
	if ib.LenTag(TagUser) != 1 {
		t.Fatal("popping one tag must not disturb another")
	}
	if ib.LenTag(Tag(999)) != 0 {
		t.Fatal("unknown tag should be empty")
	}
}

func TestInboxTryPopArrived(t *testing.T) {
	ib := NewInbox(1)
	ib.Push(&Packet{Tag: TagUser, Arrive: 10})
	if ib.TryPopArrived(TagUser, 5) != nil {
		t.Fatal("packet in virtual flight must not be polled")
	}
	if p := ib.TryPopArrived(TagUser, 10); p == nil {
		t.Fatal("packet at exactly now should be polled")
	}
}

func TestInboxWaitPopBlocks(t *testing.T) {
	ib := NewInbox(1)
	done := make(chan *Packet)
	go func() { done <- ib.WaitPop(TagUser) }()
	ib.Push(&Packet{Tag: TagUser, Arrive: 7})
	if p := <-done; p.Arrive != 7 {
		t.Fatalf("WaitPop = %v", p)
	}
}

// TestInboxConcurrentPushers exercises the SPSC contract at full width:
// one producer goroutine per source channel (the structural guarantee
// the transport provides — each rank is one goroutine), all bursting
// far past the ring capacity so every channel takes the overflow
// fallback, while Len/ordering/MaxDepth accounting must stay exact.
func TestInboxConcurrentPushers(t *testing.T) {
	const pushers, each = 8, 200
	ib := NewInbox(pushers)
	var wg sync.WaitGroup
	for i := 0; i < pushers; i++ {
		wg.Add(1)
		go func(src int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(src)))
			for j := 0; j < each; j++ {
				ib.Push(&Packet{Src: machine.Rank(src), Tag: TagUser, Arrive: rng.Float64()})
			}
		}(i)
	}
	wg.Wait()
	if ib.Len() != pushers*each {
		t.Fatalf("len = %d", ib.Len())
	}
	prev := -1.0
	for i := 0; i < pushers*each; i++ {
		p := ib.TryPop(TagUser)
		if p.Arrive < prev {
			t.Fatal("pops out of order after concurrent pushes")
		}
		prev = p.Arrive
	}
	if ib.MaxDepth() != pushers*each {
		t.Fatalf("max depth = %d", ib.MaxDepth())
	}
}

// TestInboxOverflowFallback pins the ring→overflow transition on one
// channel: pushes past ringCap must land in the overflow list (capacity
// stays unbounded), absorb must deliver ring and overflow contents
// gap-free, and the drained ring must be reusable afterwards.
func TestInboxOverflowFallback(t *testing.T) {
	const total = ringCap * 3
	ib := NewInbox(1)
	for i := 0; i < total; i++ {
		ib.Push(&Packet{Tag: TagUser, Arrive: float64(i)})
	}
	ring, overflow := ib.ringOccupancy(0)
	if ring != ringCap {
		t.Fatalf("ring occupancy = %d, want full ring %d", ring, ringCap)
	}
	if overflow != total-ringCap {
		t.Fatalf("overflow occupancy = %d, want %d", overflow, total-ringCap)
	}
	for i := 0; i < total; i++ {
		p := ib.TryPop(TagUser)
		if p == nil || p.Arrive != float64(i) {
			t.Fatalf("pop %d = %v, want arrive %d", i, p, i)
		}
	}
	// The drained channel must accept a fresh burst through the ring.
	ib.Push(&Packet{Tag: TagUser, Arrive: 1000})
	if ring, overflow = ib.ringOccupancy(0); ring != 1 || overflow != 0 {
		t.Fatalf("post-drain push landed ring=%d overflow=%d, want 1/0", ring, overflow)
	}
	if p := ib.TryPop(TagUser); p == nil || p.Arrive != 1000 {
		t.Fatalf("post-drain pop = %v", p)
	}
}
