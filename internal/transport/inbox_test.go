package transport

import (
	"math/rand"
	"sync"
	"testing"
)

func TestInboxPushPopOrder(t *testing.T) {
	ib := NewInbox()
	// Push arrivals out of order; pops must come back sorted.
	for _, a := range []float64{5, 1, 3, 2, 4} {
		ib.Push(&Packet{Tag: TagUser, Arrive: a})
	}
	prev := 0.0
	for i := 0; i < 5; i++ {
		p := ib.TryPop(TagUser)
		if p == nil {
			t.Fatal("missing packet")
		}
		if p.Arrive < prev {
			t.Fatalf("out of order: %g after %g", p.Arrive, prev)
		}
		prev = p.Arrive
	}
	if ib.TryPop(TagUser) != nil {
		t.Fatal("empty inbox should pop nil")
	}
}

func TestInboxEqualArrivalIsFIFO(t *testing.T) {
	ib := NewInbox()
	for i := 0; i < 10; i++ {
		ib.Push(&Packet{Tag: TagUser, Arrive: 1.0, Payload: []byte{byte(i)}})
	}
	for i := 0; i < 10; i++ {
		p := ib.TryPop(TagUser)
		if int(p.Payload[0]) != i {
			t.Fatalf("tie-break not FIFO: got %d at position %d", p.Payload[0], i)
		}
	}
}

func TestInboxTagIsolation(t *testing.T) {
	ib := NewInbox()
	ib.Push(&Packet{Tag: TagUser, Arrive: 1})
	ib.Push(&Packet{Tag: TagData, Arrive: 2})
	if ib.LenTag(TagUser) != 1 || ib.LenTag(TagData) != 1 || ib.Len() != 2 {
		t.Fatal("tag bookkeeping wrong")
	}
	if p := ib.TryPop(TagData); p == nil || p.Arrive != 2 {
		t.Fatalf("TryPop(TagData) = %v", p)
	}
	if ib.LenTag(TagUser) != 1 {
		t.Fatal("popping one tag must not disturb another")
	}
	if ib.LenTag(Tag(999)) != 0 {
		t.Fatal("unknown tag should be empty")
	}
}

func TestInboxTryPopArrived(t *testing.T) {
	ib := NewInbox()
	ib.Push(&Packet{Tag: TagUser, Arrive: 10})
	if ib.TryPopArrived(TagUser, 5) != nil {
		t.Fatal("packet in virtual flight must not be polled")
	}
	if p := ib.TryPopArrived(TagUser, 10); p == nil {
		t.Fatal("packet at exactly now should be polled")
	}
}

func TestInboxWaitPopBlocks(t *testing.T) {
	ib := NewInbox()
	done := make(chan *Packet)
	go func() { done <- ib.WaitPop(TagUser) }()
	ib.Push(&Packet{Tag: TagUser, Arrive: 7})
	if p := <-done; p.Arrive != 7 {
		t.Fatalf("WaitPop = %v", p)
	}
}

func TestInboxConcurrentPushers(t *testing.T) {
	ib := NewInbox()
	const pushers, each = 8, 200
	var wg sync.WaitGroup
	for i := 0; i < pushers; i++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for j := 0; j < each; j++ {
				ib.Push(&Packet{Tag: TagUser, Arrive: rng.Float64()})
			}
		}(int64(i))
	}
	wg.Wait()
	if ib.Len() != pushers*each {
		t.Fatalf("len = %d", ib.Len())
	}
	prev := -1.0
	for i := 0; i < pushers*each; i++ {
		p := ib.TryPop(TagUser)
		if p.Arrive < prev {
			t.Fatal("pops out of order after concurrent pushes")
		}
		prev = p.Arrive
	}
	if ib.MaxDepth() != pushers*each {
		t.Fatalf("max depth = %d", ib.MaxDepth())
	}
}
