package transport

import (
	"testing"
	"time"

	"ygm/internal/machine"
	"ygm/internal/netsim"
)

// TestPushNoWaiterElidesSignal is the regression test for the
// unconditional-broadcast bug: pushes with no parked receiver must not
// signal, and the wake accounting must say so.
func TestPushNoWaiterElidesSignal(t *testing.T) {
	ib := NewInbox(1)
	for i := 0; i < 5; i++ {
		ib.Push(&Packet{Tag: TagUser, Arrive: float64(i)})
	}
	pushes, wakeups, suppressed := ib.WakeStats()
	if pushes != 5 || wakeups != 0 || suppressed != 5 {
		t.Fatalf("pushes=%d wakeups=%d suppressed=%d, want 5/0/5", pushes, wakeups, suppressed)
	}
	for i := 0; i < 5; i++ {
		if ib.TryPop(TagUser) == nil {
			t.Fatal("packet lost despite elided signal")
		}
	}
}

// TestPushWakesParkedReceiver covers the other half of the contract: a
// receiver parked in WaitPop is signalled by the next push — the elision
// cannot turn into a missed wakeup — and the wake is counted.
func TestPushWakesParkedReceiver(t *testing.T) {
	ib := NewInbox(1)
	got := make(chan *Packet, 1)
	go func() { got <- ib.WaitPop(TagUser) }()
	// Wait until the receiver has published its parked state.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, waiting, _ := ib.progress(); waiting {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("receiver never parked")
		}
		time.Sleep(time.Millisecond)
	}
	ib.Push(&Packet{Tag: TagUser, Arrive: 1})
	select {
	case p := <-got:
		if p == nil {
			t.Fatal("WaitPop returned nil without poisoning")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("parked receiver never woke — missed wakeup")
	}
	_, wakeups, suppressed := ib.WakeStats()
	if wakeups != 1 || suppressed != 0 {
		t.Fatalf("wakeups=%d suppressed=%d, want 1/0", wakeups, suppressed)
	}
}

// TestInboxWakeMetricsShowElision verifies, through the run-level
// metrics, that signal elision actually engages under real traffic:
// packets pushed while the receiver is busy (not parked) land as
// suppressed signals, and the counters balance.
func TestInboxWakeMetricsShowElision(t *testing.T) {
	const msgs = 64
	report, err := Run(Config{
		Topo:  machine.New(1, 2),
		Model: netsim.Quartz(),
		Seed:  11,
	}, func(p *Proc) error {
		if p.Rank() == 0 {
			// Burst all sends first: the receiver is not parked for most
			// pushes, so they must be counted as suppressed.
			for i := 0; i < msgs; i++ {
				p.Send(1, TagUser, []byte("m"))
			}
			return nil
		}
		// Give the sender real time to finish its burst before parking.
		time.Sleep(50 * time.Millisecond) //ygmvet:ignore wallclock -- host-side test sequencing, not simulated-rank logic
		for i := 0; i < msgs; i++ {
			pkt := p.Recv(TagUser)
			p.Recycle(pkt)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	m := report.Metrics()
	pushes := m.Counter("inbox.pushes")
	wakeups := m.Counter("inbox.wakeups")
	suppressed := m.Counter("inbox.wakeups_suppressed")
	if pushes != msgs {
		t.Fatalf("inbox.pushes = %d, want %d", pushes, msgs)
	}
	if wakeups+suppressed != pushes {
		t.Fatalf("wakeups(%d) + suppressed(%d) != pushes(%d)", wakeups, suppressed, pushes)
	}
	if suppressed == 0 {
		t.Fatalf("no suppressed signals across a %d-message burst — elision never engaged", msgs)
	}
}
