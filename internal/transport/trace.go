package transport

import "ygm/internal/machine"

// Tracer observes every packet-level event of a run. It is the
// transport's test/diagnostic tap: the simulation-fuzz harness uses it
// to prove packet conservation (everything sent is eventually received)
// and to correlate schedules with oracle verdicts.
//
// A Tracer is shared by all rank goroutines and must be safe for
// concurrent use. The default (nil) path costs one predictable branch
// per event and allocates nothing; implementations must not retain the
// payload-backed state of a packet beyond the call.
type Tracer interface {
	// PacketSent fires on the sender's goroutine after the packet has
	// been charged and enqueued: sent is the sender's virtual clock at
	// the end of Send, arrive the packet's virtual arrival at dst.
	PacketSent(src, dst machine.Rank, tag Tag, size int, sent, arrive float64)
	// PacketReceived fires on the receiver's goroutine after a packet
	// has been popped and absorbed (Recv, Drain, or Poll): now is the
	// receiver's virtual clock after absorbing it.
	PacketReceived(src, dst machine.Rank, tag Tag, size int, now float64)
}

// SpanObserver is the optional extension of Tracer for the observability
// layer: a Tracer that also implements it receives virtual-time span
// boundaries and instant marks from every rank. Run type-asserts the
// Config.Trace value once; plain Tracers (the fuzz oracle) keep working
// unchanged, and the nil-Trace fast path is untouched.
//
// All methods fire on the goroutine of the rank named by their first
// argument, so implementations shared across ranks must lock.
type SpanObserver interface {
	// SpanBegin / SpanEnd bracket a named phase on one rank. Names are
	// drawn from a small fixed taxonomy (see DESIGN.md §9) and spans on
	// one rank nest properly: the most recently begun open span ends
	// first.
	SpanBegin(rank machine.Rank, name string, t float64)
	SpanEnd(rank machine.Rank, name string, t float64)
	// Mark records a labelled instant on one rank (termination
	// generation starts, flush causes), with an event-specific value.
	Mark(rank machine.Rank, name string, value uint64, t float64)
}

// DelayFn perturbs one packet's virtual flight time: the returned value
// (clamped to >= 0) is added to the model transfer time before the
// arrival timestamp is computed. It runs on the sender's goroutine, so
// per-source state needs no locking; implementations must be
// deterministic functions of their own seeded state for runs to stay
// reproducible. The simulation-fuzz harness uses it to jitter delivery
// schedules without touching delivery semantics.
type DelayFn func(src, dst machine.Rank, tag Tag, size int) float64
