package transport

import "ygm/internal/machine"

// Tracer observes every packet-level event of a run. It is the
// transport's test/diagnostic tap: the simulation-fuzz harness uses it
// to prove packet conservation (everything sent is eventually received)
// and to correlate schedules with oracle verdicts.
//
// A Tracer is shared by all rank goroutines and must be safe for
// concurrent use. The default (nil) path costs one predictable branch
// per event and allocates nothing; implementations must not retain the
// payload-backed state of a packet beyond the call.
type Tracer interface {
	// PacketSent fires on the sender's goroutine after the packet has
	// been charged and enqueued: sent is the sender's virtual clock at
	// the end of Send, arrive the packet's virtual arrival at dst.
	PacketSent(src, dst machine.Rank, tag Tag, size int, sent, arrive float64)
	// PacketReceived fires on the receiver's goroutine after a packet
	// has been popped and absorbed (Recv, Drain, or Poll): now is the
	// receiver's virtual clock after absorbing it.
	PacketReceived(src, dst machine.Rank, tag Tag, size int, now float64)
}

// DelayFn perturbs one packet's virtual flight time: the returned value
// (clamped to >= 0) is added to the model transfer time before the
// arrival timestamp is computed. It runs on the sender's goroutine, so
// per-source state needs no locking; implementations must be
// deterministic functions of their own seeded state for runs to stay
// reproducible. The simulation-fuzz harness uses it to jitter delivery
// schedules without touching delivery semantics.
type DelayFn func(src, dst machine.Rank, tag Tag, size int) float64
