package transport

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"ygm/internal/codec"
	"ygm/internal/machine"
)

// TCP wire protocol. Every connection (rendezvous and mesh alike) opens
// with a fixed preamble — magic, version — so a stray client or a
// version-skewed peer is rejected before any frame parsing. After the
// preamble the stream is a sequence of length-prefixed frames:
//
//	[u32 LE body length][body]
//
// where the body's first byte is the frame kind. Control-frame bodies
// (hello, roster, peer hello) are encoded with internal/codec — the same
// uvarint/string conventions as every persisted artifact in the repo —
// and validated field by field. Data frames keep the tag as a fixed u64
// so the reader can size one exact pooled-buffer read for the payload:
//
//	[u32 n][kindMsg][u64 LE tag][n-9 payload bytes]
//
// Arrival stamps are assigned on the RECEIVING host (reader goroutine,
// host clock) rather than carried in the frame: the inbox only needs
// stamps that are monotone per channel and never in the receiver's
// future, and re-stamping makes both hold by construction regardless of
// inter-process clock skew.
const (
	tcpMagic   uint32 = 0x59474d57 // "YGMW"
	tcpVersion byte   = 1

	kindHello     byte = 1 // client -> rank 0 on the rendezvous conn
	kindRoster    byte = 2 // rank 0 -> client: mesh addresses of every rank
	kindReady     byte = 3 // client -> rank 0: mesh established
	kindGo        byte = 4 // rank 0 -> client: every rank is ready, run
	kindPeerHello byte = 5 // mesh dialer -> listener: my rank
	kindMsg       byte = 6 // data packet
	kindGoodbye   byte = 7 // clean end-of-stream; EOF without it is a fault

	// tcpMaxFrame bounds one frame body; larger reads indicate stream
	// corruption, not traffic (mailbox payloads are capacity-bounded).
	tcpMaxFrame = 1 << 28
)

// TCPOptions configures a TCPWire; see NewTCPWire.
type TCPOptions struct {
	// Rank is the rank this process hosts, in [0, WorldSize).
	Rank int
	// Rendezvous is the host:port rank 0 listens on and every other rank
	// dials for the handshake (world-size check, rank uniqueness, mesh
	// address exchange, start barrier).
	Rendezvous string
	// Timeout bounds the whole handshake — rendezvous dial retries, mesh
	// dials and accepts, the start barrier. Zero means 30s.
	Timeout time.Duration
}

// TCPWire runs one rank per OS process over localhost (or LAN) TCP:
// rank 0 serves a rendezvous handshake, every pair of ranks holds one
// framed stream, and per-peer reader goroutines push decoded packets
// into the local rank's inbox rings — each reader is the single
// producer for its (local, peer) channel, so the lock-free ring
// discipline carries over unchanged. Connection faults (a peer reset or
// EOF without the goodbye frame) surface through World.WireFail into
// the same failed/poisoned unwinding the deadlock watchdog uses.
//
// A TCPWire value is single-use; construct one per Run.
type TCPWire struct {
	opt  TCPOptions
	w    *World
	self machine.Rank

	// peers[r] is the mesh connection to rank r (nil at self). writeMu
	// serializes whole frames; reads are exclusive to the peer's reader
	// goroutine.
	peers []*tcpPeer

	// rendezvous residue: the accepted conns (root) or the conn to the
	// root (client) stay open until Finish; the root's listener is
	// closed as soon as the start barrier completes, so stray late
	// dialers fail fast instead of hanging against a silent listener.
	rdvLn    net.Listener
	rdvConns []net.Conn

	readers sync.WaitGroup
	// closing suppresses fault reports for resets caused by our own
	// teardown.
	closing atomic.Bool
}

// tcpPeer is one mesh connection plus its write lock and reader state.
type tcpPeer struct {
	conn    net.Conn
	writeMu sync.Mutex
	// sawGoodbye marks a clean end-of-stream, flipped by the reader; an
	// EOF after it is a normal peer exit.
	sawGoodbye atomic.Bool
}

// NewTCPWire returns a TCP backend for one rank of a multi-process run.
func NewTCPWire(opt TCPOptions) *TCPWire {
	return &TCPWire{opt: opt}
}

func (t *TCPWire) Name() string   { return "tcp" }
func (t *TCPWire) RealTime() bool { return true }

func (t *TCPWire) LocalRanks(topo machine.Topology) []machine.Rank {
	return []machine.Rank{machine.Rank(t.opt.Rank)}
}

// Start performs the rendezvous handshake and builds the full mesh; on
// return every pair of ranks is connected, every process has passed the
// start barrier, and the reader goroutines are live.
func (t *TCPWire) Start(w *World) error {
	size := w.topo.WorldSize()
	if t.opt.Rank < 0 || t.opt.Rank >= size {
		return fmt.Errorf("tcp: rank %d outside world of %d", t.opt.Rank, size)
	}
	if t.w != nil {
		return fmt.Errorf("tcp: wire already started (one TCPWire per Run)")
	}
	t.w = w
	t.self = machine.Rank(t.opt.Rank)
	t.peers = make([]*tcpPeer, size)
	if size == 1 {
		return nil
	}
	if t.opt.Rendezvous == "" {
		return fmt.Errorf("tcp: no rendezvous address")
	}
	timeout := t.opt.Timeout
	if timeout <= 0 {
		timeout = 30 * time.Second
	}
	deadline := hostNow().Add(timeout)

	// Every rank opens an ephemeral mesh listener first, so its address
	// can travel in the handshake and peers can dial the moment they
	// learn it.
	meshLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return fmt.Errorf("tcp: mesh listen: %w", err)
	}
	defer meshLn.Close()

	var roster []string
	if t.self == 0 {
		roster, err = t.rendezvousRoot(meshLn.Addr().String(), deadline)
	} else {
		roster, err = t.rendezvousClient(meshLn.Addr().String(), deadline)
	}
	if err != nil {
		t.closeAll()
		return err
	}
	if err := t.connectMesh(meshLn, roster, deadline); err != nil {
		t.closeAll()
		return err
	}
	if err := t.startBarrier(deadline); err != nil {
		t.closeAll()
		return err
	}
	// The rendezvous listener has served its purpose once the start
	// barrier releases: every legitimate rank is connected. Close it now
	// so a stray process — a duplicate rank id, a survivor of a previous
	// run, a typo'd -rank-id — gets an immediate connection refusal (or
	// a reset of its half-open backlog connection) instead of waiting
	// out its own full handshake deadline against a silent listener.
	// The accepted rendezvous conns stay open for the goodbye exchange.
	if t.rdvLn != nil {
		t.rdvLn.Close()
		t.rdvLn = nil
	}
	// Anchor the real-time clocks after the barrier and before any
	// reader can stamp an arrival, so makespans exclude the handshake
	// and no stamp precedes the epoch.
	w.epoch = hostNow()
	for r, peer := range t.peers {
		if peer == nil {
			continue
		}
		t.readers.Add(1)
		go t.readLoop(machine.Rank(r), peer)
	}
	return nil
}

// rendezvousRoot binds the rendezvous address (retrying while a previous
// run's socket drains), collects one hello from every other rank,
// validates world agreement and rank uniqueness, and answers each with
// the full mesh-address roster.
func (t *TCPWire) rendezvousRoot(selfAddr string, deadline time.Time) ([]string, error) {
	size := t.w.topo.WorldSize()
	var ln net.Listener
	var err error
	for {
		ln, err = net.Listen("tcp", t.opt.Rendezvous)
		if err == nil {
			break
		}
		// Only "address already in use" is worth waiting out (a previous
		// run's socket draining, or back-to-back runs reusing one
		// rendezvous address). Every other listen failure — malformed
		// address, unroutable host, permission denied — is permanent, and
		// retrying it would turn a clean error into a deadline hang.
		if !errors.Is(err, syscall.EADDRINUSE) {
			return nil, fmt.Errorf("tcp: rendezvous listen %s: %w", t.opt.Rendezvous, err)
		}
		if hostNow().After(deadline) {
			return nil, fmt.Errorf("tcp: rendezvous listen %s: %w", t.opt.Rendezvous, err)
		}
		time.Sleep(10 * time.Millisecond) //ygmvet:ignore wallclock — host-time handshake retry, not simulated-rank code
	}
	t.rdvLn = ln
	if d, ok := ln.(*net.TCPListener); ok {
		d.SetDeadline(deadline)
	}
	roster := make([]string, size)
	roster[0] = selfAddr
	t.rdvConns = make([]net.Conn, size) // index = rank; [0] unused
	for need := size - 1; need > 0; need-- {
		conn, err := ln.Accept()
		if err != nil {
			return nil, fmt.Errorf("tcp: rendezvous accept (still missing %d rank(s)): %w", need, err)
		}
		conn.SetDeadline(deadline)
		rank, meshAddr, err := t.readHello(conn)
		if err != nil {
			conn.Close()
			return nil, err
		}
		if t.rdvConns[rank] != nil {
			conn.Close()
			return nil, fmt.Errorf("tcp: duplicate hello from rank %d", rank)
		}
		t.rdvConns[rank] = conn
		roster[rank] = meshAddr
	}
	body := codec.NewWriter(64)
	body.Byte(kindRoster)
	body.Uvarint(uint64(size))
	for _, addr := range roster {
		body.String(addr)
	}
	for r, conn := range t.rdvConns {
		if conn == nil {
			continue
		}
		if err := writeFrame(conn, body.Bytes()); err != nil {
			return nil, fmt.Errorf("tcp: roster to rank %d: %w", r, err)
		}
	}
	return roster, nil
}

// readHello validates one rendezvous connection: preamble, then a hello
// frame whose topology must agree with ours.
func (t *TCPWire) readHello(conn net.Conn) (int, string, error) {
	if err := readPreamble(conn); err != nil {
		return 0, "", fmt.Errorf("tcp: rendezvous hello: %w", err)
	}
	body, err := readFrame(bufio.NewReader(conn), nil)
	if err != nil {
		return 0, "", fmt.Errorf("tcp: rendezvous hello: %w", err)
	}
	r := codec.NewReader(body)
	kind, err := r.Byte()
	if err != nil || kind != kindHello {
		return 0, "", fmt.Errorf("tcp: rendezvous: expected hello, got kind %d (%v)", kind, err)
	}
	rank, err1 := r.Uvarint()
	nodes, err2 := r.Uvarint()
	cores, err3 := r.Uvarint()
	meshAddr, err4 := r.String()
	for _, err := range []error{err1, err2, err3, err4} {
		if err != nil {
			return 0, "", fmt.Errorf("tcp: malformed hello: %w", err)
		}
	}
	topo := t.w.topo
	if int(nodes) != topo.Nodes() || int(cores) != topo.Cores() {
		return 0, "", fmt.Errorf("tcp: topology mismatch: peer rank %d built %dx%d, this process %dx%d",
			rank, nodes, cores, topo.Nodes(), topo.Cores())
	}
	if rank == 0 || rank >= uint64(topo.WorldSize()) {
		return 0, "", fmt.Errorf("tcp: hello from invalid rank %d (world %d)", rank, topo.WorldSize())
	}
	return int(rank), meshAddr, nil
}

// rendezvousClient dials rank 0 (retrying until the root is listening),
// sends this process's hello, and reads back the roster.
func (t *TCPWire) rendezvousClient(selfAddr string, deadline time.Time) ([]string, error) {
	topo := t.w.topo
	var conn net.Conn
	var err error
	for {
		d := net.Dialer{Deadline: deadline}
		conn, err = d.Dial("tcp", t.opt.Rendezvous)
		if err == nil {
			break
		}
		if hostNow().After(deadline) {
			return nil, fmt.Errorf("tcp: rank %d could not reach rendezvous %s: %w", t.self, t.opt.Rendezvous, err)
		}
		time.Sleep(10 * time.Millisecond) //ygmvet:ignore wallclock — host-time handshake retry, not simulated-rank code
	}
	conn.SetDeadline(deadline)
	t.rdvConns = []net.Conn{conn}
	if err := writePreamble(conn); err != nil {
		return nil, fmt.Errorf("tcp: rendezvous hello: %w", err)
	}
	body := codec.NewWriter(64)
	body.Byte(kindHello)
	body.Uvarint(uint64(t.self))
	body.Uvarint(uint64(topo.Nodes()))
	body.Uvarint(uint64(topo.Cores()))
	body.String(selfAddr)
	if err := writeFrame(conn, body.Bytes()); err != nil {
		return nil, fmt.Errorf("tcp: rendezvous hello: %w", err)
	}
	rbody, err := readFrame(bufio.NewReader(conn), nil)
	if err != nil {
		return nil, fmt.Errorf("tcp: roster: %w", err)
	}
	r := codec.NewReader(rbody)
	kind, err := r.Byte()
	if err != nil || kind != kindRoster {
		return nil, fmt.Errorf("tcp: expected roster, got kind %d (%v)", kind, err)
	}
	world, err := r.Uvarint()
	if err != nil || int(world) != topo.WorldSize() {
		return nil, fmt.Errorf("tcp: roster world %d does not match topology %d (%v)", world, topo.WorldSize(), err)
	}
	roster := make([]string, world)
	for i := range roster {
		if roster[i], err = r.String(); err != nil {
			return nil, fmt.Errorf("tcp: malformed roster: %w", err)
		}
	}
	return roster, nil
}

// connectMesh establishes the pairwise streams: this rank dials every
// lower rank's mesh listener (identifying itself with a peer hello) and
// accepts one connection from every higher rank.
func (t *TCPWire) connectMesh(meshLn net.Listener, roster []string, deadline time.Time) error {
	for j := 0; j < int(t.self); j++ {
		d := net.Dialer{Deadline: deadline}
		conn, err := d.Dial("tcp", roster[j])
		if err != nil {
			return fmt.Errorf("tcp: rank %d dialing rank %d at %s: %w", t.self, j, roster[j], err)
		}
		if err := writePreamble(conn); err != nil {
			conn.Close()
			return fmt.Errorf("tcp: peer hello to rank %d: %w", j, err)
		}
		body := codec.NewWriter(8)
		body.Byte(kindPeerHello)
		body.Uvarint(uint64(t.self))
		if err := writeFrame(conn, body.Bytes()); err != nil {
			conn.Close()
			return fmt.Errorf("tcp: peer hello to rank %d: %w", j, err)
		}
		t.peers[j] = &tcpPeer{conn: conn}
	}
	if d, ok := meshLn.(*net.TCPListener); ok {
		d.SetDeadline(deadline)
	}
	for need := len(roster) - 1 - int(t.self); need > 0; need-- {
		conn, err := meshLn.Accept()
		if err != nil {
			return fmt.Errorf("tcp: rank %d mesh accept (still missing %d peer(s)): %w", t.self, need, err)
		}
		conn.SetDeadline(deadline)
		if err := readPreamble(conn); err != nil {
			conn.Close()
			return fmt.Errorf("tcp: mesh preamble: %w", err)
		}
		body, err := readFrame(bufio.NewReader(conn), nil)
		if err != nil {
			conn.Close()
			return fmt.Errorf("tcp: peer hello: %w", err)
		}
		r := codec.NewReader(body)
		kind, err := r.Byte()
		if err != nil || kind != kindPeerHello {
			conn.Close()
			return fmt.Errorf("tcp: expected peer hello, got kind %d (%v)", kind, err)
		}
		rank, err := r.Uvarint()
		if err != nil || rank <= uint64(t.self) || rank >= uint64(len(roster)) || t.peers[rank] != nil {
			conn.Close()
			return fmt.Errorf("tcp: bad peer hello rank %d (%v)", rank, err)
		}
		conn.SetDeadline(time.Time{})
		t.peers[rank] = &tcpPeer{conn: conn}
	}
	// Dialed conns also drop their handshake deadline before data flows.
	for j := 0; j < int(t.self); j++ {
		t.peers[j].conn.SetDeadline(time.Time{})
	}
	return nil
}

// startBarrier holds every process at the end of the handshake until
// all of them got there: clients report ready over the rendezvous conn
// and wait for go; the root releases them once all readies are in. This
// keeps handshake failures inside Start on every process, instead of
// surfacing as mid-run resets on the fast ones.
func (t *TCPWire) startBarrier(deadline time.Time) error {
	frame := func(kind byte) []byte { return []byte{kind} }
	if t.self == 0 {
		for r, conn := range t.rdvConns {
			if conn == nil {
				continue
			}
			body, err := readFrame(bufio.NewReader(conn), nil)
			if err != nil || len(body) != 1 || body[0] != kindReady {
				return fmt.Errorf("tcp: waiting for rank %d ready: %v", r, err)
			}
		}
		for r, conn := range t.rdvConns {
			if conn == nil {
				continue
			}
			if err := writeFrame(conn, frame(kindGo)); err != nil {
				return fmt.Errorf("tcp: releasing rank %d: %w", r, err)
			}
			conn.SetDeadline(time.Time{})
		}
		return nil
	}
	conn := t.rdvConns[0]
	if err := writeFrame(conn, frame(kindReady)); err != nil {
		return fmt.Errorf("tcp: ready: %w", err)
	}
	body, err := readFrame(bufio.NewReader(conn), nil)
	if err != nil || len(body) != 1 || body[0] != kindGo {
		return fmt.Errorf("tcp: waiting for go: %v", err)
	}
	conn.SetDeadline(time.Time{})
	return nil
}

// Inject delivers one stamped packet: a self-send is a direct inbox
// push (same as the in-process wires); a remote send serializes the
// packet as one data frame, hands it to the kernel synchronously, and
// returns the packet — and any pooled payload — to the local pool, so
// the per-process recycle balance holds without the bytes themselves
// crossing the socket twice.
func (t *TCPWire) Inject(p *Proc, dst machine.Rank, pkt *Packet) {
	if dst == t.self {
		t.w.inboxes[dst].Push(pkt)
		return
	}
	peer := t.peers[dst]
	var hdr [13]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(9+len(pkt.Payload)))
	hdr[4] = kindMsg
	binary.LittleEndian.PutUint64(hdr[5:13], uint64(pkt.Tag))
	bufs := net.Buffers{hdr[:], pkt.Payload}
	peer.writeMu.Lock()
	_, err := bufs.WriteTo(peer.conn)
	peer.writeMu.Unlock()
	t.w.pool.put(pkt)
	if err != nil && !t.closing.Load() {
		t.w.WireFail(fmt.Errorf("tcp: send to rank %d: %w", dst, err))
	}
}

func (t *TCPWire) Progress(*Proc) {}

// Flush is a no-op: Inject hands every frame to the kernel before
// returning, so there is nothing buffered above the socket.
func (t *TCPWire) Flush(*Proc) {}

// readLoop decodes one peer's stream into the local inbox. It is the
// single producer for the (local, src) channel, preserving the SPSC
// ring discipline. Frames become pooled packets stamped with the
// receiving host's clock.
func (t *TCPWire) readLoop(src machine.Rank, peer *tcpPeer) {
	defer t.readers.Done()
	br := bufio.NewReaderSize(peer.conn, 64<<10)
	var hdr [9]byte
	for {
		if _, err := io.ReadFull(br, hdr[:4]); err != nil {
			t.readEnd(src, peer, err)
			return
		}
		n := binary.LittleEndian.Uint32(hdr[0:4])
		if n < 1 || n > tcpMaxFrame {
			t.readEnd(src, peer, fmt.Errorf("frame length %d out of range", n))
			return
		}
		kind, err := br.ReadByte()
		if err != nil {
			t.readEnd(src, peer, err)
			return
		}
		switch kind {
		case kindMsg:
			if n < 9 {
				t.readEnd(src, peer, fmt.Errorf("short data frame (%d bytes)", n))
				return
			}
			if _, err := io.ReadFull(br, hdr[1:9]); err != nil {
				t.readEnd(src, peer, err)
				return
			}
			tag := Tag(binary.LittleEndian.Uint64(hdr[1:9]))
			payload := t.w.pool.getBuf(int(n - 9))
			if _, err := io.ReadFull(br, payload); err != nil {
				t.readEnd(src, peer, err)
				return
			}
			pkt := t.w.pool.getPkt()
			pkt.Src = src
			pkt.Tag = tag
			pkt.Arrive = hostNow().Sub(t.w.epoch).Seconds()
			pkt.Payload = payload
			pkt.pooled = true
			t.w.inboxes[t.self].Push(pkt)
		case kindGoodbye:
			peer.sawGoodbye.Store(true)
		default:
			t.readEnd(src, peer, fmt.Errorf("unknown frame kind %d", kind))
			return
		}
	}
}

// readEnd classifies a reader's exit: EOF after a goodbye is a clean
// peer shutdown; anything else while the run is live is a wire fault
// that poisons the local ranks.
func (t *TCPWire) readEnd(src machine.Rank, peer *tcpPeer, err error) {
	if peer.sawGoodbye.Load() || t.closing.Load() {
		return
	}
	t.w.WireFail(fmt.Errorf("tcp: stream from rank %d: %w", src, err))
}

// Finish ends the run's participation in the mesh. On a clean run it
// sends each peer a goodbye, half-closes the streams, and blocks until
// every peer's goodbye has arrived — the distributed analogue of
// joining the rank goroutines, which also keeps our inbox absorbing any
// late traffic peers were still sending. On a failed run it slams the
// connections so remote readers observe a reset and unwind their ranks.
func (t *TCPWire) Finish() error {
	if t.w == nil || t.w.topo.WorldSize() == 1 {
		return nil
	}
	if t.w.failed.Load() {
		t.closing.Store(true)
		t.closeAll()
		t.readers.Wait()
		return nil
	}
	for r, peer := range t.peers {
		if peer == nil {
			continue
		}
		peer.writeMu.Lock()
		err := writeFrame(peer.conn, []byte{kindGoodbye})
		peer.writeMu.Unlock()
		if err != nil {
			t.closing.Store(true)
			t.closeAll()
			t.readers.Wait()
			return fmt.Errorf("tcp: goodbye to rank %d: %w", r, err)
		}
		if tc, ok := peer.conn.(*net.TCPConn); ok {
			tc.CloseWrite()
		}
	}
	t.readers.Wait()
	t.closing.Store(true)
	t.closeAll()
	return nil
}

// closeAll tears down every socket this wire owns.
func (t *TCPWire) closeAll() {
	for _, peer := range t.peers {
		if peer != nil && peer.conn != nil {
			peer.conn.Close()
		}
	}
	for _, conn := range t.rdvConns {
		if conn != nil {
			conn.Close()
		}
	}
	if t.rdvLn != nil {
		t.rdvLn.Close()
	}
}

// writePreamble/readPreamble exchange the connection-level magic and
// version that guard every stream.
func writePreamble(conn net.Conn) error {
	var b [5]byte
	binary.LittleEndian.PutUint32(b[0:4], tcpMagic)
	b[4] = tcpVersion
	_, err := conn.Write(b[:])
	return err
}

func readPreamble(conn net.Conn) error {
	var b [5]byte
	if _, err := io.ReadFull(conn, b[:]); err != nil {
		return err
	}
	if m := binary.LittleEndian.Uint32(b[0:4]); m != tcpMagic {
		return fmt.Errorf("bad magic %#x (not a YGM wire peer)", m)
	}
	if b[4] != tcpVersion {
		return fmt.Errorf("wire version %d, this build speaks %d", b[4], tcpVersion)
	}
	return nil
}

// writeFrame writes one length-prefixed frame.
func writeFrame(conn net.Conn, body []byte) error {
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(body)))
	if _, err := conn.Write(hdr[:]); err != nil {
		return err
	}
	_, err := conn.Write(body)
	return err
}

// readFrame reads one length-prefixed frame body.
func readFrame(br *bufio.Reader, scratch []byte) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n > tcpMaxFrame {
		return nil, fmt.Errorf("frame length %d out of range", n)
	}
	body := scratch
	if cap(body) < int(n) {
		body = make([]byte, n)
	}
	body = body[:n]
	if _, err := io.ReadFull(br, body); err != nil {
		return nil, err
	}
	return body, nil
}
