package transport

import (
	"sync"

	"ygm/internal/machine"
	"ygm/internal/obs"
)

// The M:N rank scheduler multiplexes P virtual ranks over a small pool
// of worker tokens (one per host core by default). Every rank still has
// its own goroutine — Go cannot capture an arbitrary blocked SPMD body
// as a heap continuation — but at most `workers` of them hold a token
// and are runnable at any instant; the rest are parked a few hundred
// bytes deep in the scheduler, which is what keeps a 65k-rank world
// from thrashing the host scheduler with 65k simultaneously runnable
// goroutines. The parked goroutine IS the rank's continuation: granting
// the token resumes it exactly where it blocked.
//
// Readiness is driven by the inbox park protocol from PR 5: a consumer
// that loses the pstate CAS race used to receive a channel token from
// the producer; under the scheduler the producer instead calls ready(),
// which hands the destination rank a worker token directly (if one is
// free) or appends it to a run queue. Tokens move rank→rank on park —
// a blocking receive donates its slot to the next runnable rank — so a
// world makes progress with exactly min(P, workers) goroutines hot.
//
// Run queues are sharded by rank (home shard = rank & mask) purely to
// spread queue traffic; a releasing rank prefers its home shard and
// scans the others ("stealing") when it is empty, which keeps dispatch
// O(shards) worst case and O(1) typical.
const schedShards = 8

// Per-rank scheduler states. A rank's state only changes under the
// scheduler mutex.
const (
	// rsWaiting: blocked inside acquire/park with no token and no run
	// queue entry; the next ready() will grant or enqueue it. Also the
	// initial state (zero value) before acquire.
	rsWaiting int8 = iota
	// rsRunning: holds a worker token (possibly buffered in its gate).
	rsRunning
	// rsQueued: sits in a run queue awaiting a token grant.
	rsQueued
	// rsExited: the rank's body returned and its token was released.
	rsExited
)

// rankQueue is one FIFO run-queue shard.
type rankQueue struct {
	buf  []machine.Rank
	head int
}

func (q *rankQueue) push(r machine.Rank) {
	if q.head > 0 && q.head == len(q.buf) {
		q.buf = q.buf[:0]
		q.head = 0
	}
	q.buf = append(q.buf, r)
}

func (q *rankQueue) pop() (machine.Rank, bool) {
	if q.head == len(q.buf) {
		return -1, false
	}
	r := q.buf[q.head]
	q.head++
	if q.head == len(q.buf) {
		q.buf = q.buf[:0]
		q.head = 0
	}
	return r, true
}

// scheduler is the M:N rank scheduler for one World. All state is
// guarded by mu; the per-rank gates are the only cross-section — a gate
// send under mu never blocks because the state machine guarantees at
// most one outstanding grant per rank (a rank must consume its grant
// and block again before it can be granted again).
type scheduler struct {
	workers int

	mu     sync.Mutex
	avail  int // free worker tokens
	busy   int // tokens held by (or granted to) running ranks
	shards [schedShards]rankQueue
	queued int // total run-queue entries
	scan   int // rotating dispatch pointer (see popLocked)

	// state/wakeFlag/discard implement the rank state machine. wakeFlag
	// buffers a ready() that arrived while the rank still held its token
	// (the window between the consumer publishing pParked and actually
	// calling park); the next park consumes it and keeps the token —
	// the scheduler's equivalent of the direct-mode buffered channel
	// token. discard counts parks the consumer retracted after the
	// producer had already won the pstate CAS: the producer's in-flight
	// ready() must be cancelled, whichever order the two arrive in.
	state    []int8
	wakeFlag []bool
	retract  []int32

	// gates[r] delivers worker-token grants to rank r's goroutine.
	// Capacity 1: a grant may be issued before the rank has reached its
	// gate receive (it enqueues under mu, then receives outside it).
	gates []chan struct{}

	// inQueue backs the ygmcheck double-enqueue audit; nil in default
	// builds.
	inQueue []bool

	// Metrics, updated under mu. busyInt integrates busy-worker-seconds
	// (host time) for the worker-utilization gauge; epoch anchors it.
	dispatches   uint64 // total token grants
	directGrants uint64 // grants straight from ready() (no queue wait)
	handoffs     uint64 // tokens passed rank→rank on park/exit/yield
	steals       uint64 // handoffs dispatched from a non-home shard
	yields       uint64 // voluntary token donations (Proc.Yield)
	discards     uint64 // retracted parks
	readyHWM     int
	busyHWM      int
	busyInt      float64
	lastT        float64
	epoch        float64
}

// newScheduler returns a scheduler for a world of `world` ranks over
// `workers` tokens.
func newScheduler(world, workers int) *scheduler {
	if workers < 1 {
		workers = 1
	}
	if workers > world {
		workers = world
	}
	s := &scheduler{
		workers:  workers,
		avail:    workers,
		state:    make([]int8, world),
		wakeFlag: make([]bool, world),
		retract:  make([]int32, world),
		gates:    make([]chan struct{}, world),
	}
	for i := range s.gates {
		s.gates[i] = make(chan struct{}, 1)
	}
	if ygmcheckEnabled {
		s.inQueue = make([]bool, world)
	}
	now := hostNow()
	s.epoch = float64(now.UnixNano()) * 1e-9
	s.lastT = s.epoch
	return s
}

func schedHome(r machine.Rank) int { return int(r) & (schedShards - 1) }

// tickBusyLocked integrates the busy-worker level up to now and applies
// delta. Called before every busy transition so the worker-utilization
// integral is exact.
func (s *scheduler) tickBusyLocked(delta int) {
	now := float64(hostNow().UnixNano()) * 1e-9
	if now > s.lastT {
		s.busyInt += float64(s.busy) * (now - s.lastT)
		s.lastT = now
	}
	s.busy += delta
	if s.busy > s.busyHWM {
		s.busyHWM = s.busy
	}
}

// enqueueLocked appends r to its home run-queue shard.
func (s *scheduler) enqueueLocked(r machine.Rank) {
	s.checkSchedEnqueue(r)
	s.state[r] = rsQueued
	s.shards[schedHome(r)].push(r)
	s.queued++
	if s.queued > s.readyHWM {
		s.readyHWM = s.queued
	}
}

// popLocked removes the next queued rank. The scan starts one past the
// shard served by the previous dispatch and rotates — NOT at the
// releaser's home shard. Home-first scanning looks cheaper but starves:
// two ranks ping-ponging Proc.Yield through a shared home shard would
// keep that shard non-empty forever and never reach ready ranks queued
// in the other shards. The rotating pointer serves every shard within
// schedShards dispatches, and each shard is itself FIFO, so any queued
// rank is granted within a bounded number of releases. Returns -1 when
// every shard is empty; the bool reports a cross-shard dispatch
// relative to the releaser's home (the "steal" metric).
func (s *scheduler) popLocked(home int) (machine.Rank, bool) {
	for i := 0; i < schedShards; i++ {
		idx := (s.scan + i) & (schedShards - 1)
		if r, ok := s.shards[idx].pop(); ok {
			s.queued--
			s.scan = idx + 1
			s.checkSchedDequeue(r)
			return r, idx != home
		}
	}
	return -1, false
}

// grantLocked hands a token to queued-or-waiting rank r: flips it to
// running and posts its gate. The caller has already accounted the
// token (busy unchanged on handoff, avail--/busy++ on a fresh grant).
func (s *scheduler) grantLocked(r machine.Rank) {
	s.state[r] = rsRunning
	s.dispatches++
	s.gates[r] <- struct{}{}
}

// releaseLocked gives up the caller's token: hand it to the next queued
// rank if any (the token stays busy — that is the M:N handoff), else
// return it to the free pool.
func (s *scheduler) releaseLocked(home int) {
	if r, stolen := s.popLocked(home); r >= 0 {
		s.handoffs++
		if stolen {
			s.steals++
		}
		s.grantLocked(r)
		return
	}
	s.tickBusyLocked(-1)
	s.avail++
}

// acquire blocks until rank r holds a worker token. Called once per
// rank before its SPMD body runs.
func (s *scheduler) acquire(r machine.Rank) {
	s.mu.Lock()
	if s.avail > 0 {
		s.avail--
		s.tickBusyLocked(+1)
		s.state[r] = rsRunning
		s.checkSchedTokens()
		s.mu.Unlock()
		return
	}
	s.enqueueLocked(r)
	s.checkSchedTokens()
	s.mu.Unlock()
	<-s.gates[r]
}

// park releases rank r's token and blocks until a producer's ready()
// grants it a new one. The caller must have published pParked on its
// inbox first — that ordering is what guarantees a ready() is coming.
// If one already arrived (wakeFlag), park keeps the token and returns
// immediately: the scheduler analogue of the buffered channel token.
func (s *scheduler) park(r machine.Rank) {
	s.mu.Lock()
	if s.wakeFlag[r] {
		s.wakeFlag[r] = false
		s.checkSchedTokens()
		s.mu.Unlock()
		return
	}
	s.state[r] = rsWaiting
	s.releaseLocked(schedHome(r))
	s.checkSchedTokens()
	s.mu.Unlock()
	<-s.gates[r]
}

// ready is the producer-side wake: called by whoever wins a pstate
// pParked→pIdle CAS on rank r's inbox (a Push, or the watchdog's
// poison). Exactly one ready is issued per park episode; the state
// machine routes it to a grant, a queue entry, a kept token
// (wakeFlag), or a cancelled retraction (discard).
func (s *scheduler) ready(r machine.Rank) {
	s.mu.Lock()
	if s.retract[r] > 0 {
		// The consumer retracted the park this ready belongs to (its
		// pre-sleep recheck found the data); nothing to wake.
		s.retract[r]--
		s.mu.Unlock()
		return
	}
	switch s.state[r] {
	case rsWaiting:
		if s.avail > 0 {
			s.avail--
			s.tickBusyLocked(+1)
			s.directGrants++
			s.grantLocked(r)
		} else {
			s.enqueueLocked(r)
		}
	case rsRunning:
		// The consumer published pParked but has not released its token
		// yet (or already self-served). It keeps the token at its next
		// park.
		s.wakeFlag[r] = true
	case rsQueued:
		// Unreachable by the CAS protocol (one ready per park episode);
		// tolerate it as a buffered wake in default builds.
		s.checkSchedDoubleReady(r)
		s.wakeFlag[r] = true
	case rsExited:
		// A late ready for a rank that already finished; drop it.
	}
	s.checkSchedTokens()
	s.mu.Unlock()
}

// discard cancels the ready() owed to rank r after the consumer
// retracted a published park: consume the buffered wake if it already
// landed, otherwise leave a credit for when it does.
func (s *scheduler) discard(r machine.Rank) {
	s.mu.Lock()
	s.discards++
	if s.wakeFlag[r] {
		s.wakeFlag[r] = false
	} else {
		s.retract[r]++
	}
	s.mu.Unlock()
}

// forceWake unsticks rank r if it is waiting with no ready in flight —
// the state a lost-wakeup bug leaves behind. Only the watchdog's poison
// path calls it, so a poisoned run always unwinds into a DeadlockError
// instead of hanging on a stranded gate. The discard==0 guard keeps it
// from double-granting a rank whose (late) ready is still coming.
func (s *scheduler) forceWake(r machine.Rank) {
	s.mu.Lock()
	if s.state[r] == rsWaiting && s.retract[r] == 0 {
		if s.avail > 0 {
			s.avail--
			s.tickBusyLocked(+1)
			s.grantLocked(r)
		} else {
			s.enqueueLocked(r)
		}
	}
	s.checkSchedTokens()
	s.mu.Unlock()
}

// yield donates the caller's token to a queued rank and re-queues the
// caller behind it. Returns false (doing nothing) when no rank is
// waiting for a worker — the caller should fall back to a plain
// runtime.Gosched. Nonblocking poll loops must yield this way: a
// token-holding spinner would otherwise starve the very ranks whose
// messages it polls for.
func (s *scheduler) yield(r machine.Rank) bool {
	s.mu.Lock()
	if s.queued == 0 {
		s.mu.Unlock()
		return false
	}
	s.yields++
	s.releaseLocked(schedHome(r))
	s.enqueueLocked(r)
	s.checkSchedTokens()
	s.mu.Unlock()
	<-s.gates[r]
	return true
}

// exit releases rank r's token for good as its goroutine unwinds
// (normal return, error, panic, or deadlock poison — it runs deferred).
func (s *scheduler) exit(r machine.Rank) {
	s.mu.Lock()
	s.state[r] = rsExited
	s.wakeFlag[r] = false
	s.releaseLocked(schedHome(r))
	s.checkSchedTokens()
	s.mu.Unlock()
}

// snapshot freezes the scheduler's metrics: grant/handoff/steal/yield
// counters, ready-queue and busy-worker high-water marks, and the
// worker-utilization integral (busy-worker-seconds over total
// worker-seconds, host time) — the evidence that the pool stays hot.
func (s *scheduler) snapshot() obs.Snapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.tickBusyLocked(0)
	reg := obs.NewRegistry()
	reg.Counter("sched.dispatches").Add(s.dispatches)
	reg.Counter("sched.direct_grants").Add(s.directGrants)
	reg.Counter("sched.handoffs").Add(s.handoffs)
	reg.Counter("sched.steals").Add(s.steals)
	reg.Counter("sched.yields").Add(s.yields)
	reg.Counter("sched.park_retractions").Add(s.discards)
	reg.Gauge("sched.workers").Set(float64(s.workers))
	reg.Gauge("sched.ready_depth_hwm").Set(float64(s.readyHWM))
	reg.Gauge("sched.workers_busy_hwm").Set(float64(s.busyHWM))
	if elapsed := s.lastT - s.epoch; elapsed > 0 {
		reg.Gauge("sched.worker_utilization").Set(s.busyInt / (elapsed * float64(s.workers)))
	}
	return reg.Snapshot()
}
