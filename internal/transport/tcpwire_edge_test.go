// Rendezvous edge cases: the failure paths of the TCP handshake must
// produce clean, prompt errors — never hangs. Each "process" here is an
// in-process transport.Run hosting one rank over a real loopback socket
// (the same code path the re-exec conformance children run; co-locating
// the ranks just makes failure injection and timing assertions direct).
package transport_test

import (
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"ygm/internal/machine"
	"ygm/internal/transport"
)

// runTCPRank runs one rank of a TCP world and returns transport.Run's
// error. Timeout bounds the handshake.
func runTCPRank(nodes, cores, rank int, rdv string, timeout time.Duration,
	body func(p *transport.Proc) error) error {
	wire := transport.NewTCPWire(transport.TCPOptions{
		Rank:       rank,
		Rendezvous: rdv,
		Timeout:    timeout,
	})
	cfg := transport.NewConfig(machine.New(nodes, cores),
		transport.WithSeed(1),
		transport.WithWire(wire),
	)
	_, err := transport.Run(cfg, body)
	return err
}

func noop(p *transport.Proc) error { return nil }

// TestTCPRendezvousListenFailsFast pins the listen-retry fix: a
// permanently unbindable rendezvous address (unroutable host, not
// EADDRINUSE) must fail immediately, not spin against the full
// handshake deadline.
func TestTCPRendezvousListenFailsFast(t *testing.T) {
	if !loopbackAvailable() {
		t.Skip("loopback listening unavailable in this sandbox")
	}
	start := time.Now()
	err := runTCPRank(1, 2, 0, "203.0.113.1:1", 30*time.Second, noop) // TEST-NET-3: never local
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("root bound an unroutable rendezvous address")
	}
	if !strings.Contains(err.Error(), "rendezvous listen") {
		t.Fatalf("unexpected error: %v", err)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("unbindable address took %v to fail; the retry loop is eating permanent errors", elapsed)
	}
}

// TestTCPRendezvousPortHeldByStranger pins the already-bound path: when
// the rendezvous port stays occupied by a non-YGM listener, the root
// must give up with a clean listen error once its (short) handshake
// deadline passes — EADDRINUSE is retryable, but not forever.
func TestTCPRendezvousPortHeldByStranger(t *testing.T) {
	if !loopbackAvailable() {
		t.Skip("loopback listening unavailable in this sandbox")
	}
	squatter, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer squatter.Close()
	start := time.Now()
	err = runTCPRank(1, 2, 0, squatter.Addr().String(), 500*time.Millisecond, noop)
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("root claimed a rendezvous port another process holds")
	}
	if !strings.Contains(err.Error(), "rendezvous listen") {
		t.Fatalf("unexpected error: %v", err)
	}
	if elapsed > 10*time.Second {
		t.Fatalf("held port took %v to fail a 500ms handshake", elapsed)
	}
}

// TestTCPRendezvousPortReleasedMidRetry pins the retry loop's reason to
// exist: an EADDRINUSE that clears (the previous run's socket draining)
// must be waited out by the root, and the handshake must then complete
// normally. The client is held back until the squatter releases the port
// — a client dialing earlier would land in the squatter's backlog and
// its hello would be lost with it.
func TestTCPRendezvousPortReleasedMidRetry(t *testing.T) {
	if !loopbackAvailable() {
		t.Skip("loopback listening unavailable in this sandbox")
	}
	squatter, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	rdv := squatter.Addr().String()
	released := make(chan struct{})
	go func() {
		time.Sleep(150 * time.Millisecond)
		squatter.Close()
		close(released)
	}()
	errs := make([]error, 2)
	var wg sync.WaitGroup
	for r := 0; r < 2; r++ {
		r := r
		wg.Add(1)
		go func() {
			defer wg.Done()
			if r == 1 {
				<-released
				time.Sleep(100 * time.Millisecond) // let the port actually free up
			}
			errs[r] = runTCPRank(1, 2, r, rdv, 10*time.Second, noop)
		}()
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d failed after the squatter released the port: %v", r, err)
		}
	}
}

// TestTCPDuplicateRankRejected pins roster validation: two processes
// claiming the same rank id must fail the handshake with an explicit
// duplicate diagnosis at the root — not win by race, not hang the world.
// World is 1x3 with the genuine rank 2 absent, so both impostors' hellos
// are read while the roster is still open.
func TestTCPDuplicateRankRejected(t *testing.T) {
	if !loopbackAvailable() {
		t.Skip("loopback listening unavailable in this sandbox")
	}
	rdv := freeLoopbackAddr(t)
	const timeout = 2 * time.Second
	var wg sync.WaitGroup
	errs := make([]error, 3)
	for i, rank := range []int{0, 1, 1} { // rank 1 twice, rank 2 never arrives
		i, rank := i, rank
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs[i] = runTCPRank(1, 3, rank, rdv, timeout, noop)
		}()
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("duplicate-rank handshake hung")
	}
	if errs[0] == nil {
		t.Fatal("root accepted two processes claiming rank 1")
	}
	if !strings.Contains(errs[0].Error(), "duplicate hello from rank 1") {
		t.Fatalf("root error does not diagnose the duplicate: %v", errs[0])
	}
	// Both impostors must fail too (the root tore the rendezvous down),
	// and promptly — no one may sit out a silent 30s default.
	for i := 1; i < 3; i++ {
		if errs[i] == nil {
			t.Fatalf("impostor %d completed the handshake in a world the root aborted", i)
		}
	}
}

// TestTCPPartialRosterTimesOutCleanly pins the missing-rank path: when
// a rank never shows up, the root and every present client must unwind
// with clean errors once the handshake deadline passes, each naming its
// stalled phase.
func TestTCPPartialRosterTimesOutCleanly(t *testing.T) {
	if !loopbackAvailable() {
		t.Skip("loopback listening unavailable in this sandbox")
	}
	rdv := freeLoopbackAddr(t)
	const timeout = 500 * time.Millisecond
	var wg sync.WaitGroup
	errs := make([]error, 2)
	start := time.Now()
	for _, rank := range []int{0, 1} { // world is 1x3; rank 2 never starts
		rank := rank
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs[rank] = runTCPRank(1, 3, rank, rdv, timeout, noop)
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	if errs[0] == nil {
		t.Fatal("root completed a handshake missing one rank")
	}
	if !strings.Contains(errs[0].Error(), "still missing 1 rank") {
		t.Fatalf("root error does not name the missing rank count: %v", errs[0])
	}
	if errs[1] == nil {
		t.Fatal("client completed a handshake the root never finished")
	}
	if elapsed > 15*time.Second {
		t.Fatalf("partial roster took %v to unwind a %v handshake", elapsed, timeout)
	}
}

// TestTCPStrayAfterHandshakeFailsFast pins the listener-close fix: once
// the start barrier has released, the root's rendezvous listener is
// gone, so a stray process (duplicate rank id arriving late) fails its
// dial loop at its *own* short deadline with a clean error instead of
// connecting into a silent backlog and hanging for the default 30s.
func TestTCPStrayAfterHandshakeFailsFast(t *testing.T) {
	if !loopbackAvailable() {
		t.Skip("loopback listening unavailable in this sandbox")
	}
	rdv := freeLoopbackAddr(t)
	handshook := make(chan struct{}, 2)
	release := make(chan struct{})
	hold := func(p *transport.Proc) error {
		handshook <- struct{}{} // Start returned: the mesh is up
		<-release               // keep the world (and its sockets) alive
		return nil
	}
	var wg sync.WaitGroup
	errs := make([]error, 2)
	for r := 0; r < 2; r++ {
		r := r
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs[r] = runTCPRank(1, 2, r, rdv, 10*time.Second, hold)
		}()
	}
	<-handshook
	<-handshook
	// The world is live mid-run. A stray claiming rank 1 must bounce off
	// the closed listener within its own 1s deadline.
	start := time.Now()
	strayErr := runTCPRank(1, 2, 1, rdv, 1*time.Second, noop)
	elapsed := time.Since(start)
	close(release)
	wg.Wait()
	if strayErr == nil {
		t.Fatal("stray duplicate-rank process completed a handshake against a finished world")
	}
	if !strings.Contains(strayErr.Error(), "rendezvous") {
		t.Fatalf("stray error does not name the rendezvous phase: %v", strayErr)
	}
	if elapsed > 8*time.Second {
		t.Fatalf("stray took %v to fail a 1s handshake; the rendezvous listener is lingering", elapsed)
	}
	for r, err := range errs {
		if err != nil {
			t.Fatalf("stray dial disturbed live rank %d: %v", r, err)
		}
	}
}
