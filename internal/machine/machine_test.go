package machine

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAddressingRoundTrip(t *testing.T) {
	topo := New(5, 7)
	for n := 0; n < 5; n++ {
		for c := 0; c < 7; c++ {
			r := topo.RankOf(n, c)
			if topo.Node(r) != n || topo.Core(r) != c {
				t.Fatalf("RankOf(%d,%d)=%d round-trips to (%d,%d)", n, c, r, topo.Node(r), topo.Core(r))
			}
			if !topo.Valid(r) {
				t.Fatalf("rank %d should be valid", r)
			}
		}
	}
	if topo.Valid(Rank(35)) || topo.Valid(Nil) {
		t.Fatal("out-of-range ranks must be invalid")
	}
	if topo.WorldSize() != 35 {
		t.Fatalf("WorldSize = %d, want 35", topo.WorldSize())
	}
}

func TestAddressingProperty(t *testing.T) {
	topo := New(16, 9)
	f := func(raw uint32) bool {
		r := Rank(raw % uint32(topo.WorldSize()))
		return topo.RankOf(topo.Node(r), topo.Core(r)) == r
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNewPanics(t *testing.T) {
	for _, tc := range [][2]int{{0, 4}, {4, 0}, {-1, 4}, {4, -2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d,%d) should panic", tc[0], tc[1])
				}
			}()
			New(tc[0], tc[1])
		}()
	}
}

func TestLayerArithmetic(t *testing.T) {
	topo := New(8, 4)
	// Nodes 0..3 are layer 0, nodes 4..7 layer 1.
	for n := 0; n < 8; n++ {
		if got, want := topo.Layer(n), n/4; got != want {
			t.Errorf("Layer(%d)=%d want %d", n, got, want)
		}
		if got, want := topo.LayerOffset(n), n%4; got != want {
			t.Errorf("LayerOffset(%d)=%d want %d", n, got, want)
		}
	}
}

func TestNLNRIntermediaries(t *testing.T) {
	topo := New(8, 4)
	// Message from node 1 to node 6: sender-side intermediary is core
	// 6%4=2 on node 1; receiver side is core 1%4=1 on node 6.
	if got, want := topo.NLNRLocalIntermediary(1, 6), topo.RankOf(1, 2); got != want {
		t.Errorf("local intermediary = %d want %d", got, want)
	}
	if got, want := topo.NLNRRemoteIntermediary(1, 6), topo.RankOf(6, 1); got != want {
		t.Errorf("remote intermediary = %d want %d", got, want)
	}
}

// TestRemotePartnerCounts checks the channel-size analysis of III-E: a
// core has (N-1)C remote partners with no routing, N-1 with
// NodeLocal/NodeRemote, and about N/C with NLNR.
func TestRemotePartnerCounts(t *testing.T) {
	topo := New(16, 4) // N multiple of C, as the paper assumes
	for r := Rank(0); int(r) < topo.WorldSize(); r++ {
		if got, want := len(topo.RemotePartners(NoRoute, r)), 15*4; got != want {
			t.Fatalf("NoRoute partners of %d = %d, want %d", r, got, want)
		}
		if got, want := len(topo.RemotePartners(NodeLocal, r)), 15; got != want {
			t.Fatalf("NodeLocal partners of %d = %d, want %d", r, got, want)
		}
		if got, want := len(topo.RemotePartners(NodeRemote, r)), 15; got != want {
			t.Fatalf("NodeRemote partners of %d = %d, want %d", r, got, want)
		}
		got := len(topo.RemotePartners(NLNR, r))
		// 16/4 = 4 nodes share each residue class; minus self when the
		// rank's node is in its own class.
		want := 4
		if topo.Node(r)%4 == topo.Core(r) {
			want = 3
		}
		if got != want {
			t.Fatalf("NLNR partners of %d = %d, want %d", r, got, want)
		}
	}
	if topo.MaxRemotePartners(NLNR) != 4 {
		t.Fatalf("MaxRemotePartners(NLNR) = %d, want 4", topo.MaxRemotePartners(NLNR))
	}
}

// TestNLNRChannelSymmetry verifies that NLNR channels are bidirectional:
// if a sends remotely to b, then b sends remotely to a.
func TestNLNRChannelSymmetry(t *testing.T) {
	topo := New(12, 4)
	for r := Rank(0); int(r) < topo.WorldSize(); r++ {
		for _, p := range topo.RemotePartners(NLNR, r) {
			back := topo.RemotePartners(NLNR, p)
			found := false
			for _, q := range back {
				if q == r {
					found = true
				}
			}
			if !found {
				t.Fatalf("rank %d sends to %d but not vice versa", r, p)
			}
		}
	}
}

// TestPathsDeliver checks, for every scheme and every (src,dst) pair in a
// small cluster, that routing terminates at dst within the advertised hop
// bound, that local/remote hop structure matches the protocol (NodeLocal
// never crosses the wire on its first of two hops toward an off-node,
// off-core destination, etc.), and that intermediate hops never self-loop.
func TestPathsDeliver(t *testing.T) {
	topo := New(8, 4)
	for _, s := range Schemes {
		for src := Rank(0); int(src) < topo.WorldSize(); src++ {
			for dst := Rank(0); int(dst) < topo.WorldSize(); dst++ {
				if src == dst {
					continue
				}
				path := topo.Path(s, src, dst)
				if path[len(path)-1] != dst {
					t.Fatalf("%v: path %d->%d = %v does not end at dst", s, src, dst, path)
				}
				if len(path) > MaxHops(s) {
					t.Fatalf("%v: path %d->%d has %d hops > max %d", s, src, dst, len(path), MaxHops(s))
				}
				prev := src
				for _, h := range path {
					if h == prev {
						t.Fatalf("%v: self-hop in path %d->%d: %v", s, src, dst, path)
					}
					prev = h
				}
			}
		}
	}
}

// TestNodeLocalHopStructure: the first hop of a NodeLocal route is always
// local and aligns the core offset; the second crosses the wire.
func TestNodeLocalHopStructure(t *testing.T) {
	topo := New(6, 4)
	src := topo.RankOf(1, 0)
	dst := topo.RankOf(4, 3)
	path := topo.Path(NodeLocal, src, dst)
	if len(path) != 2 {
		t.Fatalf("path = %v, want 2 hops", path)
	}
	if !topo.SameNode(src, path[0]) || topo.Core(path[0]) != 3 {
		t.Fatalf("first hop %d should be local with dst core offset", path[0])
	}
}

// TestNodeRemoteHopStructure: the first hop of a NodeRemote route crosses
// the wire keeping the core offset; the second is local delivery.
func TestNodeRemoteHopStructure(t *testing.T) {
	topo := New(6, 4)
	src := topo.RankOf(1, 0)
	dst := topo.RankOf(4, 3)
	path := topo.Path(NodeRemote, src, dst)
	if len(path) != 2 {
		t.Fatalf("path = %v, want 2 hops", path)
	}
	if topo.Node(path[0]) != 4 || topo.Core(path[0]) != 0 {
		t.Fatalf("first hop %d should be (4,0)", path[0])
	}
}

// TestNLNRHopStructure spells out the worked example from Section III-D:
// (n,c) -> (n, n' mod C) -> (n', n mod C) -> (n', c').
func TestNLNRHopStructure(t *testing.T) {
	topo := New(8, 4)
	src := topo.RankOf(1, 0)
	dst := topo.RankOf(6, 3)
	path := topo.Path(NLNR, src, dst)
	want := []Rank{topo.RankOf(1, 2), topo.RankOf(6, 1), topo.RankOf(6, 3)}
	if len(path) != len(want) {
		t.Fatalf("path = %v, want %v", path, want)
	}
	for i := range want {
		if path[i] != want[i] {
			t.Fatalf("path = %v, want %v", path, want)
		}
	}
}

// TestNLNRShortCircuits: when an intermediary coincides with the source or
// destination, hops are skipped rather than self-sent.
func TestNLNRShortCircuits(t *testing.T) {
	topo := New(8, 4)
	// Source already sits on the sender-side intermediary core:
	// src core == dstNode mod C, so the first hop crosses the wire.
	src := topo.RankOf(1, 2) // dstNode 6 mod 4 = 2
	dst := topo.RankOf(6, 3)
	path := topo.Path(NLNR, src, dst)
	if len(path) != 2 || path[0] != topo.RankOf(6, 1) {
		t.Fatalf("path = %v, want remote hop first", path)
	}
	// Destination is itself the receiver-side intermediary.
	dst2 := topo.RankOf(6, 1) // 1 == srcNode mod C
	path2 := topo.Path(NLNR, src, dst2)
	if path2[len(path2)-1] != dst2 || len(path2) != 1 {
		t.Fatalf("path = %v, want direct remote delivery", path2)
	}
}

// TestNLNRRemoteCrossingsUseChannels: every wire crossing in every NLNR
// path goes between ranks that are in each other's remote partner sets,
// i.e. messages only traverse the reduced channel set.
func TestNLNRRemoteCrossingsUseChannels(t *testing.T) {
	topo := New(12, 4)
	for src := Rank(0); int(src) < topo.WorldSize(); src++ {
		for dst := Rank(0); int(dst) < topo.WorldSize(); dst++ {
			if src == dst {
				continue
			}
			cur := src
			for _, hop := range topo.Path(NLNR, src, dst) {
				if !topo.SameNode(cur, hop) {
					ok := false
					for _, p := range topo.RemotePartners(NLNR, cur) {
						if p == hop {
							ok = true
						}
					}
					if !ok {
						t.Fatalf("wire crossing %d->%d is not an NLNR channel", cur, hop)
					}
				}
				cur = hop
			}
		}
	}
}

// TestPathsDeliverProperty fuzzes larger topologies, including N not a
// multiple of C (the paper assumes it is, but our implementation must not
// mis-route in the general case).
func TestPathsDeliverProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		topo := New(1+rng.Intn(20), 1+rng.Intn(9))
		s := Schemes[rng.Intn(len(Schemes))]
		src := Rank(rng.Intn(topo.WorldSize()))
		dst := Rank(rng.Intn(topo.WorldSize()))
		if src == dst {
			continue
		}
		path := topo.Path(s, src, dst)
		if path[len(path)-1] != dst {
			t.Fatalf("%v %v: %d->%d path %v", topo, s, src, dst, path)
		}
	}
}

func TestSchemeStringRoundTrip(t *testing.T) {
	for _, s := range Schemes {
		got, err := ParseScheme(s.String())
		if err != nil || got != s {
			t.Fatalf("ParseScheme(%q) = %v, %v", s.String(), got, err)
		}
	}
	if _, err := ParseScheme("bogus"); err == nil {
		t.Fatal("ParseScheme should reject unknown names")
	}
	if Scheme(99).String() == "" {
		t.Fatal("unknown scheme should still print")
	}
}

func TestLocalRanks(t *testing.T) {
	topo := New(3, 4)
	got := topo.LocalRanks(topo.RankOf(1, 2))
	if len(got) != 4 {
		t.Fatalf("LocalRanks = %v", got)
	}
	for c, r := range got {
		if topo.Node(r) != 1 || topo.Core(r) != c {
			t.Fatalf("LocalRanks = %v", got)
		}
	}
}

// TestSingleCoreNLNR: with C=1 every node is its own layer slot; NLNR must
// degrade to direct node-to-node sends without self loops.
func TestSingleCoreNLNR(t *testing.T) {
	topo := New(5, 1)
	for src := Rank(0); int(src) < 5; src++ {
		for dst := Rank(0); int(dst) < 5; dst++ {
			if src == dst {
				continue
			}
			path := topo.Path(NLNR, src, dst)
			if len(path) != 1 || path[0] != dst {
				t.Fatalf("C=1 NLNR path %d->%d = %v", src, dst, path)
			}
		}
	}
}

// TestSingleNode: with N=1 all traffic is local under every scheme.
func TestSingleNode(t *testing.T) {
	topo := New(1, 8)
	for _, s := range Schemes {
		for src := Rank(0); int(src) < 8; src++ {
			if n := len(topo.RemotePartners(s, src)); n != 0 {
				t.Fatalf("%v: single node has %d remote partners", s, n)
			}
			for dst := Rank(0); int(dst) < 8; dst++ {
				if src == dst {
					continue
				}
				path := topo.Path(s, src, dst)
				if len(path) != 1 {
					t.Fatalf("%v: local path %v", s, path)
				}
			}
		}
	}
}
