package machine

import "fmt"

// CheckHops verifies that an observed hop sequence conforms to the
// canonical route of scheme s from src to dst: the same length and the
// same intermediaries, in order, that Path produces, and within the
// scheme's MaxHops transmission bound. hops excludes src and includes
// the final delivery rank, matching Path's convention (a message
// delivered without forwarding has hops == []Rank{dst}; a self-send has
// no hops at all). It returns nil on conformance and a descriptive
// error naming the first divergence otherwise.
//
// This is the oracle check the simulation-fuzz harness runs against
// every unicast message: a routing mutation that still delivers — say,
// crossing the wire on the wrong core offset — produces correct
// payloads but a non-conforming hop sequence, and is caught here.
func (t Topology) CheckHops(s Scheme, src, dst Rank, hops []Rank) error {
	if !t.Valid(src) || !t.Valid(dst) {
		return fmt.Errorf("machine: hop check with invalid endpoint src=%d dst=%d in %v", src, dst, t)
	}
	if len(hops) > MaxHops(s) {
		return fmt.Errorf("machine: %v route %d->%d took %d hops, scheme bound is %d (hops %v)",
			s, src, dst, len(hops), MaxHops(s), hops)
	}
	prev := src
	for _, h := range hops {
		if h == prev {
			return fmt.Errorf("machine: %v route %d->%d contains self-hop at rank %d (hops %v)",
				s, src, dst, h, hops)
		}
		if !t.Valid(h) {
			return fmt.Errorf("machine: %v route %d->%d contains invalid rank %d (hops %v)",
				s, src, dst, h, hops)
		}
		prev = h
	}
	want := t.Path(s, src, dst)
	if len(hops) != len(want) {
		return fmt.Errorf("machine: %v route %d->%d took %d hops %v, want %d hops %v",
			s, src, dst, len(hops), hops, len(want), want)
	}
	for i := range want {
		if hops[i] != want[i] {
			return fmt.Errorf("machine: %v route %d->%d diverges at hop %d: got %d, want %d (got %v, want %v)",
				s, src, dst, i, hops[i], want[i], hops, want)
		}
	}
	return nil
}

// CheckRemoteEdge verifies the channel constraint of Section III-E for
// one observed transmission: if from and to are on different nodes, to
// must be one of from's direct remote partners under scheme s (N-1
// same-core-offset peers for NodeLocal/NodeRemote, the ~N/C residue
// channel for NLNR, any off-node core for NoRoute). Local edges always
// conform. A non-nil error means a message crossed the wire outside the
// scheme's channel set — the constraint that bounds per-rank connection
// state on a real interconnect.
func (t Topology) CheckRemoteEdge(s Scheme, from, to Rank) error {
	if !t.Valid(from) || !t.Valid(to) {
		return fmt.Errorf("machine: remote-edge check with invalid rank from=%d to=%d in %v", from, to, t)
	}
	if from == to {
		return fmt.Errorf("machine: %v self-edge on rank %d", s, from)
	}
	if t.SameNode(from, to) {
		return nil
	}
	for _, p := range t.RemotePartners(s, from) {
		if p == to {
			return nil
		}
	}
	return fmt.Errorf("machine: %v remote edge %d->%d outside the channel set %v of rank %d",
		s, from, to, t.RemotePartners(s, from), from)
}
