package machine

import "sort"

// Router is a per-(scheme, rank) next-hop table: NextHop's routing
// arithmetic evaluated once per destination at construction, so that
// steady-state routing is a single indexed load. Mailboxes build one
// Router per rank at startup and consult it on every queued message.
type Router struct {
	next []Rank
}

// NewRouter precomputes the next hop from cur to every destination rank
// under scheme s.
func (t Topology) NewRouter(s Scheme, cur Rank) *Router {
	next := make([]Rank, t.WorldSize())
	for d := range next {
		next[d] = t.NextHop(s, cur, Rank(d))
	}
	return &Router{next: next}
}

// Next returns the next hop toward dst. It is equivalent to
// Topology.NextHop for the scheme and rank the Router was built for.
//
//ygm:hotpath
func (r *Router) Next(dst Rank) Rank { return r.next[dst] }

// HopPartners returns every rank that r can ever transmit a packet to
// under scheme s, in ascending order: its same-node peers plus the
// RemotePartners channel set (for NoRoute, simply every other rank).
// This is the dense slot universe a coalescing mailbox needs — both
// unicast forwarding (every NextHop output) and broadcast fan-out stay
// within this set.
func (t Topology) HopPartners(s Scheme, r Rank) []Rank {
	if s == NoRoute {
		out := make([]Rank, 0, t.WorldSize()-1)
		for q := Rank(0); int(q) < t.WorldSize(); q++ {
			if q != r {
				out = append(out, q)
			}
		}
		return out
	}
	out := t.RemotePartners(s, r)
	for _, q := range t.LocalRanks(r) {
		if q != r {
			out = append(out, q)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
