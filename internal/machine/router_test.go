package machine

import "testing"

// testTopologies covers square, wide, tall, degenerate-node, and
// degenerate-core shapes; NLNR's layer arithmetic is exercised both when
// nodes%cores == 0 and when it is not.
var testTopologies = [][2]int{{1, 1}, {1, 4}, {4, 1}, {2, 3}, {4, 4}, {6, 4}, {5, 3}}

// TestRouterMatchesNextHop: the precomputed table must agree with the
// routing arithmetic for every (scheme, cur, dst) triple.
func TestRouterMatchesNextHop(t *testing.T) {
	for _, shape := range testTopologies {
		topo := New(shape[0], shape[1])
		for _, s := range Schemes {
			for cur := Rank(0); int(cur) < topo.WorldSize(); cur++ {
				rt := topo.NewRouter(s, cur)
				for dst := Rank(0); int(dst) < topo.WorldSize(); dst++ {
					if got, want := rt.Next(dst), topo.NextHop(s, cur, dst); got != want {
						t.Fatalf("%v %v: Router(%d).Next(%d) = %d, NextHop = %d",
							topo, s, cur, dst, got, want)
					}
				}
			}
		}
	}
}

// TestHopPartnersCoverNextHops: HopPartners is the dense slot universe a
// coalescing mailbox sizes its buffers from, so every next hop the router
// can ever emit for a non-self destination must be a member.
func TestHopPartnersCoverNextHops(t *testing.T) {
	for _, shape := range testTopologies {
		topo := New(shape[0], shape[1])
		for _, s := range Schemes {
			for cur := Rank(0); int(cur) < topo.WorldSize(); cur++ {
				members := map[Rank]bool{}
				prev := Rank(-1)
				for _, q := range topo.HopPartners(s, cur) {
					if q == cur {
						t.Fatalf("%v %v: HopPartners(%d) contains self", topo, s, cur)
					}
					if q <= prev {
						t.Fatalf("%v %v: HopPartners(%d) not strictly ascending: %v",
							topo, s, cur, topo.HopPartners(s, cur))
					}
					prev = q
					members[q] = true
				}
				for dst := Rank(0); int(dst) < topo.WorldSize(); dst++ {
					if dst == cur {
						continue
					}
					if hop := topo.NextHop(s, cur, dst); !members[hop] {
						t.Fatalf("%v %v: NextHop(%d→%d) = %d outside HopPartners %v",
							topo, s, cur, dst, hop, topo.HopPartners(s, cur))
					}
				}
			}
		}
	}
}

// TestHopPartnersCoverBroadcastTargets: the mailbox broadcast fan-outs
// transmit to same-node peers and to the scheme's remote-partner channel
// set; both must sit inside the slot universe.
func TestHopPartnersCoverBroadcastTargets(t *testing.T) {
	for _, shape := range testTopologies {
		topo := New(shape[0], shape[1])
		for _, s := range Schemes {
			for cur := Rank(0); int(cur) < topo.WorldSize(); cur++ {
				members := map[Rank]bool{}
				for _, q := range topo.HopPartners(s, cur) {
					members[q] = true
				}
				for _, q := range topo.LocalRanks(cur) {
					if q != cur && !members[q] {
						t.Fatalf("%v %v: local peer %d of %d outside HopPartners", topo, s, q, cur)
					}
				}
				if s != NoRoute {
					for _, q := range topo.RemotePartners(s, cur) {
						if !members[q] {
							t.Fatalf("%v %v: remote partner %d of %d outside HopPartners", topo, s, q, cur)
						}
					}
				}
			}
		}
	}
}
