package machine

import "testing"

// FuzzTopologyRanks drives the addressing and routing algebra with
// arbitrary topology shapes and rank pairs: rank<->(node,core) must
// round-trip, and every unicast path must satisfy the same properties
// the simulation-fuzz oracle enforces (terminates at dst, within the
// scheme's hop bound, no self-hops, channel-conformant remote edges,
// accepted by CheckHops).
func FuzzTopologyRanks(f *testing.F) {
	f.Add(uint8(1), uint8(1), uint16(0), uint16(0), uint8(0))
	f.Add(uint8(4), uint8(3), uint16(5), uint16(11), uint8(3))
	f.Add(uint8(2), uint8(8), uint16(1), uint16(15), uint8(2))
	f.Add(uint8(7), uint8(3), uint16(20), uint16(2), uint8(1))
	f.Add(uint8(64), uint8(64), uint16(4095), uint16(0), uint8(3))
	f.Fuzz(func(t *testing.T, nodes, cores uint8, a, b uint16, schemeSel uint8) {
		n := int(nodes%64) + 1
		c := int(cores%64) + 1
		topo := New(n, c)
		world := topo.WorldSize()
		src := Rank(int(a) % world)
		dst := Rank(int(b) % world)
		s := Schemes[int(schemeSel)%len(Schemes)]

		for _, r := range []Rank{src, dst} {
			if got := topo.RankOf(topo.Node(r), topo.Core(r)); got != r {
				t.Fatalf("%v: rank %d round-trips to %d", topo, r, got)
			}
			if !topo.Valid(r) {
				t.Fatalf("%v: rank %d invalid", topo, r)
			}
		}
		if src == dst {
			if got := topo.NextHop(s, src, dst); got != dst {
				t.Fatalf("%v %s: NextHop(%d,%d) = %d", topo, s, src, dst, got)
			}
			return
		}
		path := topo.Path(s, src, dst)
		if len(path) == 0 || path[len(path)-1] != dst {
			t.Fatalf("%v %s: Path(%d,%d) = %v does not reach dst", topo, s, src, dst, path)
		}
		if len(path) > MaxHops(s) {
			t.Fatalf("%v %s: Path(%d,%d) = %v exceeds %d hops", topo, s, src, dst, path, MaxHops(s))
		}
		prev := src
		for _, h := range path {
			if h == prev {
				t.Fatalf("%v %s: Path(%d,%d) = %v self-hop", topo, s, src, dst, path)
			}
			if !topo.SameNode(prev, h) {
				if err := topo.CheckRemoteEdge(s, prev, h); err != nil {
					t.Fatalf("%v %s: Path(%d,%d) = %v: %v", topo, s, src, dst, path, err)
				}
			}
			prev = h
		}
		if err := topo.CheckHops(s, src, dst, path); err != nil {
			t.Fatalf("%v %s: CheckHops rejected Path(%d,%d) = %v: %v", topo, s, src, dst, path, err)
		}
	})
}
