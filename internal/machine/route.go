package machine

// NextHop returns the next rank a unicast message should be forwarded to
// under scheme s, given that it is currently held by cur and finally
// destined for dst. It returns dst itself when the next hop is the final
// delivery. NextHop encodes the three routing protocols of Section III:
//
//	NoRoute:    cur -> dst
//	NodeLocal:  (n,c) -> (n,c') -> (n',c')   local exchange first
//	NodeRemote: (n,c) -> (n',c) -> (n',c')   remote exchange first
//	NLNR:       (n,c) -> (n, n'%C) -> (n', n%C) -> (n',c')
//
// Every protocol short-circuits hops that would land on the rank already
// holding the message, so paths never contain self-sends.
func (t Topology) NextHop(s Scheme, cur, dst Rank) Rank {
	if cur == dst {
		return dst
	}
	switch s {
	case NoRoute:
		return dst
	case NodeLocal:
		if t.SameNode(cur, dst) {
			return dst
		}
		// First align the core offset locally, then cross the wire.
		if t.Core(cur) == t.Core(dst) {
			return dst
		}
		return t.RankOf(t.Node(cur), t.Core(dst))
	case NodeRemote:
		if t.SameNode(cur, dst) {
			return dst
		}
		// Cross the wire on the current core offset, then align locally.
		hop := t.RankOf(t.Node(dst), t.Core(cur))
		if hop == cur { // cannot happen: different nodes
			return dst
		}
		return hop
	case NLNR:
		if t.SameNode(cur, dst) {
			return dst
		}
		srcNode, dstNode := t.Node(cur), t.Node(dst)
		if t.Core(cur) == t.LayerOffset(dstNode) {
			// cur is the sender-side intermediary: remote hop.
			return t.NLNRRemoteIntermediary(srcNode, dstNode)
		}
		// Local hop to the sender-side intermediary.
		return t.NLNRLocalIntermediary(srcNode, dstNode)
	}
	panic("machine: unknown scheme")
}

// Path returns the complete hop sequence a unicast message takes from src
// to dst under scheme s, excluding src and including dst. A message
// delivered without forwarding returns []Rank{dst}. Paths have length at
// most 2 for NoRoute/NodeLocal/NodeRemote and at most 3 for NLNR,
// matching the transmission-count analysis in Section III-D.
func (t Topology) Path(s Scheme, src, dst Rank) []Rank {
	var path []Rank
	cur := src
	for cur != dst {
		next := t.NextHop(s, cur, dst)
		path = append(path, next)
		if len(path) > 4 {
			panic("machine: routing loop")
		}
		cur = next
	}
	return path
}

// MaxHops returns the maximum number of transmissions a unicast message
// can take under scheme s.
func MaxHops(s Scheme) int {
	switch s {
	case NoRoute:
		return 1
	case NodeLocal, NodeRemote:
		return 2
	case NLNR:
		return 3
	}
	panic("machine: unknown scheme")
}
