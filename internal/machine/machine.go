// Package machine models the cluster topology YGM routes over: N compute
// nodes with C cores each. Ranks are addressed either by a flat offset in
// [0, N*C) or by the (node, core) tuple the paper uses. The package also
// implements the NLNR "layer" arithmetic (nodes are grouped into layers of
// size C; a node's layer offset is node mod C) and enumerates the remote
// partner sets each routing scheme induces, which the routing analysis in
// Section III of the paper reasons about.
package machine

import "fmt"

// Rank identifies a single core (an MPI-rank analogue) in the cluster.
type Rank int32

// Nil is the invalid rank.
const Nil Rank = -1

// Topology describes a cluster of Nodes compute nodes, each with Cores
// cores. The zero value is invalid; use New.
type Topology struct {
	nodes int
	cores int
}

// New returns a Topology with the given node and core counts.
// It panics if either is non-positive; topologies are configuration,
// so a bad one is a programming error.
func New(nodes, cores int) Topology {
	if nodes <= 0 || cores <= 0 {
		panic(fmt.Sprintf("machine: invalid topology %d nodes x %d cores", nodes, cores))
	}
	if nodes*cores > 1<<24 {
		panic(fmt.Sprintf("machine: topology %dx%d exceeds %d ranks", nodes, cores, 1<<24))
	}
	return Topology{nodes: nodes, cores: cores}
}

// Nodes returns the number of compute nodes.
func (t Topology) Nodes() int { return t.nodes }

// Cores returns the number of cores per node.
func (t Topology) Cores() int { return t.cores }

// WorldSize returns the total number of ranks, Nodes*Cores.
func (t Topology) WorldSize() int { return t.nodes * t.cores }

// RankOf returns the rank living on core c of node n.
func (t Topology) RankOf(node, core int) Rank {
	if node < 0 || node >= t.nodes || core < 0 || core >= t.cores {
		panic(fmt.Sprintf("machine: (%d,%d) outside %dx%d topology", node, core, t.nodes, t.cores))
	}
	return Rank(node*t.cores + core)
}

// Node returns the node offset of r.
func (t Topology) Node(r Rank) int { return int(r) / t.cores }

// Core returns the core offset of r within its node.
func (t Topology) Core(r Rank) int { return int(r) % t.cores }

// Valid reports whether r addresses a rank in this topology.
func (t Topology) Valid(r Rank) bool { return r >= 0 && int(r) < t.WorldSize() }

// SameNode reports whether a and b live on the same compute node, i.e.
// whether a message between them is "local" in the paper's terminology.
func (t Topology) SameNode(a, b Rank) bool { return t.Node(a) == t.Node(b) }

// Layer returns the NLNR layer index of a node: nodes are grouped into
// layers of Cores consecutive nodes.
func (t Topology) Layer(node int) int { return node / t.cores }

// LayerOffset returns the NLNR layer offset of a node, node mod Cores.
// The paper writes this as l = n mod C.
func (t Topology) LayerOffset(node int) int { return node % t.cores }

// NLNRRemoteIntermediary returns the rank that receives, on dstNode, the
// remote NLNR hop of a message that originated on srcNode: core
// (srcNode mod C) of dstNode. The sender-side intermediary on srcNode is
// core (dstNode mod C); see NLNRLocalIntermediary.
func (t Topology) NLNRRemoteIntermediary(srcNode, dstNode int) Rank {
	return t.RankOf(dstNode, t.LayerOffset(srcNode))
}

// NLNRLocalIntermediary returns the rank on node that aggregates messages
// destined for dstNode under NLNR routing: core (dstNode mod C) of node.
func (t Topology) NLNRLocalIntermediary(node, dstNode int) Rank {
	return t.RankOf(node, t.LayerOffset(dstNode))
}

// Scheme enumerates the routing protocols of Section III.
type Scheme int

const (
	// NoRoute sends every message directly to its destination core.
	NoRoute Scheme = iota
	// NodeLocal performs a local exchange, then C remote exchanges among
	// cores with matching core offset.
	NodeLocal
	// NodeRemote performs the remote exchange first, then a local one.
	NodeRemote
	// NLNR (node local node remote) performs local, remote, local
	// exchanges and routes each node pair through a single channel.
	NLNR
)

// Schemes lists all routing schemes in presentation order.
var Schemes = []Scheme{NoRoute, NodeLocal, NodeRemote, NLNR}

// String returns the scheme name as used in the paper's figures.
func (s Scheme) String() string {
	switch s {
	case NoRoute:
		return "NoRoute"
	case NodeLocal:
		return "NodeLocal"
	case NodeRemote:
		return "NodeRemote"
	case NLNR:
		return "NLNR"
	}
	return fmt.Sprintf("Scheme(%d)", int(s))
}

// ParseScheme converts a scheme name (case-sensitive, as printed by
// String) back to a Scheme.
func ParseScheme(name string) (Scheme, error) {
	for _, s := range Schemes {
		if s.String() == name {
			return s, nil
		}
	}
	return NoRoute, fmt.Errorf("machine: unknown routing scheme %q", name)
}

// RemotePartners returns the set of remote ranks that rank r sends
// directly to (over the wire) under scheme s, in ascending order. This is
// the "channel" membership analysis of Section III-E:
//
//	NoRoute:               (N-1)*C partners (every off-node core)
//	NodeLocal/NodeRemote:  N-1 partners (same core offset on other nodes)
//	NLNR:                  ~N/C partners (core srcNode%C on nodes n' = core mod C)
func (t Topology) RemotePartners(s Scheme, r Rank) []Rank {
	node, core := t.Node(r), t.Core(r)
	var out []Rank
	switch s {
	case NoRoute:
		for n := 0; n < t.nodes; n++ {
			if n == node {
				continue
			}
			for c := 0; c < t.cores; c++ {
				out = append(out, t.RankOf(n, c))
			}
		}
	case NodeLocal, NodeRemote:
		for n := 0; n < t.nodes; n++ {
			if n != node {
				out = append(out, t.RankOf(n, core))
			}
		}
	case NLNR:
		// r sends remotely to (n', node mod C) for every n' with
		// n' mod C == core. The reverse direction is symmetric: that
		// partner's sends to nodes == node (mod C) target core
		// (partnerNode mod C)... which lands back on r exactly when
		// n' mod C == core, so the channel is bidirectional.
		for n := core; n < t.nodes; n += t.cores {
			if n != node {
				out = append(out, t.NLNRRemoteIntermediary(node, n))
			}
		}
	}
	return out
}

// MaxRemotePartners returns the worst-case direct remote partner count any
// rank has under scheme s, matching the channel-size analysis in III-E.
func (t Topology) MaxRemotePartners(s Scheme) int {
	max := 0
	for r := Rank(0); int(r) < t.WorldSize(); r++ {
		if n := len(t.RemotePartners(s, r)); n > max {
			max = n
		}
	}
	return max
}

// LocalRanks returns all ranks on the same node as r, including r itself,
// in ascending order.
func (t Topology) LocalRanks(r Rank) []Rank {
	node := t.Node(r)
	out := make([]Rank, t.cores)
	for c := 0; c < t.cores; c++ {
		out[c] = t.RankOf(node, c)
	}
	return out
}

// String implements fmt.Stringer.
func (t Topology) String() string {
	return fmt.Sprintf("%d nodes x %d cores (%d ranks)", t.nodes, t.cores, t.WorldSize())
}
