package machine

import (
	"fmt"
	"testing"
)

// edgeTopos are the shapes where routing arithmetic historically breaks:
// single core (C=1 collapses every local exchange), single node (no
// remote traffic at all), more cores than nodes (N<C leaves empty NLNR
// residue classes), N=C squares, and layer sizes that do not divide the
// node count.
var edgeTopos = [][2]int{
	{1, 1}, {2, 1}, {5, 1}, // C=1
	{1, 2}, {1, 5}, // N=1
	{2, 4}, {3, 5}, {2, 8}, // N<C
	{3, 3}, {4, 4}, // N=C
	{5, 2}, {7, 3}, {9, 4}, {5, 4}, // non-divisible layers
	{6, 3}, {8, 2}, // divisible controls
}

// TestPathPropertiesExhaustive checks, for every edge topology, every
// scheme, and every (src, dst) pair, the full contract of Path/NextHop:
// termination at dst, the per-scheme hop bound (<=2 for the two-stage
// schemes, <=3 for NLNR), no self-hops, no repeated ranks, every hop
// valid, every remote crossing inside the scheme's channel set, and
// agreement with the CheckHops conformance checker the simulation-fuzz
// oracle uses.
func TestPathPropertiesExhaustive(t *testing.T) {
	for _, shape := range edgeTopos {
		topo := New(shape[0], shape[1])
		for _, s := range Schemes {
			t.Run(fmt.Sprintf("%dx%d/%s", shape[0], shape[1], s), func(t *testing.T) {
				world := topo.WorldSize()
				for src := Rank(0); int(src) < world; src++ {
					for dst := Rank(0); int(dst) < world; dst++ {
						if src == dst {
							continue
						}
						path := topo.Path(s, src, dst)
						if len(path) == 0 || path[len(path)-1] != dst {
							t.Fatalf("Path(%s,%d,%d) = %v does not end at dst", s, src, dst, path)
						}
						if len(path) > MaxHops(s) {
							t.Fatalf("Path(%s,%d,%d) = %v exceeds MaxHops %d", s, src, dst, path, MaxHops(s))
						}
						seen := map[Rank]bool{src: true}
						prev := src
						for _, h := range path {
							if h == prev {
								t.Fatalf("Path(%s,%d,%d) = %v contains self-hop at %d", s, src, dst, path, h)
							}
							if !topo.Valid(h) {
								t.Fatalf("Path(%s,%d,%d) = %v contains invalid rank %d", s, src, dst, path, h)
							}
							if seen[h] {
								t.Fatalf("Path(%s,%d,%d) = %v revisits rank %d", s, src, dst, path, h)
							}
							seen[h] = true
							if !topo.SameNode(prev, h) {
								if err := topo.CheckRemoteEdge(s, prev, h); err != nil {
									t.Fatalf("Path(%s,%d,%d) = %v: %v", s, src, dst, path, err)
								}
							}
							prev = h
						}
						if err := topo.CheckHops(s, src, dst, path); err != nil {
							t.Fatalf("CheckHops rejects its own Path(%s,%d,%d) = %v: %v", s, src, dst, path, err)
						}
					}
				}
			})
		}
	}
}

// TestNextHopSelfIsIdentity pins the short-circuit rule: the next hop
// from a rank to itself is itself, for every scheme and topology.
func TestNextHopSelfIsIdentity(t *testing.T) {
	for _, shape := range edgeTopos {
		topo := New(shape[0], shape[1])
		for _, s := range Schemes {
			for r := Rank(0); int(r) < topo.WorldSize(); r++ {
				if got := topo.NextHop(s, r, r); got != r {
					t.Fatalf("%dx%d %s: NextHop(%d,%d) = %d", shape[0], shape[1], s, r, r, got)
				}
			}
		}
	}
}

// TestNextHopNeverSelf pins that forwarding always makes progress: for
// cur != dst the next hop is never cur.
func TestNextHopNeverSelf(t *testing.T) {
	for _, shape := range edgeTopos {
		topo := New(shape[0], shape[1])
		for _, s := range Schemes {
			world := topo.WorldSize()
			for cur := Rank(0); int(cur) < world; cur++ {
				for dst := Rank(0); int(dst) < world; dst++ {
					if cur == dst {
						continue
					}
					if got := topo.NextHop(s, cur, dst); got == cur {
						t.Fatalf("%dx%d %s: NextHop(%d,%d) returned cur", shape[0], shape[1], s, cur, dst)
					}
				}
			}
		}
	}
}

// TestSingleNodePathsAreDirect: with one node everything is a local
// exchange, so every scheme must deliver in exactly one hop.
func TestSingleNodePathsAreDirect(t *testing.T) {
	for _, cores := range []int{1, 2, 3, 8} {
		topo := New(1, cores)
		for _, s := range Schemes {
			for src := Rank(0); int(src) < cores; src++ {
				for dst := Rank(0); int(dst) < cores; dst++ {
					if src == dst {
						continue
					}
					if path := topo.Path(s, src, dst); len(path) != 1 || path[0] != dst {
						t.Fatalf("1x%d %s: Path(%d,%d) = %v, want direct", cores, s, src, dst, path)
					}
				}
			}
		}
	}
}

// TestCheckHopsRejects pins the conformance checker's error cases: the
// oracle depends on these firing for mutated routing.
func TestCheckHopsRejects(t *testing.T) {
	topo := New(3, 2) // NLNR paths up to 3 hops
	src, dst := topo.RankOf(0, 0), topo.RankOf(2, 1)
	good := topo.Path(NLNR, src, dst)
	cases := []struct {
		name string
		s    Scheme
		hops []Rank
	}{
		{"empty", NLNR, nil},
		{"wrong-final", NLNR, append(append([]Rank{}, good[:len(good)-1]...), topo.RankOf(1, 0))},
		{"too-long", NoRoute, []Rank{topo.RankOf(1, 0), dst}},
		{"self-hop", NLNR, append([]Rank{src}, good...)},
		{"invalid-rank", NLNR, []Rank{99, dst}},
		{"divergent", NLNR, append([]Rank{topo.RankOf(1, 1)}, good[1:]...)},
	}
	for _, tc := range cases {
		if err := topo.CheckHops(tc.s, src, dst, tc.hops); err == nil {
			t.Errorf("%s: CheckHops accepted %v", tc.name, tc.hops)
		}
	}
	if err := topo.CheckHops(NLNR, src, dst, good); err != nil {
		t.Fatalf("CheckHops rejected the canonical path: %v", err)
	}
}

// TestCheckRemoteEdgeMatrix verifies CheckRemoteEdge agrees exactly with
// RemotePartners membership for every pair on every edge topology.
func TestCheckRemoteEdgeMatrix(t *testing.T) {
	for _, shape := range edgeTopos {
		topo := New(shape[0], shape[1])
		for _, s := range Schemes {
			world := topo.WorldSize()
			for from := Rank(0); int(from) < world; from++ {
				partners := map[Rank]bool{}
				for _, p := range topo.RemotePartners(s, from) {
					partners[p] = true
				}
				for to := Rank(0); int(to) < world; to++ {
					err := topo.CheckRemoteEdge(s, from, to)
					switch {
					case from == to:
						if err == nil {
							t.Fatalf("%dx%d %s: self-edge %d accepted", shape[0], shape[1], s, from)
						}
					case topo.SameNode(from, to):
						if err != nil {
							t.Fatalf("%dx%d %s: local edge %d->%d rejected: %v", shape[0], shape[1], s, from, to, err)
						}
					case partners[to] != (err == nil):
						t.Fatalf("%dx%d %s: edge %d->%d: partner=%v err=%v", shape[0], shape[1], s, from, to, partners[to], err)
					}
				}
			}
		}
	}
}
