// Package havoq is a vertex-visitor execution framework in the style of
// HavoqGT, the LLNL asynchronous graph library the paper names as YGM's
// first production user (Section I; YGM "has been incorporated into
// HavoqGT"). Algorithms are expressed as visitors: small payloads
// targeted at vertices, delivered through the YGM mailbox, and queued in
// a rank-local work queue (FIFO or priority-ordered). The engine
// interleaves local queue processing with nonblocking termination
// detection — the TEST_EMPTY polling pattern Section IV-B describes for
// "algorithms that maintain work queues external to YGM".
package havoq

import (
	"container/heap"
	"fmt"

	"ygm/internal/machine"
	"ygm/internal/transport"
	"ygm/internal/ygm"
)

// VisitFunc processes one visitor payload on its target rank. It may
// push further visitors (locally or remotely) through the engine. The
// payload aliases internal buffers: copy anything retained.
type VisitFunc func(e *Engine, payload []byte)

// Config parameterizes an Engine.
type Config struct {
	// Mailbox carries routing scheme and capacity. The engine forces
	// LazyExchange regardless of the Exchange field: its Run loop is
	// built on nonblocking TestEmpty polling, which only the lazy
	// mailbox supports.
	Mailbox ygm.Options
	// Less, when non-nil, orders the local work queue as a priority
	// queue over visitor payloads (e.g. by tentative distance for
	// SSSP). Nil means FIFO.
	Less func(a, b []byte) bool
	// MaxQueue bounds the local queue (0 = unbounded). Exceeding it
	// panics: visitor algorithms are expected to be work-bounded.
	MaxQueue int
}

// Engine is the per-rank visitor executor. Confined to its rank's
// goroutine.
type Engine struct {
	p     *transport.Proc
	mb    ygm.Box
	visit VisitFunc
	cfg   Config

	fifo  [][]byte
	pq    payloadHeap
	stats Stats
}

// Stats counts engine activity on one rank.
type Stats struct {
	// Visits is the number of visitor executions.
	Visits uint64
	// LocalPushes / RemotePushes split Push destinations.
	LocalPushes  uint64
	RemotePushes uint64
	// MaxQueueDepth is the local queue's high-water mark.
	MaxQueueDepth int
}

// New creates an engine on rank p. Collective: all ranks must construct
// engines with identical options before Run.
func New(p *transport.Proc, visit VisitFunc, cfg Config) *Engine {
	if visit == nil {
		panic("havoq: nil visit function")
	}
	e := &Engine{p: p, visit: visit, cfg: cfg}
	if cfg.Less != nil {
		e.pq.less = cfg.Less
	}
	e.mb = ygm.New(p, func(s ygm.Sender, payload []byte) {
		// Mailbox deliveries enqueue work rather than running it inline,
		// so visit-time sends never recurse through the handler.
		buf := make([]byte, len(payload))
		copy(buf, payload)
		e.enqueue(buf)
	}, append(mailboxOptions(cfg.Mailbox), ygm.WithExchange(ygm.LazyExchange))...)
	return e
}

// Proc returns the underlying transport endpoint.
func (e *Engine) Proc() *transport.Proc { return e.p }

// Mailbox exposes the engine's mailbox (for stats).
func (e *Engine) Mailbox() ygm.Box { return e.mb }

// Stats returns a copy of the engine counters.
func (e *Engine) Stats() Stats { return e.stats }

// Push schedules a visitor on dst. Pushes to the local rank enqueue
// directly; remote pushes travel through the mailbox.
func (e *Engine) Push(dst machine.Rank, payload []byte) {
	if dst == e.p.Rank() {
		e.stats.LocalPushes++
		buf := make([]byte, len(payload))
		copy(buf, payload)
		e.enqueue(buf)
		return
	}
	e.stats.RemotePushes++
	e.mb.Send(dst, payload)
}

func (e *Engine) enqueue(payload []byte) {
	if e.cfg.Less != nil {
		heap.Push(&e.pq, payload)
	} else {
		e.fifo = append(e.fifo, payload)
	}
	if d := e.queueLen(); d > e.stats.MaxQueueDepth {
		e.stats.MaxQueueDepth = d
	}
	if e.cfg.MaxQueue > 0 && e.queueLen() > e.cfg.MaxQueue {
		panic(fmt.Sprintf("havoq: rank %d local queue exceeded %d", e.p.Rank(), e.cfg.MaxQueue))
	}
}

func (e *Engine) queueLen() int {
	if e.cfg.Less != nil {
		return e.pq.Len()
	}
	return len(e.fifo)
}

func (e *Engine) pop() ([]byte, bool) {
	if e.cfg.Less != nil {
		if e.pq.Len() == 0 {
			return nil, false
		}
		return heap.Pop(&e.pq).([]byte), true
	}
	if len(e.fifo) == 0 {
		return nil, false
	}
	v := e.fifo[0]
	e.fifo[0] = nil
	e.fifo = e.fifo[1:]
	return v, true
}

// Run executes visitors until global quiescence: every local queue is
// empty, every mailbox buffer flushed, and no visitor in flight
// anywhere. Collective — all ranks must call Run together, and the
// visitor workload must be finite. The engine is reusable afterwards.
func (e *Engine) Run() {
	for {
		// Drain the local queue; visits may push more work.
		for {
			v, ok := e.pop()
			if !ok {
				break
			}
			e.stats.Visits++
			e.visit(e, v)
		}
		// Local queue empty: make nonblocking termination progress.
		// TestEmpty drains arrived mailbox traffic, which may enqueue
		// new visitors — loop back if so; only a true verdict with a
		// still-empty queue terminates.
		done, err := e.mb.TestEmpty()
		if err != nil {
			// Unreachable: New forces the lazy mailbox, which supports
			// nonblocking polling.
			panic(fmt.Sprintf("havoq: %v", err))
		}
		if e.queueLen() > 0 {
			continue
		}
		if done {
			return
		}
		// Idle: give peer goroutines the host CPU while we poll.
		e.p.Yield()
	}
}

// payloadHeap is a priority queue over visitor payloads.
type payloadHeap struct {
	items [][]byte
	less  func(a, b []byte) bool
}

func (h *payloadHeap) Len() int           { return len(h.items) }
func (h *payloadHeap) Less(i, j int) bool { return h.less(h.items[i], h.items[j]) }
func (h *payloadHeap) Swap(i, j int)      { h.items[i], h.items[j] = h.items[j], h.items[i] }
func (h *payloadHeap) Push(x interface{}) { h.items = append(h.items, x.([]byte)) }
func (h *payloadHeap) Pop() interface{} {
	n := len(h.items)
	v := h.items[n-1]
	h.items[n-1] = nil
	h.items = h.items[:n-1]
	return v
}
