package havoq

import "ygm/internal/ygm"

// mailboxOptions expands the engine config's ygm.Options value into
// the equivalent Option list (every field set); the engine appends its
// own overrides after it.
func mailboxOptions(o ygm.Options) []ygm.Option {
	return []ygm.Option{
		ygm.WithScheme(o.Scheme),
		ygm.WithCapacity(o.Capacity),
		ygm.WithPollEvery(o.PollEvery),
		ygm.WithExchange(o.Exchange),
		ygm.WithZeroCopyLocal(o.ZeroCopyLocal),
		ygm.WithCopyOnDeliver(o.CopyOnDeliver),
		ygm.WithTap(o.Tap),
		ygm.WithHooks(o.Hooks),
	}
}
