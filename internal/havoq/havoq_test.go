package havoq

import (
	"fmt"
	"sync"
	"testing"

	"ygm/internal/codec"
	"ygm/internal/graph"
	"ygm/internal/machine"
	"ygm/internal/netsim"
	"ygm/internal/transport"
	"ygm/internal/ygm"
)

func runHavoq(t *testing.T, nodes, cores int, body func(p *transport.Proc) error) {
	t.Helper()
	_, err := transport.Run(transport.Config{
		Topo:  machine.New(nodes, cores),
		Model: netsim.Quartz(),
		Seed:  19,
	}, body)
	if err != nil {
		t.Fatal(err)
	}
}

func TestNilVisitPanics(t *testing.T) {
	runHavoq(t, 1, 1, func(p *transport.Proc) error {
		defer func() {
			if recover() == nil {
				t.Error("nil visit accepted")
			}
		}()
		New(p, nil, Config{})
		return nil
	})
}

// TestVisitorDelivery: visitors pushed to every rank run exactly once on
// their target, local and remote alike.
func TestVisitorDelivery(t *testing.T) {
	var mu sync.Mutex
	ran := map[machine.Rank][]uint64{}
	runHavoq(t, 2, 3, func(p *transport.Proc) error {
		e := New(p, func(e *Engine, payload []byte) {
			v, err := codec.NewReader(payload).Uvarint()
			if err != nil {
				panic(err)
			}
			mu.Lock()
			ran[e.Proc().Rank()] = append(ran[e.Proc().Rank()], v)
			mu.Unlock()
		}, Config{Mailbox: ygm.Options{Scheme: machine.NLNR, Capacity: 16}})
		for dst := 0; dst < p.WorldSize(); dst++ {
			w := codec.NewWriter(10)
			w.Uvarint(uint64(p.Rank())*100 + uint64(dst))
			e.Push(machine.Rank(dst), w.Bytes())
		}
		e.Run()
		st := e.Stats()
		if st.LocalPushes != 1 || st.RemotePushes != uint64(p.WorldSize()-1) {
			return fmt.Errorf("push split = %+v", st)
		}
		return nil
	})
	for r := machine.Rank(0); r < 6; r++ {
		got := ran[r]
		if len(got) != 6 {
			t.Fatalf("rank %d ran %d visitors, want 6", r, len(got))
		}
		for _, v := range got {
			if int(v%100) != int(r) {
				t.Fatalf("rank %d ran visitor for %d", r, v%100)
			}
		}
	}
}

// TestFIFOOrder: without Less, a rank's self-pushed visitors run in
// push order.
func TestFIFOOrder(t *testing.T) {
	runHavoq(t, 1, 1, func(p *transport.Proc) error {
		var got []uint64
		e := New(p, func(e *Engine, payload []byte) {
			v, _ := codec.NewReader(payload).Uvarint()
			got = append(got, v)
		}, Config{})
		for i := uint64(0); i < 10; i++ {
			w := codec.NewWriter(10)
			w.Uvarint(i)
			e.Push(0, w.Bytes())
		}
		e.Run()
		for i, v := range got {
			if v != uint64(i) {
				return fmt.Errorf("order = %v", got)
			}
		}
		return nil
	})
}

// TestPriorityOrder: with Less, visitors run lowest-key first even when
// pushed in reverse.
func TestPriorityOrder(t *testing.T) {
	key := func(b []byte) uint64 {
		v, _ := codec.NewReader(b).Uvarint()
		return v
	}
	runHavoq(t, 1, 1, func(p *transport.Proc) error {
		var got []uint64
		e := New(p, func(e *Engine, payload []byte) {
			got = append(got, key(payload))
		}, Config{Less: func(a, b []byte) bool { return key(a) < key(b) }})
		for i := 10; i > 0; i-- {
			w := codec.NewWriter(10)
			w.Uvarint(uint64(i))
			e.Push(0, w.Bytes())
		}
		e.Run()
		for i := 1; i < len(got); i++ {
			if got[i] < got[i-1] {
				return fmt.Errorf("priority order violated: %v", got)
			}
		}
		return nil
	})
}

func TestMaxQueuePanics(t *testing.T) {
	_, err := transport.Run(transport.Config{Topo: machine.New(1, 1)}, func(p *transport.Proc) error {
		e := New(p, func(e *Engine, payload []byte) {}, Config{MaxQueue: 2})
		for i := 0; i < 3; i++ {
			e.Push(0, []byte{1})
		}
		e.Run()
		return nil
	})
	if err == nil {
		t.Fatal("queue bound should panic -> error")
	}
}

// --- BFS as a visitor algorithm --------------------------------------------

// bfsVisitorState is the per-rank state of visitor BFS.
type bfsVisitorState struct {
	world int
	adj   map[uint64][]uint64
	dist  map[uint64]uint64
}

func encodeVisit(v, d uint64) []byte {
	w := codec.NewWriter(20)
	w.Uvarint(v)
	w.Uvarint(d)
	return w.Bytes()
}

func decodeVisit(b []byte) (v, d uint64) {
	r := codec.NewReader(b)
	v, _ = r.Uvarint()
	d, _ = r.Uvarint()
	return
}

func (st *bfsVisitorState) visit(e *Engine, payload []byte) {
	v, d := decodeVisit(payload)
	if old, ok := st.dist[v]; ok && old <= d {
		return
	}
	st.dist[v] = d
	for _, u := range st.adj[v] {
		e.Push(machine.Rank(graph.Owner(u, st.world)), encodeVisit(u, d+1))
	}
}

// TestVisitorBFSMatchesOracle: asynchronous visitor BFS (no level
// barriers at all — visits propagate chaotically and the engine detects
// quiescence) produces exact BFS levels.
func TestVisitorBFSMatchesOracle(t *testing.T) {
	const scale, edgesPerRank, world = 8, 220, 6
	// Build the oracle from the same per-rank streams.
	n := uint64(1) << scale
	adjAll := make([][]uint64, n)
	for r := 0; r < world; r++ {
		g := graph.NewRMAT(graph.Graph500, scale, 1000+int64(r))
		for k := 0; k < edgesPerRank; k++ {
			e := g.Next()
			adjAll[e.U] = append(adjAll[e.U], e.V)
			adjAll[e.V] = append(adjAll[e.V], e.U)
		}
	}
	want := make(map[uint64]uint64)
	want[0] = 0
	queue := []uint64{0}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range adjAll[u] {
			if _, ok := want[v]; !ok {
				want[v] = want[u] + 1
				queue = append(queue, v)
			}
		}
	}

	var mu sync.Mutex
	got := make(map[uint64]uint64)
	runHavoq(t, 3, 2, func(p *transport.Proc) error {
		st := &bfsVisitorState{
			world: world,
			adj:   make(map[uint64][]uint64),
			dist:  make(map[uint64]uint64),
		}
		// Local adjacency for owned vertices, from all ranks' streams
		// (each rank scans the full deterministic edge set and keeps its
		// share — avoiding a second distribution phase in this test).
		for r := 0; r < world; r++ {
			g := graph.NewRMAT(graph.Graph500, scale, 1000+int64(r))
			for k := 0; k < edgesPerRank; k++ {
				e := g.Next()
				if graph.Owner(e.U, world) == int(p.Rank()) {
					st.adj[e.U] = append(st.adj[e.U], e.V)
				}
				if graph.Owner(e.V, world) == int(p.Rank()) {
					st.adj[e.V] = append(st.adj[e.V], e.U)
				}
			}
		}
		e := New(p, st.visit, Config{Mailbox: ygm.Options{Scheme: machine.NodeRemote, Capacity: 64}})
		if graph.Owner(0, world) == int(p.Rank()) {
			e.Push(p.Rank(), encodeVisit(0, 0))
		}
		e.Run()
		mu.Lock()
		for v, d := range st.dist {
			got[v] = d
		}
		mu.Unlock()
		return nil
	})
	if len(got) != len(want) {
		t.Fatalf("reached %d vertices, want %d", len(got), len(want))
	}
	for v, d := range want {
		if got[v] != d {
			t.Fatalf("dist(%d) = %d, want %d", v, got[v], d)
		}
	}
}

// TestVisitorSSSPPriority: priority-ordered SSSP visits against the
// shortest-path oracle; the priority queue orders by tentative distance
// (the classic HavoqGT pattern), which keeps wasted relaxations down.
func TestVisitorSSSPPriority(t *testing.T) {
	const scale, edgesPerRank, world = 7, 200, 4
	n := uint64(1) << scale
	type arc struct{ to, w uint64 }
	adjAll := make([][]arc, n)
	weight := func(u, v uint64) uint64 { return 1 + (u*7+v*13)%9 }
	for r := 0; r < world; r++ {
		g := graph.NewRMAT(graph.Uniform4, scale, 2000+int64(r))
		for k := 0; k < edgesPerRank; k++ {
			e := g.Next()
			adjAll[e.U] = append(adjAll[e.U], arc{e.V, weight(e.U, e.V)})
			adjAll[e.V] = append(adjAll[e.V], arc{e.U, weight(e.U, e.V)})
		}
	}
	const unset = ^uint64(0)
	want := make([]uint64, n)
	for i := range want {
		want[i] = unset
	}
	want[0] = 0
	q := []uint64{0}
	for len(q) > 0 { // SPFA oracle
		u := q[0]
		q = q[1:]
		for _, a := range adjAll[u] {
			if nd := want[u] + a.w; nd < want[a.to] {
				want[a.to] = nd
				q = append(q, a.to)
			}
		}
	}

	distKey := func(b []byte) uint64 {
		r := codec.NewReader(b)
		r.Uvarint() // vertex
		d, _ := r.Uvarint()
		return d
	}
	var mu sync.Mutex
	got := make(map[uint64]uint64)
	runHavoq(t, 2, 2, func(p *transport.Proc) error {
		local := make(map[uint64][]arc)
		for v := uint64(0); v < n; v++ {
			if graph.Owner(v, world) == int(p.Rank()) {
				local[v] = adjAll[v]
			}
		}
		dist := make(map[uint64]uint64)
		var eng *Engine
		eng = New(p, func(e *Engine, payload []byte) {
			r := codec.NewReader(payload)
			v, _ := r.Uvarint()
			d, _ := r.Uvarint()
			if old, ok := dist[v]; ok && old <= d {
				return
			}
			dist[v] = d
			for _, a := range local[v] {
				e.Push(machine.Rank(graph.Owner(a.to, world)), encodeVisit(a.to, d+a.w))
			}
		}, Config{
			Mailbox: ygm.Options{Scheme: machine.NLNR, Capacity: 64},
			Less:    func(a, b []byte) bool { return distKey(a) < distKey(b) },
		})
		if graph.Owner(0, world) == int(p.Rank()) {
			eng.Push(p.Rank(), encodeVisit(0, 0))
		}
		eng.Run()
		mu.Lock()
		for v, d := range dist {
			got[v] = d
		}
		mu.Unlock()
		return nil
	})
	for v := uint64(0); v < n; v++ {
		w, ok := got[v]
		if want[v] == unset {
			if ok {
				t.Fatalf("vertex %d should be unreached", v)
			}
			continue
		}
		if !ok || w != want[v] {
			t.Fatalf("dist(%d) = %d (ok=%v), want %d", v, w, ok, want[v])
		}
	}
}

// TestEngineReuse: two Run phases on one engine.
func TestEngineReuse(t *testing.T) {
	var count int
	runHavoq(t, 2, 2, func(p *transport.Proc) error {
		e := New(p, func(e *Engine, payload []byte) {
			if p.Rank() == 0 {
				count++
			}
		}, Config{Mailbox: ygm.Options{Scheme: machine.NoRoute}})
		for phase := 0; phase < 2; phase++ {
			e.Push(0, []byte{byte(phase)})
			e.Run()
		}
		return nil
	})
	if count != 8 {
		t.Fatalf("rank 0 ran %d visitors, want 8", count)
	}
}
