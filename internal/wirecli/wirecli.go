// Package wirecli wires transport backend selection into command-line
// programs: a -wire flag choosing among the Wire backends, the
// multi-process TCP launcher flags (-ranks, -rank-id, -rendezvous), and
// a self-forking -spawn convenience mode that turns one invocation into
// N rank processes on localhost. cmd/graph500, cmd/ygm-bench, and the
// examples all share this plumbing.
package wirecli

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"os/exec"
	"strings"

	"ygm/internal/transport"
)

// Flags holds the wire-selection flag values for one program.
type Flags struct {
	// Wire names the backend: "sim", "local", or "tcp".
	Wire string
	// Ranks is the expected number of rank processes (tcp). Optional
	// when the program's topology flags already determine the world
	// size; when set it is cross-checked against that size.
	Ranks int
	// RankID is this process's rank under -wire=tcp.
	RankID int
	// Rendezvous is the host:port of rank 0's rendezvous listener.
	Rendezvous string
	// Spawn forks this program into one process per rank and waits.
	Spawn bool
}

// Register installs the wire flags on fs.
func (f *Flags) Register(fs *flag.FlagSet) {
	fs.StringVar(&f.Wire, "wire", "sim",
		"transport backend: sim (virtual-time simulator), local (in-process real-time), tcp (multi-process over localhost)")
	fs.IntVar(&f.Ranks, "ranks", 0, "tcp: number of rank processes; cross-checked against the topology")
	fs.IntVar(&f.RankID, "rank-id", -1, "tcp: this process's rank in 0..ranks-1")
	fs.StringVar(&f.Rendezvous, "rendezvous", "", "tcp: host:port of the rank-0 rendezvous listener")
	fs.BoolVar(&f.Spawn, "spawn", false, "tcp: fork this program into one process per rank on localhost and wait")
}

// Validate checks the flag combination against the world size the
// program's topology produces.
func (f *Flags) Validate(world int) error {
	switch f.Wire {
	case "sim", "local":
		if f.Spawn || f.RankID >= 0 || f.Rendezvous != "" {
			return fmt.Errorf("wirecli: -spawn/-rank-id/-rendezvous require -wire=tcp")
		}
		return nil
	case "tcp":
		if f.Ranks > 0 && f.Ranks != world {
			return fmt.Errorf("wirecli: -ranks %d does not match the %d-rank topology", f.Ranks, world)
		}
		if f.Spawn {
			return nil // the launcher fills in -rank-id/-rendezvous
		}
		if f.RankID < 0 || f.RankID >= world {
			return fmt.Errorf("wirecli: -wire=tcp needs -rank-id in 0..%d (or -spawn)", world-1)
		}
		if f.Rendezvous == "" {
			return fmt.Errorf("wirecli: -wire=tcp needs -rendezvous host:port (or -spawn)")
		}
		return nil
	default:
		return fmt.Errorf("wirecli: unknown -wire %q (have sim, local, tcp)", f.Wire)
	}
}

// NewWire builds a fresh backend for one transport.Run. Wire values are
// single-use, so programs that call transport.Run repeatedly (graph500
// runs one per search root) call NewWire before each run; every process
// reuses the same rendezvous address, which works because the runs
// happen in the same deterministic order in all processes and the
// rendezvous root re-listens each time.
func (f *Flags) NewWire() (transport.Wire, error) {
	switch f.Wire {
	case "sim":
		return transport.SimWire{}, nil
	case "local":
		return transport.LocalWire{}, nil
	case "tcp":
		return transport.NewTCPWire(transport.TCPOptions{
			Rank:       f.RankID,
			Rendezvous: f.Rendezvous,
		}), nil
	}
	return nil, fmt.Errorf("wirecli: unknown -wire %q", f.Wire)
}

// IsRoot reports whether this process should print results: always for
// the in-process wires, rank 0 only under -wire=tcp (every process
// computes the same results; printing them once keeps output identical
// to a single-process run).
func (f *Flags) IsRoot() bool {
	return f.Wire != "tcp" || f.RankID == 0 || f.Spawn
}

// Launch implements -spawn: when set (with -wire=tcp), it re-execs this
// program once per rank — the original arguments minus the launcher
// flags, plus -rank-id/-rendezvous/-ranks — streams rank 0's stdout
// through, waits for all ranks, and returns done=true so the caller
// exits. In every other mode it returns done=false and the caller
// proceeds to run (as the single process, or as the one rank the flags
// describe).
func (f *Flags) Launch(world int, rawArgs []string) (bool, error) {
	if f.Wire != "tcp" || !f.Spawn {
		return false, nil
	}
	addr, err := reserveLoopbackAddr()
	if err != nil {
		return true, fmt.Errorf("wirecli: reserving rendezvous port: %w", err)
	}
	exe, err := os.Executable()
	if err != nil {
		return true, err
	}
	base := stripLauncherFlags(rawArgs)
	cmds := make([]*exec.Cmd, world)
	outs := make([]*bytes.Buffer, world)
	for r := 0; r < world; r++ {
		args := append(append([]string{}, base...),
			"-wire=tcp",
			fmt.Sprintf("-ranks=%d", world),
			fmt.Sprintf("-rank-id=%d", r),
			"-rendezvous="+addr,
		)
		cmd := exec.Command(exe, args...)
		if r == 0 {
			cmd.Stdout = os.Stdout
			cmd.Stderr = os.Stderr
		} else {
			buf := &bytes.Buffer{}
			cmd.Stdout = buf
			cmd.Stderr = buf
			outs[r] = buf
		}
		if err := cmd.Start(); err != nil {
			for _, c := range cmds[:r] {
				c.Process.Kill()
			}
			return true, fmt.Errorf("wirecli: starting rank %d: %w", r, err)
		}
		cmds[r] = cmd
	}
	var firstErr error
	for r, cmd := range cmds {
		if err := cmd.Wait(); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("wirecli: rank %d process: %w", r, err)
			if outs[r] != nil && outs[r].Len() > 0 {
				io.Copy(os.Stderr, outs[r])
			}
		}
	}
	return true, firstErr
}

// launcherFlags are the flags Launch owns and must strip from the
// arguments it forwards to the rank processes (it appends its own
// values). Flags taking a value may appear as -name=v or -name v.
var launcherFlags = map[string]bool{
	"spawn": false, "wire": true, "ranks": true, "rank-id": true, "rendezvous": true,
}

func stripLauncherFlags(args []string) []string {
	var out []string
	for i := 0; i < len(args); i++ {
		a := args[i]
		name, hasValue := strings.TrimLeft(a, "-"), strings.Contains(a, "=")
		if eq := strings.IndexByte(name, '='); eq >= 0 {
			name = name[:eq]
		}
		takesValue, owned := launcherFlags[name]
		if !owned || !strings.HasPrefix(a, "-") {
			out = append(out, a)
			continue
		}
		if takesValue && !hasValue {
			i++ // skip the separate value token
		}
	}
	return out
}

func reserveLoopbackAddr() (string, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", err
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr, nil
}
