package wirecli

import (
	"flag"
	"io"
	"reflect"
	"strings"
	"testing"

	"ygm/internal/transport"
)

// parse registers the wire flags on a throwaway FlagSet and parses args,
// the same way every wirecli-using main does.
func parse(t *testing.T, args ...string) *Flags {
	t.Helper()
	f := &Flags{}
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	f.Register(fs)
	if err := fs.Parse(args); err != nil {
		t.Fatalf("parsing %q: %v", args, err)
	}
	return f
}

func TestValidateCombinations(t *testing.T) {
	cases := []struct {
		name    string
		args    []string
		world   int
		wantErr string // substring; empty means valid
	}{
		{"default sim", nil, 4, ""},
		{"local", []string{"-wire=local"}, 4, ""},
		{"sim with rank-id", []string{"-rank-id=0"}, 4, "require -wire=tcp"},
		{"sim with rendezvous", []string{"-rendezvous=127.0.0.1:9"}, 4, "require -wire=tcp"},
		{"local with spawn", []string{"-wire=local", "-spawn"}, 4, "require -wire=tcp"},
		{"tcp spawn", []string{"-wire=tcp", "-spawn"}, 4, ""},
		{"tcp explicit rank", []string{"-wire=tcp", "-rank-id=1", "-rendezvous=127.0.0.1:9"}, 4, ""},
		{"tcp missing rank-id", []string{"-wire=tcp", "-rendezvous=127.0.0.1:9"}, 4, "needs -rank-id"},
		{"tcp rank-id out of range", []string{"-wire=tcp", "-rank-id=4", "-rendezvous=127.0.0.1:9"}, 4, "needs -rank-id in 0..3"},
		{"tcp missing rendezvous", []string{"-wire=tcp", "-rank-id=1"}, 4, "needs -rendezvous"},
		{"tcp ranks matches world", []string{"-wire=tcp", "-ranks=4", "-rank-id=0", "-rendezvous=127.0.0.1:9"}, 4, ""},
		{"tcp ranks contradicts world", []string{"-wire=tcp", "-ranks=8", "-rank-id=0", "-rendezvous=127.0.0.1:9"}, 4, "does not match the 4-rank topology"},
		{"unknown wire", []string{"-wire=mpi"}, 4, `unknown -wire "mpi"`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := parse(t, tc.args...).Validate(tc.world)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("combination accepted; want error containing %q", tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not contain %q", err, tc.wantErr)
			}
		})
	}
}

func TestNewWireSelectsBackend(t *testing.T) {
	newWire := func(args ...string) transport.Wire {
		t.Helper()
		w, err := parse(t, args...).NewWire()
		if err != nil {
			t.Fatal(err)
		}
		return w
	}
	if _, ok := newWire("-wire=sim").(transport.SimWire); !ok {
		t.Fatal("-wire=sim did not produce a SimWire")
	}
	if _, ok := newWire("-wire=local").(transport.LocalWire); !ok {
		t.Fatal("-wire=local did not produce a LocalWire")
	}
	w := newWire("-wire=tcp", "-rank-id=2", "-rendezvous=127.0.0.1:9")
	if _, ok := w.(*transport.TCPWire); !ok {
		t.Fatalf("-wire=tcp produced %T, want *TCPWire", w)
	}
	if _, err := parse(t, "-wire=mpi").NewWire(); err == nil {
		t.Fatal("unknown wire produced a backend instead of an error")
	}
}

func TestIsRoot(t *testing.T) {
	cases := []struct {
		args []string
		want bool
	}{
		{nil, true}, // sim prints
		{[]string{"-wire=local"}, true},
		{[]string{"-wire=tcp", "-spawn"}, true}, // the launcher streams rank 0
		{[]string{"-wire=tcp", "-rank-id=0", "-rendezvous=127.0.0.1:9"}, true},
		{[]string{"-wire=tcp", "-rank-id=3", "-rendezvous=127.0.0.1:9"}, false},
	}
	for _, tc := range cases {
		if got := parse(t, tc.args...).IsRoot(); got != tc.want {
			t.Errorf("IsRoot(%q) = %v, want %v", tc.args, got, tc.want)
		}
	}
}

func TestStripLauncherFlags(t *testing.T) {
	cases := []struct {
		name string
		in   []string
		want []string
	}{
		{"empty", nil, nil},
		{"program flags survive", []string{"-nodes=2", "-cores=2"}, []string{"-nodes=2", "-cores=2"}},
		{"equals forms stripped", []string{"-wire=tcp", "-spawn", "-ranks=4", "-nodes=2"}, []string{"-nodes=2"}},
		{"separate-value forms stripped", []string{"-wire", "tcp", "-ranks", "4", "-keep=1"}, []string{"-keep=1"}},
		{"spawn takes no value", []string{"-spawn", "positional"}, []string{"positional"}},
		{"double dash flags", []string{"--wire=tcp", "--rank-id", "3", "-msgs=10"}, []string{"-msgs=10"}},
		{"rendezvous stripped", []string{"-rendezvous=127.0.0.1:9", "-seed=7"}, []string{"-seed=7"}},
		{"non-flag token matching a name survives", []string{"wire", "-nodes=2"}, []string{"wire", "-nodes=2"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := stripLauncherFlags(tc.in)
			if !reflect.DeepEqual(got, tc.want) {
				t.Fatalf("stripLauncherFlags(%q) = %q, want %q", tc.in, got, tc.want)
			}
		})
	}
}

func TestLaunchIsNoOpOutsideSpawnMode(t *testing.T) {
	for _, args := range [][]string{
		nil,
		{"-wire=local"},
		{"-wire=tcp", "-rank-id=0", "-rendezvous=127.0.0.1:9"},
	} {
		done, err := parse(t, args...).Launch(4, args)
		if err != nil {
			t.Fatalf("Launch(%q): %v", args, err)
		}
		if done {
			t.Fatalf("Launch(%q) claimed the run; it must only do so under -wire=tcp -spawn", args)
		}
	}
}

func TestReserveLoopbackAddr(t *testing.T) {
	addr, err := reserveLoopbackAddr()
	if err != nil {
		t.Skip("loopback listening unavailable in this sandbox")
	}
	if !strings.HasPrefix(addr, "127.0.0.1:") || strings.HasSuffix(addr, ":0") {
		t.Fatalf("reserved %q, want a concrete 127.0.0.1 port", addr)
	}
}
