package spmat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewCSCBasic(t *testing.T) {
	// Column 0: rows 2,5; column 1: empty; column 2: row 0.
	m, err := NewCSC(3, []Triplet{
		{Row: 5, Col: 0, Val: 2.5},
		{Row: 0, Col: 2, Val: -1},
		{Row: 2, Col: 0, Val: 1.5},
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.NumCols() != 3 || m.NNZ() != 3 {
		t.Fatalf("dims = %d cols, %d nnz", m.NumCols(), m.NNZ())
	}
	var rows []uint64
	var vals []float64
	m.ForEachInCol(0, func(r uint64, v float64) {
		rows = append(rows, r)
		vals = append(vals, v)
	})
	if len(rows) != 2 || rows[0] != 2 || rows[1] != 5 || vals[0] != 1.5 || vals[1] != 2.5 {
		t.Fatalf("col 0 = %v %v (rows must be sorted)", rows, vals)
	}
	if m.ColNNZ(1) != 0 || m.ColNNZ(2) != 1 {
		t.Fatalf("ColNNZ wrong")
	}
}

func TestNewCSCRejectsOutOfRange(t *testing.T) {
	if _, err := NewCSC(2, []Triplet{{Row: 0, Col: 2}}); err == nil {
		t.Fatal("column out of range accepted")
	}
	if _, err := NewCSC(-1, nil); err == nil {
		t.Fatal("negative column count accepted")
	}
}

func TestCSCEmptyMatrix(t *testing.T) {
	m, err := NewCSC(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumCols() != 0 || m.NNZ() != 0 {
		t.Fatal("empty matrix dims wrong")
	}
}

func TestSpMVSeq(t *testing.T) {
	// A = [[1 2],[0 3]], x = [10, 100] -> y = [210, 300]
	y := SpMVSeq([]Triplet{
		{0, 0, 1}, {0, 1, 2}, {1, 1, 3},
	}, []float64{10, 100})
	if y[0] != 210 || y[1] != 300 {
		t.Fatalf("y = %v", y)
	}
}

func TestSpMVSeqDuplicatesSum(t *testing.T) {
	y := SpMVSeq([]Triplet{{0, 0, 1}, {0, 0, 2}}, []float64{5})
	if y[0] != 15 {
		t.Fatalf("duplicate entries must sum: y = %v", y)
	}
}

// TestCSCMatchesSeq: multiplying via CSC iteration equals the triplet
// oracle on random matrices.
func TestCSCMatchesSeq(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(30)
		nnz := rng.Intn(100)
		entries := make([]Triplet, nnz)
		for i := range entries {
			entries[i] = Triplet{
				Row: uint64(rng.Intn(n)),
				Col: uint64(rng.Intn(n)),
				Val: rng.NormFloat64(),
			}
		}
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		want := SpMVSeq(entries, x)
		m, err := NewCSC(n, entries)
		if err != nil {
			t.Fatal(err)
		}
		got := make([]float64, n)
		for c := 0; c < n; c++ {
			m.ForEachInCol(c, func(row uint64, val float64) {
				got[row] += val * x[c]
			})
		}
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-9 {
				t.Fatalf("trial %d: y[%d] = %g, want %g", trial, i, got[i], want[i])
			}
		}
	}
}

func TestNewGrid(t *testing.T) {
	for _, tc := range []struct {
		world, r int
		ok       bool
	}{
		{1, 1, true}, {4, 2, true}, {9, 3, true}, {16, 4, true}, {1024, 32, true},
		{2, 0, false}, {8, 0, false}, {15, 0, false},
	} {
		g, err := NewGrid(tc.world)
		if tc.ok && (err != nil || g.R != tc.r) {
			t.Fatalf("NewGrid(%d) = %v, %v", tc.world, g, err)
		}
		if !tc.ok && err == nil {
			t.Fatalf("NewGrid(%d) should fail", tc.world)
		}
	}
}

func TestGridAddressing(t *testing.T) {
	g := Grid{R: 3}
	for rank := 0; rank < 9; rank++ {
		if g.RankAt(g.RowOf(rank), g.ColOf(rank)) != rank {
			t.Fatalf("grid round trip failed at %d", rank)
		}
	}
}

// TestBlockRangesPartition: block ranges tile [0, n) exactly, and
// BlockOwner agrees with the ranges.
func TestBlockRangesPartition(t *testing.T) {
	f := func(rRaw, nRaw uint16) bool {
		r := int(rRaw%7) + 1
		n := uint64(nRaw%500) + uint64(r) // at least one element per block
		g := Grid{R: r}
		var expect uint64
		for b := 0; b < r; b++ {
			lo, hi := g.BlockRange(b, n)
			if lo != expect || hi < lo {
				return false
			}
			for i := lo; i < hi; i++ {
				if g.blockIndex(i, n) != b {
					return false
				}
			}
			expect = hi
		}
		return expect == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestBlockOwnerConsistency(t *testing.T) {
	g := Grid{R: 4}
	const n = 37
	for row := uint64(0); row < n; row++ {
		for col := uint64(0); col < n; col++ {
			owner := g.BlockOwner(row, col, n)
			i, j := g.RowOf(owner), g.ColOf(owner)
			rlo, rhi := g.BlockRange(i, n)
			clo, chi := g.BlockRange(j, n)
			if row < rlo || row >= rhi || col < clo || col >= chi {
				t.Fatalf("entry (%d,%d) mapped to block (%d,%d) with ranges [%d,%d)x[%d,%d)",
					row, col, i, j, rlo, rhi, clo, chi)
			}
		}
	}
}
