// Package spmat provides the sparse-matrix storage the SpMV experiments
// build on: compressed sparse column (CSC) blocks — the format both the
// paper's YGM SpMV and its CombBLAS comparator use — plus triplet
// buffers, a sequential SpMV oracle for validation, and the 2D
// process-grid arithmetic of the CombBLAS-style baseline.
package spmat

import (
	"fmt"
	"sort"
)

// Triplet is one nonzero entry in coordinate form.
type Triplet struct {
	Row, Col uint64
	Val      float64
}

// CSC is a compressed-sparse-column matrix over a dense local column
// index space [0, NumCols) with arbitrary (global) row ids.
type CSC struct {
	colPtr []int
	rows   []uint64
	vals   []float64
}

// NewCSC builds a CSC from triplets whose Col fields are local dense
// column indices in [0, numCols). Triplets may arrive in any order;
// duplicates are kept (SpMV sums them naturally).
func NewCSC(numCols int, entries []Triplet) (*CSC, error) {
	if numCols < 0 {
		return nil, fmt.Errorf("spmat: negative column count")
	}
	counts := make([]int, numCols+1)
	for _, t := range entries {
		if t.Col >= uint64(numCols) {
			return nil, fmt.Errorf("spmat: column %d outside [0,%d)", t.Col, numCols)
		}
		counts[t.Col+1]++
	}
	for c := 0; c < numCols; c++ {
		counts[c+1] += counts[c]
	}
	m := &CSC{
		colPtr: counts,
		rows:   make([]uint64, len(entries)),
		vals:   make([]float64, len(entries)),
	}
	next := make([]int, numCols)
	copy(next, counts[:numCols])
	for _, t := range entries {
		i := next[t.Col]
		m.rows[i] = t.Row
		m.vals[i] = t.Val
		next[t.Col] = i + 1
	}
	// Sort rows within each column for deterministic iteration.
	for c := 0; c < numCols; c++ {
		lo, hi := m.colPtr[c], m.colPtr[c+1]
		idx := make([]int, hi-lo)
		for i := range idx {
			idx[i] = lo + i
		}
		sort.Slice(idx, func(a, b int) bool { return m.rows[idx[a]] < m.rows[idx[b]] })
		rs := make([]uint64, hi-lo)
		vs := make([]float64, hi-lo)
		for i, j := range idx {
			rs[i], vs[i] = m.rows[j], m.vals[j]
		}
		copy(m.rows[lo:hi], rs)
		copy(m.vals[lo:hi], vs)
	}
	return m, nil
}

// NumCols returns the local column count.
func (m *CSC) NumCols() int { return len(m.colPtr) - 1 }

// NNZ returns the number of stored entries.
func (m *CSC) NNZ() int { return len(m.rows) }

// ForEachInCol calls f for every entry of local column c.
func (m *CSC) ForEachInCol(c int, f func(row uint64, val float64)) {
	for i := m.colPtr[c]; i < m.colPtr[c+1]; i++ {
		f(m.rows[i], m.vals[i])
	}
}

// ColNNZ returns the entry count of local column c.
func (m *CSC) ColNNZ(c int) int { return m.colPtr[c+1] - m.colPtr[c] }

// SpMVSeq computes y = A x for a triplet list with global row/col ids —
// the sequential oracle used to validate the distributed SpMVs.
func SpMVSeq(entries []Triplet, x []float64) []float64 {
	y := make([]float64, len(x))
	for _, t := range entries {
		y[t.Row] += t.Val * x[t.Col]
	}
	return y
}

// Grid is a square process grid of R x R ranks, rank (i,j) = i*R + j, as
// CombBLAS requires for its 2D decomposition.
type Grid struct {
	R int
}

// NewGrid returns the largest square grid fitting worldSize ranks and an
// error if worldSize is not a perfect square (CombBLAS's constraint; the
// benchmark picks rank counts that are squares).
func NewGrid(worldSize int) (Grid, error) {
	r := 1
	for (r+1)*(r+1) <= worldSize {
		r++
	}
	if r*r != worldSize {
		return Grid{}, fmt.Errorf("spmat: world size %d is not a perfect square", worldSize)
	}
	return Grid{R: r}, nil
}

// RowOf returns the grid row of rank.
func (g Grid) RowOf(rank int) int { return rank / g.R }

// ColOf returns the grid column of rank.
func (g Grid) ColOf(rank int) int { return rank % g.R }

// RankAt returns the rank at grid position (i, j).
func (g Grid) RankAt(i, j int) int { return i*g.R + j }

// BlockOwner returns the rank owning matrix entry (row, col) when an
// n x n matrix is split into R x R contiguous blocks.
func (g Grid) BlockOwner(row, col, n uint64) int {
	return g.RankAt(g.blockIndex(row, n), g.blockIndex(col, n))
}

// BlockRange returns the half-open global index range [lo, hi) of block
// b along one dimension of an n-sized axis split into R pieces.
func (g Grid) BlockRange(b int, n uint64) (lo, hi uint64) {
	r := uint64(g.R)
	base := n / r
	rem := n % r
	lo = uint64(b)*base + min64(uint64(b), rem)
	size := base
	if uint64(b) < rem {
		size++
	}
	return lo, lo + size
}

func (g Grid) blockIndex(i, n uint64) int {
	r := uint64(g.R)
	base := n / r
	rem := n % r
	// The first rem blocks have size base+1.
	cut := rem * (base + 1)
	if i < cut {
		return int(i / (base + 1))
	}
	return int(rem + (i-cut)/base)
}

func min64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}
