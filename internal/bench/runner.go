package bench

import (
	"fmt"
	"sync"

	"ygm/internal/machine"
	"ygm/internal/transport"
)

// extras aggregates per-rank scalar results across an SPMD run.
type extras struct {
	mu   sync.Mutex
	sums map[string]float64
	maxs map[string]float64
}

func newExtras() *extras {
	return &extras{sums: make(map[string]float64), maxs: make(map[string]float64)}
}

// add accumulates v into the named sum.
func (e *extras) add(key string, v float64) {
	e.mu.Lock()
	e.sums[key] += v
	e.mu.Unlock()
}

// setMax raises the named maximum to at least v.
func (e *extras) setMax(key string, v float64) {
	e.mu.Lock()
	if v > e.maxs[key] {
		e.maxs[key] = v
	}
	e.mu.Unlock()
}

// runWorld executes body over a nodes x cores simulated cluster.
func runWorld(p Preset, nodes int, straggler func(machine.Rank) float64,
	body func(proc *transport.Proc, ex *extras) error) (*transport.Report, *extras) {
	ex := newExtras()
	rep, err := transport.Run(transport.NewConfig(machine.New(nodes, p.Cores),
		transport.WithModel(p.Model),
		transport.WithSeed(p.Seed),
		transport.WithComputeScale(straggler),
		transport.WithTrace(p.Trace),
		transport.WithWire(p.newWire()),
	), func(proc *transport.Proc) error {
		return body(proc, ex)
	})
	if err != nil {
		// Benchmark workloads are fixed and validated by the test suite;
		// a failure here is a programming error worth stopping on.
		panic(fmt.Sprintf("bench: %d-node run failed: %v", nodes, err))
	}
	return rep, ex
}

// perfValues assembles the standard measurement columns of a scaling row:
// simulated time, throughput, remote traffic, and utilization. Traffic
// columns cover mailbox (TagData) packets only.
func perfValues(rep *transport.Report, items float64, itemUnit string) []Value {
	tot := rep.Totals()
	return perfRow(rep.Makespan(), items, itemUnit,
		tot.DataRemoteMsgs, tot.DataRemoteBytes, rep.Utilization())
}

// perfValuesAll is perfValues over every packet, including collective
// traffic — used for the bulk-synchronous baselines, whose communication
// runs entirely through collectives.
func perfValuesAll(rep *transport.Report, items float64, itemUnit string) []Value {
	tot := rep.Totals()
	return perfRow(rep.Makespan(), items, itemUnit,
		tot.RemoteMsgs, tot.RemoteBytes, rep.Utilization())
}

// opTime returns the operation-phase duration: makespan minus the latest
// rank's setup end. The paper times the operation (SpMV product, CC
// passes), not graph generation and distribution.
func opTime(makespan, setupEnd float64) float64 {
	if d := makespan - setupEnd; d > 0 {
		return d
	}
	return makespan
}

// opPhaseValues is perfValues with the time window clipped to the
// operation phase.
func opPhaseValues(rep *transport.Report, setupEnd, items float64, itemUnit string) []Value {
	tot := rep.Totals()
	return perfRow(opTime(rep.Makespan(), setupEnd), items, itemUnit,
		tot.DataRemoteMsgs, tot.DataRemoteBytes, rep.Utilization())
}

func perfRow(ms, items float64, itemUnit string, msgs, bytes uint64, util float64) []Value {
	rate := 0.0
	if ms > 0 {
		rate = items / ms / 1e6
	}
	avg := 0.0
	if msgs > 0 {
		avg = float64(bytes) / float64(msgs)
	}
	return []Value{
		{Key: "sim_time", Val: ms, Unit: "s"},
		{Key: "rate", Val: rate, Unit: "M" + itemUnit + "/s"},
		{Key: "remote_msgs", Val: float64(msgs), Unit: ""},
		{Key: "remote_MB", Val: float64(bytes) / 1e6, Unit: "MB"},
		{Key: "avg_remote_msg", Val: avg, Unit: "B"},
		{Key: "utilization", Val: util, Unit: ""},
	}
}

// schemeLabel builds the two standard labels of a scaling row.
func schemeLabel(nodes int, scheme machine.Scheme) []Label {
	return []Label{
		{Key: "nodes", Val: fmt.Sprintf("%d", nodes)},
		{Key: "scheme", Val: scheme.String()},
	}
}

// quartzGBs converts bytes/sec to GB/s for display.
func quartzGBs(bw float64) float64 { return bw / 1e9 }
