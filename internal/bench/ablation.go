package bench

import (
	"fmt"

	"ygm/internal/apps"
	"ygm/internal/codec"
	"ygm/internal/collective"
	"ygm/internal/graph"
	"ygm/internal/machine"
	"ygm/internal/transport"
	"ygm/internal/ygm"
)

// AblationMailboxSize sweeps the mailbox capacity for degree counting at
// a fixed node count — the design parameter the paper fixes at 2^18 and
// scales with N in Fig. 8d. Too small: flushes defeat coalescing; too
// large: messages sit in buffers and receive-side overlap disappears.
func AblationMailboxSize(p Preset) *Table { return runPlan(ablationMailboxPlan(p)) }

func ablationMailboxPlan(p Preset) Plan {
	pl := Plan{Table: &Table{ID: "ablation-mailbox", Title: "mailbox capacity sweep (degree counting, NLNR and NoRoute)"}}
	nodes := p.WeakNodes[len(p.WeakNodes)-1]
	world := uint64(nodes * p.Cores)
	numVertices := p.DegreeVerticesPerRank * world
	for capacity := 16; capacity <= 16*p.MailboxCap; capacity *= 4 {
		for _, scheme := range []machine.Scheme{machine.NoRoute, machine.NLNR} {
			pl.add(fmt.Sprintf("ablation-mailbox/cap=%d/scheme=%s", capacity, scheme), func() Row {
				q := p
				q.MailboxCap = capacity
				row := degreeRun(q, nodes, scheme, numVertices, p.DegreeEdgesPerRank)
				row.Labels = append(row.Labels, Label{Key: "capacity", Val: itoa(capacity)})
				return row
			})
		}
	}
	return pl
}

// AblationStraggler is the paper's core motivation measured directly:
// the same many-to-many counting workload run (a) through the
// asynchronous mailbox and (b) through synchronous ALLTOALLV exchanges,
// with one rank's compute slowed 10x. The mailbox couples ranks only
// through message routes; the collective couples everyone to the
// straggler every batch.
func AblationStraggler(p Preset) *Table { return runPlan(ablationStragglerPlan(p)) }

func ablationStragglerPlan(p Preset) Plan {
	pl := Plan{Table: &Table{ID: "ablation-straggler", Title: "async mailbox vs synchronous ALLTOALLV with a 10x straggler"}}
	nodes := p.WeakNodes[len(p.WeakNodes)-1]
	world := nodes * p.Cores
	numVertices := p.DegreeVerticesPerRank * uint64(world)
	const batches = 4
	edgesPerRank := p.DegreeEdgesPerRank

	straggler := func(r machine.Rank) float64 {
		if r == 0 {
			return 10
		}
		return 1
	}

	for _, mode := range []string{"none", "straggler"} {
		scaleFn := straggler
		if mode == "none" {
			scaleFn = nil
		}
		// (a) the YGM mailbox (round-matched, the paper's protocol).
		pl.add("ablation-straggler/ygm-async/load="+mode, func() Row {
			cfg := apps.DegreeCountConfig{
				Mailbox:      ygm.Options{Scheme: machine.NLNR, Capacity: p.MailboxCap},
				NumVertices:  numVertices,
				EdgesPerRank: edgesPerRank,
				BatchSize:    edgesPerRank / batches,
				NewGen: func(proc *transport.Proc) graph.Generator {
					return graph.NewUniform(numVertices, p.Seed*31+int64(proc.Rank()))
				},
			}
			rep, _ := runWorld(p, nodes, scaleFn, func(proc *transport.Proc, ex *extras) error {
				_, err := apps.DegreeCount(proc, cfg)
				return err
			})
			return Row{
				Labels: []Label{{Key: "exchange", Val: "ygm-async"}, {Key: "load", Val: mode}},
				Values: perfValues(rep, float64(edgesPerRank)*float64(world), "edges"),
			}
		})

		// (b) synchronous ALLTOALLV exchange per batch.
		pl.add("ablation-straggler/alltoallv-sync/load="+mode, func() Row {
			rep, _ := runWorld(p, nodes, scaleFn, func(proc *transport.Proc, ex *extras) error {
				return syncDegreeCount(proc, numVertices, edgesPerRank, batches, p.Seed)
			})
			return Row{
				Labels: []Label{{Key: "exchange", Val: "alltoallv-sync"}, {Key: "load", Val: mode}},
				Values: perfValues(rep, float64(edgesPerRank)*float64(world), "edges"),
			}
		})
	}
	return pl
}

// syncDegreeCount is the bulk-synchronous strawman: per batch, each rank
// buckets its messages by destination and the world exchanges them with
// one ALLTOALLV — the conventional collective the paper contrasts with.
func syncDegreeCount(proc *transport.Proc, numVertices uint64, edgesPerRank, batches int, seed int64) error {
	world := proc.WorldSize()
	comm := collective.World(proc)
	gen := graph.NewUniform(numVertices, seed*31+int64(proc.Rank()))
	degrees := make([]uint64, graph.LocalCount(numVertices, world, int(proc.Rank())))
	perBatch := edgesPerRank / batches
	cpm := proc.Model().ComputePerMessage
	for b := 0; b < batches; b++ {
		buckets := make([]*codec.Writer, world)
		for i := range buckets {
			buckets[i] = &codec.Writer{}
		}
		for k := 0; k < perBatch; k++ {
			e := gen.Next()
			buckets[graph.Owner(e.U, world)].Uvarint(e.U)
			buckets[graph.Owner(e.V, world)].Uvarint(e.V)
		}
		payloads := make([][]byte, world)
		for i, w := range buckets {
			payloads[i] = w.Bytes()
		}
		for _, blob := range comm.Alltoallv(payloads) {
			r := codec.NewReader(blob)
			for r.Remaining() > 0 {
				v, err := r.Uvarint()
				if err != nil {
					return err
				}
				proc.Compute(cpm)
				degrees[graph.LocalID(v, world)]++
			}
		}
	}
	return nil
}

// AblationZeroCopy evaluates the Section VII future-work direction: a
// hybrid (threads-style) runtime where on-node hops hand over pointers
// instead of copying. Local per-byte costs vanish; the win is largest
// for NLNR, whose extra local exchange is pure copy overhead.
func AblationZeroCopy(p Preset) *Table { return runPlan(ablationZeroCopyPlan(p)) }

func ablationZeroCopyPlan(p Preset) Plan {
	pl := Plan{Table: &Table{ID: "ablation-zerocopy", Title: "MPI-only copies vs zero-copy local exchange (Section VII)"}}
	nodes := p.WeakNodes[len(p.WeakNodes)-1]
	world := uint64(nodes * p.Cores)
	numVertices := p.DegreeVerticesPerRank * world
	for _, zero := range []bool{false, true} {
		mode := "copying"
		if zero {
			mode = "zero-copy"
		}
		for _, scheme := range []machine.Scheme{machine.NodeRemote, machine.NLNR} {
			pl.add(fmt.Sprintf("ablation-zerocopy/%s/scheme=%s", mode, scheme), func() Row {
				q := p
				q.Model.ZeroCopyLocal = zero
				row := degreeRun(q, nodes, scheme, numVertices, p.DegreeEdgesPerRank)
				row.Labels = append(row.Labels, Label{Key: "local", Val: mode})
				return row
			})
		}
	}
	return pl
}

// AblationBroadcast measures the remote cost of asynchronous broadcasts
// per scheme directly (Section III-C's factor-of-C claim): every rank
// issues B broadcasts and the table reports remote packets and time.
func AblationBroadcast(p Preset) *Table { return runPlan(ablationBroadcastPlan(p)) }

func ablationBroadcastPlan(p Preset) Plan {
	pl := Plan{Table: &Table{ID: "ablation-bcast", Title: "broadcast remote cost per scheme"}}
	nodes := p.WeakNodes[len(p.WeakNodes)-1]
	const bcastsPerRank = 8
	for _, scheme := range machine.Schemes {
		pl.add("ablation-bcast/scheme="+scheme.String(), func() Row {
			rep, _ := runWorld(p, nodes, nil, func(proc *transport.Proc, ex *extras) error {
				mb := ygm.New(proc, func(s ygm.Sender, payload []byte) {},
					ygm.WithScheme(scheme),
					ygm.WithCapacity(p.MailboxCap),
					ygm.WithExchange(ygm.LazyExchange))
				msg := make([]byte, 16)
				for i := 0; i < bcastsPerRank; i++ {
					mb.Broadcast(msg)
				}
				mb.WaitEmpty()
				return nil
			})
			world := nodes * p.Cores
			deliveries := float64(bcastsPerRank) * float64(world) * float64(world-1)
			return Row{
				Labels: []Label{{Key: "scheme", Val: scheme.String()}},
				Values: append(perfValues(rep, deliveries, "msgs"),
					Value{Key: "bcasts", Val: float64(bcastsPerRank * world)}),
			}
		})
	}
	return pl
}

// AblationExchangeStyle compares the two exchange implementations of
// Section III-A on identical degree-counting traffic: the asynchronous
// send/recv mailbox (ranks enter and leave communication independently)
// versus the ALLTOALLV-backed SyncMailbox (each phase is a collective,
// as performed better on IBM BG/Q). Balanced load favors the collective;
// adding a straggler flips the comparison.
func AblationExchangeStyle(p Preset) *Table { return runPlan(ablationExchangePlan(p)) }

func ablationExchangePlan(p Preset) Plan {
	pl := Plan{Table: &Table{ID: "ablation-exchange", Title: "async send/recv vs ALLTOALLV-backed exchanges (Section III-A)"}}
	nodes := p.WeakNodes[len(p.WeakNodes)-1]
	world := nodes * p.Cores
	numVertices := p.DegreeVerticesPerRank * uint64(world)
	edgesPerRank := p.DegreeEdgesPerRank

	const batches = 8
	for _, scheme := range []machine.Scheme{machine.NodeRemote, machine.NLNR} {
		for _, mode := range []string{"balanced", "jitter"} {
			jitter := 0.0
			if mode == "jitter" {
				// Per-batch random compute comparable to a batch's
				// communication time: rotating imbalance, not one fixed
				// straggler.
				jitter = 100e-6
			}
			labels := func(style string) []Label {
				return []Label{
					{Key: "scheme", Val: scheme.String()},
					{Key: "exchange", Val: style},
					{Key: "load", Val: mode},
				}
			}
			name := func(style string) string {
				return fmt.Sprintf("ablation-exchange/%s/scheme=%s/load=%s", style, scheme, mode)
			}
			// Lazy-forwarding mailbox: jitter rounds run back to back
			// with one terminal WaitEmpty — this variant never blocks on
			// exchange partners (Algorithm 1 waits once).
			pl.add(name("async"), func() Row {
				cfg := apps.DegreeCountConfig{
					Mailbox:        ygm.Options{Scheme: scheme, Capacity: p.MailboxCap, Exchange: ygm.LazyExchange},
					NumVertices:    numVertices,
					EdgesPerRank:   edgesPerRank,
					JitterRounds:   batches,
					JitterPerRound: jitter,
					NewGen: func(proc *transport.Proc) graph.Generator {
						return graph.NewUniform(numVertices, p.Seed*31+int64(proc.Rank()))
					},
				}
				rep, _ := runWorld(p, nodes, nil, func(proc *transport.Proc, ex *extras) error {
					_, err := apps.DegreeCount(proc, cfg)
					return err
				})
				return Row{Labels: labels("async"), Values: perfValues(rep, float64(edgesPerRank)*float64(world), "edges")}
			})

			// Round-matched exchanges (the paper's protocol rounds).
			pl.add(name("round"), func() Row {
				rep, _ := runWorld(p, nodes, nil, func(proc *transport.Proc, ex *extras) error {
					return roundMailboxDegreeCount(proc, scheme, numVertices, edgesPerRank, batches, jitter, p.Seed, p.MailboxCap)
				})
				return Row{Labels: labels("round"), Values: perfValuesAll(rep, float64(edgesPerRank)*float64(world), "edges")}
			})

			// ALLTOALLV-backed SyncMailbox running the same counting.
			pl.add(name("alltoallv"), func() Row {
				rep, _ := runWorld(p, nodes, nil, func(proc *transport.Proc, ex *extras) error {
					return syncMailboxDegreeCount(proc, scheme, numVertices, edgesPerRank, batches, jitter, p.Seed)
				})
				return Row{Labels: labels("alltoallv"), Values: perfValuesAll(rep, float64(edgesPerRank)*float64(world), "edges")}
			})
		}
	}
	return pl
}

// roundMailboxDegreeCount is Algorithm 1 on the RoundMailbox: sends
// trigger capacity rounds; quiescence per jitter group comes from the
// terminal WaitEmpty.
func roundMailboxDegreeCount(proc *transport.Proc, scheme machine.Scheme, numVertices uint64, edgesPerRank, batches int, jitter float64, seed int64, capacity int) error {
	world := proc.WorldSize()
	degrees := make([]uint64, graph.LocalCount(numVertices, world, int(proc.Rank())))
	mb := ygm.New(proc, func(s ygm.Sender, payload []byte) {
		v, err := codec.NewReader(payload).Uvarint()
		if err != nil {
			panic(err)
		}
		degrees[graph.LocalID(v, world)]++
	}, ygm.WithScheme(scheme), ygm.WithCapacity(capacity), ygm.WithExchange(ygm.RoundExchange))
	gen := graph.NewUniform(numVertices, seed*31+int64(proc.Rank()))
	jitterChunk := edgesPerRank / batches
	for i := 0; i < edgesPerRank; i++ {
		if jitter > 0 && jitterChunk > 0 && i%jitterChunk == 0 {
			proc.Compute(proc.Rng().Float64() * jitter)
		}
		e := gen.Next()
		for _, v := range []uint64{e.U, e.V} {
			w := codec.NewWriter(10)
			w.Uvarint(v)
			mb.Send(machine.Rank(graph.Owner(v, world)), w.Bytes())
		}
	}
	mb.WaitEmpty()
	return nil
}

// syncMailboxDegreeCount is Algorithm 1 on the SyncMailbox: queue a
// batch, run the collective exchange, repeat.
func syncMailboxDegreeCount(proc *transport.Proc, scheme machine.Scheme, numVertices uint64, edgesPerRank, batches int, jitter float64, seed int64) error {
	world := proc.WorldSize()
	degrees := make([]uint64, graph.LocalCount(numVertices, world, int(proc.Rank())))
	mb := ygm.New(proc, func(s ygm.Sender, payload []byte) {
		v, err := codec.NewReader(payload).Uvarint()
		if err != nil {
			panic(err)
		}
		degrees[graph.LocalID(v, world)]++
	}, ygm.WithScheme(scheme), ygm.WithExchange(ygm.SyncExchange)).(*ygm.SyncMailbox)
	gen := graph.NewUniform(numVertices, seed*31+int64(proc.Rank()))
	send := func(v uint64) {
		w := codec.NewWriter(10)
		w.Uvarint(v)
		mb.Send(machine.Rank(graph.Owner(v, world)), w.Bytes())
	}
	perBatch := edgesPerRank / batches
	for b := 0; b < batches; b++ {
		if jitter > 0 {
			proc.Compute(proc.Rng().Float64() * jitter)
		}
		n := perBatch
		if b == batches-1 {
			n = edgesPerRank - perBatch*(batches-1)
		}
		for k := 0; k < n; k++ {
			e := gen.Next()
			send(e.U)
			send(e.V)
		}
		mb.ExchangeUntilQuiet()
	}
	return nil
}
