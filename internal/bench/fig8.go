package bench

import (
	"fmt"

	"ygm/internal/apps"
	"ygm/internal/combblas"
	"ygm/internal/graph"
	"ygm/internal/machine"
	"ygm/internal/transport"
	"ygm/internal/ygm"
)

// spmvRun executes the YGM SpMV and returns its row.
func spmvRun(p Preset, nodes int, scheme machine.Scheme, params graph.RMATParams,
	scale, edgesPerRank int, delegateFrac float64, capacity int) Row {
	world := nodes * p.Cores
	cfg := apps.SpMVConfig{
		Mailbox:      ygm.Options{Scheme: scheme, Capacity: capacity},
		Scale:        scale,
		EdgesPerRank: edgesPerRank,
		Params:       params,
		DelegateFrac: delegateFrac,
		Seed:         p.Seed,
		Iterations:   p.SpMVIterations,
	}
	rep, ex := runWorld(p, nodes, nil, func(proc *transport.Proc, ex *extras) error {
		res, err := apps.SpMV(proc, cfg)
		if err != nil {
			return err
		}
		ex.setMax("delegates", float64(res.Delegates))
		ex.setMax("setup_end", res.SetupEnd)
		return nil
	})
	nnz := float64(edgesPerRank) * float64(world) * float64(p.SpMVIterations)
	row := Row{
		Labels: schemeLabel(nodes, scheme),
		Values: opPhaseValues(rep, ex.maxs["setup_end"], nnz, "nnz"),
	}
	row.Values = append(row.Values, Value{Key: "delegates", Val: ex.maxs["delegates"]})
	return row
}

// combblasRun executes the 2D synchronous baseline (world must be a
// perfect square) and returns its row labeled scheme=CombBLAS.
func combblasRun(p Preset, nodes int, params graph.RMATParams, scale, edgesPerRank int) Row {
	world := nodes * p.Cores
	cfg := combblas.Config{
		Scale:        scale,
		EdgesPerRank: edgesPerRank,
		Params:       params,
		Seed:         p.Seed,
		Iterations:   p.SpMVIterations,
		XValue:       apps.XValue,
		MatrixValue:  apps.MatrixValue,
	}
	rep, ex := runWorld(p, nodes, nil, func(proc *transport.Proc, ex *extras) error {
		res, err := combblas.SpMV(proc, cfg)
		if err != nil {
			return err
		}
		ex.setMax("setup_end", res.SetupEnd)
		return nil
	})
	nnz := float64(edgesPerRank) * float64(world) * float64(p.SpMVIterations)
	tot := rep.Totals()
	return Row{
		Labels: []Label{
			{Key: "nodes", Val: itoa(nodes)},
			{Key: "scheme", Val: "CombBLAS"},
		},
		Values: perfRow(opTime(rep.Makespan(), ex.maxs["setup_end"]), nnz, "nnz",
			tot.RemoteMsgs, tot.RemoteBytes, rep.Utilization()),
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// isGridNode reports whether nodes is in the preset's square-world list.
func isGridNode(p Preset, nodes int) bool {
	for _, n := range p.GridNodes {
		if n == nodes {
			return true
		}
	}
	return false
}

// Fig8a: SpMV weak scaling on Graph500 RMAT matrices with delegates,
// against the CombBLAS-style 2D baseline at square world sizes.
func Fig8a(p Preset) *Table { return runPlan(fig8aPlan(p)) }

func fig8aPlan(p Preset) Plan {
	pl := Plan{Table: &Table{ID: "fig8a", Title: "SpMV weak scaling (RMAT 0.57/0.19/0.19/0.05, delegates) vs CombBLAS-style 2D"}}
	for _, nodes := range p.WeakNodes {
		world := nodes * p.Cores
		scale := p.SpMVVerticesPerRankLog + log2(world)
		edgesPerRank := p.SpMVEdgeFactor << uint(p.SpMVVerticesPerRankLog)
		for _, scheme := range machine.Schemes {
			pl.add(cellName("fig8a", nodes, scheme), func() Row {
				return spmvRun(p, nodes, scheme, graph.Graph500, scale, edgesPerRank, p.SpMVDelegateFrac, p.MailboxCap)
			})
		}
		if isGridNode(p, nodes) {
			pl.add(fmt.Sprintf("fig8a/nodes=%d/scheme=CombBLAS", nodes), func() Row {
				return combblasRun(p, nodes, graph.Graph500, scale, edgesPerRank)
			})
		}
	}
	return pl
}

// Fig8b: delegate count growth across the Fig. 8a weak-scaling sweep.
func Fig8b(p Preset) *Table { return runPlan(fig8bPlan(p)) }

func fig8bPlan(p Preset) Plan {
	pl := Plan{Table: &Table{ID: "fig8b", Title: "delegate growth under SpMV weak scaling"}}
	for _, nodes := range p.WeakNodes {
		world := nodes * p.Cores
		scale := p.SpMVVerticesPerRankLog + log2(world)
		edgesPerRank := p.SpMVEdgeFactor << uint(p.SpMVVerticesPerRankLog)
		pl.add(cellName("fig8b", nodes, machine.NLNR), func() Row {
			row := spmvRun(p, nodes, machine.NLNR, graph.Graph500, scale, edgesPerRank, p.SpMVDelegateFrac, p.MailboxCap)
			delegates, _ := row.Get("delegates")
			return Row{
				Labels: []Label{{Key: "nodes", Val: itoa(nodes)}},
				Values: []Value{
					{Key: "delegates", Val: delegates},
					{Key: "vertices", Val: float64(uint64(1) << uint(scale))},
				},
			}
		})
	}
	return pl
}

// Fig8c: SpMV weak scaling on uniform matrices (RMAT 0.25 x4) without
// delegates, vs the 2D baseline — isolating the communication layer from
// the delegate mechanism, as the paper does.
func Fig8c(p Preset) *Table { return runPlan(fig8cPlan(p)) }

func fig8cPlan(p Preset) Plan {
	pl := Plan{Table: &Table{ID: "fig8c", Title: "SpMV weak scaling (uniform, no delegates) vs CombBLAS-style 2D"}}
	for _, nodes := range p.WeakNodes {
		world := nodes * p.Cores
		scale := p.SpMVVerticesPerRankLog + log2(world)
		edgesPerRank := p.SpMVEdgeFactor << uint(p.SpMVVerticesPerRankLog)
		for _, scheme := range machine.Schemes {
			pl.add(cellName("fig8c", nodes, scheme), func() Row {
				return spmvRun(p, nodes, scheme, graph.Uniform4, scale, edgesPerRank, 0, p.MailboxCap)
			})
		}
		if isGridNode(p, nodes) {
			pl.add(fmt.Sprintf("fig8c/nodes=%d/scheme=CombBLAS", nodes), func() Row {
				return combblasRun(p, nodes, graph.Uniform4, scale, edgesPerRank)
			})
		}
	}
	return pl
}

// Fig8d: SpMV strong scaling on the webgraph-like matrix. As in the
// paper, the mailbox size scales with the node count (2^10 x N there);
// without that scaling, per-channel message sizes shrink until
// coalescing stops paying.
func Fig8d(p Preset) *Table { return runPlan(fig8dPlan(p)) }

func fig8dPlan(p Preset) Plan {
	pl := Plan{Table: &Table{ID: "fig8d", Title: "SpMV strong scaling (webgraph-like matrix, mailbox scaled with N)"}}
	for _, nodes := range p.StrongNodes {
		world := nodes * p.Cores
		edgesPerRank := p.SpMVStrongEdges / world
		if edgesPerRank == 0 {
			edgesPerRank = 1
		}
		capacity := p.MailboxCap / 4 * nodes
		if capacity < 64 {
			capacity = 64
		}
		for _, scheme := range machine.Schemes {
			pl.add(cellName("fig8d", nodes, scheme), func() Row {
				return spmvRun(p, nodes, scheme, graph.Webgraph, p.SpMVStrongScale, edgesPerRank, p.SpMVDelegateFrac, capacity)
			})
		}
		if isGridNode(p, nodes) {
			pl.add(fmt.Sprintf("fig8d/nodes=%d/scheme=CombBLAS", nodes), func() Row {
				return combblasRun(p, nodes, graph.Webgraph, p.SpMVStrongScale, edgesPerRank)
			})
		}
	}
	return pl
}
