package bench

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"ygm/internal/machine"
	"ygm/internal/transport"
)

// shrunkQuick keeps the parallel-vs-serial comparisons fast.
func shrunkQuick() Preset {
	p := Quick()
	p.WeakNodes = []int{1, 2}
	p.StrongNodes = []int{1, 2}
	p.GridNodes = []int{1}
	return p
}

// jitterKeys are the value columns derived from simulated completion
// times. The simulator is optimistic: a rank absorbs whatever has
// physically arrived when it polls, so virtual waits absorb overhead
// charges in a scheduling-dependent order and these columns jitter
// run to run — serial or parallel alike (that pre-existing jitter is
// what the baseline gate's SimTolerance bounds). Everything else —
// labels, traffic counts, message sizes, delegate/broadcast counts —
// is a deterministic function of the workload and must match exactly.
var jitterKeys = map[string]bool{
	"sim_time":    true,
	"rate":        true,
	"utilization": true,
	"measured_bw": true,
}

// simTestTolerance bounds the per-value relative drift allowed on
// jitter columns between two runs of the same experiment. Looser than
// the baseline gate's SimTolerance: single cells on the shrunk preset
// are short, so tie-break jitter is relatively larger than on figure
// totals.
const simTestTolerance = 0.15

// TestParallelMatchesSerial runs the two pinned baseline figures both
// serially and through the worker pool and requires identical tables up
// to simulator tie-break jitter: same row order, byte-identical labels,
// exactly equal deterministic columns.
func TestParallelMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full figure sweeps twice")
	}
	p := shrunkQuick()
	for _, id := range []string{"fig6a", "fig8a"} {
		t.Run(id, func(t *testing.T) {
			e, err := Lookup(id)
			if err != nil {
				t.Fatal(err)
			}
			serial := e.Run(p)
			par := (&Runner{Workers: 4}).Run(e, p)
			if par.ID != serial.ID || par.Title != serial.Title {
				t.Fatalf("table header mismatch: %q/%q vs %q/%q", par.ID, par.Title, serial.ID, serial.Title)
			}
			if len(par.Rows) != len(serial.Rows) {
				t.Fatalf("row count: parallel %d vs serial %d", len(par.Rows), len(serial.Rows))
			}
			for i := range serial.Rows {
				sr, pr := serial.Rows[i], par.Rows[i]
				if !reflect.DeepEqual(sr.Labels, pr.Labels) {
					t.Fatalf("row %d labels: parallel %v vs serial %v", i, pr.Labels, sr.Labels)
				}
				if len(sr.Values) != len(pr.Values) {
					t.Fatalf("row %d value count: parallel %d vs serial %d", i, len(pr.Values), len(sr.Values))
				}
				for j := range sr.Values {
					sv, pv := sr.Values[j], pr.Values[j]
					if sv.Key != pv.Key || sv.Unit != pv.Unit {
						t.Fatalf("row %d value %d: parallel %s/%s vs serial %s/%s", i, j, pv.Key, pv.Unit, sv.Key, sv.Unit)
					}
					if jitterKeys[sv.Key] {
						if d := relDiff(sv.Val, pv.Val); d > simTestTolerance {
							t.Errorf("row %d %s: parallel %g vs serial %g (%.1f%% apart)", i, sv.Key, pv.Val, sv.Val, d*100)
						}
						continue
					}
					if sv.Val != pv.Val {
						t.Errorf("row %d %s: parallel %g != serial %g (deterministic column)", i, sv.Key, pv.Val, sv.Val)
					}
				}
			}
		})
	}
}

func relDiff(a, b float64) float64 {
	if a == b {
		return 0
	}
	m := a
	if b > m {
		m = b
	}
	if m == 0 {
		return 0
	}
	d := a - b
	if d < 0 {
		d = -d
	}
	return d / m
}

// TestRunnerPreservesCellOrder pins the by-construction guarantee on
// synthetic cells: whatever order the pool executes them in, rows are
// reassembled in plan order, so a parallel table equals the serial one
// whenever the cells themselves are deterministic.
func TestRunnerPreservesCellOrder(t *testing.T) {
	const n = 64
	mkPlan := func(Preset) Plan {
		pl := Plan{Table: &Table{ID: "synthetic", Title: "synthetic"}}
		for i := 0; i < n; i++ {
			pl.add(fmt.Sprintf("cell-%d", i), func() Row {
				return Row{Labels: []Label{{Key: "cell", Val: fmt.Sprintf("%d", i)}}}
			})
		}
		return pl
	}
	e := Experiment{
		ID:    "synthetic",
		Title: "synthetic",
		Run:   func(p Preset) *Table { return runPlan(mkPlan(p)) },
		Plan:  mkPlan,
	}
	for _, workers := range []int{1, 3, 8, 2 * n} {
		table := (&Runner{Workers: workers}).Run(e, Preset{})
		if len(table.Rows) != n {
			t.Fatalf("workers=%d: %d rows, want %d", workers, len(table.Rows), n)
		}
		for i, r := range table.Rows {
			if got := r.LabelVal("cell"); got != fmt.Sprintf("%d", i) {
				t.Fatalf("workers=%d: row %d came from cell %s", workers, i, got)
			}
		}
	}
}

// TestRunnerTraceForcesSerial: a non-nil tracer must take the serial
// path — a shared ChromeTracer records one world at a time, and
// interleaving concurrent worlds would garble the timeline.
func TestRunnerTraceForcesSerial(t *testing.T) {
	running := 0
	peak := 0
	mkPlan := func(Preset) Plan {
		pl := Plan{Table: &Table{ID: "x", Title: "x"}}
		for i := 0; i < 8; i++ {
			pl.add("c", func() Row {
				// Serial execution means no overlap, so no synchronization
				// is needed for these counters; the race detector would
				// flag any violation of that assumption.
				running++
				if running > peak {
					peak = running
				}
				running--
				return Row{}
			})
		}
		return pl
	}
	e := Experiment{ID: "x", Title: "x", Run: func(p Preset) *Table { return runPlan(mkPlan(p)) }, Plan: mkPlan}
	p := Preset{Trace: nopTracer{}}
	(&Runner{Workers: 8}).Run(e, p)
	if peak != 1 {
		t.Fatalf("cells overlapped under a tracer: peak concurrency %d", peak)
	}
}

// TestRunnerProfileWritesFiles exercises the pprof plumbing end to end:
// both profile files must exist and be non-empty after stop.
func TestRunnerProfileWritesFiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pb.gz")
	mem := filepath.Join(dir, "mem.pb.gz")
	r := &Runner{CPUProfile: cpu, MemProfile: mem}
	stop, err := r.Profile()
	if err != nil {
		t.Fatal(err)
	}
	// Burn a little CPU so the profile has something to record.
	x := 0
	for i := 0; i < 1e6; i++ {
		x += i * i
	}
	_ = x
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{cpu, mem} {
		st, err := os.Stat(path)
		if err != nil {
			t.Fatalf("profile not written: %v", err)
		}
		if st.Size() == 0 {
			t.Fatalf("profile %s is empty", path)
		}
	}
	// No profiles configured: both Profile and stop must be no-ops.
	stop, err = (&Runner{}).Profile()
	if err != nil {
		t.Fatal(err)
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}
}

// TestPlansMatchSerialTables: every decomposed experiment's plan must
// reproduce its serial table structure — same ID and the same number of
// rows — on the shrunk preset. (Full value equality is covered for the
// pinned figures above; this guards the cheap structural property for
// every plan so a cell can't silently drop a row.)
func TestPlansMatchSerialTables(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every experiment")
	}
	p := shrunkQuick()
	for _, e := range Experiments() {
		if e.Plan == nil {
			continue
		}
		t.Run(e.ID, func(t *testing.T) {
			pl := e.Plan(p)
			if pl.Table.ID != e.ID {
				t.Fatalf("plan table ID %q, want %q", pl.Table.ID, e.ID)
			}
			if len(pl.Cells) == 0 {
				t.Fatal("plan has no cells")
			}
			serial := e.Run(p)
			total := 0
			for _, c := range pl.Cells {
				if c.Name == "" {
					t.Fatal("cell with empty name")
				}
				total += len(c.Rows())
			}
			if total != len(serial.Rows) {
				t.Fatalf("plan cells produce %d rows, serial table has %d", total, len(serial.Rows))
			}
		})
	}
}

// nopTracer is the minimal transport.Tracer used to trigger the
// trace-forces-serial path.
type nopTracer struct{}

func (nopTracer) PacketSent(src, dst machine.Rank, tag transport.Tag, size int, sent, arrive float64) {
}
func (nopTracer) PacketReceived(src, dst machine.Rank, tag transport.Tag, size int, now float64) {}
