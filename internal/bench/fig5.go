package bench

import (
	"fmt"

	"ygm/internal/machine"
	"ygm/internal/transport"
)

// Topology regenerates the structural content of Figs. 1-4: for an
// example cluster it tabulates, per routing scheme, the maximum number
// of direct remote partners any core has, the resulting average remote
// message size scaling exponent, and the worst-case hop count — the
// quantities the exchange-topology diagrams illustrate.
func Topology(p Preset) *Table {
	t := &Table{ID: "topo", Title: "exchange topology summary (N=16 nodes, C=4 cores)"}
	topo := machine.New(16, 4)
	for _, s := range machine.Schemes {
		t.Add(Row{
			Labels: []Label{{Key: "scheme", Val: s.String()}},
			Values: []Value{
				{Key: "max_remote_partners", Val: float64(topo.MaxRemotePartners(s))},
				{Key: "max_hops", Val: float64(machine.MaxHops(s))},
			},
		})
	}
	return t
}

// Fig5 regenerates the bandwidth-vs-message-size curve: for each size it
// reports the cost model's effective bandwidth and a measured value from
// an actual two-rank transfer on the simulated transport (the paper
// measured MVAPICH between two Quartz ranks). It then adds the scheme
// markers of Fig. 5: for a fixed per-core send volume on a 64-node,
// 32-core system, the average remote message size each routing scheme
// achieves — V/(NC) for no routing, V/N for NodeLocal/NodeRemote, VC/N
// for NLNR — and the bandwidth the curve yields at that size.
func Fig5(p Preset) *Table { return runPlan(fig5Plan(p)) }

func fig5Plan(p Preset) Plan {
	pl := Plan{Table: &Table{ID: "fig5", Title: "network bandwidth between two ranks vs message size"}}
	for size := 8; size <= 4<<20; size *= 4 {
		protocol := "eager"
		if size > 16*1024 {
			protocol = "rendezvous"
		}
		pl.add(fmt.Sprintf("fig5/size=%d", size), func() Row {
			return Row{
				Labels: []Label{
					{Key: "msg_size", Val: fmt.Sprintf("%d", size)},
					{Key: "protocol", Val: protocol},
				},
				Values: []Value{
					{Key: "model_bw", Val: quartzGBs(p.Model.EffectiveBandwidth(size)), Unit: "GB/s"},
					{Key: "measured_bw", Val: quartzGBs(measureBandwidth(p, size)), Unit: "GB/s"},
				},
			}
		})
	}
	// Scheme markers: V = 1 MiB per core, N = 64, C = 32 (as in the
	// paper's annotation, which assumes 32 cores per node). Pure model
	// evaluation — one cheap cell, no simulated world.
	pl.addRows("fig5/markers", func() []Row {
		const v, n, c = 1 << 20, 64, 32
		var rows []Row
		for _, m := range []struct {
			scheme string
			size   float64
		}{
			{"NoRoute", float64(v) / (n * c)},
			{"NodeLocal/NodeRemote", float64(v) / n},
			{"NLNR", float64(v) * c / n},
		} {
			rows = append(rows, Row{
				Labels: []Label{
					{Key: "msg_size", Val: fmt.Sprintf("%.0f", m.size)},
					{Key: "protocol", Val: "marker:" + m.scheme},
				},
				Values: []Value{
					{Key: "model_bw", Val: quartzGBs(p.Model.EffectiveBandwidth(int(m.size))), Unit: "GB/s"},
				},
			})
		}
		return rows
	})
	return pl
}

// pingPongMsgs is the message count of one bandwidth measurement.
const pingPongMsgs = 8

// pingPongWorld runs the Fig. 5 measurement workload — pingPongMsgs
// messages of the given size bounced between two ranks on different
// nodes — and returns the run report. Every Recv is paired with a
// Recycle; TestFig5RecyclesEveryPacket pins that packet balance.
func pingPongWorld(p Preset, size int) *transport.Report {
	rep, _ := runWorld(p, 2, nil, func(proc *transport.Proc, ex *extras) error {
		peer := proc.Topo().RankOf(1, 0)
		switch proc.Rank() {
		case 0:
			for i := 0; i < pingPongMsgs; i++ {
				proc.Send(peer, transport.TagUser, make([]byte, size))
				proc.Recycle(proc.Recv(transport.TagUser))
			}
		case peer:
			for i := 0; i < pingPongMsgs; i++ {
				proc.Recycle(proc.Recv(transport.TagUser))
				proc.Send(0, transport.TagUser, make([]byte, size))
			}
		}
		return nil
	})
	return rep
}

// measureBandwidth ping-pongs messages of the given size between two
// ranks on different nodes and returns the achieved one-way
// bytes/second (the osu_bw-style measurement behind Fig. 5). Ping-pong
// rather than a pipelined burst, so the per-message latency shows up in
// the small-message regime exactly as in the paper's plot.
func measureBandwidth(p Preset, size int) float64 {
	rep := pingPongWorld(p, size)
	elapsed := rep.Makespan()
	if elapsed <= 0 {
		return 0
	}
	return float64(2*pingPongMsgs*size) / elapsed
}
