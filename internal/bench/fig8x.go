package bench

import (
	"fmt"

	"ygm/internal/graph"
	"ygm/internal/machine"
)

// Fig8x isolates the Fig. 8a/8c crossover between YGM and the 2D
// synchronous baseline at paper-scale *per-rank volumes*. The mechanism:
// YGM's remote traffic per rank is proportional to its nonzeros per rank
// — constant under weak scaling — while the 2D SpMV moves the dense
// vector through grid columns and rows, O(n/sqrt(P)) entries per rank,
// which grows like sqrt(P) under weak scaling. Once the vector traffic
// exceeds the nonzero traffic (around sqrt(P) ~ 2x edge factor), YGM
// overtakes. The sweep uses a low edge factor and a mailbox large enough
// that YGM runs bandwidth-dominated rather than overhead-dominated,
// exactly the regime the paper's 2^18-record mailboxes produced.
func Fig8x(p Preset) *Table { return runPlan(fig8xPlan(p)) }

func fig8xPlan(p Preset) Plan {
	pl := Plan{Table: &Table{ID: "fig8x", Title: "SpMV crossover vs CombBLAS-style 2D (paper-scale per-rank volumes)"}}
	for _, nodes := range p.XoverGridNodes {
		world := nodes * p.Cores
		scale := p.XoverVerticesPerRankLog + log2(world)
		edgesPerRank := p.XoverEdgeFactor << uint(p.XoverVerticesPerRankLog)
		pl.add(cellName("fig8x", nodes, machine.NLNR), func() Row {
			return spmvRun(p, nodes, machine.NLNR, graph.Uniform4, scale, edgesPerRank, 0, p.XoverMailboxCap)
		})
		pl.add(fmt.Sprintf("fig8x/nodes=%d/scheme=CombBLAS", nodes), func() Row {
			return combblasRun(p, nodes, graph.Uniform4, scale, edgesPerRank)
		})
	}
	return pl
}
