package bench

import (
	"fmt"
	"runtime"
	"time"

	"ygm/internal/machine"
	"ygm/internal/netsim"
	"ygm/internal/transport"
)

// WeakScaleCores is the simulated cores-per-node shape of the
// weak-scaling sweep. 32 keeps node counts round at every point of the
// 1k→65k sweep (32 nodes → 2048 nodes).
const WeakScaleCores = 32

// WeakScalePoint is one world size of the scheduler weak-scaling sweep:
// the host-side cost of simulating a binomial broadcast plus a
// dissemination barrier at that rank count, with the M:N scheduler's
// own counters alongside. SimSeconds comes from the deterministic cost
// model (identical across hosts); WallSeconds and RanksPerWorker are
// what the sweep exists to watch — host memory and wall time must grow
// ~linearly in ranks while the worker pool stays fixed at GOMAXPROCS.
type WeakScalePoint struct {
	Ranks       int     `json:"ranks"`
	Nodes       int     `json:"nodes"`
	Workers     int     `json:"workers"`
	SimSeconds  float64 `json:"sim_seconds"`
	WallSeconds float64 `json:"wall_seconds"`
	Dispatches  uint64  `json:"dispatches"`
	Handoffs    uint64  `json:"handoffs"`
	HeapMiB     float64 `json:"heap_mib"`
}

// WeakScale runs the scheduler weak-scaling sweep: for each rank count
// (which must be a multiple of WeakScaleCores) the world broadcasts a
// 64-byte payload from rank 0 and runs a full barrier, all ranks
// multiplexed onto the worker pool. The goroutine-per-rank execution
// this sweep replaced topped out around 10k ranks on host memory; the
// M:N scheduler plus sparse inboxes is what makes the 65k point
// feasible, and this sweep is the evidence.
func WeakScale(rankCounts []int, seed int64) ([]WeakScalePoint, error) {
	points := make([]WeakScalePoint, 0, len(rankCounts))
	for _, ranks := range rankCounts {
		if ranks < WeakScaleCores || ranks%WeakScaleCores != 0 {
			return nil, fmt.Errorf("bench: weak-scaling rank count %d is not a multiple of %d cores/node",
				ranks, WeakScaleCores)
		}
		nodes := ranks / WeakScaleCores
		topo := machine.New(nodes, WeakScaleCores)

		var before, after runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&before)
		start := time.Now()
		// Force the scheduler on at every point (auto mode would run the
		// smallest worlds goroutine-per-rank) so the sweep compares like
		// with like across four orders of magnitude.
		rep, err := transport.Run(transport.NewConfig(topo,
			transport.WithModel(netsim.Quartz()),
			transport.WithSeed(seed),
			transport.WithWorkers(runtime.GOMAXPROCS(0)),
		), func(p *transport.Proc) error {
			treeBcast(p, transport.TagUser)
			treeBarrier(p, transport.TagUser+1)
			return nil
		})
		wall := time.Since(start)
		runtime.ReadMemStats(&after)
		if err != nil {
			return nil, fmt.Errorf("bench: weak-scaling point %d ranks: %w", ranks, err)
		}

		m := rep.Metrics()
		points = append(points, WeakScalePoint{
			Ranks:       ranks,
			Nodes:       nodes,
			Workers:     int(m.Gauges["sched.workers"].Last),
			SimSeconds:  rep.Makespan(),
			WallSeconds: wall.Seconds(),
			Dispatches:  m.Counter("sched.dispatches"),
			Handoffs:    m.Counter("sched.handoffs"),
			HeapMiB:     float64(after.TotalAlloc-before.TotalAlloc) / (1 << 20),
		})
	}
	return points, nil
}

// The sweep's collective is a hand-rolled binomial tree over raw
// transport sends rather than collective.World: constructing a world
// communicator costs O(P) per rank (member list + dedup map), which is
// O(P²) across the world — at 65k ranks that alone is tens of GiB. The
// tree keeps every rank at O(log P) work and O(1) state, so the sweep
// measures the scheduler and inbox layer, not communicator setup.

// treeReduce gathers one message per rank up a binomial tree to rank 0:
// every non-root rank sends exactly one packet to its parent after
// collecting one from each of its subtree children.
func treeReduce(p *transport.Proc, tag transport.Tag) {
	n := p.WorldSize()
	r := int(p.Rank())
	top := 1
	for top < n {
		top <<= 1
	}
	for m := 1; m < top; m <<= 1 {
		if r&m != 0 {
			p.Send(machine.Rank(r-m), tag, []byte{byte(r)})
			return
		}
		if c := r | m; c < n {
			p.Recycle(p.Recv(tag))
		}
	}
}

// treeBcast broadcasts from rank 0 down the same binomial tree; every
// non-root rank receives exactly one packet under tag.
func treeBcast(p *transport.Proc, tag transport.Tag) {
	n := p.WorldSize()
	r := int(p.Rank())
	top := 1
	for top < n {
		top <<= 1
	}
	high := top
	if r != 0 {
		p.Recycle(p.Recv(tag))
		high = r & -r
	}
	for m := high >> 1; m >= 1; m >>= 1 {
		if c := r | m; c < n && c > r {
			p.Send(machine.Rank(c), tag, []byte{byte(r)})
		}
	}
}

// treeBarrier is a full synchronization: reduce to the root, then
// broadcast the release. Uses tag and tag+1.
func treeBarrier(p *transport.Proc, tag transport.Tag) {
	treeReduce(p, tag)
	treeBcast(p, tag+1)
}

// WeakScaleTable renders the sweep in the same table shape the figure
// experiments use, so ygm-bench -weak-scaling prints and CSV-exports it
// through the common path.
func WeakScaleTable(points []WeakScalePoint) *Table {
	t := &Table{
		ID:    "weakscale",
		Title: "scheduler weak scaling: binomial bcast + barrier, 32 simulated cores/node",
	}
	for _, p := range points {
		t.Add(Row{
			Labels: []Label{
				{Key: "ranks", Val: fmt.Sprintf("%d", p.Ranks)},
				{Key: "nodes", Val: fmt.Sprintf("%d", p.Nodes)},
				{Key: "workers", Val: fmt.Sprintf("%d", p.Workers)},
			},
			Values: []Value{
				{Key: "sim_time", Val: p.SimSeconds, Unit: "s"},
				{Key: "wall_s", Val: p.WallSeconds, Unit: "s"},
				{Key: "dispatches", Val: float64(p.Dispatches)},
				{Key: "handoffs", Val: float64(p.Handoffs)},
				{Key: "alloc_mib", Val: p.HeapMiB, Unit: "MiB"},
			},
		})
	}
	return t
}
