package bench

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

func quickTiny() Preset {
	p := Quick()
	// Shrink further for unit-test latency. The weak sweep keeps a
	// 32-node point: the NoRoute collapse is a function of the channel
	// count relative to the mailbox capacity, so with C=4 and a 128-slot
	// mailbox it becomes visible past ~64 ranks.
	p.WeakNodes = []int{1, 4, 16, 32}
	p.StrongNodes = []int{1, 2, 4}
	p.GridNodes = []int{1, 4, 16}
	p.MailboxCap = 128
	p.DegreeEdgesPerRank = 256
	p.DegreeStrongEdges = 1 << 11
	p.CCEdgesPerRank = 192
	p.CCStrongEdges = 1 << 11
	p.SpMVEdgeFactor = 4
	p.SpMVStrongEdges = 1 << 12
	return p
}

func TestTablePrinting(t *testing.T) {
	tbl := &Table{ID: "x", Title: "demo"}
	tbl.Add(Row{
		Labels: []Label{{Key: "nodes", Val: "4"}},
		Values: []Value{{Key: "t", Val: 1.5, Unit: "s"}, {Key: "big", Val: 2e9}},
	})
	var buf bytes.Buffer
	tbl.Print(&buf)
	out := buf.String()
	for _, want := range []string{"demo", "nodes", "1.5 s", "2.000e+09"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	empty := &Table{ID: "e", Title: "none"}
	buf.Reset()
	empty.Print(&buf)
	if !strings.Contains(buf.String(), "no rows") {
		t.Fatal("empty table should say so")
	}
}

func TestLookup(t *testing.T) {
	if _, err := Lookup("fig6a"); err != nil {
		t.Fatal(err)
	}
	if _, err := Lookup("nope"); err == nil {
		t.Fatal("unknown id accepted")
	}
}

func TestPresetByName(t *testing.T) {
	for _, n := range []string{"quick", "paper"} {
		p, err := PresetByName(n)
		if err != nil || p.Name != n {
			t.Fatalf("PresetByName(%q) = %+v, %v", n, p, err)
		}
	}
	if _, err := PresetByName("x"); err == nil {
		t.Fatal("unknown preset accepted")
	}
}

func TestTopologyTable(t *testing.T) {
	tbl := Topology(quickTiny())
	if len(tbl.Rows) != 4 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	// NLNR must have the smallest max partner count; NoRoute the largest.
	get := func(scheme string) float64 {
		for _, r := range tbl.Rows {
			if r.LabelVal("scheme") == scheme {
				v, _ := r.Get("max_remote_partners")
				return v
			}
		}
		t.Fatalf("missing scheme %s", scheme)
		return 0
	}
	if !(get("NLNR") < get("NodeLocal") && get("NodeLocal") < get("NoRoute")) {
		t.Fatalf("partner ordering wrong: NLNR=%g NodeLocal=%g NoRoute=%g",
			get("NLNR"), get("NodeLocal"), get("NoRoute"))
	}
}

// TestFig5Shape: model and measured bandwidths agree in order of
// magnitude, rise within the eager regime, and drop at the threshold.
func TestFig5Shape(t *testing.T) {
	tbl := Fig5(quickTiny())
	var lastEager, firstRndv float64
	prev := 0.0
	for _, r := range tbl.Rows {
		proto := r.LabelVal("protocol")
		model, _ := r.Get("model_bw")
		if measured, ok := r.Get("measured_bw"); ok {
			if measured <= 0 || measured > 3*model+1 {
				t.Fatalf("measured %g implausible vs model %g", measured, model)
			}
		}
		switch proto {
		case "eager":
			if model < prev {
				t.Fatalf("eager bandwidth fell at %s", r.LabelVal("msg_size"))
			}
			prev = model
			lastEager = model
		case "rendezvous":
			if firstRndv == 0 {
				firstRndv = model
			}
		}
	}
	if firstRndv >= lastEager {
		t.Fatalf("no rendezvous drop: eager %g -> rndv %g", lastEager, firstRndv)
	}
	// Scheme markers must order NoRoute < NodeLocal/NodeRemote < NLNR in size.
	var sizes []float64
	for _, r := range tbl.Rows {
		if strings.HasPrefix(r.LabelVal("protocol"), "marker:") {
			s, err := strconv.ParseFloat(r.LabelVal("msg_size"), 64)
			if err != nil {
				t.Fatal(err)
			}
			sizes = append(sizes, s)
		}
	}
	if len(sizes) != 3 || !(sizes[0] < sizes[1] && sizes[1] < sizes[2]) {
		t.Fatalf("marker sizes = %v", sizes)
	}
}

// TestFig5RecyclesEveryPacket is the regression guard for the packet
// leak ygmvet's buflifetime analyzer found in the bandwidth probe: the
// ping-pong loops used to drop their Recv results, stranding pooled
// packets. The transport counts per-rank recycles, so a well-behaved
// run must end with every received packet back in the pool.
func TestFig5RecyclesEveryPacket(t *testing.T) {
	rep := pingPongWorld(quickTiny(), 1<<10)
	var recvd, recycled uint64
	for _, rr := range rep.Ranks {
		recvd += rr.Stats.RecvMsgs
		recycled += rr.Stats.Recycles
	}
	if want := uint64(2 * pingPongMsgs); recvd != want {
		t.Fatalf("received %d packets, want %d", recvd, want)
	}
	if recycled != recvd {
		t.Fatalf("packet leak: %d packets received, only %d recycled", recvd, recycled)
	}
}

// TestFig6aShape: at the largest weak-scaling point the routed schemes
// must beat NoRoute, and coalescing must give routed schemes larger
// average remote messages.
func TestFig6aShape(t *testing.T) {
	p := quickTiny()
	tbl := Fig6a(p)
	last := itoa(p.WeakNodes[len(p.WeakNodes)-1])
	rows := tbl.Select("nodes", last)
	times := map[string]float64{}
	avg := map[string]float64{}
	for _, r := range rows {
		times[r.LabelVal("scheme")], _ = r.Get("sim_time")
		avg[r.LabelVal("scheme")], _ = r.Get("avg_remote_msg")
	}
	// NoRoute must lose to NodeRemote and NLNR at the largest point.
	// (NodeLocal is held to the coalescing assertion only: without the
	// paper's phased exchange rounds, its intermediaries cannot bundle
	// forwarded records with the senders' direct same-core-offset
	// traffic, so our lazy-forwarding mailbox under-coalesces it — a
	// documented deviation, see EXPERIMENTS.md.)
	if times["NoRoute"] <= times["NodeRemote"] || times["NoRoute"] <= times["NLNR"] {
		t.Fatalf("NoRoute should be slowest at scale: %v", times)
	}
	// Coalescing order: average remote packet size must grow NoRoute ->
	// NodeLocal/NodeRemote -> NLNR, the III-E size analysis.
	if !(avg["NoRoute"] < avg["NodeLocal"] && avg["NodeRemote"] < avg["NLNR"]) {
		t.Fatalf("coalescing order wrong: %v", avg)
	}
}

func TestFig6bRuns(t *testing.T) {
	tbl := Fig6b(quickTiny())
	if len(tbl.Rows) != 3*4 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	for _, r := range tbl.Rows {
		if v, ok := r.Get("sim_time"); !ok || v <= 0 {
			t.Fatalf("bad sim_time in %+v", r)
		}
	}
}

// TestFig7aShape: broadcasts appear and grow (or at least persist) with
// node count, and every point completes with positive time.
func TestFig7aShape(t *testing.T) {
	p := quickTiny()
	tbl := Fig7a(p)
	totalBcasts := 0.0
	for _, r := range tbl.Rows {
		if v, ok := r.Get("sim_time"); !ok || v <= 0 {
			t.Fatalf("bad sim_time in %+v", r)
		}
		b, _ := r.Get("broadcasts")
		totalBcasts += b
	}
	if totalBcasts == 0 {
		t.Fatal("CC weak scaling should issue delegate broadcasts")
	}
}

func TestFig7bRuns(t *testing.T) {
	tbl := Fig7b(quickTiny())
	if len(tbl.Rows) == 0 {
		t.Fatal("empty table")
	}
}

// TestFig8aShape: CombBLAS rows appear exactly at grid node counts, and
// every YGM row carries a delegate count.
func TestFig8aShape(t *testing.T) {
	p := quickTiny()
	tbl := Fig8a(p)
	combRows := tbl.Select("scheme", "CombBLAS")
	if len(combRows) != len(p.GridNodes) {
		t.Fatalf("CombBLAS rows = %d, want %d", len(combRows), len(p.GridNodes))
	}
	for _, r := range tbl.Rows {
		if r.LabelVal("scheme") == "CombBLAS" {
			continue
		}
		if _, ok := r.Get("delegates"); !ok {
			t.Fatalf("YGM row missing delegates: %+v", r)
		}
	}
}

// TestFig8bShape: delegate counts must not shrink as the graph grows.
func TestFig8bShape(t *testing.T) {
	tbl := Fig8b(quickTiny())
	prev := -1.0
	for _, r := range tbl.Rows {
		d, _ := r.Get("delegates")
		if d < prev {
			t.Fatalf("delegates shrank: %+v", tbl.Rows)
		}
		prev = d
	}
	if prev <= 0 {
		t.Fatal("largest point should have delegates")
	}
}

func TestFig8cNoDelegates(t *testing.T) {
	tbl := Fig8c(quickTiny())
	for _, r := range tbl.Rows {
		if d, ok := r.Get("delegates"); ok && d != 0 {
			t.Fatalf("uniform run produced delegates: %+v", r)
		}
	}
}

func TestFig8dRuns(t *testing.T) {
	tbl := Fig8d(quickTiny())
	if len(tbl.Rows) == 0 {
		t.Fatal("empty table")
	}
}

// TestAblationStragglerShape: with a straggler, the synchronous exchange
// must lose more utilization than the asynchronous mailbox.
func TestAblationStragglerShape(t *testing.T) {
	tbl := AblationStraggler(quickTiny())
	util := map[string]float64{}
	for _, r := range tbl.Rows {
		u, _ := r.Get("utilization")
		util[r.LabelVal("exchange")+"/"+r.LabelVal("load")] = u
	}
	asyncDrop := util["ygm-async/none"] - util["ygm-async/straggler"]
	syncDrop := util["alltoallv-sync/none"] - util["alltoallv-sync/straggler"]
	if syncDrop <= asyncDrop {
		t.Fatalf("sync should lose more utilization to the straggler: async drop %g, sync drop %g (%v)",
			asyncDrop, syncDrop, util)
	}
}

func TestAblationMailboxRuns(t *testing.T) {
	tbl := AblationMailboxSize(quickTiny())
	if len(tbl.Rows) == 0 {
		t.Fatal("empty table")
	}
}

// TestAblationZeroCopyShape: zero-copy local exchange must not be slower.
func TestAblationZeroCopyShape(t *testing.T) {
	tbl := AblationZeroCopy(quickTiny())
	times := map[string]float64{}
	for _, r := range tbl.Rows {
		v, _ := r.Get("sim_time")
		times[r.LabelVal("scheme")+"/"+r.LabelVal("local")] = v
	}
	if times["NLNR/zero-copy"] > times["NLNR/copying"] {
		t.Fatalf("zero-copy slower: %v", times)
	}
}

// TestAblationBroadcastShape: NodeRemote and NLNR broadcasts must use
// fewer remote packets than NodeLocal and NoRoute (the factor-C claim).
func TestAblationBroadcastShape(t *testing.T) {
	tbl := AblationBroadcast(quickTiny())
	msgs := map[string]float64{}
	for _, r := range tbl.Rows {
		v, _ := r.Get("remote_msgs")
		msgs[r.LabelVal("scheme")] = v
	}
	if msgs["NodeRemote"] >= msgs["NoRoute"] || msgs["NLNR"] >= msgs["NodeLocal"] {
		t.Fatalf("broadcast remote costs out of order: %v", msgs)
	}
}

// TestAblationExchangeShape: under rotating per-round imbalance the
// asynchronous mailbox must beat the ALLTOALLV-backed exchange (its
// makespan tracks the slowest rank's own total, not the sum of
// per-round maxima).
func TestAblationExchangeShape(t *testing.T) {
	tbl := AblationExchangeStyle(quickTiny())
	times := map[string]float64{}
	for _, r := range tbl.Rows {
		v, _ := r.Get("sim_time")
		times[r.LabelVal("scheme")+"/"+r.LabelVal("exchange")+"/"+r.LabelVal("load")] = v
	}
	for _, scheme := range []string{"NodeRemote", "NLNR"} {
		async := times[scheme+"/async/jitter"]
		syncT := times[scheme+"/alltoallv/jitter"]
		if async >= syncT {
			t.Fatalf("%s: async (%g) should beat alltoallv (%g) under jitter: %v", scheme, async, syncT, times)
		}
	}
}

// TestFig8xShape: the 2D baseline's remote traffic must grow faster than
// YGM's across the crossover sweep (the sqrt(P) dense-vector mechanism).
func TestFig8xShape(t *testing.T) {
	tbl := Fig8x(quickTiny())
	var ygmMB, cbMB []float64
	for _, r := range tbl.Rows {
		v, _ := r.Get("remote_MB")
		if r.LabelVal("scheme") == "CombBLAS" {
			cbMB = append(cbMB, v)
		} else {
			ygmMB = append(ygmMB, v)
		}
	}
	if len(ygmMB) != len(cbMB) || len(ygmMB) < 3 {
		t.Fatalf("rows: ygm %d, combblas %d", len(ygmMB), len(cbMB))
	}
	// Compare traffic growth from the first multi-node point to the last.
	ygmGrowth := ygmMB[len(ygmMB)-1] / (ygmMB[1] + 1e-12)
	cbGrowth := cbMB[len(cbMB)-1] / (cbMB[1] + 1e-12)
	if cbGrowth <= ygmGrowth {
		t.Fatalf("2D vector traffic should outgrow YGM's: ygm %v, combblas %v", ygmMB, cbMB)
	}
}

func TestTableCSV(t *testing.T) {
	tbl := &Table{ID: "x", Title: "demo"}
	tbl.Add(Row{
		Labels: []Label{{Key: "scheme", Val: "NLNR"}},
		Values: []Value{{Key: "t", Val: 1.5, Unit: "s"}, {Key: "note", Val: 2}},
	})
	var buf bytes.Buffer
	tbl.PrintCSV(&buf)
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 || lines[0] != "scheme,t,note" || !strings.HasPrefix(lines[1], "NLNR,1.5 s,") {
		t.Fatalf("csv = %q", buf.String())
	}
	empty := &Table{}
	buf.Reset()
	empty.PrintCSV(&buf)
	if buf.Len() != 0 {
		t.Fatal("empty table should emit nothing")
	}
}
