package bench

import (
	"ygm/internal/apps"
	"ygm/internal/graph"
	"ygm/internal/machine"
	"ygm/internal/transport"
	"ygm/internal/ygm"
)

// ccRun executes connected components across the world and returns its
// row, including the broadcast and delegate counts Fig. 7a tracks.
func ccRun(p Preset, nodes int, scheme machine.Scheme, scale, edgesPerRank int) Row {
	world := nodes * p.Cores
	cfg := apps.ConnectedComponentsConfig{
		Mailbox:      ygm.Options{Scheme: scheme, Capacity: p.MailboxCap},
		Scale:        scale,
		EdgesPerRank: edgesPerRank,
		Params:       graph.Graph500,
		DelegateFrac: p.CCDelegateFrac,
		Seed:         p.Seed,
	}
	rep, ex := runWorld(p, nodes, nil, func(proc *transport.Proc, ex *extras) error {
		res, err := apps.ConnectedComponents(proc, cfg)
		if err != nil {
			return err
		}
		ex.add("broadcasts", float64(res.Broadcasts))
		ex.setMax("delegates", float64(res.Delegates))
		ex.setMax("passes", float64(res.Passes))
		ex.setMax("setup_end", res.SetupEnd)
		return nil
	})
	totalEdges := float64(edgesPerRank) * float64(world)
	row := Row{
		Labels: schemeLabel(nodes, scheme),
		Values: opPhaseValues(rep, ex.maxs["setup_end"], totalEdges*ex.maxs["passes"], "edges"),
	}
	row.Values = append(row.Values,
		Value{Key: "broadcasts", Val: ex.sums["broadcasts"]},
		Value{Key: "delegates", Val: ex.maxs["delegates"]},
		Value{Key: "passes", Val: ex.maxs["passes"]},
	)
	return row
}

// Fig7a: connected components weak scaling on Graph500 RMAT graphs. The
// vertex count grows with the world (scale = per-rank log + log2(P)),
// the delegate threshold scales with the expected maximum degree, and
// the broadcast count per point is reported alongside time — the growth
// the paper plots on the secondary axis.
func Fig7a(p Preset) *Table { return runPlan(fig7aPlan(p)) }

func fig7aPlan(p Preset) Plan {
	pl := Plan{Table: &Table{ID: "fig7a", Title: "connected components weak scaling (RMAT, delegates + broadcasts)"}}
	for _, nodes := range p.WeakNodes {
		world := nodes * p.Cores
		scale := p.CCVerticesPerRankLog + log2(world)
		for _, scheme := range machine.Schemes {
			pl.add(cellName("fig7a", nodes, scheme), func() Row {
				return ccRun(p, nodes, scheme, scale, p.CCEdgesPerRank)
			})
		}
	}
	return pl
}

// Fig7b: connected components strong scaling (fixed graph).
func Fig7b(p Preset) *Table { return runPlan(fig7bPlan(p)) }

func fig7bPlan(p Preset) Plan {
	pl := Plan{Table: &Table{ID: "fig7b", Title: "connected components strong scaling (fixed RMAT graph)"}}
	for _, nodes := range p.StrongNodes {
		world := nodes * p.Cores
		edgesPerRank := p.CCStrongEdges / world
		if edgesPerRank == 0 {
			edgesPerRank = 1
		}
		for _, scheme := range machine.Schemes {
			pl.add(cellName("fig7b", nodes, scheme), func() Row {
				return ccRun(p, nodes, scheme, p.CCStrongScale, edgesPerRank)
			})
		}
	}
	return pl
}
