// Package bench regenerates every evaluation figure of the paper as a
// printed table: Fig. 5 (bandwidth vs message size), Fig. 6 (degree
// counting weak/strong scaling), Fig. 7 (connected components scaling
// with broadcast counts), and Fig. 8 (SpMV scaling against the
// CombBLAS-style 2D baseline, with delegate growth), plus the ablation
// studies DESIGN.md calls out. Experiments run on the simulated cluster
// and report simulated seconds; see EXPERIMENTS.md for the
// paper-vs-measured comparison.
package bench

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Row is one data point of an experiment series.
type Row struct {
	// Labels identify the point (e.g. nodes=8, scheme=NLNR).
	Labels []Label
	// Values are the measured quantities in column order.
	Values []Value
}

// Label is a key with a discrete value.
type Label struct {
	Key string
	Val string
}

// Value is a named measurement.
type Value struct {
	Key string
	Val float64
	// Unit is a display suffix ("s", "GB/s", "msgs").
	Unit string
}

// Table is a printable experiment result.
type Table struct {
	// ID is the figure identifier ("fig6a").
	ID string
	// Title describes what the paper's figure shows.
	Title string
	Rows  []Row
}

// Add appends a row.
func (t *Table) Add(r Row) { t.Rows = append(t.Rows, r) }

// Print renders the table with aligned columns.
func (t *Table) Print(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s\n", t.ID, t.Title)
	if len(t.Rows) == 0 {
		fmt.Fprintln(w, "(no rows)")
		return
	}
	cells := t.cells()
	widths := make([]int, len(cells[0]))
	for _, row := range cells {
		for c, s := range row {
			if len(s) > widths[c] {
				widths[c] = len(s)
			}
		}
	}
	for _, row := range cells {
		var b strings.Builder
		for c, s := range row {
			if c > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[c], s)
		}
		fmt.Fprintln(w, strings.TrimRight(b.String(), " "))
	}
}

// PrintCSV renders the table as comma-separated values (one header row),
// for piping into plotting tools.
func (t *Table) PrintCSV(w io.Writer) {
	if len(t.Rows) == 0 {
		return
	}
	for _, row := range t.cells() {
		for c, s := range row {
			if c > 0 {
				fmt.Fprint(w, ",")
			}
			if strings.ContainsAny(s, ",\"") {
				s = "\"" + strings.ReplaceAll(s, "\"", "\"\"") + "\""
			}
			fmt.Fprint(w, s)
		}
		fmt.Fprintln(w)
	}
}

// cells materializes the header and body of the table. Labels come
// first, then values, in first-seen order; units are dropped in favour
// of raw numbers when rendering for CSV consumers via formatValue.
func (t *Table) cells() [][]string {
	// Collect column order: labels first, then values, in first-seen order.
	var cols []string
	seen := map[string]bool{}
	for _, r := range t.Rows {
		for _, l := range r.Labels {
			if !seen["l:"+l.Key] {
				seen["l:"+l.Key] = true
				cols = append(cols, "l:"+l.Key)
			}
		}
		for _, v := range r.Values {
			if !seen["v:"+v.Key] {
				seen["v:"+v.Key] = true
				cols = append(cols, "v:"+v.Key)
			}
		}
	}
	cells := make([][]string, len(t.Rows)+1)
	cells[0] = make([]string, len(cols))
	for c, col := range cols {
		cells[0][c] = col[2:]
	}
	for i, r := range t.Rows {
		row := make([]string, len(cols))
		lm := map[string]string{}
		for _, l := range r.Labels {
			lm[l.Key] = l.Val
		}
		vm := map[string]Value{}
		for _, v := range r.Values {
			vm[v.Key] = v
		}
		for c, col := range cols {
			if strings.HasPrefix(col, "l:") {
				row[c] = lm[col[2:]]
			} else if v, ok := vm[col[2:]]; ok {
				row[c] = formatValue(v)
			}
		}
		cells[i+1] = row
	}
	return cells
}

func formatValue(v Value) string {
	var s string
	switch {
	case v.Val == 0:
		s = "0"
	case v.Val >= 1e6 || v.Val < 1e-3:
		s = fmt.Sprintf("%.3e", v.Val)
	case v.Val >= 100:
		s = fmt.Sprintf("%.1f", v.Val)
	default:
		s = fmt.Sprintf("%.4g", v.Val)
	}
	if v.Unit != "" {
		s += " " + v.Unit
	}
	return s
}

// Get returns the named value of a row and whether it exists.
func (r Row) Get(key string) (float64, bool) {
	for _, v := range r.Values {
		if v.Key == key {
			return v.Val, true
		}
	}
	return 0, false
}

// LabelVal returns the named label value.
func (r Row) LabelVal(key string) string {
	for _, l := range r.Labels {
		if l.Key == key {
			return l.Val
		}
	}
	return ""
}

// Select returns the rows whose label key equals val.
func (t *Table) Select(key, val string) []Row {
	var out []Row
	for _, r := range t.Rows {
		if r.LabelVal(key) == val {
			out = append(out, r)
		}
	}
	return out
}

// Experiments maps figure ids to their runners, in presentation order.
func Experiments() []Experiment {
	return []Experiment{
		{"topo", "Figs. 1-4: exchange topology summary (partner counts per scheme)", Topology, nil},
		{"fig5", "Fig. 5: network bandwidth vs message size (eager/rendezvous switch)", Fig5, fig5Plan},
		{"fig6a", "Fig. 6a: degree counting weak scaling", Fig6a, fig6aPlan},
		{"fig6b", "Fig. 6b: degree counting strong scaling", Fig6b, fig6bPlan},
		{"fig7a", "Fig. 7a: connected components weak scaling (with broadcast counts)", Fig7a, fig7aPlan},
		{"fig7b", "Fig. 7b: connected components strong scaling", Fig7b, fig7bPlan},
		{"fig8a", "Fig. 8a: SpMV weak scaling, RMAT with delegates, vs CombBLAS-style 2D", Fig8a, fig8aPlan},
		{"fig8b", "Fig. 8b: delegate count growth under SpMV weak scaling", Fig8b, fig8bPlan},
		{"fig8c", "Fig. 8c: SpMV weak scaling, uniform without delegates, vs CombBLAS-style 2D", Fig8c, fig8cPlan},
		{"fig8d", "Fig. 8d: SpMV strong scaling on a webgraph-like matrix (mailbox scaled with N)", Fig8d, fig8dPlan},
		{"fig8x", "Fig. 8a/8c crossover study: YGM vs 2D baseline at paper-scale volumes", Fig8x, fig8xPlan},
		{"ablation-mailbox", "Ablation: mailbox capacity sweep", AblationMailboxSize, ablationMailboxPlan},
		{"ablation-exchange", "Ablation: async send/recv vs ALLTOALLV-backed exchanges (III-A)", AblationExchangeStyle, ablationExchangePlan},
		{"ablation-straggler", "Ablation: async mailbox vs synchronous exchange under stragglers", AblationStraggler, ablationStragglerPlan},
		{"ablation-zerocopy", "Ablation: Section VII zero-copy local exchanges", AblationZeroCopy, ablationZeroCopyPlan},
		{"ablation-bcast", "Ablation: broadcast remote cost per scheme", AblationBroadcast, ablationBroadcastPlan},
	}
}

// Experiment couples a figure id with its runner. Run regenerates the
// table serially. Plan, where present, decomposes the experiment into
// independent cells for the parallel runner; Run for such experiments
// is defined as executing the plan's cells in order, so serial and
// parallel sweeps produce identical tables by construction. Topology is
// the one plan-less experiment: it runs no simulated worlds at all.
type Experiment struct {
	ID    string
	Title string
	Run   func(p Preset) *Table
	Plan  func(p Preset) Plan
}

// Lookup finds an experiment by id.
func Lookup(id string) (Experiment, error) {
	for _, e := range Experiments() {
		if e.ID == id {
			return e, nil
		}
	}
	var ids []string
	for _, e := range Experiments() {
		ids = append(ids, e.ID)
	}
	sort.Strings(ids)
	return Experiment{}, fmt.Errorf("bench: unknown experiment %q (have %s)", id, strings.Join(ids, ", "))
}
