package bench

import (
	"encoding/binary"
	"runtime"
	"testing"

	"ygm/internal/container"
	"ygm/internal/machine"
	"ygm/internal/netsim"
	"ygm/internal/transport"
	"ygm/internal/ygm"
)

// MicroBench is a named coalescing-path workload runnable through
// testing.Benchmark, so cmd/ygm-bench can measure host-side ns/op and
// allocs/op outside `go test` and commit them as a regression baseline.
// The workloads mirror the Benchmark* functions in internal/ygm: an
// all-to-all counting exchange on a 4x4 simulated cluster, timed in host
// nanoseconds (the implementation cost, not simulated seconds).
type MicroBench struct {
	Name string
	Run  func(b *testing.B)
}

// MicroBenches returns the baseline micro-benchmark suite in fixed order.
func MicroBenches() []MicroBench {
	return []MicroBench{
		{"MailboxLazyNLNR", func(b *testing.B) { microWorkload(b, ygm.LazyExchange, machine.NLNR) }},
		{"MailboxRoundNLNR", func(b *testing.B) { microWorkload(b, ygm.RoundExchange, machine.NLNR) }},
		{"MailboxLazyNoRoute", func(b *testing.B) { microWorkload(b, ygm.LazyExchange, machine.NoRoute) }},
		{"MailboxRoundNodeRemote", func(b *testing.B) { microWorkload(b, ygm.RoundExchange, machine.NodeRemote) }},
		{"MailboxSyncNLNR", func(b *testing.B) { microWorkload(b, ygm.SyncExchange, machine.NLNR) }},
		{"ContainerCounterLazyNLNR", func(b *testing.B) { containerWorkload(b, ygm.LazyExchange, machine.NLNR) }},
		{"ContainerCounterRoundNoRoute", func(b *testing.B) { containerWorkload(b, ygm.RoundExchange, machine.NoRoute) }},
		{"TreeBarrierSparse1k", func(b *testing.B) { largeWorldWorkload(b, 1024) }},
		{"TreeBarrierSched4k", func(b *testing.B) { largeWorldWorkload(b, 4096) }},
	}
}

// largeWorldWorkload pins the large-world hot path the M:N scheduler
// and sparse inboxes own: world construction, a binomial broadcast, and
// a dissemination barrier at `ranks` ranks, all multiplexed onto a
// GOMAXPROCS worker pool. Its allocs/op gates the O(active edges)
// property — a regression back toward O(P²) ring setup moves this
// number by orders of magnitude, not percent.
func largeWorldWorkload(b *testing.B, ranks int) {
	topo := machine.New(ranks/32, 32)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, err := transport.Run(transport.NewConfig(topo,
			transport.WithModel(netsim.Quartz()),
			transport.WithSeed(12345),
			transport.WithWorkers(runtime.GOMAXPROCS(0)),
		), func(p *transport.Proc) error {
			treeBcast(p, transport.TagUser)
			treeBarrier(p, transport.TagUser+1)
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// containerWorkload is the distributed-container counterpart of
// microWorkload: every rank streams 512 skewed word increments into a
// container.Counter and the engine barrier drains the world — the
// steady-state AsyncIncr hot path plus the container dispatch layer.
func containerWorkload(b *testing.B, style ygm.ExchangeStyle, scheme machine.Scheme) {
	const incrsPerRank = 512
	topo := machine.New(4, 4)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, err := transport.Run(transport.NewConfig(topo,
			transport.WithModel(netsim.Quartz()),
			transport.WithSeed(12345),
		), func(p *transport.Proc) error {
			eng := container.NewEngine(p,
				ygm.WithScheme(scheme),
				ygm.WithCapacity(256),
				ygm.WithExchange(style))
			cnt := container.NewCounter(eng, nil)
			rng := p.Rng()
			var key [8]byte
			for k := 0; k < incrsPerRank; k++ {
				binary.LittleEndian.PutUint64(key[:], uint64(rng.Intn(64)))
				cnt.AsyncIncr(key[:])
			}
			eng.Barrier()
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// microWorkload is the shared workload body: every rank sends 512
// uniformly random unicasts and the world drains to quiescence. The seed
// is fixed so every iteration measures the identical message pattern.
func microWorkload(b *testing.B, style ygm.ExchangeStyle, scheme machine.Scheme) {
	const msgsPerRank = 512
	topo := machine.New(4, 4)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, err := transport.Run(transport.NewConfig(topo,
			transport.WithModel(netsim.Quartz()),
			transport.WithSeed(12345),
		), func(p *transport.Proc) error {
			mb := ygm.New(p, func(s ygm.Sender, payload []byte) {},
				ygm.WithScheme(scheme),
				ygm.WithCapacity(256),
				ygm.WithExchange(style))
			rng := p.Rng()
			var payload [8]byte
			for k := 0; k < msgsPerRank; k++ {
				binary.LittleEndian.PutUint64(payload[:], uint64(k))
				mb.Send(machine.Rank(rng.Intn(p.WorldSize())), payload[:])
			}
			mb.WaitEmpty()
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}
