package bench

import "testing"

// BenchmarkMicro exposes the committed baseline suite as ordinary go
// benchmarks, so `go test -bench Micro -cpuprofile ...` can profile the
// exact workloads ygm-bench measures and gates on.
func BenchmarkMicro(b *testing.B) {
	for _, mb := range MicroBenches() {
		b.Run(mb.Name, mb.Run)
	}
}
