package bench

import (
	"ygm/internal/apps"
	"ygm/internal/graph"
	"ygm/internal/machine"
	"ygm/internal/transport"
	"ygm/internal/ygm"
)

// degreeRun executes the degree-counting application across the world
// and returns its row values.
func degreeRun(p Preset, nodes int, scheme machine.Scheme, numVertices uint64, edgesPerRank int) Row {
	world := nodes * p.Cores
	batch := edgesPerRank / maxInt(1, p.DegreeBatches)
	cfg := apps.DegreeCountConfig{
		Mailbox:      ygm.Options{Scheme: scheme, Capacity: p.MailboxCap},
		NumVertices:  numVertices,
		EdgesPerRank: edgesPerRank,
		BatchSize:    batch,
		NewGen: func(proc *transport.Proc) graph.Generator {
			return graph.NewUniform(numVertices, p.Seed*31+int64(proc.Rank()))
		},
	}
	rep, _ := runWorld(p, nodes, nil, func(proc *transport.Proc, ex *extras) error {
		_, err := apps.DegreeCount(proc, cfg)
		return err
	})
	totalEdges := float64(edgesPerRank) * float64(world)
	return Row{
		Labels: schemeLabel(nodes, scheme),
		Values: perfValues(rep, totalEdges, "edges"),
	}
}

// Fig6a: degree counting weak scaling. The paper used 2^28 vertices and
// 2^32 edges per node with a 2^18 mailbox on 36-core nodes; the preset
// keeps edges-per-rank and mailbox size fixed across the node sweep,
// which is what produces the NoRoute collapse and the eventual
// NodeLocal/NodeRemote coalescing falloff.
func Fig6a(p Preset) *Table { return runPlan(fig6aPlan(p)) }

func fig6aPlan(p Preset) Plan {
	pl := Plan{Table: &Table{ID: "fig6a", Title: "degree counting weak scaling (uniform edges, fixed mailbox)"}}
	for _, nodes := range p.WeakNodes {
		world := uint64(nodes * p.Cores)
		numVertices := p.DegreeVerticesPerRank * world
		for _, scheme := range machine.Schemes {
			pl.add(cellName("fig6a", nodes, scheme), func() Row {
				return degreeRun(p, nodes, scheme, numVertices, p.DegreeEdgesPerRank)
			})
		}
	}
	return pl
}

// Fig6b: degree counting strong scaling (fixed total problem).
func Fig6b(p Preset) *Table { return runPlan(fig6bPlan(p)) }

func fig6bPlan(p Preset) Plan {
	pl := Plan{Table: &Table{ID: "fig6b", Title: "degree counting strong scaling (fixed total edges)"}}
	for _, nodes := range p.StrongNodes {
		world := nodes * p.Cores
		edgesPerRank := p.DegreeStrongEdges / world
		if edgesPerRank == 0 {
			edgesPerRank = 1
		}
		for _, scheme := range machine.Schemes {
			pl.add(cellName("fig6b", nodes, scheme), func() Row {
				return degreeRun(p, nodes, scheme, p.DegreeStrongVertices, edgesPerRank)
			})
		}
	}
	return pl
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
