package bench

import (
	"fmt"

	"ygm/internal/netsim"
	"ygm/internal/transport"
)

// Preset sizes an experiment sweep. The paper ran 36-core nodes up to
// 1024 nodes with 2^18-message mailboxes and billions of edges; this
// reproduction keeps the ratios (edges per rank, mailbox size per rank
// count, N relative to C) but shrinks absolute sizes to what a single
// host simulates in reasonable time. Shapes, crossovers, and who-wins
// are preserved; absolute numbers are not comparable.
type Preset struct {
	Name string
	// Cores per simulated node (the paper's C=36).
	Cores int
	// WeakNodes / StrongNodes are the node-count sweeps.
	WeakNodes   []int
	StrongNodes []int
	// GridNodes are node counts whose worlds are perfect squares, used
	// by the CombBLAS-style comparator.
	GridNodes []int

	// MailboxCap is the mailbox size in records (paper: 2^18).
	MailboxCap int

	// Degree counting (Fig. 6).
	DegreeVerticesPerRank uint64
	DegreeEdgesPerRank    int
	DegreeBatches         int
	DegreeStrongVertices  uint64
	DegreeStrongEdges     int

	// Connected components (Fig. 7).
	CCVerticesPerRankLog int // vertices per rank = 2^this
	CCEdgesPerRank       int
	CCDelegateFrac       float64
	CCStrongScale        int
	CCStrongEdges        int

	// SpMV (Fig. 8).
	SpMVVerticesPerRankLog int
	SpMVEdgeFactor         int
	SpMVDelegateFrac       float64
	SpMVIterations         int
	SpMVStrongScale        int
	SpMVStrongEdges        int

	// Crossover study (fig8x): paper-scale per-rank volumes so that the
	// sqrt(P) dense-vector traffic of the 2D baseline overtakes YGM's
	// flat per-nonzero traffic within the sweep.
	XoverGridNodes          []int
	XoverVerticesPerRankLog int
	XoverEdgeFactor         int
	XoverMailboxCap         int

	Seed  int64
	Model netsim.Model

	// Trace, when non-nil, is attached to every world the sweep runs
	// (transport.Config.Trace). With a *transport.ChromeTracer this turns
	// a figure run into a Perfetto-loadable timeline; see ygm-bench
	// -trace.
	Trace transport.Tracer

	// Wire names the in-process transport backend every world in the
	// sweep runs on: "" or "sim" for the virtual-time simulator, "local"
	// for the real-time wire (figures then report wall seconds on real
	// hardware instead of modeled seconds). The multi-process TCP
	// backend does not fit a figure sweep — world sizes vary per cell —
	// so ygm-bench runs its dedicated exchange benchmark for that (see
	// -wire=tcp).
	Wire string
}

// newWire builds a fresh single-use backend for one world of the sweep.
func (p Preset) newWire() transport.Wire {
	if p.Wire == "local" {
		return transport.LocalWire{}
	}
	return transport.SimWire{}
}

// Quick is the fast preset used by unit tests and testing.B benchmarks.
func Quick() Preset {
	return Preset{
		Name:        "quick",
		Cores:       4,
		WeakNodes:   []int{1, 2, 4, 8},
		StrongNodes: []int{1, 2, 4, 8},
		GridNodes:   []int{1, 4, 16},
		MailboxCap:  256,

		DegreeVerticesPerRank: 256,
		DegreeEdgesPerRank:    512,
		DegreeBatches:         2,
		DegreeStrongVertices:  1 << 12,
		DegreeStrongEdges:     1 << 13,

		CCVerticesPerRankLog: 6,
		CCEdgesPerRank:       384,
		CCDelegateFrac:       0.05,
		CCStrongScale:        10,
		CCStrongEdges:        1 << 12,

		SpMVVerticesPerRankLog: 6,
		SpMVEdgeFactor:         8,
		SpMVDelegateFrac:       0.05,
		SpMVIterations:         1,
		SpMVStrongScale:        10,
		SpMVStrongEdges:        1 << 13,

		XoverGridNodes:          []int{1, 4, 16},
		XoverVerticesPerRankLog: 8,
		XoverEdgeFactor:         4,
		XoverMailboxCap:         1 << 13,

		Seed:  1,
		Model: netsim.Quartz(),
	}
}

// Paper is the full sweep used by cmd/ygm-bench to regenerate the
// figures; it runs minutes, not hours, on one host CPU.
func Paper() Preset {
	return Preset{
		Name:        "paper",
		Cores:       8,
		WeakNodes:   []int{1, 2, 4, 8, 16, 32, 64},
		StrongNodes: []int{1, 2, 4, 8, 16, 32, 64},
		GridNodes:   []int{2, 8, 32}, // 16, 64, 256 ranks: perfect squares
		MailboxCap:  1024,

		DegreeVerticesPerRank: 1 << 10,
		DegreeEdgesPerRank:    1 << 11,
		DegreeBatches:         2,
		DegreeStrongVertices:  1 << 17,
		DegreeStrongEdges:     1 << 19,

		CCVerticesPerRankLog: 7,
		CCEdgesPerRank:       1 << 10,
		CCDelegateFrac:       0.02,
		CCStrongScale:        14,
		CCStrongEdges:        1 << 16,

		SpMVVerticesPerRankLog: 7,
		SpMVEdgeFactor:         8,
		SpMVDelegateFrac:       0.05,
		SpMVIterations:         1,
		SpMVStrongScale:        14,
		SpMVStrongEdges:        1 << 18,

		XoverGridNodes:          []int{2, 8, 32, 128},
		XoverVerticesPerRankLog: 11,
		XoverEdgeFactor:         4,
		XoverMailboxCap:         1 << 16,

		Seed:  1,
		Model: netsim.Quartz(),
	}
}

// PresetByName resolves "quick" or "paper".
func PresetByName(name string) (Preset, error) {
	switch name {
	case "quick":
		return Quick(), nil
	case "paper":
		return Paper(), nil
	}
	return Preset{}, fmt.Errorf("bench: unknown preset %q (have quick, paper)", name)
}

// log2 returns floor(log2(v)) for v >= 1.
func log2(v int) int {
	n := 0
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}
