package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"testing"
)

// The committed baseline (BENCH_ygm.json at the repository root) pins two
// kinds of numbers:
//
//   - micro: host-side ns/op, B/op, and allocs/op of the coalescing
//     micro benches (MicroBenches). allocs/op is hardware-independent and
//     gated strictly; ns/op is gated with a tolerance and only meaningful
//     on hardware comparable to the machine that produced the baseline.
//   - figures: simulated seconds of representative evaluation figures.
//     Simulated time comes from the deterministic netsim cost model, so
//     it is reproducible bit-for-bit across hosts; the small tolerance
//     absorbs goroutine-scheduling nondeterminism in tie-breaks only.
const (
	// NsTolerance fails a micro bench whose ns/op regresses by more
	// than this fraction over the committed baseline. Wall-clock noise
	// on shared CI hosts routinely exceeds 20% even for the minimum of
	// several rounds, so this gate is a coarse tripwire for real
	// regressions (algorithmic blowups, accidental O(n^2) paths); the
	// strict per-op gate is allocs/op, which is host-independent.
	NsTolerance = 0.35
	// AllocTolerance absorbs run-to-run scheduling jitter in whole-world
	// allocation counts (pool handoffs between rank goroutines vary
	// slightly with interleaving); any increase beyond it fails.
	AllocTolerance = 0.02
	// SimTolerance bounds drift in simulated seconds.
	SimTolerance = 0.05
)

// MicroResult is one committed micro-benchmark measurement.
type MicroResult struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// FigureResult is the simulated-seconds total of one evaluation figure
// (the sum of its rows' sim_time column).
type FigureResult struct {
	ID         string  `json:"id"`
	SimSeconds float64 `json:"sim_seconds"`
}

// Baseline is the schema of BENCH_ygm.json.
type Baseline struct {
	Micro   []MicroResult  `json:"micro"`
	Figures []FigureResult `json:"figures"`
}

// baselineFigures names the figures whose simulated seconds are pinned:
// degree-counting weak scaling (Fig. 6a) and SpMV weak scaling (Fig. 8a),
// both on the quick preset.
func baselineFigures() []Experiment {
	fig6a, _ := Lookup("fig6a")
	fig8a, _ := Lookup("fig8a")
	return []Experiment{fig6a, fig8a}
}

// CollectBaseline measures the full baseline: each micro bench runs
// `rounds` times through testing.Benchmark and the fastest round is kept
// (minimum ns/op, with its memory counters); each pinned figure runs once
// on the quick preset.
func CollectBaseline(rounds int) Baseline {
	if rounds < 1 {
		rounds = 1
	}
	var out Baseline
	for _, mb := range MicroBenches() {
		best := testing.Benchmark(mb.Run)
		for i := 1; i < rounds; i++ {
			if r := testing.Benchmark(mb.Run); r.NsPerOp() < best.NsPerOp() {
				best = r
			}
		}
		out.Micro = append(out.Micro, MicroResult{
			Name:        mb.Name,
			NsPerOp:     float64(best.NsPerOp()),
			BytesPerOp:  best.AllocedBytesPerOp(),
			AllocsPerOp: best.AllocsPerOp(),
		})
	}
	p := Quick()
	for _, e := range baselineFigures() {
		table := e.Run(p)
		total := 0.0
		for _, row := range table.Rows {
			if v, ok := row.Get("sim_time"); ok {
				total += v
			}
		}
		out.Figures = append(out.Figures, FigureResult{ID: e.ID, SimSeconds: total})
	}
	return out
}

// WriteJSON writes the baseline to path, indented for diff-friendliness.
func (b Baseline) WriteJSON(path string) error {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// LoadBaseline reads a committed baseline file.
func LoadBaseline(path string) (Baseline, error) {
	var b Baseline
	data, err := os.ReadFile(path)
	if err != nil {
		return b, err
	}
	if err := json.Unmarshal(data, &b); err != nil {
		return b, fmt.Errorf("bench: parsing %s: %w", path, err)
	}
	return b, nil
}

// CompareBaseline checks current against the committed baseline and
// returns one human-readable line per regression; an empty slice means
// the gate passes. Missing entries are regressions too — a bench that
// silently disappears must not pass the gate.
func CompareBaseline(committed, current Baseline) []string {
	var regressions []string
	curMicro := map[string]MicroResult{}
	for _, m := range current.Micro {
		curMicro[m.Name] = m
	}
	for _, base := range committed.Micro {
		cur, ok := curMicro[base.Name]
		if !ok {
			regressions = append(regressions, fmt.Sprintf("micro %s: missing from current run", base.Name))
			continue
		}
		if limit := base.NsPerOp * (1 + NsTolerance); cur.NsPerOp > limit {
			regressions = append(regressions, fmt.Sprintf(
				"micro %s: %.0f ns/op exceeds baseline %.0f ns/op by more than %.0f%%",
				base.Name, cur.NsPerOp, base.NsPerOp, NsTolerance*100))
		}
		if limit := float64(base.AllocsPerOp) * (1 + AllocTolerance); float64(cur.AllocsPerOp) > limit {
			regressions = append(regressions, fmt.Sprintf(
				"micro %s: %d allocs/op regressed over baseline %d allocs/op",
				base.Name, cur.AllocsPerOp, base.AllocsPerOp))
		}
	}
	curFig := map[string]FigureResult{}
	for _, f := range current.Figures {
		curFig[f.ID] = f
	}
	for _, base := range committed.Figures {
		cur, ok := curFig[base.ID]
		if !ok {
			regressions = append(regressions, fmt.Sprintf("figure %s: missing from current run", base.ID))
			continue
		}
		if limit := base.SimSeconds * (1 + SimTolerance); cur.SimSeconds > limit {
			regressions = append(regressions, fmt.Sprintf(
				"figure %s: %.4f simulated s exceeds baseline %.4f s by more than %.0f%%",
				base.ID, cur.SimSeconds, base.SimSeconds, SimTolerance*100))
		}
	}
	return regressions
}
