package bench

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sync"

	"ygm/internal/machine"
)

// Cell is the independently runnable unit of an experiment: one
// simulated-world execution (or a cheap derived computation) producing
// the rows at a fixed position in the experiment's table. A cell
// captures every parameter it needs at plan time and shares no mutable
// state with its siblings, so a worker pool may execute cells in any
// order; reassembling their rows in plan order reproduces the serial
// table exactly. Each simulated world is deterministic given its seed,
// which makes serial and parallel sweeps byte-identical by
// construction.
type Cell struct {
	Name string
	Rows func() []Row
}

// Plan is an experiment's cell decomposition: the table skeleton (ID
// and Title, no rows yet) plus the ordered cells whose concatenated
// rows form the table.
type Plan struct {
	Table *Table
	Cells []Cell
}

// add appends a single-row cell.
func (pl *Plan) add(name string, run func() Row) {
	pl.Cells = append(pl.Cells, Cell{Name: name, Rows: func() []Row { return []Row{run()} }})
}

// addRows appends a multi-row cell.
func (pl *Plan) addRows(name string, run func() []Row) {
	pl.Cells = append(pl.Cells, Cell{Name: name, Rows: run})
}

// runPlan is the serial executor every decomposed experiment's Run is
// defined through: cells execute in plan order on the calling
// goroutine. Because the parallel runner executes the same cells and
// reassembles rows in the same order, the two paths cannot diverge.
func runPlan(pl Plan) *Table {
	for _, c := range pl.Cells {
		pl.Table.Rows = append(pl.Table.Rows, c.Rows()...)
	}
	return pl.Table
}

// cellName labels the standard (figure, nodes, scheme) cell.
func cellName(id string, nodes int, scheme machine.Scheme) string {
	return fmt.Sprintf("%s/nodes=%d/scheme=%s", id, nodes, scheme)
}

// Runner executes experiments, optionally spreading each experiment's
// independent cells across a worker pool and profiling the host process
// over the sweep. The zero value runs serially with no profiles.
type Runner struct {
	// Workers is the number of goroutines executing cells. Values <= 1
	// (and experiments with no Plan) run serially. Simulated results do
	// not depend on Workers; only host wall time does.
	Workers int
	// CPUProfile, when non-empty, is the path Profile writes a pprof
	// CPU profile of the sweep to.
	CPUProfile string
	// MemProfile, when non-empty, is the path Profile's stop function
	// writes a post-sweep heap profile to.
	MemProfile string
}

// Run executes one experiment. Experiments with a Plan fan their cells
// out across Workers goroutines; plan-less experiments and Workers <= 1
// fall back to the serial Run. A non-nil Preset.Trace forces the serial
// path: a ChromeTracer is safe to share but records one world at a
// time, and interleaving concurrent worlds would garble the timeline.
func (r *Runner) Run(e Experiment, p Preset) *Table {
	workers := r.Workers
	if p.Trace != nil {
		workers = 1
	}
	if e.Plan == nil || workers <= 1 {
		return e.Run(p)
	}
	pl := e.Plan(p)
	if workers > len(pl.Cells) {
		workers = len(pl.Cells)
	}
	rows := make([][]Row, len(pl.Cells))
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				rows[i] = pl.Cells[i].Rows()
			}
		}()
	}
	for i := range pl.Cells {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	for _, rs := range rows {
		pl.Table.Rows = append(pl.Table.Rows, rs...)
	}
	return pl.Table
}

// Profile starts the configured profiles and returns the function that
// finishes them: it stops the CPU profile and captures the heap
// profile (after a GC, so the live set rather than garbage is
// measured). Call stop exactly once, after the sweep; with no profiles
// configured both Profile and stop are no-ops.
func (r *Runner) Profile() (stop func() error, err error) {
	var cpu *os.File
	if r.CPUProfile != "" {
		cpu, err = os.Create(r.CPUProfile)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(cpu); err != nil {
			cpu.Close()
			return nil, fmt.Errorf("bench: starting CPU profile: %w", err)
		}
	}
	return func() error {
		if cpu != nil {
			pprof.StopCPUProfile()
			if err := cpu.Close(); err != nil {
				return err
			}
		}
		if r.MemProfile != "" {
			f, err := os.Create(r.MemProfile)
			if err != nil {
				return err
			}
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				f.Close()
				return fmt.Errorf("bench: writing heap profile: %w", err)
			}
			return f.Close()
		}
		return nil
	}, nil
}
