package bench

import (
	"fmt"
	"testing"

	"ygm/internal/machine"
)

// TestProbe prints degree-counting times across node counts; run
// explicitly with -run TestProbe -v (skipped by default).
func TestProbe(t *testing.T) {
	if testing.Short() {
		t.Skip("probe")
	}
	p := Quick()
	p.MailboxCap = 128
	p.DegreeEdgesPerRank = 256
	for _, nodes := range []int{4, 16, 32} {
		world := uint64(nodes * p.Cores)
		nv := p.DegreeVerticesPerRank * world
		line := fmt.Sprintf("nodes=%d:", nodes)
		for _, s := range machine.Schemes {
			row := degreeRun(p, nodes, s, nv, p.DegreeEdgesPerRank)
			tm, _ := row.Get("sim_time")
			av, _ := row.Get("avg_remote_msg")
			line += fmt.Sprintf("  %s t=%.1fus avg=%.0fB", s, tm*1e6, av)
		}
		t.Log(line)
	}
}
