package analyzers

// flow.go is the forward abstract-interpretation engine that runs a
// transfer function to fixpoint over a cfg. Analyzers define their own
// abstract state (any type with clone and join) and a per-node transfer
// function; the engine handles the worklist, loop convergence, and a
// final in-order reporting pass so diagnostics are emitted exactly once.

import "go/ast"

// absState is an analyzer's abstract state for one program point.
type absState interface {
	// clone returns an independent copy.
	clone() absState
	// join merges other into the receiver and reports whether the
	// receiver changed (for fixpoint detection).
	join(other absState) bool
}

// flowFuncs bundles an analysis's callbacks.
type flowFuncs struct {
	// transfer applies one node's effect to st in place. report is true
	// only during the final reporting pass, when diagnostics should be
	// emitted.
	transfer func(st absState, n ast.Node, report bool)
	// refine, if non-nil, is called on each outgoing edge of a block
	// whose cond is set and that has exactly two successors: taken=true
	// for succs[0] (condition held), false for succs[1]. It may sharpen
	// st in place (e.g. drop a variable proven nil).
	refine func(st absState, cond ast.Expr, taken bool)
	// atExit, if non-nil, receives the state flowing into the synthetic
	// exit block after the fixpoint (for end-of-function obligations).
	atExit func(st absState)
}

// forwardFlow runs fns over g starting from entry with the given initial
// state, to fixpoint, then performs one reporting pass in block order.
func forwardFlow(g *cfg, entry absState, fns flowFuncs) {
	in := make(map[*cfgBlock]absState, len(g.blocks))
	in[g.entry] = entry.clone()

	work := []*cfgBlock{g.entry}
	inWork := map[*cfgBlock]bool{g.entry: true}
	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		inWork[b] = false
		st := in[b].clone()
		for _, n := range b.nodes {
			fns.transfer(st, n, false)
		}
		if b.panics {
			continue
		}
		twoWay := fns.refine != nil && b.cond != nil && len(b.succs) == 2
		for i, succ := range b.succs {
			out := st
			if twoWay || i < len(b.succs)-1 {
				out = st.clone()
			}
			if twoWay {
				fns.refine(out, b.cond, i == 0)
			}
			prev, ok := in[succ]
			changed := false
			if !ok {
				in[succ] = out.clone()
				changed = true
			} else {
				changed = prev.join(out)
			}
			if changed && !inWork[succ] {
				work = append(work, succ)
				inWork[succ] = true
			}
		}
	}

	// Reporting pass: re-run transfers in block order with the fixpoint
	// input states so each diagnostic fires once, at a stable position.
	for _, b := range g.blocks {
		st, ok := in[b]
		if !ok {
			continue // unreachable
		}
		st = st.clone()
		for _, n := range b.nodes {
			fns.transfer(st, n, true)
		}
	}
	if fns.atExit != nil {
		if st, ok := in[g.exit]; ok {
			fns.atExit(st.clone())
		}
	}
}
