package analyzers

import (
	"fmt"
	"go/ast"
	"go/types"
)

// deprecatedShims maps the legacy ygm entry points kept for source
// compatibility to their replacements. The shims stay exported — the
// analyzer keeps new in-repo uses from creeping back in.
var deprecatedShims = map[string]string{
	"NewBox":      "ygm.New with Option values",
	"NewRound":    "ygm.New with WithExchange(RoundExchange)",
	"NewSync":     "ygm.New with WithExchange(SyncExchange)",
	"WithOptions": "the individual With* options",
	"SendBcast":   "Broadcast",
}

// Deprecated flags in-repo uses of the legacy ygm construction and
// send shims outside the ygm package itself (which implements them in
// terms of each other).
var Deprecated = &Analyzer{
	Name: "deprecated",
	Doc:  "flag uses of the legacy ygm shims (NewBox/NewRound/NewSync, SendBcast, WithOptions) superseded by the options API",
	Run:  runDeprecated,
}

func runDeprecated(pass *Pass) []Finding {
	if pass.Pkg.Path == ygmPkg {
		return nil
	}
	var findings []Finding
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			fn, ok := pass.Pkg.Info.Uses[id].(*types.Func)
			if !ok || fn.Pkg() == nil || fn.Pkg().Path() != ygmPkg {
				return true
			}
			repl, deprecated := deprecatedShims[fn.Name()]
			if !deprecated {
				return true
			}
			pos := pass.Pkg.Fset.Position(id.Pos())
			msg := fmt.Sprintf("%s is a deprecated legacy shim; use %s", fn.Name(), repl)
			findings = append(findings, Finding{Pos: pos, Analyzer: "deprecated", Message: msg})
			return true
		})
	}
	return findings
}
