package analyzers

import (
	"fmt"
	"go/ast"
	"go/types"
)

// rankConfinedTypes names per-rank state that is deliberately
// unsynchronized: the simulated transport endpoint, mailbox machinery,
// observability recorders, and codec scratch buffers are all owned by
// exactly one simulated rank and accessed without locks on the hot
// path. Touching one from a goroutine spawned inside a handler races
// with the owning rank's delivery loop.
var rankConfinedTypes = map[string]string{
	"ygm/internal/transport.Proc":   "transport endpoint",
	"ygm/internal/ygm.Mailbox":      "mailbox",
	"ygm/internal/ygm.SyncMailbox":  "mailbox",
	"ygm/internal/ygm.RoundMailbox": "mailbox",
	"ygm/internal/ygm.Box":          "mailbox",
	"ygm/internal/ygm.Sender":       "mailbox sender",
	"ygm/internal/obs.Recorder":     "flight recorder",
	"ygm/internal/obs.Registry":     "metrics registry",
	"ygm/internal/obs.Counter":      "metrics counter",
	"ygm/internal/obs.Gauge":        "metrics gauge",
	"ygm/internal/obs.Histogram":    "metrics histogram",
	"ygm/internal/codec.Writer":     "codec scratch writer",
	"ygm/internal/codec.Reader":     "codec reader",
}

// Rankconfined flags goroutines spawned inside handler callbacks (or
// BlobSink implementations) that capture or receive per-rank state.
// Handlers run synchronously inside the owning rank's delivery loop, so
// everything they can see is single-threaded by construction — until a
// `go` statement smuggles a Proc, mailbox, recorder, or codec scratch
// buffer onto a real OS thread that outlives the delivery slot.
var Rankconfined = &Analyzer{
	Name: "rankconfined",
	Doc:  "flag per-rank state (Proc, mailboxes, obs recorders, codec scratch) touched from goroutines spawned inside handler callbacks",
	Run:  runRankconfined,
}

func runRankconfined(pass *Pass) []Finding {
	w := &confinedWalker{
		pass:    pass,
		visited: make(map[types.Object]bool),
		seen:    make(map[ast.Node]bool),
		dedup:   make(map[string]bool),
	}
	sink := blobSinkInterface(pass)

	walkRoot := func(expr ast.Expr) {
		switch e := ast.Unparen(expr).(type) {
		case *ast.FuncLit:
			pos := pass.Pkg.Fset.Position(e.Pos())
			w.walkBody(e.Body, pass.Pkg, fmt.Sprintf("handler literal at %s:%d", shortFile(pos.Filename), pos.Line))
		case *ast.Ident, *ast.SelectorExpr:
			if fn := refTarget(pass.Pkg.Info, e); fn != nil {
				w.walkFunc(fn, fmt.Sprintf("handler %s", fn.Name()))
			}
		}
	}

	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch node := n.(type) {
			case *ast.CallExpr:
				handlerRootsFromCall(pass, node, walkRoot)
			case *ast.ValueSpec:
				if node.Type != nil && isHandlerType(pass.Pkg.Info.Types[node.Type].Type) {
					for _, v := range node.Values {
						walkRoot(v)
					}
				}
			case *ast.AssignStmt:
				for i, rhs := range node.Rhs {
					if i < len(node.Lhs) && isHandlerType(pass.Pkg.Info.Types[node.Lhs[i]].Type) {
						walkRoot(rhs)
					}
				}
			case *ast.FuncDecl:
				if sink != nil && node.Recv != nil && node.Name.Name == "VisitBlob" {
					if fn, ok := pass.Pkg.Info.Defs[node.Name].(*types.Func); ok {
						recv := fn.Type().(*types.Signature).Recv()
						if recv != nil && types.Implements(recv.Type(), sink) {
							w.walkFunc(fn, fmt.Sprintf("BlobSink %s.VisitBlob", recvTypeName(recv.Type())))
						}
					}
				}
			}
			return true
		})
	}
	return w.findings
}

type confinedWalker struct {
	pass     *Pass
	visited  map[types.Object]bool
	seen     map[ast.Node]bool
	dedup    map[string]bool
	findings []Finding
}

func (w *confinedWalker) walkFunc(fn *types.Func, root string) {
	if w.visited[fn] {
		return
	}
	w.visited[fn] = true
	decl := w.pass.Index.Lookup(fn)
	if decl == nil {
		return
	}
	w.walkBody(decl.Decl.Body, decl.Pkg, root)
}

// walkBody scans one reachable body for go statements and recurses into
// static module callees outside the trusted framework packages.
func (w *confinedWalker) walkBody(body *ast.BlockStmt, pkg *Package, root string) {
	if body == nil || w.seen[body] {
		return
	}
	w.seen[body] = true
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			w.checkGo(n, pkg, root)
		case *ast.CallExpr:
			fn := calleeOf(pkg.Info, n)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			if !trustedFrameworkPkgs[fn.Pkg().Path()] {
				w.walkFunc(fn, root)
			}
		}
		return true
	})
}

// checkGo flags confined-typed values reaching the spawned goroutine,
// whether as call arguments, the method receiver, or closure captures.
func (w *confinedWalker) checkGo(g *ast.GoStmt, pkg *Package, root string) {
	report := func(pos ast.Node, name, desc string) {
		p := pkg.Fset.Position(pos.Pos())
		msg := fmt.Sprintf("per-rank %s %q must not be touched from a goroutine spawned inside a handler (%s); handlers run inside the owning rank's delivery loop and everything they reach is single-threaded by construction", desc, name, root)
		key := fmt.Sprintf("%s:%d:%d:%s", p.Filename, p.Line, p.Column, msg)
		if w.dedup[key] {
			return
		}
		w.dedup[key] = true
		w.findings = append(w.findings, Finding{Pos: p, Analyzer: "rankconfined", Message: msg})
	}
	check := func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := pkg.Info.Uses[id].(*types.Var)
		if !ok {
			return true
		}
		if desc := confinedTypeDesc(v.Type()); desc != "" {
			report(id, id.Name, desc)
		}
		return true
	}
	for _, arg := range g.Call.Args {
		ast.Inspect(arg, check)
	}
	switch fun := ast.Unparen(g.Call.Fun).(type) {
	case *ast.FuncLit:
		ast.Inspect(fun.Body, check)
	case *ast.SelectorExpr:
		ast.Inspect(fun.X, check)
	}
}

// confinedTypeDesc reports the confinement description of t (through
// pointers), or "".
func confinedTypeDesc(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	obj := n.Obj()
	if obj.Pkg() == nil {
		return ""
	}
	return rankConfinedTypes[obj.Pkg().Path()+"."+obj.Name()]
}
