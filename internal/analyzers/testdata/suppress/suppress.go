// Package suppressfixture exercises the ygmvet:ignore directive forms:
// trailing and leading line comments, block comments, the scoped form,
// non-matching scoped names, and the unknown-name diagnostic. The
// wallclock analyzer provides the findings being suppressed.
package suppressfixture

import "time"

const tick = 5 * time.Millisecond

// trailing: the directive on the finding's own line suppresses it.
func trailing() {
	time.Sleep(tick) //ygmvet:ignore wallclock — fixture exercises suppression
}

// leading: the directive on the line above suppresses the line below.
func leading() {
	//ygmvet:ignore wallclock
	time.Sleep(tick)
}

// block: a /* */ comment group covers the line after it too.
func block() {
	/* ygmvet:ignore wallclock */
	time.Sleep(tick)
}

// bare: a directive without names silences every analyzer.
func bare() {
	time.Sleep(tick) //ygmvet:ignore
}

// wrongName: a scoped directive naming a different (valid) analyzer
// does not suppress this one.
func wrongName() {
	//ygmvet:ignore seedrand
	time.Sleep(tick) // want `wall-clock time\.Sleep in simulated-rank code`
}

// unknownName: a typo'd analyzer name is itself diagnosed, and the
// finding it meant to suppress still surfaces.
func unknownName() {
	//ygmvet:ignore wallclok -- want `ygmvet:ignore names unknown analyzer "wallclok"`
	time.Sleep(tick) // want `wall-clock time\.Sleep in simulated-rank code`
}
