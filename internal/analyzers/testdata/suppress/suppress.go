// Package suppressfixture exercises the ygmvet:ignore directive forms:
// trailing and leading line comments, block comments, the scoped form,
// non-matching scoped names, and the unknown-name diagnostic. The
// deprecated analyzer provides the findings being suppressed.
package suppressfixture

import (
	"ygm/internal/transport"
	"ygm/internal/ygm"
)

func handler(s ygm.Sender, payload []byte) {}

// trailing: the directive on the finding's own line suppresses it.
func trailing(p *transport.Proc, o ygm.Options) {
	_ = ygm.NewBox(p, handler, o) //ygmvet:ignore deprecated — fixture exercises the shim
}

// leading: the directive on the line above suppresses the line below.
func leading(p *transport.Proc, o ygm.Options) {
	//ygmvet:ignore deprecated
	_ = ygm.NewBox(p, handler, o)
}

// block: a /* */ comment group covers the line after it too.
func block(p *transport.Proc, o ygm.Options) {
	/* ygmvet:ignore deprecated */
	_ = ygm.NewBox(p, handler, o)
}

// bare: a directive without names silences every analyzer.
func bare(p *transport.Proc, o ygm.Options) {
	_ = ygm.NewBox(p, handler, o) //ygmvet:ignore
}

// wrongName: a scoped directive naming a different (valid) analyzer
// does not suppress this one.
func wrongName(p *transport.Proc, o ygm.Options) {
	//ygmvet:ignore wallclock
	_ = ygm.NewBox(p, handler, o) // want `NewBox is a deprecated legacy shim`
}

// unknownName: a typo'd analyzer name is itself diagnosed, and the
// finding it meant to suppress still surfaces.
func unknownName(p *transport.Proc, o ygm.Options) {
	//ygmvet:ignore deprecatd -- want `ygmvet:ignore names unknown analyzer "deprecatd"`
	_ = ygm.NewBox(p, handler, o) // want `NewBox is a deprecated legacy shim`
}
