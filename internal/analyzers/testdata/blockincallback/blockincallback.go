// Package blockincallbackfixture exercises the blockincallback
// analyzer: blocking primitives reached from mailbox receive callbacks
// — directly, through helpers, via Handler-typed variables and
// conversions — are flagged; handlers that only send are not.
package blockincallbackfixture

import (
	"ygm/internal/collective"
	"ygm/internal/machine"
	"ygm/internal/transport"
	"ygm/internal/ygm"
)

func direct(p *transport.Proc, opts ygm.Options) {
	var outer ygm.Box
	outer = ygm.New(p, func(s ygm.Sender, payload []byte) {
		outer.WaitEmpty() // want `WaitEmpty waits for global mailbox quiescence`
	}, ygm.WithCapacity(opts.Capacity))
	_ = outer
}

func transitive(p *transport.Proc, c *collective.Comm, opts ygm.Options) {
	_ = ygm.New(p, func(s ygm.Sender, payload []byte) {
		drain(c)
	}, ygm.WithCapacity(opts.Capacity))
}

func drain(c *collective.Comm) {
	c.Barrier() // want `Barrier is a blocking collective`
}

// stored roots the walk through a Handler-typed variable.
var stored ygm.Handler = blocky

func blocky(s ygm.Sender, payload []byte) {
	recvHelper(nil)
}

func recvHelper(p *transport.Proc) {
	p.Recv(transport.TagUser) // want `Recv blocks until a packet arrives`
}

// converted roots the walk through an explicit Handler conversion.
func converted() ygm.Handler {
	return ygm.Handler(blocky)
}

func clean(p *transport.Proc, opts ygm.Options) {
	_ = ygm.New(p, func(s ygm.Sender, payload []byte) {
		s.Send(machine.Rank(0), payload) // spawning sends from a handler is the supported pattern
	}, ygm.WithCapacity(opts.Capacity))
}
