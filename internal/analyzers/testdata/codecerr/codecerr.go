// Package codecerrfixture exercises the codecerr analyzer: codec calls
// whose error result is discarded by an expression statement are
// flagged; checked calls and error-free Writer methods are not.
package codecerrfixture

import "ygm/internal/codec"

func bad(r *codec.Reader, m codec.Unmarshaler) {
	r.Uint64()     // want `result of codec Uint64 is discarded`
	r.Uvarint()    // want `result of codec Uvarint is discarded`
	r.Unmarshal(m) // want `result of codec Unmarshal is discarded`
}

func good(r *codec.Reader, w *codec.Writer) (uint64, error) {
	w.Uint64(7) // Writer methods return nothing: nothing to drop
	if _, err := r.Uvarint(); err != nil {
		return 0, err
	}
	return r.Uint64()
}
