// Package allocinloopfixture exercises the allocinloop analyzer: make
// calls and map literals inside //ygm:hotpath functions are flagged —
// including in nested closures — while cold functions and suppressed
// lines are not.
package allocinloopfixture

// hot is annotated, so every allocation site in it is a finding.
//
//ygm:hotpath
func hot(n int) []byte {
	counts := map[int]int{} // want `map literal in //ygm:hotpath function hot allocates`
	counts[n]++
	grow := func() []byte {
		return make([]byte, n) // want `make in //ygm:hotpath function hot`
	}
	return grow()
}

// cold has no annotation: allocating freely is fine.
func cold(n int) map[int][]byte {
	return map[int][]byte{n: make([]byte, n)}
}

// slices of structs are not maps; only the make is flagged.
//
//ygm:hotpath
func hotStructLit(n int) []int {
	s := make([]int, 0, n) // want `make in //ygm:hotpath function hotStructLit`
	return append(s, []int{1, 2, 3}...)
}

//ygm:hotpath
func hotSuppressed(n int) []byte {
	return make([]byte, n) //ygmvet:ignore allocinloop — fixture: cold-start growth, never steady state
}
