// Package payloadescapefixture exercises the payloadescape analyzer:
// handler callbacks and BlobSink implementations that store delivered
// payload aliases into fields, package variables, channels, or
// goroutine-captured closures are flagged; handlers that copy before
// retaining are not.
package payloadescapefixture

import (
	"ygm/internal/ygm"
)

type record struct{ data []byte }

var (
	lastPayload []byte
	lastText    string
	payloadCh   = make(chan []byte, 1)
	global      = &record{}
	sinkState   = &blobKeeper{}
)

var _ ygm.Handler = storeGlobal

// storeGlobal retains the raw payload slice in a package variable.
func storeGlobal(s ygm.Sender, payload []byte) {
	lastPayload = payload // want `is stored into package variable lastPayload`
}

var _ ygm.Handler = storeField

// storeField retains the payload through a heap-resident struct field.
func storeField(s ygm.Sender, payload []byte) {
	global.data = payload // want `is stored into field data`
}

var _ ygm.Handler = resliceStore

// resliceStore launders the payload through a local reslice first; the
// backing buffer is still the pooled transport buffer.
func resliceStore(s ygm.Sender, payload []byte) {
	head := payload[:4]
	global.data = head // want `is stored into field data`
}

var _ ygm.Handler = sendChan

// sendChan publishes the alias to another goroutine via a channel.
func sendChan(s ygm.Sender, payload []byte) {
	payloadCh <- payload // want `is sent on a channel`
}

var _ ygm.Handler = goCapture

// goCapture lets a spawned goroutine outlive the delivery slot while
// holding the alias.
func goCapture(s ygm.Sender, payload []byte) {
	go func() { // want `is captured by a goroutine`
		lastText = string(payload)
	}()
}

var _ ygm.Handler = helperStore

// helperStore retains the payload through a module helper; the escape
// summary of keep sees the field store.
func helperStore(s ygm.Sender, payload []byte) {
	global.keep(payload) // want `is retained by keep`
}

func (r *record) keep(b []byte) { r.data = b }

var _ ygm.Handler = cleanCopies

// cleanCopies is the supported pattern: copy the bytes (or a decoded
// scalar) before retaining anything.
func cleanCopies(s ygm.Sender, payload []byte) {
	lastPayload = append([]byte(nil), payload...)
	lastText = string(payload)
}

// blobKeeper implements collective.BlobSink and retains the blob, which
// for the pooled all-to-all aliases a packet about to be recycled.
type blobKeeper struct{ last []byte }

func (k *blobKeeper) VisitBlob(srcIndex int, blob []byte) {
	sinkState.last = blob // want `is stored into field last`
}

// cleanBlobCounter implements collective.BlobSink without retaining.
type cleanBlobCounter struct{ bytes int }

func (k *cleanBlobCounter) VisitBlob(srcIndex int, blob []byte) {
	k.bytes += len(blob)
}
