// Package rankconfinedfixture exercises the rankconfined analyzer:
// goroutines spawned inside handler callbacks that capture or receive
// per-rank state (Proc, mailboxes, senders, codec scratch) are flagged;
// goroutines that only see copied scalars are not.
package rankconfinedfixture

import (
	"ygm/internal/codec"
	"ygm/internal/machine"
	"ygm/internal/transport"
	"ygm/internal/ygm"
)

var results = make(chan int, 8)

// spawnSender smuggles the delivery-loop Sender onto an OS thread.
func spawnSender(p *transport.Proc, opts []ygm.Option) {
	_ = ygm.New(p, func(s ygm.Sender, payload []byte) {
		go func() {
			s.Send(machine.Rank(0), []byte{1}) // want `per-rank mailbox sender "s" must not be touched`
		}()
	}, opts...)
}

// spawnProc captures the transport endpoint in a handler goroutine.
func spawnProc(p *transport.Proc, opts []ygm.Option) {
	_ = ygm.New(p, func(s ygm.Sender, payload []byte) {
		go func() {
			p.Compute(1) // want `per-rank transport endpoint "p" must not be touched`
		}()
	}, opts...)
}

var _ ygm.Handler = delegating

// delegating reaches the go statement through a helper: the walk
// follows static module calls out of the handler.
func delegating(s ygm.Sender, payload []byte) {
	spawnLogger(s)
}

func spawnLogger(s ygm.Sender) {
	go logSender(s) // want `per-rank mailbox sender "s" must not be touched`
}

func logSender(s ygm.Sender) {}

var _ ygm.Handler = scratchLeak

// scratchLeak hands a codec scratch writer to a goroutine.
func scratchLeak(s ygm.Sender, payload []byte) {
	w := codec.NewWriter(16)
	go writeStats(w) // want `per-rank codec scratch writer "w" must not be touched`
}

func writeStats(dst *codec.Writer) { dst.Uvarint(7) }

// cleanScalarGoroutine only moves copied scalars off the handler; no
// per-rank state crosses the goroutine boundary.
func cleanScalarGoroutine(p *transport.Proc, opts []ygm.Option) {
	_ = ygm.New(p, func(s ygm.Sender, payload []byte) {
		n := len(payload)
		go func() {
			results <- n
		}()
	}, opts...)
}
