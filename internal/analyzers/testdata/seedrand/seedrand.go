// Package seedrandfixture exercises the seedrand analyzer: draws from
// the process-global math/rand source are flagged, seeded-source
// construction and methods on an explicit *rand.Rand are not.
package seedrandfixture

import "math/rand"

func bad(vals []int) int {
	rand.Shuffle(len(vals), func(i, j int) { vals[i], vals[j] = vals[j], vals[i] }) // want `rand\.Shuffle draws from the process-global source`
	if rand.Float64() < 0.5 {                                                       // want `rand\.Float64 draws from the process-global source`
		return rand.Intn(10) // want `rand\.Intn draws from the process-global source`
	}
	return 0
}

func good(seed int64, vals []int) float64 {
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(vals), func(i, j int) { vals[i], vals[j] = vals[j], vals[i] })
	return rng.Float64()
}
