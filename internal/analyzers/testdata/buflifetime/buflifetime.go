// Package buflifetimefixture exercises the buflifetime analyzer: pooled
// buffers and packets that leak on some path, are released twice, or
// are touched after SendPooled/Recycle/Detach are flagged; buffers that
// reach exactly one release on every path — including through defers,
// nil-checked Poll results, and consuming module helpers — are not.
package buflifetimefixture

import (
	"ygm/internal/codec"
	"ygm/internal/machine"
	"ygm/internal/transport"
)

// sendClean follows the canonical acquire → fill → SendPooled protocol.
func sendClean(p *transport.Proc, dst machine.Rank) {
	buf := p.AcquireBuf(8)
	buf = buf[:8]
	buf[0] = 1
	p.SendPooled(dst, transport.TagUser, buf)
}

// leakEarlyReturn forgets the buffer on the early-return path.
func leakEarlyReturn(p *transport.Proc, dst machine.Rank, skip bool) {
	buf := p.AcquireBuf(32) // want `pooled buffer "buf" from AcquireBuf is not released on every path`
	if skip {
		return
	}
	p.SendPooled(dst, transport.TagUser, buf)
}

// condLeak releases on one branch only.
func condLeak(p *transport.Proc, dst machine.Rank, send bool) {
	buf := p.AcquireBuf(16) // want `pooled buffer "buf" from AcquireBuf is not released on every path`
	if send {
		p.SendPooled(dst, transport.TagUser, buf)
	}
}

// useAfterRecycle reads the packet payload after handing it back.
func useAfterRecycle(p *transport.Proc) int {
	pkt := p.Recv(transport.TagUser)
	n := len(pkt.Payload)
	p.Recycle(pkt)
	return n + len(pkt.Payload) // want `use of "pkt" after it was recycled`
}

// doubleRecycle releases the same packet twice on one path.
func doubleRecycle(p *transport.Proc, again bool) {
	pkt := p.Recv(transport.TagUser)
	p.Recycle(pkt)
	if again {
		p.Recycle(pkt) // want `"pkt" is released twice: it was already recycled`
	}
}

// useAfterSend touches a pooled buffer the transport now owns.
func useAfterSend(p *transport.Proc, dst machine.Rank) int {
	buf := p.AcquireBuf(8)
	p.SendPooled(dst, transport.TagUser, buf)
	return len(buf) // want `use of "buf" after it was sent`
}

// dropped discards source results outright.
func dropped(p *transport.Proc) {
	p.AcquireBuf(16)          // want `result of AcquireBuf is dropped`
	p.Recv(transport.TagUser) // want `result of Recv is dropped`
}

// reassignLoses overwrites the only reference to an unreleased buffer.
func reassignLoses(p *transport.Proc, dst machine.Rank) {
	buf := p.AcquireBuf(8)
	buf = p.AcquireBuf(16) // want `"buf" is reassigned while it still holds an unreleased pooled buffer`
	p.SendPooled(dst, transport.TagUser, buf)
}

// detachClean swaps a fresh buffer into the writer and sends the
// detached storage: both values reach exactly one release.
func detachClean(p *transport.Proc, dst machine.Rank, w *codec.Writer) {
	buf := p.AcquireBuf(64)
	out := w.Detach(buf)
	p.SendPooled(dst, transport.TagUser, out)
}

// deferRecycle releases through the deferred exit chain.
func deferRecycle(p *transport.Proc) int {
	pkt := p.Recv(transport.TagUser)
	defer p.Recycle(pkt)
	return len(pkt.Payload)
}

// pollClean recycles every non-nil Poll result; the nil-refined return
// path owes nothing.
func pollClean(p *transport.Proc) int {
	drained := 0
	for {
		pkt := p.Poll(transport.TagUser)
		if pkt == nil {
			return drained
		}
		drained++
		p.Recycle(pkt)
	}
}

// forwardHelper releases through a consuming module helper: the
// analyzer's call summary classifies shipIt as consuming its buffer.
func forwardHelper(p *transport.Proc, dst machine.Rank) {
	buf := p.AcquireBuf(8)
	shipIt(p, dst, buf)
}

func shipIt(p *transport.Proc, dst machine.Rank, b []byte) {
	p.SendPooled(dst, transport.TagUser, b)
}

// passedToReader hands a fresh buffer to a helper that only reads it:
// nothing ever releases it.
func passedToReader(p *transport.Proc) {
	readOnly(p.AcquireBuf(4)) // want `result of AcquireBuf is passed to readOnly, which does not release it`
}

func readOnly(b []byte) int { return len(b) }
