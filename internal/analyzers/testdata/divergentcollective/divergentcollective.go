// Package divergentcollectivefixture exercises the divergentcollective
// analyzer: collective call sites control-dependent on rank-identity
// conditions are flagged (every rank must enter a collective, or the
// ones that did hang); unguarded, data-guarded, and post-dominating
// collectives are not.
package divergentcollectivefixture

import (
	"ygm/internal/collective"
	"ygm/internal/machine"
	"ygm/internal/transport"
	"ygm/internal/ygm"
)

// rankGuardedBarrier is the classic divergence: only rank 0 enters.
func rankGuardedBarrier(p *transport.Proc, c *collective.Comm) {
	if p.Rank() == 0 {
		c.Barrier() // want `Barrier \(barrier\) is reached only under the rank-dependent condition`
	}
}

// derivedGuard branches on a variable derived from the rank through a
// conversion; the taint survives int().
func derivedGuard(p *transport.Proc, mb ygm.Box) {
	me := int(p.Rank())
	if me == 0 {
		mb.WaitEmpty() // want `WaitEmpty \(quiescence barrier\) is reached only under the rank-dependent condition`
	}
}

// earlyReturnGuard diverges through control flow rather than nesting:
// non-root members return before the collective.
func earlyReturnGuard(c *collective.Comm) {
	if c.Index() != 0 {
		return
	}
	c.Barrier() // want `Barrier \(barrier\) is reached only under the rank-dependent condition`
}

// helperGuard hides the collective inside a module helper; the
// call-graph summary classifies quiesce as performing one.
func helperGuard(p *transport.Proc, c *collective.Comm) {
	if p.Node() == 0 {
		quiesce(c) // want `quiesce \(helper performing a collective\) is reached only under the rank-dependent condition`
	}
}

func quiesce(c *collective.Comm) {
	c.Barrier()
}

// cleanUnguarded: every rank calls the collective unconditionally.
func cleanUnguarded(c *collective.Comm) {
	c.Barrier()
}

// cleanDataGuarded branches on rank-agnostic data; if the input is
// globally consistent, so is the branch.
func cleanDataGuarded(c *collective.Comm, ready bool) {
	if ready {
		c.Barrier()
	}
}

// cleanPostDominating is the supported pattern: a rank-guarded send
// followed by a quiescence wait that every rank reaches.
func cleanPostDominating(p *transport.Proc, mb ygm.Box, dst machine.Rank) {
	if p.Rank() == 0 {
		mb.Send(dst, []byte{1})
	}
	mb.WaitEmpty()
}
