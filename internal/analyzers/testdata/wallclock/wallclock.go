// Package wallclockfixture exercises the wallclock analyzer: host-clock
// reads and waits are flagged, duration arithmetic and suppressed lines
// are not.
package wallclockfixture

import "time"

// tick is pure duration arithmetic: no clock is observed.
const tick = 5 * time.Millisecond

func bad() time.Duration {
	start := time.Now()    // want `wall-clock time\.Now in simulated-rank code`
	time.Sleep(tick)       // want `wall-clock time\.Sleep in simulated-rank code`
	ch := time.After(tick) // want `wall-clock time\.After in simulated-rank code`
	<-ch
	return time.Since(start) // want `wall-clock time\.Since in simulated-rank code`
}

func suppressed() {
	time.Sleep(tick) //ygmvet:ignore wallclock — fixture: the directive must silence this line
}

func suppressedAbove() {
	//ygmvet:ignore wallclock — fixture: the directive must silence the next line
	time.Sleep(tick)
}
