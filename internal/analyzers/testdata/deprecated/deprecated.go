// Package deprecatedfixture exercises the deprecated analyzer: uses of
// the legacy ygm shims are flagged with their replacements; the
// options-API equivalents are not.
package deprecatedfixture

import (
	"ygm/internal/transport"
	"ygm/internal/ygm"
)

func handler(s ygm.Sender, payload []byte) {}

func legacyConstructors(p *transport.Proc, o ygm.Options) {
	_ = ygm.NewBox(p, handler, o)               // want `NewBox is a deprecated legacy shim; use ygm.New with Option values`
	_, _ = ygm.NewRound(p, handler, o)          // want `NewRound is a deprecated legacy shim; use ygm.New with WithExchange\(RoundExchange\)`
	_, _ = ygm.NewSync(p, handler, o)           // want `NewSync is a deprecated legacy shim; use ygm.New with WithExchange\(SyncExchange\)`
	_ = ygm.New(p, handler, ygm.WithOptions(o)) // want `WithOptions is a deprecated legacy shim; use the individual With\* options`
}

func legacyBroadcast(s ygm.Sender) {
	s.SendBcast([]byte{1}) // want `SendBcast is a deprecated legacy shim; use Broadcast`
}

// modern is the replacement spelling: nothing to flag.
func modern(p *transport.Proc, s ygm.Sender) {
	_ = ygm.New(p, handler, ygm.WithExchange(ygm.LazyExchange))
	s.Broadcast([]byte{1})
}
