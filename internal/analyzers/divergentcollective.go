package analyzers

import (
	"fmt"
	"go/ast"
	"go/types"
)

// collectiveFuncs maps "pkgpath.Name" to a short description for every
// primitive that is collective over its communicator: all member ranks
// must call it, in the same order, or the world deadlocks. (Broadcast
// is absent — it is an asynchronous send, not a collective; TestEmpty
// is absent — it is the nonblocking probe designed for divergent use.)
var collectiveFuncs = map[string]string{
	"ygm/internal/ygm.WaitEmpty":              "quiescence barrier",
	"ygm/internal/ygm.Exchange":               "synchronous exchange",
	"ygm/internal/ygm.ExchangeUntilQuiet":     "synchronous exchange loop",
	"ygm/internal/collective.Barrier":         "barrier",
	"ygm/internal/collective.Bcast":           "broadcast collective",
	"ygm/internal/collective.ReduceU64":       "reduction",
	"ygm/internal/collective.AllreduceU64":    "reduction",
	"ygm/internal/collective.ReduceF64":       "reduction",
	"ygm/internal/collective.AllreduceF64":    "reduction",
	"ygm/internal/collective.Gatherv":         "gather collective",
	"ygm/internal/collective.Allgatherv":      "gather collective",
	"ygm/internal/collective.Scatterv":        "scatter collective",
	"ygm/internal/collective.Alltoallv":       "all-to-all exchange",
	"ygm/internal/collective.AlltoallvPooled": "all-to-all exchange",
	"ygm/internal/collective.ExscanU64":       "prefix scan",
}

// rankSourceFuncs are the calls whose results differ across ranks:
// conditions derived from them partition the world.
var rankSourceFuncs = map[string]bool{
	"ygm/internal/transport.Rank":   true,
	"ygm/internal/transport.Node":   true,
	"ygm/internal/transport.Core":   true,
	"ygm/internal/collective.Index": true,
}

// Divergentcollective flags collective call sites that only some ranks
// reach: a Barrier/WaitEmpty/Alltoallv under an `if p.Rank() == 0`
// style guard hangs every rank that did enter the collective. A site is
// flagged when it is reachable from a branch on a rank-dependent
// condition but does not post-dominate that branch — i.e. the branch
// genuinely decides whether this rank participates. Post-dominating
// collectives (the every-path WaitEmpty after a rank-guarded send) are
// fine, as are branches on rank-agnostic data.
//
// Known false negatives, by design: rank-dependence is tracked through
// local assignments only (a rank stored in a struct field and read back
// is not seen), and only panic-free paths count.
var Divergentcollective = &Analyzer{
	Name: "divergentcollective",
	Doc:  "flag Barrier/WaitEmpty/Alltoallv and other collective call sites reachable only under rank-dependent conditions, which desynchronize the ranks",
	Run:  runDivergentcollective,
}

func runDivergentcollective(pass *Pass) []Finding {
	// The framework packages implement the collectives (and the
	// coordinator/member split inside them is the protocol itself); only
	// code built on top of them is checked.
	if trustedFrameworkPkgs[pass.Pkg.Path] {
		return nil
	}
	var findings []Finding
	sums := newSummarizer(pass)
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkDivergence(pass, sums, fd.Body, &findings)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					checkDivergence(pass, sums, lit.Body, &findings)
				}
				return true
			})
		}
	}
	return findings
}

// checkDivergence analyzes one function body.
func checkDivergence(pass *Pass, sums *summarizer, body *ast.BlockStmt, findings *[]Finding) {
	info := pass.Pkg.Info
	tainted := rankTaintedVars(pass.Pkg, body)

	g := buildCFG(body, info)
	pdom := postDominators(g)

	// exprIsRankDependent reports whether e reads a tainted variable or
	// calls a rank source directly.
	exprIsRankDependent := func(e ast.Expr) bool {
		return rankDependentExpr(pass.Pkg, tainted, e)
	}

	// Collect the branch blocks with rank-dependent conditions and the
	// collective call sites with their containing blocks.
	type site struct {
		call *ast.CallExpr
		fn   *types.Func
		desc string
	}
	var branches []*cfgBlock
	sites := make(map[*cfgBlock][]site)
	for _, b := range g.blocks {
		if b.cond != nil && len(b.succs) == 2 && exprIsRankDependent(b.cond) {
			branches = append(branches, b)
		}
		for _, n := range b.nodes {
			blk := b
			ast.Inspect(n, func(x ast.Node) bool {
				switch x := x.(type) {
				case *ast.FuncLit:
					return false // analyzed as its own body
				case *ast.CallExpr:
					fn := calleeOf(info, x)
					if fn == nil || fn.Pkg() == nil {
						return true
					}
					key := fn.Pkg().Path() + "." + fn.Name()
					if desc := collectiveFuncs[key]; desc != "" {
						sites[blk] = append(sites[blk], site{x, fn, desc})
					} else if !trustedFrameworkPkgs[fn.Pkg().Path()] && sums.performsCollective(fn) {
						sites[blk] = append(sites[blk], site{x, fn, "helper performing a collective"})
					}
				}
				return true
			})
		}
	}
	if len(branches) == 0 || len(sites) == 0 {
		return
	}

	dedup := make(map[*ast.CallExpr]bool)
	for _, br := range branches {
		for blk, ss := range sites {
			// Flag sites control-dependent on the rank branch (Ferrante et
			// al.): the site post-dominates one successor of the branch but
			// not the branch itself — so this branch genuinely decides
			// whether the collective runs. Plain reachability is too strong
			// in loops: a collective earlier in the enclosing loop body is
			// reachable from the branch via the back edge without being
			// conditioned on it.
			if pd, ok := pdom[br]; ok && pd[blk] {
				continue // on every normal path: all ranks still agree
			}
			depends := false
			for _, succ := range br.succs {
				if succ == blk {
					depends = true
					break
				}
				if pd, ok := pdom[succ]; ok && pd[blk] {
					depends = true
					break
				}
			}
			if !depends {
				continue
			}
			for _, s := range ss {
				if dedup[s.call] {
					continue
				}
				dedup[s.call] = true
				pos := pass.Pkg.Fset.Position(s.call.Pos())
				condPos := pass.Pkg.Fset.Position(br.cond.Pos())
				msg := fmt.Sprintf("%s (%s) is reached only under the rank-dependent condition at %s:%d; collectives must be called unconditionally by every member rank",
					s.fn.Name(), s.desc, shortFile(condPos.Filename), condPos.Line)
				*findings = append(*findings, Finding{Pos: pos, Analyzer: "divergentcollective", Message: msg})
			}
		}
	}
}

// rankDependentExpr reports whether e reads a tainted variable or calls
// a rank source, treating non-conversion calls as sanitizers: a tainted
// value passed as an argument does not taint the call's result (the
// helper's error/result is usually rank-symmetric even when its data
// input is not — following MPI-Checker, only direct rank arithmetic
// counts). Conversions like int(p.Rank()) pass taint through.
func rankDependentExpr(pkg *Package, tainted map[*types.Var]bool, e ast.Expr) bool {
	info := pkg.Info
	dependent := false
	ast.Inspect(e, func(n ast.Node) bool {
		if dependent {
			return false
		}
		switch x := n.(type) {
		case *ast.Ident:
			if v, ok := info.Uses[x].(*types.Var); ok && tainted[v] {
				dependent = true
			}
		case *ast.CallExpr:
			if fn := calleeOf(info, x); fn != nil && fn.Pkg() != nil &&
				rankSourceFuncs[fn.Pkg().Path()+"."+fn.Name()] {
				dependent = true
				return false
			}
			if tv, ok := info.Types[x.Fun]; ok && tv.IsType() {
				return true // conversion: operand taint passes through
			}
			return false // sanitizing call boundary
		case *ast.FuncLit:
			return false
		}
		return true
	})
	return dependent
}

// rankTaintedVars computes the set of local variables (transitively)
// derived from rank-identity calls, by iterating the body's assignments
// to a fixpoint.
func rankTaintedVars(pkg *Package, body *ast.BlockStmt) map[*types.Var]bool {
	info := pkg.Info
	tainted := make(map[*types.Var]bool)

	exprTainted := func(e ast.Expr) bool {
		return rankDependentExpr(pkg, tainted, e)
	}
	markLhs := func(lhs ast.Expr) bool {
		id, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok || id.Name == "_" {
			return false
		}
		obj := info.Defs[id]
		if obj == nil {
			obj = info.Uses[id]
		}
		if v, ok := obj.(*types.Var); ok && !tainted[v] {
			tainted[v] = true
			return true
		}
		return false
	}

	for changed := true; changed; {
		changed = false
		ast.Inspect(body, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.AssignStmt:
				if len(s.Lhs) == len(s.Rhs) {
					for i := range s.Lhs {
						if exprTainted(s.Rhs[i]) && markLhs(s.Lhs[i]) {
							changed = true
						}
					}
				} else {
					any := false
					for _, r := range s.Rhs {
						if exprTainted(r) {
							any = true
						}
					}
					if any {
						for _, l := range s.Lhs {
							if markLhs(l) {
								changed = true
							}
						}
					}
				}
			case *ast.ValueSpec:
				for i, name := range s.Names {
					var rhs ast.Expr
					if i < len(s.Values) {
						rhs = s.Values[i]
					} else if len(s.Values) == 1 {
						rhs = s.Values[0]
					}
					if rhs != nil && exprTainted(rhs) && markLhs(name) {
						changed = true
					}
				}
			}
			return true
		})
	}
	return tainted
}
