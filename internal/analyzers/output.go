package analyzers

// output.go renders finding lists in machine-readable formats for
// cmd/ygmvet: a plain JSON array for scripting, and SARIF 2.1.0 for
// code-scanning UIs (GitHub PR annotations). Both are stdlib-only and
// deterministic: findings are emitted in the order given, with
// module-root-relative forward-slash paths.

import (
	"encoding/json"
	"fmt"
	"io"
	"path/filepath"
	"strings"
)

// jsonFinding is the -json wire form of one finding.
type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// WriteJSON renders findings as a JSON array (never null), with file
// paths relative to root.
func WriteJSON(w io.Writer, findings []Finding, root string) error {
	out := make([]jsonFinding, 0, len(findings))
	for _, f := range findings {
		out = append(out, jsonFinding{
			File:     relPath(root, f.Pos.Filename),
			Line:     f.Pos.Line,
			Column:   f.Pos.Column,
			Analyzer: f.Analyzer,
			Message:  f.Message,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// SARIF 2.1.0 structures — the subset GitHub code scanning consumes.

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	RuleIndex int             `json:"ruleIndex"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

const sarifSchemaURI = "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json"

// WriteSARIF renders findings as one SARIF 2.1.0 run whose rules are
// the registered analyzer suite, with artifact URIs relative to root.
func WriteSARIF(w io.Writer, findings []Finding, root string) error {
	suite := All()
	rules := make([]sarifRule, 0, len(suite)+1)
	ruleIndex := make(map[string]int, len(suite)+1)
	addRule := func(id, doc string) {
		ruleIndex[id] = len(rules)
		rules = append(rules, sarifRule{ID: id, ShortDescription: sarifMessage{Text: doc}})
	}
	for _, a := range suite {
		addRule(a.Name, a.Doc)
	}
	// The suppression-directive diagnostic reports under the tool's own
	// name rather than any single analyzer.
	addRule("ygmvet", "diagnose malformed ygmvet:ignore directives")

	results := make([]sarifResult, 0, len(findings))
	for _, f := range findings {
		idx, ok := ruleIndex[f.Analyzer]
		if !ok {
			addRule(f.Analyzer, "")
			idx = ruleIndex[f.Analyzer]
		}
		results = append(results, sarifResult{
			RuleID:    f.Analyzer,
			RuleIndex: idx,
			Level:     "warning",
			Message:   sarifMessage{Text: f.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysicalLocation{
					ArtifactLocation: sarifArtifactLocation{URI: relPath(root, f.Pos.Filename)},
					Region:           sarifRegion{StartLine: f.Pos.Line, StartColumn: f.Pos.Column},
				},
			}},
		})
	}

	log := sarifLog{
		Schema:  sarifSchemaURI,
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "ygmvet", Rules: rules}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}

// ValidateSARIF structurally checks that data is a SARIF 2.1.0 log of
// the shape code-scanning consumers require: version "2.1.0", at least
// one run with a named tool driver, and every result carrying a ruleId
// resolvable against the driver rules, a message, and a physical
// location with a relative forward-slash URI and positive startLine.
// It is the in-repo stand-in for a full JSON-schema validation (no
// external schema tooling is vendored).
func ValidateSARIF(data []byte) error {
	var log struct {
		Schema  string `json:"$schema"`
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID string `json:"id"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID  string `json:"ruleId"`
				Message struct {
					Text string `json:"text"`
				} `json:"message"`
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine int `json:"startLine"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(data, &log); err != nil {
		return fmt.Errorf("sarif: not valid JSON: %w", err)
	}
	if log.Version != "2.1.0" {
		return fmt.Errorf("sarif: version %q, want 2.1.0", log.Version)
	}
	if !strings.Contains(log.Schema, "sarif") {
		return fmt.Errorf("sarif: $schema %q does not reference a SARIF schema", log.Schema)
	}
	if len(log.Runs) == 0 {
		return fmt.Errorf("sarif: no runs")
	}
	for ri, run := range log.Runs {
		if run.Tool.Driver.Name == "" {
			return fmt.Errorf("sarif: runs[%d] has no tool.driver.name", ri)
		}
		ids := make(map[string]bool, len(run.Tool.Driver.Rules))
		for _, r := range run.Tool.Driver.Rules {
			if r.ID == "" {
				return fmt.Errorf("sarif: runs[%d] has a rule without an id", ri)
			}
			ids[r.ID] = true
		}
		for i, res := range run.Results {
			if res.RuleID == "" {
				return fmt.Errorf("sarif: results[%d] has no ruleId", i)
			}
			if !ids[res.RuleID] {
				return fmt.Errorf("sarif: results[%d] ruleId %q not declared in driver rules", i, res.RuleID)
			}
			if res.Message.Text == "" {
				return fmt.Errorf("sarif: results[%d] has no message text", i)
			}
			if len(res.Locations) == 0 {
				return fmt.Errorf("sarif: results[%d] has no locations", i)
			}
			for _, loc := range res.Locations {
				uri := loc.PhysicalLocation.ArtifactLocation.URI
				if uri == "" {
					return fmt.Errorf("sarif: results[%d] has an empty artifact uri", i)
				}
				if strings.HasPrefix(uri, "/") || strings.Contains(uri, "\\") {
					return fmt.Errorf("sarif: results[%d] uri %q must be relative with forward slashes", i, uri)
				}
				if loc.PhysicalLocation.Region.StartLine <= 0 {
					return fmt.Errorf("sarif: results[%d] has non-positive startLine", i)
				}
			}
		}
	}
	return nil
}

// relPath renders path relative to root with forward slashes, falling
// back to the input when it is not under root.
func relPath(root, path string) string {
	if root == "" {
		return filepath.ToSlash(path)
	}
	rel, err := filepath.Rel(root, path)
	if err != nil || strings.HasPrefix(rel, "..") {
		return filepath.ToSlash(path)
	}
	return filepath.ToSlash(rel)
}
