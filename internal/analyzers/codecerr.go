package analyzers

import (
	"fmt"
	"go/ast"
	"go/types"
)

// codecPkg is the serialization substrate whose decode errors must never
// be dropped.
const codecPkg = "ygm/internal/codec"

// Codecerr flags statements that call an internal/codec function
// returning an error and discard the result. A short or corrupt buffer
// surfaces only through those errors; dropping one turns wire corruption
// into silently wrong payload values.
var Codecerr = &Analyzer{
	Name: "codecerr",
	Doc:  "flag dropped error returns from internal/codec encode/decode calls",
	Run:  runCodecerr,
}

func runCodecerr(pass *Pass) []Finding {
	var findings []Finding
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			stmt, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			call, ok := ast.Unparen(stmt.X).(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeOf(pass.Pkg.Info, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != codecPkg {
				return true
			}
			sig, ok := fn.Type().(*types.Signature)
			if !ok || !signatureReturnsError(sig) {
				return true
			}
			findings = append(findings, Finding{
				Pos:      pass.Pkg.Fset.Position(call.Pos()),
				Analyzer: "codecerr",
				Message: fmt.Sprintf("result of codec %s is discarded, dropping its error; corrupt or short buffers go unnoticed",
					fn.Name()),
			})
			return true
		})
	}
	return findings
}

// signatureReturnsError reports whether any result of sig is the builtin
// error type.
func signatureReturnsError(sig *types.Signature) bool {
	res := sig.Results()
	for i := 0; i < res.Len(); i++ {
		if named, ok := res.At(i).Type().(*types.Named); ok {
			if named.Obj().Name() == "error" && named.Obj().Pkg() == nil {
				return true
			}
		}
	}
	return false
}
