// Package analyzers is ygmvet's static-analysis suite: whole-module
// checks, built only on the standard library's go/ast, go/parser,
// go/token and go/types, for the correctness rules no compiler enforces.
//
// The simulation's validity rests on protocol-level invariants: ranks
// advance virtual clocks only (wall-clock reads would couple simulated
// time to host scheduling), all randomness flows from seeded per-rank
// sources (EXPERIMENTS.md reproducibility), codec decode errors must not
// be dropped (silent corruption), and mailbox receive callbacks must
// never block on collectives (the classic self-deadlock the transport
// watchdog catches only at runtime). Each analyzer machine-checks one of
// these rules on every build; `go run ./cmd/ygmvet ./...` is wired into
// CI.
//
// Findings on a line can be suppressed with a `//ygmvet:ignore name`
// comment on the same line or the line above (names comma-separated, or
// empty to suppress every analyzer); use sparingly and say why.
package analyzers

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Finding is one rule violation.
type Finding struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String formats a finding the way go vet does.
func (f Finding) String() string {
	return fmt.Sprintf("%s: %s: %s", f.Pos, f.Analyzer, f.Message)
}

// Pass is the per-package unit of work handed to an analyzer.
type Pass struct {
	Pkg *Package
	// All holds every loaded package, for cross-package call-graph
	// walks.
	All []*Package
	// Index resolves function objects to their declarations anywhere in
	// the loaded module.
	Index *FuncIndex
}

// Analyzer is one named rule.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) []Finding
}

// All returns the full analyzer suite: the five syntactic checks plus
// the flow-sensitive lifetime/escape/divergence analyzers.
func All() []*Analyzer {
	return []*Analyzer{
		Wallclock, Seedrand, Codecerr, Blockincallback, Allocinloop,
		Buflifetime, Payloadescape, Divergentcollective, Rankconfined,
	}
}

// knownAnalyzerNames is the set of valid names for ygmvet:ignore
// directives (so typos are diagnosed rather than silently ignored).
func knownAnalyzerNames() map[string]bool {
	names := make(map[string]bool)
	for _, a := range All() {
		names[a.Name] = true
	}
	return names
}

// simulatedRankPkgs are the packages whose code runs on simulated ranks,
// where only virtual time is legal. Harness code (cmd, examples, bench
// drivers) measures host time legitimately.
var simulatedRankPkgs = map[string]bool{
	"ygm/internal/transport":  true,
	"ygm/internal/ygm":        true,
	"ygm/internal/collective": true,
	"ygm/internal/apps":       true,
	"ygm/internal/havoq":      true,
}

// DefaultScope is the production rule→package mapping used by cmd/ygmvet
// and the repo-clean test: wallclock applies only to simulated-rank
// packages, every other analyzer applies module-wide.
func DefaultScope(analyzer, pkgPath string) bool {
	if analyzer == Wallclock.Name {
		return simulatedRankPkgs[pkgPath]
	}
	return true
}

// Run applies each analyzer to each package its scope admits, filters
// suppressed findings, and returns the remainder sorted by position.
// scope may be nil to run everything everywhere.
func Run(pkgs []*Package, all []*Package, analyzers []*Analyzer, scope func(analyzer, pkgPath string) bool) []Finding {
	index := NewFuncIndex(all)
	var findings []Finding
	for _, pkg := range pkgs {
		pass := &Pass{Pkg: pkg, All: all, Index: index}
		sup, diags := suppressions(pkg)
		findings = append(findings, diags...)
		for _, a := range analyzers {
			if scope != nil && !scope(a.Name, pkg.Path) {
				continue
			}
			for _, f := range a.Run(pass) {
				if !sup.match(f) {
					findings = append(findings, f)
				}
			}
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return findings
}

// suppressed records, per file and line, which analyzers are silenced.
type suppressed struct {
	// byLine maps file:line to silenced analyzer names; the empty name
	// silences all.
	byLine map[string]map[string]bool
}

func (s suppressed) match(f Finding) bool {
	for _, key := range []string{
		fmt.Sprintf("%s:%d", f.Pos.Filename, f.Pos.Line),
	} {
		if names, ok := s.byLine[key]; ok {
			if names[""] || names[f.Analyzer] {
				return true
			}
		}
	}
	return false
}

// suppressions scans a package's comments for ygmvet:ignore directives
// and returns the suppression table plus diagnostics for directives
// naming unknown analyzers. A `//` directive applies to its own line
// and to the line below it, so both trailing (`code //ygmvet:ignore
// name`) and leading placement work; a `/* ... */` directive covers
// every line the comment spans plus the line after it, so block-style
// leading comment groups work too. The scoped form `ygmvet:ignore
// <analyzer>` (names comma- or space-separated) silences only the named
// analyzers; a bare directive silences them all.
func suppressions(pkg *Package) (suppressed, []Finding) {
	s := suppressed{byLine: make(map[string]map[string]bool)}
	var diags []Finding
	known := knownAnalyzerNames()
	for _, file := range pkg.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				text := c.Text
				if strings.HasPrefix(text, "/*") {
					text = strings.TrimSuffix(strings.TrimPrefix(text, "/*"), "*/")
				} else {
					text = strings.TrimPrefix(text, "//")
				}
				text = strings.TrimSpace(text)
				rest, ok := strings.CutPrefix(text, "ygmvet:ignore")
				if !ok {
					continue
				}
				// Drop any trailing justification after a dash.
				for _, sep := range []string{"—", "--", " - "} {
					if i := strings.Index(rest, sep); i >= 0 {
						rest = rest[:i]
					}
				}
				names := make(map[string]bool)
				fields := strings.FieldsFunc(rest, func(r rune) bool { return r == ',' || r == ' ' || r == '\t' || r == '\n' })
				if len(fields) == 0 {
					names[""] = true
				}
				for _, f := range fields {
					names[f] = true
					if !known[f] {
						pos := pkg.Fset.Position(c.Pos())
						diags = append(diags, Finding{
							Pos:      pos,
							Analyzer: "ygmvet",
							Message:  fmt.Sprintf("ygmvet:ignore names unknown analyzer %q; the finding it meant to suppress will still be reported", f),
						})
					}
				}
				start := pkg.Fset.Position(c.Pos())
				end := pkg.Fset.Position(c.End())
				for line := start.Line; line <= end.Line+1; line++ {
					key := fmt.Sprintf("%s:%d", start.Filename, line)
					if s.byLine[key] == nil {
						s.byLine[key] = make(map[string]bool)
					}
					for n := range names {
						s.byLine[key][n] = true
					}
				}
			}
		}
	}
	return s, diags
}

// FuncIndex maps function and method objects to their declarations
// across every loaded package, so analyzers can walk call graphs.
type FuncIndex struct {
	decls map[types.Object]*IndexedFunc
}

// IndexedFunc is one declared function with its owning package.
type IndexedFunc struct {
	Pkg  *Package
	Decl *ast.FuncDecl
}

// NewFuncIndex builds the declaration index over pkgs.
func NewFuncIndex(pkgs []*Package) *FuncIndex {
	idx := &FuncIndex{decls: make(map[types.Object]*IndexedFunc)}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
					if obj := pkg.Info.Defs[fd.Name]; obj != nil {
						idx.decls[obj] = &IndexedFunc{Pkg: pkg, Decl: fd}
					}
				}
			}
		}
	}
	return idx
}

// Lookup returns the declaration of fn, or nil if it is not declared in
// the loaded module (stdlib, interface method, etc.).
func (idx *FuncIndex) Lookup(fn *types.Func) *IndexedFunc {
	return idx.decls[fn]
}

// calleeOf resolves the static callee of a call expression using the
// package's type info, or nil for dynamic calls (function values,
// immediately-invoked literals, builtins).
func calleeOf(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}
