package analyzers

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// Allocinloop flags allocation sites inside the functions that carry a
// `//ygm:hotpath` annotation — the steady-state queue→coalesce→pack→
// send→deliver path whose zero-allocation contract the alloc_test.go
// pins enforce at runtime. A `make` call or a map literal on that path
// defeats the buffer pooling the contract rests on; allocations belong
// in constructors, or behind the transport pool (AcquireBuf), or under
// an explicit `//ygmvet:ignore allocinloop` with a reason.
var Allocinloop = &Analyzer{
	Name: "allocinloop",
	Doc:  "flag make calls and map literals inside //ygm:hotpath functions, which must stay allocation-free in steady state",
	Run:  runAllocinloop,
}

// isHotpath reports whether a function declaration carries the
// //ygm:hotpath annotation in its doc comment.
func isHotpath(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if strings.TrimSpace(strings.TrimPrefix(c.Text, "//")) == "ygm:hotpath" {
			return true
		}
	}
	return false
}

func runAllocinloop(pass *Pass) []Finding {
	var findings []Finding
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !isHotpath(fd) {
				continue
			}
			name := fd.Name.Name
			// Function literals nested in a hot function run on the same
			// path, so the whole body is walked without exception.
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch node := n.(type) {
				case *ast.CallExpr:
					if id, ok := ast.Unparen(node.Fun).(*ast.Ident); ok {
						if b, ok := pass.Pkg.Info.Uses[id].(*types.Builtin); ok && b.Name() == "make" {
							findings = append(findings, Finding{
								Pos:      pass.Pkg.Fset.Position(node.Pos()),
								Analyzer: "allocinloop",
								Message: fmt.Sprintf(
									"make in //ygm:hotpath function %s; hoist to setup or use the transport pool", name),
							})
						}
					}
				case *ast.CompositeLit:
					if tv, ok := pass.Pkg.Info.Types[ast.Expr(node)]; ok {
						if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
							findings = append(findings, Finding{
								Pos:      pass.Pkg.Fset.Position(node.Pos()),
								Analyzer: "allocinloop",
								Message: fmt.Sprintf(
									"map literal in //ygm:hotpath function %s allocates; hoist to setup", name),
							})
						}
					}
				}
				return true
			})
		}
	}
	return findings
}
