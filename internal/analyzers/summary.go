package analyzers

// summary.go computes lightweight call-graph summaries on demand, so the
// flow-sensitive analyzers can follow a tracked value through module
// helpers (sendPooledBuf, processPacket, parseRecord, ...) without
// inlining whole call chains. Summaries are per (function, parameter):
// how does the callee treat a pooled buffer / payload alias handed to it
// in that position? Results are memoized per analyzer run; recursion
// resolves to the conservative answer for the querying analysis.

import (
	"go/ast"
	"go/types"
)

// consumeEffect classifies what a callee does with a pooled buffer or
// packet passed in one parameter position.
type consumeEffect int

const (
	// effReads: the callee only reads the value; the caller still owns it.
	effReads consumeEffect = iota
	// effConsumes: the callee releases it (SendPooled/Recycle/Detach) on
	// every normal path; the caller must not touch it again.
	effConsumes
	// effEscapes: the callee stores or forwards it somewhere the analysis
	// cannot follow; the caller stops tracking (never reported).
	effEscapes
)

// escapeEffect classifies what a callee does with a payload alias passed
// in one parameter position.
type escapeEffect struct {
	// stores: the callee writes the alias into memory that outlives the
	// call (field, global, channel, escaping closure).
	stores bool
	// returnsAlias: some result of the callee aliases the parameter.
	returnsAlias bool
}

type sumKey struct {
	fn  *types.Func
	idx int // combined parameter index: receiver (if any) first
}

// summarizer memoizes per-(function,param) summaries for one analyzer
// run.
type summarizer struct {
	pass       *Pass
	consume    map[sumKey]consumeEffect
	escape     map[sumKey]escapeEffect
	collective map[*types.Func]bool
	inConsume  map[sumKey]bool
	inEscape   map[sumKey]bool
	inColl     map[*types.Func]bool
}

func newSummarizer(pass *Pass) *summarizer {
	return &summarizer{
		pass:       pass,
		consume:    make(map[sumKey]consumeEffect),
		escape:     make(map[sumKey]escapeEffect),
		collective: make(map[*types.Func]bool),
		inConsume:  make(map[sumKey]bool),
		inEscape:   make(map[sumKey]bool),
		inColl:     make(map[*types.Func]bool),
	}
}

// combinedParams flattens a declaration's receiver and parameter names
// into the combined index space used by sumKey. Unnamed and blank
// positions are nil.
func combinedParams(pkg *Package, fd *ast.FuncDecl) []*types.Var {
	var out []*types.Var
	addField := func(f *ast.Field) {
		if len(f.Names) == 0 {
			out = append(out, nil)
			return
		}
		for _, name := range f.Names {
			if name.Name == "_" {
				out = append(out, nil)
				continue
			}
			if v, ok := pkg.Info.Defs[name].(*types.Var); ok {
				out = append(out, v)
			} else {
				out = append(out, nil)
			}
		}
	}
	if fd.Recv != nil {
		for _, f := range fd.Recv.List {
			addField(f)
		}
	}
	if fd.Type.Params != nil {
		for _, f := range fd.Type.Params.List {
			addField(f)
		}
	}
	return out
}

// callArgIndex maps one argument position of call (resolved to fn) to
// the combined parameter index, accounting for methods (receiver is
// index 0), method expressions (the receiver travels as args[0]), and
// variadic parameters. It returns -1 when the mapping is unclear.
func callArgIndex(info *types.Info, call *ast.CallExpr, fn *types.Func, argPos int) int {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return -1
	}
	shift := 0
	if sig.Recv() != nil {
		if isMethodExpr(info, call) {
			// Type.Method(recv, args...): args[0] is the receiver.
			if argPos == 0 {
				return 0
			}
			argPos--
		}
		shift = 1
	}
	params := sig.Params()
	idx := argPos
	if sig.Variadic() && idx >= params.Len()-1 {
		idx = params.Len() - 1
	}
	if idx >= params.Len() {
		return -1
	}
	return shift + idx
}

// receiverIndex returns the combined index of the receiver expression of
// a normal method call, or -1 when fn has no receiver or the call is a
// method expression.
func receiverIndex(info *types.Info, call *ast.CallExpr, fn *types.Func) int {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil || isMethodExpr(info, call) {
		return -1
	}
	return 0
}

// isMethodExpr reports whether call invokes a method expression
// (T.Method(recv, ...)) rather than a bound method value.
func isMethodExpr(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return true // pkg-level ident resolving to a method: treat as expr
	}
	tv, ok := info.Types[sel.X]
	return ok && tv.IsType()
}

// consumeEffectOf returns the consume summary for parameter idx of fn,
// running the buflifetime transfer over the callee in summary mode on
// first use. Unknown or recursive callees answer effEscapes so the
// caller silently stops tracking.
func (s *summarizer) consumeEffectOf(fn *types.Func, idx int) consumeEffect {
	key := sumKey{fn, idx}
	if eff, ok := s.consume[key]; ok {
		return eff
	}
	if s.inConsume[key] {
		return effEscapes
	}
	decl := s.pass.Index.Lookup(fn)
	if decl == nil || idx < 0 {
		return effEscapes
	}
	params := combinedParams(decl.Pkg, decl.Decl)
	if idx >= len(params) || params[idx] == nil {
		s.consume[key] = effReads
		return effReads
	}
	s.inConsume[key] = true
	eff := summarizeConsume(s, decl, params[idx])
	delete(s.inConsume, key)
	s.consume[key] = eff
	return eff
}

// escapeEffectOf returns the escape summary for parameter idx of fn,
// computed with the payloadescape transfer in summary mode. Unknown
// callees outside the module answer neutral (documented false-negative:
// the Handler/Tap/Hooks contract boundary); recursion answers neutral.
func (s *summarizer) escapeEffectOf(fn *types.Func, idx int) escapeEffect {
	key := sumKey{fn, idx}
	if eff, ok := s.escape[key]; ok {
		return eff
	}
	if s.inEscape[key] {
		return escapeEffect{}
	}
	decl := s.pass.Index.Lookup(fn)
	if decl == nil || idx < 0 {
		return escapeEffect{}
	}
	params := combinedParams(decl.Pkg, decl.Decl)
	if idx >= len(params) || params[idx] == nil {
		s.escape[key] = escapeEffect{}
		return escapeEffect{}
	}
	s.inEscape[key] = true
	eff := summarizeEscape(s, decl, params[idx])
	delete(s.inEscape, key)
	s.escape[key] = eff
	return eff
}

// performsCollective reports whether fn transitively calls one of the
// collective primitives, descending through module code but not into
// the trusted framework packages (whose collective entry points are
// themselves in the table).
func (s *summarizer) performsCollective(fn *types.Func) bool {
	if v, ok := s.collective[fn]; ok {
		return v
	}
	if s.inColl[fn] {
		return false
	}
	decl := s.pass.Index.Lookup(fn)
	if decl == nil {
		return false
	}
	s.inColl[fn] = true
	found := false
	ast.Inspect(decl.Decl.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := calleeOf(decl.Pkg.Info, call)
		if callee == nil || callee.Pkg() == nil {
			return true
		}
		key := callee.Pkg().Path() + "." + callee.Name()
		if collectiveFuncs[key] != "" {
			found = true
			return false
		}
		if !trustedFrameworkPkgs[callee.Pkg().Path()] && s.performsCollective(callee) {
			found = true
			return false
		}
		return true
	})
	delete(s.inColl, fn)
	s.collective[fn] = found
	return found
}
