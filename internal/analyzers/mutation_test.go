package analyzers

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// mutationSrc seeds exactly one violation per flow-sensitive analyzer
// class in a scratch package; the `// MUT:<analyzer>` markers name the
// finding each line must produce.
const mutationSrc = `package scratch

import (
	"time"

	"ygm/internal/collective"
	"ygm/internal/transport"
	"ygm/internal/ygm"
)

var kept []byte

func handler(s ygm.Sender, payload []byte) {
	kept = payload // MUT:payloadescape
	go logIt(s)    // MUT:rankconfined
}

func logIt(s ygm.Sender) {}

func driver(p *transport.Proc, c *collective.Comm, o ygm.Options) {
	_ = ygm.New(p, handler, ygm.WithCapacity(o.Capacity))
	buf := p.AcquireBuf(8) // MUT:buflifetime
	_ = time.Now()         // MUT:wallclock
	if p.Rank() == 0 {
		c.Barrier() // MUT:divergentcollective
	}
	_ = buf
}
`

// TestMutationSmoke writes the scratch package to a temp dir, runs the
// whole suite over it, and checks that every seeded violation — and
// nothing else — is reported on its marked line. This is the end-to-end
// guard that a refactor of the flow engine cannot silently blind one of
// the analyzers: each class has exactly one witness.
func TestMutationSmoke(t *testing.T) {
	ldr, pkgs := modulePackages(t)
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "scratch.go"), []byte(mutationSrc), 0o644); err != nil {
		t.Fatalf("writing scratch package: %v", err)
	}
	fix, err := ldr.LoadDir(dir, "fixture/mutation")
	if err != nil {
		t.Fatalf("loading scratch package: %v", err)
	}
	all := append(append([]*Package{}, pkgs...), fix)
	findings := Run([]*Package{fix}, all, All(), nil)

	want := make(map[string]bool) // "analyzer:line"
	for i, line := range strings.Split(mutationSrc, "\n") {
		if _, name, ok := strings.Cut(line, "// MUT:"); ok {
			want[fmt.Sprintf("%s:%d", strings.TrimSpace(name), i+1)] = false
		}
	}
	if len(want) != 5 {
		t.Fatalf("expected 5 seeded mutations, found %d markers", len(want))
	}
	for _, f := range findings {
		key := fmt.Sprintf("%s:%d", f.Analyzer, f.Pos.Line)
		if _, ok := want[key]; !ok {
			t.Errorf("unseeded finding: %s", f)
			continue
		}
		want[key] = true
	}
	for key, hit := range want {
		if !hit {
			t.Errorf("seeded mutation %s was not detected", key)
		}
	}
}
