package analyzers

import (
	"fmt"
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// This file is the flow-sensitive half of the suite's foundation: an
// intraprocedural control-flow graph over go/ast statements. Each basic
// block is a straight-line run of statements (plus the branch-condition
// expressions evaluated at its end), and the graph has one synthetic
// exit that every return and every fall-off-the-end path reaches through
// the function's defer chain. Calls to panic are modeled as
// non-returning assertions: a panicking block keeps the nodes executed
// before the panic but has no successors, so "on every path" properties
// quantify over paths that complete normally.

// cfgBlock is one basic block.
type cfgBlock struct {
	index int
	// nodes holds the block's statements and trailing branch-condition
	// expressions in source order. Condition expressions appear as bare
	// ast.Expr nodes so transfer functions see their variable uses.
	nodes []ast.Node
	succs []*cfgBlock
	// cond is the branch condition when the block ends in a two-way
	// branch: succs[0] is the true edge, succs[1] the false edge. For
	// switches it holds the tag expression (n-way; no edge refinement).
	cond ast.Expr
	// panics marks a block that ends in a call to panic.
	panics bool
}

// cfg is one function body's control-flow graph.
type cfg struct {
	blocks []*cfgBlock
	entry  *cfgBlock
	exit   *cfgBlock
}

// cfgBuilder carries the construction state.
type cfgBuilder struct {
	g    *cfg
	cur  *cfgBlock
	info *types.Info // may be nil (name-based panic detection only)

	// breakTargets / continueTargets are stacks of enclosing loop and
	// switch targets; entries carry the pending label, if any.
	breakTargets    []branchTarget
	continueTargets []branchTarget
	// fallTargets is the stack of fallthrough targets (next case clause).
	fallTargets []*cfgBlock
	labels      map[string]*cfgBlock
	gotos       []pendingGoto
	// pendingLabel is the label of the labeled statement being built, to
	// be claimed by the loop or switch it precedes.
	pendingLabel string
	defers       []*ast.CallExpr
	// returns collects blocks that exit the function normally and must be
	// wired through the defer chain to the synthetic exit.
	returns []*cfgBlock
}

type branchTarget struct {
	label string
	block *cfgBlock
}

type pendingGoto struct {
	from  *cfgBlock
	label string
}

// buildCFG constructs the control-flow graph of one function body. info
// may be nil; it is used only to recognize the panic builtin precisely.
func buildCFG(body *ast.BlockStmt, info *types.Info) *cfg {
	b := &cfgBuilder{
		g:      &cfg{},
		info:   info,
		labels: make(map[string]*cfgBlock),
	}
	b.g.entry = b.newBlock()
	b.cur = b.g.entry
	b.stmtList(body.List)
	// Falling off the end is a normal exit.
	b.returns = append(b.returns, b.cur)

	b.g.exit = b.newBlock()
	// The defer chain runs in LIFO order on every normal exit.
	head := b.g.exit
	for _, call := range b.defers {
		d := b.newBlock()
		d.nodes = append(d.nodes, ast.Node(call))
		b.link(d, head)
		head = d
	}
	// The chain blocks were created exit-first; reverse the wiring so the
	// last-deferred call runs first.
	if len(b.defers) > 0 {
		head = b.rebuildDeferChain()
	}
	for _, r := range b.returns {
		b.link(r, head)
	}
	for _, g := range b.gotos {
		if t, ok := b.labels[g.label]; ok {
			b.link(g.from, t)
		}
	}
	return b.g
}

// rebuildDeferChain rewires the defer blocks (the most recently created
// len(defers) blocks before exit handling) into LIFO execution order and
// returns the chain head.
func (b *cfgBuilder) rebuildDeferChain() *cfgBlock {
	n := len(b.defers)
	chain := b.g.blocks[len(b.g.blocks)-n:]
	// chain[i] currently holds defers[n-1-i]; relabel so chain[0] holds
	// the last-deferred call and the links run chain[0] -> ... -> exit.
	for i, blk := range chain {
		blk.nodes = []ast.Node{b.defers[n-1-i]}
		blk.succs = nil
	}
	for i := 0; i < n-1; i++ {
		b.link(chain[i], chain[i+1])
	}
	b.link(chain[n-1], b.g.exit)
	return chain[0]
}

func (b *cfgBuilder) newBlock() *cfgBlock {
	blk := &cfgBlock{index: len(b.g.blocks)}
	b.g.blocks = append(b.g.blocks, blk)
	return blk
}

func (b *cfgBuilder) link(from, to *cfgBlock) {
	if from.panics {
		return
	}
	from.succs = append(from.succs, to)
}

func (b *cfgBuilder) add(n ast.Node) {
	b.cur.nodes = append(b.cur.nodes, n)
}

// takeLabel consumes the pending label for a loop or switch statement.
func (b *cfgBuilder) takeLabel() string {
	l := b.pendingLabel
	b.pendingLabel = ""
	return l
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

// isPanicCall reports whether e is a call to the panic builtin.
func (b *cfgBuilder) isPanicCall(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "panic" {
		return false
	}
	if b.info != nil {
		bi, ok := b.info.Uses[id].(*types.Builtin)
		return ok && bi.Name() == "panic"
	}
	return true
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.ExprStmt:
		b.add(s)
		if b.isPanicCall(s.X) {
			b.cur.panics = true
			b.cur = b.newBlock() // unreachable continuation
		}

	case *ast.AssignStmt, *ast.DeclStmt, *ast.IncDecStmt, *ast.SendStmt, *ast.GoStmt, *ast.EmptyStmt:
		b.add(s)

	case *ast.DeferStmt:
		b.add(s)
		b.defers = append(b.defers, s.Call)

	case *ast.ReturnStmt:
		b.add(s)
		b.returns = append(b.returns, b.cur)
		b.cur = b.newBlock()

	case *ast.IfStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		b.add(s.Cond)
		b.cur.cond = s.Cond
		branch := b.cur
		then := b.newBlock()
		b.link(branch, then)
		b.cur = then
		b.stmt(s.Body)
		thenEnd := b.cur
		join := b.newBlock()
		b.link(thenEnd, join)
		if s.Else != nil {
			els := b.newBlock()
			b.link(branch, els)
			b.cur = els
			b.stmt(s.Else)
			b.link(b.cur, join)
		} else {
			b.link(branch, join)
		}
		b.cur = join

	case *ast.ForStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.add(s.Init)
		}
		header := b.newBlock()
		b.link(b.cur, header)
		after := b.newBlock()
		var post *cfgBlock
		if s.Post != nil {
			post = b.newBlock()
			post.nodes = append(post.nodes, ast.Node(s.Post))
			b.link(post, header)
		}
		contTarget := header
		if post != nil {
			contTarget = post
		}
		body := b.newBlock()
		if s.Cond != nil {
			header.nodes = append(header.nodes, ast.Node(s.Cond))
			header.cond = s.Cond
			b.link(header, body)
			b.link(header, after)
		} else {
			b.link(header, body)
		}
		b.breakTargets = append(b.breakTargets, branchTarget{label, after})
		b.continueTargets = append(b.continueTargets, branchTarget{label, contTarget})
		b.cur = body
		b.stmt(s.Body)
		b.link(b.cur, contTarget)
		b.breakTargets = b.breakTargets[:len(b.breakTargets)-1]
		b.continueTargets = b.continueTargets[:len(b.continueTargets)-1]
		b.cur = after

	case *ast.RangeStmt:
		label := b.takeLabel()
		header := b.newBlock()
		b.link(b.cur, header)
		// The RangeStmt node itself carries X and the key/value
		// assignment for transfer functions.
		header.nodes = append(header.nodes, ast.Node(s))
		after := b.newBlock()
		body := b.newBlock()
		b.link(header, body)
		b.link(header, after)
		b.breakTargets = append(b.breakTargets, branchTarget{label, after})
		b.continueTargets = append(b.continueTargets, branchTarget{label, header})
		b.cur = body
		b.stmt(s.Body)
		b.link(b.cur, header)
		b.breakTargets = b.breakTargets[:len(b.breakTargets)-1]
		b.continueTargets = b.continueTargets[:len(b.continueTargets)-1]
		b.cur = after

	case *ast.SwitchStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.add(s.Init)
		}
		if s.Tag != nil {
			b.add(s.Tag)
			b.cur.cond = s.Tag
		}
		b.buildSwitch(label, s.Body.List, func(c *ast.CaseClause) []ast.Node {
			nodes := make([]ast.Node, 0, len(c.List))
			for _, e := range c.List {
				nodes = append(nodes, e)
			}
			return nodes
		})

	case *ast.TypeSwitchStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.add(s.Init)
		}
		b.add(s.Assign)
		if a, ok := s.Assign.(*ast.AssignStmt); ok && len(a.Rhs) == 1 {
			b.cur.cond = a.Rhs[0]
		} else if e, ok := s.Assign.(*ast.ExprStmt); ok {
			b.cur.cond = e.X
		}
		b.buildSwitch(label, s.Body.List, func(*ast.CaseClause) []ast.Node { return nil })

	case *ast.SelectStmt:
		label := b.takeLabel()
		sel := b.cur
		after := b.newBlock()
		b.breakTargets = append(b.breakTargets, branchTarget{label, after})
		hasDefault := false
		for _, cl := range s.Body.List {
			comm := cl.(*ast.CommClause)
			blk := b.newBlock()
			b.link(sel, blk)
			if comm.Comm == nil {
				hasDefault = true
			} else {
				blk.nodes = append(blk.nodes, ast.Node(comm.Comm))
			}
			b.cur = blk
			b.stmtList(comm.Body)
			b.link(b.cur, after)
		}
		_ = hasDefault // a select with no default still exits via a clause
		b.breakTargets = b.breakTargets[:len(b.breakTargets)-1]
		b.cur = after

	case *ast.BranchStmt:
		label := ""
		if s.Label != nil {
			label = s.Label.Name
		}
		switch s.Tok.String() {
		case "break":
			if t := findTarget(b.breakTargets, label); t != nil {
				b.link(b.cur, t)
			}
		case "continue":
			if t := findTarget(b.continueTargets, label); t != nil {
				b.link(b.cur, t)
			}
		case "goto":
			b.gotos = append(b.gotos, pendingGoto{b.cur, label})
		case "fallthrough":
			if n := len(b.fallTargets); n > 0 && b.fallTargets[n-1] != nil {
				b.link(b.cur, b.fallTargets[n-1])
			}
		}
		b.cur = b.newBlock()

	case *ast.LabeledStmt:
		name := s.Label.Name
		switch s.Stmt.(type) {
		case *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
			b.pendingLabel = name
			b.stmt(s.Stmt)
		default:
			target := b.newBlock()
			b.link(b.cur, target)
			b.labels[name] = target
			b.cur = target
			b.stmt(s.Stmt)
		}

	default:
		// Unknown statement kinds are treated as straight-line.
		b.add(s)
	}
}

// buildSwitch wires the case clauses of a switch or type switch. The
// switch header (b.cur) branches to every clause block; a missing
// default adds a fall-through edge to the join.
func (b *cfgBuilder) buildSwitch(label string, clauses []ast.Stmt, caseNodes func(*ast.CaseClause) []ast.Node) {
	header := b.cur
	after := b.newBlock()
	b.breakTargets = append(b.breakTargets, branchTarget{label, after})

	blocks := make([]*cfgBlock, len(clauses))
	hasDefault := false
	for i, cl := range clauses {
		cc := cl.(*ast.CaseClause)
		blocks[i] = b.newBlock()
		blocks[i].nodes = append(blocks[i].nodes, caseNodes(cc)...)
		b.link(header, blocks[i])
		if len(cc.List) == 0 {
			hasDefault = true
		}
	}
	if !hasDefault {
		b.link(header, after)
	}
	for i, cl := range clauses {
		cc := cl.(*ast.CaseClause)
		// fallthrough in clause i jumps to clause i+1's block.
		var fall *cfgBlock
		if i+1 < len(blocks) {
			fall = blocks[i+1]
		}
		b.fallTargets = append(b.fallTargets, fall)
		b.cur = blocks[i]
		b.stmtList(cc.Body)
		b.link(b.cur, after)
		b.fallTargets = b.fallTargets[:len(b.fallTargets)-1]
	}
	b.breakTargets = b.breakTargets[:len(b.breakTargets)-1]
	b.cur = after
}

func findTarget(stack []branchTarget, label string) *cfgBlock {
	for i := len(stack) - 1; i >= 0; i-- {
		if label == "" || stack[i].label == label {
			return stack[i].block
		}
	}
	return nil
}

// reachableFrom returns the set of blocks reachable from the successors
// of b (excluding paths that never leave b itself unless it is in a
// cycle through its successors).
func reachableFrom(b *cfgBlock) map[*cfgBlock]bool {
	seen := make(map[*cfgBlock]bool)
	var stack []*cfgBlock
	stack = append(stack, b.succs...)
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[n] {
			continue
		}
		seen[n] = true
		stack = append(stack, n.succs...)
	}
	return seen
}

// postDominators computes block-level post-dominance over the subgraph
// of blocks that can reach the exit without passing through a panicking
// block. pdom[b] is the set of blocks that appear on every normal
// (non-panicking) path from b to the exit. Panicking blocks and blocks
// that cannot reach the exit are absent from the result.
func postDominators(g *cfg) map[*cfgBlock]map[*cfgBlock]bool {
	// Restrict to blocks that reach exit through non-panic blocks.
	canReach := map[*cfgBlock]bool{g.exit: true}
	changed := true
	for changed {
		changed = false
		for _, b := range g.blocks {
			if b.panics || canReach[b] {
				continue
			}
			for _, s := range b.succs {
				if canReach[s] {
					canReach[b] = true
					changed = true
					break
				}
			}
		}
	}
	sub := make([]*cfgBlock, 0, len(g.blocks))
	for _, b := range g.blocks {
		if canReach[b] {
			sub = append(sub, b)
		}
	}
	pdom := make(map[*cfgBlock]map[*cfgBlock]bool, len(sub))
	all := make(map[*cfgBlock]bool, len(sub))
	for _, b := range sub {
		all[b] = true
	}
	for _, b := range sub {
		if b == g.exit {
			pdom[b] = map[*cfgBlock]bool{b: true}
			continue
		}
		// Start from the universal set and intersect down.
		s := make(map[*cfgBlock]bool, len(sub))
		for k := range all {
			s[k] = true
		}
		pdom[b] = s
	}
	changed = true
	for changed {
		changed = false
		for _, b := range sub {
			if b == g.exit {
				continue
			}
			var inter map[*cfgBlock]bool
			for _, s := range b.succs {
				ps, ok := pdom[s]
				if !ok {
					continue // successor leaves the subgraph (panic path)
				}
				if inter == nil {
					inter = make(map[*cfgBlock]bool, len(ps))
					for k := range ps {
						inter[k] = true
					}
				} else {
					for k := range inter {
						if !ps[k] {
							delete(inter, k)
						}
					}
				}
			}
			if inter == nil {
				inter = make(map[*cfgBlock]bool)
			}
			inter[b] = true
			if len(inter) != len(pdom[b]) {
				pdom[b] = inter
				changed = true
			}
		}
	}
	return pdom
}

// dump renders the reachable graph for tests: one line per block with
// the names of marker calls it contains and its successor list.
func (g *cfg) dump() string {
	reach := map[*cfgBlock]bool{g.entry: true}
	for b := range reachableFrom(g.entry) {
		reach[b] = true
	}
	var lines []string
	for _, b := range g.blocks {
		if !reach[b] {
			continue
		}
		var marks []string
		for _, n := range b.nodes {
			// A range header holds the whole RangeStmt for its transfer
			// function, but only the range expression runs in this block.
			if r, ok := n.(*ast.RangeStmt); ok {
				n = r.X
			}
			ast.Inspect(n, func(x ast.Node) bool {
				if call, ok := x.(*ast.CallExpr); ok {
					if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
						marks = append(marks, id.Name)
					}
				}
				return true
			})
		}
		var succs []int
		for _, s := range b.succs {
			succs = append(succs, s.index)
		}
		sort.Ints(succs)
		parts := make([]string, len(succs))
		for i, s := range succs {
			parts[i] = fmt.Sprintf("b%d", s)
		}
		tag := ""
		switch {
		case b == g.entry && b == g.exit:
			tag = " entry exit"
		case b == g.entry:
			tag = " entry"
		case b == g.exit:
			tag = " exit"
		}
		if b.panics {
			tag += " panic"
		}
		lines = append(lines, fmt.Sprintf("b%d[%s]%s -> %s",
			b.index, strings.Join(marks, " "), tag, strings.Join(parts, ",")))
	}
	return strings.Join(lines, "\n")
}
