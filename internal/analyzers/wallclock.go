package analyzers

import (
	"fmt"
	"go/ast"
	"go/types"
)

// wallclockFuncs are the package-level time functions that read or wait
// on the host clock. Types and constants (time.Duration, time.Millisecond)
// stay legal: they describe durations without observing host time.
var wallclockFuncs = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"Tick":      true,
	"After":     true,
	"AfterFunc": true,
	"NewTicker": true,
	"NewTimer":  true,
}

// Wallclock flags host-clock reads and waits in simulated-rank code.
// Ranks live in virtual time: every duration they observe must come from
// the netsim cost model through the rank's netsim.Clock, or the
// experiment's timings silently become functions of host scheduling.
var Wallclock = &Analyzer{
	Name: "wallclock",
	Doc:  "flag time.Now/time.Since/time.Sleep (and friends) in simulated-rank code, where only netsim.Clock virtual time is legal",
	Run:  runWallclock,
}

func runWallclock(pass *Pass) []Finding {
	var findings []Finding
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.Pkg.Info.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "time" {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
				return true
			}
			if !wallclockFuncs[fn.Name()] {
				return true
			}
			findings = append(findings, Finding{
				Pos:      pass.Pkg.Fset.Position(sel.Pos()),
				Analyzer: "wallclock",
				Message: fmt.Sprintf("wall-clock time.%s in simulated-rank code; ranks must use virtual time (netsim.Clock)",
					fn.Name()),
			})
			return true
		})
	}
	return findings
}
