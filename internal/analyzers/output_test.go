package analyzers

import (
	"bytes"
	"encoding/json"
	"go/token"
	"strings"
	"testing"
)

func sampleFindings() []Finding {
	return []Finding{
		{
			Pos:      token.Position{Filename: "/mod/internal/bench/fig5.go", Line: 102, Column: 4},
			Analyzer: "buflifetime",
			Message:  `result of Recv is dropped`,
		},
		{
			Pos:      token.Position{Filename: "/mod/internal/apps/spmv.go", Line: 7, Column: 2},
			Analyzer: "wallclock",
			Message:  "wall-clock time.Now in simulated-rank code",
		},
	}
}

func TestWriteJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSON(&buf, sampleFindings(), "/mod"); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var out []struct {
		File     string `json:"file"`
		Line     int    `json:"line"`
		Column   int    `json:"column"`
		Analyzer string `json:"analyzer"`
		Message  string `json:"message"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(out) != 2 {
		t.Fatalf("got %d findings, want 2", len(out))
	}
	if out[0].File != "internal/bench/fig5.go" || out[0].Line != 102 || out[0].Analyzer != "buflifetime" {
		t.Errorf("first finding mis-rendered: %+v", out[0])
	}
	if out[1].File != "internal/apps/spmv.go" || out[1].Message == "" {
		t.Errorf("second finding mis-rendered: %+v", out[1])
	}
}

// TestWriteJSONEmpty pins the "never null" contract: an empty finding
// list renders as [], so jq-style consumers can iterate unconditionally.
func TestWriteJSONEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSON(&buf, nil, ""); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	if got := strings.TrimSpace(buf.String()); got != "[]" {
		t.Errorf("empty finding list renders as %q, want []", got)
	}
}

func TestWriteSARIFValidates(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSARIF(&buf, sampleFindings(), "/mod"); err != nil {
		t.Fatalf("WriteSARIF: %v", err)
	}
	if err := ValidateSARIF(buf.Bytes()); err != nil {
		t.Fatalf("generated SARIF fails validation: %v\n%s", err, buf.String())
	}

	var log struct {
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID string `json:"id"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID    string `json:"ruleId"`
				RuleIndex int    `json:"ruleIndex"`
				Level     string `json:"level"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(buf.Bytes(), &log); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if log.Version != "2.1.0" {
		t.Errorf("version = %q, want 2.1.0", log.Version)
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "ygmvet" {
		t.Errorf("driver name = %q, want ygmvet", run.Tool.Driver.Name)
	}
	// Every registered analyzer plus the directive-diagnostic rule is
	// declared, so consumers can index rules without findings present.
	wantRules := len(All()) + 1
	if len(run.Tool.Driver.Rules) != wantRules {
		t.Errorf("declared %d rules, want %d", len(run.Tool.Driver.Rules), wantRules)
	}
	if len(run.Results) != 2 {
		t.Fatalf("got %d results, want 2", len(run.Results))
	}
	for _, res := range run.Results {
		if res.Level != "warning" {
			t.Errorf("result level = %q, want warning", res.Level)
		}
		if run.Tool.Driver.Rules[res.RuleIndex].ID != res.RuleID {
			t.Errorf("ruleIndex %d does not point at ruleId %q", res.RuleIndex, res.RuleID)
		}
	}
}

// TestWriteSARIFEmpty checks the zero-finding log still validates (CI
// uploads it unconditionally).
func TestWriteSARIFEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSARIF(&buf, nil, ""); err != nil {
		t.Fatalf("WriteSARIF: %v", err)
	}
	if err := ValidateSARIF(buf.Bytes()); err != nil {
		t.Errorf("empty SARIF log fails validation: %v", err)
	}
}

func TestValidateSARIFRejects(t *testing.T) {
	cases := []struct {
		name string
		data string
		want string
	}{
		{"not-json", `{`, "not valid JSON"},
		{"wrong-version", `{"$schema":"sarif-schema-2.1.0.json","version":"2.0.0","runs":[{"tool":{"driver":{"name":"x","rules":[]}},"results":[]}]}`, "version"},
		{"no-sarif-schema", `{"$schema":"https://example.com/other.json","version":"2.1.0","runs":[{"tool":{"driver":{"name":"x","rules":[]}},"results":[]}]}`, "$schema"},
		{"no-runs", `{"$schema":"sarif-schema-2.1.0.json","version":"2.1.0","runs":[]}`, "no runs"},
		{"no-driver-name", `{"$schema":"sarif-schema-2.1.0.json","version":"2.1.0","runs":[{"tool":{"driver":{"rules":[]}},"results":[]}]}`, "tool.driver.name"},
		{
			"undeclared-rule",
			`{"$schema":"sarif-schema-2.1.0.json","version":"2.1.0","runs":[{"tool":{"driver":{"name":"x","rules":[]}},"results":[{"ruleId":"ghost","message":{"text":"m"},"locations":[{"physicalLocation":{"artifactLocation":{"uri":"a.go"},"region":{"startLine":1}}}]}]}]}`,
			"not declared",
		},
		{
			"absolute-uri",
			`{"$schema":"sarif-schema-2.1.0.json","version":"2.1.0","runs":[{"tool":{"driver":{"name":"x","rules":[{"id":"r"}]}},"results":[{"ruleId":"r","message":{"text":"m"},"locations":[{"physicalLocation":{"artifactLocation":{"uri":"/abs/a.go"},"region":{"startLine":1}}}]}]}]}`,
			"relative",
		},
		{
			"bad-startline",
			`{"$schema":"sarif-schema-2.1.0.json","version":"2.1.0","runs":[{"tool":{"driver":{"name":"x","rules":[{"id":"r"}]}},"results":[{"ruleId":"r","message":{"text":"m"},"locations":[{"physicalLocation":{"artifactLocation":{"uri":"a.go"},"region":{"startLine":0}}}]}]}]}`,
			"startLine",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := ValidateSARIF([]byte(tc.data))
			if err == nil {
				t.Fatalf("validation accepted malformed log")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestRelPath(t *testing.T) {
	cases := []struct {
		root, path, want string
	}{
		{"/mod", "/mod/internal/a.go", "internal/a.go"},
		{"/mod", "/elsewhere/a.go", "/elsewhere/a.go"},
		{"", "/mod/a.go", "/mod/a.go"},
	}
	for _, tc := range cases {
		if got := relPath(tc.root, tc.path); got != tc.want {
			t.Errorf("relPath(%q, %q) = %q, want %q", tc.root, tc.path, got, tc.want)
		}
	}
}
