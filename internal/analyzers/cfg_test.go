package analyzers

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// buildBody parses a function body (no type-checking; marker calls like
// m1() stay unresolved) and builds its CFG.
func buildBody(t *testing.T, body string) *cfg {
	t.Helper()
	src := "package p\n\nfunc f() {\n" + body + "\n}\n"
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "cfg_test_src.go", src, 0)
	if err != nil {
		t.Fatalf("parsing body: %v\n%s", err, src)
	}
	fd := file.Decls[0].(*ast.FuncDecl)
	return buildCFG(fd.Body, nil)
}

// normalize strips trailing spaces so expected graphs can be written
// without invisible whitespace.
func normalize(s string) string {
	lines := strings.Split(s, "\n")
	for i, l := range lines {
		lines[i] = strings.TrimRight(l, " ")
	}
	return strings.Join(lines, "\n")
}

// TestCFGBuilder pins the block structure the flow engine runs on: one
// case per control construct, compared against the dump() rendering
// (marker calls per block, successor lists, entry/exit/panic tags).
func TestCFGBuilder(t *testing.T) {
	cases := []struct {
		name string
		body string
		want string
	}{
		{
			name: "if-else",
			body: `
	m1()
	if c {
		m2()
	} else {
		m3()
	}
	m4()`,
			want: `
b0[m1] entry -> b1,b3
b1[m2] -> b2
b2[m4] -> b4
b3[m3] -> b2
b4[] exit ->`,
		},
		{
			name: "if-no-else",
			body: `
	m1()
	if c {
		m2()
	}
	m3()`,
			want: `
b0[m1] entry -> b1,b2
b1[m2] -> b2
b2[m3] -> b3
b3[] exit ->`,
		},
		{
			name: "for-cond-post",
			body: `
	for i := 0; c; i++ {
		m1()
	}
	m2()`,
			want: `
b0[] entry -> b1
b1[] -> b2,b4
b2[m2] -> b5
b3[] -> b1
b4[m1] -> b3
b5[] exit ->`,
		},
		{
			name: "range",
			body: `
	for _, v := range xs {
		m1()
	}
	m2()`,
			want: `
b0[] entry -> b1
b1[] -> b2,b3
b2[m2] -> b4
b3[m1] -> b1
b4[] exit ->`,
		},
		{
			name: "switch-fallthrough",
			body: `
	switch x {
	case 1:
		m1()
		fallthrough
	case 2:
		m2()
	default:
		m3()
	}
	m4()`,
			want: `
b0[] entry -> b2,b3,b4
b1[m4] -> b6
b2[m1] -> b3
b3[m2] -> b1
b4[m3] -> b1
b6[] exit ->`,
		},
		{
			name: "switch-no-default",
			body: `
	switch {
	case c1:
		m1()
	}
	m2()`,
			want: `
b0[] entry -> b1,b2
b1[m2] -> b3
b2[m1] -> b1
b3[] exit ->`,
		},
		{
			name: "defer-lifo-exit-chain",
			body: `
	m1()
	defer d1()
	defer d2()
	m2()`,
			want: `
b0[m1 d1 d2 m2] entry -> b2
b1[] exit ->
b2[d2] -> b3
b3[d1] -> b1`,
		},
		{
			name: "labeled-break",
			body: `
outer:
	for {
		for {
			m1()
			break outer
		}
	}
	m2()`,
			want: `
b0[] entry -> b1
b1[] -> b3
b2[m2] -> b8
b3[] -> b4
b4[] -> b6
b6[m1] -> b2
b8[] exit ->`,
		},
		{
			name: "goto",
			body: `
	m1()
	goto done
	m2()
done:
	m3()`,
			want: `
b0[m1] entry -> b2
b2[m3] -> b3
b3[] exit ->`,
		},
		{
			name: "panic-block-has-no-successors",
			body: `
	m1()
	if c {
		panic("boom")
	}
	m2()`,
			want: `
b0[m1] entry -> b1,b3
b1[panic] panic ->
b3[m2] -> b4
b4[] exit ->`,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g := buildBody(t, tc.body)
			got := normalize(g.dump())
			want := strings.TrimPrefix(normalize(tc.want), "\n")
			if got != want {
				t.Errorf("cfg mismatch\n--- got ---\n%s\n--- want ---\n%s", got, want)
			}
		})
	}
}

// TestPostDominators checks the pdom relation the divergence analyzer
// relies on: the join after a branch post-dominates it, the branch arms
// do not, and panic-only paths are excluded from the relation.
func TestPostDominators(t *testing.T) {
	g := buildBody(t, `
	m1()
	if c {
		m2()
	} else {
		m3()
	}
	m4()`)
	pdom := postDominators(g)
	byMark := func(mark string) *cfgBlock {
		for _, b := range g.blocks {
			for _, n := range b.nodes {
				found := false
				ast.Inspect(n, func(x ast.Node) bool {
					if call, ok := x.(*ast.CallExpr); ok {
						if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == mark {
							found = true
						}
					}
					return true
				})
				if found {
					return b
				}
			}
		}
		t.Fatalf("no block contains %s()", mark)
		return nil
	}
	branch, then, els, join := byMark("m1"), byMark("m2"), byMark("m3"), byMark("m4")
	if !pdom[branch][join] {
		t.Errorf("join block should post-dominate the branch")
	}
	if pdom[branch][then] || pdom[branch][els] {
		t.Errorf("branch arms must not post-dominate the branch")
	}
	if !pdom[then][join] || !pdom[els][join] {
		t.Errorf("join block should post-dominate both arms")
	}
	if !pdom[branch][branch] {
		t.Errorf("post-dominance is reflexive")
	}

	// A panicking arm contributes no normal path: the other arm's body
	// still post-dominates the branch-to-exit paths that complete.
	g2 := buildBody(t, `
	m1()
	if c {
		panic("x")
	}
	m2()`)
	pdom2 := postDominators(g2)
	var panicBlk *cfgBlock
	for _, b := range g2.blocks {
		if b.panics {
			panicBlk = b
		}
	}
	if panicBlk == nil {
		t.Fatalf("no panic block built")
	}
	if _, ok := pdom2[panicBlk]; ok {
		t.Errorf("panicking block must be excluded from the post-dominance relation")
	}
}
