package analyzers

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Payloadescape checks the payload-retention contract of the delivery
// path: a handler callback (or collective.BlobSink implementation)
// receives a slice aliasing a pooled transport buffer, and that buffer
// is recycled as soon as the handler returns. Storing the payload — or
// anything aliasing it: a reslice, a codec.Reader over it, a decoded
// record's payload field — into a struct field, package variable,
// channel, or goroutine-captured closure is a use-after-recycle waiting
// to happen. The analysis tracks aliases flow-sensitively through the
// handler body and follows them into module helpers via escape
// summaries.
//
// Known false negatives, by design: calls through interfaces or
// function values (the Handler/Tap/Hooks contract boundary) are treated
// as non-retaining, and a closure capturing an alias is only flagged
// when it observably outlives the handler (go statement, or stored into
// escaping memory) — passing it to a call is assumed synchronous.
var Payloadescape = &Analyzer{
	Name: "payloadescape",
	Doc:  "flag handler callbacks and BlobSinks that store delivered payload aliases into fields, globals, channels, or goroutine-captured closures",
	Run:  runPayloadescape,
}

const collectivePkg = "ygm/internal/collective"

func runPayloadescape(pass *Pass) []Finding {
	var findings []Finding
	sums := newSummarizer(pass)
	sink := blobSinkInterface(pass)
	seen := make(map[ast.Node]bool)

	analyzeLit := func(lit *ast.FuncLit, root string) {
		if seen[lit] {
			return
		}
		seen[lit] = true
		analyzeEscBody(pass, pass.Pkg, sums, lit.Body, litByteParams(pass.Pkg, lit), root, &findings)
	}
	analyzeFn := func(fn *types.Func, root string) {
		decl := pass.Index.Lookup(fn)
		if decl == nil || decl.Pkg != pass.Pkg || seen[decl.Decl] {
			return
		}
		seen[decl.Decl] = true
		analyzeEscBody(pass, decl.Pkg, sums, decl.Decl.Body, declByteParams(decl.Pkg, decl.Decl), root, &findings)
	}
	walkRoot := func(expr ast.Expr) {
		switch e := ast.Unparen(expr).(type) {
		case *ast.FuncLit:
			pos := pass.Pkg.Fset.Position(e.Pos())
			analyzeLit(e, fmt.Sprintf("handler literal at %s:%d", shortFile(pos.Filename), pos.Line))
		case *ast.Ident, *ast.SelectorExpr:
			if fn := refTarget(pass.Pkg.Info, e); fn != nil {
				analyzeFn(fn, fmt.Sprintf("handler %s", fn.Name()))
			}
		}
	}

	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch node := n.(type) {
			case *ast.CallExpr:
				handlerRootsFromCall(pass, node, walkRoot)
			case *ast.ValueSpec:
				if node.Type != nil && isHandlerType(pass.Pkg.Info.Types[node.Type].Type) {
					for _, v := range node.Values {
						walkRoot(v)
					}
				}
			case *ast.AssignStmt:
				for i, rhs := range node.Rhs {
					if i < len(node.Lhs) && isHandlerType(pass.Pkg.Info.Types[node.Lhs[i]].Type) {
						walkRoot(rhs)
					}
				}
			case *ast.FuncDecl:
				// BlobSink implementations: VisitBlob methods on types that
				// satisfy collective.BlobSink.
				if sink != nil && node.Recv != nil && node.Name.Name == "VisitBlob" {
					if fn, ok := pass.Pkg.Info.Defs[node.Name].(*types.Func); ok {
						recv := fn.Type().(*types.Signature).Recv()
						if recv != nil && types.Implements(recv.Type(), sink) {
							analyzeFn(fn, fmt.Sprintf("BlobSink %s.VisitBlob", recvTypeName(recv.Type())))
						}
					}
				}
			}
			return true
		})
	}
	return findings
}

// handlerRootsFromCall finds handler-valued argument expressions of one
// call: a Handler(...) conversion or arguments in Handler-typed
// parameter positions.
func handlerRootsFromCall(pass *Pass, call *ast.CallExpr, walkRoot func(ast.Expr)) {
	info := pass.Pkg.Info
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		if isHandlerType(tv.Type) && len(call.Args) == 1 {
			walkRoot(call.Args[0])
		}
		return
	}
	fn := calleeOf(info, call)
	if fn == nil {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		idx := i
		if sig.Variadic() && idx >= params.Len()-1 {
			idx = params.Len() - 1
		}
		if idx >= params.Len() {
			break
		}
		pt := params.At(idx).Type()
		if sig.Variadic() && idx == params.Len()-1 {
			if slice, ok := pt.(*types.Slice); ok && !hasEllipsis(call) {
				pt = slice.Elem()
			}
		}
		if isHandlerType(pt) {
			walkRoot(arg)
		}
	}
}

// blobSinkInterface resolves the collective.BlobSink interface from the
// loaded module, or nil when the package is not part of this load.
func blobSinkInterface(pass *Pass) *types.Interface {
	for _, pkg := range pass.All {
		if pkg.Path != collectivePkg {
			continue
		}
		obj := pkg.Types.Scope().Lookup("BlobSink")
		if obj == nil {
			return nil
		}
		iface, _ := obj.Type().Underlying().(*types.Interface)
		return iface
	}
	return nil
}

func recvTypeName(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return t.String()
}

// litByteParams collects a function literal's []byte parameters.
func litByteParams(pkg *Package, lit *ast.FuncLit) []*types.Var {
	var out []*types.Var
	if lit.Type.Params == nil {
		return out
	}
	for _, f := range lit.Type.Params.List {
		for _, name := range f.Names {
			if v, ok := pkg.Info.Defs[name].(*types.Var); ok && isByteSlice(v.Type()) {
				out = append(out, v)
			}
		}
	}
	return out
}

// declByteParams collects a declaration's []byte parameters.
func declByteParams(pkg *Package, fd *ast.FuncDecl) []*types.Var {
	var out []*types.Var
	for _, v := range combinedParams(pkg, fd) {
		if v != nil && isByteSlice(v.Type()) {
			out = append(out, v)
		}
	}
	return out
}

func isByteSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Uint8
}

// escState is the set of local variables that (may) alias the delivered
// payload.
type escState map[*types.Var]bool

func (st escState) clone() absState {
	c := make(escState, len(st))
	for k := range st {
		c[k] = true
	}
	return c
}

func (st escState) join(other absState) bool {
	changed := false
	for k := range other.(escState) {
		if !st[k] {
			st[k] = true
			changed = true
		}
	}
	return changed
}

// escAnalysis carries one body analysis (root or summary mode).
type escAnalysis struct {
	pkg      *Package
	pass     *Pass
	sums     *summarizer
	findings *[]Finding
	dedup    map[string]bool
	root     string
	// summary is non-nil in summary mode: stores are recorded instead of
	// reported, and returns of aliases set returnsAlias.
	summary *escapeEffect
}

func analyzeEscBody(pass *Pass, pkg *Package, sums *summarizer, body *ast.BlockStmt, seeds []*types.Var, root string, findings *[]Finding) {
	if len(seeds) == 0 || body == nil {
		return
	}
	a := &escAnalysis{pkg: pkg, pass: pass, sums: sums, findings: findings, dedup: make(map[string]bool), root: root}
	init := make(escState, len(seeds))
	for _, v := range seeds {
		init[v] = true
	}
	a.run(body, init)
}

// summarizeEscape runs the payloadescape transfer over decl's body with
// param seeded as an alias and reports how the callee treats it.
func summarizeEscape(s *summarizer, decl *IndexedFunc, param *types.Var) escapeEffect {
	var eff escapeEffect
	a := &escAnalysis{pkg: decl.Pkg, pass: s.pass, sums: s, dedup: make(map[string]bool), summary: &eff}
	a.run(decl.Decl.Body, escState{param: true})
	return eff
}

func (a *escAnalysis) run(body *ast.BlockStmt, init escState) {
	g := buildCFG(body, a.pkg.Info)
	forwardFlow(g, init, flowFuncs{
		transfer: func(st absState, n ast.Node, report bool) {
			a.node(st.(escState), n, report)
		},
	})
}

func (a *escAnalysis) flagStore(pos token.Pos, what string, report bool) {
	if a.summary != nil {
		a.summary.stores = true
		return
	}
	if !report || a.findings == nil {
		return
	}
	p := a.pkg.Fset.Position(pos)
	msg := fmt.Sprintf("delivered payload alias %s (%s); the transport recycles the buffer when the handler returns — copy the bytes, or opt into WithCopyOnDeliver", what, a.root)
	key := fmt.Sprintf("%s:%d:%d:%s", p.Filename, p.Line, p.Column, msg)
	if a.dedup[key] {
		return
	}
	a.dedup[key] = true
	*a.findings = append(*a.findings, Finding{Pos: p, Analyzer: "payloadescape", Message: msg})
}

// node applies one CFG node's aliasing effects.
func (a *escAnalysis) node(st escState, n ast.Node, report bool) {
	switch n := n.(type) {
	case *ast.AssignStmt:
		a.assign(st, n, report)
	case *ast.DeclStmt:
		if gd, ok := n.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					alias := false
					if i < len(vs.Values) {
						alias = a.expr(st, vs.Values[i], report)
					} else if len(vs.Values) == 1 && len(vs.Names) > 1 {
						alias = a.expr(st, vs.Values[0], report)
					}
					a.bindIdent(st, name, alias, report)
				}
			}
		}
	case *ast.ExprStmt:
		a.expr(st, n.X, report)
	case *ast.ReturnStmt:
		for _, r := range n.Results {
			if a.expr(st, r, report) {
				if a.summary != nil {
					a.summary.returnsAlias = true
				}
			}
		}
	case *ast.SendStmt:
		a.expr(st, n.Chan, report)
		if a.expr(st, n.Value, report) {
			a.flagStore(n.Arrow, "is sent on a channel", report)
		}
	case *ast.GoStmt:
		a.goStmt(st, n, report)
	case *ast.DeferStmt:
		// The deferred call itself is transferred in the exit chain; the
		// argument evaluation here is a read.
		for _, arg := range n.Call.Args {
			a.expr(st, arg, report)
		}
	case *ast.RangeStmt:
		alias := a.expr(st, n.X, report)
		for _, lhs := range []ast.Expr{n.Key, n.Value} {
			id, ok := lhs.(*ast.Ident)
			if !ok || id.Name == "_" {
				continue
			}
			// Ranging over an aliasing [][]byte yields aliasing elements;
			// ranging over the payload itself yields bytes (not marked).
			a.bindIdent(st, id, alias && lhs == n.Value && mayCarryBytes(a.pkg.Info.Defs[id]), report)
		}
	case *ast.IncDecStmt:
		a.expr(st, n.X, report)
	case ast.Expr:
		a.expr(st, n, report)
	}
}

func (a *escAnalysis) assign(st escState, n *ast.AssignStmt, report bool) {
	if len(n.Lhs) != len(n.Rhs) {
		// Multi-value rhs (call, type assertion, map read): one aliasness
		// for all lhs positions.
		alias := false
		for _, r := range n.Rhs {
			if a.expr(st, r, report) {
				alias = true
			}
		}
		for _, l := range n.Lhs {
			a.assignTo(st, l, alias, report)
		}
		return
	}
	for i := range n.Lhs {
		alias := a.expr(st, n.Rhs[i], report)
		a.assignTo(st, n.Lhs[i], alias, report)
	}
}

// assignTo applies one store of a (possibly aliasing) value to lhs.
func (a *escAnalysis) assignTo(st escState, lhs ast.Expr, alias bool, report bool) {
	switch l := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		a.bindIdent(st, l, alias, report)
		return
	case *ast.SelectorExpr:
		// x.f = alias: writing into a local value struct just makes the
		// struct an alias carrier; anything else (pointer base, global,
		// field chain into escaping memory) is retention.
		if base := a.localValueVar(l.X); base != nil {
			a.expr(st, l.X, report)
			if alias {
				st[base] = true
			}
			return
		}
		a.expr(st, l.X, report)
		if alias {
			a.flagStore(l.Sel.Pos(), fmt.Sprintf("is stored into field %s", l.Sel.Name), report)
		}
		return
	case *ast.IndexExpr:
		a.expr(st, l.Index, report)
		if base := a.localVarOf(l.X); base != nil {
			a.expr(st, l.X, report)
			if alias {
				st[base] = true // local slice/map becomes a carrier
			}
			return
		}
		a.expr(st, l.X, report)
		if alias {
			a.flagStore(l.Pos(), "is stored into an element of escaping memory", report)
		}
		return
	case *ast.StarExpr:
		a.expr(st, l.X, report)
		if alias {
			a.flagStore(l.Pos(), "is stored through a pointer", report)
		}
		return
	}
	a.expr(st, lhs, report)
	if alias {
		a.flagStore(lhs.Pos(), "is stored into escaping memory", report)
	}
}

func (a *escAnalysis) bindIdent(st escState, id *ast.Ident, alias bool, report bool) {
	if id.Name == "_" {
		return
	}
	v := a.localVarIdent(id)
	if v == nil {
		// Package-level variable.
		if alias {
			a.flagStore(id.Pos(), fmt.Sprintf("is stored into package variable %s", id.Name), report)
		}
		return
	}
	if alias {
		st[v] = true
	} else {
		delete(st, v)
	}
}

// goStmt flags aliases reaching a spawned goroutine: as direct
// arguments or captured by the go'd function literal.
func (a *escAnalysis) goStmt(st escState, n *ast.GoStmt, report bool) {
	for _, arg := range n.Call.Args {
		if a.expr(st, arg, report) {
			a.flagStore(arg.Pos(), "is passed to a goroutine", report)
		}
	}
	if lit, ok := ast.Unparen(n.Call.Fun).(*ast.FuncLit); ok {
		if v := a.capturedCarrier(st, lit); v != nil {
			a.flagStore(n.Pos(), fmt.Sprintf("is captured by a goroutine (via %q)", v.Name()), report)
		}
	} else {
		a.expr(st, n.Call.Fun, report)
	}
}

// capturedCarrier returns a carrier variable captured by lit, if any.
func (a *escAnalysis) capturedCarrier(st escState, lit *ast.FuncLit) *types.Var {
	var found *types.Var
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if v, ok := a.pkg.Info.Uses[id].(*types.Var); ok && st[v] {
			found = v
		}
		return true
	})
	return found
}

// expr reports whether e evaluates to a payload alias, applying call
// effects along the way.
func (a *escAnalysis) expr(st escState, e ast.Expr, report bool) bool {
	switch e := e.(type) {
	case *ast.Ident:
		if v, ok := a.pkg.Info.Uses[e].(*types.Var); ok {
			return st[v]
		}
	case *ast.ParenExpr:
		return a.expr(st, e.X, report)
	case *ast.SelectorExpr:
		// A field read of an alias-carrying struct yields an alias.
		return a.expr(st, e.X, report)
	case *ast.SliceExpr:
		alias := a.expr(st, e.X, report)
		for _, idx := range []ast.Expr{e.Low, e.High, e.Max} {
			if idx != nil {
				a.expr(st, idx, report)
			}
		}
		return alias
	case *ast.IndexExpr:
		alias := a.expr(st, e.X, report)
		a.expr(st, e.Index, report)
		return alias
	case *ast.StarExpr:
		return a.expr(st, e.X, report)
	case *ast.UnaryExpr:
		alias := a.expr(st, e.X, report)
		if e.Op == token.AND {
			return alias
		}
		if e.Op == token.ARROW {
			return false // channel receive: contents unknown
		}
		return false
	case *ast.BinaryExpr:
		a.expr(st, e.X, report)
		a.expr(st, e.Y, report)
		return false
	case *ast.TypeAssertExpr:
		return a.expr(st, e.X, report)
	case *ast.KeyValueExpr:
		return a.expr(st, e.Value, report)
	case *ast.CompositeLit:
		alias := false
		for _, elt := range e.Elts {
			if a.expr(st, elt, report) {
				alias = true
			}
		}
		return alias
	case *ast.CallExpr:
		return a.call(st, e, report)
	case *ast.FuncLit:
		// A bare literal in expression position: conservatively fine
		// unless it escapes via go/store, which the statement-level rules
		// catch. Walk it for IIFE correctness only when directly called
		// (handled in call()).
		return false
	}
	return false
}

// call evaluates one call's effects and whether its value aliases the
// payload.
func (a *escAnalysis) call(st escState, call *ast.CallExpr, report bool) bool {
	info := a.pkg.Info
	// Builtins.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if bi, ok := info.Uses[id].(*types.Builtin); ok {
			return a.builtin(st, bi.Name(), call, report)
		}
	}
	// Conversions: []byte->string and any basic conversion copies; a
	// slice-to-slice conversion preserves the alias.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		alias := a.expr(st, call.Args[0], report)
		if !alias {
			return false
		}
		switch tv.Type.Underlying().(type) {
		case *types.Basic:
			return false // string(b), etc: copies
		default:
			return true
		}
	}
	// Immediately-invoked function literal: analyze inline with the
	// current carriers (covers deferred literals via the exit chain).
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		for _, arg := range call.Args {
			a.expr(st, arg, report)
		}
		sub := &escAnalysis{pkg: a.pkg, pass: a.pass, sums: a.sums, findings: a.findings, dedup: a.dedup, root: a.root, summary: a.summary}
		if report || a.summary != nil {
			sub.run(lit.Body, st.clone().(escState))
		}
		return false
	}

	fn := calleeOf(info, call)
	if fn == nil || fn.Pkg() == nil || a.pass.Index.Lookup(fn) == nil {
		// Dynamic, interface, or extra-module call: assumed non-retaining
		// (the Handler/Tap/Hooks contract boundary — documented false
		// negative).
		a.exprList(st, call.Args, report)
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			a.expr(st, sel.X, report)
		}
		return false
	}

	resultAliases := false
	apply := func(idx int, alias bool, pos token.Pos) {
		if !alias {
			return
		}
		eff := a.sums.escapeEffectOf(fn, idx)
		if eff.stores {
			a.flagStore(pos, fmt.Sprintf("is retained by %s", fn.Name()), report)
		}
		if eff.returnsAlias {
			resultAliases = true
		}
	}
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && !isMethodExpr(info, call) {
		apply(receiverIndex(info, call, fn), a.expr(st, sel.X, report), sel.X.Pos())
	}
	for i, arg := range call.Args {
		apply(callArgIndex(info, call, fn, i), a.expr(st, arg, report), arg.Pos())
	}
	return resultAliases
}

func (a *escAnalysis) exprList(st escState, list []ast.Expr, report bool) {
	for _, e := range list {
		a.expr(st, e, report)
	}
}

// builtin evaluates a builtin call's aliasing.
func (a *escAnalysis) builtin(st escState, name string, call *ast.CallExpr, report bool) bool {
	switch name {
	case "append":
		// append(dst, b...) copies bytes (no alias from b); appending an
		// aliasing element or an aliasing dst keeps the alias.
		alias := false
		for i, arg := range call.Args {
			argAlias := a.expr(st, arg, report)
			if !argAlias {
				continue
			}
			spread := call.Ellipsis.IsValid() && i == len(call.Args)-1
			if i == 0 || !spread {
				alias = true
			}
		}
		return alias
	case "copy", "len", "cap", "min", "max":
		a.exprList(st, call.Args, report)
		return false
	default:
		a.exprList(st, call.Args, report)
		return false
	}
}

// localValueVar resolves e to a local variable of (non-pointer) struct
// or array type — a stack value whose fields can safely carry aliases.
func (a *escAnalysis) localValueVar(e ast.Expr) *types.Var {
	v := a.localVarOf(e)
	if v == nil {
		return nil
	}
	switch v.Type().Underlying().(type) {
	case *types.Struct, *types.Array:
		return v
	}
	return nil
}

// localVarOf resolves a bare identifier expression to a function-local
// variable.
func (a *escAnalysis) localVarOf(e ast.Expr) *types.Var {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	return a.localVarIdent(id)
}

func (a *escAnalysis) localVarIdent(id *ast.Ident) *types.Var {
	obj := a.pkg.Info.Defs[id]
	if obj == nil {
		obj = a.pkg.Info.Uses[id]
	}
	v, ok := obj.(*types.Var)
	if !ok || v.IsField() {
		return nil
	}
	if v.Parent() == a.pkg.Types.Scope() || v.Parent() == types.Universe {
		return nil
	}
	return v
}

// mayCarryBytes reports whether a value of obj's type could alias a
// byte buffer (anything but scalars, strings, and funcs).
func mayCarryBytes(obj types.Object) bool {
	if obj == nil {
		return false
	}
	switch obj.Type().Underlying().(type) {
	case *types.Basic, *types.Signature, *types.Chan:
		return false
	}
	return true
}
