package analyzers

import (
	"path/filepath"
	"regexp"
	"sync"
	"testing"
)

// The module is loaded once and shared across tests: type-checking the
// standard library through the source importer dominates the cost.
var (
	loadOnce sync.Once
	loadLdr  *Loader
	loadPkgs []*Package
	loadErr  error
)

func modulePackages(t *testing.T) (*Loader, []*Package) {
	t.Helper()
	loadOnce.Do(func() {
		root, err := filepath.Abs("../..")
		if err != nil {
			loadErr = err
			return
		}
		if loadLdr, loadErr = NewLoader(root); loadErr != nil {
			return
		}
		loadPkgs, loadErr = loadLdr.LoadAll()
	})
	if loadErr != nil {
		t.Fatalf("loading module: %v", loadErr)
	}
	return loadLdr, loadPkgs
}

// wantRe extracts expectations of the form `// want `regexp“ from
// fixture comments.
var wantRe = regexp.MustCompile("want `([^`]+)`")

type expectation struct {
	line    int
	re      *regexp.Regexp
	matched bool
}

func parseWants(t *testing.T, pkg *Package) []*expectation {
	t.Helper()
	var wants []*expectation
	for _, file := range pkg.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				for _, m := range wantRe.FindAllStringSubmatch(c.Text, -1) {
					re, err := regexp.Compile(m[1])
					if err != nil {
						t.Fatalf("bad want regexp %q: %v", m[1], err)
					}
					pos := pkg.Fset.Position(c.Pos())
					wants = append(wants, &expectation{line: pos.Line, re: re})
				}
			}
		}
	}
	return wants
}

// runFixture loads testdata/<name>, runs one analyzer over it (with the
// module's packages available for call-graph walks), and diffs the
// findings against the fixture's want-comments.
func runFixture(t *testing.T, name string, a *Analyzer) {
	t.Helper()
	ldr, pkgs := modulePackages(t)
	fix, err := ldr.LoadDir(filepath.Join("testdata", name), "fixture/"+name)
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	all := append(append([]*Package{}, pkgs...), fix)
	findings := Run([]*Package{fix}, all, []*Analyzer{a}, nil)
	wants := parseWants(t, fix)
	if len(wants) == 0 {
		t.Fatalf("fixture %s has no want-comments", name)
	}

	for _, f := range findings {
		ok := false
		for _, w := range wants {
			if !w.matched && w.line == f.Pos.Line && w.re.MatchString(f.Message) {
				w.matched = true
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("unexpected finding: %s", f)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("line %d: expected a finding matching %q, got none", w.line, w.re)
		}
	}
}

func TestWallclockFixture(t *testing.T)       { runFixture(t, "wallclock", Wallclock) }
func TestSeedrandFixture(t *testing.T)        { runFixture(t, "seedrand", Seedrand) }
func TestCodecerrFixture(t *testing.T)        { runFixture(t, "codecerr", Codecerr) }
func TestBlockincallbackFixture(t *testing.T) { runFixture(t, "blockincallback", Blockincallback) }
func TestAllocinloopFixture(t *testing.T)     { runFixture(t, "allocinloop", Allocinloop) }

func TestBuflifetimeFixture(t *testing.T)   { runFixture(t, "buflifetime", Buflifetime) }
func TestPayloadescapeFixture(t *testing.T) { runFixture(t, "payloadescape", Payloadescape) }
func TestDivergentcollectiveFixture(t *testing.T) {
	runFixture(t, "divergentcollective", Divergentcollective)
}
func TestRankconfinedFixture(t *testing.T) { runFixture(t, "rankconfined", Rankconfined) }

// TestSuppressFixture exercises the ygmvet:ignore directive forms:
// block comments, scoped names, and the unknown-name diagnostic, with
// the wallclock analyzer providing the findings being suppressed.
func TestSuppressFixture(t *testing.T) { runFixture(t, "suppress", Wallclock) }

// TestRepoClean pins the tree to zero findings under the production
// scope — the same invocation CI runs through cmd/ygmvet.
func TestRepoClean(t *testing.T) {
	_, pkgs := modulePackages(t)
	findings := Run(pkgs, pkgs, All(), DefaultScope)
	for _, f := range findings {
		t.Errorf("repo not ygmvet-clean: %s", f)
	}
}

// TestSuiteRegistered pins the suite's composition: every analyzer the
// issue specifies is present and named for suppression directives.
func TestSuiteRegistered(t *testing.T) {
	got := make(map[string]bool)
	for _, a := range All() {
		got[a.Name] = true
		if a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %s missing doc or run function", a.Name)
		}
	}
	for _, name := range []string{
		"wallclock", "seedrand", "codecerr", "blockincallback", "allocinloop",
		"buflifetime", "payloadescape", "divergentcollective", "rankconfined",
	} {
		if !got[name] {
			t.Errorf("analyzer %s not registered in All()", name)
		}
	}
}
