package analyzers

import (
	"fmt"
	"go/ast"
	"go/types"
)

// seedrandAllowed are the math/rand package-level functions that
// construct seeded sources rather than draw from the global one.
var seedrandAllowed = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true, // math/rand/v2
	"NewChaCha8": true, // math/rand/v2
}

// Seedrand flags draws from math/rand's implicit global source
// (rand.Intn, rand.Float64, rand.Shuffle, ...). The global source is
// shared process state: two ranks interleaving draws make every run
// schedule-dependent, which breaks the determinism EXPERIMENTS.md
// depends on. All randomness must flow from seeded per-rank sources —
// rand.New(rand.NewSource(seed)) construction stays legal, as do
// methods on an explicit *rand.Rand.
var Seedrand = &Analyzer{
	Name: "seedrand",
	Doc:  "flag package-level math/rand draws (global, unseeded source); randomness must come from seeded per-rank *rand.Rand values",
	Run:  runSeedrand,
}

func runSeedrand(pass *Pass) []Finding {
	var findings []Finding
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.Pkg.Info.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			if p := fn.Pkg().Path(); p != "math/rand" && p != "math/rand/v2" {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
				// Methods on an explicit *rand.Rand are the seeded,
				// per-rank pattern this rule exists to protect.
				return true
			}
			if seedrandAllowed[fn.Name()] {
				return true
			}
			findings = append(findings, Finding{
				Pos:      pass.Pkg.Fset.Position(sel.Pos()),
				Analyzer: "seedrand",
				Message: fmt.Sprintf("rand.%s draws from the process-global source; use a seeded per-rank source (Proc.Rng or rand.New(rand.NewSource(seed)))",
					fn.Name()),
			})
			return true
		})
	}
	return findings
}
