package analyzers

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Buflifetime checks the pooled-buffer ownership protocol statically:
// every Proc.AcquireBuf result must reach exactly one of
// SendPooled/Recycle/Detach on every normal path, every Recv/Poll/Drain
// packet must be recycled, and nothing may touch a buffer or packet
// after it was sent or recycled. The analysis is flow-sensitive over the
// function's CFG (early returns, loops, defers, nil-check refinement of
// Poll/Drain results) and follows buffers through module helpers via
// consume summaries. Panicking paths are excluded: a corrupt-packet
// panic does not owe the pool anything.
//
// Known false negatives, by design: values stored into slices, maps or
// struct fields stop being tracked (the analysis is variable-granular),
// and helpers returning fresh buffers are not treated as sources.
var Buflifetime = &Analyzer{
	Name: "buflifetime",
	Doc:  "flag pooled buffers and packets that leak on some path, are released twice, or are used after SendPooled/Recycle/Detach",
	Run:  runBuflifetime,
}

// bufSource describes one buffer/packet-producing call.
type bufSource struct {
	kind    string // "pooled buffer" or "packet"
	nilable bool   // Poll/Drain return nil when nothing is available
	release string // the release verbs named in diagnostics
}

// bufSources maps pkgpath.Name of producing calls to what they produce.
var bufSources = map[string]bufSource{
	"ygm/internal/transport.AcquireBuf": {kind: "pooled buffer", release: "SendPooled, Recycle or Detach"},
	"ygm/internal/codec.Detach":         {kind: "pooled buffer", release: "SendPooled, Recycle or Detach"},
	"ygm/internal/transport.Recv":       {kind: "packet", release: "Recycle"},
	"ygm/internal/transport.Poll":       {kind: "packet", nilable: true, release: "Recycle"},
	"ygm/internal/transport.Drain":      {kind: "packet", nilable: true, release: "Recycle"},
}

// bufSink describes one consuming call: which argument it releases and
// the past-tense verb for use-after diagnostics.
type bufSink struct {
	arg  int
	verb string
}

// bufSinks maps pkgpath.Name of releasing calls to their consumed
// argument. Proc.Absorb is deliberately absent: it only applies arrival
// accounting, the packet stays live until Recycle.
var bufSinks = map[string]bufSink{
	"ygm/internal/transport.SendPooled": {arg: 2, verb: "sent"},
	"ygm/internal/transport.Recycle":    {arg: 0, verb: "recycled"},
	"ygm/internal/codec.Detach":         {arg: 0, verb: "handed to a codec.Writer as replacement storage"},
}

// bufBits is the per-variable may-state lattice.
type bufBits uint8

const (
	bitLive     bufBits = 1 << iota // may still own the value
	bitConsumed                     // may have released it
)

// bufVal is one tracked variable's abstract value.
type bufVal struct {
	bits    bufBits
	kind    string // "pooled buffer" | "packet"
	source  string // producing call name, for diagnostics
	release string
	acquire token.Pos // position of the producing call
	verb    string    // how it was (possibly) consumed
	origin  *types.Var
}

func (v *bufVal) copy() *bufVal { c := *v; return &c }

// bufState maps tracked variables to their abstract values.
type bufState map[*types.Var]*bufVal

func (st bufState) clone() absState {
	c := make(bufState, len(st))
	for k, v := range st {
		c[k] = v.copy()
	}
	return c
}

func (st bufState) join(other absState) bool {
	o := other.(bufState)
	changed := false
	for k, ov := range o {
		mine, ok := st[k]
		if !ok {
			st[k] = ov.copy()
			changed = true
			continue
		}
		if merged := mine.bits | ov.bits; merged != mine.bits {
			mine.bits = merged
			changed = true
		}
		if mine.verb == "" && ov.verb != "" {
			mine.verb = ov.verb
		}
	}
	return changed
}

// bufDesc is what one expression evaluates to, as far as ownership is
// concerned.
type bufDesc struct {
	v   *types.Var // a tracked variable (move semantics on assignment)
	src *bufSource // a fresh source result
	// srcName/pos describe the producing call when src != nil.
	srcName string
	pos     token.Pos
}

// bufAnalysis carries one function analysis (or one summary run).
type bufAnalysis struct {
	pkg  *Package
	pass *Pass
	sums *summarizer
	// findings is nil in summary mode.
	findings *[]Finding
	dedup    map[string]bool
	// summaryParam is the parameter being summarized, nil in root mode.
	summaryParam *types.Var
	sawEscape    bool
	sawConsume   bool
	exitLive     bool
}

func runBuflifetime(pass *Pass) []Finding {
	var findings []Finding
	sums := newSummarizer(pass)
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			analyzeBufBody(pass, pass.Pkg, sums, fd.Body, &findings)
			// Function literals are analyzed as independent roots; the
			// enclosing analysis treats captured variables as escaping.
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					analyzeBufBody(pass, pass.Pkg, sums, lit.Body, &findings)
				}
				return true
			})
		}
	}
	return findings
}

func analyzeBufBody(pass *Pass, pkg *Package, sums *summarizer, body *ast.BlockStmt, findings *[]Finding) {
	a := &bufAnalysis{pkg: pkg, pass: pass, sums: sums, findings: findings, dedup: make(map[string]bool)}
	a.run(body, make(bufState))
}

// summarizeConsume runs the buflifetime transfer over decl's body with
// param seeded live and classifies the callee's treatment of it.
func summarizeConsume(s *summarizer, decl *IndexedFunc, param *types.Var) consumeEffect {
	a := &bufAnalysis{pkg: decl.Pkg, pass: s.pass, sums: s, summaryParam: param, dedup: make(map[string]bool)}
	init := bufState{param: {bits: bitLive, kind: "value", origin: param}}
	a.run(decl.Decl.Body, init)
	switch {
	case a.sawEscape:
		return effEscapes
	case a.sawConsume && !a.exitLive:
		return effConsumes
	case a.sawConsume: // consumed on some paths only: give up silently
		return effEscapes
	default:
		return effReads
	}
}

func (a *bufAnalysis) run(body *ast.BlockStmt, init bufState) {
	g := buildCFG(body, a.pkg.Info)
	forwardFlow(g, init, flowFuncs{
		transfer: func(st absState, n ast.Node, report bool) {
			a.node(st.(bufState), n, report && a.findings != nil)
		},
		refine: a.refine,
		atExit: func(st absState) { a.atExit(st.(bufState)) },
	})
}

// refine sharpens the state on the branches of a nil check: on the edge
// where a tracked variable is proven nil there is nothing to release.
func (a *bufAnalysis) refine(st absState, cond ast.Expr, taken bool) {
	bin, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok || (bin.Op != token.EQL && bin.Op != token.NEQ) {
		return
	}
	var id *ast.Ident
	switch {
	case isNilIdent(a.pkg.Info, bin.Y):
		id, _ = ast.Unparen(bin.X).(*ast.Ident)
	case isNilIdent(a.pkg.Info, bin.X):
		id, _ = ast.Unparen(bin.Y).(*ast.Ident)
	}
	if id == nil {
		return
	}
	v := a.localVar(id)
	if v == nil {
		return
	}
	nilEdge := (bin.Op == token.EQL) == taken
	if nilEdge {
		delete(st.(bufState), v)
	}
}

func isNilIdent(info *types.Info, e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return false
	}
	_, isNil := info.Uses[id].(*types.Nil)
	return isNil
}

func (a *bufAnalysis) atExit(st bufState) {
	for v, val := range st {
		if val.bits&bitLive == 0 {
			continue
		}
		if a.summaryParam != nil {
			if val.origin == a.summaryParam {
				a.exitLive = true
			}
			continue
		}
		a.reportf(val.acquire, "%s %q from %s is not released on every path; it must reach exactly one of %s",
			val.kind, v.Name(), val.source, val.release)
	}
}

func (a *bufAnalysis) reportf(pos token.Pos, format string, args ...any) {
	if a.findings == nil {
		return
	}
	p := a.pkg.Fset.Position(pos)
	msg := fmt.Sprintf(format, args...)
	key := fmt.Sprintf("%s:%d:%d:%s", p.Filename, p.Line, p.Column, msg)
	if a.dedup[key] {
		return
	}
	a.dedup[key] = true
	*a.findings = append(*a.findings, Finding{Pos: p, Analyzer: "buflifetime", Message: msg})
}

// node applies one CFG node's ownership effects.
func (a *bufAnalysis) node(st bufState, n ast.Node, report bool) {
	switch n := n.(type) {
	case *ast.AssignStmt:
		a.assign(st, n, report)
	case *ast.DeclStmt:
		if gd, ok := n.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					var d bufDesc
					if i < len(vs.Values) {
						d = a.expr(st, vs.Values[i], report)
					}
					a.bindIdent(st, name, d, report)
				}
			}
		}
	case *ast.ExprStmt:
		d := a.expr(st, n.X, report)
		if d.src != nil && report {
			a.reportf(d.pos, "result of %s is dropped; the %s must be released via %s",
				d.srcName, d.src.kind, d.src.release)
		}
	case *ast.ReturnStmt:
		for _, r := range n.Results {
			d := a.expr(st, r, report)
			if d.v != nil {
				a.escape(st, d.v, report)
			}
		}
	case *ast.SendStmt:
		a.expr(st, n.Chan, report)
		d := a.expr(st, n.Value, report)
		if d.v != nil {
			a.escape(st, d.v, report)
		}
	case *ast.IncDecStmt:
		a.expr(st, n.X, report)
	case *ast.GoStmt:
		a.escapeCall(st, n.Call, report)
	case *ast.DeferStmt:
		// Arguments are evaluated at defer time (reads); the call's
		// release semantics apply in the exit chain, where the CFG places
		// the deferred CallExpr.
		for _, arg := range n.Call.Args {
			a.expr(st, arg, report)
		}
	case *ast.RangeStmt:
		a.expr(st, n.X, report)
		for _, lhs := range []ast.Expr{n.Key, n.Value} {
			if id, ok := lhs.(*ast.Ident); ok && id.Name != "_" {
				a.bindIdent(st, id, bufDesc{}, report)
			}
		}
	case ast.Expr:
		a.expr(st, n, report)
	}
}

// assign applies one assignment: source bindings, ownership moves, and
// kills.
func (a *bufAnalysis) assign(st bufState, n *ast.AssignStmt, report bool) {
	if len(n.Lhs) != len(n.Rhs) {
		// Multi-value assignment (call or type assertion): evaluate the
		// rhs, then kill any tracked lhs variables.
		for _, r := range n.Rhs {
			a.expr(st, r, report)
		}
		for _, l := range n.Lhs {
			if id, ok := ast.Unparen(l).(*ast.Ident); ok {
				a.bindIdent(st, id, bufDesc{}, report)
			} else {
				a.expr(st, l, report)
			}
		}
		return
	}
	for i := range n.Lhs {
		d := a.expr(st, n.Rhs[i], report)
		lhs := ast.Unparen(n.Lhs[i])
		if id, ok := lhs.(*ast.Ident); ok {
			if a.localVar(id) != nil || id.Name == "_" {
				a.bindIdent(st, id, d, report)
				continue
			}
		}
		// Field, index, dereference or global target: evaluate the lhs for
		// uses; a tracked rhs escapes into it.
		a.expr(st, lhs, report)
		if d.v != nil {
			a.escape(st, d.v, report)
		}
	}
}

// bindIdent rebinds one identifier to the value described by d.
func (a *bufAnalysis) bindIdent(st bufState, id *ast.Ident, d bufDesc, report bool) {
	if id.Name == "_" {
		if d.src != nil && report {
			a.reportf(d.pos, "result of %s is dropped; the %s must be released via %s",
				d.srcName, d.src.kind, d.src.release)
		}
		return
	}
	v := a.localVar(id)
	if v == nil {
		if d.v != nil {
			a.escape(st, d.v, report)
		}
		return
	}
	if old, ok := st[v]; ok && d.v != v {
		if old.bits&bitLive != 0 && old.bits&bitConsumed == 0 && report {
			a.reportf(id.Pos(), "%q is reassigned while it still holds an unreleased %s (from %s)",
				id.Name, old.kind, old.source)
		}
		delete(st, v)
	}
	switch {
	case d.v != nil && d.v != v:
		val := st[d.v]
		delete(st, d.v)
		if val != nil {
			st[v] = val
		}
	case d.src != nil:
		st[v] = &bufVal{
			bits:    bitLive,
			kind:    d.src.kind,
			source:  d.srcName,
			release: d.src.release,
			acquire: d.pos,
			origin:  nil,
		}
	}
}

// escape stops tracking v: its value went somewhere the analysis cannot
// follow. Escaping an already-released value is still a use-after.
func (a *bufAnalysis) escape(st bufState, v *types.Var, report bool) {
	val, ok := st[v]
	if !ok {
		return
	}
	if val.bits&bitConsumed != 0 && report {
		a.reportf(v.Pos(), "%q may escape after it was %s", v.Name(), val.verb)
	}
	if val.origin != nil && val.origin == a.summaryParam {
		a.sawEscape = true
	}
	delete(st, v)
}

// use checks a read of a tracked variable.
func (a *bufAnalysis) use(st bufState, id *ast.Ident, v *types.Var, report bool) {
	val, ok := st[v]
	if !ok {
		return
	}
	if val.bits&bitConsumed != 0 && report {
		a.reportf(id.Pos(), "use of %q after it was %s", id.Name, val.verb)
	}
}

// consume marks v released at a sink.
func (a *bufAnalysis) consume(st bufState, pos token.Pos, v *types.Var, verb string, report bool) {
	val, ok := st[v]
	if !ok {
		return
	}
	if val.bits&bitConsumed != 0 && report {
		a.reportf(pos, "%q is released twice: it was already %s", v.Name(), val.verb)
	}
	val.bits = (val.bits &^ bitLive) | bitConsumed
	val.verb = verb
	if val.origin != nil && val.origin == a.summaryParam {
		a.sawConsume = true
	}
}

// expr evaluates one expression's ownership effects and describes its
// value.
func (a *bufAnalysis) expr(st bufState, e ast.Expr, report bool) bufDesc {
	switch e := e.(type) {
	case *ast.Ident:
		if v := a.localVar(e); v != nil {
			if _, tracked := st[v]; tracked {
				a.use(st, e, v, report)
				return bufDesc{v: v}
			}
		}
	case *ast.ParenExpr:
		return a.expr(st, e.X, report)
	case *ast.CallExpr:
		return a.call(st, e, report)
	case *ast.SelectorExpr:
		a.expr(st, e.X, report)
	case *ast.SliceExpr:
		d := a.expr(st, e.X, report)
		for _, idx := range []ast.Expr{e.Low, e.High, e.Max} {
			if idx != nil {
				a.expr(st, idx, report)
			}
		}
		return d // a reslice still owns the same backing buffer
	case *ast.UnaryExpr:
		d := a.expr(st, e.X, report)
		if e.Op == token.AND && d.v != nil {
			a.escape(st, d.v, report)
		}
	case *ast.StarExpr:
		a.expr(st, e.X, report)
	case *ast.BinaryExpr:
		// Nil comparisons are ownership-neutral (checking a released
		// pointer against nil is not a use of its contents).
		if isNilIdent(a.pkg.Info, e.X) || isNilIdent(a.pkg.Info, e.Y) {
			return bufDesc{}
		}
		a.expr(st, e.X, report)
		a.expr(st, e.Y, report)
	case *ast.IndexExpr:
		a.expr(st, e.X, report)
		a.expr(st, e.Index, report)
	case *ast.IndexListExpr:
		a.expr(st, e.X, report)
		for _, idx := range e.Indices {
			a.expr(st, idx, report)
		}
	case *ast.TypeAssertExpr:
		a.expr(st, e.X, report)
	case *ast.KeyValueExpr:
		d := a.expr(st, e.Value, report)
		return d
	case *ast.CompositeLit:
		for _, elt := range e.Elts {
			d := a.expr(st, elt, report)
			if d.v != nil {
				a.escape(st, d.v, report)
			}
		}
	case *ast.FuncLit:
		a.escapeCaptured(st, e, report)
	}
	return bufDesc{}
}

// escapeCaptured stops tracking every variable a function literal
// captures: the closure may outlive this frame.
func (a *bufAnalysis) escapeCaptured(st bufState, lit *ast.FuncLit, report bool) {
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if v, ok := a.pkg.Info.Uses[id].(*types.Var); ok {
			if _, tracked := st[v]; tracked {
				a.escape(st, v, report)
			}
		}
		return true
	})
}

// escapeCall treats every tracked value reaching a call (go statement,
// unknown callee) as escaping.
func (a *bufAnalysis) escapeCall(st bufState, call *ast.CallExpr, report bool) {
	a.expr(st, call.Fun, report)
	for _, arg := range call.Args {
		d := a.expr(st, arg, report)
		if d.v != nil {
			a.escape(st, d.v, report)
		}
	}
}

// call applies one call expression: sinks, sources, summaries, unknown
// callees.
func (a *bufAnalysis) call(st bufState, call *ast.CallExpr, report bool) bufDesc {
	info := a.pkg.Info
	// Builtins first: they never release anything.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if bi, ok := info.Uses[id].(*types.Builtin); ok {
			return a.builtin(st, bi.Name(), call, report)
		}
	}
	// Conversions: T(x) passes ownership through.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		return a.expr(st, call.Args[0], report)
	}
	fn := calleeOf(info, call)
	if fn == nil || fn.Pkg() == nil {
		// Dynamic call: arguments escape.
		a.escapeCall(st, call, report)
		return bufDesc{}
	}
	key := fn.Pkg().Path() + "." + fn.Name()

	// Evaluate the receiver of a bound method call for uses.
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && !isMethodExpr(info, call) {
		if recvd := a.expr(st, sel.X, report); recvd.v != nil {
			// A tracked value used as a receiver of an un-summarized
			// method is a read; sinks and summaries below never bind the
			// receiver as the released argument.
			if !trackedSinkOrSource(key) && a.pass.Index.Lookup(fn) == nil {
				a.escape(st, recvd.v, report)
			}
		}
	}

	if sink, ok := bufSinks[key]; ok {
		var out bufDesc
		for i, arg := range call.Args {
			if i == sink.arg {
				// The released argument is consumed, not read: skip the
				// use-after check so a double release reports once.
				if d := descOfIdent(a, st, arg); d.v != nil {
					a.consume(st, arg.Pos(), d.v, sink.verb, report)
					continue
				}
			}
			d := a.expr(st, arg, report)
			if i == sink.arg && d.v != nil {
				a.consume(st, arg.Pos(), d.v, sink.verb, report)
			} else if i != sink.arg && d.v != nil {
				a.use(st, argIdentOf(arg), d.v, report)
			}
		}
		if src, isSrc := bufSources[key]; isSrc { // Detach both consumes and produces
			out = bufDesc{src: &src, srcName: fn.Name(), pos: call.Pos()}
		}
		return out
	}
	if src, ok := bufSources[key]; ok {
		for _, arg := range call.Args {
			a.expr(st, arg, report)
		}
		return bufDesc{src: &src, srcName: fn.Name(), pos: call.Pos()}
	}

	// Module-declared callee: follow tracked arguments through its
	// consume summary.
	if a.pass.Index.Lookup(fn) != nil {
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && !isMethodExpr(info, call) {
			if d := descOfIdent(a, st, sel.X); d.v != nil {
				a.applySummary(st, call, fn, receiverIndex(info, call, fn), d.v, sel.X.Pos(), report)
			}
		}
		for i, arg := range call.Args {
			d := a.expr(st, arg, report)
			switch {
			case d.v != nil:
				a.applySummary(st, call, fn, callArgIndex(info, call, fn, i), d.v, arg.Pos(), report)
			case d.src != nil:
				eff := effEscapes
				if idx := callArgIndex(info, call, fn, i); idx >= 0 {
					eff = a.sums.consumeEffectOf(fn, idx)
				}
				if eff == effReads && report {
					a.reportf(d.pos, "result of %s is passed to %s, which does not release it; the %s must be released via %s",
						d.srcName, fn.Name(), d.src.kind, d.src.release)
				}
			}
		}
		return bufDesc{}
	}

	// Unknown callee (stdlib, interface): tracked arguments escape.
	for _, arg := range call.Args {
		d := a.expr(st, arg, report)
		if d.v != nil {
			a.escape(st, d.v, report)
		}
	}
	return bufDesc{}
}

// applySummary applies a callee's consume summary to one tracked
// argument.
func (a *bufAnalysis) applySummary(st bufState, call *ast.CallExpr, fn *types.Func, idx int, v *types.Var, pos token.Pos, report bool) {
	eff := effEscapes
	if idx >= 0 {
		eff = a.sums.consumeEffectOf(fn, idx)
	}
	switch eff {
	case effConsumes:
		a.consume(st, pos, v, "released by "+fn.Name(), report)
	case effEscapes:
		a.escape(st, v, report)
	}
}

// builtin applies a builtin call's effects.
func (a *bufAnalysis) builtin(st bufState, name string, call *ast.CallExpr, report bool) bufDesc {
	switch name {
	case "append":
		// Appending may reallocate; stop tracking the destination, and an
		// element-position tracked value is stored into the slice.
		for i, arg := range call.Args {
			d := a.expr(st, arg, report)
			if d.v == nil {
				continue
			}
			spread := call.Ellipsis.IsValid() && i == len(call.Args)-1
			if i == 0 || !spread {
				a.escape(st, d.v, report)
			}
		}
	default:
		for _, arg := range call.Args {
			a.expr(st, arg, report)
		}
	}
	return bufDesc{}
}

// descOfIdent describes a bare identifier without re-running use checks.
func descOfIdent(a *bufAnalysis, st bufState, e ast.Expr) bufDesc {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return bufDesc{}
	}
	if v := a.localVar(id); v != nil {
		if _, tracked := st[v]; tracked {
			return bufDesc{v: v}
		}
	}
	return bufDesc{}
}

func argIdentOf(e ast.Expr) *ast.Ident {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return &ast.Ident{Name: "value", NamePos: e.Pos()}
	}
	return id
}

func trackedSinkOrSource(key string) bool {
	_, sink := bufSinks[key]
	_, src := bufSources[key]
	return sink || src
}

// localVar resolves an identifier to a function-local variable
// (including parameters). Package-level variables return nil.
func (a *bufAnalysis) localVar(id *ast.Ident) *types.Var {
	obj := a.pkg.Info.Defs[id]
	if obj == nil {
		obj = a.pkg.Info.Uses[id]
	}
	v, ok := obj.(*types.Var)
	if !ok || v.IsField() {
		return nil
	}
	if v.Parent() == a.pkg.Types.Scope() || v.Parent() == types.Universe {
		return nil
	}
	return v
}
