package analyzers

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// ygmPkg is the package that declares the Handler callback type.
const ygmPkg = "ygm/internal/ygm"

// blockingFuncs maps "pkgpath.Name" to a short reason for every exported
// primitive that parks the calling rank until other ranks make progress.
// A mailbox receive callback runs inside message delivery: if it invokes
// one of these, the rank waits on peers while peers wait on its delivery
// loop, and the whole world deadlocks (the transport watchdog catches
// this at runtime; here it is caught at vet time).
var blockingFuncs = map[string]string{
	"ygm/internal/ygm.WaitEmpty":              "waits for global mailbox quiescence",
	"ygm/internal/ygm.TestEmpty":              "runs a termination-detection round",
	"ygm/internal/ygm.Exchange":               "is a synchronous all-ranks exchange",
	"ygm/internal/ygm.ExchangeUntilQuiet":     "is a synchronous all-ranks exchange",
	"ygm/internal/transport.Recv":             "blocks until a packet arrives",
	"ygm/internal/transport.WaitPop":          "blocks until a packet arrives",
	"ygm/internal/collective.Barrier":         "is a blocking collective",
	"ygm/internal/collective.Bcast":           "is a blocking collective",
	"ygm/internal/collective.ReduceU64":       "is a blocking collective",
	"ygm/internal/collective.AllreduceU64":    "is a blocking collective",
	"ygm/internal/collective.ReduceF64":       "is a blocking collective",
	"ygm/internal/collective.AllreduceF64":    "is a blocking collective",
	"ygm/internal/collective.Gatherv":         "is a blocking collective",
	"ygm/internal/collective.Allgatherv":      "is a blocking collective",
	"ygm/internal/collective.Scatterv":        "is a blocking collective",
	"ygm/internal/collective.Alltoallv":       "is a blocking collective",
	"ygm/internal/collective.AlltoallvPooled": "is a blocking collective",
	"ygm/internal/collective.ExscanU64":       "is a blocking collective",
}

// trustedFrameworkPkgs are packages whose internals the walk does not
// descend into: the framework is allowed to block in its own machinery
// (that is what WaitEmpty is), so only *direct* calls to the blocklist
// from user code count. Descending would flag every handler that merely
// sends, because Send reaches the delivery loop.
var trustedFrameworkPkgs = map[string]bool{
	"ygm/internal/ygm":        true,
	"ygm/internal/transport":  true,
	"ygm/internal/collective": true,
}

// Blockincallback flags blocking primitives reachable from mailbox
// receive callbacks. Roots are function literals or references used as
// ygm.Handler values (handler arguments, Handler(...) conversions,
// Handler-typed variables); the walk follows static calls through the
// loaded module's call graph.
var Blockincallback = &Analyzer{
	Name: "blockincallback",
	Doc:  "flag WaitEmpty/Barrier/Recv and other rank-blocking primitives reachable from mailbox receive callbacks, which deadlock the world at runtime",
	Run:  runBlockincallback,
}

func runBlockincallback(pass *Pass) []Finding {
	w := &callbackWalker{
		pass:    pass,
		visited: make(map[types.Object]bool),
		dedup:   make(map[string]bool),
	}
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch node := n.(type) {
			case *ast.CallExpr:
				w.rootsFromCall(node)
			case *ast.ValueSpec:
				if node.Type != nil && isHandlerType(pass.Pkg.Info.Types[node.Type].Type) {
					for _, v := range node.Values {
						w.walkRoot(v, pass.Pkg)
					}
				}
			case *ast.AssignStmt:
				for i, rhs := range node.Rhs {
					if i < len(node.Lhs) && isHandlerType(pass.Pkg.Info.Types[node.Lhs[i]].Type) {
						w.walkRoot(rhs, pass.Pkg)
					}
				}
			}
			return true
		})
	}
	return w.findings
}

// isHandlerType reports whether t is the named type ygm.Handler.
func isHandlerType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Handler" && obj.Pkg() != nil && obj.Pkg().Path() == ygmPkg
}

type callbackWalker struct {
	pass     *Pass
	visited  map[types.Object]bool
	dedup    map[string]bool
	findings []Finding
}

// rootsFromCall extracts handler roots from one call expression: either
// a Handler(...) conversion, or arguments whose parameter type is
// Handler.
func (w *callbackWalker) rootsFromCall(call *ast.CallExpr) {
	info := w.pass.Pkg.Info
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		if isHandlerType(tv.Type) && len(call.Args) == 1 {
			w.walkRoot(call.Args[0], w.pass.Pkg)
		}
		return
	}
	fn := calleeOf(info, call)
	if fn == nil {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		idx := i
		if sig.Variadic() && idx >= params.Len()-1 {
			idx = params.Len() - 1
		}
		if idx >= params.Len() {
			break
		}
		pt := params.At(idx).Type()
		if sig.Variadic() && idx == params.Len()-1 {
			if slice, ok := pt.(*types.Slice); ok && !hasEllipsis(call) {
				pt = slice.Elem()
			}
		}
		if isHandlerType(pt) {
			w.walkRoot(arg, w.pass.Pkg)
		}
	}
}

func hasEllipsis(call *ast.CallExpr) bool { return call.Ellipsis.IsValid() }

// walkRoot follows one handler-valued expression: a literal is walked in
// place, a function reference is resolved and its declaration walked.
func (w *callbackWalker) walkRoot(expr ast.Expr, pkg *Package) {
	switch e := ast.Unparen(expr).(type) {
	case *ast.FuncLit:
		pos := pkg.Fset.Position(e.Pos())
		root := fmt.Sprintf("handler literal at %s:%d", shortFile(pos.Filename), pos.Line)
		w.walkBody(e.Body, pkg, root, nil)
	case *ast.Ident, *ast.SelectorExpr:
		if fn := refTarget(pkg.Info, e); fn != nil {
			w.walkFunc(fn, fmt.Sprintf("handler %s", fn.Name()), nil)
		}
	}
}

// refTarget resolves an identifier or selector used as a function value.
func refTarget(info *types.Info, e ast.Expr) *types.Func {
	switch v := e.(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[v].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if fn, ok := info.Uses[v.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// walkFunc walks into a module-declared function unless it lives in a
// trusted framework package or was already visited.
func (w *callbackWalker) walkFunc(fn *types.Func, root string, path []string) {
	if w.visited[fn] {
		return
	}
	w.visited[fn] = true
	decl := w.pass.Index.Lookup(fn)
	if decl == nil {
		return
	}
	w.walkBody(decl.Decl.Body, decl.Pkg, root, append(path, fn.Name()))
}

// walkBody scans one function body for blocking calls and recurses into
// static callees.
func (w *callbackWalker) walkBody(body *ast.BlockStmt, pkg *Package, root string, path []string) {
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeOf(pkg.Info, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		key := fn.Pkg().Path() + "." + fn.Name()
		if reason, blocked := blockingFuncs[key]; blocked {
			w.report(pkg, call, fn, reason, root, path)
			return true
		}
		if !trustedFrameworkPkgs[fn.Pkg().Path()] {
			w.walkFunc(fn, root, path)
		}
		return true
	})
}

func (w *callbackWalker) report(pkg *Package, call *ast.CallExpr, fn *types.Func, reason, root string, path []string) {
	pos := pkg.Fset.Position(call.Pos())
	via := ""
	if len(path) > 0 {
		via = fmt.Sprintf(" (reached via %s)", strings.Join(path, " -> "))
	}
	msg := fmt.Sprintf("%s %s and must not be reachable from a mailbox receive callback (%s)%s",
		fn.Name(), reason, root, via)
	key := fmt.Sprintf("%s:%d:%d:%s", pos.Filename, pos.Line, pos.Column, msg)
	if w.dedup[key] {
		return
	}
	w.dedup[key] = true
	w.findings = append(w.findings, Finding{Pos: pos, Analyzer: "blockincallback", Message: msg})
}

// shortFile trims the path to its last two components for readable root
// descriptions.
func shortFile(path string) string {
	parts := strings.Split(path, "/")
	if len(parts) <= 2 {
		return path
	}
	return strings.Join(parts[len(parts)-2:], "/")
}
