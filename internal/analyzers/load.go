package analyzers

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Package is one loaded, parsed and type-checked package.
type Package struct {
	// Path is the import path ("ygm/internal/transport", or a synthetic
	// path for fixture packages loaded with LoadDir).
	Path string
	// Dir is the directory the files were read from.
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader parses and type-checks the module's packages using only the
// standard library: module-internal imports resolve against packages the
// loader has already checked, and standard-library imports are
// type-checked from $GOROOT/src by go/importer's "source" mode. Test
// files are not loaded.
type Loader struct {
	ModuleRoot string
	ModulePath string

	ctx  build.Context
	fset *token.FileSet
	std  types.Importer
	pkgs map[string]*Package
}

// NewLoader returns a loader rooted at the directory containing go.mod.
// Extra build tags (e.g. "ygmcheck") select the matching file set.
func NewLoader(moduleRoot string, tags ...string) (*Loader, error) {
	modPath, err := modulePath(filepath.Join(moduleRoot, "go.mod"))
	if err != nil {
		return nil, err
	}
	ctx := build.Default
	ctx.BuildTags = append(append([]string{}, ctx.BuildTags...), tags...)
	fset := token.NewFileSet()
	return &Loader{
		ModuleRoot: moduleRoot,
		ModulePath: modPath,
		ctx:        ctx,
		fset:       fset,
		std:        importer.ForCompiler(fset, "source", nil),
		pkgs:       make(map[string]*Package),
	}, nil
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", fmt.Errorf("analyzers: reading module file: %w", err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			p := strings.TrimSpace(rest)
			if unq, err := strconv.Unquote(p); err == nil {
				p = unq
			}
			if p != "" {
				return p, nil
			}
		}
	}
	return "", fmt.Errorf("analyzers: no module directive in %s", gomod)
}

// Fset returns the loader's shared file set.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// Packages returns every module package loaded so far, sorted by path.
func (l *Loader) Packages() []*Package {
	out := make([]*Package, 0, len(l.pkgs))
	for _, p := range l.pkgs {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out
}

// LoadAll discovers, parses and type-checks every package under the
// module root (skipping testdata, hidden and underscore directories) and
// returns them sorted by import path.
func (l *Loader) LoadAll() ([]*Package, error) {
	var dirs []string
	err := filepath.WalkDir(l.ModuleRoot, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != l.ModuleRoot && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		dirs = append(dirs, path)
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("analyzers: walking module: %w", err)
	}

	type parsed struct {
		path    string
		dir     string
		files   []*ast.File
		imports map[string]bool
	}
	byPath := make(map[string]*parsed)
	var order []string
	for _, dir := range dirs {
		bp, err := l.ctx.ImportDir(dir, 0)
		if err != nil {
			if _, ok := err.(*build.NoGoError); ok {
				continue
			}
			return nil, fmt.Errorf("analyzers: scanning %s: %w", dir, err)
		}
		rel, err := filepath.Rel(l.ModuleRoot, dir)
		if err != nil {
			return nil, err
		}
		impPath := l.ModulePath
		if rel != "." {
			impPath = l.ModulePath + "/" + filepath.ToSlash(rel)
		}
		p := &parsed{path: impPath, dir: dir, imports: make(map[string]bool)}
		for _, name := range bp.GoFiles {
			f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("analyzers: %w", err)
			}
			p.files = append(p.files, f)
			for _, imp := range f.Imports {
				if ip, err := strconv.Unquote(imp.Path.Value); err == nil {
					p.imports[ip] = true
				}
			}
		}
		byPath[impPath] = p
		order = append(order, impPath)
	}
	sort.Strings(order)

	// Type-check in dependency order (DFS over module-internal imports).
	var visit func(path string, stack []string) error
	state := make(map[string]int) // 0 unvisited, 1 visiting, 2 done
	visit = func(path string, stack []string) error {
		switch state[path] {
		case 1:
			return fmt.Errorf("analyzers: import cycle: %s", strings.Join(append(stack, path), " -> "))
		case 2:
			return nil
		}
		state[path] = 1
		p := byPath[path]
		for imp := range p.imports {
			if byPath[imp] != nil {
				if err := visit(imp, append(stack, path)); err != nil {
					return err
				}
			}
		}
		state[path] = 2
		pkg, err := l.check(p.path, p.dir, p.files)
		if err != nil {
			return err
		}
		l.pkgs[path] = pkg
		return nil
	}
	for _, path := range order {
		if err := visit(path, nil); err != nil {
			return nil, err
		}
	}
	return l.Packages(), nil
}

// LoadDir parses and type-checks one extra directory (e.g. an analyzer
// test fixture under testdata) as the given synthetic import path. The
// module's packages must have been loaded first so the fixture's
// module-internal imports resolve.
func (l *Loader) LoadDir(dir, importPath string) (*Package, error) {
	bp, err := l.ctx.ImportDir(dir, 0)
	if err != nil {
		return nil, fmt.Errorf("analyzers: scanning %s: %w", dir, err)
	}
	var files []*ast.File
	for _, name := range bp.GoFiles {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analyzers: %w", err)
		}
		files = append(files, f)
	}
	return l.check(importPath, dir, files)
}

// check runs the type checker over one package's files.
func (l *Loader) check(path, dir string, files []*ast.File) (*Package, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
	var errs []error
	conf := types.Config{
		Importer: l,
		Error: func(err error) {
			if len(errs) < 10 {
				errs = append(errs, err)
			}
		},
	}
	tpkg, _ := conf.Check(path, l.fset, files, info)
	if len(errs) > 0 {
		msgs := make([]string, len(errs))
		for i, e := range errs {
			msgs[i] = e.Error()
		}
		return nil, fmt.Errorf("analyzers: type errors in %s:\n  %s", path, strings.Join(msgs, "\n  "))
	}
	return &Package{Path: path, Dir: dir, Fset: l.fset, Files: files, Types: tpkg, Info: info}, nil
}

// Import implements types.Importer: module-internal paths resolve to
// already-checked packages, everything else is delegated to the
// standard-library source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
		if p, ok := l.pkgs[path]; ok {
			return p.Types, nil
		}
		return nil, fmt.Errorf("analyzers: module package %s not loaded (dependency order bug?)", path)
	}
	return l.std.Import(path)
}
