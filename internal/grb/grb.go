// Package grb is a minimal GraphBLAS-style layer built on top of the YGM
// mailbox — the future-work direction Section VII names ("we are
// considering building GraphBLAS on top of YGM"). It provides distributed
// sparse matrices (1D column partition, CSC blocks), distributed dense
// vectors, semirings, and a matrix-vector product whose scatter of
// partial products rides the mailbox's coalescing and routing. Graph
// algorithms compose from semiring MxV: BFS is (min,plus) iteration with
// unit weights, reachability is boolean or/and, and so on.
package grb

import (
	"fmt"
	"math"

	"ygm/internal/codec"
	"ygm/internal/collective"
	"ygm/internal/graph"
	"ygm/internal/machine"
	"ygm/internal/spmat"
	"ygm/internal/transport"
	"ygm/internal/ygm"
)

// Semiring bundles the add monoid and multiply operator of a GraphBLAS
// semiring over float64.
type Semiring struct {
	Name string
	// Zero is the identity of Add. For the provided semirings it also
	// annihilates Mul (a Mul Zero == Zero), so Zero-valued vector
	// entries generate no messages — sparse-frontier behaviour.
	Zero float64
	Add  func(a, b float64) float64
	Mul  func(a, b float64) float64
}

// PlusTimes is ordinary linear algebra.
var PlusTimes = Semiring{
	Name: "plus-times",
	Zero: 0,
	Add:  func(a, b float64) float64 { return a + b },
	Mul:  func(a, b float64) float64 { return a * b },
}

// MinPlus is the tropical semiring of shortest paths.
var MinPlus = Semiring{
	Name: "min-plus",
	Zero: math.Inf(1),
	Add:  math.Min,
	Mul:  func(a, b float64) float64 { return a + b },
}

// OrAnd is boolean reachability over {0,1}.
var OrAnd = Semiring{
	Name: "or-and",
	Zero: 0,
	Add:  func(a, b float64) float64 { return math.Max(a, b) },
	Mul:  func(a, b float64) float64 { return math.Min(a, b) },
}

// Context owns the mailbox shared by all grb operations of one rank.
// Operations are collective: every rank must perform the same sequence.
type Context struct {
	p     *transport.Proc
	mb    ygm.Box
	comm  *collective.Comm
	world int

	// in-flight operation state, driven by the shared handler
	buildEntries *[]spmat.Triplet
	accumY       []float64
	accumAdd     func(a, b float64) float64
}

// Message type bytes of the grb mailbox protocol.
const (
	grbMsgEntry = 0 // [row, localCol?, bits] matrix entry for the receiver
	grbMsgAccum = 1 // [localRow, bits]      y accumulation
)

// NewContext creates the per-rank grb state. Collective.
func NewContext(p *transport.Proc, opts ...ygm.Option) *Context {
	ctx := &Context{p: p, world: p.WorldSize(), comm: collective.World(p)}
	ctx.mb = ygm.New(p, ctx.handle, opts...)
	return ctx
}

func (ctx *Context) handle(s ygm.Sender, payload []byte) {
	r := codec.NewReader(payload)
	typ, err := r.Byte()
	if err != nil {
		panic(fmt.Sprintf("grb: corrupt message: %v", err))
	}
	switch typ {
	case grbMsgEntry:
		if ctx.buildEntries == nil {
			panic("grb: matrix entry outside a build")
		}
		row, err1 := r.Uvarint()
		col, err2 := r.Uvarint()
		bits, err3 := r.Uvarint()
		if err1 != nil || err2 != nil || err3 != nil {
			panic("grb: corrupt matrix entry")
		}
		*ctx.buildEntries = append(*ctx.buildEntries, spmat.Triplet{
			Row: row, Col: col, Val: math.Float64frombits(bits),
		})
	case grbMsgAccum:
		if ctx.accumY == nil {
			panic("grb: accumulation outside an MxV")
		}
		l, err1 := r.Uvarint()
		bits, err2 := r.Uvarint()
		if err1 != nil || err2 != nil {
			panic("grb: corrupt accumulation")
		}
		ctx.accumY[l] = ctx.accumAdd(ctx.accumY[l], math.Float64frombits(bits))
	default:
		panic(fmt.Sprintf("grb: unknown message type %d", typ))
	}
}

// Matrix is an n x n sparse matrix, columns distributed round-robin.
type Matrix struct {
	n     uint64
	block *spmat.CSC // local columns, rows global
}

// N returns the matrix dimension.
func (m *Matrix) N() uint64 { return m.n }

// NNZ returns the locally stored nonzero count.
func (m *Matrix) NNZ() int { return m.block.NNZ() }

// BuildMatrix assembles an n x n matrix from each rank's triplet share
// (global row/col ids); entries are routed to their column owners
// through the mailbox. Collective.
func (ctx *Context) BuildMatrix(n uint64, mine []spmat.Triplet) (*Matrix, error) {
	if n == 0 {
		return nil, fmt.Errorf("grb: empty matrix")
	}
	var entries []spmat.Triplet
	ctx.buildEntries = &entries
	for _, t := range mine {
		if t.Row >= n || t.Col >= n {
			ctx.buildEntries = nil
			return nil, fmt.Errorf("grb: entry (%d,%d) outside %d x %d", t.Row, t.Col, n, n)
		}
		owner := machine.Rank(graph.Owner(t.Col, ctx.world))
		w := codec.NewWriter(24)
		w.Byte(grbMsgEntry)
		w.Uvarint(t.Row)
		w.Uvarint(graph.LocalID(t.Col, ctx.world)) // pre-localized for the owner
		w.Uvarint(math.Float64bits(t.Val))
		ctx.mb.Send(owner, w.Bytes())
	}
	ctx.mb.WaitEmpty()
	ctx.buildEntries = nil
	localCols := graph.LocalCount(n, ctx.world, int(ctx.p.Rank()))
	block, err := spmat.NewCSC(int(localCols), entries)
	if err != nil {
		return nil, err
	}
	return &Matrix{n: n, block: block}, nil
}

// Vector is a dense distributed vector, entries round-robin like matrix
// columns.
type Vector struct {
	n     uint64
	local []float64
}

// NewVector returns a vector of dimension n filled with fill.
func (ctx *Context) NewVector(n uint64, fill float64) *Vector {
	local := make([]float64, graph.LocalCount(n, ctx.world, int(ctx.p.Rank())))
	for i := range local {
		local[i] = fill
	}
	return &Vector{n: n, local: local}
}

// N returns the vector dimension.
func (v *Vector) N() uint64 { return v.n }

// SetGlobal assigns value to global index i if this rank owns it.
func (ctx *Context) SetGlobal(v *Vector, i uint64, value float64) {
	if graph.Owner(i, ctx.world) == int(ctx.p.Rank()) {
		v.local[graph.LocalID(i, ctx.world)] = value
	}
}

// GetLocal returns the locally owned slice (global id = l*P + rank).
func (v *Vector) GetLocal() []float64 { return v.local }

// MxV computes y = A (semiring) x: y_i = Add_j Mul(A_ij, x_j). Partial
// products scatter to row owners through the mailbox; Zero-valued x
// entries are skipped (Zero annihilates Mul for the provided semirings).
// Collective.
func (ctx *Context) MxV(s Semiring, a *Matrix, x *Vector) (*Vector, error) {
	if a.n != x.n {
		return nil, fmt.Errorf("grb: dimension mismatch %d vs %d", a.n, x.n)
	}
	y := ctx.NewVector(a.n, s.Zero)
	ctx.accumY = y.local
	ctx.accumAdd = s.Add
	me := int(ctx.p.Rank())
	cpm := ctx.p.Model().ComputePerMessage
	for c := 0; c < a.block.NumCols(); c++ {
		xj := x.local[c]
		if xj == s.Zero {
			continue
		}
		a.block.ForEachInCol(c, func(row uint64, val float64) {
			ctx.p.Compute(cpm)
			prod := s.Mul(val, xj)
			if owner := graph.Owner(row, ctx.world); owner == me {
				l := graph.LocalID(row, ctx.world)
				y.local[l] = s.Add(y.local[l], prod)
			} else {
				w := codec.NewWriter(20)
				w.Byte(grbMsgAccum)
				w.Uvarint(graph.LocalID(row, ctx.world))
				w.Uvarint(math.Float64bits(prod))
				ctx.mb.Send(machine.Rank(owner), w.Bytes())
			}
		})
	}
	ctx.mb.WaitEmpty()
	ctx.accumY = nil
	ctx.accumAdd = nil
	return y, nil
}

// EWiseAdd returns the elementwise Add of two vectors.
func (ctx *Context) EWiseAdd(s Semiring, a, b *Vector) (*Vector, error) {
	if a.n != b.n {
		return nil, fmt.Errorf("grb: dimension mismatch %d vs %d", a.n, b.n)
	}
	out := ctx.NewVector(a.n, s.Zero)
	for i := range out.local {
		out.local[i] = s.Add(a.local[i], b.local[i])
	}
	return out, nil
}

// Equal reports whether two vectors are elementwise identical on every
// rank. Collective.
func (ctx *Context) Equal(a, b *Vector) bool {
	same := uint64(1)
	if a.n != b.n {
		same = 0
	} else {
		for i := range a.local {
			if a.local[i] != b.local[i] {
				same = 0
				break
			}
		}
	}
	return ctx.comm.AllreduceU64([]uint64{same}, collective.MinU64)[0] == 1
}

// ReduceScalar Add-reduces every entry of v to a single global value.
// Collective.
func (ctx *Context) ReduceScalar(s Semiring, v *Vector) float64 {
	acc := s.Zero
	for _, x := range v.local {
		acc = s.Add(acc, x)
	}
	return ctx.comm.AllreduceF64([]float64{acc}, s.Add)[0]
}

// BFSLevels computes BFS levels from root via (min,plus) iteration with
// unit weights: dist' = min(dist, A^T-relax(dist) + 1) until fixpoint.
// Unreached vertices hold +Inf. Collective.
func (ctx *Context) BFSLevels(a *Matrix, root uint64) (*Vector, error) {
	if root >= a.n {
		return nil, fmt.Errorf("grb: root %d outside %d", root, a.n)
	}
	dist := ctx.NewVector(a.n, MinPlus.Zero)
	ctx.SetGlobal(dist, root, 0)
	for {
		next, err := ctx.MxV(MinPlus, a, dist)
		if err != nil {
			return nil, err
		}
		merged, err := ctx.EWiseAdd(MinPlus, dist, next)
		if err != nil {
			return nil, err
		}
		if ctx.Equal(merged, dist) {
			return dist, nil
		}
		dist = merged
	}
}
