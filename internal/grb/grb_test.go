package grb

import (
	"fmt"
	"math"
	"sync"
	"testing"

	"ygm/internal/graph"
	"ygm/internal/machine"
	"ygm/internal/netsim"
	"ygm/internal/spmat"
	"ygm/internal/transport"
	"ygm/internal/ygm"
)

func runGrb(t *testing.T, nodes, cores int, body func(ctx *Context) error) {
	t.Helper()
	_, err := transport.Run(transport.Config{
		Topo:  machine.New(nodes, cores),
		Model: netsim.Quartz(),
		Seed:  17,
	}, func(p *transport.Proc) error {
		return body(NewContext(p, ygm.WithScheme(machine.NLNR), ygm.WithCapacity(128)))
	})
	if err != nil {
		t.Fatal(err)
	}
}

// gatherVector collects a distributed vector into a dense slice for
// assertions (test-side, via shared memory).
type vecGather struct {
	mu  sync.Mutex
	out []float64
}

func (vg *vecGather) put(ctx *Context, v *Vector) {
	vg.mu.Lock()
	defer vg.mu.Unlock()
	if vg.out == nil {
		vg.out = make([]float64, v.N())
	}
	for l, val := range v.GetLocal() {
		vg.out[graph.GlobalID(uint64(l), ctx.world, int(ctx.p.Rank()))] = val
	}
}

func TestBuildAndMxVPlusTimes(t *testing.T) {
	// A = [[1 2 0],[0 0 3],[4 0 0]] (3x3... use n=4 with an empty slot),
	// x = [1, 10, 100, 0].
	entries := []spmat.Triplet{
		{Row: 0, Col: 0, Val: 1}, {Row: 0, Col: 1, Val: 2},
		{Row: 1, Col: 2, Val: 3}, {Row: 2, Col: 0, Val: 4},
	}
	want := []float64{21, 300, 4, 0}
	vg := &vecGather{}
	runGrb(t, 2, 2, func(ctx *Context) error {
		var mine []spmat.Triplet
		if ctx.p.Rank() == 1 {
			mine = entries // one rank contributes everything
		}
		a, err := ctx.BuildMatrix(4, mine)
		if err != nil {
			return err
		}
		x := ctx.NewVector(4, 0)
		for j, v := range []float64{1, 10, 100, 0} {
			ctx.SetGlobal(x, uint64(j), v)
		}
		y, err := ctx.MxV(PlusTimes, a, x)
		if err != nil {
			return err
		}
		vg.put(ctx, y)
		return nil
	})
	for i, w := range want {
		if math.Abs(vg.out[i]-w) > 1e-12 {
			t.Fatalf("y = %v, want %v", vg.out, want)
		}
	}
}

// TestMxVMatchesSpMVSeq cross-checks the semiring product against the
// plain sequential oracle on a random matrix.
func TestMxVMatchesSpMVSeq(t *testing.T) {
	const n = 128
	var trips []spmat.Triplet
	g := graph.NewRMAT(graph.Uniform4, 7, 5)
	for k := 0; k < 300; k++ {
		e := g.Next()
		trips = append(trips, spmat.Triplet{Row: e.V, Col: e.U, Val: 1 + float64(k%7)})
	}
	x := make([]float64, n)
	for j := range x {
		x[j] = float64(j%13) - 4
	}
	want := spmat.SpMVSeq(trips, x)
	vg := &vecGather{}
	runGrb(t, 2, 3, func(ctx *Context) error {
		// Split the triplets round-robin across ranks.
		var mine []spmat.Triplet
		for k, tr := range trips {
			if k%ctx.world == int(ctx.p.Rank()) {
				mine = append(mine, tr)
			}
		}
		a, err := ctx.BuildMatrix(n, mine)
		if err != nil {
			return err
		}
		xv := ctx.NewVector(n, 0)
		for j := uint64(0); j < n; j++ {
			ctx.SetGlobal(xv, j, x[j])
		}
		y, err := ctx.MxV(PlusTimes, a, xv)
		if err != nil {
			return err
		}
		vg.put(ctx, y)
		return nil
	})
	for i := range want {
		if math.Abs(vg.out[i]-want[i]) > 1e-9 {
			t.Fatalf("y[%d] = %g, want %g", i, vg.out[i], want[i])
		}
	}
}

func TestBFSLevelsViaMinPlus(t *testing.T) {
	// Path 0-1-2-3 plus isolated 4..7: levels 0,1,2,3, Inf...
	edges := []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}}
	vg := &vecGather{}
	runGrb(t, 2, 2, func(ctx *Context) error {
		var mine []spmat.Triplet
		if ctx.p.Rank() == 0 {
			for _, e := range edges { // undirected: both orientations
				mine = append(mine,
					spmat.Triplet{Row: e.V, Col: e.U, Val: 1},
					spmat.Triplet{Row: e.U, Col: e.V, Val: 1})
			}
		}
		a, err := ctx.BuildMatrix(8, mine)
		if err != nil {
			return err
		}
		dist, err := ctx.BFSLevels(a, 0)
		if err != nil {
			return err
		}
		vg.put(ctx, dist)
		return nil
	})
	want := []float64{0, 1, 2, 3}
	for i, w := range want {
		if vg.out[i] != w {
			t.Fatalf("levels = %v", vg.out)
		}
	}
	for i := 4; i < 8; i++ {
		if !math.IsInf(vg.out[i], 1) {
			t.Fatalf("vertex %d should be unreached: %v", i, vg.out)
		}
	}
}

// TestBFSLevelsOnRMAT cross-checks the GraphBLAS BFS against a direct
// sequential BFS on a generated graph.
func TestBFSLevelsOnRMAT(t *testing.T) {
	const scale, edges = 7, 300
	n := uint64(1) << scale
	all := graph.Collect(graph.NewRMAT(graph.Graph500, scale, 99), edges)
	// Sequential oracle.
	adj := make([][]uint64, n)
	for _, e := range all {
		adj[e.U] = append(adj[e.U], e.V)
		adj[e.V] = append(adj[e.V], e.U)
	}
	want := make([]float64, n)
	for i := range want {
		want[i] = math.Inf(1)
	}
	want[0] = 0
	queue := []uint64{0}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range adj[u] {
			if math.IsInf(want[v], 1) {
				want[v] = want[u] + 1
				queue = append(queue, v)
			}
		}
	}
	vg := &vecGather{}
	runGrb(t, 3, 2, func(ctx *Context) error {
		var mine []spmat.Triplet
		for k, e := range all {
			if k%ctx.world != int(ctx.p.Rank()) {
				continue
			}
			mine = append(mine,
				spmat.Triplet{Row: e.V, Col: e.U, Val: 1},
				spmat.Triplet{Row: e.U, Col: e.V, Val: 1})
		}
		a, err := ctx.BuildMatrix(n, mine)
		if err != nil {
			return err
		}
		dist, err := ctx.BFSLevels(a, 0)
		if err != nil {
			return err
		}
		vg.put(ctx, dist)
		return nil
	})
	for i := range want {
		if vg.out[i] != want[i] {
			t.Fatalf("level(%d) = %v, want %v", i, vg.out[i], want[i])
		}
	}
}

func TestReduceScalarAndEWise(t *testing.T) {
	runGrb(t, 2, 2, func(ctx *Context) error {
		v := ctx.NewVector(10, 1)
		if got := ctx.ReduceScalar(PlusTimes, v); got != 10 {
			return fmt.Errorf("sum = %g", got)
		}
		w := ctx.NewVector(10, 0)
		ctx.SetGlobal(w, 3, 5)
		m, err := ctx.EWiseAdd(PlusTimes, v, w)
		if err != nil {
			return err
		}
		if got := ctx.ReduceScalar(PlusTimes, m); got != 15 {
			return fmt.Errorf("ewise sum = %g", got)
		}
		if got := ctx.ReduceScalar(MinPlus, w); got != 0 {
			return fmt.Errorf("min = %g", got)
		}
		return nil
	})
}

func TestGrbErrors(t *testing.T) {
	runGrb(t, 1, 2, func(ctx *Context) error {
		if _, err := ctx.BuildMatrix(0, nil); err == nil {
			return fmt.Errorf("empty matrix accepted")
		}
		if _, err := ctx.BuildMatrix(4, []spmat.Triplet{{Row: 9, Col: 0}}); err == nil {
			return fmt.Errorf("out-of-range entry accepted")
		}
		a, err := ctx.BuildMatrix(4, nil)
		if err != nil {
			return err
		}
		x := ctx.NewVector(8, 0)
		if _, err := ctx.MxV(PlusTimes, a, x); err == nil {
			return fmt.Errorf("dimension mismatch accepted")
		}
		b := ctx.NewVector(4, 0)
		if _, err := ctx.EWiseAdd(PlusTimes, x, b); err == nil {
			return fmt.Errorf("ewise mismatch accepted")
		}
		if _, err := ctx.BFSLevels(a, 99); err == nil {
			return fmt.Errorf("bad root accepted")
		}
		return nil
	})
}
