// Package container provides YGM's headline user-facing feature: owner-
// computes partitioned storage containers (Map, Set, Bag, Counter)
// layered purely on the asynchronous mailbox. Insertions, erasures, and
// visitor RPCs may be issued from any rank at any time; each key lives
// on exactly one owning rank (chosen by a pluggable Partitioner) and
// every mutation is shipped there as a fire-and-forget mailbox message.
// Quiescence — "all issued operations have been applied" — is the
// mailbox's own termination-detected WaitEmpty, extended by the engine
// to cover the reply stream of AsyncVisitFetch.
//
// The package is a thin veneer: it adds no communication path of its
// own. Container traffic is ordinary coalesced mailbox traffic (the
// zero-alloc exchange hot path), and fetch replies ride a point-to-point
// transport tag carved from the collective tag space, so the PR 7
// synchronizability oracle and the delivery oracle judge container
// workloads exactly as they judge raw mailbox workloads.
package container

import (
	"fmt"

	"ygm/internal/codec"
	"ygm/internal/collective"
	"ygm/internal/machine"
	"ygm/internal/transport"
	"ygm/internal/ygm"
)

// Operation opcodes, shared by every container type. One engine message
// is [cid uvarint][op byte][op-specific fields]; all variable-length
// fields are length-prefixed (codec Bytes0/String framing).
const (
	opInsert byte = iota + 1 // key, value
	opErase                  // key
	opAdd                    // delta, key (counter accumulation)
	opVisit                  // visitor id, key, arg
	opFetch                  // visitor id, fetch id, caller, key, arg
)

// instance is the owner-side face of one container: the engine decodes
// the common frame and hands the fields to the instance registered under
// the message's container id.
type instance interface {
	applyInsert(key, val []byte)
	applyErase(key []byte)
	applyAdd(key []byte, delta uint64)
	runVisit(vid uint64, key, arg []byte)
	runFetch(vid uint64, key, arg []byte, reply *codec.Writer)
	localLen() uint64
}

// Engine multiplexes any number of containers over one mailbox. All
// ranks must construct their engines, containers, and visitor
// registrations collectively in the same order: container ids and
// visitor ids are assigned sequentially, and matching ids on every rank
// is what makes a shipped operation run the right code on the owner.
//
// An Engine (like the mailbox under it) is confined to its rank's
// goroutine.
type Engine struct {
	mb       ygm.Box
	p        *transport.Proc
	comm     *collective.Comm
	replyTag transport.Tag

	conts []instance

	// writers and readers are depth-indexed scratch stacks. Handlers may
	// issue container operations of their own (chained visits), and a
	// self-owned operation delivers synchronously inside the issuing
	// call, so encode/decode scratch must nest: each logical operation
	// pushes a slot, and anything it triggers uses deeper slots. Slots
	// are allocated once and reused, keeping the steady state clean.
	writers []*codec.Writer
	wDepth  int
	readers []*codec.Reader
	rDepth  int

	// Fetch plumbing: callbacks for replies this rank is waiting on,
	// keyed by a locally unique fetch id. outstanding counts issued
	// fetches whose callback has not run yet.
	fetches     map[uint64]func(reply []byte)
	nextFetch   uint64
	outstanding uint64
}

// NewEngine builds the container engine for this rank. Collective: every
// rank must call it at the same point in its construction sequence (the
// world communicator underneath draws a CommNonce). Options are passed
// through to ygm.New, so callers pick the exchange variant, routing
// scheme, and capacity exactly as for a raw mailbox.
func NewEngine(p *transport.Proc, opts ...ygm.Option) *Engine {
	e := &Engine{
		p:       p,
		comm:    collective.World(p),
		fetches: make(map[uint64]func(reply []byte)),
	}
	e.replyTag = e.comm.ReplyTag(0)
	e.mb = ygm.New(p, e.handle, opts...)
	return e
}

// Mailbox exposes the engine's mailbox (stats, PendingSends).
func (e *Engine) Mailbox() ygm.Box { return e.mb }

// Proc exposes the transport endpoint the engine runs on.
func (e *Engine) Proc() *transport.Proc { return e.p }

// register assigns the next container id. Collective order matters.
func (e *Engine) register(c instance) uint64 {
	e.conts = append(e.conts, c)
	return uint64(len(e.conts) - 1)
}

// pushWriter returns a reset scratch writer for one encode, nested under
// any encodes already in flight on this rank.
func (e *Engine) pushWriter() *codec.Writer {
	if e.wDepth == len(e.writers) {
		e.writers = append(e.writers, codec.NewWriter(64)) //ygmvet:ignore allocinloop -- depth grows to the chain depth once, then slots are reused
	}
	w := e.writers[e.wDepth]
	e.wDepth++
	w.Reset()
	return w
}

func (e *Engine) popWriter() { e.wDepth-- }

// pushReader returns a reader over payload, nested like pushWriter.
func (e *Engine) pushReader(payload []byte) *codec.Reader {
	if e.rDepth == len(e.readers) {
		e.readers = append(e.readers, codec.NewReader(nil)) //ygmvet:ignore allocinloop -- depth grows to the chain depth once, then slots are reused
	}
	r := e.readers[e.rDepth]
	e.rDepth++
	r.Reset(payload)
	return r
}

func (e *Engine) popReader() {
	e.rDepth--
	// Drop the payload alias: the slot must not outlive the handler's
	// borrow of the (possibly pooled) delivery buffer.
	e.readers[e.rDepth].Reset(nil)
}

// handle is the engine's mailbox handler: decode the common frame, then
// run the operation on the owning container. All fields are decoded
// (as views into the payload, which stays valid for the whole handler)
// before any visitor runs, because a visitor may issue chained
// operations that reuse the scratch stacks underneath us.
//
//ygm:hotpath
func (e *Engine) handle(s ygm.Sender, payload []byte) {
	r := e.pushReader(payload) //ygmvet:ignore payloadescape -- every dispatch arm pops (and nils) the slot before visitors run; the alias never outlives the handler
	cid := e.mustUvarint(r)
	op := e.mustByte(r)
	if cid >= uint64(len(e.conts)) {
		panic(fmt.Sprintf("container: rank %d: message for unregistered container %d", e.p.Rank(), cid))
	}
	c := e.conts[cid]
	switch op {
	case opInsert:
		key := e.mustBytes(r)
		val := e.mustBytes(r)
		e.popReader()
		c.applyInsert(key, val)
	case opErase:
		key := e.mustBytes(r)
		e.popReader()
		c.applyErase(key)
	case opAdd:
		delta := e.mustUvarint(r)
		key := e.mustBytes(r)
		e.popReader()
		c.applyAdd(key, delta)
	case opVisit:
		vid := e.mustUvarint(r)
		key := e.mustBytes(r)
		arg := e.mustBytes(r)
		e.popReader()
		c.runVisit(vid, key, arg)
	case opFetch:
		vid := e.mustUvarint(r)
		fid := e.mustUvarint(r)
		caller := machine.Rank(e.mustUvarint(r))
		key := e.mustBytes(r)
		arg := e.mustBytes(r)
		e.popReader()
		w := e.pushWriter()
		w.Uvarint(fid)
		c.runFetch(vid, key, arg, w)
		e.sendReply(caller, w)
		e.popWriter()
	default:
		panic(fmt.Sprintf("container: rank %d: unknown opcode %d", e.p.Rank(), op))
	}
}

// sendReply routes one encoded fetch reply back to the caller on the
// engine's reply tag. The payload travels in a pooled buffer so the
// steady-state reply cycle stays allocation-free (term.go discipline:
// encode into scratch, copy into an acquired buffer, SendPooled).
func (e *Engine) sendReply(caller machine.Rank, w *codec.Writer) {
	buf := e.p.AcquireBuf(w.Len())
	copy(buf, w.Bytes())
	e.p.SendPooled(caller, e.replyTag, buf)
}

// pumpReplies drains every fetch reply that has arrived and runs its
// callback. Callbacks may issue new container operations (including new
// fetches). Returns the number of callbacks fired.
func (e *Engine) pumpReplies() uint64 {
	var fired uint64
	for {
		pkt := e.p.Drain(e.replyTag)
		if pkt == nil {
			return fired
		}
		r := e.pushReader(pkt.Payload)
		fid := e.mustUvarint(r)
		reply := remaining(r, pkt.Payload)
		e.popReader()
		cb, ok := e.fetches[fid]
		if !ok {
			panic(fmt.Sprintf("container: rank %d: reply for unknown fetch %d", e.p.Rank(), fid))
		}
		delete(e.fetches, fid)
		e.outstanding--
		fired++
		// The callback sees the payload in place; it must not retain the
		// slice (the packet is recycled as soon as the callback returns).
		cb(reply)
		e.p.Recycle(pkt)
	}
}

// Barrier blocks until every container operation issued by any rank —
// including fetch replies in flight and anything their callbacks spawn —
// has been applied. Collective over all ranks.
//
// The loop alternates the mailbox's termination-detected WaitEmpty with
// a reply pump, then agrees globally: only when no rank has outstanding
// fetches and no rank fired a callback since its last WaitEmpty can no
// further work appear anywhere.
func (e *Engine) Barrier() {
	for {
		e.mb.WaitEmpty()
		fired := e.pumpReplies()
		pend := [1]uint64{e.outstanding + fired}
		if e.comm.AllreduceU64(pend[:], collective.SumU64)[0] == 0 {
			return
		}
	}
}

// allreduceSum is the post-Barrier reduction containers use for Size.
func (e *Engine) allreduceSum(v uint64) uint64 {
	vals := [1]uint64{v}
	return e.comm.AllreduceU64(vals[:], collective.SumU64)[0]
}

// asyncFetch registers cb and ships an opFetch to owner. Fetches are
// excluded from the zero-alloc contract (the callback registration
// allocates); the fire-and-forget operations are the hot path.
func (e *Engine) asyncFetch(owner machine.Rank, cid, vid uint64, key, arg []byte, cb func(reply []byte)) {
	fid := e.nextFetch
	e.nextFetch++
	e.fetches[fid] = cb
	e.outstanding++
	w := e.pushWriter()
	w.Uvarint(cid)
	w.Byte(opFetch)
	w.Uvarint(vid)
	w.Uvarint(fid)
	w.Uvarint(uint64(e.p.Rank()))
	w.Bytes0(key)
	w.Bytes0(arg)
	e.mb.Send(owner, w.Bytes())
	e.popWriter()
}

// remaining returns the undecoded tail of r's payload as a view.
func remaining(r *codec.Reader, payload []byte) []byte {
	return payload[r.Offset():]
}

// Decode helpers: corrupt container frames are programming errors (the
// encode side is this same package), so they panic like the mailbox's
// own record parser. The error formatting sits behind the check so the
// happy path stays allocation-free.

func (e *Engine) mustUvarint(r *codec.Reader) uint64 {
	v, err := r.Uvarint()
	if err != nil {
		panic(fmt.Sprintf("container: rank %d: corrupt frame: %v", e.p.Rank(), err))
	}
	return v
}

func (e *Engine) mustByte(r *codec.Reader) byte {
	b, err := r.Byte()
	if err != nil {
		panic(fmt.Sprintf("container: rank %d: corrupt frame: %v", e.p.Rank(), err))
	}
	return b
}

func (e *Engine) mustBytes(r *codec.Reader) []byte {
	b, err := r.Bytes0()
	if err != nil {
		panic(fmt.Sprintf("container: rank %d: corrupt frame: %v", e.p.Rank(), err))
	}
	return b
}
