package container

import (
	"fmt"
	"strconv"
	"testing"

	"ygm/internal/machine"
	"ygm/internal/netsim"
	"ygm/internal/transport"
	"ygm/internal/ygm"
)

// Steady-state allocation pins for the container hot path. A one-rank
// world makes every key self-owned, so each operation runs the complete
// container cycle synchronously inside the call — encode into the
// scratch stack, mailbox self-delivery, frame decode, owner-side apply —
// with no cooperating peer needed inside the measured window. The
// mailbox's own remote exchange cycle (coalesce, pack, pooled send,
// drain) carries container frames as opaque payloads and is pinned
// separately by the internal/ygm alloc tests; together the two pins
// cover the full remote path.
//
// Steady state means keys already live: first-touch inserts allocate
// (key copy, map entry) by design.

const (
	allocKeys   = 64
	allocWarmup = 4
	allocRuns   = 32
)

// skipIfYgmcheck mirrors the ygm pins: the invariant layer's checkf
// calls box their arguments, so instrumented builds legitimately
// allocate.
func skipIfYgmcheck(t *testing.T) {
	t.Helper()
	if ygm.YgmcheckEnabled() {
		t.Skip("ygmcheck invariant layer allocates; pins target the production build")
	}
}

func runAllocPin(t *testing.T, body func(e *Engine) error) {
	t.Helper()
	_, err := transport.Run(transport.Config{
		Topo:  machine.New(1, 1),
		Model: netsim.Quartz(),
		Seed:  5,
	}, func(p *transport.Proc) error {
		e := NewEngine(p,
			ygm.WithExchange(ygm.LazyExchange),
			ygm.WithScheme(machine.NoRoute),
			ygm.WithCapacity(1<<20))
		return body(e)
	})
	if err != nil {
		t.Fatal(err)
	}
}

func allocKeySet() [][]byte {
	keys := make([][]byte, allocKeys)
	for i := range keys {
		keys[i] = strconv.AppendInt(nil, int64(i), 10)
	}
	return keys
}

func TestMapAsyncInsertSteadyStateZeroAlloc(t *testing.T) {
	skipIfYgmcheck(t)
	runAllocPin(t, func(e *Engine) error {
		m := NewMap(e, nil)
		keys := allocKeySet()
		val := []byte("0123456789abcdef")
		insertAll := func() {
			for _, k := range keys {
				m.AsyncInsert(k, val)
			}
		}
		for i := 0; i < allocWarmup; i++ {
			insertAll()
		}
		if avg := testing.AllocsPerRun(allocRuns, insertAll); avg != 0 {
			return fmt.Errorf("map AsyncInsert of %d live keys allocates %.1f allocs/run, want 0", allocKeys, avg)
		}
		return nil
	})
}

func TestMapAsyncVisitSteadyStateZeroAlloc(t *testing.T) {
	skipIfYgmcheck(t)
	runAllocPin(t, func(e *Engine) error {
		m := NewMap(e, nil)
		touched := 0
		vid := m.RegisterVisitor(func(m *Map, k, arg []byte) {
			if _, ok := m.LocalGet(k); ok {
				touched++
			}
		})
		keys := allocKeySet()
		for _, k := range keys {
			m.AsyncInsert(k, []byte("v"))
		}
		visitAll := func() {
			for _, k := range keys {
				m.AsyncVisit(vid, k, nil)
			}
		}
		for i := 0; i < allocWarmup; i++ {
			visitAll()
		}
		if avg := testing.AllocsPerRun(allocRuns, visitAll); avg != 0 {
			return fmt.Errorf("map AsyncVisit of %d live keys allocates %.1f allocs/run, want 0", allocKeys, avg)
		}
		if touched == 0 {
			return fmt.Errorf("visitor never observed a live key")
		}
		return nil
	})
}

func TestCounterAsyncAddSteadyStateZeroAlloc(t *testing.T) {
	skipIfYgmcheck(t)
	runAllocPin(t, func(e *Engine) error {
		c := NewCounter(e, nil)
		keys := allocKeySet()
		addAll := func() {
			for _, k := range keys {
				c.AsyncAdd(k, 3)
			}
		}
		for i := 0; i < allocWarmup; i++ {
			addAll()
		}
		if avg := testing.AllocsPerRun(allocRuns, addAll); avg != 0 {
			return fmt.Errorf("counter AsyncAdd of %d live keys allocates %.1f allocs/run, want 0", allocKeys, avg)
		}
		return nil
	})
}

func TestSetAsyncInsertSteadyStateZeroAlloc(t *testing.T) {
	skipIfYgmcheck(t)
	runAllocPin(t, func(e *Engine) error {
		s := NewSet(e, nil)
		keys := allocKeySet()
		insertAll := func() {
			for _, k := range keys {
				s.AsyncInsert(k)
			}
		}
		for i := 0; i < allocWarmup; i++ {
			insertAll()
		}
		if avg := testing.AllocsPerRun(allocRuns, insertAll); avg != 0 {
			return fmt.Errorf("set AsyncInsert of %d live keys allocates %.1f allocs/run, want 0", allocKeys, avg)
		}
		return nil
	})
}

// TestChainedVisitRemoteSteadyState complements the self-delivery pins
// with a remote smoke check (not an alloc pin): on a two-rank world the
// same operations flow through the real coalescing exchange, and the
// counters must come out identical to the one-rank run.
func TestChainedVisitRemoteSteadyState(t *testing.T) {
	_, err := transport.Run(transport.Config{
		Topo:  machine.New(1, 2),
		Model: netsim.Quartz(),
		Seed:  6,
	}, func(p *transport.Proc) error {
		e := NewEngine(p,
			ygm.WithExchange(ygm.LazyExchange),
			ygm.WithScheme(machine.NoRoute),
			ygm.WithCapacity(64))
		c := NewCounter(e, nil)
		keys := allocKeySet()
		const rounds = allocWarmup + allocRuns
		for i := 0; i < rounds; i++ {
			for _, k := range keys {
				c.AsyncAdd(k, 1)
			}
		}
		e.Barrier()
		world := uint64(p.WorldSize())
		bad := 0
		c.ForAll(func(k string, count uint64) {
			if count != world*rounds {
				bad++
			}
		})
		if bad != 0 {
			return fmt.Errorf("rank %d: %d keys miscounted on the remote path", p.Rank(), bad)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
