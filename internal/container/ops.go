package container

import "ygm/internal/machine"

// Shared fire-and-forget encoders. Each encodes one operation frame into
// a nested scratch slot and queues it on the mailbox; the mailbox copies
// the frame into its coalescing buffer before returning (self-owned keys
// deliver synchronously inside the Send), so the slot is immediately
// reusable. These are the steady-state zero-allocation hot path.

//ygm:hotpath
func (e *Engine) asyncInsert(owner machine.Rank, cid uint64, key, val []byte) {
	w := e.pushWriter()
	w.Uvarint(cid)
	w.Byte(opInsert)
	w.Bytes0(key)
	w.Bytes0(val)
	e.mb.Send(owner, w.Bytes())
	e.popWriter()
}

//ygm:hotpath
func (e *Engine) asyncErase(owner machine.Rank, cid uint64, key []byte) {
	w := e.pushWriter()
	w.Uvarint(cid)
	w.Byte(opErase)
	w.Bytes0(key)
	e.mb.Send(owner, w.Bytes())
	e.popWriter()
}

//ygm:hotpath
func (e *Engine) asyncAdd(owner machine.Rank, cid uint64, key []byte, delta uint64) {
	w := e.pushWriter()
	w.Uvarint(cid)
	w.Byte(opAdd)
	w.Uvarint(delta)
	w.Bytes0(key)
	e.mb.Send(owner, w.Bytes())
	e.popWriter()
}

//ygm:hotpath
func (e *Engine) asyncVisit(owner machine.Rank, cid, vid uint64, key, arg []byte) {
	w := e.pushWriter()
	w.Uvarint(cid)
	w.Byte(opVisit)
	w.Uvarint(vid)
	w.Bytes0(key)
	w.Bytes0(arg)
	e.mb.Send(owner, w.Bytes())
	e.popWriter()
}
