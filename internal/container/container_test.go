package container

import (
	"fmt"
	"strconv"
	"testing"

	"ygm/internal/collective"
	"ygm/internal/machine"
	"ygm/internal/netsim"
	"ygm/internal/transport"
	"ygm/internal/ygm"
)

// variants is the exchange matrix every functional test runs under: the
// container layer must behave identically on all three mailbox designs.
var variants = []struct {
	name string
	opt  ygm.Option
}{
	{"lazy", ygm.WithExchange(ygm.LazyExchange)},
	{"round", ygm.WithExchange(ygm.RoundExchange)},
	{"sync", ygm.WithExchange(ygm.SyncExchange)},
}

// runWorld executes body on every rank of a nodes x cores simulated
// cluster with the given exchange variant already folded into opts.
func runWorld(t *testing.T, nodes, cores int, seed int64, body func(p *transport.Proc) error) {
	t.Helper()
	_, err := transport.Run(transport.Config{
		Topo:  machine.New(nodes, cores),
		Model: netsim.Quartz(),
		Seed:  seed,
	}, body)
	if err != nil {
		t.Fatal(err)
	}
}

func key(i int) []byte { return strconv.AppendInt(nil, int64(i), 10) }

func TestMapInsertEraseSize(t *testing.T) {
	for _, v := range variants {
		v := v
		t.Run(v.name, func(t *testing.T) {
			const perRank = 200
			runWorld(t, 2, 2, 11, func(p *transport.Proc) error {
				e := NewEngine(p, v.opt, ygm.WithScheme(machine.NLNR), ygm.WithCapacity(64))
				m := NewMap(e, nil)
				me := int(p.Rank())
				world := p.WorldSize()
				for i := 0; i < perRank; i++ {
					id := me*perRank + i
					m.AsyncInsert(key(id), []byte(fmt.Sprintf("value-%d", id)))
				}
				if got, want := m.Size(), uint64(world*perRank); got != want {
					return fmt.Errorf("rank %d: size after insert = %d, want %d", me, got, want)
				}
				// Overwrite every key from a *different* rank (last writer
				// wins), then erase the odd half from yet another rank.
				for i := 0; i < perRank; i++ {
					id := ((me+1)%world)*perRank + i
					m.AsyncInsert(key(id), []byte(fmt.Sprintf("value2-%d", id)))
				}
				e.Barrier()
				for i := 0; i < perRank; i++ {
					id := ((me+2)%world)*perRank + i
					if id%2 == 1 {
						m.AsyncErase(key(id))
					}
				}
				if got, want := m.Size(), uint64(world*perRank/2); got != want {
					return fmt.Errorf("rank %d: size after erase = %d, want %d", me, got, want)
				}
				// Every surviving key must hold the overwritten value.
				bad := 0
				m.ForAll(func(k string, val []byte) {
					if string(val) != "value2-"+k {
						bad++
					}
				})
				if bad != 0 {
					return fmt.Errorf("rank %d: %d keys hold stale values", me, bad)
				}
				return nil
			})
		})
	}
}

func TestSetMembership(t *testing.T) {
	for _, v := range variants {
		v := v
		t.Run(v.name, func(t *testing.T) {
			const universe = 300
			runWorld(t, 2, 2, 12, func(p *transport.Proc) error {
				e := NewEngine(p, v.opt, ygm.WithScheme(machine.NoRoute), ygm.WithCapacity(64))
				s := NewSet(e, nil)
				// Every rank inserts the same universe: duplicates collapse.
				for i := 0; i < universe; i++ {
					s.AsyncInsert(key(i))
				}
				if got := s.Size(); got != universe {
					return fmt.Errorf("rank %d: set size = %d, want %d", p.Rank(), got, universe)
				}
				// Rank 0 erases multiples of 3.
				if p.Rank() == 0 {
					for i := 0; i < universe; i += 3 {
						s.AsyncErase(key(i))
					}
				}
				want := uint64(universe - (universe+2)/3)
				if got := s.Size(); got != want {
					return fmt.Errorf("rank %d: set size after erase = %d, want %d", p.Rank(), got, want)
				}
				return nil
			})
		})
	}
}

func TestBagDealsAndSweeps(t *testing.T) {
	for _, v := range variants {
		v := v
		t.Run(v.name, func(t *testing.T) {
			const perRank = 150
			runWorld(t, 2, 2, 13, func(p *transport.Proc) error {
				e := NewEngine(p, v.opt, ygm.WithScheme(machine.NLNR), ygm.WithCapacity(64))
				b := NewBag(e)
				me := int(p.Rank())
				world := p.WorldSize()
				for i := 0; i < perRank; i++ {
					b.AsyncInsert(key(me*perRank + i))
				}
				if got, want := b.Size(), uint64(world*perRank); got != want {
					return fmt.Errorf("rank %d: bag size = %d, want %d", me, got, want)
				}
				// The cyclic dealer must have balanced the shards exactly.
				if got := b.LocalSize(); got != perRank {
					return fmt.Errorf("rank %d: shard size = %d, want %d", me, got, perRank)
				}
				// Global item-id sum via an order-independent sweep.
				var local uint64
				b.ForAll(func(item []byte) {
					id, err := strconv.ParseUint(string(item), 10, 64)
					if err != nil {
						t.Errorf("corrupt bag item %q: %v", item, err)
						return
					}
					local += id
				})
				n := uint64(world * perRank)
				if got, want := e.allreduceSum(local), n*(n-1)/2; got != want {
					return fmt.Errorf("rank %d: bag id sum = %d, want %d", me, got, want)
				}
				return nil
			})
		})
	}
}

func TestCounterAccumulatesAndTopK(t *testing.T) {
	for _, v := range variants {
		v := v
		t.Run(v.name, func(t *testing.T) {
			runWorld(t, 2, 2, 14, func(p *transport.Proc) error {
				e := NewEngine(p, v.opt, ygm.WithScheme(machine.NLNR), ygm.WithCapacity(64))
				c := NewCounter(e, nil)
				world := uint64(p.WorldSize())
				// Every rank contributes i+1 to key i: global count of key i
				// is world*(i+1), making the heavy hitters the high keys.
				const keys = 100
				for i := 0; i < keys; i++ {
					c.AsyncAdd(key(i), uint64(i+1))
				}
				if got := c.Size(); got != keys {
					return fmt.Errorf("rank %d: counter size = %d, want %d", p.Rank(), got, keys)
				}
				bad := 0
				c.ForAll(func(k string, count uint64) {
					id, _ := strconv.ParseUint(k, 10, 64)
					if count != world*(id+1) {
						bad++
					}
				})
				if bad != 0 {
					return fmt.Errorf("rank %d: %d keys accumulated wrong counts", p.Rank(), bad)
				}
				top := c.TopK(3)
				want := []KeyCount{
					{Key: "99", Count: world * 100},
					{Key: "98", Count: world * 99},
					{Key: "97", Count: world * 98},
				}
				if len(top) != len(want) {
					return fmt.Errorf("rank %d: TopK returned %d entries, want %d", p.Rank(), len(top), len(want))
				}
				for i := range want {
					if top[i] != want[i] {
						return fmt.Errorf("rank %d: TopK[%d] = %+v, want %+v", p.Rank(), i, top[i], want[i])
					}
				}
				return nil
			})
		})
	}
}

// TestVisitorMutatesOwnerShard exercises AsyncVisit: a visitor that
// appends the argument to the stored value on the owner, issued from
// every rank against keys it does not own.
func TestVisitorMutatesOwnerShard(t *testing.T) {
	for _, v := range variants {
		v := v
		t.Run(v.name, func(t *testing.T) {
			const keys = 64
			runWorld(t, 2, 2, 15, func(p *transport.Proc) error {
				e := NewEngine(p, v.opt, ygm.WithScheme(machine.NoRoute), ygm.WithCapacity(32))
				m := NewMap(e, nil)
				appendV := m.RegisterVisitor(func(m *Map, k, arg []byte) {
					old, _ := m.LocalGet(k)
					m.LocalPut(k, append(append([]byte{}, old...), arg...))
				})
				if p.Rank() == 0 {
					for i := 0; i < keys; i++ {
						m.AsyncInsert(key(i), nil)
					}
				}
				e.Barrier()
				// Every rank appends one '+' per key; order across ranks is
				// unspecified but the length is exact.
				for i := 0; i < keys; i++ {
					m.AsyncVisit(appendV, key(i), []byte{'+'})
				}
				e.Barrier()
				bad := 0
				m.ForAll(func(k string, val []byte) {
					if len(val) != p.WorldSize() {
						bad++
					}
				})
				if bad != 0 {
					return fmt.Errorf("rank %d: %d keys saw the wrong number of visits", p.Rank(), bad)
				}
				return nil
			})
		})
	}
}

// TestChainedVisitQuiescence is the satellite-2 regression: a visitor
// that chains a further AsyncVisit to a different key (usually on a
// third rank) exactly while the termination detector may be voting.
// Barrier must count the whole chain: after it returns, every visit of
// every chain must have executed on its owner. Runs across a seed sweep
// so chains hit the voting window at many different points.
func TestChainedVisitQuiescence(t *testing.T) {
	const (
		depth    = 8
		perRank  = 24
		numSeeds = 12
	)
	for _, v := range variants {
		v := v
		t.Run(v.name, func(t *testing.T) {
			for seed := int64(0); seed < numSeeds; seed++ {
				runWorld(t, 2, 2, 100+seed, func(p *transport.Proc) error {
					e := NewEngine(p, v.opt, ygm.WithScheme(machine.NLNR), ygm.WithCapacity(16))
					c := NewCounter(e, nil)
					var chain uint64
					chain = c.RegisterVisitor(func(c *Counter, k, arg []byte) {
						ttl := arg[0]
						c.applyAdd(k, 1) // count the hop on the owner
						if ttl > 0 {
							id, _ := strconv.ParseUint(string(k), 10, 64)
							next := splitmix64(id*2654435761 + uint64(ttl))
							c.AsyncVisit(chain, key(int(next%1024)), []byte{ttl - 1})
						}
					})
					world := uint64(p.WorldSize())
					for i := 0; i < perRank; i++ {
						c.AsyncVisit(chain, key(i), []byte{depth - 1})
					}
					e.Barrier()
					var total uint64
					for _, cnt := range c.local {
						total += *cnt
					}
					if got, want := e.allreduceSum(total), world*perRank*depth; got != want {
						return fmt.Errorf("rank %d seed %d: chain hops counted = %d, want %d (premature quiescence)",
							p.Rank(), seed, got, want)
					}
					return nil
				})
			}
		})
	}
}

// TestChainedVisitDetectsForcedVerdict proves the regression above has
// teeth: with the ForceVerdict mutation hook manufacturing a premature
// termination on the lazy detector, the chain count must come up short.
// A mutant the test cannot catch would make the quiescence check vacuous.
func TestChainedVisitDetectsForcedVerdict(t *testing.T) {
	const (
		depth   = 8
		perRank = 24
	)
	forced := 0
	hooks := &ygm.TestHooks{
		ForceVerdict: func(balanced, unchanged bool) bool {
			if !balanced || !unchanged {
				forced++
			}
			return true // declare quiescence no matter what the counters say
		},
	}
	caught := false
	_, err := transport.Run(transport.Config{
		Topo:  machine.New(2, 2),
		Model: netsim.Quartz(),
		Seed:  77,
	}, func(p *transport.Proc) error {
		e := NewEngine(p,
			ygm.WithExchange(ygm.LazyExchange),
			ygm.WithScheme(machine.NLNR),
			ygm.WithCapacity(16),
			ygm.WithHooks(hooks))
		c := NewCounter(e, nil)
		var chain uint64
		chain = c.RegisterVisitor(func(c *Counter, k, arg []byte) {
			ttl := arg[0]
			c.applyAdd(k, 1)
			if ttl > 0 {
				id, _ := strconv.ParseUint(string(k), 10, 64)
				c.AsyncVisit(chain, key(int(splitmix64(id+uint64(ttl))%1024)), []byte{ttl - 1})
			}
		})
		for i := 0; i < perRank; i++ {
			c.AsyncVisit(chain, key(i), []byte{depth - 1})
		}
		e.mb.WaitEmpty() // the forced verdict cuts this short
		var total uint64
		for _, cnt := range c.local {
			total += *cnt
		}
		world := uint64(p.WorldSize())
		got := collective.World(p).AllreduceU64([]uint64{total}, collective.SumU64)[0]
		if p.Rank() == 0 && got < world*perRank*depth {
			caught = true
		}
		return nil
	})
	if err != nil {
		// Under -tags ygmcheck the invariant layer itself convicts the
		// forced verdict (unbalanced counters at the verdict, or records
		// left unflushed) — equally proof the mutant cannot slip through.
		t.Logf("forced verdict caught by the runtime invariant layer: %v", err)
		return
	}
	if forced == 0 {
		t.Skip("forced-verdict window never opened (all chains drained before the vote); nothing to assert")
	}
	if !caught {
		t.Fatal("ForceVerdict mutant ran to completion with all chain hops counted; the quiescence regression is vacuous")
	}
}
