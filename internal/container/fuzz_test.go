package container

import (
	"bytes"
	"testing"

	"ygm/internal/codec"
	"ygm/internal/machine"
)

// FuzzContainerCodecRoundTrip pins the engine's frame layout: every
// operation encoded the way the async ops encode it must decode — with
// the exact helper sequence handle uses — back to the same fields, with
// nothing left over. The opcode selector maps the fuzzer's byte onto the
// five real opcodes so every arm stays covered no matter what bytes the
// fuzzer mutates toward.
func FuzzContainerCodecRoundTrip(f *testing.F) {
	f.Add(uint64(0), byte(0), []byte("key"), []byte("value"), uint64(1), uint64(0))
	f.Add(uint64(1), byte(1), []byte(""), []byte(""), uint64(0), uint64(0))
	f.Add(uint64(2), byte(2), []byte("k"), []byte{}, uint64(1<<40), uint64(3))
	f.Add(uint64(300), byte(3), bytes.Repeat([]byte("x"), 300), []byte{0, 1, 2}, uint64(9), uint64(12))
	f.Add(uint64(1<<50), byte(4), []byte{0xff}, bytes.Repeat([]byte{0}, 64), uint64(7), uint64(1<<33))
	f.Fuzz(func(t *testing.T, cid uint64, opSel byte, key, val []byte, a, b uint64) {
		op := opInsert + opSel%5
		w := codec.NewWriter(64)
		w.Uvarint(cid)
		w.Byte(op)
		switch op {
		case opInsert:
			w.Bytes0(key)
			w.Bytes0(val)
		case opErase:
			w.Bytes0(key)
		case opAdd:
			w.Uvarint(a) // delta
			w.Bytes0(key)
		case opVisit:
			w.Uvarint(a) // vid
			w.Bytes0(key)
			w.Bytes0(val) // arg
		case opFetch:
			w.Uvarint(a) // vid
			w.Uvarint(b) // fid
			w.Uvarint(uint64(machine.Rank(b % 1024)))
			w.Bytes0(key)
			w.Bytes0(val) // arg
		}
		frame := w.Bytes()

		r := codec.NewReader(frame)
		mustU := func() uint64 {
			v, err := r.Uvarint()
			if err != nil {
				t.Fatalf("uvarint: %v (frame %x)", err, frame)
			}
			return v
		}
		mustB := func() []byte {
			v, err := r.Bytes0()
			if err != nil {
				t.Fatalf("bytes0: %v (frame %x)", err, frame)
			}
			return v
		}
		if got := mustU(); got != cid {
			t.Fatalf("cid %d, want %d", got, cid)
		}
		gotOp, err := r.Byte()
		if err != nil || gotOp != op {
			t.Fatalf("op %d (err %v), want %d", gotOp, err, op)
		}
		check := func(name string, got, want []byte) {
			if !bytes.Equal(got, want) {
				t.Fatalf("%s %x, want %x", name, got, want)
			}
		}
		switch op {
		case opInsert:
			check("key", mustB(), key)
			check("val", mustB(), val)
		case opErase:
			check("key", mustB(), key)
		case opAdd:
			if got := mustU(); got != a {
				t.Fatalf("delta %d, want %d", got, a)
			}
			check("key", mustB(), key)
		case opVisit:
			if got := mustU(); got != a {
				t.Fatalf("vid %d, want %d", got, a)
			}
			check("key", mustB(), key)
			check("arg", mustB(), val)
		case opFetch:
			if got := mustU(); got != a {
				t.Fatalf("vid %d, want %d", got, a)
			}
			if got := mustU(); got != b {
				t.Fatalf("fid %d, want %d", got, b)
			}
			if got := mustU(); got != b%1024 {
				t.Fatalf("caller %d, want %d", got, b%1024)
			}
			check("key", mustB(), key)
			check("arg", mustB(), val)
		}
		if r.Remaining() != 0 {
			t.Fatalf("%d trailing bytes after full decode of op %d", r.Remaining(), op)
		}

		// Fetch replies are the one frame decoded outside handle: the fid
		// header plus an opaque tail read as a raw remainder view.
		rw := codec.NewWriter(16)
		rw.Uvarint(b)
		rw.Bytes0(val)
		reply := rw.Bytes()
		rr := codec.NewReader(reply)
		fid, err := rr.Uvarint()
		if err != nil || fid != b {
			t.Fatalf("reply fid %d (err %v), want %d", fid, err, b)
		}
		tailw := codec.NewWriter(16)
		tailw.Bytes0(val)
		if !bytes.Equal(reply[rr.Offset():], tailw.Bytes()) {
			t.Fatalf("reply tail %x, want %x", reply[rr.Offset():], tailw.Bytes())
		}
	})
}
