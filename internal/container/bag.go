package container

import (
	"ygm/internal/codec"
	"ygm/internal/machine"
)

// Bag is a distributed unordered multiset of byte-string items. Items
// have no key and no owner-by-content: AsyncInsert deals items out
// cyclically (starting from the inserting rank, so a single producer
// still spreads load), and ForAll sweeps every shard. The YGM idiom for
// work queues and edge lists.
type Bag struct {
	e     *Engine
	cid   uint64
	world int
	next  int

	local [][]byte
}

// NewBag registers a fresh Bag on the engine. Collective.
func NewBag(e *Engine) *Bag {
	b := &Bag{
		e:     e,
		world: e.p.WorldSize(),
		next:  int(e.p.Rank()),
	}
	b.cid = e.register(b)
	return b
}

// AsyncInsert ships item to the next rank in this rank's dealing cycle.
//
//ygm:hotpath
func (b *Bag) AsyncInsert(item []byte) {
	dst := machine.Rank(b.next)
	b.next++
	if b.next == b.world {
		b.next = 0
	}
	b.e.asyncInsert(dst, b.cid, item, nil)
}

// ForAll applies fn to every item, shard by shard, after a Barrier.
// Collective; fn gets a view it must not retain and must not issue
// container operations.
func (b *Bag) ForAll(fn func(item []byte)) {
	b.e.Barrier()
	for _, it := range b.local {
		fn(it)
	}
}

// Size returns the global item count (collective, includes a Barrier).
func (b *Bag) Size() uint64 {
	b.e.Barrier()
	return b.e.allreduceSum(uint64(len(b.local)))
}

// LocalSize returns this rank's shard size without synchronizing.
func (b *Bag) LocalSize() int { return len(b.local) }

// instance implementation (owner side). Bag items arrive as the key
// field of opInsert; erase/add/visit have no meaning without keys.

func (b *Bag) applyInsert(key, val []byte) {
	cp := make([]byte, len(key))
	copy(cp, key)
	b.local = append(b.local, cp)
}

func (b *Bag) applyErase(key []byte) {
	panic("container: Bag does not support opErase")
}

func (b *Bag) applyAdd(key []byte, delta uint64) {
	panic("container: Bag does not support opAdd")
}

func (b *Bag) runVisit(vid uint64, key, arg []byte) {
	panic("container: Bag does not support visitors")
}

func (b *Bag) runFetch(vid uint64, key, arg []byte, reply *codec.Writer) {
	panic("container: Bag does not support fetchers")
}

func (b *Bag) localLen() uint64 { return uint64(len(b.local)) }
