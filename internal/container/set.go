package container

import (
	"fmt"

	"ygm/internal/codec"
	"ygm/internal/machine"
)

// Set is a distributed membership set over byte-string keys, partitioned
// like Map. Inserting a present key is a no-op, so re-inserting live
// keys is allocation-free.
type Set struct {
	e     *Engine
	cid   uint64
	part  Partitioner
	world int

	local    map[string]struct{}
	visitors []func(s *Set, key, arg []byte)
	fetchers []func(s *Set, key, arg []byte, reply *codec.Writer)
}

// NewSet registers a fresh Set on the engine. Collective; nil partitioner
// means the default HashPartitioner.
func NewSet(e *Engine, part Partitioner) *Set {
	if part == nil {
		part = HashPartitioner{}
	}
	s := &Set{
		e:     e,
		part:  part,
		world: e.p.WorldSize(),
		local: make(map[string]struct{}),
	}
	s.cid = e.register(s)
	return s
}

// Owner returns the rank that stores key.
func (s *Set) Owner(key []byte) machine.Rank { return s.part.Owner(key, s.world) }

// RegisterVisitor installs a fire-and-forget visitor (same collective-
// order and no-retention contract as Map.RegisterVisitor).
func (s *Set) RegisterVisitor(fn func(s *Set, key, arg []byte)) uint64 {
	s.visitors = append(s.visitors, fn)
	return uint64(len(s.visitors) - 1)
}

// RegisterFetcher installs a reply-producing visitor for AsyncVisitFetch.
func (s *Set) RegisterFetcher(fn func(s *Set, key, arg []byte, reply *codec.Writer)) uint64 {
	s.fetchers = append(s.fetchers, fn)
	return uint64(len(s.fetchers) - 1)
}

// AsyncInsert ships key to its owner.
//
//ygm:hotpath
func (s *Set) AsyncInsert(key []byte) {
	s.e.asyncInsert(s.Owner(key), s.cid, key, nil)
}

// AsyncErase ships an erase of key to its owner.
//
//ygm:hotpath
func (s *Set) AsyncErase(key []byte) {
	s.e.asyncErase(s.Owner(key), s.cid, key)
}

// AsyncVisit runs visitor vid on key's owner (whether or not key is a
// member — the visitor checks LocalContains if it cares).
//
//ygm:hotpath
func (s *Set) AsyncVisit(vid uint64, key, arg []byte) {
	s.e.asyncVisit(s.Owner(key), s.cid, vid, key, arg)
}

// AsyncVisitFetch runs fetcher vid on key's owner and routes the reply
// back to cb (Map.AsyncVisitFetch contract).
func (s *Set) AsyncVisitFetch(vid uint64, key, arg []byte, cb func(reply []byte)) {
	s.e.asyncFetch(s.Owner(key), s.cid, vid, key, arg, cb)
}

// LocalContains reports membership in this rank's shard.
func (s *Set) LocalContains(key []byte) bool {
	_, ok := s.local[string(key)]
	return ok
}

// ForAll applies fn to every member, shard by shard, after a Barrier.
// Collective; fn must not issue container operations.
func (s *Set) ForAll(fn func(key string)) {
	s.e.Barrier()
	for k := range s.local {
		fn(k)
	}
}

// Size returns the global member count (collective, includes a Barrier).
func (s *Set) Size() uint64 {
	s.e.Barrier()
	return s.e.allreduceSum(uint64(len(s.local)))
}

// LocalSize returns this rank's shard size without synchronizing.
func (s *Set) LocalSize() int { return len(s.local) }

// instance implementation (owner side).

//ygm:hotpath
func (s *Set) applyInsert(key, val []byte) {
	if _, ok := s.local[string(key)]; ok {
		return
	}
	s.local[string(key)] = struct{}{}
}

func (s *Set) applyErase(key []byte) {
	delete(s.local, string(key))
}

func (s *Set) applyAdd(key []byte, delta uint64) {
	panic("container: Set does not support opAdd")
}

func (s *Set) runVisit(vid uint64, key, arg []byte) {
	if vid >= uint64(len(s.visitors)) {
		panic(fmt.Sprintf("container: set visit with unregistered visitor %d", vid))
	}
	s.visitors[vid](s, key, arg)
}

func (s *Set) runFetch(vid uint64, key, arg []byte, reply *codec.Writer) {
	if vid >= uint64(len(s.fetchers)) {
		panic(fmt.Sprintf("container: set fetch with unregistered fetcher %d", vid))
	}
	s.fetchers[vid](s, key, arg, reply)
}

func (s *Set) localLen() uint64 { return uint64(len(s.local)) }
