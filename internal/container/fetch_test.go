package container

import (
	"fmt"
	"testing"

	"ygm/internal/codec"
	"ygm/internal/machine"
	"ygm/internal/transport"
	"ygm/internal/ygm"
)

// TestAsyncVisitFetchReadYourWrites pins the reply/future primitive: a
// rank inserts a key (possibly owned elsewhere, possibly by itself) and
// immediately fetches it back; the fetcher must observe the write,
// because the insert and the fetch ride the same mailbox channel in
// order, and the callback must run by the end of the next Barrier.
func TestAsyncVisitFetchReadYourWrites(t *testing.T) {
	for _, v := range variants {
		v := v
		t.Run(v.name, func(t *testing.T) {
			const keys = 120 // enough that every rank owns some (self-fetch included)
			runWorld(t, 2, 2, 21, func(p *transport.Proc) error {
				e := NewEngine(p, v.opt, ygm.WithScheme(machine.NLNR), ygm.WithCapacity(32))
				m := NewMap(e, nil)
				get := m.RegisterFetcher(func(m *Map, k, arg []byte, reply *codec.Writer) {
					val, ok := m.LocalGet(k)
					if !ok {
						reply.Byte(0)
						return
					}
					reply.Byte(1)
					reply.Bytes0(val)
				})
				me := int(p.Rank())
				want := make(map[int]string)
				got := make(map[int]string)
				for i := 0; i < keys; i++ {
					i := i
					val := fmt.Sprintf("rank%d-key%d", me, i)
					want[i] = val
					m.AsyncInsert(key(i), []byte(val))
					m.AsyncVisitFetch(get, key(i), nil, func(reply []byte) {
						r := codec.NewReader(reply)
						present, _ := r.Byte()
						if present == 0 {
							got[i] = "<missing>"
							return
						}
						val, _ := r.Bytes0()
						got[i] = string(val) // copy: the view dies with the callback
					})
				}
				e.Barrier()
				if len(got) != keys {
					return fmt.Errorf("rank %d: %d of %d fetch callbacks ran", me, len(got), keys)
				}
				for i, g := range got {
					// Another rank may have overwritten the key after our
					// insert, but the value must be *some* rank's write of
					// key i — and read-your-writes means never missing.
					if g == "<missing>" {
						return fmt.Errorf("rank %d: fetch of key %d missed the preceding insert", me, i)
					}
					suffix := fmt.Sprintf("-key%d", i)
					if len(g) < len(suffix) || g[len(g)-len(suffix):] != suffix {
						return fmt.Errorf("rank %d: fetch of key %d returned %q", me, i, g)
					}
				}
				_ = want
				return nil
			})
		})
	}
}

// TestFetchCallbackChainsFetch pins the Barrier reply-pump loop: a
// callback that issues a further fetch (and a further insert) must have
// its chained work completed within the same Barrier.
func TestFetchCallbackChainsFetch(t *testing.T) {
	for _, v := range variants {
		v := v
		t.Run(v.name, func(t *testing.T) {
			const depth = 5
			runWorld(t, 2, 2, 22, func(p *transport.Proc) error {
				e := NewEngine(p, v.opt, ygm.WithScheme(machine.NoRoute), ygm.WithCapacity(32))
				c := NewCounter(e, nil)
				count := c.RegisterFetcher(func(c *Counter, k, arg []byte, reply *codec.Writer) {
					reply.Uvarint(c.LocalCount(k))
				})
				done := 0
				var step func(level int)
				step = func(level int) {
					c.AsyncAdd(key(level), 1)
					c.AsyncVisitFetch(count, key(level), nil, func(reply []byte) {
						r := codec.NewReader(reply)
						if got, _ := r.Uvarint(); got == 0 {
							t.Errorf("rank %d: chained fetch at level %d read a zero count", p.Rank(), level)
						}
						if level+1 < depth {
							step(level + 1)
						} else {
							done++
						}
					})
				}
				step(0)
				e.Barrier()
				if done != 1 {
					return fmt.Errorf("rank %d: fetch chain of depth %d did not complete inside Barrier", p.Rank(), depth)
				}
				// Every rank walked the same chain, so each level saw
				// world contributions once quiescent.
				if got, want := c.Size(), uint64(depth); got != want {
					return fmt.Errorf("rank %d: counter size = %d, want %d", p.Rank(), got, want)
				}
				return nil
			})
		})
	}
}

// TestFetchVisitorSpawnsAsyncOps pins the other chaining direction: the
// owner-side fetcher issues fire-and-forget operations while producing
// its reply, and Barrier must drain those too.
func TestFetchVisitorSpawnsAsyncOps(t *testing.T) {
	for _, v := range variants {
		v := v
		t.Run(v.name, func(t *testing.T) {
			runWorld(t, 2, 2, 23, func(p *transport.Proc) error {
				e := NewEngine(p, v.opt, ygm.WithScheme(machine.NLNR), ygm.WithCapacity(32))
				c := NewCounter(e, nil)
				echo := c.RegisterFetcher(func(c *Counter, k, arg []byte, reply *codec.Writer) {
					// Side effect shipped to a (generally) third rank.
					c.AsyncAdd(arg, 1)
					reply.Uvarint(uint64(len(k)))
				})
				const fetches = 40
				ran := 0
				for i := 0; i < fetches; i++ {
					c.AsyncVisitFetch(echo, key(i), key(1000+i), func(reply []byte) { ran++ })
				}
				e.Barrier()
				if ran != fetches {
					return fmt.Errorf("rank %d: %d of %d fetch callbacks ran", p.Rank(), ran, fetches)
				}
				// The side-effect keys must each have world contributions.
				world := uint64(p.WorldSize())
				bad := 0
				c.ForAll(func(k string, count uint64) {
					if count != world {
						bad++
					}
				})
				if bad != 0 {
					return fmt.Errorf("rank %d: %d side-effect keys miscounted", p.Rank(), bad)
				}
				return nil
			})
		})
	}
}
