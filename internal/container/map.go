package container

import (
	"fmt"

	"ygm/internal/codec"
	"ygm/internal/machine"
)

// Map is a distributed key→value store. Each key lives on the rank the
// partitioner names; AsyncInsert/AsyncErase/AsyncVisit may be issued
// from any rank and are applied on the owner in mailbox-delivery order.
// Values are opaque byte strings, owned by the map (inserted values are
// copied in; an existing key's storage is reused on overwrite, so
// re-inserting live keys is allocation-free).
type Map struct {
	e     *Engine
	cid   uint64
	part  Partitioner
	world int

	local    map[string]*mapEntry
	visitors []func(m *Map, key, arg []byte)
	fetchers []func(m *Map, key, arg []byte, reply *codec.Writer)
}

// mapEntry boxes the value so overwrites mutate through the pointer:
// a Go map assignment with a converted []byte key would allocate the
// string on every update, while the boxed lookup-and-mutate path stays
// allocation-free for keys already present.
type mapEntry struct {
	val []byte
}

// NewMap registers a fresh Map on the engine. Collective: all ranks must
// construct their containers in the same order. A nil partitioner means
// the default HashPartitioner.
func NewMap(e *Engine, part Partitioner) *Map {
	if part == nil {
		part = HashPartitioner{}
	}
	m := &Map{
		e:     e,
		part:  part,
		world: e.p.WorldSize(),
		local: make(map[string]*mapEntry),
	}
	m.cid = e.register(m)
	return m
}

// Owner returns the rank that stores key.
func (m *Map) Owner(key []byte) machine.Rank { return m.part.Owner(key, m.world) }

// RegisterVisitor installs a fire-and-forget visitor and returns its id.
// Collective: every rank must register the same visitors in the same
// order, because the id — not the function — travels with AsyncVisit.
// The visitor runs on the owning rank with views of the key and argument
// bytes (valid only for the call) and may issue further async container
// operations, but must not call Barrier/Size/ForAll (collectives cannot
// run inside a handler).
func (m *Map) RegisterVisitor(fn func(m *Map, key, arg []byte)) uint64 {
	m.visitors = append(m.visitors, fn)
	return uint64(len(m.visitors) - 1)
}

// RegisterFetcher installs a reply-producing visitor for AsyncVisitFetch
// and returns its id. Same collective-order contract as RegisterVisitor;
// whatever the fetcher writes into reply is routed back to the caller.
func (m *Map) RegisterFetcher(fn func(m *Map, key, arg []byte, reply *codec.Writer)) uint64 {
	m.fetchers = append(m.fetchers, fn)
	return uint64(len(m.fetchers) - 1)
}

// AsyncInsert ships key→val to the owner (last writer wins).
//
//ygm:hotpath
func (m *Map) AsyncInsert(key, val []byte) {
	m.e.asyncInsert(m.Owner(key), m.cid, key, val)
}

// AsyncErase ships an erase of key to the owner.
//
//ygm:hotpath
func (m *Map) AsyncErase(key []byte) {
	m.e.asyncErase(m.Owner(key), m.cid, key)
}

// AsyncVisit runs the registered visitor vid on key's owner with arg.
//
//ygm:hotpath
func (m *Map) AsyncVisit(vid uint64, key, arg []byte) {
	m.e.asyncVisit(m.Owner(key), m.cid, vid, key, arg)
}

// AsyncVisitFetch runs fetcher vid on key's owner and routes its reply
// to cb on this rank. cb runs during a later Engine.Barrier (or by the
// end of the one in flight) and receives a view it must not retain.
// Read-your-writes: operations this rank issued on key before the fetch
// are applied before the fetcher runs, because both ride the same
// mailbox channel in order.
func (m *Map) AsyncVisitFetch(vid uint64, key, arg []byte, cb func(reply []byte)) {
	m.e.asyncFetch(m.Owner(key), m.cid, vid, key, arg, cb)
}

// LocalGet returns the value stored for key on this rank, as a view the
// caller must not retain or mutate. Owner-side accessor: visitors and
// ForAll bodies use it; calling it for a key this rank does not own just
// finds nothing.
func (m *Map) LocalGet(key []byte) ([]byte, bool) {
	ent, ok := m.local[string(key)]
	if !ok {
		return nil, false
	}
	return ent.val, true
}

// LocalPut stores key→val on this rank directly (owner-side mutation
// for visitors that compute a new value in place).
func (m *Map) LocalPut(key, val []byte) { m.applyInsert(key, val) }

// LocalErase removes key from this rank's shard.
func (m *Map) LocalErase(key []byte) { m.applyErase(key) }

// ForAll applies fn to every key→value pair, shard by shard on each
// owning rank, after a full Barrier. Collective. Iteration order within
// a shard is unspecified; fn must not issue container operations.
func (m *Map) ForAll(fn func(key string, val []byte)) {
	m.e.Barrier()
	for k, ent := range m.local {
		fn(k, ent.val)
	}
}

// Size returns the global number of keys. Collective; includes a full
// Barrier so every in-flight insert and erase is counted.
func (m *Map) Size() uint64 {
	m.e.Barrier()
	return m.e.allreduceSum(uint64(len(m.local)))
}

// LocalSize returns this rank's shard size without synchronizing.
func (m *Map) LocalSize() int { return len(m.local) }

// instance implementation (owner side).

//ygm:hotpath
func (m *Map) applyInsert(key, val []byte) {
	if ent, ok := m.local[string(key)]; ok {
		ent.val = append(ent.val[:0], val...)
		return
	}
	cp := make([]byte, len(val)) //ygmvet:ignore allocinloop -- first-touch insert copies the value by design; the overwrite path above reuses storage
	copy(cp, val)
	m.local[string(key)] = &mapEntry{val: cp}
}

func (m *Map) applyErase(key []byte) {
	delete(m.local, string(key))
}

func (m *Map) applyAdd(key []byte, delta uint64) {
	panic("container: Map does not support opAdd")
}

func (m *Map) runVisit(vid uint64, key, arg []byte) {
	if vid >= uint64(len(m.visitors)) {
		panic(fmt.Sprintf("container: map visit with unregistered visitor %d", vid))
	}
	m.visitors[vid](m, key, arg)
}

func (m *Map) runFetch(vid uint64, key, arg []byte, reply *codec.Writer) {
	if vid >= uint64(len(m.fetchers)) {
		panic(fmt.Sprintf("container: map fetch with unregistered fetcher %d", vid))
	}
	m.fetchers[vid](m, key, arg, reply)
}

func (m *Map) localLen() uint64 { return uint64(len(m.local)) }
