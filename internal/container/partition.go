package container

import "ygm/internal/machine"

// Partitioner maps a key to its owning rank. Implementations must be
// pure functions of (key, world): every rank computes owners locally,
// so two ranks disagreeing on an owner would silently split a key.
type Partitioner interface {
	Owner(key []byte, world int) machine.Rank
}

// HashPartitioner is the default partitioner: a splitmix64 finalizer
// over an FNV-style fold of the key bytes, uniform across ranks and
// deliberately unrelated to the partitioners applications typically use
// for their own sharding (so container placement does not correlate
// with application placement). Seed perturbs the placement, e.g. to
// decorrelate two containers holding the same key population.
type HashPartitioner struct {
	Seed uint64
}

// Owner implements Partitioner.
//
//ygm:hotpath
func (h HashPartitioner) Owner(key []byte, world int) machine.Rank {
	x := h.Seed ^ 0x9e3779b97f4a7c15
	for _, b := range key {
		x = (x ^ uint64(b)) * 0x100000001b3
	}
	return machine.Rank(splitmix64(x) % uint64(world))
}

// splitmix64 is the standard 64-bit finalizer (Steele et al.): full
// avalanche, so consecutive folds land on unrelated ranks.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
