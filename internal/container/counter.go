package container

import (
	"fmt"
	"sort"

	"ygm/internal/codec"
	"ygm/internal/machine"
)

// Counter is a distributed accumulator: a multimap-style key→count
// store where AsyncAdd contributions from every rank merge by addition
// on the owner. The word-count/degree-count/kmer-count family is exactly
// this container.
type Counter struct {
	e     *Engine
	cid   uint64
	part  Partitioner
	world int

	// local boxes the counts so increments mutate through the pointer —
	// a map assignment with a converted []byte key would allocate on
	// every AsyncAdd delivery instead of only on first touch.
	local    map[string]*uint64
	visitors []func(c *Counter, key, arg []byte)
	fetchers []func(c *Counter, key, arg []byte, reply *codec.Writer)
}

// KeyCount is one entry of a TopK result.
type KeyCount struct {
	Key   string
	Count uint64
}

// NewCounter registers a fresh Counter on the engine. Collective; nil
// partitioner means the default HashPartitioner.
func NewCounter(e *Engine, part Partitioner) *Counter {
	if part == nil {
		part = HashPartitioner{}
	}
	c := &Counter{
		e:     e,
		part:  part,
		world: e.p.WorldSize(),
		local: make(map[string]*uint64),
	}
	c.cid = e.register(c)
	return c
}

// Owner returns the rank that accumulates key.
func (c *Counter) Owner(key []byte) machine.Rank { return c.part.Owner(key, c.world) }

// AsyncAdd ships a contribution of delta to key's owner.
//
//ygm:hotpath
func (c *Counter) AsyncAdd(key []byte, delta uint64) {
	c.e.asyncAdd(c.Owner(key), c.cid, key, delta)
}

// AsyncIncr is AsyncAdd with delta 1.
//
//ygm:hotpath
func (c *Counter) AsyncIncr(key []byte) { c.AsyncAdd(key, 1) }

// RegisterVisitor installs a fire-and-forget visitor (Map contract).
func (c *Counter) RegisterVisitor(fn func(c *Counter, key, arg []byte)) uint64 {
	c.visitors = append(c.visitors, fn)
	return uint64(len(c.visitors) - 1)
}

// RegisterFetcher installs a reply-producing visitor for AsyncVisitFetch.
func (c *Counter) RegisterFetcher(fn func(c *Counter, key, arg []byte, reply *codec.Writer)) uint64 {
	c.fetchers = append(c.fetchers, fn)
	return uint64(len(c.fetchers) - 1)
}

// AsyncVisit runs visitor vid on key's owner.
//
//ygm:hotpath
func (c *Counter) AsyncVisit(vid uint64, key, arg []byte) {
	c.e.asyncVisit(c.Owner(key), c.cid, vid, key, arg)
}

// AsyncVisitFetch runs fetcher vid on key's owner and routes the reply
// back to cb (Map.AsyncVisitFetch contract).
func (c *Counter) AsyncVisitFetch(vid uint64, key, arg []byte, cb func(reply []byte)) {
	c.e.asyncFetch(c.Owner(key), c.cid, vid, key, arg, cb)
}

// LocalAdd folds delta into key on this rank directly (owner-side
// mutation for visitors that compute contributions in place; the
// Map.LocalPut contract).
func (c *Counter) LocalAdd(key []byte, delta uint64) { c.applyAdd(key, delta) }

// LocalCount returns key's accumulated count on this rank's shard.
func (c *Counter) LocalCount(key []byte) uint64 {
	if p, ok := c.local[string(key)]; ok {
		return *p
	}
	return 0
}

// ForAll applies fn to every key→count pair, shard by shard, after a
// Barrier. Collective; fn must not issue container operations.
func (c *Counter) ForAll(fn func(key string, count uint64)) {
	c.e.Barrier()
	for k, p := range c.local {
		fn(k, *p)
	}
}

// Size returns the global number of distinct keys (collective, includes
// a Barrier).
func (c *Counter) Size() uint64 {
	c.e.Barrier()
	return c.e.allreduceSum(uint64(len(c.local)))
}

// LocalSize returns this rank's shard size without synchronizing.
func (c *Counter) LocalSize() int { return len(c.local) }

// TopK returns the k globally heaviest keys, ordered by descending
// count with ties broken by ascending key — the heavy-hitters query.
// Collective: every rank gets the same result. Each rank selects its
// local top k, then the candidate lists merge pairwise up a binomial
// tree (no rank ever materializes more than 2k candidates) and the root
// broadcasts the winners.
func (c *Counter) TopK(k int) []KeyCount {
	c.e.Barrier()
	cand := make([]KeyCount, 0, len(c.local))
	for key, p := range c.local {
		cand = append(cand, KeyCount{Key: key, Count: *p})
	}
	cand = trimTopK(cand, k)
	merged := c.e.comm.ReduceBytes(0, encodeKeyCounts(cand), func(acc, in []byte) []byte {
		both := append(decodeKeyCounts(acc), decodeKeyCounts(in)...)
		return encodeKeyCounts(trimTopK(both, k))
	})
	return decodeKeyCounts(c.e.comm.Bcast(0, merged))
}

// trimTopK sorts by (count desc, key asc) and keeps at most k entries.
func trimTopK(kc []KeyCount, k int) []KeyCount {
	sort.Slice(kc, func(i, j int) bool {
		if kc[i].Count != kc[j].Count {
			return kc[i].Count > kc[j].Count
		}
		return kc[i].Key < kc[j].Key
	})
	if len(kc) > k {
		kc = kc[:k]
	}
	return kc
}

func encodeKeyCounts(kc []KeyCount) []byte {
	w := codec.NewWriter(16 * (len(kc) + 1))
	w.Uvarint(uint64(len(kc)))
	for _, e := range kc {
		w.String(e.Key)
		w.Uvarint(e.Count)
	}
	return w.Bytes()
}

func decodeKeyCounts(buf []byte) []KeyCount {
	r := codec.NewReader(buf)
	n, err := r.Uvarint()
	if err != nil {
		panic(fmt.Sprintf("container: corrupt top-k payload: %v", err))
	}
	out := make([]KeyCount, 0, n)
	for i := uint64(0); i < n; i++ {
		key, err1 := r.String()
		cnt, err2 := r.Uvarint()
		if err1 != nil || err2 != nil {
			panic(fmt.Sprintf("container: corrupt top-k payload: %v %v", err1, err2))
		}
		out = append(out, KeyCount{Key: key, Count: cnt})
	}
	return out
}

// instance implementation (owner side).

func (c *Counter) applyInsert(key, val []byte) {
	panic("container: Counter does not support opInsert (use AsyncAdd)")
}

func (c *Counter) applyErase(key []byte) {
	delete(c.local, string(key))
}

//ygm:hotpath
func (c *Counter) applyAdd(key []byte, delta uint64) {
	if p, ok := c.local[string(key)]; ok {
		*p += delta
		return
	}
	v := delta
	c.local[string(key)] = &v
}

func (c *Counter) runVisit(vid uint64, key, arg []byte) {
	if vid >= uint64(len(c.visitors)) {
		panic(fmt.Sprintf("container: counter visit with unregistered visitor %d", vid))
	}
	c.visitors[vid](c, key, arg)
}

func (c *Counter) runFetch(vid uint64, key, arg []byte, reply *codec.Writer) {
	if vid >= uint64(len(c.fetchers)) {
		panic(fmt.Sprintf("container: counter fetch with unregistered fetcher %d", vid))
	}
	c.fetchers[vid](c, key, arg, reply)
}

func (c *Counter) localLen() uint64 { return uint64(len(c.local)) }
