package ygm

import (
	"fmt"
	"runtime"
	"sync"
	"testing"

	"ygm/internal/codec"
	"ygm/internal/machine"
	"ygm/internal/netsim"
	"ygm/internal/transport"
)

// runMailbox executes an SPMD body with a mailbox per rank.
func runMailbox(t *testing.T, nodes, cores int, opts Options, handler func(p *transport.Proc) Handler,
	body func(p *transport.Proc, mb *Mailbox) error) *transport.Report {
	t.Helper()
	rep, err := transport.Run(transport.Config{
		Topo:          machine.New(nodes, cores),
		Model:         netsim.Quartz(),
		Seed:          11,
		TrackPartners: true,
	}, func(p *transport.Proc) error {
		o := opts
		o.Exchange = LazyExchange
		mb := newLazy(p, handler(p), o)
		return body(p, mb)
	})
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// counterState is a shared per-rank delivery log for assertions.
type counterState struct {
	mu        sync.Mutex
	delivered map[machine.Rank][]uint64
}

func newCounterState() *counterState {
	return &counterState{delivered: make(map[machine.Rank][]uint64)}
}

func (cs *counterState) record(r machine.Rank, v uint64) {
	cs.mu.Lock()
	cs.delivered[r] = append(cs.delivered[r], v)
	cs.mu.Unlock()
}

func encodeU64(v uint64) []byte {
	w := codec.NewWriter(10)
	w.Uvarint(v)
	return w.Bytes()
}

func decodeU64(b []byte) uint64 {
	v, err := codec.NewReader(b).Uvarint()
	if err != nil {
		panic(err)
	}
	return v
}

// TestAllToAllDelivery: every rank sends one tagged message to every
// other rank under every scheme; every message must arrive exactly once
// with intact content.
func TestAllToAllDelivery(t *testing.T) {
	for _, scheme := range machine.Schemes {
		scheme := scheme
		t.Run(scheme.String(), func(t *testing.T) {
			cs := newCounterState()
			runMailbox(t, 4, 3, Options{Scheme: scheme, Capacity: 8},
				func(p *transport.Proc) Handler {
					return func(s Sender, payload []byte) {
						cs.record(p.Rank(), decodeU64(payload))
					}
				},
				func(p *transport.Proc, mb *Mailbox) error {
					me := uint64(p.Rank())
					for dst := 0; dst < p.WorldSize(); dst++ {
						if dst == int(p.Rank()) {
							continue
						}
						// payload encodes src*1000 + dst
						mb.Send(machine.Rank(dst), encodeU64(me*1000+uint64(dst)))
					}
					mb.WaitEmpty()
					return nil
				})
			size := 12
			for r := 0; r < size; r++ {
				got := cs.delivered[machine.Rank(r)]
				if len(got) != size-1 {
					t.Fatalf("rank %d delivered %d messages, want %d", r, len(got), size-1)
				}
				seen := map[uint64]bool{}
				for _, v := range got {
					if int(v%1000) != r {
						t.Fatalf("rank %d got message addressed to %d", r, v%1000)
					}
					if seen[v] {
						t.Fatalf("rank %d got duplicate %d", r, v)
					}
					seen[v] = true
				}
			}
		})
	}
}

// TestSelfSendIsSynchronous: a message to oneself is delivered before
// Send returns, without touching the transport.
func TestSelfSendIsSynchronous(t *testing.T) {
	cs := newCounterState()
	rep := runMailbox(t, 1, 2, Options{Scheme: machine.NoRoute},
		func(p *transport.Proc) Handler {
			return func(s Sender, payload []byte) { cs.record(p.Rank(), decodeU64(payload)) }
		},
		func(p *transport.Proc, mb *Mailbox) error {
			mb.Send(p.Rank(), encodeU64(7))
			cs.mu.Lock()
			n := len(cs.delivered[p.Rank()])
			cs.mu.Unlock()
			if n != 1 {
				return fmt.Errorf("self-send not delivered synchronously")
			}
			mb.WaitEmpty()
			return nil
		})
	if tot := rep.Totals(); tot.DataLocalMsgs != 0 || tot.DataRemoteMsgs != 0 {
		t.Fatalf("self sends should not hit the transport: %+v", tot)
	}
}

// TestRoutingForwardingHops verifies the hop accounting for a single
// cross-node, cross-core message under each scheme: NoRoute takes 1 hop,
// NodeLocal/NodeRemote 2, NLNR 3 (with distinct cores chosen so no
// short-circuit applies).
func TestRoutingForwardingHops(t *testing.T) {
	wantHops := map[machine.Scheme]uint64{
		machine.NoRoute:    1,
		machine.NodeLocal:  2,
		machine.NodeRemote: 2,
		machine.NLNR:       3,
	}
	for _, scheme := range machine.Schemes {
		scheme := scheme
		t.Run(scheme.String(), func(t *testing.T) {
			var mu sync.Mutex
			var totalSent, totalRecv, delivered uint64
			runMailbox(t, 8, 4, Options{Scheme: scheme},
				func(p *transport.Proc) Handler {
					return func(s Sender, payload []byte) {
						mu.Lock()
						delivered++
						mu.Unlock()
					}
				},
				func(p *transport.Proc, mb *Mailbox) error {
					// (1,0) -> (6,3): distinct node, core, and NLNR
					// intermediaries (see machine.TestNLNRHopStructure).
					if p.Rank() == p.Topo().RankOf(1, 0) {
						mb.Send(p.Topo().RankOf(6, 3), encodeU64(1))
					}
					mb.WaitEmpty()
					st := mb.Stats()
					mu.Lock()
					totalSent += st.HopsSent
					totalRecv += st.HopsRecv
					mu.Unlock()
					return nil
				})
			if delivered != 1 {
				t.Fatalf("delivered = %d", delivered)
			}
			if totalSent != wantHops[scheme] || totalRecv != wantHops[scheme] {
				t.Fatalf("hops sent/recv = %d/%d, want %d", totalSent, totalRecv, wantHops[scheme])
			}
		})
	}
}

// TestChannelConstraints: every packet a rank sends must go to a
// legitimate destination for the scheme — an on-node rank or a member of
// its remote partner set. This is the structural guarantee that gives
// each scheme its channel count.
func TestChannelConstraints(t *testing.T) {
	for _, scheme := range machine.Schemes {
		scheme := scheme
		t.Run(scheme.String(), func(t *testing.T) {
			rep := runMailbox(t, 8, 4, Options{Scheme: scheme, Capacity: 4},
				func(p *transport.Proc) Handler {
					return func(s Sender, payload []byte) {}
				},
				func(p *transport.Proc, mb *Mailbox) error {
					rng := p.Rng()
					for i := 0; i < 50; i++ {
						dst := machine.Rank(rng.Intn(p.WorldSize()))
						mb.Send(dst, encodeU64(uint64(i)))
					}
					mb.Broadcast(encodeU64(999))
					mb.WaitEmpty()
					return nil
				})
			topo := machine.New(8, 4)
			for _, rr := range rep.Ranks {
				allowed := map[machine.Rank]bool{}
				for _, r := range topo.LocalRanks(rr.Rank) {
					allowed[r] = true
				}
				for _, r := range topo.RemotePartners(scheme, rr.Rank) {
					allowed[r] = true
				}
				// Termination detection uses the binomial tree over world
				// ranks; those packets are exempt (tag-separated in real
				// traffic, but Partners() counts all). Build the exempt set.
				me := int(rr.Rank)
				exempt := map[machine.Rank]bool{}
				for mask := 1; mask < topo.WorldSize(); mask <<= 1 {
					if me&mask == 0 {
						if me|mask < topo.WorldSize() {
							exempt[machine.Rank(me|mask)] = true
						}
					} else {
						exempt[machine.Rank(me&^mask)] = true
						break
					}
				}
				for dst := range rr.Stats.Partners() {
					if !allowed[dst] && !exempt[dst] {
						t.Fatalf("%v: rank %d sent to %d outside its channels", scheme, rr.Rank, dst)
					}
				}
			}
		})
	}
}

// TestBroadcastDelivery: a broadcast reaches every rank except the
// origin exactly once, under every scheme.
func TestBroadcastDelivery(t *testing.T) {
	for _, scheme := range machine.Schemes {
		scheme := scheme
		t.Run(scheme.String(), func(t *testing.T) {
			cs := newCounterState()
			runMailbox(t, 4, 4, Options{Scheme: scheme},
				func(p *transport.Proc) Handler {
					return func(s Sender, payload []byte) { cs.record(p.Rank(), decodeU64(payload)) }
				},
				func(p *transport.Proc, mb *Mailbox) error {
					if p.Rank() == 5 {
						mb.Broadcast(encodeU64(42))
					}
					mb.WaitEmpty()
					return nil
				})
			for r := 0; r < 16; r++ {
				got := cs.delivered[machine.Rank(r)]
				if r == 5 {
					if len(got) != 0 {
						t.Fatalf("origin delivered to itself: %v", got)
					}
					continue
				}
				if len(got) != 1 || got[0] != 42 {
					t.Fatalf("%v: rank %d got %v", scheme, r, got)
				}
			}
		})
	}
}

// TestBroadcastRemoteMessageCounts verifies the remote-cost analysis of
// Section III-C/D: one broadcast on an N-node, C-core cluster costs
// (N-1)*C remote data packets under NoRoute and NodeLocal, but only N-1
// under NodeRemote and NLNR.
func TestBroadcastRemoteMessageCounts(t *testing.T) {
	const nodes, cores = 4, 4
	want := map[machine.Scheme]uint64{
		machine.NoRoute:    (nodes - 1) * cores,
		machine.NodeLocal:  (nodes - 1) * cores,
		machine.NodeRemote: nodes - 1,
		machine.NLNR:       nodes - 1,
	}
	for _, scheme := range machine.Schemes {
		scheme := scheme
		t.Run(scheme.String(), func(t *testing.T) {
			rep := runMailbox(t, nodes, cores, Options{Scheme: scheme},
				func(p *transport.Proc) Handler {
					return func(s Sender, payload []byte) {}
				},
				func(p *transport.Proc, mb *Mailbox) error {
					if p.Rank() == 1 {
						mb.Broadcast(encodeU64(1))
					}
					mb.WaitEmpty()
					return nil
				})
			// One record per packet here (single broadcast, nothing to
			// coalesce with), so data packets == remote record copies.
			if got := rep.Totals().DataRemoteMsgs; got != want[scheme] {
				t.Fatalf("%v: remote data packets = %d, want %d", scheme, got, want[scheme])
			}
		})
	}
}

// TestCoalescing: many small sends to one destination must leave the
// node in few large packets when routed, versus many with NoRoute.
func TestCoalescing(t *testing.T) {
	const msgs = 256
	counts := map[machine.Scheme]uint64{}
	for _, scheme := range []machine.Scheme{machine.NoRoute, machine.NodeRemote} {
		rep := runMailbox(t, 2, 4, Options{Scheme: scheme, Capacity: 1 << 20},
			func(p *transport.Proc) Handler {
				return func(s Sender, payload []byte) {}
			},
			func(p *transport.Proc, mb *Mailbox) error {
				if p.Node() == 0 {
					// Spray the remote node's cores.
					for i := 0; i < msgs; i++ {
						dst := p.Topo().RankOf(1, i%4)
						mb.Send(dst, encodeU64(uint64(i)))
					}
				}
				mb.WaitEmpty()
				return nil
			})
		counts[scheme] = rep.Totals().DataRemoteMsgs
	}
	// NoRoute: each of the 4 source cores holds buffers to 4 remote
	// destinations -> 16 remote packets. NodeRemote: each source core has
	// a single remote channel (its core offset on node 1) -> 4 packets.
	if counts[machine.NoRoute] <= counts[machine.NodeRemote] {
		t.Fatalf("routing should reduce remote packet count: %v", counts)
	}
	if counts[machine.NodeRemote] != 4 {
		t.Fatalf("NodeRemote remote packets = %d, want 4", counts[machine.NodeRemote])
	}
}

// TestCapacityTriggersFlush: sends beyond capacity enter the
// communication context without WaitEmpty.
func TestCapacityTriggersFlush(t *testing.T) {
	cs := newCounterState()
	runMailbox(t, 2, 1, Options{Scheme: machine.NoRoute, Capacity: 4},
		func(p *transport.Proc) Handler {
			return func(s Sender, payload []byte) { cs.record(p.Rank(), decodeU64(payload)) }
		},
		func(p *transport.Proc, mb *Mailbox) error {
			if p.Rank() == 0 {
				for i := 0; i < 10; i++ {
					mb.Send(1, encodeU64(uint64(i)))
				}
				if mb.Stats().Flushes == 0 {
					return fmt.Errorf("capacity overflow did not flush")
				}
				if mb.PendingSends() >= 4 {
					return fmt.Errorf("pending sends %d not below capacity", mb.PendingSends())
				}
			}
			mb.WaitEmpty()
			return nil
		})
	if len(cs.delivered[1]) != 10 {
		t.Fatalf("delivered %d, want 10", len(cs.delivered[1]))
	}
}

// TestHandlerSpawnsSends: a message chain where each delivery forwards
// to the next rank — data-dependent messaging with termination detection
// (the pattern graph traversals rely on).
func TestHandlerSpawnsSends(t *testing.T) {
	for _, scheme := range machine.Schemes {
		scheme := scheme
		t.Run(scheme.String(), func(t *testing.T) {
			cs := newCounterState()
			runMailbox(t, 3, 2, Options{Scheme: scheme},
				func(p *transport.Proc) Handler {
					return func(s Sender, payload []byte) {
						v := decodeU64(payload)
						cs.record(p.Rank(), v)
						if next := int(p.Rank()) + 1; next < p.WorldSize() {
							s.Send(machine.Rank(next), encodeU64(v+1))
						}
					}
				},
				func(p *transport.Proc, mb *Mailbox) error {
					if p.Rank() == 0 {
						mb.Send(1, encodeU64(100))
					}
					mb.WaitEmpty()
					return nil
				})
			for r := 1; r < 6; r++ {
				got := cs.delivered[machine.Rank(r)]
				if len(got) != 1 || got[0] != uint64(99+r) {
					t.Fatalf("%v: rank %d got %v", scheme, r, got)
				}
			}
		})
	}
}

// TestTestEmptyPolling: drive termination with the nonblocking API only.
func TestTestEmptyPolling(t *testing.T) {
	cs := newCounterState()
	runMailbox(t, 2, 2, Options{Scheme: machine.NLNR},
		func(p *transport.Proc) Handler {
			return func(s Sender, payload []byte) { cs.record(p.Rank(), decodeU64(payload)) }
		},
		func(p *transport.Proc, mb *Mailbox) error {
			for dst := 0; dst < p.WorldSize(); dst++ {
				if dst != int(p.Rank()) {
					mb.Send(machine.Rank(dst), encodeU64(uint64(p.Rank())))
				}
			}
			spins := 0
			for {
				done, err := mb.TestEmpty()
				if err != nil {
					return err
				}
				if done {
					break
				}
				spins++
				// A real poller does external work between calls; yield
				// so peer ranks can make progress on one OS thread.
				runtime.Gosched()
				if spins > 1<<20 {
					return fmt.Errorf("TestEmpty never converged")
				}
			}
			return nil
		})
	for r := 0; r < 4; r++ {
		if len(cs.delivered[machine.Rank(r)]) != 3 {
			t.Fatalf("rank %d delivered %v", r, cs.delivered[machine.Rank(r)])
		}
	}
}

// TestMailboxReuse: multiple batches with WaitEmpty between them, as the
// degree-counting experiment does.
func TestMailboxReuse(t *testing.T) {
	cs := newCounterState()
	runMailbox(t, 2, 2, Options{Scheme: machine.NodeRemote},
		func(p *transport.Proc) Handler {
			return func(s Sender, payload []byte) { cs.record(p.Rank(), decodeU64(payload)) }
		},
		func(p *transport.Proc, mb *Mailbox) error {
			for batch := 0; batch < 3; batch++ {
				dst := machine.Rank((int(p.Rank()) + 1) % p.WorldSize())
				mb.Send(dst, encodeU64(uint64(batch)))
				mb.WaitEmpty()
				// After WaitEmpty, all messages of this batch are in.
				cs.mu.Lock()
				n := len(cs.delivered[p.Rank()])
				cs.mu.Unlock()
				if n != batch+1 {
					return fmt.Errorf("rank %d after batch %d has %d deliveries", p.Rank(), batch, n)
				}
			}
			return nil
		})
}

// TestWaitEmptyNoTraffic: WaitEmpty with nothing sent returns promptly.
func TestWaitEmptyNoTraffic(t *testing.T) {
	runMailbox(t, 2, 2, Options{},
		func(p *transport.Proc) Handler {
			return func(s Sender, payload []byte) {}
		},
		func(p *transport.Proc, mb *Mailbox) error {
			mb.WaitEmpty()
			mb.WaitEmpty()
			return nil
		})
}

// TestVariableLengthMessages exercises the codec path with payloads of
// widely varying sizes, including empty.
func TestVariableLengthMessages(t *testing.T) {
	var mu sync.Mutex
	got := map[int]int{} // length -> count
	runMailbox(t, 2, 2, Options{Scheme: machine.NLNR, Capacity: 3},
		func(p *transport.Proc) Handler {
			return func(s Sender, payload []byte) {
				for i, b := range payload {
					if b != byte(i) {
						panic("payload corrupted")
					}
				}
				mu.Lock()
				got[len(payload)]++
				mu.Unlock()
			}
		},
		func(p *transport.Proc, mb *Mailbox) error {
			if p.Rank() == 0 {
				for _, n := range []int{0, 1, 13, 300, 70000} {
					b := make([]byte, n)
					for i := range b {
						b[i] = byte(i)
					}
					mb.Send(3, b)
				}
			}
			mb.WaitEmpty()
			return nil
		})
	for _, n := range []int{0, 1, 13, 300, 70000} {
		if got[n] != 1 {
			t.Fatalf("payload of %d bytes delivered %d times", n, got[n])
		}
	}
}

// TestRandomTrafficProperty: random sends and broadcasts across random
// schemes conserve messages: delivered == unicasts + bcasts*(P-1).
func TestRandomTrafficProperty(t *testing.T) {
	for trial := 0; trial < 4; trial++ {
		scheme := machine.Schemes[trial%len(machine.Schemes)]
		var mu sync.Mutex
		var delivered, unicasts, bcasts uint64
		runMailbox(t, 3, 3, Options{Scheme: scheme, Capacity: 16},
			func(p *transport.Proc) Handler {
				return func(s Sender, payload []byte) {
					mu.Lock()
					delivered++
					mu.Unlock()
				}
			},
			func(p *transport.Proc, mb *Mailbox) error {
				rng := p.Rng()
				myU, myB := uint64(0), uint64(0)
				for i := 0; i < 100; i++ {
					if rng.Intn(10) == 0 {
						mb.Broadcast(encodeU64(uint64(i)))
						myB++
					} else {
						dst := machine.Rank(rng.Intn(p.WorldSize()))
						mb.Send(dst, encodeU64(uint64(i)))
						if dst != p.Rank() {
							myU++
						} else {
							myU++ // self-sends also deliver
						}
					}
				}
				mb.WaitEmpty()
				mu.Lock()
				unicasts += myU
				bcasts += myB
				mu.Unlock()
				return nil
			})
		want := unicasts + bcasts*8
		if delivered != want {
			t.Fatalf("%v: delivered %d, want %d (u=%d b=%d)", scheme, delivered, want, unicasts, bcasts)
		}
	}
}

// TestStragglerAsyncAdvantage is the paper's headline scenario: one slow
// rank, everyone else exchanging messages that do not involve it. Ranks
// that don't route through the straggler must finish long before it.
func TestStragglerAsyncAdvantage(t *testing.T) {
	topo := machine.New(4, 2)
	cfg := transport.Config{
		Topo:  topo,
		Model: netsim.Quartz(),
		Seed:  3,
		ComputeScale: func(r machine.Rank) float64 {
			if r == 7 {
				return 1000
			}
			return 1
		},
	}
	finish := make([]float64, topo.WorldSize())
	_, err := transport.Run(cfg, func(p *transport.Proc) error {
		mb := New(p, func(s Sender, payload []byte) {},
			WithScheme(machine.NodeRemote), WithCapacity(8), WithExchange(LazyExchange)).(*Mailbox)
		p.Compute(100e-6)
		// Ranks 0..3 (nodes 0-1) exchange among themselves only.
		if p.Rank() < 4 {
			for i := 0; i < 50; i++ {
				mb.Send(machine.Rank((int(p.Rank())+1)%4), encodeU64(uint64(i)))
			}
		}
		// Flush and record when this rank's own data work is done —
		// before the collective wait.
		mb.Flush()
		finish[p.Rank()] = p.Now()
		mb.WaitEmpty()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	slowest := finish[7]
	for r := 0; r < 4; r++ {
		if finish[r] >= slowest {
			t.Fatalf("rank %d data phase (%g) should finish before straggler compute (%g)", r, finish[r], slowest)
		}
	}
}

// TestNoVirtualTimeRatchet is the regression test for the tail-flush
// ordering in termination detection: pending buffers must be flushed
// BEFORE draining arrivals (Section IV-B's "flushes its pending send
// buffers"). With the order reversed, each rank's sub-capacity tail is
// sent at a clock ratcheted up by whatever arrivals the rank absorbed
// first, serializing the world in virtual time: the makespan approaches
// the SUM of per-rank busy times instead of their maximum. The assertion
// bounds makespan by a small multiple of the busiest rank.
func TestNoVirtualTimeRatchet(t *testing.T) {
	rep := runMailbox(t, 16, 4, Options{Scheme: machine.NoRoute, Capacity: 1 << 14},
		func(p *transport.Proc) Handler {
			return func(s Sender, payload []byte) {}
		},
		func(p *transport.Proc, mb *Mailbox) error {
			rng := p.Rng()
			// All records stay buffered until WaitEmpty (capacity is
			// larger than the send count), maximizing the tail.
			for i := 0; i < 512; i++ {
				mb.Send(machine.Rank(rng.Intn(p.WorldSize())), encodeU64(uint64(i)))
			}
			mb.WaitEmpty()
			return nil
		})
	maxBusy := 0.0
	for _, rr := range rep.Ranks {
		if rr.Busy > maxBusy {
			maxBusy = rr.Busy
		}
	}
	if ms := rep.Makespan(); ms > 6*maxBusy+1e-3 {
		t.Fatalf("makespan %.3fms vs busiest rank %.3fms: virtual-time ratchet is back",
			ms*1e3, maxBusy*1e3)
	}
}
