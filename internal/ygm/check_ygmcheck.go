//go:build ygmcheck

package ygm

import (
	"fmt"

	"ygm/internal/transport"
)

// ygmcheckEnabled reports whether the runtime invariant layer is compiled
// in (`go test -tags ygmcheck ./...`). The no-op twin lives in
// check_noop.go.
const ygmcheckEnabled = true

// checkf panics with a descriptive ygmcheck message when cond is false.
func checkf(cond bool, format string, args ...any) {
	if !cond {
		panic("ygmcheck: " + fmt.Sprintf(format, args...))
	}
}

// checkCapacityBound asserts the paper's mailbox-size contract after an
// application-level queueing operation: outside packet processing (where
// flushes are deferred until the packet is fully handled), the coalescing
// buffers never hold a full mailbox — reaching Capacity triggers a
// communication context. It also checks the per-hop record accounting.
func (mb *Mailbox) checkCapacityBound() {
	if mb.processing > 0 {
		return
	}
	checkf(mb.queued < mb.opts.Capacity,
		"rank %d coalescing buffers hold %d records, capacity %d: flush-at-capacity violated",
		mb.p.Rank(), mb.queued, mb.opts.Capacity)
	total := 0
	for _, i := range mb.slots.active {
		total += mb.slots.slots[i].count
	}
	checkf(total == mb.queued,
		"rank %d queued-record accounting out of balance: cached %d, actual %d",
		mb.p.Rank(), mb.queued, total)
}

// checkQuiescent asserts the postcondition of a positive termination
// verdict: the rank holds no unflushed records. A violation means the
// flush-before-drain discipline broke — the counting consensus declared
// quiescence while this rank still had buffered sends. (The inbox may
// legitimately hold *next-phase* packets from ranks that observed the
// verdict earlier and already resumed sending, so inbox emptiness is
// deliberately not asserted.)
func checkQuiescent(p *transport.Proc, pendingSends int, site string) {
	checkf(pendingSends == 0,
		"rank %d left %s with %d unflushed records", p.Rank(), site, pendingSends)
}

// checkVerdictBalanced asserts the counting-consensus invariant at the
// moment rank 0 declares global quiescence: every record hop sent has
// been received.
func (td *termDetector) checkVerdictBalanced(done bool) {
	if done {
		checkf(td.accS == td.accR,
			"termination verdict with unbalanced counters: sent %d, received %d", td.accS, td.accR)
	}
}
