package ygm

import (
	"errors"
	"fmt"

	"ygm/internal/machine"
	"ygm/internal/transport"
)

// ErrUnsupported is returned by Box methods that a mailbox variant does
// not implement — most notably TestEmpty on the round-matched and
// synchronous variants, whose exchanges are collective and cannot make
// unilateral nonblocking progress.
var ErrUnsupported = errors.New("ygm: operation not supported by this mailbox variant")

// YgmcheckEnabled reports whether the build carries the ygmcheck runtime
// invariant layer, whose assertions box their arguments — packages
// layered on the mailbox (the container engine) skip their zero-alloc
// pins on instrumented builds, mirroring this package's own pins.
func YgmcheckEnabled() bool { return ygmcheckEnabled }

// Option configures a mailbox built by New. Options compose left to
// right; later options override earlier ones.
type Option func(*Options)

// WithScheme selects the routing protocol (default machine.NoRoute).
func WithScheme(s machine.Scheme) Option {
	return func(o *Options) { o.Scheme = s }
}

// WithExchange selects the exchange semantics: RoundExchange (default),
// LazyExchange, or SyncExchange.
func WithExchange(e ExchangeStyle) Option {
	return func(o *Options) { o.Exchange = e }
}

// WithCapacity sets the number of queued records that triggers an
// exchange — the paper's "mailbox size" (default 1024).
func WithCapacity(n int) Option {
	return func(o *Options) { o.Capacity = n }
}

// WithPollEvery sets how many Sends pass between opportunistic inbox
// polls (lazy exchange only; default 8).
func WithPollEvery(n int) Option {
	return func(o *Options) { o.PollEvery = n }
}

// WithZeroCopyLocal enables the Section VII zero-copy local exchange:
// coalescing buffers bound for same-node ranks are handed to the
// receiver without the pack-time copy (the buffer itself travels and is
// recycled after delivery). Off by default to model the copying
// interconnect path the paper measures.
func WithZeroCopyLocal(on bool) Option {
	return func(o *Options) { o.ZeroCopyLocal = on }
}

// WithCopyOnDeliver makes the mailbox copy each payload before invoking
// the handler. Handlers are normally forbidden from retaining payload
// slices — delivery buffers are pooled and recycled as soon as the
// packet is dispatched — so a handler that must keep payloads beyond its
// own return either copies them itself or sets this option.
func WithCopyOnDeliver(on bool) Option {
	return func(o *Options) { o.CopyOnDeliver = on }
}

// WithTap installs oracle instrumentation observing every queued record
// (testing only; see Tap).
func WithTap(t Tap) Option {
	return func(o *Options) { o.Tap = t }
}

// WithHooks installs fault-injection hooks (testing only; see TestHooks).
func WithHooks(h *TestHooks) Option {
	return func(o *Options) { o.Hooks = h }
}

// New builds the mailbox variant selected by the options (RoundExchange
// by default) on rank p with the given receive handler. It panics on a
// nil handler or an invalid configuration: mailbox construction is
// collective — every rank must construct one with identical options —
// so a bad configuration is a programming error, not a runtime
// condition.
//
// This is the single constructor for all three exchange styles:
//
//	mb := ygm.New(p, handler,
//	    ygm.WithScheme(machine.NLNR),
//	    ygm.WithExchange(ygm.LazyExchange),
//	    ygm.WithCapacity(1<<18))
func New(p *transport.Proc, handler Handler, opts ...Option) Box {
	var o Options
	for _, fn := range opts {
		fn(&o)
	}
	switch o.Exchange {
	case LazyExchange:
		return newLazy(p, handler, o)
	case RoundExchange:
		mb, err := newRound(p, handler, o)
		if err != nil {
			panic(err) // nil handler or unknown scheme: programming error
		}
		return mb
	case SyncExchange:
		mb, err := newSync(p, handler, o)
		if err != nil {
			panic(err)
		}
		return mb
	}
	panic(fmt.Sprintf("ygm: unknown exchange style %v", o.Exchange))
}
