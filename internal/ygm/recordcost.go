package ygm

import "ygm/internal/netsim"

// recordCost caches the cost-model constants the per-record dispatch
// loops charge. RecordHandlingTime has a value receiver, so calling it
// through Proc.Model copies the whole struct once per record; the
// scalars below are all the loops need. The bandwidth term is cached as
// a reciprocal so the per-record charge is one multiply instead of one
// divide — the result can differ from Model.RecordHandlingTime in the
// last ulp, which is far below the fidelity of the cost model itself.
type recordCost struct {
	overhead float64 // Model.RecordOverhead
	invBW    float64 // 1 / Model.LocalBandwidth
	perMsg   float64 // Model.ComputePerMessage
}

func newRecordCost(m *netsim.Model) recordCost {
	return recordCost{
		overhead: m.RecordOverhead,
		invBW:    1 / m.LocalBandwidth,
		perMsg:   m.ComputePerMessage,
	}
}

// handling mirrors netsim.Model.RecordHandlingTime (to within one ulp;
// see the reciprocal note above).
func (c recordCost) handling(bytes int) float64 {
	return c.overhead + float64(bytes)*c.invBW
}
