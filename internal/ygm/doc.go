// Package ygm is the core of this reproduction: the You've Got Mail
// pseudo-asynchronous communication layer of Priest, Steil, Sanders and
// Pearce (IPPS 2019), rebuilt in Go on the simulated-cluster transport.
//
// Programs construct a mailbox with New, giving a receive callback and
// functional options, queue point-to-point messages with Send and
// broadcasts with Broadcast, and finish with WaitEmpty:
//
//	mb := ygm.New(p, handler,
//	    ygm.WithScheme(machine.NLNR),
//	    ygm.WithCapacity(1<<10))
//	mb.Send(dst, payload)
//	mb.Broadcast(payload)
//	mb.WaitEmpty()
//
// When the mailbox fills, the rank enters a communication context: it
// flushes its coalescing buffers along the routing scheme's next hops
// and opportunistically processes arrived messages — without a global
// barrier, so a slow rank delays only the ranks whose messages route
// through it.
//
// New returns a Box, the interface over the three exchange variants
// selected by WithExchange:
//
//	RoundExchange  the paper's round-matched protocol (default): a flush
//	               sends exactly one packet — possibly empty — to every
//	               stage partner and receives one from each, so packet
//	               arrival patterns match the paper's
//	LazyExchange   forwards opportunistically with no round structure;
//	               the only variant whose TestEmpty supports
//	               non-blocking polling (the HavoqGT pattern)
//	SyncExchange   the bulk-synchronous ALLTOALLV-backed baseline of
//	               Section III-A, driven by explicit Exchange calls
//
// Four routing schemes are provided (Section III of the paper):
//
//	NoRoute     direct core-to-core sends (baseline)
//	NodeLocal   local exchange first, then C per-core-offset remote channels
//	NodeRemote  remote exchange first, then local delivery
//	NLNR        local, remote, local; one channel per node pair (layers)
//
// Messages between co-located ranks travel through simulated shared
// memory; off-node hops pay wire costs, so coalescing many small records
// into few large packets — the point of the routing schemes — shows up
// directly in simulated time and in the traffic statistics.
//
// # Allocation discipline
//
// The steady-state queue→coalesce→pack→send→deliver path performs zero
// heap allocations per message on every variant (pinned by the
// testing.AllocsPerRun tests in alloc_test.go and catalogued in
// DESIGN.md §8): coalescing buffers live in dense per-partner slots
// that are reused across flushes, packet payloads come from the
// transport's buffer pool, and delivery hands the handler a slice that
// aliases the pooled packet. The flip side is a retention contract: a
// handler must not keep its payload slice after returning unless the
// mailbox was built with WithCopyOnDeliver(true). Functions on this
// path carry a //ygm:hotpath annotation, and the ygmvet allocinloop
// analyzer flags allocation sites inside them at vet time.
//
// WithZeroCopyLocal enables Section VII's optimization: local-hop
// packets detach the coalescing buffer itself instead of copying it,
// trading a pooled-buffer swap for the memcpy.
//
// Termination detection follows the paper's Section IV-B: ranks declare
// themselves done producing messages, flush (including empty buffers —
// here, counter reports), and the layer detects global quiescence by a
// counting consensus: record-hop send and receive totals must balance and
// stay unchanged over two consecutive global reductions. TestEmpty
// drives the same state machine without blocking on the lazy variant and
// returns ErrUnsupported elsewhere.
package ygm
