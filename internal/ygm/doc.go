// Package ygm is the core of this reproduction: the You've Got Mail
// pseudo-asynchronous communication layer of Priest, Steil, Sanders and
// Pearce (IPPS 2019), rebuilt in Go on the simulated-cluster transport.
//
// Programs create a Mailbox with a receive callback and a capacity, queue
// point-to-point messages with Send and broadcasts with SendBcast, and
// finish with WaitEmpty (or poll TestEmpty). When the mailbox fills, the
// rank enters a communication context: it flushes its coalescing buffers
// along the routing scheme's next hops and opportunistically processes
// arrived messages — without a global barrier, so a slow rank delays only
// the ranks whose messages route through it.
//
// Four routing schemes are provided (Section III of the paper):
//
//	NoRoute     direct core-to-core sends (baseline)
//	NodeLocal   local exchange first, then C per-core-offset remote channels
//	NodeRemote  remote exchange first, then local delivery
//	NLNR        local, remote, local; one channel per node pair (layers)
//
// Messages between co-located ranks travel through simulated shared
// memory; off-node hops pay wire costs, so coalescing many small records
// into few large packets — the point of the routing schemes — shows up
// directly in simulated time and in the traffic statistics.
//
// Termination detection follows the paper's Section IV-B: ranks declare
// themselves done producing messages, flush (including empty buffers —
// here, counter reports), and the layer detects global quiescence by a
// counting consensus: record-hop send and receive totals must balance and
// stay unchanged over two consecutive global reductions.
package ygm
