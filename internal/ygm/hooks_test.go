package ygm

import (
	"testing"

	"ygm/internal/machine"
)

// TestHookFastPathAllocs pins the cost of the oracle instrumentation
// points when disabled: a nil Tap and nil TestHooks must be a branch,
// not an allocation, so production runs are unaffected by the
// simulation-fuzz plumbing.
func TestHookFastPathAllocs(t *testing.T) {
	topo := machine.New(2, 4)
	opts := Options{Scheme: machine.NLNR}
	payload := []byte{1, 2, 3, 4}
	var sink machine.Rank

	allocs := testing.AllocsPerRun(100, func() {
		opts.tapQueued(0, 1, 5, kindUnicast, payload)
		sink = opts.nextHop(topo, 0, 5)
		if opts.dropDelivery(0, payload) {
			t.Fatal("nil hooks reported a drop")
		}
	})
	if allocs != 0 {
		t.Fatalf("disabled hook path allocated %.1f times per op, want 0", allocs)
	}
	_ = sink
}
