package ygm

import (
	"fmt"

	"ygm/internal/codec"
	"ygm/internal/machine"
	"ygm/internal/obs"
	"ygm/internal/transport"
)

// TagTerm is the transport tag reserved for termination-detection
// traffic.
const TagTerm transport.Tag = 2

// termDetector implements the counting-consensus termination detection
// of Section IV-B as an incremental state machine, so that TestEmpty can
// make progress without blocking (the HavoqGT polling pattern) while
// WaitEmpty drives the same machine with blocking receives.
//
// Each detection *generation* is a binomial-tree reduction of the global
// (HopsSent, HopsRecv) counters to rank 0 followed by a binomial
// broadcast of the verdict. Rank 0 declares quiescence when the counters
// balance and are unchanged from the previous generation — Mattern's
// four-counter condition, which tolerates messages observed in flight
// across unsynchronized counter snapshots.
type termDetector struct {
	p     *transport.Proc
	stats *Stats

	gen      uint64
	phase    termPhase
	got      int    // children contributions received this generation
	accS     uint64 // accumulated subtree sent count
	accR     uint64 // accumulated subtree recv count
	prevS    uint64 // previous generation's global sent count (rank 0)
	prevR    uint64
	havePrev bool

	children []int // world-rank children in the binomial tree (root 0)
	parent   int   // world-rank parent, -1 for rank 0

	// hooks carries the mutation-test fault injection points (nil in
	// production); only ForceVerdict applies here.
	hooks *TestHooks

	// pending buffers contributions/verdicts that physically arrived
	// ahead of this rank's progress through their generation.
	pendingContrib map[uint64][][2]uint64
	pendingVerdict map[uint64]bool

	// scratch is the reusable encoder for outgoing termination packets.
	// Encoded bytes are copied into pooled payload buffers before
	// sending (payload ownership transfers on Send), so one scratch
	// writer serves every generation without per-send allocation.
	scratch codec.Writer

	// gens mirrors Stats.Generations into the rank's metric registry.
	gens *obs.Counter
}

type termPhase int

const (
	termCollect      termPhase = iota // gathering children contributions
	termAwaitVerdict                  // contribution sent, waiting on verdict
)

func (td *termDetector) init(p *transport.Proc, stats *Stats) {
	td.p = p
	td.stats = stats
	size := p.WorldSize()
	me := int(p.Rank())
	td.parent = -1
	for mask := 1; mask < size; mask <<= 1 {
		if me&mask == 0 {
			if me|mask < size {
				td.children = append(td.children, me|mask)
			}
		} else {
			td.parent = me &^ mask
			break
		}
	}
	td.pendingContrib = make(map[uint64][][2]uint64)
	td.pendingVerdict = make(map[uint64]bool)
	td.gens = p.Metrics().Counter("term.generations")
	td.startGeneration()
}

// reset prepares the detector for the next WaitEmpty/TestEmpty cycle
// after a generation concluded with a positive verdict.
func (td *termDetector) reset() {
	td.phase = termCollect
	td.havePrev = false
	td.startGeneration()
}

func (td *termDetector) startGeneration() {
	td.gen++
	td.stats.Generations++
	td.gens.Inc()
	td.p.Mark("term.gen", td.gen)
	td.phase = termCollect
	td.got = 0
	td.accS = 0
	td.accR = 0
	// Generations are adopted only by exact match against td.gen, and
	// td.gen is monotonic across cycles, so buffered state for older
	// generations is dead — it accumulates across WaitEmpty cycles (e.g.
	// after forced verdicts or peer-failure unwinds) unless purged here.
	for g := range td.pendingContrib {
		if g < td.gen {
			delete(td.pendingContrib, g)
		}
	}
	for g := range td.pendingVerdict {
		if g < td.gen {
			delete(td.pendingVerdict, g)
		}
	}
	// Adopt any contributions that raced ahead of us.
	if early, ok := td.pendingContrib[td.gen]; ok {
		for _, c := range early {
			td.accS += c[0]
			td.accR += c[1]
			td.got++
		}
		delete(td.pendingContrib, td.gen)
	}
}

// step advances the state machine through at most one complete
// generation. With block=true it blocks on needed packets until the
// current generation's verdict is known; with block=false it consumes
// whatever has arrived and returns early. It returns true exactly when a
// generation concluded with a global-quiescence verdict; a false verdict
// also returns (with the next generation started) so that the caller can
// drain data traffic between generations.
func (td *termDetector) step(block bool) bool {
	for {
		switch td.phase {
		case termCollect:
			if td.got < len(td.children) {
				if !td.absorb(block) {
					return false
				}
				continue
			}
			// All children in: add own counters and escalate.
			td.accS += td.stats.HopsSent
			td.accR += td.stats.HopsRecv
			if td.parent < 0 {
				done := td.verdict()
				td.relayVerdict(done)
				if done {
					return true
				}
				td.startGeneration()
				return false
			}
			td.scratch.Reset()
			td.scratch.Byte(0) // contribution
			td.scratch.Uvarint(td.gen)
			td.scratch.Uvarint(td.accS)
			td.scratch.Uvarint(td.accR)
			buf := td.p.AcquireBuf(td.scratch.Len())
			copy(buf, td.scratch.Bytes())
			td.p.SendPooled(machine.Rank(td.parent), TagTerm, buf)
			td.phase = termAwaitVerdict
		case termAwaitVerdict:
			if done, ok := td.pendingVerdict[td.gen]; ok {
				delete(td.pendingVerdict, td.gen)
				td.relayVerdict(done)
				if done {
					return true
				}
				td.startGeneration()
				return false
			}
			if !td.absorb(block) {
				return false
			}
		}
	}
}

// verdict evaluates rank 0's termination condition for the accumulated
// global counters of this generation.
func (td *termDetector) verdict() bool {
	balanced := td.accS == td.accR
	unchanged := td.havePrev && td.accS == td.prevS && td.accR == td.prevR
	td.prevS, td.prevR = td.accS, td.accR
	td.havePrev = true
	done := balanced && unchanged
	if td.hooks != nil && td.hooks.ForceVerdict != nil {
		done = td.hooks.ForceVerdict(balanced, unchanged)
	}
	td.checkVerdictBalanced(done)
	return done
}

// relayVerdict forwards the verdict for the current generation down the
// binomial broadcast tree: encoded once into the scratch writer, copied
// into a pooled payload per child.
func (td *termDetector) relayVerdict(done bool) {
	if len(td.children) == 0 {
		return
	}
	td.scratch.Reset()
	td.scratch.Byte(1) // verdict
	td.scratch.Uvarint(td.gen)
	flag := byte(0)
	if done {
		flag = 1
	}
	td.scratch.Byte(flag)
	for _, child := range td.children {
		buf := td.p.AcquireBuf(td.scratch.Len())
		copy(buf, td.scratch.Bytes())
		td.p.SendPooled(machine.Rank(child), TagTerm, buf)
	}
}

// absorb consumes one termination packet, buffering it under its
// generation. Returns false when nothing is available and block is
// false.
func (td *termDetector) absorb(block bool) bool {
	var pkt *transport.Packet
	if block {
		pkt = td.p.Recv(TagTerm)
	} else {
		pkt = td.p.Drain(TagTerm)
		if pkt == nil {
			return false
		}
	}
	r := codec.NewReader(pkt.Payload)
	typ, err1 := r.Byte()
	gen, err2 := r.Uvarint()
	if err1 != nil || err2 != nil {
		panic(fmt.Sprintf("ygm: corrupt termination packet: %v %v", err1, err2))
	}
	switch typ {
	case 0: // contribution
		s, err1 := r.Uvarint()
		rr, err2 := r.Uvarint()
		if err1 != nil || err2 != nil {
			panic("ygm: corrupt termination contribution")
		}
		if gen == td.gen && td.phase == termCollect {
			td.accS += s
			td.accR += rr
			td.got++
		} else {
			td.pendingContrib[gen] = append(td.pendingContrib[gen], [2]uint64{s, rr})
		}
	case 1: // verdict
		flag, err := r.Byte()
		if err != nil {
			panic("ygm: corrupt termination verdict")
		}
		td.pendingVerdict[gen] = flag == 1
	default:
		panic(fmt.Sprintf("ygm: unknown termination packet type %d", typ))
	}
	// Every field has been decoded into detector state; the pooled
	// payload can go back to the transport pool.
	td.p.Recycle(pkt)
	return true
}
