//go:build !ygmcheck

package ygm

import "ygm/internal/transport"

// ygmcheckEnabled reports whether the runtime invariant layer is compiled
// in. This is the default build: all checks compile to no-ops.
const ygmcheckEnabled = false

func checkf(bool, string, ...any) {}

func (mb *Mailbox) checkCapacityBound() {}

func checkQuiescent(*transport.Proc, int, string) {}

func (td *termDetector) checkVerdictBalanced(bool) {}
