package ygm

import (
	"errors"
	"strings"
	"testing"
	"time"

	"ygm/internal/machine"
	"ygm/internal/transport"
)

// TestDeadlockWatchdogCatchesBlockingHandler is the regression test for
// the classic mailbox self-deadlock: a receive callback that calls the
// blocking collective WaitEmpty. The nested call consumes a termination
// verdict that the rank's own top-level WaitEmpty then waits for
// forever. The run must be aborted by the transport deadlock watchdog
// with a per-rank state dump — not hang until the test binary times out.
// (ygmvet's blockincallback analyzer flags this pattern statically; this
// test pins the runtime backstop.)
func TestDeadlockWatchdogCatchesBlockingHandler(t *testing.T) {
	cfg := transport.Config{
		Topo:             machine.New(1, 2),
		Seed:             1,
		WatchdogInterval: 10 * time.Millisecond,
	}
	done := make(chan error, 1)
	go func() {
		_, err := transport.Run(cfg, func(p *transport.Proc) error {
			var mb *Mailbox
			mb = New(p, func(s Sender, payload []byte) {
				mb.WaitEmpty() // the forbidden blocking collective inside a handler
			}, WithExchange(LazyExchange)).(*Mailbox)
			if p.Rank() == 0 {
				mb.Send(machine.Rank(1), []byte("x"))
			}
			mb.WaitEmpty()
			return nil
		})
		done <- err
	}()
	var err error
	select {
	case err = <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("self-deadlocking handler was not aborted by the watchdog")
	}
	var derr *transport.DeadlockError
	if !errors.As(err, &derr) {
		t.Fatalf("want transport.DeadlockError with rank dump, got %v", err)
	}
	if len(derr.Blocked) == 0 {
		t.Fatalf("dump reports no blocked ranks: %v", err)
	}
	for _, s := range derr.Blocked {
		if s.BlockedTag != TagTerm {
			t.Errorf("rank %d blocked on tag %#x, want TagTerm (termination traffic)", s.Rank, uint64(s.BlockedTag))
		}
	}
	for _, want := range []string{"deadlock detected", "blocked on tag", "inbox depth"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("dump missing %q:\n%s", want, err.Error())
		}
	}
}
