package ygm

import (
	"fmt"
	"sync"
	"testing"

	"ygm/internal/machine"
	"ygm/internal/netsim"
	"ygm/internal/transport"
)

func runRoundMailbox(t *testing.T, nodes, cores int, opts Options, handler func(p *transport.Proc) Handler,
	body func(p *transport.Proc, mb *RoundMailbox) error) *transport.Report {
	t.Helper()
	rep, err := transport.Run(transport.Config{
		Topo:  machine.New(nodes, cores),
		Model: netsim.Quartz(),
		Seed:  11,
	}, func(p *transport.Proc) error {
		mb, err := newRound(p, handler(p), opts)
		if err != nil {
			return err
		}
		return body(p, mb)
	})
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestRoundNewValidation(t *testing.T) {
	_, err := transport.Run(transport.Config{Topo: machine.New(1, 1)}, func(p *transport.Proc) error {
		if _, err := newRound(p, nil, Options{}); err == nil {
			return fmt.Errorf("nil handler accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestRoundAllToAllDelivery: the all-to-all workload delivers exactly
// once under every scheme through round-matched exchanges.
func TestRoundAllToAllDelivery(t *testing.T) {
	for _, scheme := range machine.Schemes {
		scheme := scheme
		t.Run(scheme.String(), func(t *testing.T) {
			cs := newCounterState()
			runRoundMailbox(t, 4, 3, Options{Scheme: scheme, Capacity: 8},
				func(p *transport.Proc) Handler {
					return func(s Sender, payload []byte) {
						cs.record(p.Rank(), decodeU64(payload))
					}
				},
				func(p *transport.Proc, mb *RoundMailbox) error {
					me := uint64(p.Rank())
					for dst := 0; dst < p.WorldSize(); dst++ {
						if dst != int(p.Rank()) {
							mb.Send(machine.Rank(dst), encodeU64(me*1000+uint64(dst)))
						}
					}
					mb.WaitEmpty()
					return nil
				})
			for r := 0; r < 12; r++ {
				got := cs.delivered[machine.Rank(r)]
				if len(got) != 11 {
					t.Fatalf("%v: rank %d delivered %d, want 11", scheme, r, len(got))
				}
				seen := map[uint64]bool{}
				for _, v := range got {
					if int(v%1000) != r || seen[v] {
						t.Fatalf("%v: rank %d deliveries %v", scheme, r, got)
					}
					seen[v] = true
				}
			}
		})
	}
}

// TestRoundBroadcast: broadcast fan-out semantics carry over.
func TestRoundBroadcast(t *testing.T) {
	for _, scheme := range machine.Schemes {
		scheme := scheme
		t.Run(scheme.String(), func(t *testing.T) {
			cs := newCounterState()
			runRoundMailbox(t, 4, 4, Options{Scheme: scheme},
				func(p *transport.Proc) Handler {
					return func(s Sender, payload []byte) { cs.record(p.Rank(), decodeU64(payload)) }
				},
				func(p *transport.Proc, mb *RoundMailbox) error {
					if p.Rank() == 5 {
						mb.Broadcast(encodeU64(42))
					}
					mb.WaitEmpty()
					return nil
				})
			for r := 0; r < 16; r++ {
				got := cs.delivered[machine.Rank(r)]
				if r == 5 {
					if len(got) != 0 {
						t.Fatalf("origin delivered to itself")
					}
					continue
				}
				if len(got) != 1 || got[0] != 42 {
					t.Fatalf("%v: rank %d got %v", scheme, r, got)
				}
			}
		})
	}
}

// TestRoundHandlerSpawns: the message chain across ranks and rounds.
func TestRoundHandlerSpawns(t *testing.T) {
	for _, scheme := range machine.Schemes {
		scheme := scheme
		t.Run(scheme.String(), func(t *testing.T) {
			cs := newCounterState()
			runRoundMailbox(t, 3, 2, Options{Scheme: scheme},
				func(p *transport.Proc) Handler {
					return func(s Sender, payload []byte) {
						v := decodeU64(payload)
						cs.record(p.Rank(), v)
						if next := int(p.Rank()) + 1; next < p.WorldSize() {
							s.Send(machine.Rank(next), encodeU64(v+1))
						}
					}
				},
				func(p *transport.Proc, mb *RoundMailbox) error {
					if p.Rank() == 0 {
						mb.Send(1, encodeU64(100))
					}
					mb.WaitEmpty()
					return nil
				})
			for r := 1; r < 6; r++ {
				got := cs.delivered[machine.Rank(r)]
				if len(got) != 1 || got[0] != uint64(99+r) {
					t.Fatalf("%v: rank %d got %v", scheme, r, got)
				}
			}
		})
	}
}

// TestRoundCoalescesForwards is the point of the round-matched design:
// under NodeLocal, an intermediary's forwarded records and the direct
// same-core-offset records must share messages, giving (nearly) the same
// remote packet count as NodeRemote on a symmetric workload — the
// NodeLocal ≈ NodeRemote equivalence of Fig. 6 that the lazy-forwarding
// Mailbox cannot reproduce.
func TestRoundCoalescesForwards(t *testing.T) {
	const nodes, cores, msgs = 4, 4, 256
	count := func(scheme machine.Scheme, round bool) uint64 {
		handler := func(p *transport.Proc) Handler {
			return func(s Sender, payload []byte) {}
		}
		body := func(p *transport.Proc, send func(machine.Rank, []byte), wait func()) {
			rng := p.Rng()
			for i := 0; i < msgs; i++ {
				send(machine.Rank(rng.Intn(p.WorldSize())), encodeU64(uint64(i)))
			}
			wait()
		}
		opts := Options{Scheme: scheme, Capacity: 1 << 16}
		var rep *transport.Report
		if round {
			rep = runRoundMailbox(t, nodes, cores, opts, handler,
				func(p *transport.Proc, mb *RoundMailbox) error {
					body(p, mb.Send, mb.WaitEmpty)
					return nil
				})
		} else {
			rep = runMailbox(t, nodes, cores, opts, handler,
				func(p *transport.Proc, mb *Mailbox) error {
					body(p, mb.Send, mb.WaitEmpty)
					return nil
				})
		}
		tot := rep.Totals()
		if round {
			// Round traffic uses TagRound, counted in the general
			// remote counters; exclude termination-detection packets by
			// construction impossible, so compare nonempty remote data:
			// use all remote packets with nonzero payload? Totals lack
			// that split; remote packet counts still dominate by data.
			return tot.RemoteMsgs
		}
		return tot.DataRemoteMsgs
	}
	lazyLocal := count(machine.NodeLocal, false)
	lazyRemote := count(machine.NodeRemote, false)
	roundLocal := count(machine.NodeLocal, true)
	roundRemote := count(machine.NodeRemote, true)
	// Lazy forwarding: NodeLocal ships roughly 2x NodeRemote's packets.
	if float64(lazyLocal) < 1.4*float64(lazyRemote) {
		t.Fatalf("expected lazy NodeLocal to under-coalesce: %d vs %d", lazyLocal, lazyRemote)
	}
	// Round-matched: parity (each rank sends one message per remote
	// partner per round under both schemes).
	ratio := float64(roundLocal) / float64(roundRemote)
	if ratio > 1.25 || ratio < 0.8 {
		t.Fatalf("round-matched NodeLocal/NodeRemote packet ratio = %.2f (%d vs %d), want ~1",
			ratio, roundLocal, roundRemote)
	}
}

// TestRoundCapacityTriggersRounds: exceeding capacity runs exchange
// rounds mid-computation, bounding queued records.
func TestRoundCapacityTriggersRounds(t *testing.T) {
	cs := newCounterState()
	runRoundMailbox(t, 2, 2, Options{Scheme: machine.NodeRemote, Capacity: 8},
		func(p *transport.Proc) Handler {
			return func(s Sender, payload []byte) { cs.record(p.Rank(), decodeU64(payload)) }
		},
		func(p *transport.Proc, mb *RoundMailbox) error {
			for i := 0; i < 40; i++ {
				mb.Send(machine.Rank((int(p.Rank())+1)%4), encodeU64(uint64(i)))
				if mb.PendingSends() > 8+1 {
					return fmt.Errorf("queue grew past capacity: %d", mb.PendingSends())
				}
			}
			mb.WaitEmpty()
			if st := mb.Stats(); st.Flushes == 0 {
				return fmt.Errorf("no rounds ran")
			}
			return nil
		})
	for r := 0; r < 4; r++ {
		if len(cs.delivered[machine.Rank(r)]) != 40 {
			t.Fatalf("rank %d delivered %d", r, len(cs.delivered[machine.Rank(r)]))
		}
	}
}

// TestRoundMatchesAsyncDelivery: identical workloads produce identical
// delivery multisets through the lazy and round-matched mailboxes.
func TestRoundMatchesAsyncDelivery(t *testing.T) {
	workload := func(send func(machine.Rank, []byte), bcast func([]byte), p *transport.Proc) {
		rng := p.Rng()
		for i := 0; i < 60; i++ {
			if rng.Intn(12) == 0 {
				bcast(encodeU64(uint64(1000 + i)))
			} else {
				send(machine.Rank(rng.Intn(p.WorldSize())), encodeU64(uint64(i)))
			}
		}
	}
	collect := func(round bool) map[machine.Rank][]uint64 {
		cs := newCounterState()
		handler := func(p *transport.Proc) Handler {
			return func(s Sender, payload []byte) { cs.record(p.Rank(), decodeU64(payload)) }
		}
		opts := Options{Scheme: machine.NLNR, Capacity: 16}
		if round {
			runRoundMailbox(t, 3, 3, opts, handler, func(p *transport.Proc, mb *RoundMailbox) error {
				workload(mb.Send, mb.Broadcast, p)
				mb.WaitEmpty()
				return nil
			})
		} else {
			runMailbox(t, 3, 3, opts, handler, func(p *transport.Proc, mb *Mailbox) error {
				workload(mb.Send, mb.Broadcast, p)
				mb.WaitEmpty()
				return nil
			})
		}
		return cs.delivered
	}
	a, b := collect(false), collect(true)
	for r := machine.Rank(0); r < 9; r++ {
		counts := map[uint64]int{}
		for _, v := range a[r] {
			counts[v]++
		}
		for _, v := range b[r] {
			counts[v]--
		}
		for v, c := range counts {
			if c != 0 {
				t.Fatalf("rank %d differs at value %d (%+d)", r, v, c)
			}
		}
	}
}

// TestRoundReusable: WaitEmpty cycles on one round mailbox.
func TestRoundReusable(t *testing.T) {
	var mu sync.Mutex
	total := 0
	runRoundMailbox(t, 2, 2, Options{Scheme: machine.NLNR},
		func(p *transport.Proc) Handler {
			return func(s Sender, payload []byte) {
				mu.Lock()
				total++
				mu.Unlock()
			}
		},
		func(p *transport.Proc, mb *RoundMailbox) error {
			for phase := 0; phase < 3; phase++ {
				mb.Send(machine.Rank((int(p.Rank())+1)%4), encodeU64(uint64(phase)))
				mb.WaitEmpty()
			}
			return nil
		})
	if total != 12 {
		t.Fatalf("delivered %d, want 12", total)
	}
}

// TestRoundEpochIsolation is the regression test for cross-phase message
// leakage: ranks exit WaitEmpty at different real times, and a fast rank
// immediately starts the next phase's exchanges. A slow rank still
// concluding the previous WaitEmpty must not join those rounds (its
// handler would observe phase-k+1 messages while the application is in
// phase k — exactly the failure the GraphBLAS layer hit). Epoch-tagged
// rounds pin the fix: every delivery must carry the receiver's current
// phase.
func TestRoundEpochIsolation(t *testing.T) {
	const phases = 6
	_, err := transport.Run(transport.Config{
		Topo:  machine.New(2, 2),
		Model: netsim.Quartz(),
		Seed:  29,
	}, func(p *transport.Proc) error {
		phase := uint64(0)
		var mb *RoundMailbox
		var phaseErr error
		mb, errNew := newRound(p, func(s Sender, payload []byte) {
			if got := decodeU64(payload); got != phase && phaseErr == nil {
				phaseErr = fmt.Errorf("rank %d in phase %d received phase-%d message",
					p.Rank(), phase, got)
			}
		}, Options{Scheme: machine.NLNR, Capacity: 4})
		if errNew != nil {
			return errNew
		}
		for ; phase < phases; phase++ {
			// Rank parity staggers work so exit times differ; everyone
			// sends the current phase number to everyone else.
			if int(phase)%2 == int(p.Rank())%2 {
				p.Compute(50e-6)
			}
			for dst := 0; dst < p.WorldSize(); dst++ {
				if dst != int(p.Rank()) {
					mb.Send(machine.Rank(dst), encodeU64(phase))
				}
			}
			mb.WaitEmpty()
			if phaseErr != nil {
				return phaseErr
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestRoundEmptyBuffers: a rank with nothing to say still participates
// in rounds with empty messages — the Section IV-B behaviour ("YGM
// flushes its pending send buffers, including empty buffers").
func TestRoundEmptyBuffers(t *testing.T) {
	var mu sync.Mutex
	var empties uint64
	runRoundMailbox(t, 2, 2, Options{Scheme: machine.NodeRemote, Capacity: 4},
		func(p *transport.Proc) Handler {
			return func(s Sender, payload []byte) {}
		},
		func(p *transport.Proc, mb *RoundMailbox) error {
			// Only rank 0 sends; everyone else's round participation is
			// pure empty-buffer service.
			if p.Rank() == 0 {
				for i := 0; i < 16; i++ {
					mb.Send(3, encodeU64(uint64(i)))
				}
			}
			mb.WaitEmpty()
			mu.Lock()
			empties += mb.Stats().EmptyRoundMsgs
			mu.Unlock()
			return nil
		})
	if empties == 0 {
		t.Fatal("idle ranks should have sent empty round buffers")
	}
}

// TestRoundRandomTrafficProperty: across random topologies, schemes, and
// capacities, the round-matched mailbox conserves messages exactly:
// delivered == unicasts + bcasts*(P-1), with hop counters balanced.
func TestRoundRandomTrafficProperty(t *testing.T) {
	shapes := []struct{ nodes, cores int }{{1, 1}, {3, 1}, {1, 4}, {2, 3}, {3, 3}, {5, 2}}
	for trial := 0; trial < 6; trial++ {
		scheme := machine.Schemes[trial%len(machine.Schemes)]
		shape := shapes[trial%len(shapes)]
		capacity := 4 << (trial % 4)
		var mu sync.Mutex
		var delivered, unicasts, bcasts uint64
		var hopsSent, hopsRecv uint64
		runRoundMailbox(t, shape.nodes, shape.cores, Options{Scheme: scheme, Capacity: capacity},
			func(p *transport.Proc) Handler {
				return func(s Sender, payload []byte) {
					mu.Lock()
					delivered++
					mu.Unlock()
				}
			},
			func(p *transport.Proc, mb *RoundMailbox) error {
				rng := p.Rng()
				myU, myB := uint64(0), uint64(0)
				for i := 0; i < 50+10*trial; i++ {
					if rng.Intn(9) == 0 {
						mb.Broadcast(encodeU64(uint64(i)))
						myB++
					} else {
						mb.Send(machine.Rank(rng.Intn(p.WorldSize())), encodeU64(uint64(i)))
						myU++
					}
				}
				mb.WaitEmpty()
				st := mb.Stats()
				mu.Lock()
				unicasts += myU
				bcasts += myB
				hopsSent += st.HopsSent
				hopsRecv += st.HopsRecv
				mu.Unlock()
				return nil
			})
		world := uint64(shape.nodes * shape.cores)
		want := unicasts + bcasts*(world-1)
		if delivered != want {
			t.Fatalf("trial %d (%v, %dx%d, cap %d): delivered %d, want %d",
				trial, scheme, shape.nodes, shape.cores, capacity, delivered, want)
		}
		if hopsSent != hopsRecv {
			t.Fatalf("trial %d: hop counters unbalanced after WaitEmpty: %d vs %d",
				trial, hopsSent, hopsRecv)
		}
	}
}
