package ygm

import (
	"fmt"
	"sync/atomic"
	"testing"

	"ygm/internal/machine"
	"ygm/internal/transport"
)

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.Capacity != 1024 || o.PollEvery != 8 {
		t.Fatalf("defaults = %+v", o)
	}
	o = Options{Capacity: 7, PollEvery: 3}.withDefaults()
	if o.Capacity != 7 || o.PollEvery != 3 {
		t.Fatalf("explicit options clobbered: %+v", o)
	}
}

func TestNewPanicsOnNilHandler(t *testing.T) {
	_, err := transport.Run(transport.Config{Topo: machine.New(1, 1)}, func(p *transport.Proc) error {
		New(p, nil, WithExchange(LazyExchange))
		return nil
	})
	if err == nil {
		t.Fatal("nil handler should panic -> error")
	}
}

func TestMailboxAccessors(t *testing.T) {
	runMailbox(t, 1, 2, Options{Scheme: machine.NLNR},
		func(p *transport.Proc) Handler {
			return func(s Sender, payload []byte) {}
		},
		func(p *transport.Proc, mb *Mailbox) error {
			if mb.Proc() != p {
				return fmt.Errorf("Proc accessor broken")
			}
			if mb.Scheme() != machine.NLNR {
				return fmt.Errorf("Scheme accessor broken")
			}
			mb.WaitEmpty()
			return nil
		})
}

// TestBufferHopsBeforeFlush inspects the coalescing buffers directly:
// queued records must sit under the scheme's first-hop ranks.
func TestBufferHopsBeforeFlush(t *testing.T) {
	runMailbox(t, 4, 4, Options{Scheme: machine.NLNR, Capacity: 1 << 20},
		func(p *transport.Proc) Handler {
			return func(s Sender, payload []byte) {}
		},
		func(p *transport.Proc, mb *Mailbox) error {
			if p.Rank() == p.Topo().RankOf(1, 0) {
				// (1,0) -> (3,2): first NLNR hop is (1, 3 mod 4) = (1,3).
				mb.Send(p.Topo().RankOf(3, 2), encodeU64(1))
				// (1,0) -> (1,1): local direct.
				mb.Send(p.Topo().RankOf(1, 1), encodeU64(2))
				hops := mb.sortedHops()
				want := []machine.Rank{p.Topo().RankOf(1, 1), p.Topo().RankOf(1, 3)}
				if len(hops) != 2 || hops[0] != want[0] || hops[1] != want[1] {
					return fmt.Errorf("buffer hops = %v, want %v", hops, want)
				}
				if mb.PendingSends() != 2 {
					return fmt.Errorf("pending = %d", mb.PendingSends())
				}
				mb.Flush()
				if mb.PendingSends() != 0 {
					return fmt.Errorf("flush left %d records", mb.PendingSends())
				}
			}
			mb.WaitEmpty()
			return nil
		})
}

// TestManyWaitEmptyCycles stresses detector reuse across many cycles.
func TestManyWaitEmptyCycles(t *testing.T) {
	var delivered atomic.Uint64
	runMailbox(t, 2, 2, Options{Scheme: machine.NodeRemote},
		func(p *transport.Proc) Handler {
			return func(s Sender, payload []byte) { delivered.Add(1) }
		},
		func(p *transport.Proc, mb *Mailbox) error {
			for cycle := 0; cycle < 12; cycle++ {
				if cycle%3 != 2 { // some cycles send nothing at all
					mb.Send(machine.Rank((int(p.Rank())+1)%4), encodeU64(uint64(cycle)))
				}
				mb.WaitEmpty()
			}
			return nil
		})
	if delivered.Load() != 4*8 {
		t.Fatalf("delivered = %d, want 32", delivered.Load())
	}
}

// TestMixedWaitAndTestEmpty: some ranks block in WaitEmpty while others
// poll TestEmpty; both must agree on the same quiescence generation.
func TestMixedWaitAndTestEmpty(t *testing.T) {
	runMailbox(t, 2, 2, Options{Scheme: machine.NLNR},
		func(p *transport.Proc) Handler {
			return func(s Sender, payload []byte) {}
		},
		func(p *transport.Proc, mb *Mailbox) error {
			mb.Send(machine.Rank((int(p.Rank())+2)%4), encodeU64(9))
			if p.Rank()%2 == 0 {
				mb.WaitEmpty()
				return nil
			}
			for {
				done, err := mb.TestEmpty()
				if err != nil {
					return err
				}
				if done {
					return nil
				}
			}
		})
}

// TestBroadcastFromEveryRank: broadcasts from all origins concurrently,
// each delivered P-1 times.
func TestBroadcastFromEveryRank(t *testing.T) {
	for _, scheme := range machine.Schemes {
		scheme := scheme
		t.Run(scheme.String(), func(t *testing.T) {
			cs := newCounterState()
			runMailbox(t, 3, 3, Options{Scheme: scheme, Capacity: 32},
				func(p *transport.Proc) Handler {
					return func(s Sender, payload []byte) { cs.record(p.Rank(), decodeU64(payload)) }
				},
				func(p *transport.Proc, mb *Mailbox) error {
					mb.Broadcast(encodeU64(uint64(p.Rank())))
					mb.WaitEmpty()
					return nil
				})
			for r := machine.Rank(0); r < 9; r++ {
				got := cs.delivered[r]
				if len(got) != 8 {
					t.Fatalf("%v: rank %d delivered %d, want 8", scheme, r, len(got))
				}
				seen := map[uint64]bool{}
				for _, v := range got {
					if v == uint64(r) {
						t.Fatalf("rank %d received its own broadcast", r)
					}
					if seen[v] {
						t.Fatalf("rank %d got duplicate broadcast from %d", r, v)
					}
					seen[v] = true
				}
			}
		})
	}
}

// TestSingleRankWorld: every operation degenerates gracefully at P=1.
func TestSingleRankWorld(t *testing.T) {
	var got []uint64
	runMailbox(t, 1, 1, Options{Scheme: machine.NLNR},
		func(p *transport.Proc) Handler {
			return func(s Sender, payload []byte) { got = append(got, decodeU64(payload)) }
		},
		func(p *transport.Proc, mb *Mailbox) error {
			mb.Send(0, encodeU64(1))
			mb.Broadcast(encodeU64(2)) // deprecated alias; no other ranks: no deliveries
			mb.WaitEmpty()
			// TestEmpty may need a couple of calls for a fresh cycle.
			for {
				done, err := mb.TestEmpty()
				if err != nil {
					return err
				}
				if done {
					return nil
				}
			}
		})
	if len(got) != 1 || got[0] != 1 {
		t.Fatalf("deliveries = %v", got)
	}
}
