package ygm

import (
	"fmt"
	"sort"

	"ygm/internal/codec"
	"ygm/internal/machine"
	"ygm/internal/transport"
)

// Sender is the messaging surface exposed to receive callbacks: both the
// asynchronous Mailbox and the ALLTOALLV-backed SyncMailbox implement it,
// so application handlers work unchanged on either exchange style.
type Sender interface {
	// Send queues a point-to-point message for dst.
	Send(dst machine.Rank, payload []byte)
	// SendBcast queues a broadcast to every other rank.
	SendBcast(payload []byte)
}

// Handler is a mailbox receive callback, invoked once per delivered
// message. Handlers may call s.Send and s.SendBcast (data-dependent
// message spawning, as in graph traversals) but must not call WaitEmpty,
// TestEmpty, or Exchange, and must not retain the payload slice.
type Handler func(s Sender, payload []byte)

// ExchangeStyle selects how a mailbox realizes the paper's exchanges.
type ExchangeStyle int

const (
	// RoundExchange is the paper's protocol: each communication context
	// is a round of one (possibly empty) message per exchange partner
	// per stage, letting forwards coalesce with direct traffic. The
	// production-faithful default.
	RoundExchange ExchangeStyle = iota
	// LazyExchange never round-matches: flushes send whatever is
	// buffered, receives are opportunistic, and termination is purely
	// the counting consensus. Strictly more asynchronous; supports
	// TestEmpty polling.
	LazyExchange
)

// String names the exchange style.
func (e ExchangeStyle) String() string {
	switch e {
	case RoundExchange:
		return "round"
	case LazyExchange:
		return "lazy"
	}
	return fmt.Sprintf("ExchangeStyle(%d)", int(e))
}

// Options configures a Mailbox.
type Options struct {
	// Scheme selects the routing protocol. Default NoRoute.
	Scheme machine.Scheme
	// Capacity is the number of queued records that triggers a flush of
	// all coalescing buffers — the paper's "mailbox size" (its
	// experiments fix 2^18). Default 1024.
	Capacity int
	// PollEvery is how many Sends pass between opportunistic polls of
	// the inbox (lazy exchange only). Default 8.
	PollEvery int
	// Exchange selects the exchange semantics used by NewBox. Default
	// RoundExchange.
	Exchange ExchangeStyle
	// Tap, when non-nil, observes every record queued for an exchange
	// (oracle instrumentation; see Tap). Nil in production.
	Tap Tap
	// Hooks, when non-nil, inject deliberate faults for the mutation
	// smoke tests (see TestHooks). Nil in production.
	Hooks *TestHooks
}

// Box is the mailbox surface the applications program against: queue
// messages, then wait for global quiescence. Both the round-matched and
// the lazy mailbox satisfy it.
type Box interface {
	Sender
	// WaitEmpty blocks until global quiescence. Collective.
	WaitEmpty()
	// Stats returns the mailbox counters.
	Stats() Stats
	// PendingSends reports records queued but not yet exchanged.
	PendingSends() int
}

// NewBox constructs the mailbox variant selected by opts.Exchange.
func NewBox(p *transport.Proc, handler Handler, opts Options) Box {
	switch opts.Exchange {
	case LazyExchange:
		return New(p, handler, opts)
	case RoundExchange:
		mb, err := NewRound(p, handler, opts)
		if err != nil {
			panic(err) // nil handler or unknown scheme: programming error
		}
		return mb
	}
	panic(fmt.Sprintf("ygm: unknown exchange style %v", opts.Exchange))
}

var (
	_ Box = (*Mailbox)(nil)
	_ Box = (*RoundMailbox)(nil)
)

func (o Options) withDefaults() Options {
	if o.Capacity <= 0 {
		o.Capacity = 1024
	}
	if o.PollEvery <= 0 {
		o.PollEvery = 8
	}
	return o
}

// Stats counts mailbox-level activity for one rank.
type Stats struct {
	// Sends is the number of application point-to-point messages queued.
	Sends uint64
	// Broadcasts is the number of SendBcast calls.
	Broadcasts uint64
	// Delivered is the number of messages handed to the callback.
	Delivered uint64
	// Flushes counts communication-context entries that sent at least
	// one packet.
	Flushes uint64
	// HopsSent / HopsRecv count record transmissions and receptions,
	// including intermediary forwarding (the termination counters).
	HopsSent uint64
	HopsRecv uint64
	// Generations counts termination-detection rounds (diagnostic).
	Generations uint64
	// EmptyRoundMsgs counts the empty exchange messages the
	// round-matched protocol sends when a rank has nothing for a partner
	// — the "empty buffers" Section IV-B's termination detection keys
	// on. Always zero for the lazy mailbox.
	EmptyRoundMsgs uint64
}

// Mailbox is the YGM communication endpoint for one rank. It is confined
// to its rank's goroutine. All ranks of the world must construct their
// mailbox with identical Options; WaitEmpty is a collective operation.
type Mailbox struct {
	p       *transport.Proc
	opts    Options
	handler Handler
	stats   Stats

	// Coalescing buffers, one per next-hop rank currently holding
	// records. bufOrder keeps hop ranks in first-use order so flushes
	// are deterministic for a deterministic send sequence.
	bufs     map[machine.Rank]*codec.Writer
	bufCount map[machine.Rank]int
	bufOrder []machine.Rank
	queued   int

	sinceLastPoll int
	processing    bool // true while records of a packet are being handled

	term termDetector
}

// New creates a mailbox on rank p with the given receive handler.
func New(p *transport.Proc, handler Handler, opts Options) *Mailbox {
	if handler == nil {
		panic("ygm: nil handler")
	}
	mb := &Mailbox{
		p:        p,
		opts:     opts.withDefaults(),
		handler:  handler,
		bufs:     make(map[machine.Rank]*codec.Writer),
		bufCount: make(map[machine.Rank]int),
	}
	mb.term.init(p, &mb.stats)
	mb.term.hooks = mb.opts.Hooks
	return mb
}

// Proc returns the underlying transport endpoint.
func (mb *Mailbox) Proc() *transport.Proc { return mb.p }

// Scheme returns the routing scheme in use.
func (mb *Mailbox) Scheme() machine.Scheme { return mb.opts.Scheme }

// Stats returns a copy of the mailbox counters.
func (mb *Mailbox) Stats() Stats { return mb.stats }

// Send queues a point-to-point message for dst. If dst is the calling
// rank the message is delivered synchronously. Queueing may trigger a
// communication context (flush plus opportunistic receive) when the
// mailbox reaches capacity.
func (mb *Mailbox) Send(dst machine.Rank, payload []byte) {
	if !mb.p.Topo().Valid(dst) {
		panic(fmt.Sprintf("ygm: send to invalid rank %d", dst))
	}
	mb.stats.Sends++
	if dst == mb.p.Rank() {
		mb.deliver(payload)
		return
	}
	hop := mb.opts.nextHop(mb.p.Topo(), mb.p.Rank(), dst)
	mb.enqueue(hop, kindUnicast, dst, payload)
	mb.afterQueue()
	mb.checkCapacityBound()
}

// SendBcast queues a broadcast of payload to every other rank, routed by
// the scheme-specific fan-out of Section III (NodeRemote and NLNR use
// N-1 remote messages; NodeLocal uses C*(N-1); NoRoute sends individual
// copies). The origin does not deliver to itself.
func (mb *Mailbox) SendBcast(payload []byte) {
	mb.stats.Broadcasts++
	topo := mb.p.Topo()
	me := mb.p.Rank()
	node, core := topo.Node(me), topo.Core(me)
	switch mb.opts.Scheme {
	case machine.NoRoute:
		for r := machine.Rank(0); int(r) < topo.WorldSize(); r++ {
			if r != me {
				mb.enqueue(r, kindUnicast, r, payload)
			}
		}
	case machine.NodeLocal:
		// Local fan-out to every other core offset; this rank covers its
		// own core offset's remote channel directly.
		for c := 0; c < topo.Cores(); c++ {
			if c != core {
				mb.enqueue(topo.RankOf(node, c), kindBcastLocalFanout, machine.Nil, payload)
			}
		}
		for n := 0; n < topo.Nodes(); n++ {
			if n != node {
				mb.enqueue(topo.RankOf(n, core), kindBcastDeliver, machine.Nil, payload)
			}
		}
	case machine.NodeRemote:
		for n := 0; n < topo.Nodes(); n++ {
			if n != node {
				mb.enqueue(topo.RankOf(n, core), kindBcastRemoteDistribute, machine.Nil, payload)
			}
		}
		for c := 0; c < topo.Cores(); c++ {
			if c != core {
				mb.enqueue(topo.RankOf(node, c), kindBcastDeliver, machine.Nil, payload)
			}
		}
	case machine.NLNR:
		// Local fan-out cores relay to their residue classes; this rank
		// covers its own class itself.
		for c := 0; c < topo.Cores(); c++ {
			if c != core {
				mb.enqueue(topo.RankOf(node, c), kindBcastNLNRFanout, machine.Nil, payload)
			}
		}
		mb.nlnrBcastFanout(payload)
	default:
		panic("ygm: unknown scheme")
	}
	mb.afterQueue()
	mb.checkCapacityBound()
}

// nlnrBcastFanout sends the NLNR remote-distribution stage for the
// calling rank's residue class: one message per other node n' with
// n' mod C == this core's offset, addressed to core (myNode mod C).
func (mb *Mailbox) nlnrBcastFanout(payload []byte) {
	topo := mb.p.Topo()
	node, core := topo.Node(mb.p.Rank()), topo.Core(mb.p.Rank())
	for n := core; n < topo.Nodes(); n += topo.Cores() {
		if n != node {
			mb.enqueue(topo.NLNRRemoteIntermediary(node, n), kindBcastNLNRDistribute, machine.Nil, payload)
		}
	}
}

// enqueue appends one record to the coalescing buffer for hop.
func (mb *Mailbox) enqueue(hop machine.Rank, kind recordKind, dst machine.Rank, payload []byte) {
	if hop == mb.p.Rank() {
		panic(fmt.Sprintf("ygm: routing produced a self-hop on rank %d", hop))
	}
	w, ok := mb.bufs[hop]
	if !ok {
		w = codec.NewWriter(recordSize(kind, dst, len(payload)) + 64)
		mb.bufs[hop] = w
		mb.bufOrder = append(mb.bufOrder, hop)
	}
	appendRecord(w, kind, dst, payload)
	mb.bufCount[hop]++
	mb.queued++
	mb.opts.tapQueued(mb.p.Rank(), hop, dst, kind, payload)
}

// afterQueue runs the capacity check and opportunistic poll that follow
// any application-level queueing operation.
func (mb *Mailbox) afterQueue() {
	if mb.processing {
		// Forwards spawned while handling a packet are flushed by the
		// caller once the whole packet is processed.
		return
	}
	if mb.queued >= mb.opts.Capacity {
		mb.enterCommContext()
		return
	}
	mb.sinceLastPoll++
	if mb.sinceLastPoll >= mb.opts.PollEvery {
		mb.sinceLastPoll = 0
		for mb.pollOnce() {
		}
	}
}

// enterCommContext is the paper's "mailbox full" behaviour: flush all
// buffers, then process every message that has (virtually) arrived —
// which may enqueue forwards, which are flushed in turn.
func (mb *Mailbox) enterCommContext() {
	mb.flushAll()
	for mb.pollOnce() {
		if mb.queued >= mb.opts.Capacity {
			mb.flushAll()
		}
	}
	mb.flushAll()
}

// pollOnce processes at most one arrived data packet without waiting.
// It reports whether a packet was processed.
func (mb *Mailbox) pollOnce() bool {
	pkt := mb.p.Poll(transport.TagData)
	if pkt == nil {
		return false
	}
	mb.processPacket(pkt)
	return true
}

// flushAll sends every non-empty coalescing buffer to its hop rank.
// Buffers are sent in first-use order; each becomes one transport packet.
func (mb *Mailbox) flushAll() {
	if mb.queued == 0 {
		return
	}
	sent := false
	for _, hop := range mb.bufOrder {
		w := mb.bufs[hop]
		if w.Len() == 0 {
			continue
		}
		payload := make([]byte, w.Len())
		copy(payload, w.Bytes())
		mb.p.Send(hop, transport.TagData, payload)
		mb.stats.HopsSent += uint64(mb.bufCount[hop])
		mb.queued -= mb.bufCount[hop]
		mb.bufCount[hop] = 0
		w.Reset()
		sent = true
	}
	if sent {
		mb.stats.Flushes++
	}
	if mb.queued != 0 {
		panic("ygm: queued-record accounting out of balance")
	}
	// Reset buffer order occasionally to bound the map for long runs
	// with shifting destination sets.
	if len(mb.bufOrder) > 4*mb.p.Topo().Cores()+64 {
		mb.bufs = make(map[machine.Rank]*codec.Writer)
		mb.bufCount = make(map[machine.Rank]int)
		mb.bufOrder = mb.bufOrder[:0]
	}
}

// processPacket decodes and dispatches every record in pkt, then flushes
// any forwards the records generated.
func (mb *Mailbox) processPacket(pkt *transport.Packet) {
	mb.processing = true
	r := codec.NewReader(pkt.Payload)
	for r.Remaining() > 0 {
		rec, err := parseRecord(r)
		if err != nil {
			panic(fmt.Sprintf("ygm: rank %d corrupt packet from %d: %v", mb.p.Rank(), pkt.Src, err))
		}
		mb.stats.HopsRecv++
		// Per-record handling is a few nanoseconds plus a memcpy; the
		// per-message overhead was already charged when the packet was
		// received. Coalescing amortizes exactly this difference.
		mb.p.Compute(mb.p.Model().RecordHandlingTime(len(rec.payload)))
		mb.dispatch(rec)
	}
	mb.processing = false
	if mb.queued >= mb.opts.Capacity {
		mb.flushAll()
	}
}

// dispatch delivers or forwards one record according to its kind.
func (mb *Mailbox) dispatch(rec record) {
	topo := mb.p.Topo()
	me := mb.p.Rank()
	switch rec.kind {
	case kindUnicast:
		if rec.dst == me {
			mb.deliver(rec.payload)
			return
		}
		hop := mb.opts.nextHop(topo, me, rec.dst)
		mb.enqueue(hop, kindUnicast, rec.dst, mb.copyPayload(rec.payload))
	case kindBcastDeliver:
		mb.deliver(rec.payload)
	case kindBcastLocalFanout:
		mb.deliver(rec.payload)
		payload := mb.copyPayload(rec.payload)
		node, core := topo.Node(me), topo.Core(me)
		for n := 0; n < topo.Nodes(); n++ {
			if n != node {
				mb.enqueue(topo.RankOf(n, core), kindBcastDeliver, machine.Nil, payload)
			}
		}
	case kindBcastRemoteDistribute, kindBcastNLNRDistribute:
		mb.deliver(rec.payload)
		payload := mb.copyPayload(rec.payload)
		node, core := topo.Node(me), topo.Core(me)
		for c := 0; c < topo.Cores(); c++ {
			if c != core {
				mb.enqueue(topo.RankOf(node, c), kindBcastDeliver, machine.Nil, payload)
			}
		}
	case kindBcastNLNRFanout:
		mb.deliver(rec.payload)
		mb.nlnrBcastFanout(mb.copyPayload(rec.payload))
	default:
		panic(fmt.Sprintf("ygm: unknown record kind %d", rec.kind))
	}
}

// copyPayload detaches a record payload from its packet buffer so it can
// be re-encoded into an outgoing coalescing buffer. (Payloads delivered
// to the handler are *not* copied; handlers must not retain them.)
func (mb *Mailbox) copyPayload(b []byte) []byte {
	out := make([]byte, len(b))
	copy(out, b)
	return out
}

// deliver invokes the handler, charging the per-message compute cost.
func (mb *Mailbox) deliver(payload []byte) {
	if mb.opts.dropDelivery(mb.p.Rank(), payload) {
		return
	}
	mb.stats.Delivered++
	mb.p.Compute(mb.p.Model().ComputePerMessage)
	mb.handler(mb, payload)
}

// Mailbox and SyncMailbox both satisfy Sender.
var (
	_ Sender = (*Mailbox)(nil)
	_ Sender = (*SyncMailbox)(nil)
)

// drainAvailable flushes pending buffers, then processes every
// physically present data packet (fast-forwarding the virtual clock to
// arrivals), then flushes any forwards the processing spawned. The
// pending-tail flush comes FIRST — Section IV-B's "YGM flushes its
// pending send buffers" on entering termination — so tail packets carry
// the clock of the rank's own work, not of whatever arrivals it happened
// to absorb first (which would serialize ranks into a virtual-time
// ratchet).
func (mb *Mailbox) drainAvailable() {
	mb.flushAll()
	for {
		// Process one wave — the packets physically present right now —
		// then flush the forwards they generated, so multi-hop routes
		// pipeline wave by wave instead of buffering a whole drain.
		n := mb.p.Pending(transport.TagData)
		if n == 0 {
			return
		}
		for i := 0; i < n; i++ {
			pkt := mb.p.Drain(transport.TagData)
			if pkt == nil {
				break
			}
			mb.processPacket(pkt)
		}
		mb.flushAll()
	}
}

// WaitEmpty flushes pending buffers and blocks until every rank's
// mailbox is globally quiet: all buffers flushed, all record hops
// received, and no new activity between two consecutive global counts
// (Section IV-B). It is a collective operation: every rank must call it,
// and all ranks return during the same detection generation. The mailbox
// remains usable afterwards.
func (mb *Mailbox) WaitEmpty() {
	for {
		mb.drainAvailable()
		if mb.term.step(true) {
			mb.term.reset()
			checkQuiescent(mb.p, mb.queued, "WaitEmpty")
			return
		}
	}
}

// TestEmpty makes nonblocking progress on termination detection and
// reports whether global quiescence has been established. Callers that
// maintain external work queues (the HavoqGT pattern) call it in a loop,
// interleaving their own work; once any rank observes true, every rank
// will observe true for the same generation. After returning true the
// detector resets and the mailbox can be reused.
func (mb *Mailbox) TestEmpty() bool {
	mb.drainAvailable()
	if mb.term.step(false) {
		mb.term.reset()
		checkQuiescent(mb.p, mb.queued, "TestEmpty")
		return true
	}
	return false
}

// PendingSends returns the number of records currently queued in
// coalescing buffers (diagnostic).
func (mb *Mailbox) PendingSends() int { return mb.queued }

// Flush forces the communication context to run even if the mailbox is
// below capacity (exposed for tests and latency-sensitive callers).
func (mb *Mailbox) Flush() { mb.enterCommContext() }

// sortedHops returns buffered hop ranks in ascending order (test helper).
func (mb *Mailbox) sortedHops() []machine.Rank {
	hops := make([]machine.Rank, 0, len(mb.bufs))
	for h := range mb.bufs {
		hops = append(hops, h)
	}
	sort.Slice(hops, func(i, j int) bool { return hops[i] < hops[j] })
	return hops
}
