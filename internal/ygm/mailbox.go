package ygm

import (
	"fmt"
	"sort"

	"ygm/internal/codec"
	"ygm/internal/machine"
	"ygm/internal/obs"
	"ygm/internal/transport"
)

// Sender is the messaging surface exposed to receive callbacks: all
// three mailbox variants implement it, so application handlers work
// unchanged on any exchange style.
type Sender interface {
	// Send queues a point-to-point message for dst.
	Send(dst machine.Rank, payload []byte)
	// Broadcast queues a broadcast to every other rank.
	Broadcast(payload []byte)
}

// Handler is a mailbox receive callback, invoked once per delivered
// message. Handlers may call s.Send and s.Broadcast (data-dependent
// message spawning, as in graph traversals) but must not call WaitEmpty,
// TestEmpty, or Exchange, and must not retain the payload slice —
// delivery buffers are pooled and recycled once the packet is fully
// dispatched. Handlers that must keep payloads copy them, or construct
// the mailbox with WithCopyOnDeliver.
type Handler func(s Sender, payload []byte)

// ExchangeStyle selects how a mailbox realizes the paper's exchanges.
type ExchangeStyle int

const (
	// RoundExchange is the paper's protocol: each communication context
	// is a round of one (possibly empty) message per exchange partner
	// per stage, letting forwards coalesce with direct traffic. The
	// production-faithful default.
	RoundExchange ExchangeStyle = iota
	// LazyExchange never round-matches: flushes send whatever is
	// buffered, receives are opportunistic, and termination is purely
	// the counting consensus. Strictly more asynchronous; supports
	// TestEmpty polling.
	LazyExchange
	// SyncExchange realizes every exchange phase as a synchronous
	// ALLTOALLV collective (Section III-A's bulk-synchronous variant).
	SyncExchange
)

// String names the exchange style.
func (e ExchangeStyle) String() string {
	switch e {
	case RoundExchange:
		return "round"
	case LazyExchange:
		return "lazy"
	case SyncExchange:
		return "sync"
	}
	return fmt.Sprintf("ExchangeStyle(%d)", int(e))
}

// Options configures a mailbox. Applications compose Option values
// (WithScheme, WithCapacity, ...) instead of assembling this struct;
// it remains exported as the configuration record those options fill in.
type Options struct {
	// Scheme selects the routing protocol. Default NoRoute.
	Scheme machine.Scheme
	// Capacity is the number of queued records that triggers a flush of
	// all coalescing buffers — the paper's "mailbox size" (its
	// experiments fix 2^18). Default 1024.
	Capacity int
	// PollEvery is how many Sends pass between opportunistic polls of
	// the inbox (lazy exchange only). Default 8.
	PollEvery int
	// Exchange selects the exchange semantics. Default RoundExchange.
	Exchange ExchangeStyle
	// ZeroCopyLocal hands same-node coalescing buffers to the receiver
	// without the pack-time copy; see WithZeroCopyLocal.
	ZeroCopyLocal bool
	// CopyOnDeliver copies each payload before the handler sees it; see
	// WithCopyOnDeliver.
	CopyOnDeliver bool
	// Tap, when non-nil, observes every record queued for an exchange
	// (oracle instrumentation; see Tap). Nil in production.
	Tap Tap
	// Hooks, when non-nil, inject deliberate faults for the mutation
	// smoke tests (see TestHooks). Nil in production.
	Hooks *TestHooks
}

// Box is the mailbox surface the applications program against: queue
// messages, then wait for global quiescence. All three exchange styles
// satisfy it.
type Box interface {
	Sender
	// WaitEmpty blocks until global quiescence. Collective.
	WaitEmpty()
	// TestEmpty makes nonblocking progress on quiescence detection and
	// reports whether it has been established. Only the lazy mailbox
	// supports it; the round-matched and synchronous variants return
	// ErrUnsupported (their exchanges are collective, so they cannot
	// progress unilaterally).
	TestEmpty() (bool, error)
	// Stats returns the mailbox counters.
	Stats() Stats
	// PendingSends reports records queued but not yet exchanged.
	PendingSends() int
	// Proc exposes the transport endpoint the mailbox runs on, so
	// layers above (collectives, the container engine's reply stream)
	// can share it without threading it separately.
	Proc() *transport.Proc
}

var (
	_ Box = (*Mailbox)(nil)
	_ Box = (*RoundMailbox)(nil)
	_ Box = (*SyncMailbox)(nil)
)

func (o Options) withDefaults() Options {
	if o.Capacity <= 0 {
		o.Capacity = 1024
	}
	if o.PollEvery <= 0 {
		o.PollEvery = 8
	}
	return o
}

// hopUniverse returns the partner set a mailbox builds its dense slot
// table over. With a routing-mutation hook installed (testing only) the
// universe widens to every rank, so deliberately wrong hops reach the
// transport and the delivery oracle — rather than a slot-table panic —
// is what catches them.
func (o Options) hopUniverse(topo machine.Topology, me machine.Rank) []machine.Rank {
	if o.Hooks != nil && o.Hooks.NextHop != nil {
		return topo.HopPartners(machine.NoRoute, me)
	}
	return topo.HopPartners(o.Scheme, me)
}

// Stats counts mailbox-level activity for one rank.
type Stats struct {
	// Sends is the number of application point-to-point messages queued.
	Sends uint64
	// Broadcasts is the number of Broadcast calls.
	Broadcasts uint64
	// Delivered is the number of messages handed to the callback.
	Delivered uint64
	// Flushes counts communication-context entries that sent at least
	// one packet.
	Flushes uint64
	// HopsSent / HopsRecv count record transmissions and receptions,
	// including intermediary forwarding (the termination counters).
	HopsSent uint64
	HopsRecv uint64
	// Generations counts termination-detection rounds (diagnostic).
	Generations uint64
	// EmptyRoundMsgs counts the empty exchange messages the
	// round-matched protocol sends when a rank has nothing for a partner
	// — the "empty buffers" Section IV-B's termination detection keys
	// on. Always zero for the lazy mailbox.
	EmptyRoundMsgs uint64
}

// Mailbox is the lazy-exchange YGM communication endpoint for one rank.
// It is confined to its rank's goroutine. All ranks of the world must
// construct their mailbox with identical Options; WaitEmpty is a
// collective operation.
type Mailbox struct {
	p       *transport.Proc
	opts    Options
	handler Handler
	stats   Stats
	// cost caches the model scalars charged per dispatched record.
	cost recordCost

	// router is the precomputed next-hop table for this rank.
	router *machine.Router
	// slots holds the per-partner coalescing buffers.
	slots  hopSlots
	queued int

	// drainScratch is the reusable packet batch for drainAvailable.
	drainScratch []*transport.Packet

	sinceLastPoll int
	// processing counts packets currently being handled (a depth, not a
	// flag: a handler that illegally re-enters the termination path can
	// nest packet processing before the watchdog catches it).
	processing int

	// leakStash holds the one delivery claimed by the LeakDelivery
	// mutation hook until the next detection generation releases it.
	// Always empty outside mutation smoke tests.
	leakStash []byte
	leakHeld  bool

	// Flush-cause counters, resolved once from the rank's metric
	// registry: what drove each communication context — capacity
	// overflow on the send path, forward overflow while dispatching,
	// the pre-termination drain, or an explicit Flush call.
	cFlushCapacity *obs.Counter
	cFlushForward  *obs.Counter
	cFlushDrain    *obs.Counter
	cFlushExplicit *obs.Counter

	term termDetector
}

// newLazy creates a lazy-exchange mailbox on rank p.
func newLazy(p *transport.Proc, handler Handler, opts Options) *Mailbox {
	if handler == nil {
		panic("ygm: nil handler")
	}
	mb := &Mailbox{
		p:       p,
		opts:    opts.withDefaults(),
		handler: handler,
		cost:    newRecordCost(p.Model()),
	}
	topo := p.Topo()
	mb.router = topo.NewRouter(mb.opts.Scheme, p.Rank())
	mb.slots.init(topo, p.Rank(), mb.opts.hopUniverse(topo, p.Rank()))
	m := p.Metrics()
	mb.cFlushCapacity = m.Counter("ygm.flush.capacity")
	mb.cFlushForward = m.Counter("ygm.flush.forward")
	mb.cFlushDrain = m.Counter("ygm.flush.drain")
	mb.cFlushExplicit = m.Counter("ygm.flush.explicit")
	mb.term.init(p, &mb.stats)
	mb.term.hooks = mb.opts.Hooks
	return mb
}

// Proc returns the underlying transport endpoint.
func (mb *Mailbox) Proc() *transport.Proc { return mb.p }

// Scheme returns the routing scheme in use.
func (mb *Mailbox) Scheme() machine.Scheme { return mb.opts.Scheme }

// Stats returns a copy of the mailbox counters.
func (mb *Mailbox) Stats() Stats { return mb.stats }

// nextHop routes one unicast record held by this rank: a routing-table
// load, or the mutation hook when one is installed.
//
//ygm:hotpath
func (mb *Mailbox) nextHop(dst machine.Rank) machine.Rank {
	if mb.opts.Hooks != nil && mb.opts.Hooks.NextHop != nil {
		return mb.opts.Hooks.NextHop(mb.p.Topo(), mb.opts.Scheme, mb.p.Rank(), dst)
	}
	return mb.router.Next(dst)
}

// Send queues a point-to-point message for dst. If dst is the calling
// rank the message is delivered synchronously. Queueing may trigger a
// communication context (flush plus opportunistic receive) when the
// mailbox reaches capacity.
//
//ygm:hotpath
func (mb *Mailbox) Send(dst machine.Rank, payload []byte) {
	if !mb.p.Topo().Valid(dst) {
		panic(fmt.Sprintf("ygm: send to invalid rank %d", dst))
	}
	mb.stats.Sends++
	if dst == mb.p.Rank() {
		mb.deliver(payload)
		return
	}
	mb.enqueue(mb.nextHop(dst), kindUnicast, dst, payload)
	mb.afterQueue()
	mb.checkCapacityBound()
}

// Broadcast queues a broadcast of payload to every other rank, routed by
// the scheme-specific fan-out of Section III (NodeRemote and NLNR use
// N-1 remote messages; NodeLocal uses C*(N-1); NoRoute sends individual
// copies). The origin does not deliver to itself.
func (mb *Mailbox) Broadcast(payload []byte) {
	mb.stats.Broadcasts++
	topo := mb.p.Topo()
	me := mb.p.Rank()
	node, core := topo.Node(me), topo.Core(me)
	switch mb.opts.Scheme {
	case machine.NoRoute:
		for r := machine.Rank(0); int(r) < topo.WorldSize(); r++ {
			if r != me {
				mb.enqueue(r, kindUnicast, r, payload)
			}
		}
	case machine.NodeLocal:
		// Local fan-out to every other core offset; this rank covers its
		// own core offset's remote channel directly.
		for c := 0; c < topo.Cores(); c++ {
			if c != core {
				mb.enqueue(topo.RankOf(node, c), kindBcastLocalFanout, machine.Nil, payload)
			}
		}
		for n := 0; n < topo.Nodes(); n++ {
			if n != node {
				mb.enqueue(topo.RankOf(n, core), kindBcastDeliver, machine.Nil, payload)
			}
		}
	case machine.NodeRemote:
		for n := 0; n < topo.Nodes(); n++ {
			if n != node {
				mb.enqueue(topo.RankOf(n, core), kindBcastRemoteDistribute, machine.Nil, payload)
			}
		}
		for c := 0; c < topo.Cores(); c++ {
			if c != core {
				mb.enqueue(topo.RankOf(node, c), kindBcastDeliver, machine.Nil, payload)
			}
		}
	case machine.NLNR:
		// Local fan-out cores relay to their residue classes; this rank
		// covers its own class itself.
		for c := 0; c < topo.Cores(); c++ {
			if c != core {
				mb.enqueue(topo.RankOf(node, c), kindBcastNLNRFanout, machine.Nil, payload)
			}
		}
		mb.nlnrBcastFanout(payload)
	default:
		panic("ygm: unknown scheme")
	}
	mb.afterQueue()
	mb.checkCapacityBound()
}

// nlnrBcastFanout sends the NLNR remote-distribution stage for the
// calling rank's residue class: one message per other node n' with
// n' mod C == this core's offset, addressed to core (myNode mod C).
func (mb *Mailbox) nlnrBcastFanout(payload []byte) {
	topo := mb.p.Topo()
	node, core := topo.Node(mb.p.Rank()), topo.Core(mb.p.Rank())
	for n := core; n < topo.Nodes(); n += topo.Cores() {
		if n != node {
			mb.enqueue(topo.NLNRRemoteIntermediary(node, n), kindBcastNLNRDistribute, machine.Nil, payload)
		}
	}
}

// enqueue appends one record to the coalescing slot for hop.
//
//ygm:hotpath
func (mb *Mailbox) enqueue(hop machine.Rank, kind recordKind, dst machine.Rank, payload []byte) {
	if hop == mb.p.Rank() {
		panic(fmt.Sprintf("ygm: routing produced a self-hop on rank %d", hop))
	}
	b := mb.slots.buf(hop)
	if b == nil {
		panic(fmt.Sprintf("ygm: rank %d has no coalescing slot for hop %d under %v",
			mb.p.Rank(), hop, mb.opts.Scheme))
	}
	appendRecord(&b.w, kind, dst, payload)
	b.count++
	mb.queued++
	mb.opts.tapQueued(mb.p.Rank(), hop, dst, kind, payload)
}

// afterQueue runs the capacity check and opportunistic poll that follow
// any application-level queueing operation.
//
//ygm:hotpath
func (mb *Mailbox) afterQueue() {
	if mb.processing > 0 {
		// Forwards spawned while handling a packet are flushed by the
		// caller once the whole packet is processed.
		return
	}
	if mb.queued >= mb.opts.Capacity {
		mb.cFlushCapacity.Inc()
		mb.enterCommContext()
		return
	}
	mb.sinceLastPoll++
	if mb.sinceLastPoll >= mb.opts.PollEvery {
		mb.sinceLastPoll = 0
		for mb.pollOnce() {
		}
	}
}

// enterCommContext is the paper's "mailbox full" behaviour: flush all
// buffers, then process every message that has (virtually) arrived —
// which may enqueue forwards, which are flushed in turn.
func (mb *Mailbox) enterCommContext() {
	sp := mb.p.Span("lazy.commctx")
	mb.flushAll()
	for mb.pollOnce() {
		if mb.queued >= mb.opts.Capacity {
			mb.flushAll()
		}
	}
	mb.flushAll()
	sp.End()
}

// pollOnce processes at most one arrived data packet without waiting.
// It reports whether a packet was processed.
func (mb *Mailbox) pollOnce() bool {
	pkt := mb.p.Poll(transport.TagData)
	if pkt == nil {
		return false
	}
	mb.processPacket(pkt)
	return true
}

// flushAll sends every non-empty coalescing buffer to its hop rank.
// Buffers are sent in first-use order; each becomes one pooled transport
// packet whose payload returns to the pool at the receiver.
//
//ygm:hotpath
func (mb *Mailbox) flushAll() {
	if mb.queued == 0 {
		return
	}
	sent := false
	for _, i := range mb.slots.active {
		b := &mb.slots.slots[i]
		if b.count == 0 {
			continue
		}
		mb.stats.HopsSent += uint64(b.count)
		mb.queued -= b.count
		b.count = 0
		sendPooledBuf(mb.p, b, transport.TagData, mb.opts.ZeroCopyLocal)
		sent = true
	}
	mb.slots.active = mb.slots.active[:0]
	if sent {
		mb.stats.Flushes++
	}
	if mb.queued != 0 {
		panic("ygm: queued-record accounting out of balance")
	}
}

// processPacket decodes and dispatches every record in pkt, recycles the
// packet, then flushes any forwards the records generated.
//
//ygm:hotpath
func (mb *Mailbox) processPacket(pkt *transport.Packet) {
	mb.processing++
	reorder := mb.opts.reorderPacket(mb.p.Rank(), pkt.Src)
	var held record
	var haveHeld bool
	r := codec.NewReader(pkt.Payload)
	for r.Remaining() > 0 {
		rec, err := parseRecord(r)
		if err != nil {
			panic(fmt.Sprintf("ygm: rank %d corrupt packet from %d: %v", mb.p.Rank(), pkt.Src, err))
		}
		mb.stats.HopsRecv++
		// Per-record handling is a few nanoseconds plus a memcpy; the
		// per-message overhead was already charged when the packet was
		// received. Coalescing amortizes exactly this difference.
		mb.p.Compute(mb.cost.handling(len(rec.payload)))
		if reorder && !haveHeld {
			// Mutation hook: the first record waits until the rest of
			// the packet has dispatched; its payload stays valid because
			// the packet is recycled only after the loop.
			held, haveHeld = rec, true
			continue
		}
		mb.dispatch(rec)
	}
	if haveHeld {
		mb.dispatch(held)
	}
	mb.processing--
	// Forwards were re-encoded into coalescing slots and deliveries have
	// returned, so nothing aliases the packet buffer any more.
	mb.p.Recycle(pkt)
	if mb.queued >= mb.opts.Capacity {
		mb.cFlushForward.Inc()
		mb.flushAll()
	}
}

// dispatch delivers or forwards one record according to its kind.
// Forwarded payloads are copied into the destination slot's buffer by
// appendRecord itself, so no intermediate per-record copy is needed.
//
//ygm:hotpath
func (mb *Mailbox) dispatch(rec record) {
	topo := mb.p.Topo()
	me := mb.p.Rank()
	switch rec.kind {
	case kindUnicast:
		if rec.dst == me {
			mb.deliver(rec.payload)
			return
		}
		mb.enqueue(mb.nextHop(rec.dst), kindUnicast, rec.dst, rec.payload)
	case kindBcastDeliver:
		mb.deliver(rec.payload)
	case kindBcastLocalFanout:
		mb.deliver(rec.payload)
		node, core := topo.Node(me), topo.Core(me)
		for n := 0; n < topo.Nodes(); n++ {
			if n != node {
				mb.enqueue(topo.RankOf(n, core), kindBcastDeliver, machine.Nil, rec.payload)
			}
		}
	case kindBcastRemoteDistribute, kindBcastNLNRDistribute:
		mb.deliver(rec.payload)
		node, core := topo.Node(me), topo.Core(me)
		for c := 0; c < topo.Cores(); c++ {
			if c != core {
				mb.enqueue(topo.RankOf(node, c), kindBcastDeliver, machine.Nil, rec.payload)
			}
		}
	case kindBcastNLNRFanout:
		mb.deliver(rec.payload)
		mb.nlnrBcastFanout(rec.payload)
	default:
		panic(fmt.Sprintf("ygm: unknown record kind %d", rec.kind))
	}
}

// deliver invokes the handler, charging the per-message compute cost;
// the drop and leak mutation hooks intercept it first.
//
//ygm:hotpath
func (mb *Mailbox) deliver(payload []byte) {
	if mb.opts.dropDelivery(mb.p.Rank(), payload) {
		return
	}
	if !mb.leakHeld && mb.opts.leakDelivery(mb.p.Rank(), payload) {
		mb.stashLeak(payload)
		return
	}
	mb.deliverNow(payload)
}

// stashLeak copies one hook-claimed delivery aside (the payload aliases
// a packet buffer about to be recycled); releaseLeak replays it.
// Mutation-test path only, never reached with a nil hook.
func (mb *Mailbox) stashLeak(payload []byte) {
	mb.leakStash = append(mb.leakStash[:0], payload...)
	mb.leakHeld = true
}

// releaseLeak delivers the stashed leak, if any.
func (mb *Mailbox) releaseLeak() {
	if mb.leakHeld {
		mb.leakHeld = false
		mb.deliverNow(mb.leakStash)
	}
}

// deliverNow is the undeflected tail of deliver.
//
//ygm:hotpath
func (mb *Mailbox) deliverNow(payload []byte) {
	mb.stats.Delivered++
	mb.p.Compute(mb.cost.perMsg)
	if mb.opts.CopyOnDeliver {
		c := make([]byte, len(payload)) //ygmvet:ignore allocinloop -- opt-in retain-safety copy; off on the default path
		copy(c, payload)
		payload = c
	}
	mb.handler(mb, payload)
}

// drainAvailable flushes pending buffers, then processes every
// physically present data packet (fast-forwarding the virtual clock to
// arrivals), then flushes any forwards the processing spawned. The
// pending-tail flush comes FIRST — Section IV-B's "YGM flushes its
// pending send buffers" on entering termination — so tail packets carry
// the clock of the rank's own work, not of whatever arrivals it happened
// to absorb first (which would serialize ranks into a virtual-time
// ratchet).
func (mb *Mailbox) drainAvailable() {
	sp := mb.p.Span("lazy.drain")
	defer sp.End()
	if mb.leakHeld {
		// A leaked delivery (mutation hook) re-enters one detection
		// generation after it was stashed, before this drain's flush so
		// anything its handler spawns still rides this wave.
		mb.releaseLeak()
	}
	mb.cFlushDrain.Inc()
	mb.flushAll()
	if mb.processing > 0 {
		// A handler illegally re-entered the termination path (the
		// blockincallback pattern). Drain into a private batch so the
		// outer drain's scratch stays intact; the collective step that
		// follows will block and the deadlock watchdog reports the abuse.
		var scratch []*transport.Packet
		mb.drainWaves(&scratch)
		return
	}
	mb.drainWaves(&mb.drainScratch)
}

// drainWaves processes arrived packets in waves — each wave is the set
// physically present right now, batched out of the inbox under one lock
// — flushing the forwards each wave generates, so multi-hop routes
// pipeline wave by wave instead of buffering a whole drain.
func (mb *Mailbox) drainWaves(scratch *[]*transport.Packet) {
	for {
		batch := mb.p.DrainBatch(transport.TagData, (*scratch)[:0])
		*scratch = batch
		if len(batch) == 0 {
			return
		}
		for i, pkt := range batch {
			mb.p.Absorb(pkt)
			mb.processPacket(pkt)
			batch[i] = nil
		}
		mb.flushAll()
	}
}

// WaitEmpty flushes pending buffers and blocks until every rank's
// mailbox is globally quiet: all buffers flushed, all record hops
// received, and no new activity between two consecutive global counts
// (Section IV-B). It is a collective operation: every rank must call it,
// and all ranks return during the same detection generation. The mailbox
// remains usable afterwards.
func (mb *Mailbox) WaitEmpty() {
	sp := mb.p.Span("lazy.waitempty")
	defer sp.End()
	for {
		mb.drainAvailable()
		if mb.term.step(true) {
			mb.term.reset()
			// Safety valve for the leak mutation hook: a stash claimed in
			// the final generation must not outlive the barrier, or the
			// mutant would turn into a lost delivery.
			mb.releaseLeak()
			checkQuiescent(mb.p, mb.queued, "WaitEmpty")
			return
		}
	}
}

// TestEmpty makes nonblocking progress on termination detection and
// reports whether global quiescence has been established. Callers that
// maintain external work queues (the HavoqGT pattern) call it in a loop,
// interleaving their own work; once any rank observes true, every rank
// will observe true for the same generation. After returning true the
// detector resets and the mailbox can be reused. The error is always nil
// for this variant.
func (mb *Mailbox) TestEmpty() (bool, error) {
	mb.drainAvailable()
	if mb.term.step(false) {
		mb.term.reset()
		mb.releaseLeak()
		checkQuiescent(mb.p, mb.queued, "TestEmpty")
		return true, nil
	}
	return false, nil
}

// PendingSends returns the number of records currently queued in
// coalescing buffers (diagnostic).
func (mb *Mailbox) PendingSends() int { return mb.queued }

// Flush forces the communication context to run even if the mailbox is
// below capacity (exposed for tests and latency-sensitive callers).
func (mb *Mailbox) Flush() {
	mb.cFlushExplicit.Inc()
	mb.enterCommContext()
}

// sortedHops returns the hop ranks currently holding queued records, in
// ascending order (test helper).
func (mb *Mailbox) sortedHops() []machine.Rank {
	hops := make([]machine.Rank, 0, len(mb.slots.active))
	for _, i := range mb.slots.active {
		if mb.slots.slots[i].count > 0 {
			hops = append(hops, mb.slots.slots[i].hop)
		}
	}
	sort.Slice(hops, func(i, j int) bool { return hops[i] < hops[j] })
	return hops
}
