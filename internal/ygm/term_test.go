package ygm

import (
	"fmt"
	"testing"

	"ygm/internal/machine"
	"ygm/internal/netsim"
	"ygm/internal/transport"
)

// TestTermPurgesStalePending is the regression test for the pending-map
// leak: buffered contributions/verdicts whose generation is already
// behind the detector can never be adopted (adoption matches td.gen
// exactly and gen is monotonic), so startGeneration must drop them.
// Future-generation entries must survive the purge.
func TestTermPurgesStalePending(t *testing.T) {
	_, err := transport.Run(transport.Config{
		Topo:  machine.New(1, 1),
		Model: netsim.Quartz(),
		Seed:  1,
	}, func(p *transport.Proc) error {
		mb := New(p, func(s Sender, payload []byte) {},
			WithExchange(LazyExchange)).(*Mailbox)
		td := &mb.term
		// Simulate buffered traffic: stale generations below td.gen, plus
		// entries for the next two generations that must be preserved.
		for g := uint64(0); g < td.gen; g++ {
			td.pendingContrib[g] = [][2]uint64{{1, 1}}
			td.pendingVerdict[g] = false
		}
		futureC := td.gen + 2
		futureV := td.gen + 3
		td.pendingContrib[futureC] = [][2]uint64{{2, 2}}
		td.pendingVerdict[futureV] = true

		td.startGeneration() // td.gen advances by one; stale gens purged

		for g := range td.pendingContrib {
			if g < td.gen {
				return fmt.Errorf("stale contribution for gen %d survived purge (gen now %d)", g, td.gen)
			}
		}
		for g := range td.pendingVerdict {
			if g < td.gen {
				return fmt.Errorf("stale verdict for gen %d survived purge (gen now %d)", g, td.gen)
			}
		}
		if _, ok := td.pendingContrib[futureC]; !ok {
			return fmt.Errorf("future contribution (gen %d) dropped by purge", futureC)
		}
		if v, ok := td.pendingVerdict[futureV]; !ok || !v {
			return fmt.Errorf("future verdict (gen %d) dropped by purge", futureV)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestTermPendingBoundedAcrossCycles asserts the behavioural fix: over
// many WaitEmpty cycles with real traffic, the pending maps stay
// bounded on every rank instead of accumulating one dead entry set per
// cycle.
func TestTermPendingBoundedAcrossCycles(t *testing.T) {
	const cycles = 50
	topo := machine.New(2, 2)
	sizes := make([]int, topo.WorldSize())
	_, err := transport.Run(transport.Config{
		Topo:  topo,
		Model: netsim.Quartz(),
		Seed:  3,
	}, func(p *transport.Proc) error {
		mb := New(p, func(s Sender, payload []byte) {},
			WithScheme(machine.NLNR),
			WithExchange(LazyExchange),
			WithCapacity(8)).(*Mailbox)
		peer := machine.Rank((int(p.Rank()) + 1) % topo.WorldSize())
		for c := 0; c < cycles; c++ {
			for i := 0; i < 16; i++ {
				mb.Send(peer, []byte("payload"))
			}
			mb.WaitEmpty()
		}
		sizes[p.Rank()] = len(mb.term.pendingContrib) + len(mb.term.pendingVerdict)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Without the purge, rank 0 (every parent, really) accretes buffered
	// state across the 50 cycles; with it, at most a couple of entries
	// for the generation in progress can remain.
	for r, n := range sizes {
		if n > 2 {
			t.Fatalf("rank %d ends with %d pending entries after %d cycles, want <= 2", r, n, cycles)
		}
	}
}
