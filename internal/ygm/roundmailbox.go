package ygm

import (
	"fmt"
	"runtime"

	"ygm/internal/codec"
	"ygm/internal/machine"
	"ygm/internal/transport"
)

// roundTrace enables debug tracing of exchange rounds.
var roundTrace = false

// TagRound is the base transport tag of round-matched exchange traffic
// (mirrored as transport.TagRound for traffic classification); the
// epoch, stage index, and round number are folded into the tag so
// receives match exactly.
const TagRound = transport.TagRound

// roundTag folds the epoch (completed WaitEmpty count), stage, and round
// into one transport tag, so receives match exactly and — critically —
// a rank still concluding epoch e never consumes or joins traffic of
// epoch e+1 sent by ranks that already observed the termination verdict
// and moved on to the next application phase.
func roundTag(epoch uint64, stage int, round uint64) transport.Tag {
	return TagRound |
		transport.Tag(epoch&0xFFFFF)<<43 |
		transport.Tag(stage&0x7)<<40 |
		transport.Tag(round&0xFFFFFFFFFF)
}

// RoundMailbox is the round-matched interpretation of the paper's
// exchanges (Sections III-A and IV-B): each communication context is a
// *round* in which the rank sends exactly one — possibly empty — message
// to every partner of every exchange stage and receives exactly one from
// each. Rounds let an intermediary bundle the records it forwards with
// the records it originates for the same destination in one message (the
// coalescing the lazy-forwarding Mailbox cannot do across flush
// boundaries), at the price of coupling: a rank entering a round waits
// for each of its partners to enter it too, and one rank's
// capacity-triggered round transitively obliges the whole (connected)
// channel graph to run a round, empty buffers included — which is
// exactly the "empty message buffers are sent by all ranks" behaviour
// the paper's termination detection keys on.
//
// RoundMailbox shares the Sender interface and record formats with
// Mailbox and SyncMailbox. WaitEmpty is collective; TestEmpty is not
// provided (external-queue polling belongs to the asynchronous Mailbox).
type RoundMailbox struct {
	p       *transport.Proc
	opts    Options
	handler Handler
	stats   Stats

	stages []roundStage
	round  uint64 // next round to execute
	epoch  uint64 // completed WaitEmpty cycles
	// queued counts records awaiting a round, across generations.
	queued int
	// inRoundStage is the stage currently being processed (-1 outside a
	// round); records dispatched to stages <= it wait for the next round.
	inRoundStage int

	term termDetector
}

// roundStage is one exchange phase with its fixed partner set.
type roundStage struct {
	local    bool
	partners []machine.Rank
	// cur / next hold per-partner record buffers for the round being
	// assembled and the following one.
	cur, next map[machine.Rank]*roundBuf
}

type roundBuf struct {
	w     codec.Writer
	count int
}

// NewRound builds a round-matched mailbox. Collective: all ranks must
// construct one with identical Options before exchanging.
func NewRound(p *transport.Proc, handler Handler, opts Options) (*RoundMailbox, error) {
	if handler == nil {
		return nil, fmt.Errorf("ygm: nil handler")
	}
	mb := &RoundMailbox{
		p:            p,
		opts:         opts.withDefaults(),
		handler:      handler,
		inRoundStage: -1,
	}
	topo := p.Topo()
	me := p.Rank()
	locals := func() []machine.Rank {
		var out []machine.Rank
		for _, r := range topo.LocalRanks(me) {
			if r != me {
				out = append(out, r)
			}
		}
		return out
	}
	remotes := topo.RemotePartners(mb.opts.Scheme, me)
	switch mb.opts.Scheme {
	case machine.NoRoute:
		var all []machine.Rank
		for r := machine.Rank(0); int(r) < topo.WorldSize(); r++ {
			if r != me {
				all = append(all, r)
			}
		}
		mb.stages = []roundStage{{partners: all}}
	case machine.NodeLocal:
		mb.stages = []roundStage{
			{local: true, partners: locals()},
			{partners: remotes},
		}
	case machine.NodeRemote:
		mb.stages = []roundStage{
			{partners: remotes},
			{local: true, partners: locals()},
		}
	case machine.NLNR:
		mb.stages = []roundStage{
			{local: true, partners: locals()},
			{partners: remotes},
			{local: true, partners: locals()},
		}
	default:
		return nil, fmt.Errorf("ygm: unknown scheme %v", mb.opts.Scheme)
	}
	for s := range mb.stages {
		mb.stages[s].cur = make(map[machine.Rank]*roundBuf)
		mb.stages[s].next = make(map[machine.Rank]*roundBuf)
	}
	mb.term.init(p, &mb.stats)
	mb.term.hooks = mb.opts.Hooks
	return mb, nil
}

// Stats returns a copy of the mailbox counters.
func (mb *RoundMailbox) Stats() Stats { return mb.stats }

// PendingSends reports records queued for upcoming rounds.
func (mb *RoundMailbox) PendingSends() int { return mb.queued }

// Send queues a point-to-point message; self-sends deliver immediately.
// Reaching the mailbox capacity triggers a full exchange round.
func (mb *RoundMailbox) Send(dst machine.Rank, payload []byte) {
	if !mb.p.Topo().Valid(dst) {
		panic(fmt.Sprintf("ygm: send to invalid rank %d", dst))
	}
	mb.stats.Sends++
	if dst == mb.p.Rank() {
		mb.deliver(payload)
		return
	}
	hop := mb.opts.nextHop(mb.p.Topo(), mb.p.Rank(), dst)
	mb.enqueue(hop, kindUnicast, dst, payload)
	mb.maybeRound()
}

// SendBcast queues a broadcast with the scheme fan-out shared with the
// other mailbox variants.
func (mb *RoundMailbox) SendBcast(payload []byte) {
	mb.stats.Broadcasts++
	topo := mb.p.Topo()
	me := mb.p.Rank()
	node, core := topo.Node(me), topo.Core(me)
	switch mb.opts.Scheme {
	case machine.NoRoute:
		for r := machine.Rank(0); int(r) < topo.WorldSize(); r++ {
			if r != me {
				mb.enqueue(r, kindUnicast, r, payload)
			}
		}
	case machine.NodeLocal:
		for c := 0; c < topo.Cores(); c++ {
			if c != core {
				mb.enqueue(topo.RankOf(node, c), kindBcastLocalFanout, machine.Nil, payload)
			}
		}
		for n := 0; n < topo.Nodes(); n++ {
			if n != node {
				mb.enqueue(topo.RankOf(n, core), kindBcastDeliver, machine.Nil, payload)
			}
		}
	case machine.NodeRemote:
		for n := 0; n < topo.Nodes(); n++ {
			if n != node {
				mb.enqueue(topo.RankOf(n, core), kindBcastRemoteDistribute, machine.Nil, payload)
			}
		}
		for c := 0; c < topo.Cores(); c++ {
			if c != core {
				mb.enqueue(topo.RankOf(node, c), kindBcastDeliver, machine.Nil, payload)
			}
		}
	case machine.NLNR:
		for c := 0; c < topo.Cores(); c++ {
			if c != core {
				mb.enqueue(topo.RankOf(node, c), kindBcastNLNRFanout, machine.Nil, payload)
			}
		}
		mb.nlnrFanout(payload)
	}
	mb.maybeRound()
}

func (mb *RoundMailbox) nlnrFanout(payload []byte) {
	topo := mb.p.Topo()
	node, core := topo.Node(mb.p.Rank()), topo.Core(mb.p.Rank())
	for n := core; n < topo.Nodes(); n += topo.Cores() {
		if n != node {
			mb.enqueue(topo.NLNRRemoteIntermediary(node, n), kindBcastNLNRDistribute, machine.Nil, payload)
		}
	}
}

// stageOf returns the index of the first stage after `after` whose
// locality matches hop, or -1 if none remains in the current round.
func (mb *RoundMailbox) stageOf(hop machine.Rank, after int) int {
	local := mb.p.Topo().SameNode(mb.p.Rank(), hop)
	for s := after + 1; s < len(mb.stages); s++ {
		if mb.stages[s].local == local || mb.opts.Scheme == machine.NoRoute {
			return s
		}
	}
	return -1
}

// enqueue places one record into the correct stage buffer: the earliest
// remaining stage of the current round if one can still carry it,
// otherwise the earliest stage of the next round.
func (mb *RoundMailbox) enqueue(hop machine.Rank, kind recordKind, dst machine.Rank, payload []byte) {
	if hop == mb.p.Rank() {
		panic("ygm: routing produced a self-hop")
	}
	s := mb.stageOf(hop, mb.inRoundStage)
	nextRound := false
	if s < 0 {
		s = mb.stageOf(hop, -1)
		nextRound = true
		if s < 0 {
			panic(fmt.Sprintf("ygm: no stage carries hop %d under %v", hop, mb.opts.Scheme))
		}
	}
	st := &mb.stages[s]
	bufs := st.cur
	if nextRound {
		bufs = st.next
	}
	b := bufs[hop]
	if b == nil {
		b = &roundBuf{}
		bufs[hop] = b
	}
	appendRecord(&b.w, kind, dst, payload)
	b.count++
	mb.queued++
	mb.opts.tapQueued(mb.p.Rank(), hop, dst, kind, payload)
}

// maybeRound runs exchange rounds while the queue exceeds capacity.
func (mb *RoundMailbox) maybeRound() {
	for mb.inRoundStage < 0 && mb.queued >= mb.opts.Capacity {
		mb.executeRound()
	}
}

// executeRound performs one full exchange round: for every stage in
// order, send one (possibly empty) message to each partner, then receive
// exactly one from each and process its records. Records forwarded to a
// later stage travel in this same round — the bundling that gives the
// routed schemes their message counts.
func (mb *RoundMailbox) executeRound() {
	r := mb.round
	mb.round++
	if roundTrace {
		fmt.Printf("ROUND rank=%d begin r=%d queued=%d\n", mb.p.Rank(), r, mb.queued)
	}
	sentAny := false
	for s := range mb.stages {
		mb.inRoundStage = s
		if roundTrace {
			fmt.Printf("ROUND rank=%d r=%d stage=%d\n", mb.p.Rank(), r, s)
		}
		st := &mb.stages[s]
		tag := roundTag(mb.epoch, s, r)
		for _, partner := range st.partners {
			var payload []byte
			if b := st.cur[partner]; b != nil {
				payload = make([]byte, b.w.Len())
				copy(payload, b.w.Bytes())
				mb.stats.HopsSent += uint64(b.count)
				mb.queued -= b.count
				sentAny = true
				delete(st.cur, partner)
			} else {
				mb.stats.EmptyRoundMsgs++
			}
			mb.p.Send(partner, tag, payload)
		}
		if len(st.cur) != 0 {
			panic("ygm: round stage left records for a non-partner")
		}
		for range st.partners {
			pkt := mb.p.Recv(tag)
			rd := codec.NewReader(pkt.Payload)
			for rd.Remaining() > 0 {
				rec, err := parseRecord(rd)
				if err != nil {
					panic(fmt.Sprintf("ygm: corrupt round payload: %v", err))
				}
				mb.stats.HopsRecv++
				mb.p.Compute(mb.p.Model().RecordHandlingTime(len(rec.payload)))
				mb.dispatch(rec)
			}
		}
	}
	mb.inRoundStage = -1
	if roundTrace {
		fmt.Printf("ROUND rank=%d end r=%d queued=%d\n", mb.p.Rank(), r, mb.queued)
	}
	// Promote next-round buffers.
	for s := range mb.stages {
		st := &mb.stages[s]
		st.cur, st.next = st.next, st.cur
	}
	if sentAny {
		mb.stats.Flushes++
	}
}

// dispatch delivers or requeues one received record (shared semantics
// with the other mailbox variants).
func (mb *RoundMailbox) dispatch(rec record) {
	topo := mb.p.Topo()
	me := mb.p.Rank()
	detach := func(b []byte) []byte {
		out := make([]byte, len(b))
		copy(out, b)
		return out
	}
	switch rec.kind {
	case kindUnicast:
		if rec.dst == me {
			mb.deliver(rec.payload)
			return
		}
		mb.enqueue(mb.opts.nextHop(topo, me, rec.dst), kindUnicast, rec.dst, detach(rec.payload))
	case kindBcastDeliver:
		mb.deliver(rec.payload)
	case kindBcastLocalFanout:
		mb.deliver(rec.payload)
		payload := detach(rec.payload)
		node, core := topo.Node(me), topo.Core(me)
		for n := 0; n < topo.Nodes(); n++ {
			if n != node {
				mb.enqueue(topo.RankOf(n, core), kindBcastDeliver, machine.Nil, payload)
			}
		}
	case kindBcastRemoteDistribute, kindBcastNLNRDistribute:
		mb.deliver(rec.payload)
		payload := detach(rec.payload)
		node, core := topo.Node(me), topo.Core(me)
		for c := 0; c < topo.Cores(); c++ {
			if c != core {
				mb.enqueue(topo.RankOf(node, c), kindBcastDeliver, machine.Nil, payload)
			}
		}
	case kindBcastNLNRFanout:
		mb.deliver(rec.payload)
		mb.nlnrFanout(detach(rec.payload))
	default:
		panic(fmt.Sprintf("ygm: unknown record kind %d", rec.kind))
	}
}

func (mb *RoundMailbox) deliver(payload []byte) {
	if mb.opts.dropDelivery(mb.p.Rank(), payload) {
		return
	}
	mb.stats.Delivered++
	mb.p.Compute(mb.p.Model().ComputePerMessage)
	mb.handler(mb, payload)
}

// roundTrafficPending reports whether any partner has initiated the
// upcoming round (its stage messages are waiting in our inbox).
func (mb *RoundMailbox) roundTrafficPending() bool {
	for s := range mb.stages {
		if mb.p.Pending(roundTag(mb.epoch, s, mb.round)) > 0 {
			return true
		}
	}
	return false
}

// WaitEmpty drives rounds (with empty buffers when this rank has nothing
// to say — the paper's Section IV-B behaviour) until the counting
// consensus observes global quiescence. Collective: every rank must call
// it, and all return together. The mailbox is reusable afterwards.
func (mb *RoundMailbox) WaitEmpty() {
	for {
		for mb.queued > 0 || mb.roundTrafficPending() {
			mb.executeRound()
		}
		if mb.term.step(false) {
			mb.term.reset()
			checkQuiescent(mb.p, mb.queued, "WaitEmpty")
			// Epoch boundary: quiescence means no rounds of this epoch
			// remain in flight, so traffic seen from here on belongs to
			// the next application phase.
			mb.epoch++
			return
		}
		if mb.queued == 0 && !mb.roundTrafficPending() {
			// Idle: let peers progress on the shared host CPU. If a peer
			// already died this loop would spin forever (nothing blocks,
			// so the deadlock watchdog cannot see it) — unwind instead.
			mb.p.AbortIfPeerFailed()
			runtime.Gosched()
		}
	}
}

var _ Sender = (*RoundMailbox)(nil)
