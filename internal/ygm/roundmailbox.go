package ygm

import (
	"fmt"
	"os"

	"ygm/internal/codec"
	"ygm/internal/machine"
	"ygm/internal/transport"
)

// roundTrace enables stderr tracing of exchange rounds (debug).
var roundTrace = false

// stageSpanNames keeps exchange-stage span names as constants — span
// bracketing must not format strings on the hot path. Three entries
// cover every scheme (NLNR has the most stages).
var stageSpanNames = [...]string{"stage0", "stage1", "stage2"}

func stageSpanName(s int) string {
	if s < len(stageSpanNames) {
		return stageSpanNames[s]
	}
	return "stageN"
}

// TagRound is the base transport tag of round-matched exchange traffic
// (mirrored as transport.TagRound for traffic classification); the
// epoch, stage index, and round number are folded into the tag so
// receives match exactly.
const TagRound = transport.TagRound

// roundTag folds the epoch (completed WaitEmpty count), stage, and round
// into one transport tag, so receives match exactly and — critically —
// a rank still concluding epoch e never consumes or joins traffic of
// epoch e+1 sent by ranks that already observed the termination verdict
// and moved on to the next application phase.
func roundTag(epoch uint64, stage int, round uint64) transport.Tag {
	return TagRound |
		transport.Tag(epoch&0xFFFFF)<<43 |
		transport.Tag(stage&0x7)<<40 |
		transport.Tag(round&0xFFFFFFFFFF)
}

// RoundMailbox is the round-matched interpretation of the paper's
// exchanges (Sections III-A and IV-B): each communication context is a
// *round* in which the rank sends exactly one — possibly empty — message
// to every partner of every exchange stage and receives exactly one from
// each. Rounds let an intermediary bundle the records it forwards with
// the records it originates for the same destination in one message (the
// coalescing the lazy-forwarding Mailbox cannot do across flush
// boundaries), at the price of coupling: a rank entering a round waits
// for each of its partners to enter it too, and one rank's
// capacity-triggered round transitively obliges the whole (connected)
// channel graph to run a round, empty buffers included — which is
// exactly the "empty message buffers are sent by all ranks" behaviour
// the paper's termination detection keys on.
//
// RoundMailbox shares the Sender interface and record formats with
// Mailbox and SyncMailbox. WaitEmpty is collective; TestEmpty returns
// ErrUnsupported (external-queue polling belongs to the asynchronous
// Mailbox).
type RoundMailbox struct {
	p       *transport.Proc
	opts    Options
	handler Handler
	stats   Stats
	// cost caches the model scalars charged per dispatched record.
	cost recordCost

	stages []roundStage
	round  uint64 // next round to execute
	epoch  uint64 // completed WaitEmpty cycles
	// queued counts records awaiting a round, across generations.
	queued int
	// inRoundStage is the stage currently being processed (-1 outside a
	// round); records dispatched to stages <= it wait for the next round.
	inRoundStage int

	// tagScratch reuses one slice for the per-stage tag list that the
	// WaitEmpty idle loop polls, so the poll makes a single inbox pass
	// per iteration without allocating.
	tagScratch []transport.Tag

	term termDetector
}

// roundStage is one exchange phase with its fixed partner set. The
// per-partner buffers for the round being assembled (cur) and the
// following one (next) are dense slices parallel to partners, reached
// through a world-sized rank→index table; both generations keep their
// writer storage across rounds, so steady-state stages allocate nothing.
type roundStage struct {
	local    bool
	partners []machine.Rank
	slotOf   []int32 // world-sized; -1 for ranks outside partners
	cur      []hopBuf
	next     []hopBuf
}

// initSlots builds the stage's dense buffer tables.
func (st *roundStage) initSlots(topo machine.Topology, me machine.Rank) {
	st.slotOf = make([]int32, topo.WorldSize())
	for i := range st.slotOf {
		st.slotOf[i] = -1
	}
	st.cur = make([]hopBuf, len(st.partners))
	st.next = make([]hopBuf, len(st.partners))
	for i, hop := range st.partners {
		local := topo.SameNode(me, hop)
		st.cur[i] = hopBuf{hop: hop, local: local}
		st.next[i] = hopBuf{hop: hop, local: local}
		st.slotOf[hop] = int32(i)
	}
}

// newRound builds a round-matched mailbox. Collective: all ranks must
// construct one with identical Options before exchanging.
func newRound(p *transport.Proc, handler Handler, opts Options) (*RoundMailbox, error) {
	if handler == nil {
		return nil, fmt.Errorf("ygm: nil handler")
	}
	mb := &RoundMailbox{
		p:            p,
		opts:         opts.withDefaults(),
		handler:      handler,
		cost:         newRecordCost(p.Model()),
		inRoundStage: -1,
	}
	topo := p.Topo()
	me := p.Rank()
	locals := func() []machine.Rank {
		var out []machine.Rank
		for _, r := range topo.LocalRanks(me) {
			if r != me {
				out = append(out, r)
			}
		}
		return out
	}
	remotes := topo.RemotePartners(mb.opts.Scheme, me)
	switch mb.opts.Scheme {
	case machine.NoRoute:
		var all []machine.Rank
		for r := machine.Rank(0); int(r) < topo.WorldSize(); r++ {
			if r != me {
				all = append(all, r)
			}
		}
		mb.stages = []roundStage{{partners: all}}
	case machine.NodeLocal:
		mb.stages = []roundStage{
			{local: true, partners: locals()},
			{partners: remotes},
		}
	case machine.NodeRemote:
		mb.stages = []roundStage{
			{partners: remotes},
			{local: true, partners: locals()},
		}
	case machine.NLNR:
		mb.stages = []roundStage{
			{local: true, partners: locals()},
			{partners: remotes},
			{local: true, partners: locals()},
		}
	default:
		return nil, fmt.Errorf("ygm: unknown scheme %v", mb.opts.Scheme)
	}
	for s := range mb.stages {
		mb.stages[s].initSlots(topo, me)
	}
	mb.tagScratch = make([]transport.Tag, 0, len(mb.stages))
	mb.term.init(p, &mb.stats)
	mb.term.hooks = mb.opts.Hooks
	return mb, nil
}

// Stats returns a copy of the mailbox counters.
func (mb *RoundMailbox) Stats() Stats { return mb.stats }

// Proc exposes the transport endpoint the mailbox runs on.
func (mb *RoundMailbox) Proc() *transport.Proc { return mb.p }

// PendingSends reports records queued for upcoming rounds.
func (mb *RoundMailbox) PendingSends() int { return mb.queued }

// Send queues a point-to-point message; self-sends deliver immediately.
// Reaching the mailbox capacity triggers a full exchange round.
//
//ygm:hotpath
func (mb *RoundMailbox) Send(dst machine.Rank, payload []byte) {
	if !mb.p.Topo().Valid(dst) {
		panic(fmt.Sprintf("ygm: send to invalid rank %d", dst))
	}
	mb.stats.Sends++
	if dst == mb.p.Rank() {
		mb.deliver(payload)
		return
	}
	hop := mb.opts.nextHop(mb.p.Topo(), mb.p.Rank(), dst)
	mb.enqueue(hop, kindUnicast, dst, payload)
	mb.maybeRound()
}

// Broadcast queues a broadcast with the scheme fan-out shared with the
// other mailbox variants.
func (mb *RoundMailbox) Broadcast(payload []byte) {
	mb.stats.Broadcasts++
	topo := mb.p.Topo()
	me := mb.p.Rank()
	node, core := topo.Node(me), topo.Core(me)
	switch mb.opts.Scheme {
	case machine.NoRoute:
		for r := machine.Rank(0); int(r) < topo.WorldSize(); r++ {
			if r != me {
				mb.enqueue(r, kindUnicast, r, payload)
			}
		}
	case machine.NodeLocal:
		for c := 0; c < topo.Cores(); c++ {
			if c != core {
				mb.enqueue(topo.RankOf(node, c), kindBcastLocalFanout, machine.Nil, payload)
			}
		}
		for n := 0; n < topo.Nodes(); n++ {
			if n != node {
				mb.enqueue(topo.RankOf(n, core), kindBcastDeliver, machine.Nil, payload)
			}
		}
	case machine.NodeRemote:
		for n := 0; n < topo.Nodes(); n++ {
			if n != node {
				mb.enqueue(topo.RankOf(n, core), kindBcastRemoteDistribute, machine.Nil, payload)
			}
		}
		for c := 0; c < topo.Cores(); c++ {
			if c != core {
				mb.enqueue(topo.RankOf(node, c), kindBcastDeliver, machine.Nil, payload)
			}
		}
	case machine.NLNR:
		for c := 0; c < topo.Cores(); c++ {
			if c != core {
				mb.enqueue(topo.RankOf(node, c), kindBcastNLNRFanout, machine.Nil, payload)
			}
		}
		mb.nlnrFanout(payload)
	}
	mb.maybeRound()
}

func (mb *RoundMailbox) nlnrFanout(payload []byte) {
	topo := mb.p.Topo()
	node, core := topo.Node(mb.p.Rank()), topo.Core(mb.p.Rank())
	for n := core; n < topo.Nodes(); n += topo.Cores() {
		if n != node {
			mb.enqueue(topo.NLNRRemoteIntermediary(node, n), kindBcastNLNRDistribute, machine.Nil, payload)
		}
	}
}

// stageOf returns the index of the first stage after `after` whose
// locality matches hop, or -1 if none remains in the current round.
func (mb *RoundMailbox) stageOf(hop machine.Rank, after int) int {
	local := mb.p.Topo().SameNode(mb.p.Rank(), hop)
	for s := after + 1; s < len(mb.stages); s++ {
		if mb.stages[s].local == local || mb.opts.Scheme == machine.NoRoute {
			return s
		}
	}
	return -1
}

// enqueue places one record into the correct stage buffer: the earliest
// remaining stage of the current round if one can still carry it,
// otherwise the earliest stage of the next round.
//
//ygm:hotpath
func (mb *RoundMailbox) enqueue(hop machine.Rank, kind recordKind, dst machine.Rank, payload []byte) {
	if hop == mb.p.Rank() {
		panic("ygm: routing produced a self-hop")
	}
	s := mb.stageOf(hop, mb.inRoundStage)
	nextRound := false
	if s < 0 {
		s = mb.stageOf(hop, -1)
		nextRound = true
		if s < 0 {
			panic(fmt.Sprintf("ygm: no stage carries hop %d under %v", hop, mb.opts.Scheme))
		}
	}
	st := &mb.stages[s]
	i := st.slotOf[hop]
	if i < 0 {
		panic(fmt.Sprintf("ygm: hop %d is not a stage-%d partner under %v", hop, s, mb.opts.Scheme))
	}
	b := &st.cur[i]
	if nextRound {
		b = &st.next[i]
	}
	if b.count == 0 {
		b.w.Arm(coalesceArmBytes)
	}
	appendRecord(&b.w, kind, dst, payload)
	b.count++
	mb.queued++
	mb.opts.tapQueued(mb.p.Rank(), hop, dst, kind, payload)
}

// maybeRound runs exchange rounds while the queue exceeds capacity.
func (mb *RoundMailbox) maybeRound() {
	for mb.inRoundStage < 0 && mb.queued >= mb.opts.Capacity {
		mb.executeRound()
	}
}

// executeRound performs one full exchange round: for every stage in
// order, send one (possibly empty) message to each partner, then receive
// exactly one from each and process its records. Records forwarded to a
// later stage travel in this same round — the bundling that gives the
// routed schemes their message counts. Non-empty buffers travel as
// pooled packets; empty round messages are nil payloads; received
// packets are recycled once fully dispatched, so a steady-state round
// allocates nothing.
//
//ygm:hotpath
func (mb *RoundMailbox) executeRound() {
	r := mb.round
	mb.round++
	rsp := mb.p.Span("round.exchange")
	if roundTrace {
		fmt.Fprintf(os.Stderr, "ROUND rank=%d begin r=%d queued=%d\n", mb.p.Rank(), r, mb.queued)
	}
	sentAny := false
	for s := range mb.stages {
		mb.inRoundStage = s
		if roundTrace {
			fmt.Fprintf(os.Stderr, "ROUND rank=%d r=%d stage=%d\n", mb.p.Rank(), r, s)
		}
		ssp := mb.p.Span(stageSpanName(s))
		st := &mb.stages[s]
		tag := roundTag(mb.epoch, s, r)
		for i := range st.cur {
			b := &st.cur[i]
			if b.count > 0 {
				mb.stats.HopsSent += uint64(b.count)
				mb.queued -= b.count
				b.count = 0
				sentAny = true
				sendPooledBuf(mb.p, b, tag, mb.opts.ZeroCopyLocal)
			} else {
				mb.stats.EmptyRoundMsgs++
				mb.p.SendPooled(b.hop, tag, nil)
			}
		}
		for range st.partners {
			pkt := mb.p.Recv(tag)
			rd := codec.NewReader(pkt.Payload)
			for rd.Remaining() > 0 {
				rec, err := parseRecord(rd)
				if err != nil {
					panic(fmt.Sprintf("ygm: corrupt round payload: %v", err))
				}
				mb.stats.HopsRecv++
				mb.p.Compute(mb.cost.handling(len(rec.payload)))
				mb.dispatch(rec)
			}
			mb.p.Recycle(pkt)
		}
		ssp.End()
	}
	mb.inRoundStage = -1
	rsp.End()
	if roundTrace {
		fmt.Fprintf(os.Stderr, "ROUND rank=%d end r=%d queued=%d\n", mb.p.Rank(), r, mb.queued)
	}
	// Promote next-round buffers.
	for s := range mb.stages {
		st := &mb.stages[s]
		st.cur, st.next = st.next, st.cur
	}
	if sentAny {
		mb.stats.Flushes++
	}
}

// dispatch delivers or requeues one received record (shared semantics
// with the other mailbox variants). Requeued payloads are copied into
// the destination stage buffer by appendRecord itself, so no
// intermediate per-record copy is needed.
//
//ygm:hotpath
func (mb *RoundMailbox) dispatch(rec record) {
	topo := mb.p.Topo()
	me := mb.p.Rank()
	switch rec.kind {
	case kindUnicast:
		if rec.dst == me {
			mb.deliver(rec.payload)
			return
		}
		mb.enqueue(mb.opts.nextHop(topo, me, rec.dst), kindUnicast, rec.dst, rec.payload)
	case kindBcastDeliver:
		mb.deliver(rec.payload)
	case kindBcastLocalFanout:
		mb.deliver(rec.payload)
		node, core := topo.Node(me), topo.Core(me)
		for n := 0; n < topo.Nodes(); n++ {
			if n != node {
				mb.enqueue(topo.RankOf(n, core), kindBcastDeliver, machine.Nil, rec.payload)
			}
		}
	case kindBcastRemoteDistribute, kindBcastNLNRDistribute:
		mb.deliver(rec.payload)
		node, core := topo.Node(me), topo.Core(me)
		for c := 0; c < topo.Cores(); c++ {
			if c != core {
				mb.enqueue(topo.RankOf(node, c), kindBcastDeliver, machine.Nil, rec.payload)
			}
		}
	case kindBcastNLNRFanout:
		mb.deliver(rec.payload)
		mb.nlnrFanout(rec.payload)
	default:
		panic(fmt.Sprintf("ygm: unknown record kind %d", rec.kind))
	}
}

//ygm:hotpath
func (mb *RoundMailbox) deliver(payload []byte) {
	if mb.opts.dropDelivery(mb.p.Rank(), payload) {
		return
	}
	mb.stats.Delivered++
	mb.p.Compute(mb.cost.perMsg)
	if mb.opts.CopyOnDeliver {
		c := make([]byte, len(payload)) //ygmvet:ignore allocinloop -- opt-in retain-safety copy; off on the default path
		copy(c, payload)
		payload = c
	}
	mb.handler(mb, payload)
}

// roundTrafficPending reports whether any partner has initiated the
// upcoming round (its stage messages are waiting in our inbox). All
// stage tags are checked in one inbox pass via PendingTags.
func (mb *RoundMailbox) roundTrafficPending() bool {
	tags := mb.tagScratch[:0]
	for s := range mb.stages {
		tags = append(tags, roundTag(mb.epoch, s, mb.round))
	}
	mb.tagScratch = tags
	return mb.p.PendingTags(tags) > 0
}

// WaitEmpty drives rounds (with empty buffers when this rank has nothing
// to say — the paper's Section IV-B behaviour) until the counting
// consensus observes global quiescence. Collective: every rank must call
// it, and all return together. The mailbox is reusable afterwards.
func (mb *RoundMailbox) WaitEmpty() {
	sp := mb.p.Span("round.waitempty")
	defer sp.End()
	for {
		for mb.queued > 0 || mb.roundTrafficPending() {
			mb.executeRound()
		}
		if mb.term.step(false) {
			mb.term.reset()
			checkQuiescent(mb.p, mb.queued, "WaitEmpty")
			// Epoch boundary: quiescence means no rounds of this epoch
			// remain in flight, so traffic seen from here on belongs to
			// the next application phase.
			mb.epoch++
			return
		}
		if mb.queued == 0 && !mb.roundTrafficPending() {
			// Idle: let peers progress on the shared host CPU. If a peer
			// already died this loop would spin forever (nothing blocks,
			// so the deadlock watchdog cannot see it) — unwind instead.
			mb.p.AbortIfPeerFailed()
			mb.p.Yield()
		}
	}
}

// TestEmpty is unsupported on the round-matched variant: its exchanges
// are collective, so it cannot make unilateral nonblocking progress.
func (mb *RoundMailbox) TestEmpty() (bool, error) { return false, ErrUnsupported }

var _ Sender = (*RoundMailbox)(nil)
