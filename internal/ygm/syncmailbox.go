package ygm

import (
	"fmt"
	"sort"

	"ygm/internal/codec"
	"ygm/internal/collective"
	"ygm/internal/machine"
	"ygm/internal/transport"
)

// SyncMailbox is the ALLTOALLV-backed variant of the mailbox that
// Section III-A describes: the same routing schemes, but each exchange
// phase is realized as a synchronous collective over the phase's
// communicator (the whole node for local exchanges, the core-offset or
// NLNR-channel group for remote ones). On machines with heavily
// optimized ALLTOALL implementations — the paper names IBM BG/Q
// Sequoia — this traded asynchronicity for better bandwidth utilization.
//
// Unlike Mailbox, Send only queues: nothing moves until every rank calls
// Exchange (a collective), making the programming model bulk-synchronous.
// ExchangeUntilQuiet repeats exchanges until no rank holds undelivered
// records, the synchronous analogue of WaitEmpty.
type SyncMailbox struct {
	p       *transport.Proc
	opts    Options
	handler Handler
	stats   Stats

	world *collective.Comm
	// stages is the exchange-phase sequence for the routing scheme;
	// each stage carries the communicator it exchanges over.
	stages []syncStage

	// queue holds records awaiting their next hop.
	queue []syncRecord
}

// syncStage is one exchange phase.
type syncStage struct {
	comm *collective.Comm
	// local is true for shared-memory phases: the stage moves records
	// whose next hop is on this node; remote stages move the rest.
	local bool
	// all marks the NoRoute world exchange, which moves every queued
	// record regardless of hop locality.
	all bool
}

// syncRecord is one queued record with its precomputed next hop.
type syncRecord struct {
	hop     machine.Rank
	kind    recordKind
	dst     machine.Rank // unicast only
	payload []byte
}

// NewSync builds a synchronous mailbox. It is collective: every rank
// must construct one with identical Options before any exchange.
func NewSync(p *transport.Proc, handler Handler, opts Options) (*SyncMailbox, error) {
	if handler == nil {
		return nil, fmt.Errorf("ygm: nil handler")
	}
	mb := &SyncMailbox{
		p:       p,
		opts:    opts.withDefaults(),
		handler: handler,
		world:   collective.World(p),
	}
	topo := p.Topo()
	me := p.Rank()

	localComm := func() (*collective.Comm, error) {
		return collective.New(p, topo.LocalRanks(me))
	}
	coreComm := func() (*collective.Comm, error) {
		ranks := make([]machine.Rank, topo.Nodes())
		for n := 0; n < topo.Nodes(); n++ {
			ranks[n] = topo.RankOf(n, topo.Core(me))
		}
		return collective.New(p, ranks)
	}
	// The NLNR channel of (n,c) pairs residue class (n mod C) at core c
	// with residue class c at core (n mod C); see Section III-D. Members
	// reach the same channel from both sides ((l,c) and (c,l) name the
	// same set), so the list is sorted to give every member an identical
	// communicator order.
	nlnrComm := func() (*collective.Comm, error) {
		l, c := topo.LayerOffset(topo.Node(me)), topo.Core(me)
		seen := map[machine.Rank]bool{}
		var ranks []machine.Rank
		add := func(r machine.Rank) {
			if !seen[r] {
				seen[r] = true
				ranks = append(ranks, r)
			}
		}
		for n := l; n < topo.Nodes(); n += topo.Cores() {
			add(topo.RankOf(n, c))
		}
		for n := c; n < topo.Nodes(); n += topo.Cores() {
			add(topo.RankOf(n, l))
		}
		sort.Slice(ranks, func(i, j int) bool { return ranks[i] < ranks[j] })
		return collective.New(p, ranks)
	}

	push := func(local bool, mk func() (*collective.Comm, error)) error {
		comm, err := mk()
		if err != nil {
			return err
		}
		mb.stages = append(mb.stages, syncStage{comm: comm, local: local})
		return nil
	}
	var err error
	switch mb.opts.Scheme {
	case machine.NoRoute:
		mb.stages = append(mb.stages, syncStage{comm: mb.world, all: true})
	case machine.NodeLocal:
		if err = push(true, localComm); err == nil {
			err = push(false, coreComm)
		}
	case machine.NodeRemote:
		if err = push(false, coreComm); err == nil {
			err = push(true, localComm)
		}
	case machine.NLNR:
		if err = push(true, localComm); err == nil {
			if err = push(false, nlnrComm); err == nil {
				err = push(true, localComm)
			}
		}
	default:
		return nil, fmt.Errorf("ygm: unknown scheme %v", mb.opts.Scheme)
	}
	if err != nil {
		return nil, err
	}
	return mb, nil
}

// Stats returns a copy of the mailbox counters.
func (mb *SyncMailbox) Stats() Stats { return mb.stats }

// PendingSends reports queued, not-yet-exchanged records.
func (mb *SyncMailbox) PendingSends() int { return len(mb.queue) }

// Send queues a point-to-point message. Self-sends deliver immediately.
func (mb *SyncMailbox) Send(dst machine.Rank, payload []byte) {
	if !mb.p.Topo().Valid(dst) {
		panic(fmt.Sprintf("ygm: send to invalid rank %d", dst))
	}
	mb.stats.Sends++
	if dst == mb.p.Rank() {
		mb.deliver(payload)
		return
	}
	hop := mb.opts.nextHop(mb.p.Topo(), mb.p.Rank(), dst)
	mb.push(hop, kindUnicast, dst, payload)
}

// SendBcast queues a broadcast using the scheme's fan-out (identical
// record kinds and hop structure to the asynchronous Mailbox).
func (mb *SyncMailbox) SendBcast(payload []byte) {
	mb.stats.Broadcasts++
	topo := mb.p.Topo()
	me := mb.p.Rank()
	node, core := topo.Node(me), topo.Core(me)
	switch mb.opts.Scheme {
	case machine.NoRoute:
		for r := machine.Rank(0); int(r) < topo.WorldSize(); r++ {
			if r != me {
				mb.push(r, kindUnicast, r, payload)
			}
		}
	case machine.NodeLocal:
		for c := 0; c < topo.Cores(); c++ {
			if c != core {
				mb.push(topo.RankOf(node, c), kindBcastLocalFanout, machine.Nil, payload)
			}
		}
		for n := 0; n < topo.Nodes(); n++ {
			if n != node {
				mb.push(topo.RankOf(n, core), kindBcastDeliver, machine.Nil, payload)
			}
		}
	case machine.NodeRemote:
		for n := 0; n < topo.Nodes(); n++ {
			if n != node {
				mb.push(topo.RankOf(n, core), kindBcastRemoteDistribute, machine.Nil, payload)
			}
		}
		for c := 0; c < topo.Cores(); c++ {
			if c != core {
				mb.push(topo.RankOf(node, c), kindBcastDeliver, machine.Nil, payload)
			}
		}
	case machine.NLNR:
		for c := 0; c < topo.Cores(); c++ {
			if c != core {
				mb.push(topo.RankOf(node, c), kindBcastNLNRFanout, machine.Nil, payload)
			}
		}
		mb.nlnrFanout(payload)
	}
}

// nlnrFanout queues this rank's NLNR remote-distribution records.
func (mb *SyncMailbox) nlnrFanout(payload []byte) {
	topo := mb.p.Topo()
	node, core := topo.Node(mb.p.Rank()), topo.Core(mb.p.Rank())
	for n := core; n < topo.Nodes(); n += topo.Cores() {
		if n != node {
			mb.push(topo.NLNRRemoteIntermediary(node, n), kindBcastNLNRDistribute, machine.Nil, payload)
		}
	}
}

func (mb *SyncMailbox) push(hop machine.Rank, kind recordKind, dst machine.Rank, payload []byte) {
	if hop == mb.p.Rank() {
		panic("ygm: routing produced a self-hop")
	}
	mb.queue = append(mb.queue, syncRecord{hop: hop, kind: kind, dst: dst, payload: payload})
	mb.opts.tapQueued(mb.p.Rank(), hop, dst, kind, payload)
}

func (mb *SyncMailbox) deliver(payload []byte) {
	if mb.opts.dropDelivery(mb.p.Rank(), payload) {
		return
	}
	mb.stats.Delivered++
	mb.p.Compute(mb.p.Model().ComputePerMessage)
	mb.handler(mb, payload)
}

// Exchange runs one full routing round: every stage of the scheme, each
// as a synchronous collective exchange. It is collective over the whole
// world — all ranks must call it together — and delivers every record
// queued before the call (records spawned by handlers during delivery
// wait for the next Exchange). The coupling of each phase to its slowest
// participant is exactly what the asynchronous Mailbox avoids.
func (mb *SyncMailbox) Exchange() {
	for _, st := range mb.stages {
		mb.runStage(st)
	}
}

// runStage exchanges the queued records whose next hop matches the
// stage's locality through one Alltoallv over the stage communicator.
func (mb *SyncMailbox) runStage(st syncStage) {
	topo := mb.p.Topo()
	me := mb.p.Rank()
	writers := make(map[machine.Rank]*codec.Writer)
	var keep []syncRecord
	moved := 0
	for _, rec := range mb.queue {
		if !st.all && topo.SameNode(me, rec.hop) != st.local {
			keep = append(keep, rec)
			continue
		}
		w := writers[rec.hop]
		if w == nil {
			w = &codec.Writer{}
			writers[rec.hop] = w
		}
		appendRecord(w, rec.kind, rec.dst, rec.payload)
		moved++
	}
	mb.queue = keep
	mb.stats.HopsSent += uint64(moved)

	payloads := make([][]byte, st.comm.Size())
	for i, r := range st.comm.Ranks() {
		if w := writers[r]; w != nil {
			payloads[i] = w.Bytes()
			delete(writers, r)
		}
	}
	if len(writers) > 0 {
		panic("ygm: sync exchange record outside stage communicator")
	}
	if moved > 0 {
		mb.stats.Flushes++
	}
	for src, blob := range st.comm.Alltoallv(payloads) {
		if src == st.comm.Index() || len(blob) == 0 {
			continue
		}
		r := codec.NewReader(blob)
		for r.Remaining() > 0 {
			rec, err := parseRecord(r)
			if err != nil {
				panic(fmt.Sprintf("ygm: corrupt sync exchange payload: %v", err))
			}
			mb.stats.HopsRecv++
			mb.p.Compute(mb.p.Model().RecordHandlingTime(len(rec.payload)))
			mb.dispatch(rec)
		}
	}
}

// dispatch delivers or requeues one received record.
func (mb *SyncMailbox) dispatch(rec record) {
	topo := mb.p.Topo()
	me := mb.p.Rank()
	detach := func(b []byte) []byte {
		out := make([]byte, len(b))
		copy(out, b)
		return out
	}
	switch rec.kind {
	case kindUnicast:
		if rec.dst == me {
			mb.deliver(rec.payload)
			return
		}
		mb.push(mb.opts.nextHop(topo, me, rec.dst), kindUnicast, rec.dst, detach(rec.payload))
	case kindBcastDeliver:
		mb.deliver(rec.payload)
	case kindBcastLocalFanout:
		mb.deliver(rec.payload)
		payload := detach(rec.payload)
		node, core := topo.Node(me), topo.Core(me)
		for n := 0; n < topo.Nodes(); n++ {
			if n != node {
				mb.push(topo.RankOf(n, core), kindBcastDeliver, machine.Nil, payload)
			}
		}
	case kindBcastRemoteDistribute, kindBcastNLNRDistribute:
		mb.deliver(rec.payload)
		payload := detach(rec.payload)
		node, core := topo.Node(me), topo.Core(me)
		for c := 0; c < topo.Cores(); c++ {
			if c != core {
				mb.push(topo.RankOf(node, c), kindBcastDeliver, machine.Nil, payload)
			}
		}
	case kindBcastNLNRFanout:
		mb.deliver(rec.payload)
		mb.nlnrFanout(detach(rec.payload))
	default:
		panic(fmt.Sprintf("ygm: unknown record kind %d", rec.kind))
	}
}

// ExchangeUntilQuiet repeats Exchange until no rank holds queued
// records — the bulk-synchronous analogue of WaitEmpty. Collective.
func (mb *SyncMailbox) ExchangeUntilQuiet() {
	for {
		mb.Exchange()
		pending := mb.world.AllreduceU64(
			[]uint64{uint64(len(mb.queue))}, collective.SumU64)[0]
		if pending == 0 {
			return
		}
	}
}
