package ygm

import (
	"fmt"
	"sort"

	"ygm/internal/codec"
	"ygm/internal/collective"
	"ygm/internal/machine"
	"ygm/internal/transport"
)

// SyncMailbox is the ALLTOALLV-backed variant of the mailbox that
// Section III-A describes: the same routing schemes, but each exchange
// phase is realized as a synchronous collective over the phase's
// communicator (the whole node for local exchanges, the core-offset or
// NLNR-channel group for remote ones). On machines with heavily
// optimized ALLTOALL implementations — the paper names IBM BG/Q
// Sequoia — this traded asynchronicity for better bandwidth utilization.
//
// Unlike Mailbox, Send only queues: nothing moves until every rank calls
// Exchange (a collective), making the programming model bulk-synchronous.
// ExchangeUntilQuiet repeats exchanges until no rank holds undelivered
// records, the synchronous analogue of WaitEmpty (which aliases it for
// the Box interface).
type SyncMailbox struct {
	p       *transport.Proc
	opts    Options
	handler Handler
	stats   Stats
	// cost caches the model scalars charged per dispatched record.
	cost recordCost

	world *collective.Comm
	// stages is the exchange-phase sequence for the routing scheme;
	// each stage carries the communicator it exchanges over.
	stages []syncStage
	// queued counts records encoded into stage buffers but not yet
	// exchanged, across both generations.
	queued int
	// inStage is the stage currently exchanging (-1 outside Exchange);
	// records spawned during its dispatch route to later stages of this
	// Exchange, or to the next generation when none remains.
	inStage int

	// sink adapts this mailbox to collective.BlobSink once, so Exchange
	// does not box a fresh interface value per stage.
	sink syncDispatcher
}

// syncStage is one exchange phase. Records are encoded directly into
// dense per-member coalescing buffers — parallel to the communicator's
// member list and reached through a world-sized rank→index table — with
// cur holding the generation the next Exchange ships and next the one
// after (for records spawned during this stage's own dispatch, or too
// late for the current Exchange). Buffer storage, the payload vector,
// and the receive scratch all persist across exchanges, so a
// steady-state stage allocates nothing.
type syncStage struct {
	comm *collective.Comm
	// local is true for shared-memory phases: the stage moves records
	// whose next hop is on this node; remote stages move the rest.
	local bool
	// all marks the NoRoute world exchange, which moves every queued
	// record regardless of hop locality.
	all bool

	slotOf   []int32 // world-sized; -1 for ranks outside the communicator
	cur      []hopBuf
	next     []hopBuf
	payloads [][]byte
	scratch  []*transport.Packet
}

// initSlots builds the stage's dense buffer tables over its communicator.
func (st *syncStage) initSlots(topo machine.Topology, me machine.Rank) {
	ranks := st.comm.Ranks()
	st.slotOf = make([]int32, topo.WorldSize())
	for i := range st.slotOf {
		st.slotOf[i] = -1
	}
	st.cur = make([]hopBuf, len(ranks))
	st.next = make([]hopBuf, len(ranks))
	for i, hop := range ranks {
		local := topo.SameNode(me, hop)
		st.cur[i] = hopBuf{hop: hop, local: local}
		st.next[i] = hopBuf{hop: hop, local: local}
		if hop != me {
			st.slotOf[hop] = int32(i)
		}
	}
	st.payloads = make([][]byte, len(ranks))
	st.scratch = make([]*transport.Packet, len(ranks))
}

// newSync builds a synchronous mailbox. It is collective: every rank
// must construct one with identical Options before any exchange.
func newSync(p *transport.Proc, handler Handler, opts Options) (*SyncMailbox, error) {
	if handler == nil {
		return nil, fmt.Errorf("ygm: nil handler")
	}
	mb := &SyncMailbox{
		p:       p,
		opts:    opts.withDefaults(),
		handler: handler,
		cost:    newRecordCost(p.Model()),
		world:   collective.World(p),
		inStage: -1,
	}
	mb.sink.mb = mb
	topo := p.Topo()
	me := p.Rank()

	localComm := func() (*collective.Comm, error) {
		return collective.New(p, topo.LocalRanks(me))
	}
	coreComm := func() (*collective.Comm, error) {
		ranks := make([]machine.Rank, topo.Nodes())
		for n := 0; n < topo.Nodes(); n++ {
			ranks[n] = topo.RankOf(n, topo.Core(me))
		}
		return collective.New(p, ranks)
	}
	// The NLNR channel of (n,c) pairs residue class (n mod C) at core c
	// with residue class c at core (n mod C); see Section III-D. Members
	// reach the same channel from both sides ((l,c) and (c,l) name the
	// same set), so the list is sorted to give every member an identical
	// communicator order.
	nlnrComm := func() (*collective.Comm, error) {
		l, c := topo.LayerOffset(topo.Node(me)), topo.Core(me)
		seen := map[machine.Rank]bool{}
		var ranks []machine.Rank
		add := func(r machine.Rank) {
			if !seen[r] {
				seen[r] = true
				ranks = append(ranks, r)
			}
		}
		for n := l; n < topo.Nodes(); n += topo.Cores() {
			add(topo.RankOf(n, c))
		}
		for n := c; n < topo.Nodes(); n += topo.Cores() {
			add(topo.RankOf(n, l))
		}
		sort.Slice(ranks, func(i, j int) bool { return ranks[i] < ranks[j] })
		return collective.New(p, ranks)
	}

	push := func(local bool, mk func() (*collective.Comm, error)) error {
		comm, err := mk()
		if err != nil {
			return err
		}
		mb.stages = append(mb.stages, syncStage{comm: comm, local: local})
		return nil
	}
	var err error
	switch mb.opts.Scheme {
	case machine.NoRoute:
		mb.stages = append(mb.stages, syncStage{comm: mb.world, all: true})
	case machine.NodeLocal:
		if err = push(true, localComm); err == nil {
			err = push(false, coreComm)
		}
	case machine.NodeRemote:
		if err = push(false, coreComm); err == nil {
			err = push(true, localComm)
		}
	case machine.NLNR:
		if err = push(true, localComm); err == nil {
			if err = push(false, nlnrComm); err == nil {
				err = push(true, localComm)
			}
		}
	default:
		return nil, fmt.Errorf("ygm: unknown scheme %v", mb.opts.Scheme)
	}
	if err != nil {
		return nil, err
	}
	for s := range mb.stages {
		mb.stages[s].initSlots(topo, me)
	}
	return mb, nil
}

// Stats returns a copy of the mailbox counters.
func (mb *SyncMailbox) Stats() Stats { return mb.stats }

// Proc exposes the transport endpoint the mailbox runs on.
func (mb *SyncMailbox) Proc() *transport.Proc { return mb.p }

// PendingSends reports queued, not-yet-exchanged records.
func (mb *SyncMailbox) PendingSends() int { return mb.queued }

// Send queues a point-to-point message. Self-sends deliver immediately.
//
//ygm:hotpath
func (mb *SyncMailbox) Send(dst machine.Rank, payload []byte) {
	if !mb.p.Topo().Valid(dst) {
		panic(fmt.Sprintf("ygm: send to invalid rank %d", dst))
	}
	mb.stats.Sends++
	if dst == mb.p.Rank() {
		mb.deliver(payload)
		return
	}
	hop := mb.opts.nextHop(mb.p.Topo(), mb.p.Rank(), dst)
	mb.push(hop, kindUnicast, dst, payload)
}

// Broadcast queues a broadcast using the scheme's fan-out (identical
// record kinds and hop structure to the asynchronous Mailbox).
func (mb *SyncMailbox) Broadcast(payload []byte) {
	mb.stats.Broadcasts++
	topo := mb.p.Topo()
	me := mb.p.Rank()
	node, core := topo.Node(me), topo.Core(me)
	switch mb.opts.Scheme {
	case machine.NoRoute:
		for r := machine.Rank(0); int(r) < topo.WorldSize(); r++ {
			if r != me {
				mb.push(r, kindUnicast, r, payload)
			}
		}
	case machine.NodeLocal:
		for c := 0; c < topo.Cores(); c++ {
			if c != core {
				mb.push(topo.RankOf(node, c), kindBcastLocalFanout, machine.Nil, payload)
			}
		}
		for n := 0; n < topo.Nodes(); n++ {
			if n != node {
				mb.push(topo.RankOf(n, core), kindBcastDeliver, machine.Nil, payload)
			}
		}
	case machine.NodeRemote:
		for n := 0; n < topo.Nodes(); n++ {
			if n != node {
				mb.push(topo.RankOf(n, core), kindBcastRemoteDistribute, machine.Nil, payload)
			}
		}
		for c := 0; c < topo.Cores(); c++ {
			if c != core {
				mb.push(topo.RankOf(node, c), kindBcastDeliver, machine.Nil, payload)
			}
		}
	case machine.NLNR:
		for c := 0; c < topo.Cores(); c++ {
			if c != core {
				mb.push(topo.RankOf(node, c), kindBcastNLNRFanout, machine.Nil, payload)
			}
		}
		mb.nlnrFanout(payload)
	}
}

// nlnrFanout queues this rank's NLNR remote-distribution records.
func (mb *SyncMailbox) nlnrFanout(payload []byte) {
	topo := mb.p.Topo()
	node, core := topo.Node(mb.p.Rank()), topo.Core(mb.p.Rank())
	for n := core; n < topo.Nodes(); n += topo.Cores() {
		if n != node {
			mb.push(topo.NLNRRemoteIntermediary(node, n), kindBcastNLNRDistribute, machine.Nil, payload)
		}
	}
}

// stageOf returns the index of the first stage after `after` that can
// carry a record bound for hop, or -1 if none remains in the current
// Exchange.
func (mb *SyncMailbox) stageOf(hop machine.Rank, after int) int {
	local := mb.p.Topo().SameNode(mb.p.Rank(), hop)
	for s := after + 1; s < len(mb.stages); s++ {
		if mb.stages[s].all || mb.stages[s].local == local {
			return s
		}
	}
	return -1
}

// push encodes one record into the buffer of the earliest stage that can
// still carry it this Exchange, or into the next generation of the
// earliest matching stage when none remains.
//
//ygm:hotpath
func (mb *SyncMailbox) push(hop machine.Rank, kind recordKind, dst machine.Rank, payload []byte) {
	if hop == mb.p.Rank() {
		panic("ygm: routing produced a self-hop")
	}
	s := mb.stageOf(hop, mb.inStage)
	nextGen := false
	if s < 0 {
		s = mb.stageOf(hop, -1)
		nextGen = true
		if s < 0 {
			panic(fmt.Sprintf("ygm: no stage carries hop %d under %v", hop, mb.opts.Scheme))
		}
	}
	st := &mb.stages[s]
	i := st.slotOf[hop]
	if i < 0 {
		panic(fmt.Sprintf("ygm: sync exchange record outside stage-%d communicator (hop %d under %v)",
			s, hop, mb.opts.Scheme))
	}
	b := &st.cur[i]
	if nextGen {
		b = &st.next[i]
	}
	if b.count == 0 {
		b.w.Arm(coalesceArmBytes)
	}
	appendRecord(&b.w, kind, dst, payload)
	b.count++
	mb.queued++
	mb.opts.tapQueued(mb.p.Rank(), hop, dst, kind, payload)
}

//ygm:hotpath
func (mb *SyncMailbox) deliver(payload []byte) {
	if mb.opts.dropDelivery(mb.p.Rank(), payload) {
		return
	}
	mb.stats.Delivered++
	mb.p.Compute(mb.cost.perMsg)
	if mb.opts.CopyOnDeliver {
		c := make([]byte, len(payload)) //ygmvet:ignore allocinloop -- opt-in retain-safety copy; off on the default path
		copy(c, payload)
		payload = c
	}
	mb.handler(mb, payload)
}

// Exchange runs one full routing round: every stage of the scheme, each
// as a synchronous collective exchange. It is collective over the whole
// world — all ranks must call it together — and delivers every record
// queued before the call (records spawned by handlers during delivery
// wait for the next Exchange). The coupling of each phase to its slowest
// participant is exactly what the asynchronous Mailbox avoids.
func (mb *SyncMailbox) Exchange() {
	sp := mb.p.Span("sync.exchange")
	defer sp.End()
	for s := range mb.stages {
		mb.runStage(s)
	}
	mb.inStage = -1
	// Promote next-generation buffers: records spawned too late for this
	// Exchange ship on the following one.
	for s := range mb.stages {
		st := &mb.stages[s]
		st.cur, st.next = st.next, st.cur
	}
}

// runStage ships stage s's current-generation buffers through one pooled
// Alltoallv over the stage communicator and dispatches what arrives.
// Payloads travel as pool-recycled buffers (or, with ZeroCopyLocal, as
// the coalescing buffers themselves for same-node members), so a
// steady-state stage allocates nothing.
//
//ygm:hotpath
func (mb *SyncMailbox) runStage(s int) {
	sp := mb.p.Span(stageSpanName(s))
	defer sp.End()
	mb.inStage = s
	st := &mb.stages[s]
	moved := 0
	for i := range st.cur {
		b := &st.cur[i]
		if b.count == 0 {
			st.payloads[i] = nil
			continue
		}
		moved += b.count
		b.count = 0
		if mb.opts.ZeroCopyLocal && b.local {
			st.payloads[i] = b.w.Detach(mb.p.AcquireBuf(0))
		} else {
			payload := mb.p.AcquireBuf(b.w.Len())
			copy(payload, b.w.Bytes())
			b.w.Reset()
			st.payloads[i] = payload
		}
	}
	mb.queued -= moved
	mb.stats.HopsSent += uint64(moved)
	if moved > 0 {
		mb.stats.Flushes++
	}
	st.comm.AlltoallvPooled(st.payloads, st.scratch, &mb.sink)
	for i := range st.payloads {
		st.payloads[i] = nil
	}
}

// syncDispatcher adapts SyncMailbox to collective.BlobSink. It is
// embedded in the mailbox and referenced by pointer, so handing it to
// AlltoallvPooled never allocates.
type syncDispatcher struct{ mb *SyncMailbox }

// VisitBlob parses and dispatches one member's exchange contribution.
//
//ygm:hotpath
func (d *syncDispatcher) VisitBlob(srcIndex int, blob []byte) {
	mb := d.mb
	r := codec.NewReader(blob)
	for r.Remaining() > 0 {
		rec, err := parseRecord(r)
		if err != nil {
			panic(fmt.Sprintf("ygm: corrupt sync exchange payload: %v", err))
		}
		mb.stats.HopsRecv++
		mb.p.Compute(mb.cost.handling(len(rec.payload)))
		mb.dispatch(rec)
	}
}

// dispatch delivers or requeues one received record. Requeued payloads
// are copied into the destination stage buffer by appendRecord itself,
// so no intermediate per-record copy is needed.
//
//ygm:hotpath
func (mb *SyncMailbox) dispatch(rec record) {
	topo := mb.p.Topo()
	me := mb.p.Rank()
	switch rec.kind {
	case kindUnicast:
		if rec.dst == me {
			mb.deliver(rec.payload)
			return
		}
		mb.push(mb.opts.nextHop(topo, me, rec.dst), kindUnicast, rec.dst, rec.payload)
	case kindBcastDeliver:
		mb.deliver(rec.payload)
	case kindBcastLocalFanout:
		mb.deliver(rec.payload)
		node, core := topo.Node(me), topo.Core(me)
		for n := 0; n < topo.Nodes(); n++ {
			if n != node {
				mb.push(topo.RankOf(n, core), kindBcastDeliver, machine.Nil, rec.payload)
			}
		}
	case kindBcastRemoteDistribute, kindBcastNLNRDistribute:
		mb.deliver(rec.payload)
		node, core := topo.Node(me), topo.Core(me)
		for c := 0; c < topo.Cores(); c++ {
			if c != core {
				mb.push(topo.RankOf(node, c), kindBcastDeliver, machine.Nil, rec.payload)
			}
		}
	case kindBcastNLNRFanout:
		mb.deliver(rec.payload)
		mb.nlnrFanout(rec.payload)
	default:
		panic(fmt.Sprintf("ygm: unknown record kind %d", rec.kind))
	}
}

// ExchangeUntilQuiet repeats Exchange until no rank holds queued
// records — the bulk-synchronous analogue of WaitEmpty. Collective.
func (mb *SyncMailbox) ExchangeUntilQuiet() {
	for {
		mb.Exchange()
		pending := mb.world.AllreduceU64(
			[]uint64{uint64(mb.queued)}, collective.SumU64)[0]
		if pending == 0 {
			return
		}
	}
}

// WaitEmpty is ExchangeUntilQuiet under the Box interface name.
func (mb *SyncMailbox) WaitEmpty() { mb.ExchangeUntilQuiet() }

// TestEmpty is unsupported on the synchronous variant: its exchanges
// are collective, so it cannot make unilateral nonblocking progress.
func (mb *SyncMailbox) TestEmpty() (bool, error) { return false, ErrUnsupported }

var _ Sender = (*SyncMailbox)(nil)
