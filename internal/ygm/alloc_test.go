package ygm

import (
	"bytes"
	"fmt"
	"runtime"
	"testing"

	"ygm/internal/machine"
	"ygm/internal/netsim"
	"ygm/internal/transport"
)

// The steady-state allocation pins below are the contract behind the
// zero-allocation exchange hot path: once coalescing buffers have grown
// to the workload's sizes and the transport pool is stocked, the
// queue→coalesce→pack→send→deliver cycle of every mailbox variant must
// perform zero heap allocations per message. testing.AllocsPerRun
// measures *global* mallocs under GOMAXPROCS(1), so the peer rank's
// responses are inside the measured window too — both sides of the
// exchange must be allocation-free for the pin to pass.
//
// AllocsPerRun calls the function once as an internal warmup before the
// measured runs, so the peer rank must expect warmup+runs+1 operations.
const (
	allocWarmup = 64
	allocRuns   = 32
)

// skipIfYgmcheck exempts the pins from `-tags ygmcheck` builds: the
// invariant layer's checkf calls box their arguments on every Send, so
// the instrumented build legitimately allocates. The zero-alloc contract
// applies to the production build.
func skipIfYgmcheck(t *testing.T) {
	t.Helper()
	if ygmcheckEnabled {
		t.Skip("ygmcheck invariant layer allocates; pins target the production build")
	}
}

// TestLazySteadyStateZeroAlloc pins the lazy mailbox's full round trip:
// Send queues and coalesces, Flush packs into a pooled packet and sends,
// the peer drains, delivers, and answers, and the origin drains the
// answer. One node, two cores: the shortest honest ping-pong.
func TestLazySteadyStateZeroAlloc(t *testing.T) {
	skipIfYgmcheck(t)
	var failure error
	_, err := transport.Run(transport.Config{
		Topo:  machine.New(1, 2),
		Model: netsim.Quartz(),
		Seed:  7,
	}, func(p *transport.Proc) error {
		var got int
		mb := New(p, func(s Sender, payload []byte) { got++ },
			WithScheme(machine.NoRoute),
			WithExchange(LazyExchange),
			WithCapacity(1<<20)).(*Mailbox)
		payload := []byte("0123456789abcdef")
		peer := machine.Rank(1 - p.Rank())
		waitDelivery := func(target int) {
			for got < target {
				mb.drainAvailable()
				runtime.Gosched()
			}
		}
		if p.Rank() == 0 {
			pingOnce := func() {
				target := got + 1
				mb.Send(peer, payload)
				mb.Flush()
				waitDelivery(target)
			}
			for i := 0; i < allocWarmup; i++ {
				pingOnce()
			}
			if avg := testing.AllocsPerRun(allocRuns, pingOnce); avg != 0 {
				failure = fmt.Errorf("lazy round trip allocates %.1f allocs/op, want 0", avg)
			}
		} else {
			for i := 0; i < allocWarmup+allocRuns+1; i++ {
				waitDelivery(got + 1)
				mb.Send(peer, payload)
				mb.Flush()
			}
		}
		mb.WaitEmpty()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if failure != nil {
		t.Fatal(failure)
	}
}

// TestRoundSteadyStateZeroAlloc pins the round-matched variant: with
// Capacity 1, every Send triggers a full exchange round — pack, pooled
// send, matched receive, dispatch, recycle — in lockstep on both ranks.
func TestRoundSteadyStateZeroAlloc(t *testing.T) {
	skipIfYgmcheck(t)
	var failure error
	_, err := transport.Run(transport.Config{
		Topo:  machine.New(1, 2),
		Model: netsim.Quartz(),
		Seed:  7,
	}, func(p *transport.Proc) error {
		mb := New(p, func(s Sender, payload []byte) {},
			WithScheme(machine.NoRoute),
			WithExchange(RoundExchange),
			WithCapacity(1))
		payload := []byte("0123456789abcdef")
		peer := machine.Rank(1 - p.Rank())
		roundOnce := func() { mb.Send(peer, payload) }
		if p.Rank() == 0 {
			for i := 0; i < allocWarmup; i++ {
				roundOnce()
			}
			if avg := testing.AllocsPerRun(allocRuns, roundOnce); avg != 0 {
				failure = fmt.Errorf("round exchange allocates %.1f allocs/op, want 0", avg)
			}
		} else {
			for i := 0; i < allocWarmup+allocRuns+1; i++ {
				roundOnce()
			}
		}
		mb.WaitEmpty()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if failure != nil {
		t.Fatal(failure)
	}
}

// TestSyncSteadyStateZeroAlloc pins the ALLTOALLV-backed variant: Send
// encodes straight into the stage's generation buffer and Exchange ships
// it through the pooled collective, both ranks in lockstep.
func TestSyncSteadyStateZeroAlloc(t *testing.T) {
	skipIfYgmcheck(t)
	var failure error
	_, err := transport.Run(transport.Config{
		Topo:  machine.New(1, 2),
		Model: netsim.Quartz(),
		Seed:  7,
	}, func(p *transport.Proc) error {
		mb := New(p, func(s Sender, payload []byte) {},
			WithScheme(machine.NoRoute),
			WithExchange(SyncExchange)).(*SyncMailbox)
		payload := []byte("0123456789abcdef")
		peer := machine.Rank(1 - p.Rank())
		syncOnce := func() {
			mb.Send(peer, payload)
			mb.Exchange()
		}
		if p.Rank() == 0 {
			for i := 0; i < allocWarmup; i++ {
				syncOnce()
			}
			if avg := testing.AllocsPerRun(allocRuns, syncOnce); avg != 0 {
				failure = fmt.Errorf("sync exchange allocates %.1f allocs/op, want 0", avg)
			}
		} else {
			for i := 0; i < allocWarmup+allocRuns+1; i++ {
				syncOnce()
			}
		}
		mb.ExchangeUntilQuiet()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if failure != nil {
		t.Fatal(failure)
	}
}

// TestTermSteadyStateZeroAlloc pins the termination-detection path: a
// WaitEmpty on a quiet mailbox runs whole detection generations —
// contribution encode into the detector's scratch writer, pooled send up
// the binomial tree, verdict relay down, absorb-and-recycle on both
// ranks — and none of it may allocate once the scratch writer and the
// transport pool have warmed up.
func TestTermSteadyStateZeroAlloc(t *testing.T) {
	skipIfYgmcheck(t)
	var failure error
	_, err := transport.Run(transport.Config{
		Topo:  machine.New(1, 2),
		Model: netsim.Quartz(),
		Seed:  7,
	}, func(p *transport.Proc) error {
		mb := New(p, func(s Sender, payload []byte) {},
			WithScheme(machine.NoRoute),
			WithExchange(LazyExchange)).(*Mailbox)
		termOnce := func() { mb.WaitEmpty() }
		if p.Rank() == 0 {
			for i := 0; i < allocWarmup; i++ {
				termOnce()
			}
			if avg := testing.AllocsPerRun(allocRuns, termOnce); avg != 0 {
				failure = fmt.Errorf("termination detection allocates %.1f allocs/op, want 0", avg)
			}
		} else {
			for i := 0; i < allocWarmup+allocRuns+1; i++ {
				termOnce()
			}
		}
		mb.WaitEmpty()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if failure != nil {
		t.Fatal(failure)
	}
}

// TestSelfDeliverZeroAlloc pins synchronous self-delivery: no transport,
// no coalescing — just the handler invocation, which must not allocate.
func TestSelfDeliverZeroAlloc(t *testing.T) {
	skipIfYgmcheck(t)
	var failure error
	_, err := transport.Run(transport.Config{
		Topo:  machine.New(1, 1),
		Model: netsim.Quartz(),
		Seed:  7,
	}, func(p *transport.Proc) error {
		var got int
		mb := New(p, func(s Sender, payload []byte) { got++ },
			WithScheme(machine.NLNR),
			WithExchange(LazyExchange))
		payload := []byte("0123456789abcdef")
		self := func() { mb.Send(p.Rank(), payload) }
		self()
		if avg := testing.AllocsPerRun(allocRuns, self); avg != 0 {
			failure = fmt.Errorf("self-delivery allocates %.1f allocs/op, want 0", avg)
		}
		mb.WaitEmpty()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if failure != nil {
		t.Fatal(failure)
	}
}

// TestCopyOnDeliverProtectsRetainedPayloads is the pooled-buffer
// aliasing regression test: delivery payloads alias pooled packet
// buffers that are recycled — and overwritten by later traffic — after
// dispatch, so a handler that retains slices across deliveries would see
// them stomped. WithCopyOnDeliver is the opt-out: the mailbox copies
// each payload first, so retained slices stay intact through arbitrary
// later traffic on every variant.
func TestCopyOnDeliverProtectsRetainedPayloads(t *testing.T) {
	const msgs = 200
	for _, style := range []ExchangeStyle{LazyExchange, RoundExchange, SyncExchange} {
		style := style
		t.Run(style.String(), func(t *testing.T) {
			var retained [][]byte // rank 1 only; confined to its goroutine until Run returns
			_, err := transport.Run(transport.Config{
				Topo:  machine.New(1, 2),
				Model: netsim.Quartz(),
				Seed:  7,
			}, func(p *transport.Proc) error {
				mb := New(p, func(s Sender, payload []byte) {
					retained = append(retained, payload) // retaining: legal only with CopyOnDeliver
				},
					WithScheme(machine.NoRoute),
					WithExchange(style),
					WithCapacity(4),
					WithCopyOnDeliver(true))
				if p.Rank() == 0 {
					for i := 0; i < msgs; i++ {
						payload := bytes.Repeat([]byte{byte(i)}, 32)
						mb.Send(1, payload)
					}
				}
				mb.WaitEmpty()
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			if len(retained) != msgs {
				t.Fatalf("retained %d payloads, want %d", len(retained), msgs)
			}
			seen := map[byte]bool{}
			for _, b := range retained {
				if len(b) != 32 {
					t.Fatalf("retained payload of %d bytes, want 32", len(b))
				}
				for _, c := range b {
					if c != b[0] {
						t.Fatalf("retained payload stomped by buffer recycling: %v", b)
					}
				}
				if seen[b[0]] {
					t.Fatalf("duplicate retained payload %d", b[0])
				}
				seen[b[0]] = true
			}
		})
	}
}
