package ygm

import (
	"fmt"

	"ygm/internal/codec"
	"ygm/internal/machine"
)

// recordKind encodes what a record is and, for broadcast records, which
// stage of the scheme's fan-out it is in. The kind is the first byte of
// every record in a coalesced packet.
type recordKind byte

const (
	// kindUnicast is a point-to-point message carrying its final
	// destination rank; intermediaries forward it along NextHop.
	kindUnicast recordKind = iota
	// kindBcastDeliver is a broadcast copy in its final stage: deliver to
	// the receiving rank, no further forwarding.
	kindBcastDeliver
	// kindBcastLocalFanout (NodeLocal): deliver, then send
	// kindBcastDeliver remotely to every node's core with the receiver's
	// core offset.
	kindBcastLocalFanout
	// kindBcastRemoteDistribute (NodeRemote): deliver, then send
	// kindBcastDeliver to every other core on the receiving node.
	kindBcastRemoteDistribute
	// kindBcastNLNRFanout (NLNR stage 1): deliver, then send
	// kindBcastNLNRDistribute remotely to every node in the receiver's
	// residue class.
	kindBcastNLNRFanout
	// kindBcastNLNRDistribute (NLNR stage 2): deliver, then send
	// kindBcastDeliver to every other core on the receiving node.
	kindBcastNLNRDistribute
)

// appendRecord serializes one record into a coalescing buffer:
// kind byte, destination (unicast only), then a length-prefixed payload.
func appendRecord(w *codec.Writer, kind recordKind, dst machine.Rank, payload []byte) {
	w.Byte(byte(kind))
	if kind == kindUnicast {
		w.Uvarint(uint64(dst))
	}
	w.Bytes0(payload)
}

// record is one parsed entry of a coalesced packet.
type record struct {
	kind    recordKind
	dst     machine.Rank // meaningful for kindUnicast only
	payload []byte       // aliases the packet buffer
}

// parseRecord decodes the next record from r.
func parseRecord(r *codec.Reader) (record, error) {
	var rec record
	k, err := r.Byte()
	if err != nil {
		return rec, err
	}
	rec.kind = recordKind(k)
	if rec.kind > kindBcastNLNRDistribute {
		return rec, fmt.Errorf("ygm: corrupt record kind %d", k)
	}
	if rec.kind == kindUnicast {
		d, err := r.Uvarint()
		if err != nil {
			return rec, err
		}
		rec.dst = machine.Rank(d)
	}
	rec.payload, err = r.Bytes0()
	return rec, err
}

// recordSize returns the encoded size of a record, used to estimate
// buffer growth without encoding twice.
func recordSize(kind recordKind, dst machine.Rank, payloadLen int) int {
	n := 1 + codec.UvarintLen(uint64(payloadLen)) + payloadLen
	if kind == kindUnicast {
		n += codec.UvarintLen(uint64(dst))
	}
	return n
}
