package ygm

import (
	"fmt"
	"sync"
	"testing"

	"ygm/internal/machine"
	"ygm/internal/netsim"
	"ygm/internal/transport"
)

// runSyncMailbox executes an SPMD body with a synchronous mailbox per rank.
func runSyncMailbox(t *testing.T, nodes, cores int, opts Options, handler func(p *transport.Proc) Handler,
	body func(p *transport.Proc, mb *SyncMailbox) error) *transport.Report {
	t.Helper()
	rep, err := transport.Run(transport.Config{
		Topo:  machine.New(nodes, cores),
		Model: netsim.Quartz(),
		Seed:  11, // same seed as runMailbox: comparison tests share workloads
	}, func(p *transport.Proc) error {
		mb, err := newSync(p, handler(p), opts)
		if err != nil {
			return err
		}
		return body(p, mb)
	})
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestSyncNewValidation(t *testing.T) {
	_, err := transport.Run(transport.Config{Topo: machine.New(1, 1)}, func(p *transport.Proc) error {
		if _, err := newSync(p, nil, Options{}); err == nil {
			return fmt.Errorf("nil handler accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestSyncAllToAllDelivery mirrors the asynchronous all-to-all test: one
// Exchange must deliver every pre-queued message under every scheme.
func TestSyncAllToAllDelivery(t *testing.T) {
	for _, scheme := range machine.Schemes {
		scheme := scheme
		t.Run(scheme.String(), func(t *testing.T) {
			cs := newCounterState()
			runSyncMailbox(t, 4, 3, Options{Scheme: scheme},
				func(p *transport.Proc) Handler {
					return func(s Sender, payload []byte) {
						cs.record(p.Rank(), decodeU64(payload))
					}
				},
				func(p *transport.Proc, mb *SyncMailbox) error {
					me := uint64(p.Rank())
					for dst := 0; dst < p.WorldSize(); dst++ {
						if dst != int(p.Rank()) {
							mb.Send(machine.Rank(dst), encodeU64(me*1000+uint64(dst)))
						}
					}
					mb.Exchange()
					if mb.PendingSends() != 0 {
						return fmt.Errorf("%d records left after one exchange", mb.PendingSends())
					}
					return nil
				})
			size := 12
			for r := 0; r < size; r++ {
				got := cs.delivered[machine.Rank(r)]
				if len(got) != size-1 {
					t.Fatalf("rank %d delivered %d, want %d", r, len(got), size-1)
				}
				for _, v := range got {
					if int(v%1000) != r {
						t.Fatalf("rank %d got message for %d", r, v%1000)
					}
				}
			}
		})
	}
}

// TestSyncBroadcast: broadcast delivery and the remote packet counts of
// the scheme fan-outs carry over unchanged from the async mailbox.
func TestSyncBroadcast(t *testing.T) {
	const nodes, cores = 4, 4
	wantRemote := map[machine.Scheme]uint64{
		machine.NoRoute:    (nodes - 1) * cores,
		machine.NodeLocal:  (nodes - 1) * cores,
		machine.NodeRemote: nodes - 1,
		machine.NLNR:       nodes - 1,
	}
	for _, scheme := range machine.Schemes {
		scheme := scheme
		t.Run(scheme.String(), func(t *testing.T) {
			cs := newCounterState()
			rep := runSyncMailbox(t, nodes, cores, Options{Scheme: scheme},
				func(p *transport.Proc) Handler {
					return func(s Sender, payload []byte) { cs.record(p.Rank(), decodeU64(payload)) }
				},
				func(p *transport.Proc, mb *SyncMailbox) error {
					if p.Rank() == 5 {
						mb.Broadcast(encodeU64(42))
					}
					mb.ExchangeUntilQuiet()
					return nil
				})
			for r := 0; r < nodes*cores; r++ {
				got := cs.delivered[machine.Rank(r)]
				if r == 5 {
					if len(got) != 0 {
						t.Fatalf("origin delivered to itself")
					}
					continue
				}
				if len(got) != 1 || got[0] != 42 {
					t.Fatalf("rank %d got %v", r, got)
				}
			}
			// A single broadcast's records cannot coalesce with anything,
			// so remote data packets equal remote record copies... except
			// that empty Alltoallv legs also ship zero-length packets. Count
			// only non-empty ones via byte totals: every record here is the
			// same size, so packets with payload == records.
			tot := rep.Totals()
			if tot.DataRemoteMsgs != 0 {
				t.Fatalf("sync mailbox must not use the mailbox data tag, got %d", tot.DataRemoteMsgs)
			}
			recordBytes := tot.RemoteBytes
			if recordBytes == 0 && wantRemote[scheme] > 0 {
				t.Fatalf("no remote traffic for %v broadcast", scheme)
			}
		})
	}
}

// TestSyncHandlerSpawns: records spawned by handlers are delivered by
// ExchangeUntilQuiet across rounds (the message-chain workload).
func TestSyncHandlerSpawns(t *testing.T) {
	for _, scheme := range machine.Schemes {
		scheme := scheme
		t.Run(scheme.String(), func(t *testing.T) {
			cs := newCounterState()
			runSyncMailbox(t, 3, 2, Options{Scheme: scheme},
				func(p *transport.Proc) Handler {
					return func(s Sender, payload []byte) {
						v := decodeU64(payload)
						cs.record(p.Rank(), v)
						if next := int(p.Rank()) + 1; next < p.WorldSize() {
							s.Send(machine.Rank(next), encodeU64(v+1))
						}
					}
				},
				func(p *transport.Proc, mb *SyncMailbox) error {
					if p.Rank() == 0 {
						mb.Send(1, encodeU64(100))
					}
					mb.ExchangeUntilQuiet()
					return nil
				})
			for r := 1; r < 6; r++ {
				got := cs.delivered[machine.Rank(r)]
				if len(got) != 1 || got[0] != uint64(99+r) {
					t.Fatalf("%v: rank %d got %v", scheme, r, got)
				}
			}
		})
	}
}

// TestSyncMatchesAsyncDelivery: the same random workload produces the
// same multiset of deliveries through both exchange styles.
func TestSyncMatchesAsyncDelivery(t *testing.T) {
	workload := func(send func(dst machine.Rank, payload []byte), bcast func([]byte), p *transport.Proc) {
		rng := p.Rng()
		for i := 0; i < 60; i++ {
			if rng.Intn(12) == 0 {
				bcast(encodeU64(uint64(1000 + i)))
			} else {
				send(machine.Rank(rng.Intn(p.WorldSize())), encodeU64(uint64(i)))
			}
		}
	}
	collect := func(sync bool) map[machine.Rank][]uint64 {
		cs := newCounterState()
		handler := func(p *transport.Proc) Handler {
			return func(s Sender, payload []byte) { cs.record(p.Rank(), decodeU64(payload)) }
		}
		opts := Options{Scheme: machine.NLNR, Capacity: 16}
		if sync {
			runSyncMailbox(t, 3, 3, opts, handler, func(p *transport.Proc, mb *SyncMailbox) error {
				workload(mb.Send, mb.Broadcast, p)
				mb.ExchangeUntilQuiet()
				return nil
			})
		} else {
			runMailbox(t, 3, 3, opts, handler, func(p *transport.Proc, mb *Mailbox) error {
				workload(mb.Send, mb.Broadcast, p)
				mb.WaitEmpty()
				return nil
			})
		}
		return cs.delivered
	}
	asyncGot := collect(false)
	syncGot := collect(true)
	for r := machine.Rank(0); r < 9; r++ {
		a, s := asyncGot[r], syncGot[r]
		if len(a) != len(s) {
			t.Fatalf("rank %d: async %d deliveries, sync %d", r, len(a), len(s))
		}
		counts := map[uint64]int{}
		for _, v := range a {
			counts[v]++
		}
		for _, v := range s {
			counts[v]--
		}
		for v, c := range counts {
			if c != 0 {
				t.Fatalf("rank %d: delivery multiset differs at %d (%+d)", r, v, c)
			}
		}
	}
}

// TestSyncCouplesToStraggler: the whole point of the async design —
// a synchronous Exchange waits for its slowest participant, so every
// rank's exit time is bounded below by the straggler's compute.
func TestSyncCouplesToStraggler(t *testing.T) {
	const slow = 5e-3
	exits := make([]float64, 8)
	var mu sync.Mutex
	_, err := transport.Run(transport.Config{
		Topo:  machine.New(4, 2),
		Model: netsim.Quartz(),
		ComputeScale: func(r machine.Rank) float64 {
			if r == 7 {
				return 1
			}
			return 1
		},
	}, func(p *transport.Proc) error {
		mb, err := newSync(p, func(s Sender, payload []byte) {}, Options{Scheme: machine.NodeRemote})
		if err != nil {
			return err
		}
		if p.Rank() == 7 {
			p.Compute(slow)
		}
		mb.Send(machine.Rank((int(p.Rank())+1)%8), encodeU64(1))
		mb.Exchange()
		mu.Lock()
		exits[p.Rank()] = p.Now()
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for r, at := range exits {
		if at < slow {
			t.Fatalf("rank %d exited the exchange at %g before the straggler's %g", r, at, slow)
		}
	}
}

// TestSyncVariableLengthAndSelfSend: payload sizes and self-delivery.
func TestSyncVariableLengthAndSelfSend(t *testing.T) {
	var mu sync.Mutex
	sizes := map[int]int{}
	runSyncMailbox(t, 2, 2, Options{Scheme: machine.NodeLocal},
		func(p *transport.Proc) Handler {
			return func(s Sender, payload []byte) {
				mu.Lock()
				sizes[len(payload)]++
				mu.Unlock()
			}
		},
		func(p *transport.Proc, mb *SyncMailbox) error {
			if p.Rank() == 0 {
				mb.Send(0, make([]byte, 5)) // self: immediate
				mb.Send(3, make([]byte, 0))
				mb.Send(3, make([]byte, 40000))
			}
			mb.ExchangeUntilQuiet()
			return nil
		})
	if sizes[5] != 1 || sizes[0] != 1 || sizes[40000] != 1 {
		t.Fatalf("sizes = %v", sizes)
	}
}
