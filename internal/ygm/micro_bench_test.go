package ygm

import (
	"testing"

	"ygm/internal/codec"

	"ygm/internal/machine"
	"ygm/internal/netsim"
	"ygm/internal/transport"
)

// benchWorkload runs an all-to-all counting workload through the given
// exchange style and reports host nanoseconds per application message —
// the *implementation* cost of the mailbox machinery (as opposed to the
// simulated times the figure benchmarks report).
func benchWorkload(b *testing.B, style ExchangeStyle, scheme machine.Scheme) {
	b.Helper()
	const msgsPerRank = 512
	topo := machine.New(4, 4)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		// The seed is fixed so every iteration runs the identical
		// workload: a per-iteration seed gives b.N calibration runs with
		// different message patterns, which makes ns/op unstable.
		_, err := transport.Run(transport.Config{
			Topo:  topo,
			Model: netsim.Quartz(),
			Seed:  12345,
		}, func(p *transport.Proc) error {
			mb := New(p, func(s Sender, payload []byte) {},
				WithScheme(scheme),
				WithCapacity(256),
				WithExchange(style))
			rng := p.Rng()
			for k := 0; k < msgsPerRank; k++ {
				mb.Send(machine.Rank(rng.Intn(p.WorldSize())), encodeU64(uint64(k)))
			}
			mb.WaitEmpty()
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*msgsPerRank*topo.WorldSize()), "host-ns/msg")
}

func BenchmarkMailboxLazyNLNR(b *testing.B)    { benchWorkload(b, LazyExchange, machine.NLNR) }
func BenchmarkMailboxRoundNLNR(b *testing.B)   { benchWorkload(b, RoundExchange, machine.NLNR) }
func BenchmarkMailboxLazyNoRoute(b *testing.B) { benchWorkload(b, LazyExchange, machine.NoRoute) }
func BenchmarkMailboxRoundNodeRemote(b *testing.B) {
	benchWorkload(b, RoundExchange, machine.NodeRemote)
}

// BenchmarkRecordEncode measures the coalescing-buffer record append.
func BenchmarkRecordEncode(b *testing.B) {
	payload := make([]byte, 16)
	b.ReportAllocs()
	var w codec.Writer
	for i := 0; i < b.N; i++ {
		if w.Len() > 1<<16 {
			w.Reset()
		}
		appendRecord(&w, kindUnicast, machine.Rank(i%1024), payload)
	}
}

// BenchmarkRecordDecode measures packet-record parsing.
func BenchmarkRecordDecode(b *testing.B) {
	var w codec.Writer
	payload := make([]byte, 16)
	for i := 0; i < 64; i++ {
		appendRecord(&w, kindUnicast, machine.Rank(i), payload)
	}
	blob := w.Bytes()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := codec.NewReader(blob)
		for r.Remaining() > 0 {
			if _, err := parseRecord(r); err != nil {
				b.Fatal(err)
			}
		}
	}
}
