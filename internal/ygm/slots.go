package ygm

import (
	"ygm/internal/codec"
	"ygm/internal/machine"
	"ygm/internal/transport"
)

// hopBuf is one partner's coalescing-buffer slot. The writer's backing
// storage is retained across flushes (or replaced from the transport
// buffer pool on zero-copy handoff), so a slot never allocates in steady
// state.
type hopBuf struct {
	hop   machine.Rank
	local bool // hop shares this rank's node
	w     codec.Writer
	count int
}

// hopSlots is a dense per-partner coalescing-buffer table: one slot per
// rank this mailbox can ever transmit to (the machine.HopPartners
// universe), indexed through a world-sized rank→slot map. Unlike the
// rank-keyed maps it replaces, the table is built once at construction
// and never rebuilt on reset — flushing truncates the active list and
// leaves every slot armed.
type hopSlots struct {
	slots  []hopBuf
	slotOf []int32 // world-sized; -1 for ranks outside the universe
	// active lists slots holding records, in first-use order since the
	// last flush, so flushes stay deterministic for a deterministic send
	// sequence.
	active []int32
}

// init builds the slot table over the given partner universe.
func (hs *hopSlots) init(topo machine.Topology, me machine.Rank, partners []machine.Rank) {
	hs.slots = make([]hopBuf, len(partners))
	hs.slotOf = make([]int32, topo.WorldSize())
	for i := range hs.slotOf {
		hs.slotOf[i] = -1
	}
	for i, hop := range partners {
		hs.slots[i] = hopBuf{hop: hop, local: topo.SameNode(me, hop)}
		hs.slotOf[hop] = int32(i)
	}
	hs.active = make([]int32, 0, len(partners))
}

// coalesceArmBytes is the storage each coalescing slot is armed with
// when it takes its first record: roughly one flush's worth for typical
// record sizes, claimed in a single allocation instead of letting the
// first fill double its way up from empty. Slots keep their storage
// across flushes, so arming is a capacity check after warmup.
const coalesceArmBytes = 256

// buf returns hop's slot, marking it active on its first record since
// the last flush, or nil when hop lies outside the partner universe.
//
//ygm:hotpath
func (hs *hopSlots) buf(hop machine.Rank) *hopBuf {
	i := hs.slotOf[hop]
	if i < 0 {
		return nil
	}
	b := &hs.slots[i]
	if b.count == 0 {
		hs.active = append(hs.active, i)
		b.w.Arm(coalesceArmBytes)
	}
	return b
}

// sendPooledBuf ships one coalescing buffer as a pooled packet and
// re-arms the slot's writer. The default path copies the packed bytes
// into a pool-recycled payload (modeling the send-side copy onto the
// wire); with zeroCopyLocal, same-node buffers skip the copy and travel
// as-is, the writer taking a recycled buffer in their place — the hybrid
// exchange of the paper's Section VII. Either way the payload returns to
// the pool when the receiver Recycles the packet, so steady-state
// flushing allocates nothing.
//
//ygm:hotpath
func sendPooledBuf(p *transport.Proc, b *hopBuf, tag transport.Tag, zeroCopyLocal bool) {
	var payload []byte
	if zeroCopyLocal && b.local {
		payload = b.w.Detach(p.AcquireBuf(0))
	} else {
		payload = p.AcquireBuf(b.w.Len())
		copy(payload, b.w.Bytes())
		b.w.Reset()
	}
	p.SendPooled(b.hop, tag, payload)
}
