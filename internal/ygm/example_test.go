package ygm_test

import (
	"fmt"
	"sort"
	"sync"

	"ygm/internal/machine"
	"ygm/internal/netsim"
	"ygm/internal/transport"
	"ygm/internal/ygm"
)

// Example demonstrates the complete mailbox workflow on a simulated
// 2-node, 2-core cluster: every rank mails its rank id to rank 0, rank 0
// answers with an asynchronous broadcast, and WaitEmpty detects global
// quiescence.
func Example() {
	var mu sync.Mutex
	var log []string

	_, err := transport.Run(transport.Config{
		Topo:  machine.New(2, 2),
		Model: netsim.Quartz(),
	}, func(p *transport.Proc) error {
		mb := ygm.New(p, func(s ygm.Sender, payload []byte) {
			mu.Lock()
			log = append(log, fmt.Sprintf("rank %d got %q", p.Rank(), payload))
			mu.Unlock()
			if p.Rank() == 0 && string(payload) != "ack" {
				s.Broadcast([]byte("ack"))
			}
		}, ygm.WithScheme(machine.NLNR), ygm.WithCapacity(16))

		if p.Rank() != 0 {
			mb.Send(0, []byte(fmt.Sprintf("hello-%d", p.Rank())))
		}
		mb.WaitEmpty()
		return nil
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	sort.Strings(log)
	for _, l := range log {
		fmt.Println(l)
	}
	// Output:
	// rank 0 got "hello-1"
	// rank 0 got "hello-2"
	// rank 0 got "hello-3"
	// rank 1 got "ack"
	// rank 1 got "ack"
	// rank 1 got "ack"
	// rank 2 got "ack"
	// rank 2 got "ack"
	// rank 2 got "ack"
	// rank 3 got "ack"
	// rank 3 got "ack"
	// rank 3 got "ack"
}
