package ygm

import "ygm/internal/machine"

// Tap observes mailbox-internal record movement. It is the oracle
// instrumentation point of the simulation-fuzz harness: every record
// entering a coalescing buffer (at the origin or at a forwarding
// intermediary) is reported before it is encoded, which lets an
// external oracle reconstruct the exact hop sequence of each logical
// message and compare it against machine.Path.
//
// RecordQueued is invoked on the goroutine of the queueing rank; a Tap
// shared across ranks must be safe for concurrent use. The payload
// slice may alias mailbox buffers and must not be retained or mutated.
// A nil Tap (the default) costs one branch per record and nothing else.
type Tap interface {
	// RecordQueued reports one record queued on rank at, bound for hop
	// on the next exchange. For unicast records dst is the final
	// destination; for broadcast-stage records dst is machine.Nil and
	// bcast is true.
	RecordQueued(at, hop, dst machine.Rank, bcast bool, payload []byte)
}

// TestHooks are deliberate fault-injection points, used exclusively by
// the simulation-fuzz mutation smoke tests to prove the delivery oracle
// has teeth: a harness whose oracle cannot catch a wrong next hop, a
// dropped delivery, or a premature termination verdict is vacuous.
// All fields nil (and the whole pointer nil) in production; each site
// guards with a single nil check, so the default path is unchanged.
type TestHooks struct {
	// NextHop, when non-nil, replaces topology routing for unicast
	// records (both at the origin and at intermediaries).
	NextHop func(t machine.Topology, s machine.Scheme, cur, dst machine.Rank) machine.Rank
	// DropDelivery, when non-nil and returning true, silently discards
	// a message instead of invoking the handler — a lost delivery that
	// leaves every transport-level counter balanced.
	DropDelivery func(at machine.Rank, payload []byte) bool
	// ForceVerdict, when non-nil, replaces rank 0's termination verdict
	// for one generation. balanced and unchanged are the two halves of
	// the honest four-counter condition; returning true while either is
	// false manufactures a premature termination.
	ForceVerdict func(balanced, unchanged bool) bool
	// ReorderPacket, when non-nil and returning true for a packet,
	// makes processPacket hold that packet's first record and dispatch
	// it after all its other records — inverting per-channel FIFO
	// whenever two same-channel deliveries were coalesced together,
	// while every transport- and delivery-level counter stays balanced.
	ReorderPacket func(at, src machine.Rank) bool
	// LeakDelivery, when non-nil and returning true, stashes one
	// delivery instead of invoking the handler and releases it at the
	// start of the next termination-detection drain (or, failing that,
	// right after the quiescence verdict) — one WaitEmpty generation
	// late, but still inside the same quiescence window, so the
	// exactly-once oracle sees nothing while delivery order breaks.
	LeakDelivery func(at machine.Rank, payload []byte) bool
}

// nextHop routes one unicast record held by cur, honoring a mutation
// hook when installed.
func (o Options) nextHop(t machine.Topology, cur, dst machine.Rank) machine.Rank {
	if o.Hooks != nil && o.Hooks.NextHop != nil {
		return o.Hooks.NextHop(t, o.Scheme, cur, dst)
	}
	return t.NextHop(o.Scheme, cur, dst)
}

// tapQueued reports one queued record to the tap, if any.
func (o Options) tapQueued(at, hop, dst machine.Rank, kind recordKind, payload []byte) {
	if o.Tap != nil {
		o.Tap.RecordQueued(at, hop, dst, kind != kindUnicast, payload)
	}
}

// dropDelivery reports whether the drop-injection hook claims this
// delivery.
func (o Options) dropDelivery(at machine.Rank, payload []byte) bool {
	return o.Hooks != nil && o.Hooks.DropDelivery != nil && o.Hooks.DropDelivery(at, payload)
}

// reorderPacket reports whether the reorder-injection hook claims this
// packet.
func (o Options) reorderPacket(at, src machine.Rank) bool {
	return o.Hooks != nil && o.Hooks.ReorderPacket != nil && o.Hooks.ReorderPacket(at, src)
}

// leakDelivery reports whether the leak-injection hook claims this
// delivery.
func (o Options) leakDelivery(at machine.Rank, payload []byte) bool {
	return o.Hooks != nil && o.Hooks.LeakDelivery != nil && o.Hooks.LeakDelivery(at, payload)
}
