// Package netsim provides the network cost model that stands in for the
// Omni-Path interconnect and node shared memory of the paper's Quartz
// testbed. Ranks in this reproduction run as goroutines on one host, so
// experiments measure *simulated* time: every rank carries a virtual
// clock, and netsim converts message sizes into virtual send, transfer,
// and receive costs.
//
// The remote model is LogGP-like — a fixed per-message latency plus a
// size-dependent bandwidth term — with the eager/rendezvous protocol
// switch at 16 KiB that produces the characteristic downward bandwidth
// jump of Fig. 5. The local model is a cheaper shared-memory memcpy.
package netsim

import "fmt"

// EagerThreshold is the message size, in bytes, at which MPI
// implementations typically switch from the eager to the rendezvous
// protocol; Fig. 5 shows the resulting bandwidth drop at 16 KiB.
const EagerThreshold = 16 * 1024

// Model holds the cost parameters of the simulated machine. All times are
// in seconds, all rates in bytes per second. The zero value is unusable;
// start from Quartz() and adjust.
type Model struct {
	// SendOverhead is the CPU time a rank spends issuing one send
	// (buffer handoff, header construction). Charged to the sender for
	// both local and remote messages.
	SendOverhead float64
	// RecvOverhead is the CPU time a rank spends receiving one message.
	RecvOverhead float64

	// RemoteLatency is the wire latency per remote message (LogGP L+o).
	RemoteLatency float64
	// RendezvousLatency is the extra handshake round-trip paid by remote
	// messages larger than EagerThreshold.
	RendezvousLatency float64
	// WireBandwidth is the asymptotic link bandwidth for rendezvous
	// (zero-copy) transfers.
	WireBandwidth float64
	// EagerBandwidth is the effective bandwidth of the eager protocol;
	// lower than WireBandwidth because eager sends pay an extra copy.
	EagerBandwidth float64

	// LocalLatency is the per-message cost of a shared-memory transfer
	// between two cores on the same node.
	LocalLatency float64
	// LocalBandwidth is the shared-memory copy bandwidth.
	LocalBandwidth float64
	// ZeroCopyLocal models the hybrid MPI+threads design of Section VII:
	// local transfers hand over a pointer and pay only LocalLatency,
	// skipping the per-byte copy. Off by default, matching the paper's
	// MPI-only implementation that copies on every on-node hop.
	ZeroCopyLocal bool

	// ComputePerMessage is the application CPU cost charged per message
	// handled by a callback; apps may add their own compute on top.
	ComputePerMessage float64
	// RecordOverhead is the fixed CPU cost of handling one coalesced
	// record at an intermediary or receiver (decode, dispatch, buffer
	// append) — a few nanoseconds, on top of the per-byte copy charged
	// via LocalBandwidth. This is the cost coalescing *cannot* amortize,
	// in contrast to the per-packet Send/RecvOverhead it can.
	RecordOverhead float64
}

// Quartz returns a model loosely calibrated to the paper's testbed: LLNL
// Quartz, MVAPICH 2.3 over Omni-Path (Fig. 5: ~1-2us latency, peak near
// 10 GB/s, eager/rendezvous switch at 16 KiB), with DDR4 shared memory.
// Absolute constants are not meant to match the testbed byte-for-byte;
// the experiments depend on the *shape* (alpha vs beta ratio and the
// eager/rendezvous discontinuity).
func Quartz() Model {
	return Model{
		SendOverhead:      500e-9,
		RecvOverhead:      500e-9,
		RemoteLatency:     1.2e-6,
		RendezvousLatency: 15e-6,
		WireBandwidth:     11e9,
		EagerBandwidth:    6e9,
		LocalLatency:      400e-9,
		LocalBandwidth:    24e9,
		ComputePerMessage: 10e-9,
		RecordOverhead:    2e-9,
	}
}

// RecordHandlingTime returns the CPU cost of processing one record of
// the given payload size out of a coalesced packet: the fixed dispatch
// overhead plus the copy at memory bandwidth.
func (m Model) RecordHandlingTime(bytes int) float64 {
	return m.RecordOverhead + float64(bytes)/m.LocalBandwidth
}

// Validate reports a descriptive error if any parameter would make the
// model produce non-positive or non-finite costs.
func (m Model) Validate() error {
	check := func(name string, v float64) error {
		if v < 0 || v != v {
			return fmt.Errorf("netsim: %s = %v must be >= 0 and finite", name, v)
		}
		return nil
	}
	for _, p := range []struct {
		name string
		v    float64
	}{
		{"SendOverhead", m.SendOverhead},
		{"RecvOverhead", m.RecvOverhead},
		{"RemoteLatency", m.RemoteLatency},
		{"RendezvousLatency", m.RendezvousLatency},
		{"LocalLatency", m.LocalLatency},
		{"ComputePerMessage", m.ComputePerMessage},
		{"RecordOverhead", m.RecordOverhead},
	} {
		if err := check(p.name, p.v); err != nil {
			return err
		}
	}
	if m.WireBandwidth <= 0 || m.EagerBandwidth <= 0 || m.LocalBandwidth <= 0 {
		return fmt.Errorf("netsim: bandwidths must be positive (wire=%v eager=%v local=%v)",
			m.WireBandwidth, m.EagerBandwidth, m.LocalBandwidth)
	}
	return nil
}

// RemoteTransferTime returns the end-to-end virtual time for a remote
// message of the given size: latency plus the size over the
// protocol-dependent bandwidth. Messages at or below EagerThreshold use
// the eager protocol; larger ones pay the rendezvous handshake but enjoy
// the higher zero-copy wire bandwidth.
func (m Model) RemoteTransferTime(bytes int) float64 {
	if bytes < 0 {
		panic("netsim: negative message size")
	}
	if bytes <= EagerThreshold {
		return m.RemoteLatency + float64(bytes)/m.EagerBandwidth
	}
	return m.RemoteLatency + m.RendezvousLatency + float64(bytes)/m.WireBandwidth
}

// LocalTransferTime returns the virtual time for a shared-memory message
// between two cores of one node.
func (m Model) LocalTransferTime(bytes int) float64 {
	if bytes < 0 {
		panic("netsim: negative message size")
	}
	if m.ZeroCopyLocal {
		return m.LocalLatency
	}
	return m.LocalLatency + float64(bytes)/m.LocalBandwidth
}

// zeroCopyOverheadFactor scales per-message send/receive CPU overheads
// for on-node transfers under the Section VII hybrid (MPI+threads)
// model: handing a pointer between threads costs a fraction of an MPI
// shared-memory send.
const zeroCopyOverheadFactor = 0.2

// SendOverheadFor returns the per-message send CPU cost for a transfer
// of the given locality.
func (m Model) SendOverheadFor(local bool) float64 {
	if local && m.ZeroCopyLocal {
		return m.SendOverhead * zeroCopyOverheadFactor
	}
	return m.SendOverhead
}

// RecvOverheadFor returns the per-message receive CPU cost for a
// transfer of the given locality.
func (m Model) RecvOverheadFor(local bool) float64 {
	if local && m.ZeroCopyLocal {
		return m.RecvOverhead * zeroCopyOverheadFactor
	}
	return m.RecvOverhead
}

// EffectiveBandwidth returns the achieved remote bandwidth, in bytes per
// second, for a single message of the given size — the quantity plotted
// on the y-axis of Fig. 5.
func (m Model) EffectiveBandwidth(bytes int) float64 {
	if bytes <= 0 {
		return 0
	}
	return float64(bytes) / m.RemoteTransferTime(bytes)
}

// Clock is a per-rank virtual clock. Ranks advance it with compute and
// communication costs; receivers fast-forward to message arrival times.
type Clock struct {
	now  float64
	busy float64
	wait float64
	// maxJump records the largest single WaitUntil advance (diagnostic).
	maxJump float64
}

// Now returns the current virtual time in seconds.
func (c *Clock) Now() float64 { return c.now }

// Busy returns the accumulated time spent computing or in send/receive
// overheads (the numerator of core utilization).
func (c *Clock) Busy() float64 { return c.busy }

// Wait returns the accumulated time spent fast-forwarded past — i.e.
// idle, waiting on message arrivals or barrier partners.
func (c *Clock) Wait() float64 { return c.wait }

// Advance moves the clock forward by d seconds of useful work.
// It panics on negative d: virtual time never runs backwards.
func (c *Clock) Advance(d float64) {
	if d < 0 {
		panic("netsim: negative clock advance")
	}
	c.now += d
	c.busy += d
}

// WaitUntil fast-forwards the clock to time t if t is in the future,
// accounting the skipped interval as wait (idle) time. If t is in the
// past the clock is unchanged: the awaited event already happened.
func (c *Clock) WaitUntil(t float64) {
	if t > c.now {
		if d := t - c.now; d > c.maxJump {
			c.maxJump = d
		}
		c.wait += t - c.now
		c.now = t
	}
}

// MaxJump returns the largest single idle-wait interval (diagnostic).
func (c *Clock) MaxJump() float64 { return c.maxJump }

// AbsorbAt performs the receive-side clock update for a message that
// arrived at virtual time t and costs overhead seconds to receive:
// fast-forward to t when it lies in the future (accounting the skipped
// interval as wait time), then advance by overhead (busy time). It
// returns the skipped interval — 0 when the message had already
// arrived — which is the "jump" the transport's diagnostics report.
// Semantically WaitUntil(t) followed by Advance(overhead), fused
// because the pair brackets every simulated receive.
func (c *Clock) AbsorbAt(t, overhead float64) (jump float64) {
	if t > c.now {
		jump = t - c.now
		if jump > c.maxJump {
			c.maxJump = jump
		}
		c.wait += jump
		c.now = t
	}
	if overhead < 0 {
		panic("netsim: negative clock advance")
	}
	c.now += overhead
	c.busy += overhead
	return jump
}

// Utilization returns busy / now, the fraction of elapsed virtual time
// this rank spent doing useful work. Returns 1 for a clock that never
// moved.
func (c *Clock) Utilization() float64 {
	if c.now == 0 {
		return 1
	}
	return c.busy / c.now
}
