package netsim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestQuartzValidates(t *testing.T) {
	if err := Quartz().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsBadModels(t *testing.T) {
	m := Quartz()
	m.WireBandwidth = 0
	if err := m.Validate(); err == nil {
		t.Error("zero wire bandwidth should be rejected")
	}
	m = Quartz()
	m.RemoteLatency = -1
	if err := m.Validate(); err == nil {
		t.Error("negative latency should be rejected")
	}
	m = Quartz()
	m.SendOverhead = math.NaN()
	if err := m.Validate(); err == nil {
		t.Error("NaN overhead should be rejected")
	}
}

// TestBandwidthCurveShape reproduces the qualitative features of Fig. 5:
// effective bandwidth is monotonically increasing within each protocol
// regime, drops at the eager/rendezvous switch (16 KiB), and eventually
// exceeds the eager peak.
func TestBandwidthCurveShape(t *testing.T) {
	m := Quartz()
	prev := 0.0
	for s := 8; s <= EagerThreshold; s *= 2 {
		bw := m.EffectiveBandwidth(s)
		if bw <= prev {
			t.Fatalf("eager regime bandwidth not increasing at %d bytes: %g <= %g", s, bw, prev)
		}
		prev = bw
	}
	atSwitch := m.EffectiveBandwidth(EagerThreshold)
	justAfter := m.EffectiveBandwidth(EagerThreshold + 1)
	if justAfter >= atSwitch {
		t.Fatalf("no bandwidth drop at eager threshold: %g -> %g", atSwitch, justAfter)
	}
	prev = justAfter
	for s := 2 * EagerThreshold; s <= 64<<20; s *= 2 {
		bw := m.EffectiveBandwidth(s)
		if bw <= prev {
			t.Fatalf("rendezvous regime bandwidth not increasing at %d bytes", s)
		}
		prev = bw
	}
	if prev <= atSwitch {
		t.Fatalf("large-message bandwidth %g should exceed eager peak %g", prev, atSwitch)
	}
	if prev >= m.WireBandwidth {
		t.Fatalf("effective bandwidth %g must stay below wire rate %g", prev, m.WireBandwidth)
	}
}

func TestRemoteCheaperPerByteThanManySmall(t *testing.T) {
	// Coalescing rationale: one 64 KiB message must be much cheaper than
	// 8192 eight-byte messages.
	m := Quartz()
	one := m.RemoteTransferTime(64 << 10)
	many := 8192 * m.RemoteTransferTime(8)
	if one >= many/100 {
		t.Fatalf("coalescing advantage too small: one=%g many=%g", one, many)
	}
}

func TestLocalCheaperThanRemote(t *testing.T) {
	m := Quartz()
	for _, s := range []int{0, 64, 4096, 1 << 20} {
		if l, r := m.LocalTransferTime(s), m.RemoteTransferTime(s); l >= r {
			t.Fatalf("local transfer (%g) should beat remote (%g) at %d bytes", l, r, s)
		}
	}
}

func TestZeroCopyLocal(t *testing.T) {
	m := Quartz()
	withCopy := m.LocalTransferTime(1 << 20)
	m.ZeroCopyLocal = true
	if got := m.LocalTransferTime(1 << 20); got != m.LocalLatency {
		t.Fatalf("zero-copy local transfer = %g, want latency only %g", got, m.LocalLatency)
	}
	if withCopy <= m.LocalLatency {
		t.Fatal("copying local transfer should cost more than latency alone")
	}
}

func TestTransferTimePanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	Quartz().RemoteTransferTime(-1)
}

func TestTransferTimesPositiveProperty(t *testing.T) {
	m := Quartz()
	f := func(raw uint32) bool {
		s := int(raw % (64 << 20))
		rt := m.RemoteTransferTime(s)
		lt := m.LocalTransferTime(s)
		return rt > 0 && lt > 0 && !math.IsInf(rt, 0) && !math.IsNaN(rt)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestClockAdvance(t *testing.T) {
	var c Clock
	c.Advance(2)
	c.Advance(3)
	if c.Now() != 5 || c.Busy() != 5 || c.Wait() != 0 {
		t.Fatalf("clock = now %g busy %g wait %g", c.Now(), c.Busy(), c.Wait())
	}
	if c.Utilization() != 1 {
		t.Fatalf("fully busy clock utilization = %g", c.Utilization())
	}
}

func TestClockWaitUntil(t *testing.T) {
	var c Clock
	c.Advance(1)
	c.WaitUntil(4) // idle 3s
	if c.Now() != 4 || c.Wait() != 3 {
		t.Fatalf("clock = now %g wait %g", c.Now(), c.Wait())
	}
	c.WaitUntil(2) // in the past: no-op
	if c.Now() != 4 || c.Wait() != 3 {
		t.Fatalf("past WaitUntil moved the clock: now %g wait %g", c.Now(), c.Wait())
	}
	if u := c.Utilization(); math.Abs(u-0.25) > 1e-12 {
		t.Fatalf("utilization = %g, want 0.25", u)
	}
}

func TestClockZeroUtilization(t *testing.T) {
	var c Clock
	if c.Utilization() != 1 {
		t.Fatal("fresh clock should report full utilization")
	}
}

func TestClockPanicsOnNegativeAdvance(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	var c Clock
	c.Advance(-1)
}

// TestClockMonotoneProperty: any sequence of Advance/WaitUntil keeps the
// clock monotone and busy+wait == now.
func TestClockMonotoneProperty(t *testing.T) {
	f := func(ops []uint16) bool {
		var c Clock
		prev := 0.0
		for i, op := range ops {
			if i%2 == 0 {
				c.Advance(float64(op) * 1e-6)
			} else {
				c.WaitUntil(float64(op) * 1e-5)
			}
			if c.Now() < prev {
				return false
			}
			prev = c.Now()
		}
		return math.Abs(c.Busy()+c.Wait()-c.Now()) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestZeroCopyOverheads(t *testing.T) {
	m := Quartz()
	if m.SendOverheadFor(true) != m.SendOverhead || m.RecvOverheadFor(true) != m.RecvOverhead {
		t.Fatal("copying model must charge full overheads locally")
	}
	m.ZeroCopyLocal = true
	if m.SendOverheadFor(true) >= m.SendOverhead || m.RecvOverheadFor(true) >= m.RecvOverhead {
		t.Fatal("zero-copy local transfers should cost less CPU")
	}
	if m.SendOverheadFor(false) != m.SendOverhead || m.RecvOverheadFor(false) != m.RecvOverhead {
		t.Fatal("zero-copy must not change remote overheads")
	}
}

func TestRecordHandlingTime(t *testing.T) {
	m := Quartz()
	small := m.RecordHandlingTime(0)
	if small != m.RecordOverhead {
		t.Fatalf("empty record should cost only the fixed overhead, got %g", small)
	}
	big := m.RecordHandlingTime(1 << 20)
	if big <= small || big < float64(1<<20)/m.LocalBandwidth {
		t.Fatalf("record handling must include the copy cost, got %g", big)
	}
	// Per-record handling must be far below per-packet overheads for
	// typical record sizes: that gap is what coalescing buys.
	if m.RecordHandlingTime(16) > m.RecvOverhead/10 {
		t.Fatalf("record handling %g too close to packet overhead %g", m.RecordHandlingTime(16), m.RecvOverhead)
	}
}
