package apps

import (
	"fmt"

	"ygm/internal/codec"
	"ygm/internal/collective"
	"ygm/internal/graph"
	"ygm/internal/machine"
	"ygm/internal/transport"
	"ygm/internal/ygm"
)

// Message type bytes for the SSSP mailbox protocol.
const (
	ssspMsgEdge  = 0 // [u, v, w] store weighted arc u -> v at owner(u)
	ssspMsgRelax = 1 // [v, dist]  tentative distance for v
)

// SSSPConfig parameterizes single-source shortest paths — the second
// Graph500 kernel named in Section I's account of the Sierra submission.
// The implementation is chaotic relaxation: every improved tentative
// distance immediately spawns relaxations of the vertex's out-arcs from
// inside the receive callback, and the run ends when the mailbox's
// termination detection finds global quiescence. No level barriers, no
// priority queue coordination — the purest data-dependent messaging
// pattern the mailbox supports.
type SSSPConfig struct {
	Mailbox      ygm.Options
	Scale        int
	EdgesPerRank int
	Params       graph.RMATParams
	Seed         int64
	Root         uint64
	// MaxWeight bounds the deterministic integer arc weights (>= 1).
	MaxWeight uint64
}

// SSSPResult is one rank's outcome.
type SSSPResult struct {
	// Dist[l] is the shortest distance to owned vertex l*P+rank, or
	// Unreached.
	Dist []uint64
	// Relaxations counts handler invocations that improved a distance.
	Relaxations uint64
	// Visited is the global reached-vertex count.
	Visited uint64
	Mailbox ygm.Stats
}

// ArcWeight is the deterministic weight of arc (u,v).
func ArcWeight(u, v, maxWeight uint64) uint64 {
	return 1 + (u*2654435761+v*40503)%maxWeight
}

type ssspState struct {
	world int
	adj   map[uint64][]graph.Edge // owned u -> arcs (V = neighbor, weight cached separately)
	wts   map[uint64][]uint64
	dist  []uint64
	relax uint64
}

func (st *ssspState) handle(s ygm.Sender, payload []byte) {
	r := codec.NewReader(payload)
	typ, err := r.Byte()
	if err != nil {
		panic(fmt.Sprintf("apps: corrupt sssp message: %v", err))
	}
	switch typ {
	case ssspMsgEdge:
		u, v, w := mustUvarint(r), mustUvarint(r), mustUvarint(r)
		st.adj[u] = append(st.adj[u], graph.Edge{U: u, V: v})
		st.wts[u] = append(st.wts[u], w)
	case ssspMsgRelax:
		v, d := mustUvarint(r), mustUvarint(r)
		l := graph.LocalID(v, st.world)
		if d < st.dist[l] {
			st.dist[l] = d
			st.relax++
			// Chaotic relaxation: forward improvements immediately from
			// inside the callback.
			for i, arc := range st.adj[v] {
				s.Send(machine.Rank(graph.Owner(arc.V, st.world)),
					ccEncode(ssspMsgRelax, arc.V, d+st.wts[v][i]))
			}
		}
	default:
		panic(fmt.Sprintf("apps: unknown sssp message type %d", typ))
	}
}

// SSSP runs chaotic-relaxation single-source shortest paths on one rank.
func SSSP(p *transport.Proc, cfg SSSPConfig) (*SSSPResult, error) {
	if cfg.Scale < 1 || cfg.EdgesPerRank < 0 {
		return nil, fmt.Errorf("apps: invalid sssp config %+v", cfg)
	}
	if err := cfg.Params.Validate(); err != nil {
		return nil, err
	}
	if cfg.MaxWeight == 0 {
		cfg.MaxWeight = 16
	}
	world := p.WorldSize()
	numVertices := uint64(1) << uint(cfg.Scale)
	if cfg.Root >= numVertices {
		return nil, fmt.Errorf("apps: sssp root %d outside graph", cfg.Root)
	}
	st := &ssspState{
		world: world,
		adj:   make(map[uint64][]graph.Edge),
		wts:   make(map[uint64][]uint64),
		dist:  make([]uint64, graph.LocalCount(numVertices, world, int(p.Rank()))),
	}
	for l := range st.dist {
		st.dist[l] = Unreached
	}
	mb := ygm.New(p, st.handle, mailboxOptions(cfg.Mailbox)...)
	comm := collective.World(p)

	// Build the weighted adjacency (undirected: both arc directions).
	gen := graph.NewRMAT(cfg.Params, cfg.Scale, cfg.Seed*32452843+int64(p.Rank()))
	for i := 0; i < cfg.EdgesPerRank; i++ {
		e := gen.Next()
		w := ArcWeight(e.U, e.V, cfg.MaxWeight)
		mb.Send(machine.Rank(graph.Owner(e.U, world)), ccEncode(ssspMsgEdge, e.U, e.V, w))
		mb.Send(machine.Rank(graph.Owner(e.V, world)), ccEncode(ssspMsgEdge, e.V, e.U, w))
	}
	mb.WaitEmpty()

	// Seed the root and let relaxation cascade until global quiescence.
	if graph.Owner(cfg.Root, world) == int(p.Rank()) {
		mb.Send(p.Rank(), ccEncode(ssspMsgRelax, cfg.Root, 0))
	}
	mb.WaitEmpty()

	var visited uint64
	for _, d := range st.dist {
		if d != Unreached {
			visited++
		}
	}
	res := &SSSPResult{
		Dist:        st.dist,
		Relaxations: st.relax,
		Visited:     comm.AllreduceU64([]uint64{visited}, collective.SumU64)[0],
		Mailbox:     mb.Stats(),
	}
	return res, nil
}
