package apps

import (
	"fmt"

	"ygm/internal/codec"
	"ygm/internal/collective"
	"ygm/internal/graph"
	"ygm/internal/machine"
	"ygm/internal/transport"
	"ygm/internal/ygm"
)

// Message type bytes for the BFS mailbox protocol.
const (
	bfsMsgEdge  = 0 // [u, v] store directed adjacency u -> v at owner(u)
	bfsMsgVisit = 1 // [v, dist] visit v at distance dist
)

// BFSConfig parameterizes the Graph500-style breadth-first search that
// Section I cites as YGM's flagship workload (the Sierra submission).
type BFSConfig struct {
	Mailbox ygm.Options
	// Scale: the graph has 2^Scale vertices.
	Scale        int
	EdgesPerRank int
	Params       graph.RMATParams
	Seed         int64
	// Root is the search root vertex.
	Root uint64
}

// BFSResult is one rank's outcome.
type BFSResult struct {
	// Dist[l] is the BFS level of locally owned vertex l*P+rank, or
	// Unreached.
	Dist []uint64
	// Levels is the number of frontier expansions performed.
	Levels int
	// Visited is the global number of reached vertices.
	Visited uint64
	Mailbox ygm.Stats
}

// Unreached marks vertices the search never found.
const Unreached = ^uint64(0)

type bfsState struct {
	world int
	adj   map[uint64][]uint64 // owned vertex -> neighbors
	dist  []uint64
	next  []uint64 // owned vertices discovered this level
}

func (st *bfsState) handle(s ygm.Sender, payload []byte) {
	r := codec.NewReader(payload)
	typ, err := r.Byte()
	if err != nil {
		panic(fmt.Sprintf("apps: corrupt bfs message: %v", err))
	}
	switch typ {
	case bfsMsgEdge:
		u, v := mustUvarint(r), mustUvarint(r)
		st.adj[u] = append(st.adj[u], v)
	case bfsMsgVisit:
		v, d := mustUvarint(r), mustUvarint(r)
		l := graph.LocalID(v, st.world)
		if st.dist[l] == Unreached {
			st.dist[l] = d
			st.next = append(st.next, v)
		}
	default:
		panic(fmt.Sprintf("apps: unknown bfs message type %d", typ))
	}
}

// BFS runs a level-synchronous breadth-first search: each level expands
// the frontier through the mailbox (visits are data-dependent messages
// spawned by prior visits' owners) and levels are separated by
// WaitEmpty plus a frontier-count allreduce.
func BFS(p *transport.Proc, cfg BFSConfig) (*BFSResult, error) {
	if cfg.Scale < 1 || cfg.EdgesPerRank < 0 {
		return nil, fmt.Errorf("apps: invalid bfs config %+v", cfg)
	}
	if err := cfg.Params.Validate(); err != nil {
		return nil, err
	}
	world := p.WorldSize()
	numVertices := uint64(1) << uint(cfg.Scale)
	if cfg.Root >= numVertices {
		return nil, fmt.Errorf("apps: bfs root %d outside graph", cfg.Root)
	}
	st := &bfsState{
		world: world,
		adj:   make(map[uint64][]uint64),
		dist:  make([]uint64, graph.LocalCount(numVertices, world, int(p.Rank()))),
	}
	for l := range st.dist {
		st.dist[l] = Unreached
	}
	mb := ygm.New(p, st.handle, mailboxOptions(cfg.Mailbox)...)
	comm := collective.World(p)

	// Build the distributed adjacency (undirected: both directions).
	gen := graph.NewRMAT(cfg.Params, cfg.Scale, cfg.Seed*15485863+int64(p.Rank()))
	for i := 0; i < cfg.EdgesPerRank; i++ {
		e := gen.Next()
		mb.Send(machine.Rank(graph.Owner(e.U, world)), ccEncode(bfsMsgEdge, e.U, e.V))
		mb.Send(machine.Rank(graph.Owner(e.V, world)), ccEncode(bfsMsgEdge, e.V, e.U))
	}
	mb.WaitEmpty()

	// Seed the root.
	if graph.Owner(cfg.Root, world) == int(p.Rank()) {
		st.dist[graph.LocalID(cfg.Root, world)] = 0
		st.next = append(st.next, cfg.Root)
	}

	result := &BFSResult{}
	cpm := p.Model().ComputePerMessage
	for level := uint64(0); ; level++ {
		frontier := st.next
		st.next = nil
		for _, u := range frontier {
			for _, v := range st.adj[u] {
				p.Compute(cpm)
				mb.Send(machine.Rank(graph.Owner(v, world)), ccEncode(bfsMsgVisit, v, level+1))
			}
		}
		mb.WaitEmpty()
		result.Levels++
		grew := comm.AllreduceU64([]uint64{uint64(len(st.next))}, collective.SumU64)[0]
		if grew == 0 {
			break
		}
	}

	var visited uint64
	for _, d := range st.dist {
		if d != Unreached {
			visited++
		}
	}
	result.Visited = comm.AllreduceU64([]uint64{visited}, collective.SumU64)[0]
	result.Dist = st.dist
	result.Mailbox = mb.Stats()
	return result, nil
}
