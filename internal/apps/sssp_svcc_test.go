package apps

import (
	"sync"
	"testing"

	"ygm/internal/graph"
	"ygm/internal/machine"
	"ygm/internal/transport"
	"ygm/internal/ygm"
)

// ssspOracle runs sequential Dijkstra (via Bellman-Ford style relaxation,
// weights are small positive integers) on the regenerated global graph.
func ssspOracle(cfg SSSPConfig, world int) []uint64 {
	n := uint64(1) << uint(cfg.Scale)
	type arc struct {
		to, w uint64
	}
	adj := make([][]arc, n)
	for r := 0; r < world; r++ {
		g := graph.NewRMAT(cfg.Params, cfg.Scale, cfg.Seed*32452843+int64(r))
		for k := 0; k < cfg.EdgesPerRank; k++ {
			e := g.Next()
			w := ArcWeight(e.U, e.V, cfg.MaxWeight)
			adj[e.U] = append(adj[e.U], arc{e.V, w})
			adj[e.V] = append(adj[e.V], arc{e.U, w})
		}
	}
	dist := make([]uint64, n)
	for i := range dist {
		dist[i] = Unreached
	}
	dist[cfg.Root] = 0
	// Simple queue-based Bellman-Ford (SPFA); graphs are small.
	queue := []uint64{cfg.Root}
	inQ := make([]bool, n)
	inQ[cfg.Root] = true
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		inQ[u] = false
		for _, a := range adj[u] {
			if nd := dist[u] + a.w; nd < dist[a.to] {
				dist[a.to] = nd
				if !inQ[a.to] {
					inQ[a.to] = true
					queue = append(queue, a.to)
				}
			}
		}
	}
	return dist
}

func TestSSSPMatchesOracle(t *testing.T) {
	for _, scheme := range []machine.Scheme{machine.NoRoute, machine.NLNR} {
		scheme := scheme
		t.Run(scheme.String(), func(t *testing.T) {
			cfg := SSSPConfig{
				Mailbox:      ygm.Options{Scheme: scheme, Capacity: 64},
				Scale:        8,
				EdgesPerRank: 200,
				Params:       graph.Graph500,
				Seed:         7,
				Root:         0,
				MaxWeight:    12,
			}
			const world = 6
			results := make([]*SSSPResult, world)
			var mu sync.Mutex
			runApps(t, 3, 2, func(p *transport.Proc) error {
				res, err := SSSP(p, cfg)
				if err != nil {
					return err
				}
				mu.Lock()
				results[p.Rank()] = res
				mu.Unlock()
				return nil
			})
			want := ssspOracle(cfg, world)
			n := uint64(1) << uint(cfg.Scale)
			var wantVisited uint64
			for v := uint64(0); v < n; v++ {
				if want[v] != Unreached {
					wantVisited++
				}
				got := results[graph.Owner(v, world)].Dist[graph.LocalID(v, world)]
				if got != want[v] {
					t.Fatalf("dist(%d) = %d, want %d", v, got, want[v])
				}
			}
			if results[0].Visited != wantVisited || wantVisited < 10 {
				t.Fatalf("visited = %d, want %d (>= 10)", results[0].Visited, wantVisited)
			}
		})
	}
}

func TestSSSPRejectsBadConfig(t *testing.T) {
	runApps(t, 1, 1, func(p *transport.Proc) error {
		if _, err := SSSP(p, SSSPConfig{}); err == nil {
			t.Error("zero config accepted")
		}
		if _, err := SSSP(p, SSSPConfig{Scale: 4, Params: graph.Uniform4, Root: 1 << 10}); err == nil {
			t.Error("out-of-range root accepted")
		}
		return nil
	})
}

// svOracle reuses the union-find oracle over the SV seed formula.
func svOracle(cfg SVConfig, world int) []uint64 {
	var all []graph.Edge
	for r := 0; r < world; r++ {
		g := graph.NewRMAT(cfg.Params, cfg.Scale, cfg.Seed*49979687+int64(r))
		all = append(all, graph.Collect(g, cfg.EdgesPerRank)...)
	}
	return graph.ConnectedComponentsSeq(all, 1<<uint(cfg.Scale))
}

func TestShiloachVishkinMatchesOracle(t *testing.T) {
	cfg := SVConfig{
		Mailbox:      ygm.Options{Scheme: machine.NodeRemote, Capacity: 128},
		Scale:        8,
		EdgesPerRank: 150,
		Params:       graph.Graph500,
		Seed:         3,
	}
	const world = 8
	results := make([]*SVResult, world)
	var mu sync.Mutex
	runApps(t, 4, 2, func(p *transport.Proc) error {
		res, err := ShiloachVishkinCC(p, cfg)
		if err != nil {
			return err
		}
		mu.Lock()
		results[p.Rank()] = res
		mu.Unlock()
		return nil
	})
	want := svOracle(cfg, world)
	n := uint64(1) << uint(cfg.Scale)
	for v := uint64(0); v < n; v++ {
		got := results[graph.Owner(v, world)].Labels[graph.LocalID(v, world)]
		if got != want[v] {
			t.Fatalf("label(%d) = %d, want %d", v, got, want[v])
		}
	}
}

// TestShiloachVishkinPathGraph: the paper cites SV for its O(log n)
// round count. On a long path — worst case for label propagation, whose
// round count is the diameter — hook+shortcut must converge in far
// fewer rounds while still producing the right labels.
func TestShiloachVishkinPathGraph(t *testing.T) {
	const scale = 9 // path over 512 vertices: diameter 511
	n := uint64(1) << scale
	cfg := SVConfig{
		Mailbox: ygm.Options{Scheme: machine.NLNR, Capacity: 256},
		Scale:   scale,
		Edges: func(p *transport.Proc) []graph.Edge {
			// Rank 0 contributes the whole path; others contribute nothing.
			if p.Rank() != 0 {
				return nil
			}
			edges := make([]graph.Edge, n-1)
			for i := uint64(0); i < n-1; i++ {
				edges[i] = graph.Edge{U: i, V: i + 1}
			}
			return edges
		},
	}
	const world = 8
	results := make([]*SVResult, world)
	var mu sync.Mutex
	runApps(t, 4, 2, func(p *transport.Proc) error {
		res, err := ShiloachVishkinCC(p, cfg)
		if err != nil {
			return err
		}
		mu.Lock()
		results[p.Rank()] = res
		mu.Unlock()
		return nil
	})
	for v := uint64(0); v < n; v++ {
		got := results[graph.Owner(v, world)].Labels[graph.LocalID(v, world)]
		if got != 0 {
			t.Fatalf("label(%d) = %d, want 0 (single path component)", v, got)
		}
	}
	rounds := results[0].Rounds
	if rounds >= 100 {
		t.Fatalf("SV took %d rounds on a 512-path; label propagation territory (diam 511)", rounds)
	}
	t.Logf("512-vertex path converged in %d rounds (diameter 511)", rounds)
}

// TestShiloachVishkinAgreesWithLabelProp: both CC algorithms must find
// identical components... on their own generated graphs they use
// different seeds, so build a shared explicit edge set.
func TestShiloachVishkinRingAndIsolates(t *testing.T) {
	const scale = 7
	n := uint64(1) << scale
	cfg := SVConfig{
		Mailbox: ygm.Options{Scheme: machine.NodeLocal, Capacity: 64},
		Scale:   scale,
		Edges: func(p *transport.Proc) []graph.Edge {
			// Each rank contributes a segment of a ring over the first
			// half of the vertices; the second half stays isolated.
			var out []graph.Edge
			half := n / 2
			for i := uint64(p.Rank()); i < half; i += 4 {
				out = append(out, graph.Edge{U: i, V: (i + 1) % half})
			}
			return out
		},
	}
	const world = 4
	results := make([]*SVResult, world)
	var mu sync.Mutex
	runApps(t, 2, 2, func(p *transport.Proc) error {
		res, err := ShiloachVishkinCC(p, cfg)
		if err != nil {
			return err
		}
		mu.Lock()
		results[p.Rank()] = res
		mu.Unlock()
		return nil
	})
	half := n / 2
	for v := uint64(0); v < n; v++ {
		got := results[graph.Owner(v, world)].Labels[graph.LocalID(v, world)]
		want := v
		if v < half {
			want = 0
		}
		if got != want {
			t.Fatalf("label(%d) = %d, want %d", v, got, want)
		}
	}
}
